// Quickstart: the whole methodology in one file.
//
//  1. Generate the embeddable beacon JavaScript an advertiser pastes
//     into an HTML5 creative.
//  2. Start a real collector and report a few impressions to it over
//     live WebSocket connections (what the browser-side JS does).
//  3. Run a full simulated campaign against the ad network and audit it,
//     printing the paper's tables.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"adaudit"
	"adaudit/internal/adnet"
	"adaudit/internal/audit"
	"adaudit/internal/beacon"
	"adaudit/internal/collector"
	"adaudit/internal/report"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// --- 1. The artifact that ships inside the ad. -------------------
	js, err := beacon.Script(beacon.ScriptConfig{
		CollectorURL: "wss://collector.example.org/beacon",
		CampaignID:   "spring-sale",
		CreativeID:   "banner-728x90",
	})
	if err != nil {
		return err
	}
	fmt.Println("=== Beacon JavaScript (paste into the HTML5 creative) ===")
	fmt.Println(js)

	// --- 2. A live collector receiving real beacon connections. ------
	ws, err := adaudit.NewWorkspace(adaudit.Options{Seed: 42, NumPublishers: 8000})
	if err != nil {
		return err
	}
	srv, err := collector.NewServer(ws.Collector, "127.0.0.1:0")
	if err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go srv.Serve(ctx)
	fmt.Printf("=== Collector live at %s ===\n", srv.BeaconURL())

	// Simulate three browsers rendering the ad: each opens a WebSocket,
	// sends the impression payload, holds the connection (exposure),
	// interacts, and disconnects.
	client := &beacon.Client{CollectorURL: srv.BeaconURL()}
	for i, page := range []string{
		"http://www.futbolhoy123.es/cronica/derbi",
		"http://recetas456.es/tortilla",
		"http://blog789.com/post/42",
	} {
		p := beacon.Payload{
			CampaignID: "spring-sale",
			CreativeID: "banner-728x90",
			PageURL:    page,
			UserAgent:  "Mozilla/5.0 (Windows NT 10.0) Chrome/49.0",
			Events:     []beacon.Event{{Kind: beacon.EventClick, At: 20 * time.Millisecond}},
		}
		if err := client.Report(ctx, p, 60*time.Millisecond); err != nil {
			return fmt.Errorf("beacon %d: %w", i, err)
		}
	}
	// Records commit asynchronously on disconnect.
	for ws.Store.Len() < 3 {
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("collector ingested %d live impressions from %d publishers\n\n",
		ws.Store.Len(), len(ws.Store.Publishers("")))

	// --- 3. A full campaign, simulated and audited. -------------------
	camp := adnet.Campaign{
		ID:          "spring-sale",
		CreativeID:  "banner-728x90",
		Keywords:    []string{"football"},
		CPM:         0.10,
		Geo:         "ES",
		Impressions: 20000,
		Start:       time.Date(2016, 4, 2, 0, 0, 0, 0, time.UTC),
		End:         time.Date(2016, 4, 3, 0, 0, 0, 0, time.UTC),
	}
	outcome, err := ws.Driver.Run(camp)
	if err != nil {
		return err
	}
	fmt.Printf("=== Simulated campaign: %d delivered, %d logged, %d lost ===\n",
		len(outcome.Result.Deliveries), outcome.Logged,
		outcome.LostBlocked+outcome.LostConnection)

	auditor, err := ws.Auditor()
	if err != nil {
		return err
	}
	full, err := auditor.FullAudit([]audit.CampaignInput{{
		ID:       camp.ID,
		Keywords: camp.Keywords,
		Report:   &outcome.Result.Report,
	}})
	if err != nil {
		return err
	}
	if err := report.Figure1(os.Stdout, full.Aggregate, full.PerCampaign); err != nil {
		return err
	}
	fmt.Println()
	if err := report.Table3(os.Stdout, full.PerCampaign); err != nil {
		return err
	}
	fmt.Println()
	return report.Table4(os.Stdout, full.PerCampaign)
}
