// Frequency cap: what AdWords' missing default costs.
//
// The paper's Figure 3 shows AdWords applies no default frequency cap:
// 1720 users received the same ad more than 10 times, 176 more than 100
// times, often seconds apart. The literature it cites (Microsoft
// Advertising Institute) found no conversion benefit beyond ~10
// exposures, so everything past 10 is wasted spend.
//
// This example runs the same campaign twice — once with the network's
// real behaviour (no cap) and once with a cap of 10 — and prices the
// difference.
//
// Run with: go run ./examples/frequency
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"adaudit"
	"adaudit/internal/adnet"
	"adaudit/internal/audit"
	"adaudit/internal/report"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	camp := adnet.Campaign{
		ID:          "capless-demo",
		CreativeID:  "banner",
		Keywords:    []string{"football"},
		CPM:         0.10,
		Geo:         "ES",
		Impressions: 30000,
		Start:       time.Date(2016, 4, 2, 0, 0, 0, 0, time.UTC),
		End:         time.Date(2016, 4, 3, 0, 0, 0, 0, time.UTC),
	}

	uncapped, uncappedConv, err := runOnce(camp, 0)
	if err != nil {
		return err
	}
	capped, cappedConv, err := runOnce(camp, 10)
	if err != nil {
		return err
	}

	fmt.Println("=== No frequency cap (AdWords default) ===")
	if err := report.Figure3(os.Stdout, uncapped); err != nil {
		return err
	}
	fmt.Println("\n=== Frequency cap 10 (the literature's optimum) ===")
	if err := report.Figure3(os.Stdout, capped); err != nil {
		return err
	}

	// Price the waste: impressions beyond the 10th per user convert no
	// better, so they are bought for nothing.
	waste := 0
	for _, p := range uncapped.Points {
		if p.Impressions > 10 {
			waste += p.Impressions - 10
		}
	}
	fmt.Printf("\nWasted impressions beyond the 10-per-user optimum: %d of %d (%.1f%%)\n",
		waste, camp.Impressions, 100*float64(waste)/float64(camp.Impressions))
	fmt.Printf("Wasted spend at %.2f€ CPM: %.2f€ of %.2f€\n",
		camp.CPM, camp.CPM*float64(waste)/1000, camp.Budget())

	// The conversion evidence: repeat exposures beyond ~10 convert no
	// one, so capping costs nothing while freeing budget for fresh
	// users — the capped run converts MORE with the SAME spend.
	fmt.Println("\n=== Conversion evidence ===")
	if err := report.TableConversions(os.Stdout, []audit.ConversionResult{uncappedConv}); err != nil {
		return err
	}
	fmt.Printf("\nConversions, same budget: uncapped %d vs capped %d\n",
		uncappedConv.Conversions, cappedConv.Conversions)
	return nil
}

func runOnce(camp adnet.Campaign, cap int) (audit.FrequencyResult, audit.ConversionResult, error) {
	pol := adnet.DefaultPolicy()
	pol.FrequencyCap = cap
	ws, err := adaudit.NewWorkspace(adaudit.Options{Seed: 99, NumPublishers: 20000, Policy: &pol})
	if err != nil {
		return audit.FrequencyResult{}, audit.ConversionResult{}, err
	}
	if _, err := ws.Run([]adnet.Campaign{camp}); err != nil {
		return audit.FrequencyResult{}, audit.ConversionResult{}, err
	}
	auditor, err := ws.Auditor()
	if err != nil {
		return audit.FrequencyResult{}, audit.ConversionResult{}, err
	}
	return auditor.Frequency(), auditor.Conversions(camp.ID), nil
}
