// Brand safety: build the blacklist the vendor report cannot give you.
//
// The paper's Figure 1 finding is that AdWords reported only viewable
// impressions, hiding 57% of the publishers that actually displayed the
// ads. An advertiser protecting its brand needs the FULL placement
// list: a brand-unsafe site that showed the ad without a "viewable"
// impression will keep receiving ads until a user finally sees one
// there.
//
// This example runs the paper's two General campaigns, compares the
// audit's publisher list with the vendor's, surfaces the brand-unsafe
// publishers only the audit saw, and emits a ready-to-upload exclusion
// list.
//
// Run with: go run ./examples/brandsafety
package main

import (
	"fmt"
	"log"
	"os"

	"adaudit"
	"adaudit/internal/adnet"
	"adaudit/internal/report"
	"adaudit/internal/store"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ws, err := adaudit.NewWorkspace(adaudit.Options{Seed: 2016})
	if err != nil {
		return err
	}
	var generals []adnet.Campaign
	for _, c := range adnet.PaperCampaigns() {
		if c.ID == "General-005" || c.ID == "General-010" {
			generals = append(generals, c)
		}
	}
	run, err := ws.Run(generals)
	if err != nil {
		return err
	}
	rep, err := run.Audit()
	if err != nil {
		return err
	}

	if err := report.Figure1(os.Stdout, rep.Aggregate, rep.PerCampaign); err != nil {
		return err
	}
	fmt.Println()

	// The advertiser-facing deliverable: every publisher the ads ran on
	// that the vendor never disclosed, flagged when brand-unsafe.
	agg := rep.Aggregate
	fmt.Printf("The vendor hid %d of %d publishers (%.1f%%).\n",
		agg.Venn.OnlyA, agg.Venn.SizeA(), 100*agg.FractionUnreported())
	fmt.Printf("Among the hidden publishers, %d are brand-unsafe (adult/gambling/piracy):\n",
		len(agg.UnsafeUnreported))
	for i, p := range agg.UnsafeUnreported {
		if i >= 15 {
			fmt.Printf("  ... and %d more\n", len(agg.UnsafeUnreported)-15)
			break
		}
		meta, _ := ws.Publishers.ByDomain(p)
		fmt.Printf("  %-28s vertical=%s rank=%d\n", p, meta.Vertical, meta.Rank)
	}

	// Exclusion list: everything brand-unsafe the audit observed,
	// hidden or not — this is what gets uploaded as a campaign
	// placement exclusion.
	var exclusions []string
	for _, pub := range ws.Store.Publishers("") {
		if meta, ok := ws.Publishers.ByDomain(pub); ok && meta.BrandUnsafe {
			exclusions = append(exclusions, pub)
		}
	}
	fmt.Printf("\n=== exclusion-list.txt (%d entries, first 10) ===\n", len(exclusions))
	for i, p := range exclusions {
		if i >= 10 {
			break
		}
		fmt.Println(p)
	}

	// Quantify the exposure: impressions that rendered on unsafe sites.
	unsafeImps := 0
	total := 0
	ws.Store.ForEach(func(im store.Impression) bool {
		total++
		if meta, ok := ws.Publishers.ByDomain(im.Publisher); ok && meta.BrandUnsafe {
			unsafeImps++
		}
		return true
	})
	fmt.Printf("\nBrand exposure: %d of %d logged impressions (%.2f%%) rendered on brand-unsafe sites.\n",
		unsafeImps, total, 100*float64(unsafeImps)/float64(total))
	return nil
}
