// Live audit: watch campaigns through the collector's HTTP API.
//
// While a campaign runs, the advertiser does not have to wait for the
// vendor's (delayed, incomplete) reports: the collector exposes the
// beacon dataset live over JSON endpoints. This example starts a
// collector, streams a campaign into it, and polls the API the way a
// dashboard would — campaign roster, live summary, top publishers —
// then fetches the conversion pixel tag an advertiser would embed.
//
// Run with: go run ./examples/liveaudit
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"time"

	"adaudit"
	"adaudit/internal/adnet"
	"adaudit/internal/beacon"
	"adaudit/internal/collector"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ws, err := adaudit.NewWorkspace(adaudit.Options{Seed: 5, NumPublishers: 15000})
	if err != nil {
		return err
	}
	srv, err := collector.NewServer(ws.Collector, "127.0.0.1:0")
	if err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go srv.Serve(ctx)
	base := "http://" + srv.Addr().String()
	fmt.Printf("collector API live at %s\n\n", base)

	// Stream a campaign into the collector (the simulator stands in for
	// live traffic; a real deployment receives beacons instead).
	camp := adnet.Campaign{
		ID: "summer-push", CreativeID: "banner", Keywords: []string{"football"},
		CPM: 0.10, Geo: "ES", Impressions: 12000,
		Start: time.Date(2016, 4, 2, 0, 0, 0, 0, time.UTC),
		End:   time.Date(2016, 4, 3, 0, 0, 0, 0, time.UTC),
	}
	if _, err := ws.Driver.Run(camp); err != nil {
		return err
	}

	// Poll the dashboard endpoints.
	var campaigns []collector.CampaignListEntry
	if err := getJSON(ctx, base+"/api/campaigns", &campaigns); err != nil {
		return err
	}
	fmt.Println("=== /api/campaigns ===")
	for _, c := range campaigns {
		fmt.Printf("  %-16s %d impressions\n", c.CampaignID, c.Impressions)
	}

	var sum collector.CampaignSummary
	if err := getJSON(ctx, base+"/api/summary?campaign=summer-push", &sum); err != nil {
		return err
	}
	fmt.Println("\n=== /api/summary?campaign=summer-push ===")
	fmt.Printf("  impressions  %d across %d publishers, %d users\n",
		sum.Impressions, sum.Publishers, sum.Users)
	fmt.Printf("  viewable     %.1f%% (upper bound)\n", 100*sum.ViewableUpperBound)
	fmt.Printf("  data-center  %.1f%% of impressions\n", 100*sum.DataCenterShare)
	fmt.Printf("  clicks       %d, conversions %d\n", sum.Clicks, sum.Conversions)
	fmt.Printf("  window       %s .. %s\n",
		sum.FirstSeen.Format(time.RFC3339), sum.LastSeen.Format(time.RFC3339))

	var pubs []collector.PublisherRow
	if err := getJSON(ctx, base+"/api/publishers?campaign=summer-push&limit=5", &pubs); err != nil {
		return err
	}
	fmt.Println("\n=== /api/publishers?campaign=summer-push&limit=5 ===")
	for _, p := range pubs {
		fmt.Printf("  %-28s %5d impressions  %d clicks\n", p.Publisher, p.Impressions, p.Clicks)
	}

	// The conversion pixel the advertiser embeds on its thank-you page.
	tag, err := beacon.Conversion{
		CampaignID: "summer-push", Action: "purchase", ValueCents: 4999,
	}.PixelTag(base)
	if err != nil {
		return err
	}
	fmt.Println("\n=== conversion pixel for the advertiser's site ===")
	fmt.Println(tag)
	return nil
}

func getJSON(ctx context.Context, url string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
