// Fraud hunt: measure data-center traffic and what it costs.
//
// The paper's Table 4 found ~10% of the football campaigns' impressions
// delivered to data-center IPs — traffic the MRC invalid-traffic
// guidelines treat as likely fraud — and AdWords charged for it (with a
// partial, unexplained refund). This example reproduces that analysis
// and adds the detection-cascade ablation: how much each stage
// (provider database, deny-hosting list, manual verification)
// contributes.
//
// Run with: go run ./examples/fraudhunt
package main

import (
	"fmt"
	"log"
	"os"

	"adaudit"
	"adaudit/internal/adnet"
	"adaudit/internal/report"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ws, err := adaudit.NewWorkspace(adaudit.Options{Seed: 7})
	if err != nil {
		return err
	}
	var footballs []adnet.Campaign
	for _, c := range adnet.PaperCampaigns() {
		if c.ID == "Football-010" || c.ID == "Football-030" {
			footballs = append(footballs, c)
		}
	}
	run, err := ws.Run(footballs)
	if err != nil {
		return err
	}
	rep, err := run.Audit()
	if err != nil {
		return err
	}
	if err := report.Table4(os.Stdout, rep.PerCampaign); err != nil {
		return err
	}

	for _, ca := range rep.PerCampaign {
		fmt.Printf("\n=== %s ===\n", ca.ID)
		fr := ca.Fraud

		// Cascade ablation: which detection stage caught what.
		fmt.Println("detection cascade breakdown (impressions):")
		for _, stage := range []string{"provider-db", "deny-list", "manual"} {
			fmt.Printf("  %-12s %6d\n", stage, fr.ByVerdict[stage])
		}

		// The money: what the advertiser paid for bot traffic.
		var camp adnet.Campaign
		for _, c := range footballs {
			if c.ID == ca.ID {
				camp = c
			}
		}
		vendor := run.Outcome.Reports()[ca.ID]
		cpmCost := func(imps int64) float64 { return camp.CPM * float64(imps) / 1000 }
		dcDelivered := int64(float64(fr.DataCenterImpressions) / nonZero(float64(fr.Impressions)) * float64(camp.Impressions))
		fmt.Printf("estimated DC impressions delivered: %d (%.2f€ at %.2f€ CPM)\n",
			dcDelivered, cpmCost(dcDelivered), camp.CPM)
		fmt.Printf("vendor refunded %d impressions (%.2f€) without explanation — gap: %.2f€\n",
			vendor.RefundedImpressions, cpmCost(vendor.RefundedImpressions),
			cpmCost(dcDelivered)-cpmCost(vendor.RefundedImpressions))

		// Where the bots live: the most exposed publishers.
		fmt.Println("most DC-exposed publishers:")
		for i, p := range fr.TopDCPublishers {
			if i >= 8 {
				break
			}
			meta, _ := ws.Publishers.ByDomain(p)
			fmt.Printf("  %-28s vertical=%-12s rank=%d\n", p, meta.Vertical, meta.Rank)
		}

		// Behavioural corroboration: the interaction stream exposes the
		// automation the IP cascade flags — and the spoofers a UA-only
		// detector would miss.
		auditor, err := ws.Auditor()
		if err != nil {
			return err
		}
		ia := auditor.Interactions(ca.ID)
		fmt.Printf("behavioural signals: %d automation UAs, %.0f%% of DC traffic spoofs a clean browser UA,\n",
			ia.UAFlagged, 100*ia.SpoofShare())
		fmt.Printf("  %d click-without-mouse impressions (%d from data centers), %d suspicious users\n",
			ia.ClickNoMove, ia.ClickNoMoveDC, len(ia.SuspiciousUsers))
	}
	return nil
}

func nonZero(v float64) float64 {
	if v == 0 {
		return 1
	}
	return v
}
