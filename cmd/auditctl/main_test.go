package main

import (
	"encoding/json"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"testing"
	"time"

	"adaudit/internal/adnet"
	"adaudit/internal/store"
)

// writeFixture builds a small dataset + reports on disk for the CLI.
func writeFixture(t *testing.T) (snap, convs, reports string) {
	t.Helper()
	dir := t.TempDir()
	st := store.New()
	base := time.Date(2016, 3, 29, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 40; i++ {
		if _, err := st.Insert(store.Impression{
			CampaignID: "Research-010", CreativeID: "cr",
			Publisher: "ciencia123.es", PageURL: "http://ciencia123.es/",
			UserAgent: "UA", IPPseudonym: "p", UserKey: "u",
			Timestamp: base.Add(time.Duration(i) * time.Minute),
			Exposure:  2 * time.Second, DataCenter: "not-data-center",
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.InsertConversion(store.Conversion{
		CampaignID: "Research-010", UserKey: "u", Action: "purchase",
		ValueCents: 500, Timestamp: base.Add(time.Hour),
	}); err != nil {
		t.Fatal(err)
	}

	snap = filepath.Join(dir, "imps.jsonl")
	f, err := os.Create(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WriteSnapshot(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	convs = filepath.Join(dir, "convs.jsonl")
	f, err = os.Create(convs)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WriteConversionsSnapshot(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	reports = filepath.Join(dir, "reports.json")
	f, err = os.Create(reports)
	if err != nil {
		t.Fatal(err)
	}
	reps := map[string]*adnet.VendorReport{
		"Research-010": {
			CampaignID:              "Research-010",
			Rows:                    []adnet.ReportRow{{Publisher: "ciencia123.es", Impressions: 20}},
			TotalImpressionsCharged: 40,
			ContextualImpressions:   2,
		},
	}
	if err := json.NewEncoder(f).Encode(reps); err != nil {
		t.Fatal(err)
	}
	f.Close()
	return snap, convs, reports
}

func TestRunIndividualAnalyses(t *testing.T) {
	snap, convs, reports := writeFixture(t)
	for _, analysis := range []string{
		"viewability", "frequency", "fraud", "conversions", "popularity",
		"brandsafety", "context", "adversarial", "sellers", "pooling", "behavior",
	} {
		if err := run(snap, convs, reports, "", analysis, "", 1, 6000, 0, testLogger()); err != nil {
			t.Errorf("analysis %s: %v", analysis, err)
		}
	}
}

func TestRunAllAnalyses(t *testing.T) {
	snap, convs, reports := writeFixture(t)
	if err := run(snap, convs, reports, "", "all", "", 1, 6000, 0, testLogger()); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	snap, _, _ := writeFixture(t)
	if err := run("", "", "", "", "all", "", 1, 6000, 0, testLogger()); err == nil {
		t.Fatal("missing snapshot accepted")
	}
	if err := run(snap, "", "", "", "all", "", 1, 6000, 0, testLogger()); err == nil {
		t.Fatal("-analysis all without reports accepted")
	}
	if err := run(snap, "", "", "", "nonsense", "", 1, 6000, 0, testLogger()); err == nil {
		t.Fatal("unknown analysis accepted")
	}
	if err := run(snap, "", "", "", "brandsafety", "", 1, 6000, 0, testLogger()); err == nil {
		t.Fatal("brandsafety without reports accepted")
	}
	if err := run("/nonexistent/x.jsonl", "", "", "", "fraud", "", 1, 6000, 0, testLogger()); err == nil {
		t.Fatal("bad snapshot path accepted")
	}
}

func TestSplitCSV(t *testing.T) {
	got := splitCSV(" a, b ,,c ")
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("splitCSV = %v", got)
	}
	if splitCSV("") != nil {
		t.Fatal("empty input should yield nil")
	}
}

func TestRunWithPlacementCSV(t *testing.T) {
	snap, _, _ := writeFixture(t)
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "placements.csv")
	csvData := "Placement,Impressions,Clicks\nciencia123.es,20,1\notro.es,5,0\n"
	if err := os.WriteFile(csvPath, []byte(csvData), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(snap, "", "", "Research-010="+csvPath, "brandsafety", "", 1, 6000, 0, testLogger()); err != nil {
		t.Fatal(err)
	}
	if err := run(snap, "", "", "malformed-spec", "brandsafety", "", 1, 6000, 0, testLogger()); err == nil {
		t.Fatal("malformed placement spec accepted")
	}
}

func testLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}
