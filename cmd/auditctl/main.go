// Command auditctl analyses a collected impression dataset: it loads a
// JSON-lines snapshot (written by auditd or adsim), optionally joins the
// vendor reports, and prints the paper's audit analyses.
//
// Usage:
//
//	auditctl -snapshot imps.jsonl [-reports reports.json] [-analysis all]
//	         [-log-level info|debug|warn|error] [-log-format text|json]
//
// Analyses: all, brandsafety, context, popularity, viewability,
// frequency, fraud, adversarial (or its parts: sellers, pooling,
// behavior). Context needs -reports (for keywords it uses the
// campaign IDs' keyword conventions) or -keywords. stream-verify
// replays the dataset through the incremental streaming-audit engine
// and verifies its report is deep-equal to the batch FullAudit — the
// offline form of the live engine's headline correctness guarantee.
//
// Without vendor reports, auditctl runs the vendor-independent analyses
// (popularity, viewability, frequency, fraud) — exactly what an
// advertiser can compute from the beacon dataset alone.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"reflect"
	"strings"

	"adaudit/internal/adnet"
	"adaudit/internal/audit"
	"adaudit/internal/logutil"
	"adaudit/internal/publisher"
	"adaudit/internal/report"
	"adaudit/internal/store"
	"adaudit/internal/streamaudit"
)

func main() {
	var (
		snapshot    = flag.String("snapshot", "", "impression snapshot (JSON lines); required")
		conversions = flag.String("conversions", "", "conversion snapshot (JSON lines); optional")
		reports     = flag.String("reports", "", "vendor reports JSON (map of campaign id to report)")
		placements  = flag.String("placement-csv", "", "real vendor placement exports: CAMPAIGN=path.csv[,CAMPAIGN=path.csv...]")
		analysis    = flag.String("analysis", "all", "all|brandsafety|context|popularity|viewability|frequency|fraud|adversarial|sellers|pooling|behavior|conversions|interactions|stream-verify")
		keywords    = flag.String("keywords", "", "comma-separated campaign keywords for the context analysis (fallback when no reports metadata)")
		seed        = flag.Int64("seed", 1, "seed of the synthetic metadata universe (must match the dataset's)")
		pubs        = flag.Int("publishers", 150000, "size of the synthetic metadata universe")
		parallelism = flag.Int("parallelism", 0, "audit worker-pool size: 0 = one worker per CPU, 1 = serial (output is identical at every setting)")
		logFlags    = logutil.Register(flag.CommandLine)
	)
	flag.Parse()
	logger, err := logFlags.Logger(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "auditctl:", err)
		os.Exit(2)
	}
	if err := run(*snapshot, *conversions, *reports, *placements, *analysis, *keywords, *seed, *pubs, *parallelism, logger); err != nil {
		logger.Error("analysis failed", "err", err)
		os.Exit(1)
	}
}

func run(snapshotPath, conversionsPath, reportsPath, placementsSpec, analysis, keywordsCSV string, seed int64, numPubs, parallelism int, logger *slog.Logger) error {
	if snapshotPath == "" {
		return fmt.Errorf("-snapshot is required")
	}
	f, err := os.Open(snapshotPath)
	if err != nil {
		return err
	}
	st, err := store.ReadSnapshot(f)
	f.Close()
	if err != nil {
		return err
	}
	if conversionsPath != "" {
		cf, err := os.Open(conversionsPath)
		if err != nil {
			return err
		}
		err = st.ReadConversionsSnapshot(cf)
		cf.Close()
		if err != nil {
			return err
		}
	}
	logger.Info("dataset loaded",
		"impressions", st.Len(),
		"conversions", st.NumConversions(),
		"campaigns", len(st.Campaigns()),
		"publishers", len(st.Publishers("")))

	// Metadata: the synthetic universe regenerated from the same seed —
	// the equivalent of re-querying the placement tool + Alexa.
	uni, err := publisher.NewUniverse(publisher.Config{Seed: seed, NumPublishers: numPubs})
	if err != nil {
		return err
	}
	auditor, err := audit.New(st, audit.UniverseMetadata{Universe: uni})
	if err != nil {
		return err
	}
	auditor.Parallelism = parallelism

	var vendorReports map[string]*adnet.VendorReport
	if reportsPath != "" {
		rf, err := os.Open(reportsPath)
		if err != nil {
			return err
		}
		defer rf.Close()
		if err := json.NewDecoder(rf).Decode(&vendorReports); err != nil {
			return fmt.Errorf("decoding vendor reports: %w", err)
		}
	}
	// Real platform exports (AdWords-style placement CSVs) merge in on
	// top of (or instead of) the JSON reports.
	if placementsSpec != "" {
		if vendorReports == nil {
			vendorReports = map[string]*adnet.VendorReport{}
		}
		for _, pair := range splitCSV(placementsSpec) {
			campaignID, path, ok := strings.Cut(pair, "=")
			if !ok {
				return fmt.Errorf("-placement-csv wants CAMPAIGN=path, got %q", pair)
			}
			pf, err := os.Open(path)
			if err != nil {
				return err
			}
			rep, err := adnet.ParsePlacementCSV(pf, campaignID)
			pf.Close()
			if err != nil {
				return err
			}
			vendorReports[campaignID] = rep
		}
	}

	keywords := splitCSV(keywordsCSV)
	paperKeywords := map[string][]string{}
	for _, c := range adnet.PaperCampaigns() {
		paperKeywords[c.ID] = c.Keywords
	}
	keywordsFor := func(campaignID string) []string {
		if kws, ok := paperKeywords[campaignID]; ok {
			return kws
		}
		return keywords
	}

	out := os.Stdout
	for _, a := range splitCSV(analysis) {
		switch a {
		case "all":
			return runAll(out, st, auditor, vendorReports, keywordsFor)
		case "brandsafety":
			if vendorReports == nil {
				return fmt.Errorf("brandsafety needs -reports")
			}
			agg := auditor.BrandSafetyAggregate(vendorReports)
			var per []audit.CampaignAudit
			for _, id := range st.Campaigns() {
				if rep := vendorReports[id]; rep != nil {
					per = append(per, audit.CampaignAudit{ID: id, BrandSafety: auditor.BrandSafety(id, rep)})
				}
			}
			if err := report.Figure1(out, agg, per); err != nil {
				return err
			}
		case "context":
			var per []audit.CampaignAudit
			for _, id := range st.Campaigns() {
				var rep *adnet.VendorReport
				if vendorReports != nil {
					rep = vendorReports[id]
				}
				res, err := auditor.Context(id, keywordsFor(id), rep)
				if err != nil {
					return err
				}
				per = append(per, audit.CampaignAudit{ID: id, Context: res})
			}
			if err := report.Table2(out, per); err != nil {
				return err
			}
		case "popularity":
			var per []audit.CampaignAudit
			for _, id := range st.Campaigns() {
				res, err := auditor.Popularity(id, 10, 10_000_000)
				if err != nil {
					return err
				}
				per = append(per, audit.CampaignAudit{ID: id, Popularity: res})
			}
			if err := report.Figure2(out, per); err != nil {
				return err
			}
		case "viewability":
			var per []audit.CampaignAudit
			for _, id := range st.Campaigns() {
				per = append(per, audit.CampaignAudit{ID: id, Viewability: auditor.Viewability(id)})
			}
			if err := report.Table3(out, per); err != nil {
				return err
			}
		case "frequency":
			if err := report.Figure3(out, auditor.Frequency()); err != nil {
				return err
			}
		case "conversions":
			var results []audit.ConversionResult
			for _, id := range st.Campaigns() {
				results = append(results, auditor.Conversions(id))
			}
			if err := report.TableConversions(out, results); err != nil {
				return err
			}
		case "interactions":
			var results []audit.InteractionResult
			for _, id := range st.Campaigns() {
				results = append(results, auditor.Interactions(id))
			}
			if err := report.TableInteractions(out, results); err != nil {
				return err
			}
		case "stream-verify":
			if vendorReports == nil {
				return fmt.Errorf("stream-verify needs -reports")
			}
			if err := streamVerify(out, st, auditor, uni, vendorReports, keywordsFor); err != nil {
				return err
			}
		case "fraud":
			var per []audit.CampaignAudit
			for _, id := range st.Campaigns() {
				per = append(per, audit.CampaignAudit{ID: id, Fraud: auditor.Fraud(id)})
			}
			if err := report.Table4(out, per); err != nil {
				return err
			}
		case "adversarial", "sellers", "pooling", "behavior":
			// Behavior is vendor-independent; the supply-chain checks need
			// the vendor report's seller attributions to cross-check.
			if a != "behavior" && vendorReports == nil {
				return fmt.Errorf("%s needs -reports (seller attributions to cross-check)", a)
			}
			var per []audit.CampaignAudit
			for _, id := range st.Campaigns() {
				ca := audit.CampaignAudit{ID: id}
				rep := vendorReports[id]
				if a == "adversarial" || a == "sellers" {
					ca.Sellers = auditor.SellerAudit(id, rep)
				}
				if a == "adversarial" || a == "pooling" {
					ca.Pooling = auditor.Pooling(id, rep)
				}
				if a == "adversarial" || a == "behavior" {
					ca.Behavior = auditor.Behavior(id)
				}
				per = append(per, ca)
			}
			if err := report.Table5(out, per); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unknown analysis %q", a)
		}
		fmt.Fprintln(out)
	}
	return nil
}

func runAll(out *os.File, st *store.Store, auditor *audit.Auditor,
	vendorReports map[string]*adnet.VendorReport, keywordsFor func(string) []string) error {

	if vendorReports == nil {
		return fmt.Errorf("-analysis all needs -reports (use individual analyses otherwise)")
	}
	var inputs []audit.CampaignInput
	for _, id := range st.Campaigns() {
		rep := vendorReports[id]
		if rep == nil {
			return fmt.Errorf("no vendor report for campaign %s", id)
		}
		inputs = append(inputs, audit.CampaignInput{ID: id, Keywords: keywordsFor(id), Report: rep})
	}
	full, err := auditor.FullAudit(inputs)
	if err != nil {
		return err
	}
	if err := report.Figure1(out, full.Aggregate, full.PerCampaign); err != nil {
		return err
	}
	fmt.Fprintln(out)
	if err := report.Table2(out, full.PerCampaign); err != nil {
		return err
	}
	fmt.Fprintln(out)
	if err := report.Figure2(out, full.PerCampaign); err != nil {
		return err
	}
	fmt.Fprintln(out)
	if err := report.Table3(out, full.PerCampaign); err != nil {
		return err
	}
	fmt.Fprintln(out)
	if err := report.Figure3(out, full.Frequency); err != nil {
		return err
	}
	fmt.Fprintln(out)
	if err := report.Table4(out, full.PerCampaign); err != nil {
		return err
	}
	fmt.Fprintln(out)
	return report.Table5(out, full.PerCampaign)
}

// streamVerify proves the streaming engine's headline guarantee on
// this dataset: an engine primed from the loaded store must produce a
// report deep-equal to the batch FullAudit over the same inputs.
func streamVerify(out *os.File, st *store.Store, auditor *audit.Auditor, uni *publisher.Universe,
	vendorReports map[string]*adnet.VendorReport, keywordsFor func(string) []string) error {

	var inputs []audit.CampaignInput
	for _, id := range st.Campaigns() {
		rep := vendorReports[id]
		if rep == nil {
			return fmt.Errorf("no vendor report for campaign %s", id)
		}
		inputs = append(inputs, audit.CampaignInput{ID: id, Keywords: keywordsFor(id), Report: rep})
	}
	eng, err := streamaudit.New(streamaudit.Config{Store: st, Meta: audit.UniverseMetadata{Universe: uni}})
	if err != nil {
		return err
	}
	incremental, err := eng.Report(inputs)
	if err != nil {
		return err
	}
	batch, err := auditor.FullAudit(inputs)
	if err != nil {
		return err
	}
	if !reflect.DeepEqual(incremental, batch) {
		return fmt.Errorf("stream-verify: incremental report diverges from batch audit")
	}
	fmt.Fprintf(out, "stream-verify: incremental report matches batch audit (%d campaigns, %d impressions)\n",
		len(inputs), st.Len())
	return nil
}

func splitCSV(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
