package main

import (
	"testing"
)

// TestRunShardedReplay drives the full -shards path: collect the
// dataset, boot 3 in-process collector shards behind a router, replay
// a slice of the dataset as real beacon sessions, and let
// replayThroughShards enforce placement and the merged-vs-batch audit
// equality. A failure in any invariant surfaces as run() returning an
// error.
func TestRunShardedReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded replay opens real sockets and holds exposures in real time")
	}
	if err := run(7, 6000, "", "", "", "", "", false, "", "", 120, "mixed", 3, testLogger()); err != nil {
		t.Fatal(err)
	}
}
