package main

import (
	"context"
	"fmt"
	"log/slog"
	"reflect"
	"sort"
	"time"

	"adaudit/internal/adnet"
	"adaudit/internal/audit"
	"adaudit/internal/collector"
	"adaudit/internal/ipmeta"
	"adaudit/internal/publisher"
	"adaudit/internal/router"
	"adaudit/internal/shardmerge"
	"adaudit/internal/store"
	"adaudit/internal/streamaudit"
)

// replayThroughShards boots an in-process sharded collector tier — N
// collectors, each with its own store and live streaming-audit engine,
// fronted by a multiplexing router — replays the collected dataset
// through the router's beacon endpoint, and then holds the topology to
// the merge invariant: the report built from the router's merged
// /api/live/export must deep-equal the batch FullAudit over the
// shard-order union of the shard stores. It is the `adsim -gateway`
// load path pointed at a whole sharded deployment instead of one
// collector, with the audit-equality verdict checked in-process.
func replayThroughShards(shards, limit int, wire string, seed int64, publishers int, st *store.Store, logger *slog.Logger) error {
	uni, err := publisher.NewUniverse(publisher.Config{Seed: seed, NumPublishers: publishers})
	if err != nil {
		return fmt.Errorf("rebuilding metadata universe: %w", err)
	}
	meta := audit.UniverseMetadata{Universe: uni}
	keywords := map[string][]string{}
	for _, c := range adnet.PaperCampaigns() {
		keywords[c.ID] = c.Keywords
	}
	const trunkToken = "adsim-shard"

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stores := make([]*store.Store, shards)
	trunkURLs := make([]string, shards)
	apiBases := make([]string, shards)
	var stops []func()
	defer func() {
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]()
		}
	}()
	for i := 0; i < shards; i++ {
		stores[i] = store.New()
		coll, err := collector.New(collector.Config{
			Store:      stores[i],
			Anonymizer: ipmeta.NewAnonymizer([]byte(fmt.Sprintf("adsim-shard-%d", i))),
			TrunkToken: trunkToken,
		})
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		eng, err := streamaudit.New(streamaudit.Config{Store: stores[i], Meta: meta})
		if err != nil {
			return fmt.Errorf("shard %d live engine: %w", i, err)
		}
		srv, err := collector.NewServer(coll, "127.0.0.1:0", collector.WithLiveAudit(eng))
		if err != nil {
			return fmt.Errorf("shard %d listen: %w", i, err)
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			_ = srv.Serve(ctx)
		}()
		stops = append(stops, func() { cancel(); <-done })
		trunkURLs[i] = fmt.Sprintf("ws://%s/trunk", srv.Addr())
		apiBases[i] = fmt.Sprintf("http://%s", srv.Addr())
	}

	rt, err := router.New(router.Config{
		Shards:     trunkURLs,
		TrunkToken: trunkToken,
		Logger:     logger,
	})
	if err != nil {
		return fmt.Errorf("router: %w", err)
	}
	mergeClient := &shardmerge.Client{Shards: apiBases}
	rsrv, err := router.NewServer(rt, "127.0.0.1:0",
		router.WithDrainGrace(10*time.Second),
		router.WithLiveMerge(mergeClient, streamaudit.StaticConfig{Meta: meta}))
	if err != nil {
		return fmt.Errorf("router listen: %w", err)
	}
	rdone := make(chan struct{})
	rctx, rcancel := context.WithCancel(context.Background())
	go func() {
		defer close(rdone)
		_ = rsrv.Serve(rctx)
	}()
	defer func() { rcancel(); <-rdone }()

	deadline := time.Now().Add(10 * time.Second)
	for rt.Health().Status != "ok" {
		if time.Now().After(deadline) {
			return fmt.Errorf("router trunks never established to all %d shards", shards)
		}
		time.Sleep(10 * time.Millisecond)
	}
	logger.Info("sharded tier up", "shards", shards, "beacon", rsrv.BeaconURL())

	if err := replayThroughGateway(rsrv.BeaconURL(), limit, wire, st, logger); err != nil {
		return err
	}

	// Quiesce: every acked commit must flush out of the router's spill
	// and land on its shard before the stores are audited.
	want := st.Len()
	if limit > 0 && limit < want {
		want = limit
	}
	deadline = time.Now().Add(30 * time.Second)
	for {
		total := 0
		for _, s := range stores {
			total += s.Len()
		}
		if total == want && rt.Health().SpillPending == 0 {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("sharded replay never quiesced: %d of %d impressions landed, %d commits still spilled",
				total, want, rt.Health().SpillPending)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Placement invariant: every record on exactly the shard its nonce
	// hashes to.
	for i, s := range stores {
		var perr error
		s.ForEach(func(im store.Impression) bool {
			if im.Nonce == "" {
				perr = fmt.Errorf("shard %d: impression %d stored without nonce", i, im.ID)
			} else if wantShard := shardmerge.ShardFor(im.Nonce, shards); wantShard != i {
				perr = fmt.Errorf("impression nonce %q on shard %d, hash owns shard %d", im.Nonce, i, wantShard)
			}
			return perr == nil
		})
		if perr != nil {
			return perr
		}
		logger.Info("shard placement verified", "shard", i, "impressions", s.Len())
	}

	// Merge invariant: the report over the merged shard exports (the
	// same state the router serves on /api/live/export) must deep-equal
	// the batch FullAudit over the shard-order combined store.
	combined := store.New()
	for _, s := range stores {
		var ierr error
		s.ForEach(func(im store.Impression) bool {
			_, ierr = combined.Insert(im)
			return ierr == nil
		})
		if ierr != nil {
			return fmt.Errorf("combining shard stores: %w", ierr)
		}
	}
	inputs := shardedAuditInputs(combined)
	aud, err := audit.New(combined, meta)
	if err != nil {
		return fmt.Errorf("combined auditor: %w", err)
	}
	wantRep, err := aud.FullAuditSerial(inputs)
	if err != nil {
		return fmt.Errorf("combined batch audit: %w", err)
	}
	merged, err := mergeClient.FetchMerged(context.Background())
	if err != nil {
		return fmt.Errorf("fetching shard exports: %w", err)
	}
	eng, err := streamaudit.NewStatic(streamaudit.StaticConfig{Meta: meta}, merged)
	if err != nil {
		return fmt.Errorf("static engine over merged export: %w", err)
	}
	gotRep, err := eng.Report(inputs)
	if err != nil {
		return fmt.Errorf("merged report: %w", err)
	}
	if !reflect.DeepEqual(gotRep, wantRep) {
		return fmt.Errorf("merged %d-shard audit diverges from combined-store batch audit", shards)
	}
	logger.Info("shard-merge audit verified",
		"shards", shards, "impressions", want, "campaigns", len(wantRep.PerCampaign))
	return nil
}

// shardedAuditInputs synthesizes per-campaign vendor reports from the
// replayed store, so the merged-vs-batch comparison audits a report
// that agrees with the store by construction and audit equality is the
// only thing under test.
func shardedAuditInputs(st *store.Store) []audit.CampaignInput {
	type pubCount struct {
		impressions int64
		clicks      int64
	}
	perCampaign := map[string]map[string]*pubCount{}
	st.ForEach(func(im store.Impression) bool {
		pubs := perCampaign[im.CampaignID]
		if pubs == nil {
			pubs = map[string]*pubCount{}
			perCampaign[im.CampaignID] = pubs
		}
		pc := pubs[im.Publisher]
		if pc == nil {
			pc = &pubCount{}
			pubs[im.Publisher] = pc
		}
		pc.impressions++
		pc.clicks += int64(im.Clicks)
		return true
	})
	var ids []string
	for id := range perCampaign {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var inputs []audit.CampaignInput
	for _, id := range ids {
		rep := &adnet.VendorReport{CampaignID: id}
		var total int64
		for pub, pc := range perCampaign[id] {
			rep.Rows = append(rep.Rows, adnet.ReportRow{
				Publisher:   pub,
				Impressions: pc.impressions,
				Clicks:      pc.clicks,
			})
			total += pc.impressions
		}
		sort.Slice(rep.Rows, func(a, b int) bool {
			if rep.Rows[a].Impressions != rep.Rows[b].Impressions {
				return rep.Rows[a].Impressions > rep.Rows[b].Impressions
			}
			return rep.Rows[a].Publisher < rep.Rows[b].Publisher
		})
		rep.TotalImpressionsCharged = total
		rep.ContextualImpressions = total * 2 / 3
		rep.RefundedImpressions = total / 10
		inputs = append(inputs, audit.CampaignInput{ID: id, Report: rep})
	}
	return inputs
}
