// Command adsim runs the paper's 8-campaign workload end to end on the
// simulated ad network, collects the beacon dataset, and writes the
// impression snapshot plus the vendor reports for later auditing.
//
// Usage:
//
//	adsim [-seed N] [-publishers N] [-snapshot imps.jsonl] [-csv imps.csv]
//	      [-metrics metrics.json] [-report] [-adversarial spoof|pool|bots|inflate|all]
//	      [-gateway ws://host:port/beacon] [-gateway-limit 1000] [-shards N]
//	      [-log-level info|debug|warn|error] [-log-format text|json]
//
// With -gateway the collected dataset is additionally replayed through
// a live edge gateway (or directly against a collector's beacon
// endpoint) as real WebSocket beacon sessions — each impression becomes
// a payload with a deterministic nonce, so replaying twice cannot
// double-count. This is the load path for exercising the
// adgateway → auditd tier with realistic campaign traffic;
// -gateway-limit caps how many impressions are replayed (0 = all).
//
// With -shards N the dataset is instead replayed through an in-process
// sharded deployment — N collectors, each with a live streaming-audit
// engine, behind a multiplexing router — and the run verifies the
// shard-merge invariant: the report over the router's merged live
// export deep-equals the batch audit over the union of the shard
// stores. -gateway-limit and -wire apply to this replay too.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"adaudit"
	"adaudit/internal/adnet"
	"adaudit/internal/beacon"
	"adaudit/internal/logutil"
	"adaudit/internal/store"
)

func main() {
	var (
		seed        = flag.Int64("seed", 1, "simulation seed (same seed, same dataset)")
		publishers  = flag.Int("publishers", 150000, "synthetic inventory size")
		snapshot    = flag.String("snapshot", "", "write the impression dataset (JSON lines) to this path")
		csvPath     = flag.String("csv", "", "write the impression dataset as CSV to this path")
		reports     = flag.String("reports", "", "write the vendor reports (JSON) to this path")
		conversions = flag.String("conversions", "", "write the conversion dataset (JSON lines) to this path")
		metricsPath = flag.String("metrics", "", "write the run's telemetry (JSON metrics view) to this path")
		printRep    = flag.Bool("report", true, "print the full audit report (tables 1-5, figures 1-3)")
		adversarial = flag.String("adversarial", "", "inject a fraud scenario into the vendor: spoof, pool, bots, inflate, or all")
		gatewayURL  = flag.String("gateway", "", "replay the dataset through this beacon endpoint (ws://host:port/beacon of an adgateway or auditd)")
		gatewayLim  = flag.Int("gateway-limit", 1000, "impressions to replay through -gateway (0 = the whole dataset)")
		wire        = flag.String("wire", "text", "beacon wire for -gateway replay: text, binary, or mixed (alternate per session)")
		shardsN     = flag.Int("shards", 0, "replay the dataset through an in-process sharded tier: N collectors behind a router, with the shard-merged audit verified against the batch audit (0 disables)")
		logFlags    = logutil.Register(flag.CommandLine)
	)
	flag.Parse()
	logger, err := logFlags.Logger(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "adsim:", err)
		os.Exit(2)
	}
	if err := run(*seed, *publishers, *snapshot, *csvPath, *reports, *conversions, *metricsPath, *printRep, *adversarial, *gatewayURL, *gatewayLim, *wire, *shardsN, logger); err != nil {
		logger.Error("run failed", "err", err)
		os.Exit(1)
	}
}

func run(seed int64, publishers int, snapshot, csvPath, reportsPath, conversionsPath, metricsPath string, printRep bool, adversarial, gatewayURL string, gatewayLim int, wire string, shardsN int, logger *slog.Logger) error {
	opts := adaudit.Options{Seed: seed, NumPublishers: publishers}
	if adversarial != "" {
		adv, err := adnet.AdversaryScenario(adversarial)
		if err != nil {
			return err
		}
		pol := adnet.DefaultPolicy()
		pol.Adversary = adv
		opts.Policy = &pol
		logger.Info("adversary enabled", "scenario", adversarial)
	}
	ws, err := adaudit.NewWorkspace(opts)
	if err != nil {
		return err
	}
	campaigns := adnet.PaperCampaigns()
	run, err := ws.Run(campaigns)
	if err != nil {
		return err
	}
	logger.Info("dataset collected",
		"impressions", run.Outcome.TotalLogged(),
		"campaigns", len(campaigns),
		"publishers", len(ws.Store.Publishers("")))

	if snapshot != "" {
		if err := writeTo(snapshot, ws.Store.WriteSnapshot); err != nil {
			return fmt.Errorf("writing snapshot: %w", err)
		}
	}
	if csvPath != "" {
		if err := writeTo(csvPath, ws.Store.WriteCSV); err != nil {
			return fmt.Errorf("writing csv: %w", err)
		}
	}
	if conversionsPath != "" {
		if err := writeTo(conversionsPath, ws.Store.WriteConversionsSnapshot); err != nil {
			return fmt.Errorf("writing conversions: %w", err)
		}
	}
	if reportsPath != "" {
		err := writeTo(reportsPath, func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(run.Outcome.Reports())
		})
		if err != nil {
			return fmt.Errorf("writing reports: %w", err)
		}
	}
	if printRep {
		rep, err := run.Audit()
		if err != nil {
			return err
		}
		if err := run.WriteReport(os.Stdout, rep); err != nil {
			return err
		}
	}
	if gatewayURL != "" {
		if err := replayThroughGateway(gatewayURL, gatewayLim, wire, ws.Store, logger); err != nil {
			return fmt.Errorf("gateway replay: %w", err)
		}
	}
	if shardsN > 0 {
		if err := replayThroughShards(shardsN, gatewayLim, wire, seed, publishers, ws.Store, logger); err != nil {
			return fmt.Errorf("sharded replay: %w", err)
		}
	}
	// Metrics are written last so the telemetry view covers the audit
	// stages (when -report ran one), not just ingest.
	if metricsPath != "" {
		reg := ws.Collector.Telemetry()
		if reg == nil {
			return fmt.Errorf("writing metrics: collector runs without telemetry")
		}
		if err := writeTo(metricsPath, reg.WriteJSON); err != nil {
			return fmt.Errorf("writing metrics: %w", err)
		}
	}
	return nil
}

// replayThroughGateway re-emits the collected dataset as real beacon
// sessions against url — the load path for driving an adgateway →
// auditd deployment with the simulator's campaign mix. Each impression
// carries a nonce derived from its store ID, so an interrupted replay
// can be rerun without double-counting, and interaction events are
// regenerated from the recorded mousemove/click counts. Exposures are
// compressed (capped at 100ms): a beacon session holds its connection
// open for the exposure in real time, and replaying minutes-long
// exposures faithfully would turn a dataset into hours of wall clock.
func replayThroughGateway(url string, limit int, wire string, st *store.Store, logger *slog.Logger) error {
	switch wire {
	case "text", "binary", "mixed":
	default:
		return fmt.Errorf("unknown -wire %q (want text, binary or mixed)", wire)
	}
	var todo []store.Impression
	st.ForEach(func(im store.Impression) bool {
		todo = append(todo, im)
		return limit == 0 || len(todo) < limit
	})
	logger.Info("replaying dataset through gateway", "endpoint", url, "wire", wire, "impressions", len(todo))

	const workers = 8
	var acked, failed atomic.Int64
	jobs := make(chan store.Impression)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := &beacon.Client{CollectorURL: url, MaxAttempts: 5}
			if wire == "binary" {
				cl.Wire = beacon.WireBinary
			}
			// "mixed" alternates the wire per session on a second
			// client, exercising both codecs against one endpoint.
			binCl := &beacon.Client{CollectorURL: url, MaxAttempts: 5, Wire: beacon.WireBinary}
			for im := range jobs {
				exposure := im.Exposure
				if exposure > 100*time.Millisecond {
					exposure = 100 * time.Millisecond
				}
				var events []beacon.Event
				for i := 0; i < im.MouseMoves; i++ {
					events = append(events, beacon.Event{Kind: beacon.EventMouseMove, At: exposure / 2})
				}
				for i := 0; i < im.Clicks; i++ {
					events = append(events, beacon.Event{Kind: beacon.EventClick, At: exposure / 2})
				}
				p := beacon.Payload{
					CampaignID: im.CampaignID,
					CreativeID: im.CreativeID,
					PageURL:    im.PageURL,
					UserAgent:  im.UserAgent,
					Nonce:      fmt.Sprintf("adsim-replay-%d", im.ID),
					Events:     events,
				}
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				rep := cl
				if wire == "mixed" && im.ID%2 == 0 {
					rep = binCl
				}
				err := rep.Report(ctx, p, exposure)
				cancel()
				if err != nil {
					failed.Add(1)
					logger.Debug("replay report failed", "impression", im.ID, "err", err)
				} else {
					acked.Add(1)
				}
			}
		}()
	}
	for _, im := range todo {
		jobs <- im
	}
	close(jobs)
	wg.Wait()

	logger.Info("gateway replay done", "acked", acked.Load(), "failed", failed.Load())
	if failed.Load() > 0 {
		return fmt.Errorf("%d of %d replayed impressions were never acknowledged", failed.Load(), len(todo))
	}
	return nil
}

// writeTo publishes an output file atomically: the content streams to a
// sibling temp file which is renamed into place only once fully written
// and closed, so a crashed or killed run can never leave a torn dataset
// where a previous complete one stood.
func writeTo(path string, write func(w io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
