// Command adsim runs the paper's 8-campaign workload end to end on the
// simulated ad network, collects the beacon dataset, and writes the
// impression snapshot plus the vendor reports for later auditing.
//
// Usage:
//
//	adsim [-seed N] [-publishers N] [-snapshot imps.jsonl] [-csv imps.csv]
//	      [-metrics metrics.json] [-report]
//	      [-log-level info|debug|warn|error] [-log-format text|json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"

	"adaudit"
	"adaudit/internal/adnet"
	"adaudit/internal/logutil"
)

func main() {
	var (
		seed        = flag.Int64("seed", 1, "simulation seed (same seed, same dataset)")
		publishers  = flag.Int("publishers", 150000, "synthetic inventory size")
		snapshot    = flag.String("snapshot", "", "write the impression dataset (JSON lines) to this path")
		csvPath     = flag.String("csv", "", "write the impression dataset as CSV to this path")
		reports     = flag.String("reports", "", "write the vendor reports (JSON) to this path")
		conversions = flag.String("conversions", "", "write the conversion dataset (JSON lines) to this path")
		metricsPath = flag.String("metrics", "", "write the run's telemetry (JSON metrics view) to this path")
		printRep    = flag.Bool("report", true, "print the full audit report (tables 1-4, figures 1-3)")
		logFlags    = logutil.Register(flag.CommandLine)
	)
	flag.Parse()
	logger, err := logFlags.Logger(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "adsim:", err)
		os.Exit(2)
	}
	if err := run(*seed, *publishers, *snapshot, *csvPath, *reports, *conversions, *metricsPath, *printRep, logger); err != nil {
		logger.Error("run failed", "err", err)
		os.Exit(1)
	}
}

func run(seed int64, publishers int, snapshot, csvPath, reportsPath, conversionsPath, metricsPath string, printRep bool, logger *slog.Logger) error {
	ws, err := adaudit.NewWorkspace(adaudit.Options{Seed: seed, NumPublishers: publishers})
	if err != nil {
		return err
	}
	campaigns := adnet.PaperCampaigns()
	run, err := ws.Run(campaigns)
	if err != nil {
		return err
	}
	logger.Info("dataset collected",
		"impressions", run.Outcome.TotalLogged(),
		"campaigns", len(campaigns),
		"publishers", len(ws.Store.Publishers("")))

	if snapshot != "" {
		if err := writeTo(snapshot, ws.Store.WriteSnapshot); err != nil {
			return fmt.Errorf("writing snapshot: %w", err)
		}
	}
	if csvPath != "" {
		if err := writeTo(csvPath, ws.Store.WriteCSV); err != nil {
			return fmt.Errorf("writing csv: %w", err)
		}
	}
	if conversionsPath != "" {
		if err := writeTo(conversionsPath, ws.Store.WriteConversionsSnapshot); err != nil {
			return fmt.Errorf("writing conversions: %w", err)
		}
	}
	if reportsPath != "" {
		err := writeTo(reportsPath, func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(run.Outcome.Reports())
		})
		if err != nil {
			return fmt.Errorf("writing reports: %w", err)
		}
	}
	if printRep {
		rep, err := run.Audit()
		if err != nil {
			return err
		}
		if err := run.WriteReport(os.Stdout, rep); err != nil {
			return err
		}
	}
	// Metrics are written last so the telemetry view covers the audit
	// stages (when -report ran one), not just ingest.
	if metricsPath != "" {
		reg := ws.Collector.Telemetry()
		if reg == nil {
			return fmt.Errorf("writing metrics: collector runs without telemetry")
		}
		if err := writeTo(metricsPath, reg.WriteJSON); err != nil {
			return fmt.Errorf("writing metrics: %w", err)
		}
	}
	return nil
}

// writeTo publishes an output file atomically: the content streams to a
// sibling temp file which is renamed into place only once fully written
// and closed, so a crashed or killed run can never leave a torn dataset
// where a previous complete one stood.
func writeTo(path string, write func(w io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
