package main

import (
	"encoding/json"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"testing"

	"adaudit/internal/adnet"
	"adaudit/internal/store"
)

func TestRunWritesAllOutputs(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "imps.jsonl")
	csvPath := filepath.Join(dir, "imps.csv")
	reports := filepath.Join(dir, "reports.json")
	convs := filepath.Join(dir, "convs.jsonl")
	metrics := filepath.Join(dir, "metrics.json")

	// Small universe for test speed; -report=false to skip rendering.
	if err := run(7, 6000, snap, csvPath, reports, convs, metrics, false, "", "", 0, "text", 0, testLogger()); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(snap)
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.ReadSnapshot(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() == 0 {
		t.Fatal("snapshot empty")
	}
	if got := len(st.Campaigns()); got != 8 {
		t.Fatalf("campaigns in snapshot = %d", got)
	}

	cf, err := os.Open(convs)
	if err != nil {
		t.Fatal(err)
	}
	err = st.ReadConversionsSnapshot(cf)
	cf.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.NumConversions() == 0 {
		t.Fatal("no conversions written")
	}

	rf, err := os.Open(reports)
	if err != nil {
		t.Fatal(err)
	}
	var vendorReports map[string]*adnet.VendorReport
	err = json.NewDecoder(rf).Decode(&vendorReports)
	rf.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(vendorReports) != 8 {
		t.Fatalf("vendor reports = %d", len(vendorReports))
	}
	for id, rep := range vendorReports {
		if rep.TotalImpressionsCharged == 0 {
			t.Fatalf("report %s has no charges", id)
		}
	}

	if fi, err := os.Stat(csvPath); err != nil || fi.Size() == 0 {
		t.Fatalf("csv missing or empty: %v", err)
	}

	mf, err := os.Open(metrics)
	if err != nil {
		t.Fatal(err)
	}
	var view map[string]json.RawMessage
	err = json.NewDecoder(mf).Decode(&view)
	mf.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"adaudit_collector_ingested_total",
		"adaudit_campaign_runs_total",
		"adaudit_store_inserts_total",
	} {
		if _, ok := view[name]; !ok {
			t.Fatalf("metrics view missing %s; have %d series", name, len(view))
		}
	}
}

// TestRunAdversarialScenario drives the CLI end to end with the
// combined fraud scenario and checks the written artifacts carry the
// attack: vendor reports with seller attributions the detectors flag,
// and ground-truth labels surfaced via the rows themselves.
func TestRunAdversarialScenario(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "imps.jsonl")
	reports := filepath.Join(dir, "reports.json")

	if err := run(7, 6000, snap, "", reports, "", "", false, "all", "", 0, "text", 0, testLogger()); err != nil {
		t.Fatal(err)
	}

	rf, err := os.Open(reports)
	if err != nil {
		t.Fatal(err)
	}
	var vendorReports map[string]*adnet.VendorReport
	err = json.NewDecoder(rf).Decode(&vendorReports)
	rf.Close()
	if err != nil {
		t.Fatal(err)
	}
	attributed := 0
	for _, rep := range vendorReports {
		for _, row := range rep.Rows {
			if row.SellerID != "" {
				attributed++
			}
		}
	}
	if attributed == 0 {
		t.Fatal("adversarial run wrote reports without seller attributions")
	}

	f, err := os.Open(snap)
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.ReadSnapshot(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() == 0 {
		t.Fatal("snapshot empty")
	}
}

func TestRunRejectsBadPath(t *testing.T) {
	if err := run(1, 6000, "/nonexistent-dir/x.jsonl", "", "", "", "", false, "", "", 0, "text", 0, testLogger()); err == nil {
		t.Fatal("bad snapshot path accepted")
	}
}

func testLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}
