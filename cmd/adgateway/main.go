// Command adgateway runs the trusted edge ingest gateway: it
// terminates beacon WebSockets close to users, enforces origin
// admission policy, and forwards impressions to the central collector
// (auditd) over a small pool of persistent trunk connections with
// batching, circuit breaking and an in-gateway spill buffer — a client
// the gateway acknowledged is delivered even across a collector
// outage (replayed through the collector's nonce/stream dedup, so
// never double-counted).
//
// Usage:
//
//	adgateway -collector ws://127.0.0.1:8080/trunk
//	          [-listen 127.0.0.1:8081] [-trunk-token TOKEN] [-trunks 2]
//	          [-origins ads.example.com,cdn.example.net] [-max-sessions N]
//	          [-gateway-id ID] [-spill-limit 65536] [-drain-grace 5s]
//	          [-log-level info] [-log-format text]
//
// The listen address serves the beacon endpoint on /beacon plus the
// operational surface: GET /healthz (ok → degraded → unhealthy as
// trunks break), GET /metrics (Prometheus text) and GET /api/metrics
// (JSON). On SIGINT/SIGTERM the gateway drains: admission flips to
// shedding, open sessions are handed back with the resumable 1012
// close code and a Retry-After hint (the beacon client reconnects
// elsewhere and resumes with its nonce), and the spill buffer is given
// -drain-grace to flush every acknowledged commit into the collector.
//
// Each gateway instance needs a distinct -gateway-id (commits are
// deduped per gateway+stream); the default is random per run, which is
// safe but makes collector-side dedup state unreusable across gateway
// restarts. -trunk-token must match auditd's -trunk-token.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"adaudit/internal/gateway"
	"adaudit/internal/logutil"
)

func main() {
	var (
		listen      = flag.String("listen", "127.0.0.1:8081", "host:port for the beacon endpoint")
		collectorWS = flag.String("collector", "", "collector trunk endpoint (ws://host:port/trunk); required")
		trunkToken  = flag.String("trunk-token", "", "shared secret presented on trunk handshakes (must match auditd -trunk-token)")
		trunks      = flag.Int("trunks", 2, "persistent trunk connections to the collector")
		origins     = flag.String("origins", "", "comma-separated page origins admitted to /beacon (subdomains included; empty admits all)")
		maxSessions = flag.Int("max-sessions", 0, "concurrent beacon session cap (0 disables)")
		gatewayID   = flag.String("gateway-id", "", "stable gateway identity on the trunk wire (default: random per run)")
		spillLimit  = flag.Int("spill-limit", 0, "unacked commits held across a collector outage before shedding (0 = default 65536)")
		drainGrace  = flag.Duration("drain-grace", 5*time.Second, "shutdown budget for flushing acked commits to the collector")
		logFlags    = logutil.Register(flag.CommandLine)
	)
	flag.Parse()
	logger, err := logFlags.Logger(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "adgateway:", err)
		os.Exit(2)
	}
	if *collectorWS == "" {
		fmt.Fprintln(os.Stderr, "adgateway: -collector is required (ws://host:port/trunk)")
		os.Exit(2)
	}

	var allowed []string
	for _, o := range strings.Split(*origins, ",") {
		if o = strings.TrimSpace(o); o != "" {
			allowed = append(allowed, o)
		}
	}

	g, err := gateway.New(gateway.Config{
		CollectorURL:   *collectorWS,
		TrunkToken:     *trunkToken,
		GatewayID:      *gatewayID,
		Trunks:         *trunks,
		AllowedOrigins: allowed,
		MaxSessions:    *maxSessions,
		SpillLimit:     *spillLimit,
		Logger:         logger,
	})
	if err != nil {
		logger.Error("gateway init failed", "err", err)
		os.Exit(1)
	}
	srv, err := gateway.NewServer(g, *listen, gateway.WithDrainGrace(*drainGrace))
	if err != nil {
		logger.Error("gateway listen failed", "err", err)
		os.Exit(1)
	}
	logger.Info("gateway listening",
		"beacon", srv.BeaconURL(),
		"collector", *collectorWS,
		"trunks", *trunks,
		"healthz", fmt.Sprintf("http://%s/healthz", srv.Addr()))

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := srv.Serve(ctx); err != nil {
		logger.Error("gateway failed", "err", err)
		os.Exit(1)
	}
	st := g.Health()
	logger.Info("gateway stopped", "spill_pending", st.SpillPending)
}
