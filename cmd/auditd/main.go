// Command auditd runs the central beacon collector: the WebSocket
// endpoint the in-ad JavaScript reports to (§3 of the paper). It
// terminates beacon connections, derives impression timestamps and
// exposure times from connection lifetimes, enriches records with IP
// metadata, anonymises client addresses, and persists the dataset as a
// JSON-lines snapshot on shutdown (SIGINT/SIGTERM) or periodically.
//
// Usage:
//
//	auditd [-listen 127.0.0.1:8080] [-snapshot imps.jsonl] [-secret KEY]
//	       [-flush 30s] [-print-script CAMPAIGN:CREATIVE]
//	       [-debug-addr 127.0.0.1:6060] [-selfreport 60s]
//	       [-unhealthy-after 5m] [-wal journal.wal] [-wal-sync os]
//	       [-wal-group-latency 0]
//	       [-live] [-live-seed 1] [-live-publishers 150000]
//	       [-trace-sample N] [-trunk-token TOKEN]
//	       [-log-level info] [-log-format text]
//
// With -trunk-token the daemon accepts trunk connections from edge
// ingest gateways (cmd/adgateway) on /trunk: gateways terminate beacon
// sessions close to users and forward batched, stream-multiplexed
// commits over a few persistent connections, authenticated by the
// shared token. Without the flag, /trunk refuses all handshakes.
//
// With -trace-sample N one in N impressions is traced end to end —
// beacon context, decode, enrichment, WAL append, store commit,
// change-feed publish, streaming-audit apply — and the resulting
// flight recorder is served on GET /api/trace/recent, /api/trace/{id}
// and /api/trace/export (Chrome about:tracing / Perfetto JSON). Log
// records emitted while handling a traced impression carry its
// trace_id.
//
// With -live the daemon attaches a streaming audit engine to the
// store's change feed and serves incrementally maintained audit views
// on the listen address: GET /api/live/summary, GET
// /api/live/audit/{campaign}, and GET /api/live/stream (server-sent
// events). -live-seed and -live-publishers regenerate the synthetic
// publisher-metadata universe the popularity and context dimensions
// need, and must match the dataset's.
//
// With -wal every acknowledged impression is journaled to a write-ahead
// log before it enters the in-memory store: at boot the daemon loads the
// last snapshot (if any), replays the journal over it, and resumes —
// a crash loses nothing the collector acknowledged. Snapshots compact
// the journal. -wal-sync picks the fsync policy: os (default; survives
// process crashes), always (fsync per impression; survives power loss),
// interval (fsync on a 100ms timer), or group (group commit: the
// power-loss durability of always at a fraction of the fsync count —
// concurrently-committing sessions share one flush, and each ack still
// waits for the flush covering its entry; -wal-group-latency optionally
// delays each flush to widen the batch).
//
// With -print-script the daemon prints the embeddable JavaScript tag
// for the given campaign/creative pair and the running endpoint.
//
// Operational surface: the listen address serves GET /metrics
// (Prometheus text), /api/metrics (JSON) and /healthz alongside the
// beacon endpoint; -debug-addr additionally serves net/http/pprof on a
// separate (ideally loopback-only) listener; -selfreport logs a
// periodic one-line ingest summary (rate, insert latency quantiles,
// rejects by class).
package main

import (
	"context"
	"crypto/rand"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"adaudit/internal/adnet"
	"adaudit/internal/audit"
	"adaudit/internal/beacon"
	"adaudit/internal/collector"
	"adaudit/internal/ipmeta"
	"adaudit/internal/logutil"
	"adaudit/internal/publisher"
	"adaudit/internal/store"
	"adaudit/internal/streamaudit"
	"adaudit/internal/telemetry"
	"adaudit/internal/trace"
)

func main() {
	var (
		listen         = flag.String("listen", "127.0.0.1:8080", "host:port for the beacon endpoint")
		snapshot       = flag.String("snapshot", "impressions.jsonl", "dataset snapshot path")
		secret         = flag.String("secret", "", "IP anonymisation key (default: random per run)")
		flush          = flag.Duration("flush", 30*time.Second, "snapshot flush interval (0 disables)")
		printScript    = flag.String("print-script", "", "print the beacon JS for CAMPAIGN:CREATIVE and the endpoint")
		debugAddr      = flag.String("debug-addr", "", "host:port for net/http/pprof (empty disables)")
		selfReport     = flag.Duration("selfreport", 60*time.Second, "self-report log interval (0 disables)")
		unhealthyAfter = flag.Duration("unhealthy-after", 0, "/healthz flips unhealthy when no record committed for this long (0 disables)")
		walPath        = flag.String("wal", "", "write-ahead log path (empty disables the journal)")
		walSync        = flag.String("wal-sync", "os", "WAL fsync policy: os, always, interval or group")
		walGroupLat    = flag.Duration("wal-group-latency", 0, "extra wait before each group-commit fsync to widen batches (0 flushes immediately; only with -wal-sync=group)")
		live           = flag.Bool("live", false, "serve streaming audit views (/api/live/...) from the store change feed")
		liveSeed       = flag.Int64("live-seed", 1, "seed of the synthetic metadata universe for -live (must match the dataset's)")
		livePubs       = flag.Int("live-publishers", 150000, "size of the synthetic metadata universe for -live")
		traceSample    = flag.Int("trace-sample", 0, "trace 1 in N impressions end to end and serve the flight recorder on /api/trace/ (0 disables)")
		trunkToken     = flag.String("trunk-token", "", "shared secret edge gateways present on /trunk handshakes (empty refuses trunks)")
		logFlags       = logutil.Register(flag.CommandLine)
	)
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	opts := daemonOptions{
		listen:         *listen,
		snapshotPath:   *snapshot,
		secret:         *secret,
		flush:          *flush,
		printScript:    *printScript,
		debugAddr:      *debugAddr,
		selfReport:     *selfReport,
		unhealthyAfter: *unhealthyAfter,
		walPath:        *walPath,
		walSync:        *walSync,
		walGroupLat:    *walGroupLat,
		live:           *live,
		liveSeed:       *liveSeed,
		livePubs:       *livePubs,
		traceSample:    *traceSample,
		trunkToken:     *trunkToken,
	}
	logger, err := logFlags.Logger(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "auditd:", err)
		os.Exit(2)
	}
	opts.logger = logger
	if err := run(ctx, opts, os.Stdout); err != nil {
		logger.Error("daemon failed", "err", err)
		os.Exit(1)
	}
}

// daemonOptions carries the flag values into run, keeping it testable.
type daemonOptions struct {
	listen         string
	snapshotPath   string
	secret         string
	flush          time.Duration
	printScript    string
	debugAddr      string
	selfReport     time.Duration
	unhealthyAfter time.Duration
	walPath        string
	walSync        string
	walGroupLat    time.Duration
	live           bool
	liveSeed       int64
	livePubs       int
	traceSample    int
	trunkToken     string
	// logger overrides the default stderr text logger (tests pass a
	// quiet one; main passes the -log-level/-log-format one).
	logger *slog.Logger
}

// run starts the collector and serves until ctx is cancelled; the final
// dataset snapshot is written on the way out. Factored from main so the
// daemon is testable end to end.
func run(ctx context.Context, opts daemonOptions, out io.Writer) error {
	logger := opts.logger
	if logger == nil {
		logger = slog.New(logutil.WithTraceIDs(slog.NewTextHandler(os.Stderr, nil)))
	}

	key := []byte(opts.secret)
	if len(key) == 0 {
		key = make([]byte, 32)
		if _, err := rand.Read(key); err != nil {
			return fmt.Errorf("generating anonymisation key: %w", err)
		}
		logger.Info("generated ephemeral anonymisation key; pseudonyms will not be comparable across runs")
	}

	st, wal, err := openStore(opts, logger)
	if err != nil {
		return err
	}
	if wal != nil {
		defer wal.Close()
	}
	var tracer *trace.Tracer
	if opts.traceSample > 0 {
		tracer = trace.NewTracer(trace.NewRecorder(trace.DefaultCapacity), opts.traceSample)
		logger.Info("impression tracing enabled", "sample", fmt.Sprintf("1/%d", opts.traceSample))
	}
	coll, err := collector.New(collector.Config{
		Store:      st,
		Anonymizer: ipmeta.NewAnonymizer(key),
		Logger:     logger,
		Tracer:     tracer,
		TrunkToken: opts.trunkToken,
	})
	if opts.trunkToken != "" {
		logger.Info("trunk endpoint enabled for edge gateways", "path", "/trunk")
	}
	if err != nil {
		return err
	}
	srvOpts := []collector.ServerOption{
		collector.WithHealthCheck("snapshot-dir", snapshotDirWritable(opts.snapshotPath)),
	}
	if opts.unhealthyAfter > 0 {
		srvOpts = append(srvOpts, collector.WithMaxIngestAge(opts.unhealthyAfter))
	}
	if opts.live {
		// The engine primes from whatever the store already holds (a
		// recovered WAL dataset included) and then follows the change
		// feed; the server owns its Run loop.
		uni, err := publisher.NewUniverse(publisher.Config{
			Seed:          opts.liveSeed,
			NumPublishers: opts.livePubs,
		})
		if err != nil {
			return fmt.Errorf("building metadata universe for -live: %w", err)
		}
		keywords := map[string][]string{}
		for _, c := range adnet.PaperCampaigns() {
			keywords[c.ID] = c.Keywords
		}
		eng, err := streamaudit.New(streamaudit.Config{
			Store:     st,
			Meta:      audit.UniverseMetadata{Universe: uni},
			Keywords:  keywords,
			Telemetry: coll.Telemetry(),
		})
		if err != nil {
			return err
		}
		srvOpts = append(srvOpts, collector.WithLiveAudit(eng))
		logger.Info("live audit enabled", "publishers", opts.livePubs, "seed", opts.liveSeed)
	}
	srv, err := collector.NewServer(coll, opts.listen, srvOpts...)
	if err != nil {
		return err
	}
	logger.Info("collector listening", "beacon", srv.BeaconURL(), "snapshot", opts.snapshotPath,
		"metrics", fmt.Sprintf("http://%s/metrics", srv.Addr()))

	if opts.printScript != "" {
		campaignID, creativeID, ok := strings.Cut(opts.printScript, ":")
		if !ok {
			return fmt.Errorf("-print-script wants CAMPAIGN:CREATIVE, got %q", opts.printScript)
		}
		js, err := beacon.Script(beacon.ScriptConfig{
			CollectorURL: srv.BeaconURL(),
			CampaignID:   campaignID,
			CreativeID:   creativeID,
		})
		if err != nil {
			return err
		}
		fmt.Fprintln(out, js)
	}

	if opts.debugAddr != "" {
		debugSrv, err := newDebugServer(opts.debugAddr, coll.Telemetry())
		if err != nil {
			return err
		}
		defer debugSrv.Close()
		go func() {
			logger.Info("debug server listening", "pprof", fmt.Sprintf("http://%s/debug/pprof/", opts.debugAddr))
			if err := debugSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				logger.Error("debug server failed", "err", err)
			}
		}()
	}

	// All snapshot writes — periodic flush and the final write — go
	// through one snapshotter so two writers can never race the rename
	// to the same path.
	snap := &snapshotter{st: st, path: opts.snapshotPath, logger: logger}
	if opts.flush > 0 {
		go func() {
			t := time.NewTicker(opts.flush)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if err := snap.tryWrite(); err != nil {
						logger.Error("periodic snapshot failed", "err", err)
					}
				}
			}
		}()
	}

	if opts.selfReport > 0 {
		go selfReportLoop(ctx, coll, opts.selfReport, logger)
	}

	err = srv.Serve(ctx)
	logger.Info("shutting down", "ingested", coll.Metrics.Ingested.Load(),
		"rejected", coll.Metrics.Rejected.Load())
	if werr := snap.write(); werr != nil {
		return fmt.Errorf("final snapshot: %w", werr)
	}
	return err
}

// openStore builds the daemon's store. Without -wal it starts empty
// (the historical behaviour: the snapshot is an output, not a boot
// input). With -wal it recovers: last snapshot, then journal replay,
// then a journal attached for everything that follows — so the store
// resumes exactly where the previous process died.
func openStore(opts daemonOptions, logger *slog.Logger) (*store.Store, *store.WAL, error) {
	if opts.walPath == "" {
		return store.New(), nil, nil
	}
	policy, err := store.ParseSyncPolicy(opts.walSync)
	if err != nil {
		return nil, nil, err
	}
	var base *store.Store
	if f, err := os.Open(opts.snapshotPath); err == nil {
		base, err = store.ReadSnapshot(f)
		f.Close()
		if err != nil {
			return nil, nil, fmt.Errorf("loading snapshot %s: %w", opts.snapshotPath, err)
		}
		logger.Info("loaded snapshot", "path", opts.snapshotPath, "records", base.Len())
	} else if !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("opening snapshot %s: %w", opts.snapshotPath, err)
	}
	st, applied, err := store.RecoverWAL(opts.walPath, base, logger)
	if err != nil {
		return nil, nil, fmt.Errorf("recovering wal %s: %w", opts.walPath, err)
	}
	if applied > 0 {
		logger.Info("replayed write-ahead log", "path", opts.walPath,
			"entries", applied, "records", st.Len())
	}
	wal, err := store.OpenWAL(opts.walPath, store.WALOptions{Policy: policy, GroupLatency: opts.walGroupLat})
	if err != nil {
		return nil, nil, err
	}
	st.AttachWAL(wal)
	return st, wal, nil
}

// newDebugServer builds the -debug-addr sidecar: net/http/pprof plus a
// copy of the metrics endpoints, so profiling and scraping can be kept
// off the public listener entirely.
func newDebugServer(addr string, reg *telemetry.Registry) (*http.Server, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if reg != nil {
		mux.Handle("/metrics", reg.Handler())
		mux.Handle("/api/metrics", reg.JSONHandler())
	}
	return &http.Server{
		Addr:              addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}, nil
}

// snapshotDirWritable is the /healthz check that the snapshot can still
// be persisted: it probes the target directory with a create+remove.
func snapshotDirWritable(path string) func() error {
	return func() error {
		probe := filepath.Join(filepath.Dir(path), ".auditd-health-probe")
		f, err := os.Create(probe)
		if err != nil {
			return fmt.Errorf("snapshot dir not writable: %w", err)
		}
		f.Close()
		return os.Remove(probe)
	}
}

// selfReportLoop logs a periodic one-line operational summary: ingest
// rate over the interval, store insert latency quantiles, live
// sessions, and rejects by class — the glanceable "is the measurement
// apparatus healthy" line the paper's methodology depends on.
func selfReportLoop(ctx context.Context, coll *collector.Collector, interval time.Duration, logger *slog.Logger) {
	reg := coll.Telemetry()
	if reg == nil {
		return
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	lastIngested := coll.Metrics.Ingested.Load()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			ingested := coll.Metrics.Ingested.Load()
			rate := float64(ingested-lastIngested) / interval.Seconds()
			lastIngested = ingested
			args := []any{
				"ingest_rate_per_s", fmt.Sprintf("%.1f", rate),
				"ingested_total", ingested,
				"sessions", coll.SessionCount(),
			}
			if s, ok := reg.Find("adaudit_store_insert_seconds", nil); ok && s.Hist != nil {
				args = append(args,
					"insert_p50_us", fmt.Sprintf("%.1f", s.Hist.Quantile(0.50)*1e6),
					"insert_p99_us", fmt.Sprintf("%.1f", s.Hist.Quantile(0.99)*1e6),
				)
			}
			if rejects := rejectsByClass(reg); rejects != "" {
				args = append(args, "rejects", rejects)
			}
			logger.Info("self-report", args...)
		}
	}
}

// rejectsByClass renders the per-class reject counters as
// "class=count,class=count" (empty when nothing was rejected).
func rejectsByClass(reg *telemetry.Registry) string {
	parts := []string{}
	for _, s := range reg.Snapshot() {
		if s.Name != "adaudit_collector_rejects_total" || s.Value == 0 {
			continue
		}
		parts = append(parts, fmt.Sprintf("%s=%d", s.Labels["class"], int64(s.Value)))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// snapshotter serializes snapshot writes: the periodic flusher and the
// final shutdown write used to race each other renaming to the same
// path, which could publish a stale snapshot over a fresher one.
type snapshotter struct {
	mu     sync.Mutex
	st     *store.Store
	path   string
	logger *slog.Logger
}

// write blocks until the snapshot is written (the shutdown path: the
// final dataset must land).
func (s *snapshotter) write() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return writeSnapshot(s.st, s.path)
}

// tryWrite skips (and logs) when another write is already in flight —
// a slow disk must not queue up overlapping periodic flushes.
func (s *snapshotter) tryWrite() error {
	if !s.mu.TryLock() {
		s.logger.Info("snapshot write already in flight; skipping periodic flush", "path", s.path)
		return nil
	}
	defer s.mu.Unlock()
	return writeSnapshot(s.st, s.path)
}

// writeSnapshot publishes the dataset with the temp-file + rename
// discipline and, when a WAL is attached, compacts the journal the
// moment the snapshot is durably in place (SnapshotCompact holds the
// store lock across both, so no acknowledged impression can fall
// between snapshot and journal).
func writeSnapshot(st *store.Store, path string) error {
	return st.SnapshotCompact(func(write func(io.Writer) error) error {
		tmp := path + ".tmp"
		f, err := os.Create(tmp)
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
		if err := f.Close(); err != nil {
			os.Remove(tmp)
			return err
		}
		return os.Rename(tmp, path)
	})
}
