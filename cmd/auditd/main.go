// Command auditd runs the central beacon collector: the WebSocket
// endpoint the in-ad JavaScript reports to (§3 of the paper). It
// terminates beacon connections, derives impression timestamps and
// exposure times from connection lifetimes, enriches records with IP
// metadata, anonymises client addresses, and persists the dataset as a
// JSON-lines snapshot on shutdown (SIGINT/SIGTERM) or periodically.
//
// Usage:
//
//	auditd [-listen 127.0.0.1:8080] [-snapshot imps.jsonl] [-secret KEY]
//	       [-flush 30s] [-print-script CAMPAIGN:CREATIVE]
//
// With -print-script the daemon prints the embeddable JavaScript tag
// for the given campaign/creative pair and the running endpoint.
package main

import (
	"context"
	"crypto/rand"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"adaudit/internal/beacon"
	"adaudit/internal/collector"
	"adaudit/internal/ipmeta"
	"adaudit/internal/store"
)

func main() {
	var (
		listen      = flag.String("listen", "127.0.0.1:8080", "host:port for the beacon endpoint")
		snapshot    = flag.String("snapshot", "impressions.jsonl", "dataset snapshot path")
		secret      = flag.String("secret", "", "IP anonymisation key (default: random per run)")
		flush       = flag.Duration("flush", 30*time.Second, "snapshot flush interval (0 disables)")
		printScript = flag.String("print-script", "", "print the beacon JS for CAMPAIGN:CREATIVE and the endpoint")
	)
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *listen, *snapshot, *secret, *flush, *printScript, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "auditd:", err)
		os.Exit(1)
	}
}

// run starts the collector and serves until ctx is cancelled; the final
// dataset snapshot is written on the way out. Factored from main so the
// daemon is testable end to end.
func run(ctx context.Context, listen, snapshotPath, secret string, flush time.Duration, printScript string, out io.Writer) error {
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))

	key := []byte(secret)
	if len(key) == 0 {
		key = make([]byte, 32)
		if _, err := rand.Read(key); err != nil {
			return fmt.Errorf("generating anonymisation key: %w", err)
		}
		logger.Info("generated ephemeral anonymisation key; pseudonyms will not be comparable across runs")
	}

	st := store.New()
	coll, err := collector.New(collector.Config{
		Store:      st,
		Anonymizer: ipmeta.NewAnonymizer(key),
		Logger:     logger,
	})
	if err != nil {
		return err
	}
	srv, err := collector.NewServer(coll, listen)
	if err != nil {
		return err
	}
	logger.Info("collector listening", "beacon", srv.BeaconURL(), "snapshot", snapshotPath)

	if printScript != "" {
		campaignID, creativeID, ok := strings.Cut(printScript, ":")
		if !ok {
			return fmt.Errorf("-print-script wants CAMPAIGN:CREATIVE, got %q", printScript)
		}
		js, err := beacon.Script(beacon.ScriptConfig{
			CollectorURL: srv.BeaconURL(),
			CampaignID:   campaignID,
			CreativeID:   creativeID,
		})
		if err != nil {
			return err
		}
		fmt.Fprintln(out, js)
	}

	if flush > 0 {
		go func() {
			t := time.NewTicker(flush)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if err := writeSnapshot(st, snapshotPath); err != nil {
						logger.Error("periodic snapshot failed", "err", err)
					}
				}
			}
		}()
	}

	err = srv.Serve(ctx)
	logger.Info("shutting down", "ingested", coll.Metrics.Ingested.Load(),
		"rejected", coll.Metrics.Rejected.Load())
	if werr := writeSnapshot(st, snapshotPath); werr != nil {
		return fmt.Errorf("final snapshot: %w", werr)
	}
	return err
}

func writeSnapshot(st *store.Store, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := st.WriteSnapshot(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
