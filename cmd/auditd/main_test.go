package main

import (
	"bytes"
	"context"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"regexp"
	"sync"
	"testing"
	"time"

	"adaudit/internal/beacon"
	"adaudit/internal/store"
)

func TestWriteSnapshotAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "imps.jsonl")
	st := store.New()
	if _, err := st.Insert(store.Impression{
		CampaignID: "c", Publisher: "p.es", PageURL: "http://p.es/",
		UserKey: "u", Timestamp: time.Now(), Exposure: time.Second,
	}); err != nil {
		t.Fatal(err)
	}
	if err := writeSnapshot(st, path); err != nil {
		t.Fatal(err)
	}
	// No temp file left behind.
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind")
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	restored, err := store.ReadSnapshot(f)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Len() != 1 {
		t.Fatalf("restored %d records", restored.Len())
	}
	// Overwrites are atomic replacements of the previous snapshot.
	if _, err := st.Insert(store.Impression{
		CampaignID: "c", Publisher: "q.es", PageURL: "http://q.es/",
		UserKey: "u2", Timestamp: time.Now(), Exposure: time.Second,
	}); err != nil {
		t.Fatal(err)
	}
	if err := writeSnapshot(st, path); err != nil {
		t.Fatal(err)
	}
	f2, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	restored, err = store.ReadSnapshot(f2)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Len() != 2 {
		t.Fatalf("second snapshot has %d records", restored.Len())
	}
}

func TestWriteSnapshotBadDir(t *testing.T) {
	if err := writeSnapshot(store.New(), "/nonexistent-dir/x.jsonl"); err == nil {
		t.Fatal("bad directory accepted")
	}
}

func TestSnapshotterSerializesWrites(t *testing.T) {
	dir := t.TempDir()
	st := store.New()
	if _, err := st.Insert(store.Impression{
		CampaignID: "c", Publisher: "p.es", PageURL: "http://p.es/",
		UserKey: "u", Timestamp: time.Now(), Exposure: time.Second,
	}); err != nil {
		t.Fatal(err)
	}
	snap := &snapshotter{
		st:     st,
		path:   filepath.Join(dir, "imps.jsonl"),
		logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
	}
	// Hold the lock as a slow in-flight write would: the periodic flush
	// must skip without blocking or racing, while the shutdown write
	// blocks until the writer is done.
	snap.mu.Lock()
	if err := snap.tryWrite(); err != nil {
		t.Fatalf("tryWrite under contention: %v", err)
	}
	if _, err := os.Stat(snap.path); !os.IsNotExist(err) {
		t.Fatal("skipped flush still produced a snapshot")
	}
	done := make(chan error, 1)
	go func() { done <- snap.write() }()
	select {
	case <-done:
		t.Fatal("final write completed while another write held the lock")
	case <-time.After(20 * time.Millisecond):
	}
	snap.mu.Unlock()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(snap.path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	restored, err := store.ReadSnapshot(f)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Len() != 1 {
		t.Fatalf("final snapshot has %d records", restored.Len())
	}
}

func TestDaemonEndToEnd(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "imps.jsonl")
	ctx, cancel := context.WithCancel(context.Background())

	out := &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, daemonOptions{
			listen:       "127.0.0.1:0",
			snapshotPath: snap,
			secret:       "test-secret",
			printScript:  "demo:creative-1",
		}, out)
	}()

	// The daemon prints the beacon script once the listener is up; poll
	// for the endpoint URL it embeds.
	var beaconURL string
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if m := wsURLRe.FindString(out.String()); m != "" {
			beaconURL = m
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if beaconURL == "" {
		cancel()
		t.Fatalf("beacon URL never printed; output: %s", out.String())
	}

	// Report one impression over a live WebSocket.
	client := &beacon.Client{CollectorURL: beaconURL}
	p := beacon.Payload{
		CampaignID: "demo", CreativeID: "creative-1",
		PageURL:   "http://publisher.example/page",
		UserAgent: "Mozilla/5.0 Chrome/49.0",
	}
	if err := client.Report(ctx, p, 30*time.Millisecond); err != nil {
		cancel()
		t.Fatal(err)
	}

	// Shut down; the final snapshot must contain the impression.
	time.Sleep(50 * time.Millisecond) // let the async commit land
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	f, err := os.Open(snap)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	st, err := store.ReadSnapshot(f)
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != 1 {
		t.Fatalf("snapshot has %d records", st.Len())
	}
	im, _ := st.Get(1)
	if im.CampaignID != "demo" || im.Publisher != "publisher.example" {
		t.Fatalf("record = %+v", im)
	}
}

var wsURLRe = regexp.MustCompile(`ws://[0-9.]+:[0-9]+/beacon`)

// syncBuffer is a goroutine-safe bytes.Buffer for capturing the
// daemon's output while it runs.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
