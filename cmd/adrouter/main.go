// Command adrouter runs the sharded ingest front tier: it terminates
// beacon WebSockets and gateway trunk connections, consistent-hashes
// every session's nonce onto one of N collector shards, and forwards
// each impression to its owning shard over a pool of persistent trunk
// connections with batching, circuit breaking and a per-shard spill
// buffer — a client or gateway the router acknowledged is delivered
// even across a shard restart (replayed through the shard's
// nonce/stream dedup, so never double-counted).
//
// Usage:
//
//	adrouter -shards ws://10.0.0.1:8080/trunk,ws://10.0.0.2:8080/trunk
//	         [-listen 127.0.0.1:8082] [-trunk-token TOKEN]
//	         [-trunks-per-shard 2]
//	         [-origins ads.example.com,cdn.example.net] [-max-sessions N]
//	         [-router-id ID] [-spill-limit 65536] [-drain-grace 5s]
//	         [-shard-api http://10.0.0.1:8080,http://10.0.0.2:8080]
//	         [-live-seed 1] [-live-publishers 150000]
//	         [-log-level info] [-log-format text]
//
// The listen address serves the beacon endpoint on /beacon, the
// gateway trunk relay on /trunk, plus the operational surface: GET
// /healthz (ok → degraded → unhealthy as shard trunks break; a shard
// with no healthy trunk is fatal because its slice of the keyspace has
// nowhere else to go), GET /metrics (Prometheus text, per-shard series
// under shard_id labels) and GET /api/metrics (JSON).
//
// With -shard-api the router also serves the merged live audit: GET
// /api/live/export unions every shard's streaming-audit export in
// shard order, and /api/live/summary + /api/live/audit/{campaign}
// answer from an engine built over that merged state — the same report
// a single unsharded collector would produce. -shard-api must list the
// shards' HTTP bases in the same order as -shards, and -live-seed /
// -live-publishers must match the shards' own -live metadata.
//
// On SIGINT/SIGTERM the router drains: admission flips to shedding,
// open sessions are handed back with the resumable 1012 close code and
// a Retry-After hint, and every shard's spill buffer is given
// -drain-grace to flush acknowledged commits. The shard set is fixed
// for the router's lifetime — resharding means draining and restarting
// with a new -shards list.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"adaudit/internal/adnet"
	"adaudit/internal/audit"
	"adaudit/internal/logutil"
	"adaudit/internal/publisher"
	"adaudit/internal/router"
	"adaudit/internal/shardmerge"
	"adaudit/internal/streamaudit"
)

func main() {
	var (
		listen      = flag.String("listen", "127.0.0.1:8082", "host:port for the beacon and trunk endpoints")
		shards      = flag.String("shards", "", "comma-separated shard trunk endpoints in shard order (ws://host:port/trunk); required")
		trunkToken  = flag.String("trunk-token", "", "shared secret presented on shard trunk handshakes and required of gateway trunks")
		perShard    = flag.Int("trunks-per-shard", 2, "persistent trunk connections per shard")
		origins     = flag.String("origins", "", "comma-separated page origins admitted to /beacon (subdomains included; empty admits all)")
		maxSessions = flag.Int("max-sessions", 0, "concurrent beacon session cap (0 disables)")
		routerID    = flag.String("router-id", "", "stable router identity on the shard trunk wire (default: random per run)")
		spillLimit  = flag.Int("spill-limit", 0, "unacked commits held across shard outages, summed over shards, before shedding (0 = default 65536)")
		drainGrace  = flag.Duration("drain-grace", 5*time.Second, "shutdown budget for flushing acked commits to the shards")
		shardAPI    = flag.String("shard-api", "", "comma-separated shard HTTP bases in shard order; enables the merged /api/live endpoints")
		liveSeed    = flag.Int64("live-seed", 1, "seed of the synthetic metadata universe for the merged live audit (must match the shards')")
		livePubs    = flag.Int("live-publishers", 150000, "size of the synthetic metadata universe for the merged live audit")
		logFlags    = logutil.Register(flag.CommandLine)
	)
	flag.Parse()
	logger, err := logFlags.Logger(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "adrouter:", err)
		os.Exit(2)
	}
	splitList := func(s string) []string {
		var out []string
		for _, v := range strings.Split(s, ",") {
			if v = strings.TrimSpace(v); v != "" {
				out = append(out, v)
			}
		}
		return out
	}
	shardURLs := splitList(*shards)
	if len(shardURLs) == 0 {
		fmt.Fprintln(os.Stderr, "adrouter: -shards is required (comma-separated ws://host:port/trunk)")
		os.Exit(2)
	}

	r, err := router.New(router.Config{
		Shards:         shardURLs,
		TrunkToken:     *trunkToken,
		RouterID:       *routerID,
		TrunksPerShard: *perShard,
		AllowedOrigins: splitList(*origins),
		MaxSessions:    *maxSessions,
		SpillLimit:     *spillLimit,
		Logger:         logger,
	})
	if err != nil {
		logger.Error("router init failed", "err", err)
		os.Exit(1)
	}
	srvOpts := []router.ServerOption{router.WithDrainGrace(*drainGrace)}
	if *shardAPI != "" {
		apiBases := splitList(*shardAPI)
		if len(apiBases) != len(shardURLs) {
			fmt.Fprintf(os.Stderr, "adrouter: -shard-api lists %d bases for %d shards; they must align in shard order\n",
				len(apiBases), len(shardURLs))
			os.Exit(2)
		}
		uni, err := publisher.NewUniverse(publisher.Config{
			Seed:          *liveSeed,
			NumPublishers: *livePubs,
		})
		if err != nil {
			logger.Error("building metadata universe for merged live audit", "err", err)
			os.Exit(1)
		}
		keywords := map[string][]string{}
		for _, c := range adnet.PaperCampaigns() {
			keywords[c.ID] = c.Keywords
		}
		srvOpts = append(srvOpts, router.WithLiveMerge(
			&shardmerge.Client{Shards: apiBases},
			streamaudit.StaticConfig{
				Meta:     audit.UniverseMetadata{Universe: uni},
				Keywords: keywords,
			},
		))
		logger.Info("merged live audit enabled", "shards", len(apiBases),
			"publishers", *livePubs, "seed", *liveSeed)
	}
	srv, err := router.NewServer(r, *listen, srvOpts...)
	if err != nil {
		logger.Error("router listen failed", "err", err)
		os.Exit(1)
	}
	logger.Info("router listening",
		"beacon", srv.BeaconURL(),
		"trunk", srv.TrunkURL(),
		"shards", len(shardURLs),
		"trunks_per_shard", *perShard,
		"healthz", fmt.Sprintf("http://%s/healthz", srv.Addr()))

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := srv.Serve(ctx); err != nil {
		logger.Error("router failed", "err", err)
		os.Exit(1)
	}
	st := r.Health()
	logger.Info("router stopped", "spill_pending", st.SpillPending)
}
