package adaudit

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (run with `go test -bench=. -benchmem`):
//
//	BenchmarkTable1CampaignSimulation — the 8-campaign workload (Table 1)
//	BenchmarkFigure1BrandSafetyVenn   — publisher Venn analysis (Figure 1)
//	BenchmarkTable2Context            — contextual relevance (Table 2)
//	BenchmarkFigure2Popularity        — rank distributions (Figure 2)
//	BenchmarkTable3Viewability        — exposure >= 1 s (Table 3)
//	BenchmarkFigure3FrequencyCap      — per-user frequency (Figure 3)
//	BenchmarkTable4Fraud              — data-center traffic (Table 4)
//
// Each bench measures its analysis over the full logged dataset
// (~130K impressions) and reports the paper's headline number as a
// custom metric, so `bench_output.txt` doubles as the reproduction
// record. Ablation benches at the bottom quantify the design choices
// DESIGN.md calls out.

import (
	"io"
	"runtime"
	"sync"
	"testing"

	"adaudit/internal/adnet"
	"adaudit/internal/audit"
	"adaudit/internal/report"
)

// benchState is the shared 8-campaign run used by the per-artifact
// benchmarks. Building it costs a few seconds; benches that only
// analyse reuse it.
type benchState struct {
	ws      *Workspace
	run     *Run
	auditor *audit.Auditor
	inputs  []audit.CampaignInput
}

var (
	benchOnce sync.Once
	bench     benchState
)

func benchSetup(b *testing.B) *benchState {
	b.Helper()
	benchOnce.Do(func() {
		ws, err := NewWorkspace(Options{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		run, err := ws.Run(adnet.PaperCampaigns())
		if err != nil {
			b.Fatal(err)
		}
		auditor, err := ws.Auditor()
		if err != nil {
			b.Fatal(err)
		}
		reports := run.Outcome.Reports()
		var inputs []audit.CampaignInput
		for _, c := range run.Campaigns {
			inputs = append(inputs, audit.CampaignInput{
				ID: c.ID, Keywords: c.Keywords, Report: reports[c.ID],
			})
		}
		bench = benchState{ws: ws, run: run, auditor: auditor, inputs: inputs}
	})
	return &bench
}

// BenchmarkTable1CampaignSimulation regenerates Table 1's workload: the
// full 8-campaign delivery + beacon replay + collection pipeline
// (162,148 impressions per iteration).
func BenchmarkTable1CampaignSimulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ws, err := NewWorkspace(Options{Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		run, err := ws.Run(adnet.PaperCampaigns())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(run.Outcome.TotalLogged()), "logged-imps")
	}
}

// BenchmarkFigure1BrandSafetyVenn regenerates Figure 1: the aggregate
// publisher Venn between the audit dataset and the vendor reports.
func BenchmarkFigure1BrandSafetyVenn(b *testing.B) {
	s := benchSetup(b)
	reports := s.run.Outcome.Reports()
	b.ResetTimer()
	var res audit.BrandSafetyResult
	for i := 0; i < b.N; i++ {
		res = s.auditor.BrandSafetyAggregate(reports)
	}
	b.ReportMetric(100*res.FractionUnreported(), "pct-unreported")  // paper: 57
	b.ReportMetric(100*res.FractionAuditMissed(), "pct-audit-miss") // paper: 16.5
}

// BenchmarkTable2Context regenerates Table 2: audit vs vendor
// contextual fractions for all 8 campaigns.
func BenchmarkTable2Context(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	var football audit.ContextResult
	for i := 0; i < b.N; i++ {
		for _, in := range s.inputs {
			res, err := s.auditor.Context(in.ID, in.Keywords, in.Report)
			if err != nil {
				b.Fatal(err)
			}
			if in.ID == "Football-010" {
				football = res
			}
		}
	}
	b.ReportMetric(100*football.AuditFraction(), "football010-audit-pct")   // paper: 64.12
	b.ReportMetric(100*football.VendorFraction(), "football010-vendor-pct") // paper: 100
}

// BenchmarkFigure2Popularity regenerates Figure 2: publisher and
// impression distributions over rank buckets for all campaigns.
func BenchmarkFigure2Popularity(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	var cheap, dear audit.PopularityResult
	for i := 0; i < b.N; i++ {
		for _, in := range s.inputs {
			res, err := s.auditor.Popularity(in.ID, 10, 10_000_000)
			if err != nil {
				b.Fatal(err)
			}
			switch in.ID {
			case "Russia":
				cheap = res
			case "Football-030":
				dear = res
			}
		}
	}
	b.ReportMetric(100*cheap.TopKImpressionFraction(50_000), "cpm001-top50k-imps-pct") // paper: 89
	b.ReportMetric(100*dear.TopKImpressionFraction(50_000), "cpm030-top50k-imps-pct")  // paper: 68
}

// BenchmarkTable3Viewability regenerates Table 3: the upper-bound
// viewability fraction per campaign.
func BenchmarkTable3Viewability(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	var f030 audit.ViewabilityResult
	for i := 0; i < b.N; i++ {
		for _, in := range s.inputs {
			res := s.auditor.Viewability(in.ID)
			if in.ID == "Football-030" {
				f030 = res
			}
		}
	}
	b.ReportMetric(100*f030.Fraction(), "football030-viewable-pct") // paper: 82.80
}

// BenchmarkFigure3FrequencyCap regenerates Figure 3: the per-user
// impression counts and median inter-arrival times across campaigns.
func BenchmarkFigure3FrequencyCap(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	var res audit.FrequencyResult
	for i := 0; i < b.N; i++ {
		res = s.auditor.Frequency()
	}
	b.ReportMetric(float64(res.UsersOver10), "users-over-10")   // paper: 1720
	b.ReportMetric(float64(res.UsersOver100), "users-over-100") // paper: 176
}

// BenchmarkTable4Fraud regenerates Table 4: the data-center traffic
// shares per campaign.
func BenchmarkTable4Fraud(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	var f010 audit.FraudResult
	for i := 0; i < b.N; i++ {
		for _, in := range s.inputs {
			res := s.auditor.Fraud(in.ID)
			if in.ID == "Football-010" {
				f010 = res
			}
		}
	}
	b.ReportMetric(100*f010.PctDataCenterImpressions(), "football010-dc-imps-pct") // paper: 8.6
	b.ReportMetric(100*f010.PctPublishersServingDC(), "football010-dc-pubs-pct")   // paper: 23.55
}

// BenchmarkFullAuditSerial measures the complete audit on one
// goroutine — the pre-parallelism baseline bench-compare pits the pool
// against.
func BenchmarkFullAuditSerial(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.auditor.FullAuditSerial(s.inputs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(1, "workers")
}

// BenchmarkFullAuditParallel measures the fanned-out audit at
// GOMAXPROCS workers. On a multi-core machine this is where the
// speedup shows; on one core it documents the pool's overhead is
// negligible.
func BenchmarkFullAuditParallel(b *testing.B) {
	s := benchSetup(b)
	par := *s.auditor // don't leave Parallelism set on the shared auditor
	par.Parallelism = 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := par.FullAudit(s.inputs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "workers")
}

// BenchmarkFullAuditReport measures the complete audit plus rendering of
// every table and figure — the `auditctl -analysis all` hot path.
func BenchmarkFullAuditReport(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		full, err := s.auditor.FullAudit(s.inputs)
		if err != nil {
			b.Fatal(err)
		}
		if err := report.Full(io.Discard, s.run.Campaigns, full); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations -------------------------------------------------------

// BenchmarkAblationFrequencyCap10 reruns the heaviest campaign with the
// literature's cap of 10 and reports how many impressions the cap
// reassigns to fresh users — the waste AdWords' missing default buys.
func BenchmarkAblationFrequencyCap10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pol := adnet.DefaultPolicy()
		pol.FrequencyCap = 10
		ws, err := NewWorkspace(Options{Seed: 1, NumPublishers: 20000, Policy: &pol})
		if err != nil {
			b.Fatal(err)
		}
		run, err := ws.Run(adnet.PaperCampaigns()[2:3]) // Football-010
		if err != nil {
			b.Fatal(err)
		}
		auditor, err := ws.Auditor()
		if err != nil {
			b.Fatal(err)
		}
		_ = run
		res := auditor.Frequency()
		b.ReportMetric(float64(res.UsersOver10), "capped-users-over-10") // must be 0
		b.ReportMetric(float64(res.MaxImpressions()), "capped-max-per-user")
	}
}

// BenchmarkAblationVendorReportsAll flips the vendor to reporting ALL
// delivered impressions (not just viewable ones) and reports how much
// of Figure 1's publisher gap disappears — isolating viewable-only
// reporting as the cause.
func BenchmarkAblationVendorReportsAll(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pol := adnet.DefaultPolicy()
		pol.VendorViewableGivenExposed = 1.0
		per := map[string]adnet.CampaignPolicy{}
		for id, p := range pol.PerCampaign {
			p.ViewProb = 1.0 // every impression "viewable": report covers all
			p.VendorViewableFactor = 1.0
			per[id] = p
		}
		pol.PerCampaign = per
		ws, err := NewWorkspace(Options{Seed: 1, NumPublishers: 20000, Policy: &pol})
		if err != nil {
			b.Fatal(err)
		}
		run, err := ws.Run(adnet.PaperCampaigns()[:2])
		if err != nil {
			b.Fatal(err)
		}
		auditor, err := ws.Auditor()
		if err != nil {
			b.Fatal(err)
		}
		res := auditor.BrandSafetyAggregate(run.Outcome.Reports())
		// The residual gap is only the audit's own loss side; the
		// unreported fraction collapses toward zero.
		b.ReportMetric(100*res.FractionUnreported(), "pct-unreported-all-reporting")
	}
}

// BenchmarkAblationMatcherThreshold compares the default tight
// similarity threshold with the widened macro-vertical one on the
// General-010 audit fraction — the sensitivity of Table 2 to the
// undisclosed cut-off.
func BenchmarkAblationMatcherThreshold(b *testing.B) {
	s := benchSetup(b)
	wide := *s.auditor
	m := *s.auditor.Matcher
	m.Threshold = m.Taxonomy.PathSimilarity(5.5)
	wide.Matcher = &m
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tight, err := s.auditor.Context("General-010", []string{"universities", "research", "telematics"}, nil)
		if err != nil {
			b.Fatal(err)
		}
		wider, err := wide.Context("General-010", []string{"universities", "research", "telematics"}, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*tight.AuditFraction(), "tight-threshold-pct")
		b.ReportMetric(100*wider.AuditFraction(), "wide-threshold-pct")
	}
}
