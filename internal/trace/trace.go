// Package trace is a lightweight, sampling, zero-dependency span
// tracer for the impression pipeline. A sampled impression yields one
// causal trace — beacon send → wire receive → decode → enrich → store
// commit → WAL append → change-feed publish → streaming-audit apply —
// with per-stage monotonic timestamps. Finished traces land in a
// bounded in-memory flight recorder (see Recorder) served over HTTP
// and exportable as Chrome about:tracing / Perfetto JSON.
//
// The design constraint is the same one internal/telemetry lives
// under: the unsampled hot path must be near-free. The sampling
// decision is a single atomic add; an unsampled impression carries a
// nil *Trace, and every method on Trace is nil-receiver-safe, so the
// pipeline threads the pointer unconditionally and pays one predicted
// branch per stage. Span buffers are pooled and recycled when the
// flight recorder evicts a trace.
package trace

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Stage names, in causal pipeline order. Stored as strings so the
// flight recorder and the Chrome export need no lookup tables.
const (
	StageBeaconSend = "beacon_send" // client stamped the payload
	// StageGatewayRecv / StageTrunkForward are stamped by the edge
	// gateway tier (internal/gateway): the gateway read the beacon's
	// payload, and the gateway flushed the session's commit onto a
	// collector trunk. They ride the trunk frame as explicit offsets and
	// are injected into the collector's adopted trace via StageAt, so a
	// gatewayed impression's trace shows both hops.
	StageGatewayRecv  = "gateway_recv"
	StageTrunkForward = "trunk_forward"
	StageWireRecv     = "wire_recv" // collector session read the frame
	StageDecode       = "decode"    // payload parsed
	StageEnrich     = "enrich"       // geo/UA enrichment done
	StageCommit     = "commit"       // store accepted the impression
	StageWAL        = "wal_append"   // write-ahead journal entry appended
	StageFeed       = "feed_publish" // change-feed event fanned out
	StageApply      = "stream_apply" // streaming audit engine applied it
)

// ID is a 64-bit trace identifier, rendered as 16 lowercase hex digits.
type ID uint64

// String renders the canonical 16-hex-digit form.
func (id ID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// ParseID parses the canonical 16-hex-digit form (leading zeros
// optional).
func ParseID(s string) (ID, error) {
	if s == "" || len(s) > 16 {
		return 0, fmt.Errorf("trace: malformed id %q", s)
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("trace: malformed id %q", s)
	}
	return ID(v), nil
}

// idBase is a per-process random offset so IDs from independent
// processes (or restarts) do not collide; idCtr makes IDs unique
// within the process with one atomic add.
var (
	idBase uint64
	idCtr  atomic.Uint64
)

func init() {
	var b [8]byte
	if _, err := rand.Read(b[:]); err == nil {
		idBase = binary.LittleEndian.Uint64(b[:])
	} else {
		idBase = uint64(time.Now().UnixNano())
	}
}

// NextID mints a process-unique trace ID. The splitmix64 finalizer
// spreads the sequential counter across the hex space.
func NextID() ID {
	x := idBase + idCtr.Add(1)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return ID(x)
}

// StagePoint is one timestamped stage within a trace. Offset is
// measured on the monotonic clock from the trace's start (for adopted
// traces, from the sender's stamped send time, clamped against clock
// skew).
type StagePoint struct {
	Name   string        `json:"name"`
	Offset time.Duration `json:"offset_ns"`
}

// Trace is one in-flight or finished impression trace. All methods
// are nil-receiver-safe no-ops so unsampled impressions thread a nil
// *Trace through the pipeline at no cost.
type Trace struct {
	id ID
	// wallStart anchors the trace on the wall clock (unix nanos) for
	// export; base anchors stage offsets on the monotonic clock.
	wallStart int64
	base      time.Time
	// initialOff shifts offsets for adopted traces: the wire transit
	// time between the sender's stamp and adoption, clamped to
	// [0, maxAdoptSkew].
	initialOff time.Duration
	rec        *Recorder

	mu        sync.Mutex
	stages    []StagePoint
	nonce     string
	campaign  string
	truncated string
	done      bool
}

// maxAdoptSkew caps the beacon-send→adopt offset so a skewed client
// clock cannot poison a trace with an hour-long first span.
const maxAdoptSkew = 5 * time.Minute

// ID returns the trace identifier (0 for nil).
func (t *Trace) ID() ID {
	if t == nil {
		return 0
	}
	return t.id
}

// Stage stamps a named stage at the current monotonic offset. Stages
// on a finished trace are dropped — late stamps (e.g. a feed
// subscriber applying after the recorder swept the trace) must not
// resurrect it.
func (t *Trace) Stage(name string) {
	if t == nil {
		return
	}
	off := t.initialOff + time.Since(t.base)
	t.mu.Lock()
	if !t.done {
		t.stages = append(t.stages, StagePoint{Name: name, Offset: off})
	}
	t.mu.Unlock()
}

// StageAt stamps a named stage at an explicit offset from the trace
// origin, instead of the local monotonic clock. A forwarding tier (the
// gateway) measures its stages against the sender's stamped send time
// and ships the offsets in its trunk frames; the collector injects them
// here so the adopted trace carries the remote hops it never observed
// locally. Negative offsets (sender clock skew) clamp to zero.
func (t *Trace) StageAt(name string, offset time.Duration) {
	if t == nil {
		return
	}
	if offset < 0 {
		offset = 0
	}
	t.mu.Lock()
	if !t.done {
		t.stages = append(t.stages, StagePoint{Name: name, Offset: offset})
	}
	t.mu.Unlock()
}

// Annotate attaches the impression's nonce and campaign so flight
// recorder entries can be correlated with store records.
func (t *Trace) Annotate(nonce, campaign string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if !t.done {
		t.nonce, t.campaign = nonce, campaign
	}
	t.mu.Unlock()
}

// Finish completes the trace and hands it to the flight recorder.
// Idempotent: the first call wins, later calls (a second feed
// subscriber, a sweep) are no-ops.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return
	}
	t.done = true
	t.mu.Unlock()
	if t.rec != nil {
		t.rec.finish(t)
	}
}

// Truncate marks the trace as explicitly incomplete (session reject,
// dropped subscriber, staleness sweep) and finishes it. The reason of
// the first Truncate/Finish call sticks.
func (t *Trace) Truncate(reason string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return
	}
	t.truncated = reason
	t.done = true
	t.mu.Unlock()
	if t.rec != nil {
		t.rec.finish(t)
	}
}

// age reports time since the trace was created/adopted locally.
func (t *Trace) age() time.Duration { return time.Since(t.base) }

// Snapshot is an immutable copy of a trace, safe to hold after the
// recorder recycles the live object.
type Snapshot struct {
	ID        ID           `json:"-"`
	IDHex     string       `json:"id"`
	StartUnix int64        `json:"start_unix_nanos"`
	Nonce     string       `json:"nonce,omitempty"`
	Campaign  string       `json:"campaign,omitempty"`
	Stages    []StagePoint `json:"stages"`
	Done      bool         `json:"done"`
	Truncated string       `json:"truncated,omitempty"`
}

// Complete reports whether the trace finished cleanly (not truncated)
// and reached the given terminal stage.
func (s Snapshot) Complete(terminal string) bool {
	if !s.Done || s.Truncated != "" {
		return false
	}
	for _, sp := range s.Stages {
		if sp.Name == terminal {
			return true
		}
	}
	return false
}

// StageOffset returns the offset of the first stage with the given
// name, or -1 if absent.
func (s Snapshot) StageOffset(name string) time.Duration {
	for _, sp := range s.Stages {
		if sp.Name == name {
			return sp.Offset
		}
	}
	return -1
}

// Snapshot copies the trace state. Nil-safe (zero Snapshot).
func (t *Trace) Snapshot() Snapshot {
	if t == nil {
		return Snapshot{}
	}
	t.mu.Lock()
	s := Snapshot{
		ID:        t.id,
		IDHex:     t.id.String(),
		StartUnix: t.wallStart,
		Nonce:     t.nonce,
		Campaign:  t.campaign,
		Stages:    append([]StagePoint(nil), t.stages...),
		Done:      t.done,
		Truncated: t.truncated,
	}
	t.mu.Unlock()
	return s
}

// Tracer owns the sampling decision and the flight recorder. A nil
// Tracer never samples.
type Tracer struct {
	rec *Recorder
	// every is the sampling interval: sample 1 in every Start calls.
	// 0 disables sampling entirely.
	every uint64
	tick  atomic.Uint64
}

// NewTracer builds a tracer sampling one impression in every `every`
// (1 = all, 0 or negative = none), recording into rec (which may be
// shared between tracers).
func NewTracer(rec *Recorder, every int) *Tracer {
	t := &Tracer{rec: rec}
	if every > 0 {
		t.every = uint64(every)
	}
	return t
}

// Recorder returns the tracer's flight recorder (nil for nil tracer).
func (tr *Tracer) Recorder() *Recorder {
	if tr == nil {
		return nil
	}
	return tr.rec
}

// sample makes the sampling decision: one atomic add, one modulo.
func (tr *Tracer) sample() bool {
	if tr == nil || tr.every == 0 {
		return false
	}
	if tr.every == 1 {
		return true
	}
	return tr.tick.Add(1)%tr.every == 1
}

// Start begins a new trace if this impression is sampled, returning
// nil otherwise. The caller threads the (possibly nil) *Trace through
// the pipeline.
func (tr *Tracer) Start() *Trace {
	if !tr.sample() {
		return nil
	}
	now := time.Now()
	t := tr.rec.newTrace(NextID(), now, now.UnixNano(), 0)
	return t
}

// SampleID makes the sampling decision and mints a trace ID without
// materialising a local Trace — the sender side of wire propagation:
// the beacon client stamps the ID into the payload and the collector
// adopts it into its own flight recorder.
func (tr *Tracer) SampleID() (ID, bool) {
	if !tr.sample() {
		return 0, false
	}
	return NextID(), true
}

// Adopt continues a trace whose context arrived over the wire: the
// sender already made the sampling decision and stamped its send time
// (unix nanos; 0 if unknown). The returned trace carries a
// beacon_send stage at offset 0 and a wire_recv stage at the clamped
// transit offset.
func (tr *Tracer) Adopt(id ID, sentUnixNanos int64) *Trace {
	if tr == nil || id == 0 {
		return nil
	}
	now := time.Now()
	wall := now.UnixNano()
	var transit time.Duration
	if sentUnixNanos > 0 {
		transit = time.Duration(wall - sentUnixNanos)
		if transit < 0 {
			transit = 0
		}
		if transit > maxAdoptSkew {
			transit = maxAdoptSkew
		}
		wall = wall - int64(transit)
	}
	t := tr.rec.newTrace(id, now, wall, transit)
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.stages = append(t.stages, StagePoint{Name: StageBeaconSend, Offset: 0})
	if sentUnixNanos > 0 {
		t.stages = append(t.stages, StagePoint{Name: StageWireRecv, Offset: transit})
	}
	t.mu.Unlock()
	return t
}

// ctxKey keys trace IDs in a context.Context for log correlation.
type ctxKey struct{}

// ContextWithID returns ctx carrying the trace ID, for attaching to
// slog records via logutil.
func ContextWithID(ctx context.Context, id ID) context.Context {
	if id == 0 {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, id)
}

// IDFromContext extracts a trace ID placed by ContextWithID.
func IDFromContext(ctx context.Context) (ID, bool) {
	if ctx == nil {
		return 0, false
	}
	id, ok := ctx.Value(ctxKey{}).(ID)
	return id, ok && id != 0
}
