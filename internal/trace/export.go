package trace

import (
	"encoding/json"
	"io"
)

// chromeEvent is one entry in the Chrome trace-event JSON format,
// loadable by chrome://tracing and https://ui.perfetto.dev.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  uint64         `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome writes the snapshots as a Chrome trace-event JSON
// document. Each trace becomes one "thread": consecutive stage stamps
// are rendered as complete ("X") slices named for the stage they end
// at, so the slice width is the time that stage took. Wall-clock
// alignment across traces is preserved (ts is unix microseconds).
func WriteChrome(w io.Writer, traces []Snapshot) error {
	doc := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	for _, s := range traces {
		tid := uint64(s.ID)
		base := float64(s.StartUnix) / 1e3 // ns → µs
		args := map[string]any{"trace_id": s.IDHex}
		if s.Nonce != "" {
			args["nonce"] = s.Nonce
		}
		if s.Campaign != "" {
			args["campaign"] = s.Campaign
		}
		if s.Truncated != "" {
			args["truncated"] = s.Truncated
		}
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "trace", Ph: "M", Ts: base, Pid: 1, Tid: tid, Args: args,
		})
		prev := 0.0
		for i, sp := range s.Stages {
			off := float64(sp.Offset) / 1e3 // ns → µs
			if i == 0 {
				doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
					Name: sp.Name, Ph: "i", Ts: base + off, Pid: 1, Tid: tid,
				})
			} else {
				doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
					Name: sp.Name, Ph: "X", Ts: base + prev, Dur: off - prev,
					Pid: 1, Tid: tid,
				})
			}
			prev = off
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
