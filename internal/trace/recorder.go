package trace

import (
	"sort"
	"sync"
	"time"

	"adaudit/internal/telemetry"
)

// stagePool recycles stage buffers between traces so steady-state
// sampling allocates nothing per trace beyond the Trace header.
var stagePool = sync.Pool{
	New: func() any {
		s := make([]StagePoint, 0, 8)
		return &s
	},
}

// Recorder is the flight recorder: it tracks in-flight (active)
// traces and keeps the most recent finished traces in a bounded ring
// buffer. All methods are nil-receiver-safe.
type Recorder struct {
	mu     sync.Mutex
	active map[ID]*Trace
	ring   []*Trace // fixed capacity, filled up to count
	count  int
	next   int

	// Instrumentation (nil until Instrument; all nil-safe).
	started   *telemetry.Counter
	finished  *telemetry.Counter
	truncated *telemetry.Counter
}

// DefaultCapacity is the flight-recorder ring size when none is given.
const DefaultCapacity = 1024

// NewRecorder builds a flight recorder holding up to capacity
// finished traces (DefaultCapacity if capacity <= 0).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{
		active: make(map[ID]*Trace),
		ring:   make([]*Trace, capacity),
	}
}

// Instrument registers the recorder's metrics on reg.
func (r *Recorder) Instrument(reg *telemetry.Registry) {
	if r == nil || reg == nil {
		return
	}
	r.started = reg.Counter("adaudit_trace_started_total",
		"Traces started or adopted by this process.", nil)
	r.finished = reg.Counter("adaudit_trace_finished_total",
		"Traces finished (including truncated).", nil)
	r.truncated = reg.Counter("adaudit_trace_truncated_total",
		"Traces explicitly truncated (reject, drop, staleness sweep).", nil)
	reg.GaugeFunc("adaudit_trace_active",
		"Traces currently in flight.", nil, func() float64 {
			return float64(r.ActiveCount())
		})
	reg.GaugeFunc("adaudit_trace_recorded",
		"Finished traces held in the flight recorder ring.", nil, func() float64 {
			r.mu.Lock()
			n := r.count
			r.mu.Unlock()
			return float64(n)
		})
}

// newTrace allocates (or builds from the pool) a trace and registers
// it as active. A nil recorder still returns a usable, unrecorded
// trace so tracer plumbing never has to special-case it.
func (r *Recorder) newTrace(id ID, base time.Time, wallStart int64, initialOff time.Duration) *Trace {
	sp := stagePool.Get().(*[]StagePoint)
	t := &Trace{
		id:         id,
		base:       base,
		wallStart:  wallStart,
		initialOff: initialOff,
		rec:        r,
		stages:     (*sp)[:0],
	}
	if r != nil {
		r.mu.Lock()
		r.active[id] = t
		r.mu.Unlock()
		r.started.Inc()
	}
	return t
}

// finish moves a trace from the active set into the ring, evicting
// (and recycling the stage buffer of) the oldest finished trace when
// the ring is full.
func (r *Recorder) finish(t *Trace) {
	if r == nil {
		return
	}
	r.mu.Lock()
	delete(r.active, t.id)
	var evicted *Trace
	if r.count < len(r.ring) {
		r.ring[r.next] = t
		r.count++
	} else {
		evicted = r.ring[r.next]
		r.ring[r.next] = t
	}
	r.next = (r.next + 1) % len(r.ring)
	r.mu.Unlock()

	r.finished.Inc()
	t.mu.Lock()
	trunc := t.truncated != ""
	t.mu.Unlock()
	if trunc {
		r.truncated.Inc()
	}
	if evicted != nil {
		evicted.mu.Lock()
		s := evicted.stages[:0]
		evicted.stages = nil
		evicted.mu.Unlock()
		stagePool.Put(&s)
	}
}

// Get returns a snapshot of the trace with the given ID, searching
// active traces first, then the ring.
func (r *Recorder) Get(id ID) (Snapshot, bool) {
	if r == nil {
		return Snapshot{}, false
	}
	r.mu.Lock()
	t := r.active[id]
	if t == nil {
		for i := 0; i < r.count; i++ {
			if c := r.ring[i]; c != nil && c.id == id {
				t = c
				break
			}
		}
	}
	r.mu.Unlock()
	if t == nil {
		return Snapshot{}, false
	}
	return t.Snapshot(), true
}

// Recent returns up to n finished traces, newest first (all of them
// when n <= 0).
func (r *Recorder) Recent(n int) []Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	if n <= 0 || n > r.count {
		n = r.count
	}
	out := make([]Snapshot, 0, n)
	// next-1 is the newest slot; walk backwards.
	for i := 0; i < n; i++ {
		idx := (r.next - 1 - i + len(r.ring)*2) % len(r.ring)
		if t := r.ring[idx]; t != nil {
			out = append(out, t.Snapshot())
		}
	}
	r.mu.Unlock()
	return out
}

// Active returns snapshots of in-flight traces, oldest first.
func (r *Recorder) Active() []Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]Snapshot, 0, len(r.active))
	for _, t := range r.active {
		out = append(out, t.Snapshot())
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].StartUnix < out[j].StartUnix })
	return out
}

// ActiveCount returns the number of in-flight traces.
func (r *Recorder) ActiveCount() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	n := len(r.active)
	r.mu.Unlock()
	return n
}

// SweepStale truncates every active trace older than olderThan with
// reason "stale" and returns how many it swept. This is the orphan
// bound: a trace whose pipeline leg died (dropped feed subscriber,
// killed session goroutine) is explicitly truncated rather than
// leaking in the active set forever.
func (r *Recorder) SweepStale(olderThan time.Duration) int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	var stale []*Trace
	for _, t := range r.active {
		if t.age() > olderThan {
			stale = append(stale, t)
		}
	}
	r.mu.Unlock()
	// Truncate re-enters the recorder lock via finish; do it unlocked.
	for _, t := range stale {
		t.Truncate("stale")
	}
	return len(stale)
}
