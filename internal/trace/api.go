package trace

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
)

// RegisterAPI mounts the flight-recorder endpoints on mux:
//
//	GET /api/trace/recent?n=N   — newest finished traces (default 32)
//	GET /api/trace/active       — in-flight traces
//	GET /api/trace/export?n=N   — Chrome about:tracing / Perfetto JSON
//	GET /api/trace/{id}         — one trace by 16-hex-digit ID
func RegisterAPI(mux *http.ServeMux, rec *Recorder) {
	mux.HandleFunc("/api/trace/recent", func(w http.ResponseWriter, r *http.Request) {
		if !methodGet(w, r) {
			return
		}
		writeJSON(w, map[string]any{
			"traces": recentOrEmpty(rec, queryN(r, 32)),
			"active": rec.ActiveCount(),
		})
	})
	mux.HandleFunc("/api/trace/active", func(w http.ResponseWriter, r *http.Request) {
		if !methodGet(w, r) {
			return
		}
		a := rec.Active()
		if a == nil {
			a = []Snapshot{}
		}
		writeJSON(w, map[string]any{"traces": a})
	})
	mux.HandleFunc("/api/trace/export", func(w http.ResponseWriter, r *http.Request) {
		if !methodGet(w, r) {
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="adaudit-trace.json"`)
		_ = WriteChrome(w, rec.Recent(queryN(r, 0)))
	})
	mux.HandleFunc("/api/trace/", func(w http.ResponseWriter, r *http.Request) {
		if !methodGet(w, r) {
			return
		}
		raw := strings.TrimPrefix(r.URL.Path, "/api/trace/")
		id, err := ParseID(raw)
		if err != nil {
			http.Error(w, "malformed trace id", http.StatusBadRequest)
			return
		}
		s, ok := rec.Get(id)
		if !ok {
			http.Error(w, "trace not found (expired from flight recorder?)", http.StatusNotFound)
			return
		}
		writeJSON(w, s)
	})
}

func recentOrEmpty(rec *Recorder, n int) []Snapshot {
	if s := rec.Recent(n); s != nil {
		return s
	}
	return []Snapshot{}
}

func methodGet(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return false
	}
	return true
}

func queryN(r *http.Request, def int) int {
	if v := r.URL.Query().Get("n"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
