package trace

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"adaudit/internal/telemetry"
)

func TestIDRoundTrip(t *testing.T) {
	for _, id := range []ID{1, 0xdeadbeef, ID(1) << 63, NextID()} {
		s := id.String()
		if len(s) != 16 {
			t.Fatalf("ID %d renders %q, want 16 hex digits", id, s)
		}
		got, err := ParseID(s)
		if err != nil || got != id {
			t.Fatalf("ParseID(%q) = %v, %v; want %v", s, got, err, id)
		}
	}
	for _, bad := range []string{"", "zz", "01234567890123456", "0x12"} {
		if _, err := ParseID(bad); err == nil {
			t.Errorf("ParseID(%q) accepted", bad)
		}
	}
}

func TestNextIDUnique(t *testing.T) {
	seen := map[ID]bool{}
	for i := 0; i < 10000; i++ {
		id := NextID()
		if seen[id] {
			t.Fatalf("duplicate ID %s after %d mints", id, i)
		}
		seen[id] = true
	}
}

func TestSamplerInterval(t *testing.T) {
	rec := NewRecorder(64)
	tr := NewTracer(rec, 4)
	sampled := 0
	for i := 0; i < 400; i++ {
		if s := tr.Start(); s != nil {
			sampled++
			s.Finish()
		}
	}
	if sampled != 100 {
		t.Fatalf("1-in-4 sampler took %d of 400", sampled)
	}
}

func TestSamplerDisabledAndNil(t *testing.T) {
	if s := NewTracer(NewRecorder(4), 0).Start(); s != nil {
		t.Fatal("every=0 sampled")
	}
	var nilTr *Tracer
	if s := nilTr.Start(); s != nil {
		t.Fatal("nil tracer sampled")
	}
	if tr := nilTr.Adopt(NextID(), 0); tr != nil {
		t.Fatal("nil tracer adopted")
	}
	// The whole nil-Trace surface must be a no-op.
	var nt *Trace
	nt.Stage(StageCommit)
	nt.Annotate("n", "c")
	nt.Finish()
	nt.Truncate("x")
	if nt.ID() != 0 {
		t.Fatal("nil trace has an ID")
	}
	if s := nt.Snapshot(); s.Done || len(s.Stages) != 0 {
		t.Fatal("nil trace snapshot not zero")
	}
}

func TestTraceLifecycle(t *testing.T) {
	rec := NewRecorder(8)
	tr := NewTracer(rec, 1)
	s := tr.Start()
	if s == nil {
		t.Fatal("every=1 did not sample")
	}
	if rec.ActiveCount() != 1 {
		t.Fatalf("active = %d, want 1", rec.ActiveCount())
	}
	s.Annotate("nonce-1", "camp-1")
	s.Stage(StageDecode)
	s.Stage(StageCommit)
	s.Stage(StageApply)
	s.Finish()
	s.Finish() // idempotent
	s.Stage("late")
	if rec.ActiveCount() != 0 {
		t.Fatalf("active = %d after finish", rec.ActiveCount())
	}
	snap, ok := rec.Get(s.ID())
	if !ok {
		t.Fatal("finished trace not in recorder")
	}
	if !snap.Done || snap.Truncated != "" {
		t.Fatalf("snapshot done=%v truncated=%q", snap.Done, snap.Truncated)
	}
	if snap.Nonce != "nonce-1" || snap.Campaign != "camp-1" {
		t.Fatalf("annotation lost: %+v", snap)
	}
	want := []string{StageDecode, StageCommit, StageApply}
	if len(snap.Stages) != len(want) {
		t.Fatalf("stages %v, want %v", snap.Stages, want)
	}
	var prev time.Duration = -1
	for i, sp := range snap.Stages {
		if sp.Name != want[i] {
			t.Errorf("stage %d = %s, want %s", i, sp.Name, want[i])
		}
		if sp.Offset < prev {
			t.Errorf("offsets not monotonic: %v then %v", prev, sp.Offset)
		}
		prev = sp.Offset
	}
	if !snap.Complete(StageApply) {
		t.Fatal("trace with apply stage not Complete")
	}
	if snap.Complete("missing") {
		t.Fatal("Complete(missing stage) true")
	}
	if snap.StageOffset(StageCommit) < 0 {
		t.Fatal("StageOffset(commit) missing")
	}
	if snap.StageOffset("absent") != -1 {
		t.Fatal("StageOffset(absent) != -1")
	}
}

func TestTruncate(t *testing.T) {
	rec := NewRecorder(8)
	s := NewTracer(rec, 1).Start()
	s.Stage(StageDecode)
	s.Truncate("reject:payload")
	s.Truncate("second") // first reason sticks
	snap, _ := rec.Get(s.ID())
	if snap.Truncated != "reject:payload" {
		t.Fatalf("truncated = %q", snap.Truncated)
	}
	if snap.Complete(StageDecode) {
		t.Fatal("truncated trace reported complete")
	}
}

func TestAdopt(t *testing.T) {
	rec := NewRecorder(8)
	tr := NewTracer(rec, 0) // adoption honours the sender's decision even when local sampling is off
	id := NextID()
	sent := time.Now().Add(-10 * time.Millisecond).UnixNano()
	s := tr.Adopt(id, sent)
	if s == nil || s.ID() != id {
		t.Fatal("adopt did not keep the wire ID")
	}
	s.Stage(StageCommit)
	s.Finish()
	snap, _ := rec.Get(id)
	if len(snap.Stages) != 3 {
		t.Fatalf("stages = %+v, want beacon_send, wire_recv, commit", snap.Stages)
	}
	if snap.Stages[0].Name != StageBeaconSend || snap.Stages[0].Offset != 0 {
		t.Fatalf("first stage %+v", snap.Stages[0])
	}
	if w := snap.Stages[1]; w.Name != StageWireRecv || w.Offset < 10*time.Millisecond || w.Offset > time.Second {
		t.Fatalf("wire_recv %+v", w)
	}
	if snap.StartUnix != sent {
		t.Fatalf("wall start %d, want sender stamp %d", snap.StartUnix, sent)
	}
}

func TestAdoptClampsSkew(t *testing.T) {
	rec := NewRecorder(8)
	tr := NewTracer(rec, 1)
	// Sender clock far in the future: transit clamps to 0.
	s := tr.Adopt(NextID(), time.Now().Add(time.Hour).UnixNano())
	if got := s.Snapshot().Stages[1].Offset; got != 0 {
		t.Fatalf("future skew transit = %v, want 0", got)
	}
	// Sender clock far in the past: transit clamps to maxAdoptSkew.
	s2 := tr.Adopt(NextID(), time.Now().Add(-24*time.Hour).UnixNano())
	if got := s2.Snapshot().Stages[1].Offset; got != maxAdoptSkew {
		t.Fatalf("past skew transit = %v, want %v", got, maxAdoptSkew)
	}
	// Unknown send time: no wire_recv stamp.
	s3 := tr.Adopt(NextID(), 0)
	if n := len(s3.Snapshot().Stages); n != 1 {
		t.Fatalf("no-send-time adopt has %d stages, want 1", n)
	}
}

func TestRecorderRingEviction(t *testing.T) {
	rec := NewRecorder(4)
	tr := NewTracer(rec, 1)
	var ids []ID
	for i := 0; i < 10; i++ {
		s := tr.Start()
		s.Stage(StageCommit)
		s.Finish()
		ids = append(ids, s.ID())
	}
	recent := rec.Recent(0)
	if len(recent) != 4 {
		t.Fatalf("ring holds %d, want 4", len(recent))
	}
	// Newest first: ids[9], ids[8], ids[7], ids[6].
	for i, s := range recent {
		if s.ID != ids[9-i] {
			t.Fatalf("recent[%d] = %s, want %s", i, s.ID, ids[9-i])
		}
	}
	if _, ok := rec.Get(ids[0]); ok {
		t.Fatal("evicted trace still retrievable")
	}
	if _, ok := rec.Get(ids[9]); !ok {
		t.Fatal("newest trace missing")
	}
	if got := rec.Recent(2); len(got) != 2 || got[0].ID != ids[9] {
		t.Fatalf("Recent(2) = %+v", got)
	}
}

func TestSweepStale(t *testing.T) {
	rec := NewRecorder(8)
	tr := NewTracer(rec, 1)
	old := tr.Start()
	old.Stage(StageCommit)
	time.Sleep(5 * time.Millisecond)
	fresh := tr.Start()
	if n := rec.SweepStale(2 * time.Millisecond); n != 1 {
		t.Fatalf("swept %d, want 1", n)
	}
	snap, _ := rec.Get(old.ID())
	if snap.Truncated != "stale" {
		t.Fatalf("swept trace truncated=%q", snap.Truncated)
	}
	if rec.ActiveCount() != 1 {
		t.Fatalf("active = %d, want fresh trace only", rec.ActiveCount())
	}
	fresh.Finish()
}

func TestRecorderInstrument(t *testing.T) {
	reg := telemetry.NewRegistry()
	rec := NewRecorder(8)
	rec.Instrument(reg)
	tr := NewTracer(rec, 1)
	tr.Start().Finish()
	s := tr.Start()
	s.Truncate("x")
	tr.Start() // left active
	find := func(name string) float64 {
		ss, ok := reg.Find(name, nil)
		if !ok {
			t.Fatalf("metric %s not registered", name)
		}
		return ss.Value
	}
	if v := find("adaudit_trace_started_total"); v != 3 {
		t.Errorf("started = %v", v)
	}
	if v := find("adaudit_trace_finished_total"); v != 2 {
		t.Errorf("finished = %v", v)
	}
	if v := find("adaudit_trace_truncated_total"); v != 1 {
		t.Errorf("truncated = %v", v)
	}
	if v := find("adaudit_trace_active"); v != 1 {
		t.Errorf("active gauge = %v", v)
	}
	if v := find("adaudit_trace_recorded"); v != 2 {
		t.Errorf("recorded gauge = %v", v)
	}
}

func TestConcurrentTraces(t *testing.T) {
	rec := NewRecorder(128)
	tr := NewTracer(rec, 1)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s := tr.Start()
				s.Annotate(fmt.Sprintf("n%d", i), "c")
				s.Stage(StageDecode)
				s.Stage(StageCommit)
				s.Stage(StageApply)
				if i%7 == 0 {
					s.Truncate("chaos")
				} else {
					s.Finish()
				}
				rec.Get(s.ID())
			}
		}()
	}
	done := make(chan struct{})
	go func() { // concurrent readers + sweeper
		defer close(done)
		for i := 0; i < 50; i++ {
			rec.Recent(16)
			rec.Active()
			rec.SweepStale(time.Minute)
		}
	}()
	wg.Wait()
	<-done
	if rec.ActiveCount() != 0 {
		t.Fatalf("%d traces leaked active", rec.ActiveCount())
	}
}

func TestContextID(t *testing.T) {
	id := NextID()
	ctx := ContextWithID(context.Background(), id)
	got, ok := IDFromContext(ctx)
	if !ok || got != id {
		t.Fatalf("IDFromContext = %v, %v", got, ok)
	}
	if _, ok := IDFromContext(context.Background()); ok {
		t.Fatal("empty context yielded an ID")
	}
	if ContextWithID(context.Background(), 0) != context.Background() {
		t.Fatal("zero ID should not wrap the context")
	}
}

func TestAPI(t *testing.T) {
	rec := NewRecorder(16)
	tr := NewTracer(rec, 1)
	s := tr.Start()
	s.Annotate("n1", "c1")
	s.Stage(StageDecode)
	s.Stage(StageCommit)
	s.Finish()
	active := tr.Start()

	mux := http.NewServeMux()
	RegisterAPI(mux, rec)
	srv := httptest.NewServer(mux)
	defer srv.Close()
	defer active.Finish()

	get := func(path string, want int) []byte {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("GET %s = %d, want %d", path, resp.StatusCode, want)
		}
		var buf []byte
		buf = make([]byte, 0, 4096)
		tmp := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(tmp)
			buf = append(buf, tmp[:n]...)
			if err != nil {
				break
			}
		}
		return buf
	}

	var recent struct {
		Traces []Snapshot `json:"traces"`
		Active int        `json:"active"`
	}
	if err := json.Unmarshal(get("/api/trace/recent", 200), &recent); err != nil {
		t.Fatal(err)
	}
	if len(recent.Traces) != 1 || recent.Traces[0].IDHex != s.ID().String() {
		t.Fatalf("recent = %+v", recent)
	}
	if recent.Active != 1 {
		t.Fatalf("active = %d", recent.Active)
	}

	var one Snapshot
	if err := json.Unmarshal(get("/api/trace/"+s.ID().String(), 200), &one); err != nil {
		t.Fatal(err)
	}
	if one.Nonce != "n1" || len(one.Stages) != 2 {
		t.Fatalf("by-id = %+v", one)
	}

	get("/api/trace/zz", http.StatusBadRequest)
	get("/api/trace/0123456789abcdef", http.StatusNotFound)

	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(get("/api/trace/export", 200), &doc); err != nil {
		t.Fatal(err)
	}
	// metadata + instant(decode) + slice(commit)
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("export has %d events: %+v", len(doc.TraceEvents), doc.TraceEvents)
	}

	var act struct {
		Traces []Snapshot `json:"traces"`
	}
	if err := json.Unmarshal(get("/api/trace/active", 200), &act); err != nil {
		t.Fatal(err)
	}
	if len(act.Traces) != 1 || act.Traces[0].IDHex != active.ID().String() {
		t.Fatalf("active list = %+v", act)
	}
}

func TestWriteChromeTruncatedArgs(t *testing.T) {
	rec := NewRecorder(4)
	s := NewTracer(rec, 1).Start()
	s.Annotate("n", "c")
	s.Stage(StageDecode)
	s.Truncate("reject:insert")
	var buf jsonBuffer
	if err := WriteChrome(&buf, rec.Recent(0)); err != nil {
		t.Fatal(err)
	}
	var doc chromeTrace
	if err := json.Unmarshal(buf.b, &doc); err != nil {
		t.Fatal(err)
	}
	meta := doc.TraceEvents[0]
	if meta.Args["truncated"] != "reject:insert" || meta.Args["nonce"] != "n" {
		t.Fatalf("metadata args = %+v", meta.Args)
	}
}

type jsonBuffer struct{ b []byte }

func (j *jsonBuffer) Write(p []byte) (int, error) {
	j.b = append(j.b, p...)
	return len(p), nil
}

func BenchmarkStartUnsampled(b *testing.B) {
	tr := NewTracer(NewRecorder(64), 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if s := tr.Start(); s != nil {
			b.Fatal("sampled")
		}
	}
}

func BenchmarkStartSampled(b *testing.B) {
	tr := NewTracer(NewRecorder(1024), 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := tr.Start()
		s.Stage(StageDecode)
		s.Stage(StageCommit)
		s.Finish()
	}
}
