package simtest

import (
	"context"
	"fmt"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"adaudit/internal/adnet"
	"adaudit/internal/audit"
	"adaudit/internal/beacon"
	"adaudit/internal/collector"
	"adaudit/internal/faultnet"
	"adaudit/internal/gateway"
	"adaudit/internal/ipmeta"
	"adaudit/internal/publisher"
	"adaudit/internal/stats"
	"adaudit/internal/store"
	"adaudit/internal/streamaudit"
)

const gatewayWireTrunkToken = "simtest-trunk"

// TestSimGatewayWire extends the wire phase with the edge gateway
// tier: a beacon fleet reports through a fault-injected client leg
// into a gateway, which forwards over trunks to a collector that is
// killed and WAL-recovered mid-run on the same address. The gateway's
// spill buffer must carry every acknowledged commit across the
// restart, so the oracle's order-insensitive invariants extend to the
// two-hop path: an acked report is present exactly once after
// recovery (zero loss + nonce dedup through gateway replay), the
// drained store round-trips through the journal unchanged, and the
// streaming audit over the survivor equals the batch FullAudit.
func TestSimGatewayWire(t *testing.T) {
	if testing.Short() {
		t.Skip("gateway wire phase needs real time for the restart and replays")
	}
	for _, seed := range []int64{1, 2} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runGatewayWireSchedule(t, seed)
		})
	}
}

func runGatewayWireSchedule(t *testing.T, seed int64) {
	rng := stats.NewRNG(seed).Fork("gateway-wire")

	walPath := filepath.Join(t.TempDir(), "gwwire.wal")
	wal, err := store.OpenWAL(walPath, store.WALOptions{Policy: store.SyncOS})
	if err != nil {
		t.Fatal(err)
	}
	st := store.New()
	st.AttachWAL(wal)
	newCollector := func(s *store.Store) *collector.Collector {
		c, err := collector.New(collector.Config{
			Store:             s,
			Anonymizer:        ipmeta.NewAnonymizer([]byte("simgw")),
			TrunkToken:        gatewayWireTrunkToken,
			KeepAliveInterval: 50 * time.Millisecond,
			Logger:            discardLogger(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	startCollector := func(c *collector.Collector, addr string) (*collector.Server, func()) {
		srv, err := collector.NewServer(c, addr)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			defer close(done)
			_ = srv.Serve(ctx)
		}()
		stopped := false
		stop := func() {
			if stopped {
				return
			}
			stopped = true
			cancel()
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				t.Fatal("collector server did not stop")
			}
		}
		t.Cleanup(stop)
		return srv, stop
	}

	csrvA, stopA := startCollector(newCollector(st), "127.0.0.1:0")
	collectorAddr := csrvA.Addr().String()

	g, err := gateway.New(gateway.Config{
		CollectorURL:      fmt.Sprintf("ws://%s/trunk", collectorAddr),
		TrunkToken:        gatewayWireTrunkToken,
		GatewayID:         fmt.Sprintf("gw-sim-%d", seed),
		Trunks:            2,
		KeepAliveInterval: 50 * time.Millisecond,
		BatchAge:          10 * time.Millisecond,
		AckTimeout:        300 * time.Millisecond,
		ReplayInterval:    50 * time.Millisecond,
		BreakerThreshold:  3,
		BreakerCooldown:   50 * time.Millisecond,
		Logger:            discardLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	gsrv, err := gateway.NewServer(g, "127.0.0.1:0", gateway.WithDrainGrace(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	gctx, gcancel := context.WithCancel(context.Background())
	gdone := make(chan struct{})
	go func() {
		defer close(gdone)
		_ = gsrv.Serve(gctx)
	}()
	t.Cleanup(func() {
		gcancel()
		select {
		case <-gdone:
		case <-time.After(15 * time.Second):
			t.Fatal("gateway server did not stop")
		}
	})

	// Client-leg chaos between the fleet and the gateway; the trunk leg
	// sees the collector restart instead of packet-level faults here
	// (the gateway package's chaos test covers both at once).
	plan := &faultnet.Plan{
		Seed:           seed,
		KillAfter:      time.Duration(40+rng.Intn(60)) * time.Millisecond,
		KillJitter:     time.Duration(60+rng.Intn(120)) * time.Millisecond,
		ResetWriteProb: 0.01 * float64(rng.Intn(4)),
	}
	proxy, err := faultnet.NewProxy("127.0.0.1:0", gsrv.Addr().String(), plan)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	proxyURL := fmt.Sprintf("ws://%s/beacon", proxy.Addr())

	pubs, err := publisher.NewUniverse(publisher.Config{Seed: seed, NumPublishers: 60})
	if err != nil {
		t.Fatal(err)
	}

	const fleet = 16
	type outcome struct {
		nonce string
		acked bool
	}
	outcomes := make([]outcome, fleet)
	var wg sync.WaitGroup
	for i := 0; i < fleet; i++ {
		exposure := time.Duration(120+rng.Intn(120)) * time.Millisecond
		wg.Add(1)
		go func(i int, exposure time.Duration) {
			defer wg.Done()
			// Stagger so sessions commit before, during and after the
			// collector outage.
			time.Sleep(time.Duration(i) * 25 * time.Millisecond)
			cl := &beacon.Client{
				CollectorURL:    proxyURL,
				MaxAttempts:     10,
				RetryBackoff:    5 * time.Millisecond,
				RetryBackoffMax: 40 * time.Millisecond,
			}
			p := beacon.Payload{
				CampaignID: "sim-gateway-wire",
				CreativeID: fmt.Sprintf("cr-%d", i),
				PageURL:    fmt.Sprintf("http://%s/page", pubs.At(i%8).Domain),
				UserAgent:  "Mozilla/5.0 SimGatewayWire",
				Nonce:      fmt.Sprintf("gwwire-%d-%04d", seed, i),
				Events: []beacon.Event{
					{Kind: beacon.EventMouseMove, At: 30 * time.Millisecond},
				},
			}
			rctx, rcancel := context.WithTimeout(context.Background(), 15*time.Second)
			defer rcancel()
			err := cl.Report(rctx, p, exposure)
			outcomes[i] = outcome{nonce: p.Nonce, acked: err == nil}
		}(i, exposure)
	}

	// Mid-run collector crash + WAL recovery on the same address. While
	// it is down, sessions keep committing: the gateway acks them from
	// its spill buffer and replays once the restarted collector's trunk
	// endpoint is back.
	time.Sleep(150 * time.Millisecond)
	stopA()
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}
	st2, applied, err := store.RecoverWAL(walPath, nil, discardLogger())
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)
	wal2, err := store.OpenWAL(walPath, store.WALOptions{Policy: store.SyncOS})
	if err != nil {
		t.Fatal(err)
	}
	st2.AttachWAL(wal2)
	_, stopB := startCollector(newCollector(st2), collectorAddr)

	wg.Wait()

	acked := 0
	for _, o := range outcomes {
		if o.acked {
			acked++
		}
	}
	_, kills, _, _ := plan.Stats()
	t.Logf("gateway wire seed %d: %d/%d acked, clientKills=%d, %d WAL entries at restart",
		seed, acked, fleet, kills, applied)
	if acked == 0 {
		t.Fatal("no beacon ever got through; schedule too violent to test the invariant")
	}

	// The drain must flush every acked commit into the restarted
	// collector — anything left would be loss.
	if left := g.Drain(15 * time.Second); left != 0 {
		t.Fatalf("gateway drain left %d acked commits undelivered (loss)", left)
	}

	// Crash the survivor too: the recovered-from-recovered store must
	// round-trip the journal unchanged.
	stopB()
	if err := wal2.Close(); err != nil {
		t.Fatal(err)
	}
	rec, _, err := store.RecoverWAL(walPath, nil, discardLogger())
	if err != nil {
		t.Fatal(err)
	}

	byNonce := map[string]int{}
	rec.ForEach(func(im store.Impression) bool {
		if im.Nonce != "" {
			byNonce[im.Nonce]++
		}
		if im.Exposure < 0 {
			t.Errorf("recovered record %d has negative exposure %v", im.ID, im.Exposure)
		}
		return true
	})
	for i, o := range outcomes {
		n := byNonce[o.nonce]
		if o.acked && n == 0 {
			t.Errorf("beacon %d acked but absent after recovery (zero-loss violated)", i)
		}
		if n > 1 {
			t.Errorf("nonce of beacon %d appears %d times (no-duplication violated)", i, n)
		}
	}
	liveRecs, recRecs := dumpStore(st2), dumpStore(rec)
	if len(liveRecs) != len(recRecs) {
		t.Fatalf("recovered %d records, live store held %d", len(recRecs), len(liveRecs))
	}
	for i := range liveRecs {
		if !impressionEqual(liveRecs[i], recRecs[i]) {
			t.Errorf("record %d diverges after recovery", liveRecs[i].ID)
		}
	}

	// Stream-vs-batch audit equality over the surviving dataset.
	meta := audit.UniverseMetadata{Universe: pubs}
	inputs := gatewayWireAuditInputs(rec)
	aud, err := audit.New(rec, meta)
	if err != nil {
		t.Fatal(err)
	}
	want, err := aud.FullAuditSerial(inputs)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := streamaudit.New(streamaudit.Config{Store: rec, Meta: meta})
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.Report(inputs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("streaming audit diverges from batch FullAudit on the surviving store")
	}
}

// gatewayWireAuditInputs synthesizes per-campaign vendor reports that
// agree with the store by construction, so batch-vs-streaming equality
// is the only thing under test (the same trick the oracle's
// auditInputs plays with its model).
func gatewayWireAuditInputs(st *store.Store) []audit.CampaignInput {
	type pubCount struct {
		impressions int64
		clicks      int64
	}
	perCampaign := map[string]map[string]*pubCount{}
	st.ForEach(func(im store.Impression) bool {
		pubs := perCampaign[im.CampaignID]
		if pubs == nil {
			pubs = map[string]*pubCount{}
			perCampaign[im.CampaignID] = pubs
		}
		pc := pubs[im.Publisher]
		if pc == nil {
			pc = &pubCount{}
			pubs[im.Publisher] = pc
		}
		pc.impressions++
		pc.clicks += int64(im.Clicks)
		return true
	})
	var ids []string
	for id := range perCampaign {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var inputs []audit.CampaignInput
	for _, id := range ids {
		rep := &adnet.VendorReport{CampaignID: id}
		var total int64
		for pub, pc := range perCampaign[id] {
			rep.Rows = append(rep.Rows, adnet.ReportRow{
				Publisher:   pub,
				Impressions: pc.impressions,
				Clicks:      pc.clicks,
			})
			total += pc.impressions
		}
		sort.Slice(rep.Rows, func(a, b int) bool {
			if rep.Rows[a].Impressions != rep.Rows[b].Impressions {
				return rep.Rows[a].Impressions > rep.Rows[b].Impressions
			}
			return rep.Rows[a].Publisher < rep.Rows[b].Publisher
		})
		rep.TotalImpressionsCharged = total
		rep.ContextualImpressions = total * 2 / 3
		rep.RefundedImpressions = total / 10
		inputs = append(inputs, audit.CampaignInput{ID: id, Report: rep})
	}
	return inputs
}
