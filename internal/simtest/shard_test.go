package simtest

import (
	"strconv"
	"strings"
	"testing"
)

// TestSimSharded runs the schedule with the post-hoc sharded-topology
// oracle enabled at several shard counts: the final store partitioned
// by the router's hash, one streamaudit engine per shard, and the
// merged report held deep-equal to the combined-store batch audit. An
// adversarial seed rides along so the merge is proven over detector
// state (bots, pooling, spoofing), not just clean counters.
func TestSimSharded(t *testing.T) {
	for _, shards := range []int{2, 4, 8} {
		shards := shards
		t.Run("shards"+strconv.Itoa(shards), func(t *testing.T) {
			cfg := Config{
				Seed:     int64(90 + shards),
				Sessions: *flagSessions,
				Dir:      t.TempDir(),
				Shards:   shards,
			}
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("shards %d: %v", shards, err)
			}
			if res.Failed() {
				t.Errorf("shards %d: violations:\n  %s", shards, strings.Join(res.Violations, "\n  "))
			}
		})
	}
	t.Run("adversarial", func(t *testing.T) {
		cfg := Config{
			Seed:     97,
			Sessions: *flagSessions,
			Dir:      t.TempDir(),
			Shards:   4,
			Attack:   "all",
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Failed() {
			t.Errorf("adversarial sharded run: violations:\n  %s", strings.Join(res.Violations, "\n  "))
		}
	})
}

// TestShardsDigestDeterminism pins that Config.Shards is purely a
// post-hoc oracle: the same seed must produce byte-identical digests
// whether the shard check runs at 0, 2 or 8 shards — the partition
// draws nothing from the schedule RNG and runs after the digest is
// sealed.
func TestShardsDigestDeterminism(t *testing.T) {
	const seed = 41
	digests := map[int]string{}
	for _, shards := range []int{0, 2, 8} {
		cfg := Config{
			Seed:     seed,
			Sessions: *flagSessions,
			Dir:      t.TempDir(),
			Shards:   shards,
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("shards %d: %v", shards, err)
		}
		if res.Failed() {
			t.Fatalf("shards %d: violations:\n  %s", shards, strings.Join(res.Violations, "\n  "))
		}
		digests[shards] = res.Digest
	}
	if digests[2] != digests[0] || digests[8] != digests[0] {
		t.Fatalf("digest changed with shard count: shards0=%s shards2=%s shards8=%s",
			digests[0], digests[2], digests[8])
	}
}
