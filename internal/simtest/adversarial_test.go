package simtest

import (
	"strings"
	"testing"
)

// TestSimAdversarial sweeps every attack scenario (and the combined
// pack) through seeded schedules: the serial run must satisfy the full
// oracle — including checkAdversarial's exact precision/recall
// contract — with at least one detector flag raised (non-vacuity), and
// the concurrent phase must hold the same invariants under races. The
// clean-schedule leg pins the false-positive floor explicitly: zero
// adversarial flags when nothing was injected.
func TestSimAdversarial(t *testing.T) {
	attacks := []string{"spoof", "pool", "bot", "inflate", "all"}
	for _, attack := range attacks {
		attack := attack
		t.Run(attack, func(t *testing.T) {
			for seed := int64(31); seed <= 32; seed++ {
				cfg := Config{
					Seed:     seed,
					Sessions: 36,
					Dir:      t.TempDir(),
					Attack:   attack,
				}
				res, err := Run(cfg)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if res.Failed() {
					reportFailure(t, cfg, res)
					continue
				}
				if res.AdversarialFlags == 0 {
					t.Errorf("seed %d attack %q: no detector flags raised; scenario is vacuous",
						seed, attack)
				}

				conc := cfg
				conc.Workers = 4
				cres, err := Run(conc)
				if err != nil {
					t.Fatalf("seed %d (concurrent): %v", seed, err)
				}
				if cres.Failed() {
					t.Errorf("seed %d attack %q: concurrent phase violated invariants:\n  %s",
						seed, attack, strings.Join(cres.Violations, "\n  "))
				}
			}
		})
	}

	t.Run("clean-floor", func(t *testing.T) {
		for seed := int64(31); seed <= 33; seed++ {
			res, err := Run(Config{Seed: seed, Sessions: 36, Dir: t.TempDir()})
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if res.Failed() {
				t.Fatalf("seed %d clean: %s", seed, strings.Join(res.Violations, "\n  "))
			}
			if res.AdversarialFlags != 0 {
				t.Errorf("seed %d: clean schedule raised %d adversarial flags, want 0",
					seed, res.AdversarialFlags)
			}
		}
	})

	t.Run("determinism", func(t *testing.T) {
		a, err := Run(Config{Seed: 31, Sessions: 36, Dir: t.TempDir(), Attack: "all"})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(Config{Seed: 31, Sessions: 36, Dir: t.TempDir(), Attack: "all"})
		if err != nil {
			t.Fatal(err)
		}
		if a.Digest != b.Digest {
			t.Errorf("attack digests differ across identical runs:\n  %s\n  %s", a.Digest, b.Digest)
		}
	})
}

// TestSimAdversarialDisabledDetector is the proof the oracle
// invariants have teeth: with an attack injected and its detector
// blanked, the run must fail, the failure must shrink to a small
// reproducer that still fails, and the same session subset must pass
// once the detector is restored — so the violation is the regressed
// detector, not harness noise. This is the executable form of the
// acceptance criterion "each scenario's invariant fails if its
// detector is disabled".
func TestSimAdversarialDisabledDetector(t *testing.T) {
	cases := []struct {
		attack, detector string
	}{
		{"spoof", "sellers"},
		{"pool", "pooling"},
		{"bot", "behavior"},
		{"inflate", "behavior"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.attack, func(t *testing.T) {
			cfg := Config{
				Seed:            41,
				Sessions:        36,
				Dir:             t.TempDir(),
				Attack:          tc.attack,
				DisableDetector: tc.detector,
			}
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Failed() {
				t.Fatalf("oracle missed the disabled %s detector under attack %q",
					tc.detector, tc.attack)
			}

			min, minRes, err := Shrink(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !minRes.Failed() {
				t.Fatal("shrunk reproducer no longer fails")
			}
			if len(min) >= cfg.Sessions {
				t.Errorf("shrinker kept all %d sessions; expected a smaller reproducer", len(min))
			}
			t.Logf("attack %q / disabled %s shrunk to %d session(s) %v; violations:\n  %s",
				tc.attack, tc.detector, len(min), min, strings.Join(minRes.Violations, "\n  "))

			// Same subset, detector restored: must pass.
			clean := cfg
			clean.DisableDetector = ""
			clean.Only = min
			cres, err := Run(clean)
			if err != nil {
				t.Fatal(err)
			}
			if cres.Failed() {
				t.Fatalf("minimal subset fails even with the detector enabled:\n  %s",
					strings.Join(cres.Violations, "\n  "))
			}
		})
	}
}
