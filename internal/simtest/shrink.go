package simtest

import "fmt"

// maxShrinkProbes bounds the shrinker's re-runs so a pathological
// schedule cannot stall CI; ddmin over the session counts this harness
// uses converges in far fewer.
const maxShrinkProbes = 200

// Shrink minimises a failing run to the smallest session subset that
// still trips the oracle, using ddmin over session indices: try each
// chunk of the current subset alone, then each complement, halving or
// doubling granularity as standard. Because every session's schedule is
// generated from its own forked RNG stream, removing sessions never
// perturbs the survivors — a shrunk subset replays exactly the sessions
// the full run contained.
//
// It returns the minimal subset and the Result of its final failing
// run. The reproducer is then: the original seed plus the subset
// (Config.Only), e.g.
//
//	go test ./internal/simtest -run TestSim -seed=<n> -only=3,17
func Shrink(cfg Config) ([]int, *Result, error) {
	cur := cfg.Only
	if cur == nil {
		if cfg.Sessions == 0 {
			cfg.Sessions = 48
		}
		cur = make([]int, cfg.Sessions)
		for i := range cur {
			cur[i] = i
		}
	}

	probes := 0
	fails := func(subset []int) (*Result, bool, error) {
		if probes >= maxShrinkProbes {
			return nil, false, nil
		}
		probes++
		probe := cfg
		probe.Only = subset
		res, err := Run(probe)
		if err != nil {
			return nil, false, err
		}
		return res, res.Failed(), nil
	}

	last, failed, err := fails(cur)
	if err != nil {
		return nil, nil, err
	}
	if !failed {
		return nil, nil, fmt.Errorf("simtest: shrink of a passing run (seed %d)", cfg.Seed)
	}

	n := 2
	for len(cur) > 1 && probes < maxShrinkProbes {
		chunks := splitChunks(cur, n)
		reduced := false
		for _, chunk := range chunks {
			res, bad, err := fails(chunk)
			if err != nil {
				return nil, nil, err
			}
			if bad {
				cur, last, n, reduced = chunk, res, 2, true
				break
			}
		}
		if !reduced {
			for i := range chunks {
				comp := complement(cur, chunks[i])
				if len(comp) == 0 {
					continue
				}
				res, bad, err := fails(comp)
				if err != nil {
					return nil, nil, err
				}
				if bad {
					cur, last, reduced = comp, res, true
					if n > 2 {
						n--
					}
					break
				}
			}
		}
		if !reduced {
			if n >= len(cur) {
				break
			}
			n *= 2
			if n > len(cur) {
				n = len(cur)
			}
		}
	}
	return cur, last, nil
}

// splitChunks divides ids into n nearly equal contiguous chunks.
func splitChunks(ids []int, n int) [][]int {
	if n > len(ids) {
		n = len(ids)
	}
	chunks := make([][]int, 0, n)
	for i := 0; i < n; i++ {
		lo, hi := i*len(ids)/n, (i+1)*len(ids)/n
		if lo < hi {
			chunks = append(chunks, ids[lo:hi])
		}
	}
	return chunks
}

// complement returns ids minus the drop chunk, preserving order.
func complement(ids, drop []int) []int {
	skip := make(map[int]bool, len(drop))
	for _, d := range drop {
		skip[d] = true
	}
	out := make([]int, 0, len(ids)-len(drop))
	for _, id := range ids {
		if !skip[id] {
			out = append(out, id)
		}
	}
	return out
}
