// Package simtest is a deterministic simulation-testing harness for the
// beacon → collector → store → audit pipeline, in the style of
// FoundationDB's simulator: a seeded schedule generator produces a
// reproducible workload of beacon sessions — clean one-shot exposures,
// dropped beacons, reconnects resuming under the original nonce,
// duplicate deliveries, reordered continuation segments — and drives it
// through the collector's Ingest funnel on a virtual clock while a
// shadow model (oracle.go) predicts exactly what the store must
// contain. After the run the harness checks the paper's measurement
// invariants:
//
//   - zero-loss: every delivered session has a record;
//   - no-duplication: one record per nonce, continuations merged;
//   - exposure monotonicity: a record's exposure never decreases;
//   - durability: WAL replay (over the latest snapshot) reconstructs
//     the live store byte for byte, mid-run and at the end;
//   - audit determinism: the parallel audit equals the serial audit;
//   - trace completeness (with Config.TraceSample set): every traced
//     session's pipeline trace finishes — complete through the
//     stream-apply stage or explicitly truncated — and no orphan spans
//     linger in the flight recorder, even across reconnects,
//     duplicates and reordered replays.
//
// Everything derives from the seed, so a failing schedule is a
// one-line reproducer (go test ./internal/simtest -run TestSim
// -seed=<n>), the trace digest is identical across runs of the same
// seed, and shrink.go can minimise a failure to the smallest session
// subset that still trips the oracle.
package simtest

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"net/netip"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"adaudit/internal/audit"
	"adaudit/internal/beacon"
	"adaudit/internal/collector"
	"adaudit/internal/ipmeta"
	"adaudit/internal/publisher"
	"adaudit/internal/simclock"
	"adaudit/internal/stats"
	"adaudit/internal/store"
	"adaudit/internal/streamaudit"
	"adaudit/internal/trace"
)

// Config parameterises one simulation run. Seed is the only input that
// changes the schedule; everything else scales or filters it.
type Config struct {
	// Seed drives every random choice in the schedule.
	Seed int64
	// Sessions is the number of beacon sessions to schedule (default 48).
	Sessions int
	// Workers > 1 delivers sessions concurrently (each session's
	// segments stay in order on one worker) and checks only the
	// order-insensitive invariants; 0 or 1 is the fully deterministic
	// serial phase that also produces the trace digest.
	Workers int
	// Only restricts delivery to the listed session indices — the
	// shrinker's handle, and the second half of a minimal reproducer.
	// Nil delivers every session.
	Only []int
	// Dir is the scratch directory for the WAL and snapshots. Each Run
	// creates a fresh subdirectory, so one Dir serves many runs.
	Dir string
	// BreakDedup simulates a nonce-dedup regression: continuation
	// segments are delivered without their nonce, so the collector
	// inserts fresh records instead of merging. The oracle still
	// expects correct behaviour — the run must report violations. This
	// keeps a permanent, executable proof that the oracle catches the
	// dedup failure mode.
	BreakDedup bool
	// TraceSample > 0 stamps pipeline trace context (a deterministic
	// trace ID derived from the nonce) on 1-in-N non-dropped sessions
	// and runs the collector with a flight recorder attached. The
	// oracle then checks trace completeness: every stamped session's
	// trace must finish (through stream apply, or explicitly
	// truncated), and the recorder's active set must drain to empty.
	// 0 disables tracing. Stamping draws nothing from the schedule
	// RNG, so digests are unaffected.
	TraceSample int
	// WireMix delivers roughly half the sessions as pre-encoded binary
	// wire frames through Collector.IngestBinary instead of decoded
	// Observations — the mixed text+binary fleet a real deployment
	// sees. The per-session wire pick hashes the nonce, drawing
	// nothing from the schedule RNG, so a WireMix run's digest must be
	// byte-identical to the all-text run's: that equality IS the
	// binary codec's end-to-end correctness invariant.
	WireMix bool
	// GroupWAL journals under the group-commit fsync policy
	// (store.SyncGroup) instead of the default interval policy, so the
	// WAL-replay-equals-live-store invariant and the mid-run recovery
	// probes exercise the batched-fsync path. GroupLatency stays 0:
	// the flusher must never wait on a timer the virtual clock would
	// have to advance.
	GroupWAL bool
	// Attack injects the adversarial scenario pack into the schedule:
	// "spoof" (domain-spoofed reporting), "pool" (one seller ID resold
	// across unrelated owner groups), "bot" (a residential timer bot
	// with a degenerate behavioral signature), "inflate" (a stacked
	// 1-px placement), or "all". Attack sessions carry ground-truth
	// labels into the shadow model; the oracle then demands the audit's
	// adversarial detectors flag exactly the injected fraud. Empty
	// injects nothing — and the oracle demands zero adversarial flags,
	// the false-positive floor every clean seed is held to.
	Attack string
	// DisableDetector blanks one adversarial dimension ("sellers",
	// "pooling" or "behavior") in the report the oracle inspects,
	// simulating a regressed/removed detector. With an Attack injected,
	// the run must then fail — the executable proof the oracle's
	// adversarial invariant has teeth.
	DisableDetector string
	// Shards > 0 adds a post-hoc sharded-topology oracle: the final
	// store is partitioned onto Shards stores by the router's partition
	// function (nonce hash; conversions by user key), one streamaudit
	// engine runs per shard, and the shard-merged report must equal the
	// batch audit over the combined store. The partition runs after the
	// digest is sealed and draws nothing from the schedule RNG, so a
	// run's digest is byte-identical across shard counts.
	Shards int
}

// Result is the outcome of one run.
type Result struct {
	// Digest fingerprints the schedule, every delivery outcome, and the
	// final store content. Same seed (and config) → same digest.
	Digest string
	// Violations are oracle findings; empty means the run passed.
	Violations []string
	// Sessions and Deliveries count the scheduled work after Only
	// filtering.
	Sessions   int
	Deliveries int
	// Traced counts the sessions that carried trace context (0 unless
	// Config.TraceSample was set).
	Traced int
	// BinaryDeliveries counts the deliveries routed over the binary
	// wire (0 unless Config.WireMix) — the degenerate-mix guard: a
	// wire-mix run whose digest matches all-text proves nothing if no
	// delivery actually took the binary path.
	BinaryDeliveries int
	// AdversarialFlags counts the entities the adversarial detectors
	// flagged in the final audit (unauthorized seller pairs + pooled
	// sellers + bot users + inflated publishers, summed over
	// campaigns) — the attack tests' non-vacuity guard, and the clean
	// runs' zero-flag floor.
	AdversarialFlags int
}

// Failed reports whether the oracle found violations.
func (r *Result) Failed() bool { return len(r.Violations) > 0 }

type scenario int

const (
	// scenarioClean is a single connect-expose-close session.
	scenarioClean scenario = iota
	// scenarioDrop is a beacon that never reaches the collector (page
	// blocked the script, network ate the connection) — the loss side
	// of the model: no record may appear.
	scenarioDrop
	// scenarioReconnect is a session whose connection dies mid-exposure
	// and resumes 1–2 times under the original nonce.
	scenarioReconnect
	// scenarioDuplicate delivers the identical initial segment twice —
	// a retransmitted payload the nonce cache must fold into one record.
	scenarioDuplicate
	// scenarioReorder is a reconnect whose segments arrive out of
	// chronological order.
	scenarioReorder
	// The adversarial scenarios (Config.Attack): single-segment
	// sessions carrying injected fraud plus the ground-truth label the
	// oracle's checkAdversarial compares detector output against.
	scenarioBot
	scenarioInflate
	scenarioSpoof
	scenarioPool
)

func (s scenario) String() string {
	switch s {
	case scenarioClean:
		return "clean"
	case scenarioDrop:
		return "drop"
	case scenarioReconnect:
		return "reconnect"
	case scenarioDuplicate:
		return "duplicate"
	case scenarioReorder:
		return "reorder"
	case scenarioBot:
		return "bot"
	case scenarioInflate:
		return "inflate"
	case scenarioSpoof:
		return "spoof"
	case scenarioPool:
		return "pool"
	}
	return "unknown"
}

// segment is one delivered connection of a session: the initial
// exposure or a continuation after a reconnect.
type segment struct {
	session   int
	index     int // within-session delivery order, 0 = creates the record
	obs       collector.Observation
	deliverAt time.Time
}

// simSession is one scheduled beacon lifetime.
type simSession struct {
	idx      int
	kind     scenario
	nonce    string
	segments []segment // in delivery order

	// Adversarial ground truth (attack sessions only): the publisher
	// and seller the vendor report books the impression under. Honest
	// sessions leave both empty — the report then carries the beacon's
	// true publisher and its direct seller account.
	reportedPublisher string
	sellerID          string
}

// simBase is the virtual-time origin of every schedule — the paper's
// campaign flight month.
var simBase = time.Date(2016, time.March, 29, 9, 0, 0, 0, time.UTC)

var simCampaigns = []struct {
	ID       string
	Keywords []string
}{
	{"sim-research", []string{"ciencia", "investigación"}},
	{"sim-football", []string{"fútbol", "liga"}},
	{"sim-news", []string{"noticias", "actualidad"}},
}

var simAgents = []string{
	"Mozilla/5.0 (X11; Linux x86_64) Firefox/44.0",
	"Mozilla/5.0 (Windows NT 6.1) Chrome/48.0",
	"Mozilla/5.0 (Macintosh) Safari/601.4",
}

// universeFor builds the publisher inventory a schedule draws pages
// from. It depends only on the seed, never on session count or
// filtering, so shrunk reproducers see the identical universe.
func universeFor(seed int64) (*publisher.Universe, error) {
	return publisher.NewUniverse(publisher.Config{
		Seed:          seed ^ 0x51e5_7e57, // decouple from other seed uses
		NumPublishers: 400,
	})
}

// generate expands a seed into the full session schedule. Every session
// forks its own RNG stream, so session i's schedule is identical
// whether or not the other sessions are delivered — the property the
// shrinker relies on.
func generate(cfg Config, uni *publisher.Universe) []simSession {
	rng := stats.NewRNG(cfg.Seed)
	sessions := make([]simSession, cfg.Sessions)
	for i := range sessions {
		sessions[i] = genSession(cfg, i, rng.Fork(fmt.Sprintf("session/%d", i)), uni)
	}
	return sessions
}

func genSession(cfg Config, idx int, rng *stats.RNG, uni *publisher.Universe) simSession {
	s := simSession{idx: idx, nonce: fmt.Sprintf("sim-%x-%04d", uint64(cfg.Seed), idx)}
	if kind, ok := attackKindFor(cfg.Attack, idx); ok {
		return genAttackSession(cfg, s, kind, rng, uni)
	}
	switch p := rng.Float64(); {
	case p < 0.45:
		s.kind = scenarioClean
	case p < 0.55:
		s.kind = scenarioDrop
	case p < 0.80:
		s.kind = scenarioReconnect
	case p < 0.90:
		s.kind = scenarioDuplicate
	default:
		s.kind = scenarioReorder
	}

	camp := simCampaigns[rng.Intn(len(simCampaigns))]
	pub := uni.At(rng.Intn(uni.Len()))
	payload := beacon.Payload{
		CampaignID: camp.ID,
		CreativeID: fmt.Sprintf("cr%d", 1+rng.Intn(3)),
		PageURL:    "http://www." + pub.Domain + "/ad-slot",
		UserAgent:  simAgents[rng.Intn(len(simAgents))],
		Nonce:      s.nonce,
	}
	ip := netip.AddrFrom4([4]byte{10, byte(rng.Intn(250)), byte(rng.Intn(250)), byte(1 + rng.Intn(250))})
	connectedAt := simBase.Add(time.Duration(idx)*time.Second +
		time.Duration(rng.Intn(1000))*time.Millisecond)

	if s.kind == scenarioDrop {
		return s
	}
	if cfg.TraceSample > 0 && idx%cfg.TraceSample == 0 {
		// Trace context rides the payload exactly as a real beacon
		// sends it; every segment (reconnect, duplicate, reorder) of
		// the session carries the same wire ID, so merge legs adopt
		// and re-finish it the way production replays do. Derived from
		// the nonce, not the RNG: schedules and digests are unchanged.
		payload.TraceID = traceIDFor(s.nonce)
		payload.TraceSent = connectedAt.UnixNano()
	}

	nsegs := 1
	switch s.kind {
	case scenarioReconnect, scenarioReorder:
		nsegs = 2 + rng.Intn(2)
	case scenarioDuplicate:
		nsegs = 2
	}

	deliverAt := connectedAt
	for k := 0; k < nsegs; k++ {
		exposure := time.Duration(1+rng.Intn(120)) * time.Second
		if rng.Bool(0.04) {
			// An abandoned tab: exercise the collector's MaxExposure
			// clamp (the model clamps identically).
			exposure = 2 * time.Hour
		}
		seg := segment{
			session: idx,
			index:   k,
			obs: collector.Observation{
				Payload:     payload,
				RemoteIP:    ip,
				ConnectedAt: connectedAt,
				Exposure:    exposure,
			},
		}
		if s.kind == scenarioDuplicate && k > 0 {
			// Byte-identical retransmission of the first segment.
			seg.obs = s.segments[0].obs
			deliverAt = deliverAt.Add(time.Duration(1+rng.Intn(10)) * time.Second)
			seg.deliverAt = deliverAt
			s.segments = append(s.segments, seg)
			continue
		}
		seg.obs.Payload.Events = genEvents(rng)
		deliverAt = deliverAt.Add(exposure + time.Duration(rng.Intn(15))*time.Second)
		seg.deliverAt = deliverAt
		s.segments = append(s.segments, seg)
	}

	if s.kind == scenarioReorder && len(s.segments) > 1 {
		// Permute the delivery instants among the segments, so a later
		// continuation can arrive first and create the record.
		ats := make([]time.Time, len(s.segments))
		for k := range s.segments {
			ats[k] = s.segments[k].deliverAt
		}
		perm := rng.Perm(len(s.segments))
		for k := range s.segments {
			s.segments[k].deliverAt = ats[perm[k]]
		}
		sort.SliceStable(s.segments, func(a, b int) bool {
			return s.segments[a].deliverAt.Before(s.segments[b].deliverAt)
		})
		for k := range s.segments {
			s.segments[k].index = k
		}
	}
	return s
}

// traceIDFor derives a session's wire trace ID from its nonce — a
// pure function of the schedule, so the oracle can predict exactly
// which traces must exist without threading state through delivery.
func traceIDFor(nonce string) string {
	h := fnv.New64a()
	io.WriteString(h, "trace/"+nonce)
	id := h.Sum64()
	if id == 0 {
		id = 1
	}
	return fmt.Sprintf("%016x", id)
}

func genEvents(rng *stats.RNG) []beacon.Event {
	var evs []beacon.Event
	for m := rng.Intn(3); m > 0; m-- {
		evs = append(evs, beacon.Event{Kind: beacon.EventMouseMove,
			At: time.Duration(rng.Intn(30)) * time.Second})
	}
	if rng.Bool(0.25) {
		evs = append(evs, beacon.Event{Kind: beacon.EventClick,
			At: time.Duration(1+rng.Intn(30)) * time.Second})
	}
	if rng.Bool(0.7) {
		// Divide rather than multiply by 0.05: k/20 is the correctly
		// rounded float for a 2-decimal value, a fixed point of the
		// wire codecs' 3-decimal quantisation — so a payload delivered
		// as wire bytes (Config.WireMix) decodes to the exact fraction
		// the oracle's model holds. k*0.05 is not (3*0.05 ≠ 0.15 in
		// float64). The digest prints %.4f, so this is digest-neutral.
		evs = append(evs, beacon.Event{Kind: beacon.EventVisibility,
			At:       time.Duration(rng.Intn(10)) * time.Second,
			Fraction: float64(rng.Intn(21)) / 20})
	}
	return evs
}

// expectedTraces predicts the flight recorder's contents from the
// schedule: the wire trace ID of every included, non-dropped session
// that was stamped with trace context, mapped to the session itself so
// violations name their reproducer.
func expectedTraces(sessions []simSession, only []int, traceSample int) map[trace.ID]*simSession {
	if traceSample <= 0 {
		return nil
	}
	include := map[int]bool{}
	for _, i := range only {
		include[i] = true
	}
	out := map[trace.ID]*simSession{}
	for i := range sessions {
		s := &sessions[i]
		if only != nil && !include[s.idx] {
			continue
		}
		if len(s.segments) == 0 {
			continue // dropped beacon: no trace may appear
		}
		hex := s.segments[0].obs.Payload.TraceID
		if hex == "" {
			continue
		}
		id, err := trace.ParseID(hex)
		if err != nil {
			continue
		}
		out[id] = s
	}
	return out
}

// deliveries flattens the included sessions into the global delivery
// order: by instant, with (session, segment) as the deterministic
// tiebreak. Dropped sessions contribute nothing.
func deliveries(sessions []simSession, only []int) []segment {
	include := map[int]bool{}
	for _, i := range only {
		include[i] = true
	}
	var flat []segment
	for _, s := range sessions {
		if only != nil && !include[s.idx] {
			continue
		}
		flat = append(flat, s.segments...)
	}
	sort.SliceStable(flat, func(a, b int) bool {
		if !flat[a].deliverAt.Equal(flat[b].deliverAt) {
			return flat[a].deliverAt.Before(flat[b].deliverAt)
		}
		if flat[a].session != flat[b].session {
			return flat[a].session < flat[b].session
		}
		return flat[a].index < flat[b].index
	})
	return flat
}

// Run executes one simulation and checks every invariant. It never
// fails the process on a violation — violations are data, returned for
// the caller (and the shrinker) to act on.
func Run(cfg Config) (*Result, error) {
	if cfg.Sessions == 0 {
		cfg.Sessions = 48
	}
	if cfg.Dir == "" {
		return nil, fmt.Errorf("simtest: Config.Dir is required")
	}
	dir, err := os.MkdirTemp(cfg.Dir, "run-")
	if err != nil {
		return nil, fmt.Errorf("simtest: scratch dir: %w", err)
	}

	uni, err := universeFor(cfg.Seed)
	if err != nil {
		return nil, err
	}
	sessions := generate(cfg, uni)
	flat := deliveries(sessions, cfg.Only)
	model := buildModel(sessions, cfg.Only, collectorMaxExposure)

	clk := simclock.NewVirtual(simBase)
	st := store.New()
	walPath := filepath.Join(dir, "sim.wal")
	walOpts := store.WALOptions{
		Policy:   store.SyncInterval,
		Interval: 5 * time.Second,
		Clock:    clk,
	}
	if cfg.GroupWAL {
		walOpts = store.WALOptions{Policy: store.SyncGroup, Clock: clk}
	}
	wal, err := store.OpenWAL(walPath, walOpts)
	if err != nil {
		return nil, err
	}
	defer wal.Close()
	st.AttachWAL(wal)

	// With tracing on, the collector gets a flight recorder and an
	// always-adopt tracer: the schedule already made the 1-in-N
	// sampling decision when it stamped (or withheld) trace context on
	// each session's payload, exactly like a real sending client.
	var rec *trace.Recorder
	var tracer *trace.Tracer
	if cfg.TraceSample > 0 {
		rec = trace.NewRecorder(4 * len(flat))
		tracer = trace.NewTracer(rec, 1)
	}

	coll, err := collector.New(collector.Config{
		Store:             st,
		Anonymizer:        ipmeta.NewAnonymizer([]byte("simtest")),
		KeepAliveInterval: -1,
		Clock:             clk,
		Logger:            discardLogger(),
		Tracer:            tracer,
	})
	if err != nil {
		return nil, err
	}

	traced := expectedTraces(sessions, cfg.Only, cfg.TraceSample)

	res := &Result{
		Sessions:   len(sessions),
		Deliveries: len(flat),
		Traced:     len(traced),
	}
	if cfg.WireMix {
		for _, seg := range flat {
			if binaryWire(seg) {
				res.BinaryDeliveries++
			}
		}
	}
	if cfg.Only != nil {
		res.Sessions = len(cfg.Only)
	}

	meta := audit.UniverseMetadata{Universe: uni}
	eng, err := streamaudit.New(streamaudit.Config{Store: st, Meta: meta})
	if err != nil {
		return nil, err
	}

	o := &oracle{
		model:     model,
		store:     st,
		walPath:   walPath,
		snapDir:   dir,
		auditMeta: meta,
		engine:    eng,
		rec:       rec,
		traced:    traced,
		attack:    cfg.Attack,
		disable:   cfg.DisableDetector,
		shards:    cfg.Shards,
	}

	if cfg.Workers > 1 {
		runConcurrent(cfg, flat, coll, o)
	} else {
		h := fnv.New64a()
		fmt.Fprintf(h, "schedule seed=%d sessions=%d only=%v breakdedup=%t tracesample=%d attack=%q disable=%q\n",
			cfg.Seed, cfg.Sessions, cfg.Only, cfg.BreakDedup, cfg.TraceSample,
			cfg.Attack, cfg.DisableDetector)
		runSerial(cfg, flat, coll, clk, o, h)
		digestStore(h, st)
		res.Digest = fmt.Sprintf("%016x", h.Sum64())
	}

	o.checkFinal()
	res.Violations = o.violations
	res.AdversarialFlags = o.advFlags
	return res, nil
}

// runSerial delivers the schedule one observation at a time on the
// virtual clock, folding every outcome into the trace digest and
// running the oracle's per-delivery and scheduled checks.
func runSerial(cfg Config, flat []segment, coll *collector.Collector,
	clk *simclock.Virtual, o *oracle, h io.Writer) {
	// Schedule snapshot-compactions and mid-run recovery checks at
	// seed-determined points, so durability is probed in the middle of
	// the workload, not just at the end.
	prng := stats.NewRNG(cfg.Seed).Fork("probes")
	snapAt, recoverAt := map[int]bool{}, map[int]bool{}
	if n := len(flat); n > 4 {
		snapAt[1+prng.Intn(n-2)] = true
		snapAt[1+prng.Intn(n-2)] = true
		recoverAt[1+prng.Intn(n-2)] = true
	}

	for di, seg := range flat {
		if d := seg.deliverAt.Sub(clk.Now()); d > 0 {
			clk.Advance(d)
		}
		obs := seg.obs
		if cfg.BreakDedup && seg.index > 0 {
			obs.Payload.Nonce = ""
		}
		id, err := deliver(cfg, coll, seg, obs)
		fmt.Fprintf(h, "deliver %d session=%d seg=%d id=%d err=%v\n",
			di, seg.session, seg.index, id, err)
		o.afterDelivery(seg, id, err)
		if snapAt[di] {
			o.snapshotCompact(di)
			o.checkStreamAudit("snapshot")
		}
		if recoverAt[di] {
			// Drain first so the recovery check's streaming replay
			// cross-comparison sees a caught-up live engine.
			o.checkStreamAudit("mid-run")
			o.checkRecovery("mid-run")
		}
	}
}

// runConcurrent partitions sessions across workers (a session's
// segments stay in order on one worker) and delivers them in parallel —
// the phase the -race sweep exercises. Only order-insensitive
// invariants apply afterwards; the digest is a serial-phase artifact.
// The streaming engine consumes the change feed in its goroutine-Run
// mode throughout, so the apply path races real writers under -race;
// the final checks still see it quiescent.
func runConcurrent(cfg Config, flat []segment, coll *collector.Collector, o *oracle) {
	ctx, cancel := context.WithCancel(context.Background())
	engDone := make(chan struct{})
	go func() {
		defer close(engDone)
		o.engine.Run(ctx)
	}()
	defer func() {
		o.engine.WaitCaughtUp(10 * time.Second)
		cancel()
		<-engDone
	}()

	lanes := make([][]segment, cfg.Workers)
	for _, seg := range flat {
		w := seg.session % cfg.Workers
		lanes[w] = append(lanes[w], seg)
	}
	var wg sync.WaitGroup
	for _, lane := range lanes {
		wg.Add(1)
		go func(lane []segment) {
			defer wg.Done()
			for _, seg := range lane {
				obs := seg.obs
				if cfg.BreakDedup && seg.index > 0 {
					obs.Payload.Nonce = ""
				}
				id, err := deliver(cfg, coll, seg, obs)
				o.afterDeliveryConcurrent(seg, id, err)
			}
		}(lane)
	}
	wg.Wait()
}

// deliver hands one observation to the collector over the session's
// wire: text sessions pass the decoded payload straight to Ingest (how
// every run delivered before wire mixing existed), binary sessions
// encode to wire bytes and let IngestBinary decode them back — the
// same codec path a real OpBinary beacon exercises. The payload is
// encoded after any BreakDedup mutation so both wires inject the same
// fault.
func deliver(cfg Config, coll *collector.Collector, seg segment, obs collector.Observation) (int64, error) {
	if cfg.WireMix && binaryWire(seg) {
		return coll.IngestBinary(obs.Payload.EncodeBinary(), obs.RemoteIP, obs.ConnectedAt, obs.Exposure)
	}
	return coll.Ingest(obs)
}

// binaryWire picks the session's wire by hashing its (pre-mutation)
// nonce — stable per session across segments, replays and runs, and
// independent of the schedule RNG so digests stay comparable to
// all-text runs.
func binaryWire(seg segment) bool {
	h := fnv.New32a()
	io.WriteString(h, seg.obs.Payload.Nonce)
	return h.Sum32()&1 == 1
}

// digestStore folds the final store content into the trace digest in
// insertion (ID) order.
func digestStore(h io.Writer, st *store.Store) {
	st.ForEach(func(im store.Impression) bool {
		fmt.Fprintf(h, "rec %d %s %s %s %s %d %d %d %t %.4f %s %s\n",
			im.ID, im.CampaignID, im.CreativeID, im.Publisher, im.Nonce,
			im.Exposure, im.MouseMoves, im.Clicks,
			im.VisibilityMeasured, im.MaxVisibleFraction,
			im.Timestamp.UTC().Format(time.RFC3339Nano), im.UserKey)
		return true
	})
}

// collectorMaxExposure mirrors the collector's default MaxExposure (the
// model must clamp segments exactly as Ingest does).
const collectorMaxExposure = 30 * time.Minute

func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelError + 1}))
}
