package simtest

import (
	"net/netip"
	"time"

	"adaudit/internal/adnet"
	"adaudit/internal/audit"
	"adaudit/internal/beacon"
	"adaudit/internal/collector"
	"adaudit/internal/publisher"
	"adaudit/internal/stats"
)

// The adversarial scenario pack (Config.Attack): four attacks from the
// display-fraud literature, each injected as labelled sessions so the
// oracle can hold the audit's detectors to exact precision and recall.
//
//   - spoof: a low-quality site's traffic is booked in the vendor
//     report under a premium domain, with the seller account betraying
//     the true origin — the ads.txt cross-check's target.
//   - pool: one seller account books inventory across publishers from
//     five unrelated owner groups — dark pooling.
//   - bot: a residential-proxy bot with clean ipmeta but a timer's
//     behavioral signature — fixed cadence, fixed exposure, fixed
//     visibility, zero conversions.
//   - inflate: a stacked/1-px placement — exposures comfortably past
//     the viewability threshold while almost no pixels ever show.
//
// Attack identities live in address/domain spaces the organic schedule
// never touches, so every detector flag traces to an injected session
// and the clean-run floor is exactly zero flags.
const (
	botPublisher       = "botfarm-cdn.example"
	inflatePublisher   = "stacked-ads.example"
	spoofTruePublisher = "mfa-lowquality.example"
	poolSellerID       = "pool-sim"

	botGap             = 30 * time.Second
	botExposure        = 75 * time.Second
	botVisibleFraction = 0.25 // 5/20: a fixed point of the wire codecs' grid

	inflateExposure        = 65 * time.Second
	inflateVisibleFraction = 0.05 // 1/20
)

// attackKindFor maps a session index to its adversarial role: every
// sixth session hosts one attack kind, leaving the rest of the
// schedule organic. Pure function of (attack, idx), so shrunk subsets
// keep their labels.
func attackKindFor(attack string, idx int) (scenario, bool) {
	if attack == "" {
		return 0, false
	}
	all := attack == "all"
	switch idx % 6 {
	case 0:
		if all || attack == "bot" {
			return scenarioBot, true
		}
	case 1:
		if all || attack == "inflate" {
			return scenarioInflate, true
		}
	case 2:
		if all || attack == "spoof" {
			return scenarioSpoof, true
		}
	case 3:
		if all || attack == "pool" {
			return scenarioPool, true
		}
	}
	return 0, false
}

// genAttackSession expands one adversarial session. Like genSession it
// is a pure function of (cfg, idx, the session's forked RNG, uni);
// the bot draws nothing from the RNG at all — its whole point is
// determinism.
func genAttackSession(cfg Config, s simSession, kind scenario, rng *stats.RNG, uni *publisher.Universe) simSession {
	s.kind = kind
	k := s.idx / 6 // ordinal within the attack kind

	var (
		campaignID string
		pub        string
		ua         string
		ip         netip.Addr
		exposure   time.Duration
		events     []beacon.Event
		connected  time.Time
	)
	switch kind {
	case scenarioBot:
		// One fixed identity across every bot session: same IP, same
		// agent — the store joins them into one user on an exact 30 s
		// timer with a frozen exposure/visibility signature.
		campaignID = "sim-football"
		pub = botPublisher
		ua = simAgents[0]
		ip = netip.AddrFrom4([4]byte{10, 250, 0, 1})
		exposure = botExposure
		events = []beacon.Event{{Kind: beacon.EventVisibility,
			At: 5 * time.Second, Fraction: botVisibleFraction}}
		connected = simBase.Add(time.Duration(k) * botGap)
	case scenarioInflate:
		// Distinct one-impression users, one stacked placement: long
		// exposures, 1-px fractions.
		campaignID = "sim-news"
		pub = inflatePublisher
		ua = simAgents[rng.Intn(len(simAgents))]
		ip = netip.AddrFrom4([4]byte{10, 251, byte(rng.Intn(250)), byte(1 + rng.Intn(250))})
		exposure = inflateExposure
		events = []beacon.Event{{Kind: beacon.EventVisibility,
			At: 3 * time.Second, Fraction: inflateVisibleFraction}}
		connected = simBase.Add(time.Duration(s.idx)*time.Second +
			time.Duration(rng.Intn(1000))*time.Millisecond)
	case scenarioSpoof:
		// The beacon sees the true low-quality page; the report books
		// it under a premium domain with the spoofer's own direct
		// seller account.
		campaignID = "sim-research"
		pub = spoofTruePublisher
		s.reportedPublisher = premiumDomain(uni)
		s.sellerID = adnet.DirectSellerID(spoofTruePublisher)
		ua = simAgents[rng.Intn(len(simAgents))]
		ip = netip.AddrFrom4([4]byte{10, 252, byte(rng.Intn(250)), byte(1 + rng.Intn(250))})
		exposure = time.Duration(5+rng.Intn(60)) * time.Second
		events = genEvents(rng)
		connected = simBase.Add(time.Duration(s.idx)*time.Second +
			time.Duration(rng.Intn(1000))*time.Millisecond)
	case scenarioPool:
		// Real pages from five unrelated owner groups, all booked under
		// one pooled seller account.
		campaignID = "sim-news"
		pubs := poolPublishers(uni)
		pub = pubs[k%len(pubs)]
		s.sellerID = poolSellerID
		ua = simAgents[rng.Intn(len(simAgents))]
		ip = netip.AddrFrom4([4]byte{10, 253, byte(rng.Intn(250)), byte(1 + rng.Intn(250))})
		exposure = time.Duration(5+rng.Intn(60)) * time.Second
		events = genEvents(rng)
		connected = simBase.Add(time.Duration(s.idx)*time.Second +
			time.Duration(rng.Intn(1000))*time.Millisecond)
	}

	payload := beacon.Payload{
		CampaignID: campaignID,
		CreativeID: "cr1",
		PageURL:    "http://www." + pub + "/ad-slot",
		UserAgent:  ua,
		Nonce:      s.nonce,
		Events:     events,
	}
	if cfg.TraceSample > 0 && s.idx%cfg.TraceSample == 0 {
		payload.TraceID = traceIDFor(s.nonce)
		payload.TraceSent = connected.UnixNano()
	}
	s.segments = []segment{{
		session: s.idx,
		index:   0,
		obs: collector.Observation{
			Payload:     payload,
			RemoteIP:    ip,
			ConnectedAt: connected,
			Exposure:    exposure,
		},
		deliverAt: connected.Add(exposure + 2*time.Second),
	}}
	return s
}

// premiumDomain returns the universe's best-ranked publisher — the
// spoofing target. Pure function of the universe (which depends only
// on the seed).
func premiumDomain(uni *publisher.Universe) string {
	best := uni.At(0)
	for i := 1; i < uni.Len(); i++ {
		if p := uni.At(i); p.Rank < best.Rank {
			best = p
		}
	}
	return best.Domain
}

// poolPublishers returns five universe domains from five distinct
// owner groups, in universe order — the pooled seller's footprint.
func poolPublishers(uni *publisher.Universe) []string {
	seen := map[string]bool{}
	var out []string
	for i := 0; i < uni.Len() && len(out) < 5; i++ {
		d := uni.At(i).Domain
		if g := adnet.OwnerGroupOf(d); !seen[g] {
			seen[g] = true
			out = append(out, d)
		}
	}
	return out
}

// checkAdversarial holds the audit's adversarial detectors to the
// schedule's ground-truth labels: every injected attack is flagged
// (recall) and nothing else is (precision) — so a clean schedule must
// produce exactly zero adversarial flags. Config.DisableDetector
// blanks one dimension first, simulating a regressed detector; with an
// attack injected the recall side must then fail, which is the
// executable proof this invariant has teeth.
func (o *oracle) checkAdversarial() {
	aud, err := audit.New(o.store, o.auditMeta)
	if err != nil {
		o.violate("adversarial: constructing auditor: %v", err)
		return
	}
	rep, err := aud.FullAuditSerial(o.auditInputs())
	if err != nil {
		o.violate("adversarial: audit failed: %v", err)
		return
	}
	for i := range rep.PerCampaign {
		ca := &rep.PerCampaign[i]
		switch o.disable {
		case "sellers":
			ca.Sellers = audit.SellerAuditResult{CampaignID: ca.ID}
		case "pooling":
			ca.Pooling = audit.PoolingResult{CampaignID: ca.ID, GroupLimit: audit.DefaultMaxGroupSpan}
		case "behavior":
			ca.Behavior = audit.BehaviorResult{CampaignID: ca.ID}
		}
		o.checkAdversarialCampaign(ca)
		o.advFlags += len(ca.Sellers.UnauthorizedPairs) + len(ca.Pooling.PooledSellers) +
			len(ca.Behavior.BotUsers) + len(ca.Behavior.InflatedPublishers)
	}
}

func (o *oracle) checkAdversarialCampaign(ca *audit.CampaignAudit) {
	type pair struct{ pub, seller string }
	// Ground truth from the labelled model. Spoofed and pooled rows are
	// both undeclared attributions, so the seller cross-check must flag
	// their union; the pooling detector additionally isolates the
	// pooled account by its owner-group span.
	unauthExp := map[pair]int64{}
	poolPubs, poolGroups := map[string]bool{}, map[string]bool{}
	var poolImps int64
	botRecs := map[string][]*modelRecord{}
	type inflStat struct {
		imps, measured, viewable int
		fracSum                  float64
	}
	inflExp := map[string]*inflStat{}
	for _, rec := range o.model {
		if rec.campaignID != ca.ID {
			continue
		}
		switch rec.attack {
		case scenarioSpoof:
			unauthExp[pair{rec.reportedPublisher, rec.sellerID}]++
		case scenarioPool:
			unauthExp[pair{rec.reportedPublisher, rec.sellerID}]++
			poolPubs[rec.reportedPublisher] = true
			poolGroups[adnet.OwnerGroupOf(rec.reportedPublisher)] = true
			poolImps++
		case scenarioBot:
			botRecs[rec.userKey] = append(botRecs[rec.userKey], rec)
		case scenarioInflate:
			st := inflExp[rec.publisher]
			if st == nil {
				st = &inflStat{}
				inflExp[rec.publisher] = st
			}
			st.imps++
			if rec.visMeasured {
				st.measured++
				st.fracSum += rec.maxVis
			}
			if rec.exposure >= audit.ViewabilityThreshold {
				st.viewable++
			}
		}
	}

	// Seller cross-check: the unauthorized set is exactly the injected
	// (spoofed + pooled) attributions, impression for impression.
	if ca.Sellers.UnattributedRows != 0 {
		o.violate("adversarial sellers %s: %d unattributed rows; every synthesized row carries a seller",
			ca.ID, ca.Sellers.UnattributedRows)
	}
	gotPairs := map[pair]int64{}
	for _, p := range ca.Sellers.UnauthorizedPairs {
		gotPairs[pair{p.Publisher, p.SellerID}] = p.Impressions
	}
	var wantUnauth int64
	for k, n := range unauthExp {
		wantUnauth += n
		if got := gotPairs[k]; got != n {
			o.violate("adversarial sellers %s: injected attribution (%s, %s) flagged with %d impressions, want %d",
				ca.ID, k.pub, k.seller, got, n)
		}
		delete(gotPairs, k)
	}
	for k := range gotPairs {
		o.violate("adversarial sellers %s: honest attribution (%s, %s) flagged as unauthorized",
			ca.ID, k.pub, k.seller)
	}
	if ca.Sellers.UnauthorizedImpressions != wantUnauth {
		o.violate("adversarial sellers %s: %d unauthorized impressions, injected %d",
			ca.ID, ca.Sellers.UnauthorizedImpressions, wantUnauth)
	}

	// Pooling: the pooled account is flagged exactly when its injected
	// footprint spans more than K groups, and nothing else ever is.
	wantPool := len(poolGroups) > audit.DefaultMaxGroupSpan
	found := false
	for _, ps := range ca.Pooling.PooledSellers {
		if ps.SellerID != poolSellerID {
			o.violate("adversarial pooling %s: seller %s flagged; only %s was injected",
				ca.ID, ps.SellerID, poolSellerID)
			continue
		}
		found = true
		if !wantPool {
			o.violate("adversarial pooling %s: %s flagged but its injected span is only %d groups (limit %d)",
				ca.ID, poolSellerID, len(poolGroups), audit.DefaultMaxGroupSpan)
			continue
		}
		if ps.OwnerGroups != len(poolGroups) || ps.Publishers != len(poolPubs) || ps.Impressions != poolImps {
			o.violate("adversarial pooling %s: %s footprint (%d groups, %d pubs, %d imps), injected (%d, %d, %d)",
				ca.ID, poolSellerID, ps.OwnerGroups, ps.Publishers, ps.Impressions,
				len(poolGroups), len(poolPubs), poolImps)
		}
	}
	if wantPool && !found {
		o.violate("adversarial pooling %s: injected pooled seller %s (spanning %d groups) not flagged",
			ca.ID, poolSellerID, len(poolGroups))
	}

	// Behavior, bot side: predicted flags recomputed from the model's
	// labelled records — under shrinking a bot subset can legitimately
	// fall below the impression floor or lose its exact cadence, and
	// the prediction tracks that.
	expBots := map[string]int{}
	for user, recs := range botRecs {
		if len(recs) < audit.BehaviorMinImpressions {
			continue
		}
		if !modelDegenerate(recs) {
			continue
		}
		ts := make([]time.Time, len(recs))
		for i, r := range recs {
			ts[i] = r.timestamp
		}
		if cv := audit.CadenceCV(ts); !(cv <= audit.BehaviorMaxCadenceCV) {
			continue
		}
		expBots[user] = len(recs)
	}
	gotBots := map[string]int{}
	for _, u := range ca.Behavior.BotUsers {
		gotBots[u.UserKey] = u.Impressions
	}
	for user, n := range expBots {
		if got := gotBots[user]; got != n {
			o.violate("adversarial behavior %s: injected bot %s flagged with %d impressions, want %d",
				ca.ID, user, got, n)
		}
		delete(gotBots, user)
	}
	for user := range gotBots {
		o.violate("adversarial behavior %s: organic user %s flagged as bot", ca.ID, user)
	}

	// Behavior, inflation side: same treatment for the stacked
	// placement.
	expInfl := map[string]int{}
	for pub, st := range inflExp {
		if st.measured < audit.InflationMinMeasured {
			continue
		}
		mean := st.fracSum / float64(st.measured)
		vshare := float64(st.viewable) / float64(st.imps)
		if mean <= audit.InflationMaxMeanFraction && vshare >= audit.InflationMinViewableShare {
			expInfl[pub] = st.imps
		}
	}
	gotInfl := map[string]int{}
	for _, p := range ca.Behavior.InflatedPublishers {
		gotInfl[p.Publisher] = p.Impressions
	}
	for pub, n := range expInfl {
		if got := gotInfl[pub]; got != n {
			o.violate("adversarial behavior %s: injected stacked placement %s flagged with %d impressions, want %d",
				ca.ID, pub, got, n)
		}
		delete(gotInfl, pub)
	}
	for pub := range gotInfl {
		o.violate("adversarial behavior %s: organic publisher %s flagged as inflated", ca.ID, pub)
	}
}

// modelDegenerate mirrors the detector's no-variance test over model
// records: exposure range within epsilon and, among
// visibility-measured records, visible-fraction range within epsilon.
func modelDegenerate(recs []*modelRecord) bool {
	minE, maxE := recs[0].exposure, recs[0].exposure
	var minF, maxF float64
	measured := false
	for _, r := range recs {
		if r.exposure < minE {
			minE = r.exposure
		}
		if r.exposure > maxE {
			maxE = r.exposure
		}
		if r.visMeasured {
			if !measured {
				minF, maxF = r.maxVis, r.maxVis
				measured = true
			} else {
				if r.maxVis < minF {
					minF = r.maxVis
				}
				if r.maxVis > maxF {
					maxF = r.maxVis
				}
			}
		}
	}
	if (maxE - minE).Seconds() > audit.BehaviorDegenerateEps {
		return false
	}
	if measured && maxF-minF > audit.BehaviorDegenerateEps {
		return false
	}
	return true
}
