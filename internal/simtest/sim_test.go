package simtest

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"
)

// The harness flags make any failure a one-line reproducer:
//
//	go test ./internal/simtest -run TestSim -seed=<n> [-only=3,17]
var (
	flagSeed = flag.Int64("seed", -1,
		"run exactly this schedule seed instead of the sweep")
	flagSeeds = flag.Int("seeds", 6,
		"number of seeds the sweep explores when -seed is not set")
	flagSessions = flag.Int("sessions", 48,
		"beacon sessions per schedule")
	flagOnly = flag.String("only", "",
		"comma-separated session indices to deliver (a shrunk reproducer)")
	flagDigestOut = flag.String("digest-out", "",
		"write 'seed digest' lines here (the determinism gate diffs two runs)")
)

func parseOnly(t *testing.T, s string) []int {
	if s == "" {
		return nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			t.Fatalf("bad -only element %q: %v", part, err)
		}
		out = append(out, n)
	}
	return out
}

// runSeed executes the serial (digest-producing) phase and the
// 4-worker concurrent phase for one seed, reporting any violation with
// its minimal reproducer.
func runSeed(t *testing.T, seed int64, only []int) string {
	t.Helper()
	cfg := Config{
		Seed:     seed,
		Sessions: *flagSessions,
		Only:     only,
		Dir:      t.TempDir(),
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	if res.Failed() {
		reportFailure(t, cfg, res)
		return res.Digest
	}

	conc := cfg
	conc.Workers = 4
	cres, err := Run(conc)
	if err != nil {
		t.Fatalf("seed %d (concurrent): %v", seed, err)
	}
	if cres.Failed() {
		t.Errorf("seed %d: concurrent phase violated invariants:\n  %s",
			seed, strings.Join(cres.Violations, "\n  "))
	}
	return res.Digest
}

// reportFailure shrinks the failing schedule and prints the one-line
// reproducer alongside the violations.
func reportFailure(t *testing.T, cfg Config, res *Result) {
	t.Helper()
	min, minRes, err := Shrink(cfg)
	if err != nil {
		t.Errorf("seed %d failed and shrinking errored: %v\noriginal violations:\n  %s",
			cfg.Seed, err, strings.Join(res.Violations, "\n  "))
		return
	}
	onlyList := make([]string, len(min))
	for i, s := range min {
		onlyList[i] = strconv.Itoa(s)
	}
	t.Errorf("seed %d violated invariants; minimal reproducer:\n"+
		"  go test ./internal/simtest -run TestSim -seed=%d -only=%s\n"+
		"shrunk to %d session(s), violations:\n  %s",
		cfg.Seed, cfg.Seed, strings.Join(onlyList, ","),
		len(min), strings.Join(minRes.Violations, "\n  "))
}

// TestSim is the simulation sweep: N seeded schedules through the full
// ingest → store → audit pipeline with the oracle watching. With -seed
// it replays one schedule (optionally filtered by -only) — the
// reproducer mode a failure report names.
func TestSim(t *testing.T) {
	if *flagSeed >= 0 {
		digest := runSeed(t, *flagSeed, parseOnly(t, *flagOnly))
		t.Logf("seed %d digest %s", *flagSeed, digest)
		return
	}
	var digests []string
	for seed := int64(1); seed <= int64(*flagSeeds); seed++ {
		digest := runSeed(t, seed, nil)
		digests = append(digests, fmt.Sprintf("%d %s\n", seed, digest))
	}
	if *flagDigestOut != "" {
		if err := os.WriteFile(*flagDigestOut, []byte(strings.Join(digests, "")), 0o644); err != nil {
			t.Fatalf("writing -digest-out: %v", err)
		}
	}
}

// TestSimDeterminism replays one seed twice and demands identical trace
// digests — the property that makes every reproducer trustworthy.
func TestSimDeterminism(t *testing.T) {
	cfg := Config{Seed: 7, Sessions: *flagSessions, Dir: t.TempDir()}
	first, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.Digest != second.Digest {
		t.Fatalf("same seed, different digests: %s vs %s", first.Digest, second.Digest)
	}
	if first.Failed() {
		reportFailure(t, cfg, first)
	}
}

// TestSimTracePropagation runs the schedule with every other session
// carrying wire trace context and holds the pipeline to the trace
// invariant: each traced session's flight-recorder trace is complete
// through the stream-apply stage (or explicitly truncated) and no
// orphan spans remain — across reconnects, duplicate replays and
// reordered segments, in both the serial phase and the concurrent
// phase the -race sweep exercises.
func TestSimTracePropagation(t *testing.T) {
	for _, workers := range []int{0, 4} {
		cfg := Config{
			Seed:        5,
			Sessions:    *flagSessions,
			Workers:     workers,
			Dir:         t.TempDir(),
			TraceSample: 2,
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Traced == 0 {
			t.Fatalf("workers=%d: schedule stamped no trace context", workers)
		}
		if res.Failed() {
			t.Errorf("workers=%d: trace run violated invariants (%d traced sessions):\n  %s",
				workers, res.Traced, strings.Join(res.Violations, "\n  "))
		}
	}
}

// TestOracleCatchesDedupRegression re-breaks the nonce-dedup path (the
// sim strips nonces from continuation segments, exactly what a
// regressed collector cache would effect) and requires the oracle to
// flag it AND the shrinker to reduce the failure to a single session —
// the executable proof that the harness detects the bug class it was
// built for.
func TestOracleCatchesDedupRegression(t *testing.T) {
	cfg := Config{
		Seed:       11,
		Sessions:   24,
		Dir:        t.TempDir(),
		BreakDedup: true,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed() {
		t.Fatal("oracle missed the injected dedup regression")
	}

	min, minRes, err := Shrink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(min) != 1 {
		t.Fatalf("shrinker left %d sessions (%v), want 1", len(min), min)
	}
	if !minRes.Failed() {
		t.Fatal("shrunk reproducer no longer fails")
	}
	t.Logf("dedup regression shrunk to session %v; violations:\n  %s",
		min, strings.Join(minRes.Violations, "\n  "))

	// The identical subset with dedup intact must pass: the violation
	// is the injected bug, not harness noise.
	clean := cfg
	clean.BreakDedup = false
	clean.Only = min
	cres, err := Run(clean)
	if err != nil {
		t.Fatal(err)
	}
	if cres.Failed() {
		t.Fatalf("minimal subset fails even without the injected bug:\n  %s",
			strings.Join(cres.Violations, "\n  "))
	}
}

// TestSimWireMix sweeps schedules with roughly half the sessions
// delivered as binary wire frames and demands the digest be
// byte-identical to the all-text run of the same seed — the end-to-end
// proof that the binary codec is observationally equivalent to text,
// through dedup, merges, duplicate replays, WAL recovery probes and
// the full oracle. The concurrent phase then races mixed wires under
// the order-insensitive invariants.
func TestSimWireMix(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		base := Config{Seed: seed, Sessions: *flagSessions, Dir: t.TempDir()}
		text, err := Run(base)
		if err != nil {
			t.Fatalf("seed %d text: %v", seed, err)
		}
		if text.Failed() {
			reportFailure(t, base, text)
			continue
		}
		mixed := base
		mixed.WireMix = true
		mres, err := Run(mixed)
		if err != nil {
			t.Fatalf("seed %d mixed: %v", seed, err)
		}
		if mres.Failed() {
			t.Errorf("seed %d: wire-mix run violated invariants:\n  %s",
				seed, strings.Join(mres.Violations, "\n  "))
		}
		if mres.Digest != text.Digest {
			t.Errorf("seed %d: wire-mix digest %s != all-text digest %s (binary codec not equivalent)",
				seed, mres.Digest, text.Digest)
		}
		if mres.BinaryDeliveries == 0 || mres.BinaryDeliveries == mres.Deliveries {
			t.Errorf("seed %d: degenerate wire mix (%d/%d binary) — equality proves nothing",
				seed, mres.BinaryDeliveries, mres.Deliveries)
		}
		conc := mixed
		conc.Workers = 4
		cres, err := Run(conc)
		if err != nil {
			t.Fatalf("seed %d mixed concurrent: %v", seed, err)
		}
		if cres.Failed() {
			t.Errorf("seed %d: concurrent wire-mix violated invariants:\n  %s",
				seed, strings.Join(cres.Violations, "\n  "))
		}
	}
}

// TestSimGroupWAL runs the schedule with the journal under the
// group-commit fsync policy: the mid-run recovery probes and the final
// WAL-replay-equals-live-store invariant then hold against batched
// fsyncs, and the digest must match the interval-policy run — the
// sync policy may never change what is journaled, only when it hits
// the disk. Wire mixing rides along so group commit also sees the
// binary ingest path.
func TestSimGroupWAL(t *testing.T) {
	for seed := int64(1); seed <= 2; seed++ {
		base := Config{Seed: seed, Sessions: *flagSessions, Dir: t.TempDir()}
		ref, err := Run(base)
		if err != nil {
			t.Fatalf("seed %d baseline: %v", seed, err)
		}
		grp := base
		grp.GroupWAL = true
		grp.WireMix = true
		gres, err := Run(grp)
		if err != nil {
			t.Fatalf("seed %d group: %v", seed, err)
		}
		if gres.Failed() {
			t.Errorf("seed %d: group-WAL run violated invariants:\n  %s",
				seed, strings.Join(gres.Violations, "\n  "))
		}
		if gres.Digest != ref.Digest {
			t.Errorf("seed %d: group-WAL digest %s != baseline %s (sync policy changed journal content)",
				seed, gres.Digest, ref.Digest)
		}
		conc := grp
		conc.Workers = 4
		cres, err := Run(conc)
		if err != nil {
			t.Fatalf("seed %d group concurrent: %v", seed, err)
		}
		if cres.Failed() {
			t.Errorf("seed %d: concurrent group-WAL violated invariants:\n  %s",
				seed, strings.Join(cres.Violations, "\n  "))
		}
	}
}
