package simtest

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"adaudit/internal/beacon"
	"adaudit/internal/collector"
	"adaudit/internal/faultnet"
	"adaudit/internal/ipmeta"
	"adaudit/internal/stats"
	"adaudit/internal/store"
)

// TestSimWire is the wire-level phase of the harness: where TestSim
// drives the ingest funnel directly on a virtual clock, this phase
// explores seeded chaos schedules over real sockets — each seed
// configures a different faultnet mix (mid-exposure kills, write
// resets, truncated frames) and a beacon fleet that reports through the
// proxy with retries. Real time makes byte-level determinism
// impossible, so the oracle relaxes to the order-insensitive
// invariants: an acknowledged report is present exactly once after WAL
// recovery (zero-loss + nonce no-duplication), and the recovered store
// equals the drained live store.
func TestSimWire(t *testing.T) {
	if testing.Short() {
		t.Skip("wire phase needs real time for kills and reconnects")
	}
	for _, seed := range []int64{1, 2, 3} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runWireSchedule(t, seed)
		})
	}
}

func runWireSchedule(t *testing.T, seed int64) {
	rng := stats.NewRNG(seed).Fork("wire")

	walPath := filepath.Join(t.TempDir(), "wire.wal")
	wal, err := store.OpenWAL(walPath, store.WALOptions{Policy: store.SyncOS})
	if err != nil {
		t.Fatal(err)
	}
	st := store.New()
	st.AttachWAL(wal)
	c, err := collector.New(collector.Config{
		Store:      st,
		Anonymizer: ipmeta.NewAnonymizer([]byte("simwire")),
		// Fast keepalive so proxy-severed sessions commit promptly.
		KeepAliveInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := collector.NewServer(c, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan struct{})
	go func() {
		defer close(served)
		_ = srv.Serve(ctx)
	}()

	// Each seed picks a different point in fault space.
	plan := &faultnet.Plan{
		Seed:             seed,
		KillAfter:        time.Duration(40+rng.Intn(60)) * time.Millisecond,
		KillJitter:       time.Duration(60+rng.Intn(120)) * time.Millisecond,
		ResetWriteProb:   0.01 * float64(rng.Intn(4)),
		TruncateProb:     0.01 * float64(rng.Intn(3)),
		PartialWriteProb: 0.05 * float64(rng.Intn(3)),
	}
	proxy, err := faultnet.NewProxy("127.0.0.1:0", srv.Addr().String(), plan)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	proxyURL := fmt.Sprintf("ws://%s/beacon", proxy.Addr())

	const fleet = 16
	type outcome struct {
		nonce string
		acked bool
	}
	outcomes := make([]outcome, fleet)
	var wg sync.WaitGroup
	for i := 0; i < fleet; i++ {
		exposure := time.Duration(120+rng.Intn(120)) * time.Millisecond
		wg.Add(1)
		go func(i int, exposure time.Duration) {
			defer wg.Done()
			cl := &beacon.Client{
				CollectorURL:    proxyURL,
				MaxAttempts:     10,
				RetryBackoff:    5 * time.Millisecond,
				RetryBackoffMax: 40 * time.Millisecond,
			}
			p := beacon.Payload{
				CampaignID: "sim-wire",
				CreativeID: fmt.Sprintf("cr-%d", i),
				PageURL:    fmt.Sprintf("http://pub%d.es/page", i%4),
				UserAgent:  "Mozilla/5.0 SimWire",
				Nonce:      fmt.Sprintf("wire-%d-%04d", seed, i),
				Events: []beacon.Event{
					{Kind: beacon.EventMouseMove, At: 30 * time.Millisecond},
				},
			}
			rctx, rcancel := context.WithTimeout(context.Background(), 15*time.Second)
			defer rcancel()
			err := cl.Report(rctx, p, exposure)
			outcomes[i] = outcome{nonce: p.Nonce, acked: err == nil}
		}(i, exposure)
	}
	wg.Wait()

	_, kills, _, _ := plan.Stats()
	acked := 0
	for _, o := range outcomes {
		if o.acked {
			acked++
		}
	}
	t.Logf("wire seed %d: %d/%d acked, kills=%d", seed, acked, fleet, kills)
	if acked == 0 {
		t.Fatal("no beacon ever got through; schedule too violent to test the invariant")
	}

	// Drain every in-flight session, crash, recover from the journal.
	cancel()
	select {
	case <-served:
	case <-time.After(10 * time.Second):
		t.Fatal("server did not drain")
	}
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}
	rec, _, err := store.RecoverWAL(walPath, nil, discardLogger())
	if err != nil {
		t.Fatal(err)
	}

	byNonce := map[string]int{}
	rec.ForEach(func(im store.Impression) bool {
		if im.Nonce != "" {
			byNonce[im.Nonce]++
		}
		if im.Exposure < 0 {
			t.Errorf("recovered record %d has negative exposure %v", im.ID, im.Exposure)
		}
		return true
	})
	for i, o := range outcomes {
		n := byNonce[o.nonce]
		if o.acked && n == 0 {
			t.Errorf("beacon %d acked but absent after recovery (zero-loss violated)", i)
		}
		if n > 1 {
			t.Errorf("nonce of beacon %d appears %d times (no-duplication violated)", i, n)
		}
	}
	liveRecs, recRecs := dumpStore(st), dumpStore(rec)
	if len(liveRecs) != len(recRecs) {
		t.Fatalf("recovered %d records, live store held %d", len(recRecs), len(liveRecs))
	}
	for i := range liveRecs {
		if !impressionEqual(liveRecs[i], recRecs[i]) {
			t.Errorf("record %d diverges after recovery", liveRecs[i].ID)
		}
	}
}
