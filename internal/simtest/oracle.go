package simtest

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"time"

	"adaudit/internal/adnet"
	"adaudit/internal/audit"
	"adaudit/internal/beacon"
	"adaudit/internal/collector"
	"adaudit/internal/ipmeta"
	"adaudit/internal/shardmerge"
	"adaudit/internal/store"
	"adaudit/internal/streamaudit"
	"adaudit/internal/trace"
)

// modelRecord is the oracle's prediction of one store record: what the
// collector must have committed for a session after all its segments
// were delivered, under the documented semantics — first delivered
// segment creates the record, continuations under the same nonce merge
// into it (exposure summed, interaction counts added, visibility OR'd,
// max fraction maxed), each segment's exposure clamped to the
// collector's cap first.
type modelRecord struct {
	session     int
	campaignID  string
	creativeID  string
	publisher   string
	pageURL     string
	userAgent   string
	nonce       string
	timestamp   time.Time
	exposure    time.Duration
	moves       int
	clicks      int
	visMeasured bool
	maxVis      float64
	pseudonym   string
	userKey     string

	// Adversarial ground truth: the scenario label (scenarioClean for
	// honest sessions) plus the (publisher, seller) pair the vendor
	// report books this impression under.
	attack            scenario
	reportedPublisher string
	sellerID          string
}

// buildModel predicts the final store from the schedule alone. It is a
// pure function of the (filtered) schedule — independent of delivery
// interleaving across sessions, which is what lets the concurrent phase
// check it too.
func buildModel(sessions []simSession, only []int, maxExposure time.Duration) map[string]*modelRecord {
	include := map[int]bool{}
	for _, i := range only {
		include[i] = true
	}
	// The oracle derives pseudonyms with its own anonymizer keyed
	// identically to the collector's: agreement here proves the
	// enrichment path is a pure function of (key, IP).
	anon := ipmeta.NewAnonymizer([]byte("simtest"))

	model := make(map[string]*modelRecord)
	for _, s := range sessions {
		if only != nil && !include[s.idx] {
			continue
		}
		for _, seg := range s.segments {
			exp := seg.obs.Exposure
			if exp < 0 {
				exp = 0
			}
			if exp > maxExposure {
				exp = maxExposure
			}
			moves, clicks := 0, 0
			visMeasured, maxVis := false, 0.0
			for _, e := range seg.obs.Payload.Events {
				switch e.Kind {
				case beacon.EventMouseMove:
					moves++
				case beacon.EventClick:
					clicks++
				case beacon.EventVisibility:
					visMeasured = true
					if e.Fraction > maxVis {
						maxVis = e.Fraction
					}
				}
			}
			rec, seen := model[s.nonce]
			if !seen {
				pub, err := seg.obs.Payload.Publisher()
				if err != nil {
					// Schedules only generate parseable pages; a bad one
					// is a harness bug and will surface as a count
					// mismatch.
					continue
				}
				pseud := anon.Pseudonym(seg.obs.RemoteIP)
				attack := scenarioClean
				switch s.kind {
				case scenarioBot, scenarioInflate, scenarioSpoof, scenarioPool:
					attack = s.kind
				}
				reported, seller := s.reportedPublisher, s.sellerID
				if reported == "" {
					reported = pub
				}
				if seller == "" {
					seller = adnet.DirectSellerID(pub)
				}
				model[s.nonce] = &modelRecord{
					session:           s.idx,
					campaignID:        seg.obs.Payload.CampaignID,
					creativeID:        seg.obs.Payload.CreativeID,
					publisher:         pub,
					pageURL:           seg.obs.Payload.PageURL,
					userAgent:         seg.obs.Payload.UserAgent,
					nonce:             s.nonce,
					timestamp:         seg.obs.ConnectedAt,
					exposure:          exp,
					moves:             moves,
					clicks:            clicks,
					visMeasured:       visMeasured,
					maxVis:            maxVis,
					pseudonym:         pseud,
					userKey:           collector.UserKey(pseud, seg.obs.Payload.UserAgent),
					attack:            attack,
					reportedPublisher: reported,
					sellerID:          seller,
				}
				continue
			}
			rec.exposure += exp
			rec.moves += moves
			rec.clicks += clicks
			rec.visMeasured = rec.visMeasured || visMeasured
			if maxVis > rec.maxVis {
				rec.maxVis = maxVis
			}
		}
	}
	return model
}

// oracle accumulates invariant checks over one run.
type oracle struct {
	mu         sync.Mutex
	model      map[string]*modelRecord
	store      *store.Store
	walPath    string
	snapDir    string
	lastSnap   string
	violations []string

	lastExposure map[int64]time.Duration
	auditMeta    audit.MetadataSource

	// engine is the streaming-audit consumer riding the run's change
	// feed; checkStreamAudit compares it against the batch audit at
	// every checkpoint.
	engine *streamaudit.Engine

	// rec is the collector's flight recorder and traced the predicted
	// trace set, both nil unless Config.TraceSample was set;
	// checkTraces holds them to the completeness invariant.
	rec    *trace.Recorder
	traced map[trace.ID]*simSession

	// attack and disable mirror Config; advFlags counts the entities
	// the adversarial detectors flagged in the final audit.
	attack   string
	disable  string
	advFlags int

	// shards mirrors Config.Shards; checkShardMerge holds the sharded
	// topology's merge layer to the batch audit post hoc.
	shards int
}

func (o *oracle) violate(format string, args ...any) {
	o.violations = append(o.violations, fmt.Sprintf(format, args...))
}

// afterDelivery checks the per-delivery invariants on the serial phase:
// every valid observation ingests, and a record's exposure clock only
// moves forward.
func (o *oracle) afterDelivery(seg segment, id int64, err error) {
	if err != nil {
		o.violate("session %d segment %d: ingest failed: %v", seg.session, seg.index, err)
		return
	}
	im, ok := o.store.Get(id)
	if !ok {
		o.violate("session %d segment %d: ingested id %d not in store", seg.session, seg.index, id)
		return
	}
	if o.lastExposure == nil {
		o.lastExposure = make(map[int64]time.Duration)
	}
	if prev, seen := o.lastExposure[id]; seen && im.Exposure < prev {
		o.violate("session %d segment %d: exposure clock ran backwards on id %d: %v -> %v",
			seg.session, seg.index, id, prev, im.Exposure)
	}
	o.lastExposure[id] = im.Exposure
}

// afterDeliveryConcurrent is the lock-guarded variant for the
// multi-worker phase.
func (o *oracle) afterDeliveryConcurrent(seg segment, id int64, err error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.afterDelivery(seg, id, err)
}

// snapshotCompact publishes a snapshot and resets the WAL mid-run —
// the durability path a long-running collector exercises — so the
// recovery invariant is checked across the snapshot boundary too.
func (o *oracle) snapshotCompact(di int) {
	path := filepath.Join(o.snapDir, fmt.Sprintf("snap-%d.json", di))
	err := o.store.SnapshotCompact(func(write func(io.Writer) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	})
	if err != nil {
		o.violate("snapshot-compact at delivery %d failed: %v", di, err)
		return
	}
	o.lastSnap = path
}

// checkRecovery replays the WAL over the latest snapshot and demands
// the reconstruction equal the live store record for record — the
// crash-safety invariant, checkable mid-run because appends write
// whole lines and replay tolerates the open journal.
func (o *oracle) checkRecovery(stage string) {
	var base *store.Store
	if o.lastSnap != "" {
		f, err := os.Open(o.lastSnap)
		if err != nil {
			o.violate("%s recovery: opening snapshot: %v", stage, err)
			return
		}
		base, err = store.ReadSnapshot(f)
		f.Close()
		if err != nil {
			o.violate("%s recovery: reading snapshot: %v", stage, err)
			return
		}
	}
	rec, _, err := store.RecoverWAL(o.walPath, base, discardLogger())
	if err != nil {
		o.violate("%s recovery: replaying wal: %v", stage, err)
		return
	}
	live, replayed := dumpStore(o.store), dumpStore(rec)
	if len(live) != len(replayed) {
		o.violate("%s recovery: replay has %d records, live store has %d",
			stage, len(replayed), len(live))
		return
	}
	for i := range live {
		if !impressionEqual(live[i], replayed[i]) {
			o.violate("%s recovery: record %d diverges: live %+v, replayed %+v",
				stage, live[i].ID, live[i], replayed[i])
			return
		}
	}
	o.checkStreamReplay(stage, rec)
}

// checkStreamAudit is the streaming-audit invariant: once the engine
// has drained the change feed, its incremental report must be
// deep-equal to the batch FullAudit over the same store and inputs.
// Drain handles a dropped subscription by resyncing from snapshot, so
// the invariant holds regardless of feed-buffer pressure.
func (o *oracle) checkStreamAudit(stage string) {
	if o.engine == nil {
		return
	}
	o.engine.Drain()
	if !o.engine.CaughtUp() {
		o.violate("%s streamaudit: engine not caught up after drain (applied %d, feed at %d)",
			stage, o.engine.Applied(), o.store.FeedSeq())
		return
	}
	aud, err := audit.New(o.store, o.auditMeta)
	if err != nil {
		o.violate("%s streamaudit: constructing auditor: %v", stage, err)
		return
	}
	inputs := o.auditInputs()
	want, err := aud.FullAuditSerial(inputs)
	if err != nil {
		o.violate("%s streamaudit: batch audit failed: %v", stage, err)
		return
	}
	got, err := o.engine.Report(inputs)
	if err != nil {
		o.violate("%s streamaudit: incremental report failed: %v", stage, err)
		return
	}
	if !reflect.DeepEqual(got, want) {
		o.violate("%s streamaudit: incremental report diverges from batch audit", stage)
	}
}

// checkStreamReplay extends the durability invariant to the streaming
// path: an engine primed from the WAL-recovered store must report
// exactly what the live, delta-fed engine reports.
func (o *oracle) checkStreamReplay(stage string, rec *store.Store) {
	if o.engine == nil {
		return
	}
	replayEng, err := streamaudit.New(streamaudit.Config{Store: rec, Meta: o.auditMeta})
	if err != nil {
		o.violate("%s streamaudit replay: constructing engine: %v", stage, err)
		return
	}
	o.engine.Drain()
	inputs := o.auditInputs()
	liveRep, err := o.engine.Report(inputs)
	if err != nil {
		o.violate("%s streamaudit replay: live report failed: %v", stage, err)
		return
	}
	replayRep, err := replayEng.Report(inputs)
	if err != nil {
		o.violate("%s streamaudit replay: replay report failed: %v", stage, err)
		return
	}
	if !reflect.DeepEqual(liveRep, replayRep) {
		o.violate("%s streamaudit replay: engine primed from recovered store diverges from live engine", stage)
	}
}

// checkModel compares the live store against the shadow model:
// zero-loss (every predicted record exists), no-duplication (nothing
// beyond the predictions exists — one record per nonce), and field
// agreement on every measurement the paper's audit consumes.
func (o *oracle) checkModel() {
	byNonce := make(map[string]store.Impression)
	for _, im := range dumpStore(o.store) {
		if im.Nonce == "" {
			o.violate("no-duplication: record %d (campaign %s, publisher %s) has no nonce — not predicted by any session",
				im.ID, im.CampaignID, im.Publisher)
			continue
		}
		if prev, dup := byNonce[im.Nonce]; dup {
			o.violate("no-duplication: nonce %s appears on records %d and %d",
				im.Nonce, prev.ID, im.ID)
			continue
		}
		byNonce[im.Nonce] = im
	}
	for nonce, want := range o.model {
		im, ok := byNonce[nonce]
		if !ok {
			o.violate("zero-loss: session %d (nonce %s) has no store record", want.session, nonce)
			continue
		}
		delete(byNonce, nonce)
		o.compareRecord(want, im)
	}
	for nonce, im := range byNonce {
		o.violate("no-duplication: record %d (nonce %s) matches no scheduled session", im.ID, nonce)
	}
}

func (o *oracle) compareRecord(want *modelRecord, im store.Impression) {
	mism := func(field string, got, exp any) {
		o.violate("session %d (nonce %s): %s = %v, model predicts %v",
			want.session, want.nonce, field, got, exp)
	}
	if im.CampaignID != want.campaignID {
		mism("campaign", im.CampaignID, want.campaignID)
	}
	if im.CreativeID != want.creativeID {
		mism("creative", im.CreativeID, want.creativeID)
	}
	if im.Publisher != want.publisher {
		mism("publisher", im.Publisher, want.publisher)
	}
	if im.PageURL != want.pageURL {
		mism("page url", im.PageURL, want.pageURL)
	}
	if im.UserAgent != want.userAgent {
		mism("user agent", im.UserAgent, want.userAgent)
	}
	if !im.Timestamp.Equal(want.timestamp) {
		mism("timestamp", im.Timestamp, want.timestamp)
	}
	if im.Exposure != want.exposure {
		mism("exposure", im.Exposure, want.exposure)
	}
	if im.MouseMoves != want.moves {
		mism("mouse moves", im.MouseMoves, want.moves)
	}
	if im.Clicks != want.clicks {
		mism("clicks", im.Clicks, want.clicks)
	}
	if im.VisibilityMeasured != want.visMeasured {
		mism("visibility measured", im.VisibilityMeasured, want.visMeasured)
	}
	if im.MaxVisibleFraction != want.maxVis {
		mism("max visible fraction", im.MaxVisibleFraction, want.maxVis)
	}
	if im.IPPseudonym != want.pseudonym {
		mism("ip pseudonym", im.IPPseudonym, want.pseudonym)
	}
	if im.UserKey != want.userKey {
		mism("user key", im.UserKey, want.userKey)
	}
}

// checkAudit runs the full audit twice — worker pool and serial — over
// the final dataset, with vendor reports synthesised from the model's
// ground truth, and demands identical reports.
func (o *oracle) checkAudit() {
	aud, err := audit.New(o.store, o.auditMeta)
	if err != nil {
		o.violate("audit: constructing auditor: %v", err)
		return
	}
	inputs := o.auditInputs()
	par, err := aud.FullAudit(inputs)
	if err != nil {
		o.violate("audit: parallel run failed: %v", err)
		return
	}
	ser, err := aud.FullAuditSerial(inputs)
	if err != nil {
		o.violate("audit: serial run failed: %v", err)
		return
	}
	if !reflect.DeepEqual(par, ser) {
		o.violate("audit: parallel report diverges from serial report")
	}
}

// auditInputs synthesises one vendor report per campaign from the
// model — deterministic counts standing in for the vendor's claims.
// Rows are keyed by the (reported publisher, seller) attribution, so an
// attack session's report row carries the spoofed domain or pooled
// seller while the beacon-side model keeps the truth.
func (o *oracle) auditInputs() []audit.CampaignInput {
	type rowKey struct{ pub, seller string }
	type pubCount struct {
		impressions int64
		clicks      int64
	}
	perCampaign := make(map[string]map[rowKey]*pubCount)
	for _, rec := range o.model {
		pubs := perCampaign[rec.campaignID]
		if pubs == nil {
			pubs = make(map[rowKey]*pubCount)
			perCampaign[rec.campaignID] = pubs
		}
		k := rowKey{rec.reportedPublisher, rec.sellerID}
		pc := pubs[k]
		if pc == nil {
			pc = &pubCount{}
			pubs[k] = pc
		}
		pc.impressions++
		pc.clicks += int64(rec.clicks)
	}

	var inputs []audit.CampaignInput
	for _, camp := range simCampaigns {
		pubs := perCampaign[camp.ID]
		rep := &adnet.VendorReport{CampaignID: camp.ID}
		var total int64
		for k, pc := range pubs {
			rep.Rows = append(rep.Rows, adnet.ReportRow{
				Publisher:   k.pub,
				SellerID:    k.seller,
				Impressions: pc.impressions,
				Clicks:      pc.clicks,
			})
			total += pc.impressions
		}
		sort.Slice(rep.Rows, func(a, b int) bool {
			if rep.Rows[a].Impressions != rep.Rows[b].Impressions {
				return rep.Rows[a].Impressions > rep.Rows[b].Impressions
			}
			if rep.Rows[a].Publisher != rep.Rows[b].Publisher {
				return rep.Rows[a].Publisher < rep.Rows[b].Publisher
			}
			return rep.Rows[a].SellerID < rep.Rows[b].SellerID
		})
		rep.TotalImpressionsCharged = total
		rep.ContextualImpressions = total * 2 / 3
		rep.RefundedImpressions = total / 10
		inputs = append(inputs, audit.CampaignInput{
			ID:       camp.ID,
			Keywords: camp.Keywords,
			Report:   rep,
		})
	}
	return inputs
}

// checkFinal runs every end-of-run invariant. The streaming check runs
// first so the engine is drained before the recovery check's replay
// cross-comparison reads its report, and before the trace check — a
// trace only finishes once its feed event is applied.
func (o *oracle) checkFinal() {
	o.checkModel()
	o.checkStreamAudit("final")
	o.checkShardMerge("final")
	o.checkRecovery("final")
	o.checkAudit()
	o.checkAdversarial()
	o.checkTraces()
}

// checkShardMerge is the sharded-topology invariant, run post hoc over
// the final store: every record is partitioned onto the shard its
// nonce hashes to (conversions by user key — the join identity), one
// unmodified streamaudit engine runs per shard, and the shard exports
// merged in shard order must report exactly what the batch FullAudit
// computes over the shard-order combined store. Because the partition
// draws nothing from the schedule RNG and runs after the digest is
// sealed, a run's digest is identical across shard counts — that
// equality is asserted by TestShardsDigestDeterminism.
func (o *oracle) checkShardMerge(stage string) {
	n := o.shards
	if n <= 0 {
		return
	}
	shards := make([]*store.Store, n)
	for i := range shards {
		shards[i] = store.New()
	}
	var err error
	o.store.ForEach(func(im store.Impression) bool {
		_, err = shards[shardmerge.ShardFor(im.Nonce, n)].Insert(im)
		return err == nil
	})
	if err == nil {
		for _, c := range o.store.Conversions("") {
			if _, err = shards[shardmerge.ShardFor(c.UserKey, n)].InsertConversion(c); err != nil {
				break
			}
		}
	}
	if err != nil {
		o.violate("%s shardmerge: partitioning store onto %d shards: %v", stage, n, err)
		return
	}
	combined := store.New()
	for _, sh := range shards {
		sh.ForEach(func(im store.Impression) bool {
			_, err = combined.Insert(im)
			return err == nil
		})
		if err == nil {
			for _, c := range sh.Conversions("") {
				if _, err = combined.InsertConversion(c); err != nil {
					break
				}
			}
		}
		if err != nil {
			o.violate("%s shardmerge: rebuilding combined store: %v", stage, err)
			return
		}
	}
	inputs := o.auditInputs()
	aud, err := audit.New(combined, o.auditMeta)
	if err != nil {
		o.violate("%s shardmerge: constructing combined auditor: %v", stage, err)
		return
	}
	want, err := aud.FullAuditSerial(inputs)
	if err != nil {
		o.violate("%s shardmerge: combined batch audit failed: %v", stage, err)
		return
	}
	exports := make([]*streamaudit.Export, n)
	for i, sh := range shards {
		eng, err := streamaudit.New(streamaudit.Config{Store: sh, Meta: o.auditMeta})
		if err != nil {
			o.violate("%s shardmerge: shard %d engine: %v", stage, i, err)
			return
		}
		eng.Drain()
		exports[i] = eng.Export()
	}
	merged, err := streamaudit.NewStatic(streamaudit.StaticConfig{Meta: o.auditMeta}, shardmerge.Merge(exports))
	if err != nil {
		o.violate("%s shardmerge: static engine over merged export: %v", stage, err)
		return
	}
	got, err := merged.Report(inputs)
	if err != nil {
		o.violate("%s shardmerge: merged report failed: %v", stage, err)
		return
	}
	if !reflect.DeepEqual(got, want) {
		o.violate("%s shardmerge: merged %d-shard report diverges from combined-store batch audit", stage, n)
	}
}

// checkTraces is the trace-completeness invariant: with the engine
// drained, every predicted trace must have reached the recorder and
// finished — complete through the stream-apply stage or explicitly
// truncated — and no spans may linger in the active set. Reconnects,
// duplicates and reordered replays all re-adopt the session's wire ID,
// so this proves merge legs finish too, never orphan.
func (o *oracle) checkTraces() {
	if o.rec == nil {
		return
	}
	for _, snap := range o.rec.Active() {
		o.violate("trace: orphan span: trace %s (nonce %s) still active after drain: stages %v",
			snap.IDHex, snap.Nonce, stageNames(snap.Stages))
	}
	// A feed-buffer eviction means the engine was resyncing when some
	// events published; the store legitimately finishes those traces
	// at the feed stage instead of apply.
	drops := o.store.FeedDrops()
	for id, s := range o.traced {
		snap, ok := o.rec.Get(id)
		if !ok {
			o.violate("trace: session %d (nonce %s): trace %s never reached the recorder",
				s.idx, s.nonce, id)
			continue
		}
		if snap.Nonce != s.nonce {
			o.violate("trace: session %d: trace %s annotated with nonce %q, want %q",
				s.idx, snap.IDHex, snap.Nonce, s.nonce)
		}
		if !snap.Done {
			o.violate("trace: session %d (nonce %s): trace %s neither finished nor truncated: stages %v",
				s.idx, s.nonce, snap.IDHex, stageNames(snap.Stages))
			continue
		}
		if snap.Truncated != "" {
			continue // explicitly truncated is an accounted-for ending
		}
		if snap.Complete(trace.StageApply) {
			continue
		}
		if drops > 0 && snap.Complete(trace.StageFeed) {
			continue
		}
		o.violate("trace: session %d (nonce %s): trace %s finished without reaching %s: stages %v",
			s.idx, s.nonce, snap.IDHex, trace.StageApply, stageNames(snap.Stages))
	}
}

func stageNames(stages []trace.StagePoint) []string {
	out := make([]string, len(stages))
	for i, sp := range stages {
		out[i] = sp.Name
	}
	return out
}

// dumpStore copies the store's records in insertion order.
func dumpStore(s *store.Store) []store.Impression {
	out := make([]store.Impression, 0, s.Len())
	s.ForEach(func(im store.Impression) bool {
		out = append(out, im)
		return true
	})
	return out
}

// impressionEqual compares two records field for field.
func impressionEqual(a, b store.Impression) bool {
	// Timestamps must name the same instant; monotonic-clock and
	// location bookkeeping may differ after a JSON round-trip.
	if !a.Timestamp.Equal(b.Timestamp) {
		return false
	}
	a.Timestamp, b.Timestamp = time.Time{}, time.Time{}
	return reflect.DeepEqual(a, b)
}
