// Package gateway implements the edge ingest tier: a lightweight
// trusted bridge that terminates beacon WebSockets close to the users
// emitting them and forwards the measurements to the central collector
// over a small pool of persistent trunk connections (internal/trunk).
// The paper's audit only holds if the collector receives every beacon a
// panelist emits, so this tier's whole job is robustness: admission
// control at the edge (origin allowlist, session caps, overload
// shedding with Retry-After hints the beacon client honors), per-trunk
// circuit breakers with session re-homing, bounded per-session forward
// queues with watermark backpressure, and an in-gateway spill buffer
// that holds every client-acknowledged impression until the collector
// durably acks it — across trunk failures and full collector restarts,
// replayed through the collector's nonce-dedup path so nothing is ever
// double-counted.
//
// The gateway is trusted infrastructure, unlike the clients it fronts:
// it measures exposure as connection lifetime on its own clock and
// ships the connection-derived facts (peer IP, connect time, exposure)
// to the collector in a self-contained Commit frame, exactly the facts
// the collector would have derived had the beacon connected directly.
package gateway

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"log/slog"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"adaudit/internal/beacon"
	"adaudit/internal/telemetry"
	"adaudit/internal/trace"
	"adaudit/internal/trunk"
	"adaudit/internal/wsproto"
)

// Shed reasons used for adaudit_gateway_sheds_total{reason=...}.
const (
	ShedDraining = "draining" // gateway is draining for shutdown
	ShedCapacity = "capacity" // MaxSessions cap reached
	ShedSpill    = "spill"    // spill buffer full: collector outage outlasting memory
	ShedOrigin   = "origin"   // page origin not in the allowlist
)

// maxStageSkew clamps gateway-measured trace offsets against clients
// whose clocks disagree wildly with ours — the same bound the
// collector's trace adoption applies.
const maxStageSkew = 5 * time.Minute

// Config assembles a Gateway.
type Config struct {
	// CollectorURL is the collector's trunk endpoint
	// (ws://host:port/trunk). Required.
	CollectorURL string
	// TrunkToken is presented on trunk handshakes when the collector
	// requires one.
	TrunkToken string
	// GatewayID names this gateway on the wire; commits are deduped per
	// (gateway, stream), so each gateway instance needs a distinct ID.
	// Defaults to a random token.
	GatewayID string
	// Trunks is the size of the persistent trunk pool (default 2).
	Trunks int
	// Dialer customises the trunk dial (tests inject faults through
	// WrapConn/NetDial). MaxMessageSize and Header are managed by the
	// gateway.
	Dialer wsproto.Dialer

	// AllowedOrigins restricts which page origins may open beacon
	// sessions: a request whose Origin header's host neither equals an
	// entry nor is a subdomain of one is refused with 403. Empty admits
	// all origins (ad iframes are cross-origin by design; deployments
	// scope this to the ad network's serving domains).
	AllowedOrigins []string
	// MaxSessions caps concurrent beacon sessions; 0 disables.
	MaxSessions int
	// MaxMessageSize bounds beacon messages (default 16 KiB).
	MaxMessageSize int64
	// HandshakeTimeout bounds the wait for a session's initial payload
	// (default 10s).
	HandshakeTimeout time.Duration
	// KeepAliveInterval pings idle beacon sessions and trunks; a peer
	// that stops answering within two intervals is torn down. Default
	// 30s; negative disables.
	KeepAliveInterval time.Duration
	// MaxExposure caps a session's lifetime (default 30 minutes).
	MaxExposure time.Duration

	// BatchBytes flushes a trunk's pending batch when it reaches this
	// size (default 32 KiB); BatchAge flushes it when the oldest
	// buffered frame has waited this long (default 50ms).
	BatchBytes int
	BatchAge   time.Duration

	// QueueHigh/QueueLow are the per-session forward-queue watermarks:
	// a session's reads stall once QueueHigh frames are queued and
	// resume when the forwarder drains it to QueueLow — backpressure
	// that propagates to the client's TCP window instead of growing
	// memory. Defaults 64/16.
	QueueHigh int
	QueueLow  int

	// SpillLimit bounds unacknowledged commits held across a collector
	// outage (default 65536); at the cap new sessions are shed, since
	// accepting them could only manufacture commitments the gateway
	// may not be able to keep.
	SpillLimit int
	// AckTimeout re-sends a commit the collector has not acked
	// (default 5s); ReplayInterval is the spill scan period (default 1s).
	AckTimeout     time.Duration
	ReplayInterval time.Duration

	// BreakerThreshold consecutive failed dials open a trunk's circuit
	// breaker (default 3); BreakerCooldown is how long it stays open
	// before a half-open probe (default 1s).
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// RetryAfterHint is the reconnect delay handed to shed or drained
	// clients (default 2s).
	RetryAfterHint time.Duration

	// Logger receives operational events; defaults to slog.Default().
	Logger *slog.Logger
	// Telemetry is the registry gateway instruments register on; nil
	// creates a private one.
	Telemetry *telemetry.Registry
}

// gatewayTelemetry bundles the registry-backed instruments. All fields
// are nil-safe.
type gatewayTelemetry struct {
	connections    *telemetry.Counter
	sessionsActive *telemetry.Gauge
	sheds          *telemetry.CounterVec
	events         *telemetry.Counter
	commits        *telemetry.Counter
	acks           *telemetry.Counter
	rejects        *telemetry.Counter
	replays        *telemetry.Counter
	queueDrops     *telemetry.Counter
	breakerOpens   *telemetry.Counter
	trunkBatches   *telemetry.Counter
	trunksHealthy  *telemetry.Gauge
	forward        *telemetry.Histogram
	batchBytes     *telemetry.Histogram
}

// Gateway terminates beacon sessions and forwards them over trunks.
type Gateway struct {
	cfg      Config
	log      *slog.Logger
	reg      *telemetry.Registry
	tel      gatewayTelemetry
	upgrader wsproto.Upgrader

	trunks []*trunkConn
	// gen counts trunk topology changes (any trunk coming up or going
	// down). A spill entry sent under an older generation may have died
	// with its trunk, so the replay loop re-sends it.
	gen atomic.Uint64
	// rr round-robins session forwarders across healthy trunks.
	rr atomic.Uint64

	draining  atomic.Bool
	sessMu    sync.Mutex
	sessConns map[*wsproto.Conn]struct{}
	sessWG    sync.WaitGroup

	// streamID numbers beacon sessions; stream 0 is never used.
	streamID atomic.Uint64

	// spill holds every commit not yet acked by the collector, keyed by
	// stream. Entries survive trunk failures and collector restarts;
	// the replay loop is the only sender, so a commit cannot race its
	// own retransmission.
	spillMu    sync.Mutex
	spill      map[uint64]*spillEntry
	replayWake chan struct{}

	stopCh    chan struct{}
	stopOnce  sync.Once
	runnersWG sync.WaitGroup
}

// spillEntry is one unacknowledged commit.
type spillEntry struct {
	frame []byte // encoded Commit frame, length-prefixed
	// sentGen is the trunk generation at the last send (0 = never
	// sent); sentAt the send time. Both are owned by the replay loop.
	sentGen  uint64
	sentAt   time.Time
	enqueued time.Time // first spill time, for the forward histogram
}

// New validates cfg and returns a started Gateway: trunk runners and
// the replay loop are live. Callers own serving HTTP (see Server) and
// must Close the gateway when done.
func New(cfg Config) (*Gateway, error) {
	if cfg.CollectorURL == "" {
		return nil, fmt.Errorf("gateway: config requires a collector trunk URL")
	}
	if cfg.GatewayID == "" {
		var b [6]byte
		if _, err := rand.Read(b[:]); err != nil {
			return nil, fmt.Errorf("gateway: generating id: %w", err)
		}
		cfg.GatewayID = "gw-" + hex.EncodeToString(b[:])
	}
	if cfg.Trunks <= 0 {
		cfg.Trunks = 2
	}
	if cfg.MaxMessageSize == 0 {
		cfg.MaxMessageSize = 16 << 10
	}
	if cfg.HandshakeTimeout == 0 {
		cfg.HandshakeTimeout = 10 * time.Second
	}
	switch {
	case cfg.KeepAliveInterval == 0:
		cfg.KeepAliveInterval = 30 * time.Second
	case cfg.KeepAliveInterval < 0:
		cfg.KeepAliveInterval = 0
	}
	if cfg.MaxExposure == 0 {
		cfg.MaxExposure = 30 * time.Minute
	}
	if cfg.BatchBytes == 0 {
		cfg.BatchBytes = 32 << 10
	}
	if cfg.BatchAge == 0 {
		cfg.BatchAge = 50 * time.Millisecond
	}
	if cfg.QueueHigh == 0 {
		cfg.QueueHigh = 64
	}
	if cfg.QueueLow == 0 || cfg.QueueLow >= cfg.QueueHigh {
		cfg.QueueLow = cfg.QueueHigh / 4
	}
	if cfg.SpillLimit == 0 {
		cfg.SpillLimit = 1 << 16
	}
	if cfg.AckTimeout == 0 {
		cfg.AckTimeout = 5 * time.Second
	}
	if cfg.ReplayInterval == 0 {
		cfg.ReplayInterval = time.Second
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerCooldown == 0 {
		cfg.BreakerCooldown = time.Second
	}
	if cfg.RetryAfterHint == 0 {
		cfg.RetryAfterHint = 2 * time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	reg := cfg.Telemetry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	g := &Gateway{
		cfg: cfg,
		log: cfg.Logger,
		reg: reg,
		upgrader: wsproto.Upgrader{
			MaxMessageSize:    cfg.MaxMessageSize,
			EnableCompression: true,
		},
		sessConns:  map[*wsproto.Conn]struct{}{},
		spill:      map[uint64]*spillEntry{},
		replayWake: make(chan struct{}, 1),
		stopCh:     make(chan struct{}),
	}
	g.tel = gatewayTelemetry{
		connections: reg.Counter("adaudit_gateway_connections_total",
			"Beacon WebSocket connections accepted at the edge.", nil),
		sessionsActive: reg.Gauge("adaudit_gateway_sessions_active",
			"Beacon sessions currently open on this gateway.", nil),
		sheds: reg.CounterVec("adaudit_gateway_sheds_total",
			"Beacon requests refused at admission, by reason.", "reason"),
		events: reg.Counter("adaudit_gateway_events_total",
			"Interaction updates received from beacon sessions.", nil),
		commits: reg.Counter("adaudit_gateway_commits_total",
			"Session commits handed to the spill/forward pipeline.", nil),
		acks: reg.Counter("adaudit_gateway_acks_total",
			"Commits acknowledged by the collector.", nil),
		rejects: reg.Counter("adaudit_gateway_rejected_total",
			"Commits the collector rejected permanently.", nil),
		replays: reg.Counter("adaudit_gateway_replays_total",
			"Commit retransmissions after a trunk change or ack timeout.", nil),
		queueDrops: reg.Counter("adaudit_gateway_queue_drops_total",
			"Advisory frames dropped with no healthy trunk available.", nil),
		breakerOpens: reg.Counter("adaudit_gateway_breaker_opens_total",
			"Trunk circuit-breaker openings.", nil),
		trunkBatches: reg.Counter("adaudit_gateway_trunk_batches_total",
			"Batch messages written to trunks.", nil),
		trunksHealthy: reg.Gauge("adaudit_gateway_trunks_healthy",
			"Trunk connections currently established.", nil),
		forward: reg.Histogram("adaudit_gateway_forward_seconds",
			"Commit-to-collector-ack latency, spill time included.",
			telemetry.LatencyBuckets(), nil),
		batchBytes: reg.Histogram("adaudit_gateway_batch_bytes",
			"Trunk batch sizes at flush.",
			[]float64{256, 1024, 4096, 16384, 65536, 262144}, nil),
	}
	reg.GaugeFunc("adaudit_gateway_trunks_total",
		"Configured trunk pool size.", nil,
		func() float64 { return float64(cfg.Trunks) })
	reg.GaugeFunc("adaudit_gateway_spill_pending",
		"Commits awaiting collector acknowledgement.", nil,
		func() float64 { return float64(g.spillPending()) })

	for i := 0; i < cfg.Trunks; i++ {
		t := &trunkConn{gw: g, idx: i}
		g.trunks = append(g.trunks, t)
		g.runnersWG.Add(1)
		go t.run()
	}
	g.runnersWG.Add(1)
	go g.replayLoop()
	return g, nil
}

// Telemetry returns the gateway's metrics registry.
func (g *Gateway) Telemetry() *telemetry.Registry { return g.reg }

// SessionCount returns the number of live beacon sessions.
func (g *Gateway) SessionCount() int {
	g.sessMu.Lock()
	defer g.sessMu.Unlock()
	return len(g.sessConns)
}

func (g *Gateway) spillPending() int {
	g.spillMu.Lock()
	defer g.spillMu.Unlock()
	return len(g.spill)
}

// shed refuses the request with 503 and the gateway's Retry-After hint.
func (g *Gateway) shed(w http.ResponseWriter, reason string) {
	g.tel.sheds.With(reason).Inc()
	w.Header().Set("Retry-After",
		strconv.Itoa(int((g.cfg.RetryAfterHint+time.Second-1)/time.Second)))
	http.Error(w, "gateway "+reason, http.StatusServiceUnavailable)
}

// originAllowed applies the admission allowlist to an Origin header.
func (g *Gateway) originAllowed(origin string) bool {
	if len(g.cfg.AllowedOrigins) == 0 {
		return true
	}
	if origin == "" {
		return false
	}
	host := origin
	if u, err := url.Parse(origin); err == nil && u.Hostname() != "" {
		host = u.Hostname()
	}
	for _, allowed := range g.cfg.AllowedOrigins {
		if strings.EqualFold(host, allowed) ||
			strings.HasSuffix(strings.ToLower(host), "."+strings.ToLower(allowed)) {
			return true
		}
	}
	return false
}

// ServeHTTP is the beacon endpoint: admission control, WebSocket
// upgrade, then the session protocol (first text message is the
// impression payload, "ev:" messages are interaction updates, the
// connection lifetime measures exposure).
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case g.draining.Load():
		g.shed(w, ShedDraining)
		return
	case g.cfg.MaxSessions > 0 && g.SessionCount() >= g.cfg.MaxSessions:
		g.shed(w, ShedCapacity)
		return
	case g.spillPending() >= g.cfg.SpillLimit:
		// The collector has been unreachable long enough to fill the
		// spill buffer; admitting more sessions would promise acks the
		// gateway may not be able to keep.
		g.shed(w, ShedSpill)
		return
	case !g.originAllowed(r.Header.Get("Origin")):
		g.tel.sheds.With(ShedOrigin).Inc()
		http.Error(w, "origin not allowed", http.StatusForbidden)
		return
	}
	conn, err := g.upgrader.Upgrade(w, r)
	if err != nil {
		g.log.Debug("gateway: handshake rejected", "err", err, "remote", r.RemoteAddr)
		return
	}
	g.tel.connections.Add(1)
	if g.draining.Load() {
		_ = conn.Close(wsproto.CloseServiceRestart, g.drainCloseReason())
		return
	}
	// Session messages are decoded or copied before the next read, so
	// the frame buffer can recycle.
	conn.ReuseReadBuffer()
	g.trackSession(conn)
	go func() {
		defer g.untrackSession(conn)
		g.runSession(conn)
	}()
}

func (g *Gateway) trackSession(conn *wsproto.Conn) {
	g.sessWG.Add(1)
	g.sessMu.Lock()
	g.sessConns[conn] = struct{}{}
	g.sessMu.Unlock()
	g.tel.sessionsActive.Add(1)
}

func (g *Gateway) untrackSession(conn *wsproto.Conn) {
	g.sessMu.Lock()
	delete(g.sessConns, conn)
	g.sessMu.Unlock()
	g.tel.sessionsActive.Add(-1)
	g.sessWG.Done()
}

// drainCloseReason is the close-frame reason drained clients receive:
// the resumable 1012 code plus the backoff floor the beacon client
// parses.
func (g *Gateway) drainCloseReason() string {
	return "draining retry-after=" + g.cfg.RetryAfterHint.String()
}

// stageOffset computes a trace stage offset relative to the beacon's
// stamped send time, clamped like the collector's trace adoption.
func stageOffset(sentUnixNanos int64, at time.Time) time.Duration {
	off := at.Sub(time.Unix(0, sentUnixNanos))
	if off < 0 {
		return 0
	}
	if off > maxStageSkew {
		return maxStageSkew
	}
	return off
}

// runSession drives one beacon connection end to end: payload
// handshake, keepalive, event collection, and the commit handoff into
// the spill/forward pipeline when the connection ends.
func (g *Gateway) runSession(conn *wsproto.Conn) {
	remote := conn.RemoteAddr().String()
	if host, _, ok := strings.Cut(remote, ":"); ok {
		remote = host
	}
	if strings.HasPrefix(remote, "[") { // IPv6 [addr]:port
		remote = strings.Trim(remote, "[]")
	}
	connectedAt := time.Now()

	_ = conn.SetReadDeadline(connectedAt.Add(g.cfg.HandshakeTimeout))
	op, msg, err := conn.ReadMessage()
	if err != nil || !op.IsData() {
		_ = conn.Close(wsproto.ClosePolicyViolation, "no payload")
		return
	}
	recvAt := time.Now()
	// The first message's opcode selects the session wire, mirroring
	// the collector's negotiation. Trunk frames re-encode as text
	// either way: the trunk protocol predates the binary wire and the
	// collector ingests both identically.
	var payload beacon.Payload
	if op == wsproto.OpBinary {
		payload, err = beacon.DecodeBinary(msg)
	} else {
		payload, err = beacon.Decode(string(msg))
	}
	if err != nil {
		g.log.Debug("gateway: bad payload", "err", err, "remote", remote)
		_ = conn.Close(wsproto.ClosePolicyViolation, "bad payload")
		return
	}
	// Every gatewayed impression carries a nonce: the commit may be
	// replayed against a restarted collector whose stream-dedup cache
	// is gone, and the nonce is what lets that replay merge instead of
	// double-counting.
	if payload.Nonce == "" {
		payload.Nonce = beacon.NewNonce()
	}
	stream := g.streamID.Add(1)

	// Gateway-leg trace stages, measured against the beacon's stamped
	// send time (only meaningful for sampled payloads).
	traced := payload.TraceID != "" && payload.TraceSent > 0
	var gatewayRecv time.Duration
	if traced {
		gatewayRecv = stageOffset(payload.TraceSent, recvAt)
	}

	// The forward queue decouples this session's reads from trunk
	// health: the forwarder goroutine drains it onto whichever trunk is
	// healthy, and when the queue hits its high watermark the session's
	// read loop stalls — backpressure into the client's TCP window.
	q := newSessionQueue(g.cfg.QueueHigh, g.cfg.QueueLow)
	defer q.close()
	var fwdWG sync.WaitGroup
	fwdWG.Add(1)
	go func() {
		defer fwdWG.Done()
		g.forwardLoop(q)
	}()
	q.push(trunk.AppendFrame(nil, trunk.Frame{
		Type: trunk.Open, Stream: stream,
		RemoteIP:    remote,
		ConnectedAt: connectedAt.UnixNano(),
		Payload:     payload.Encode(),
	}))

	// Keepalive and exposure-cap deadlines, the collector's discipline
	// applied at the edge.
	hardStop := connectedAt.Add(g.cfg.MaxExposure)
	renewDeadline := func() {
		if g.draining.Load() {
			return
		}
		d := hardStop
		if ka := g.cfg.KeepAliveInterval; ka > 0 {
			if soft := time.Now().Add(2 * ka); soft.Before(d) {
				d = soft
			}
		}
		_ = conn.SetReadDeadline(d)
	}
	conn.SetPongHandler(func([]byte) { renewDeadline() })
	renewDeadline()
	if ka := g.cfg.KeepAliveInterval; ka > 0 {
		stopPings := make(chan struct{})
		defer close(stopPings)
		go func() {
			t := time.NewTicker(ka)
			defer t.Stop()
			for {
				select {
				case <-stopPings:
					return
				case <-t.C:
					_ = conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
					err := conn.Ping(nil)
					_ = conn.SetWriteDeadline(time.Time{})
					if err != nil {
						return
					}
				}
			}
		}()
	}

	for {
		op, msg, err := conn.ReadMessage()
		if err != nil {
			break
		}
		renewDeadline()
		var e beacon.Event
		var isEvent bool
		if op == wsproto.OpBinary {
			e, isEvent, err = beacon.DecodeBinaryEventUpdate(msg)
		} else {
			e, isEvent, err = beacon.DecodeEventUpdate(string(msg))
		}
		if err != nil {
			g.log.Debug("gateway: bad event update", "err", err, "remote", remote)
			continue
		}
		if isEvent {
			g.tel.events.Add(1)
			payload.Events = append(payload.Events, e)
			var evText string
			if op == wsproto.OpBinary {
				evText = beacon.EncodeEventUpdate(e)
			} else {
				evText = string(msg)
			}
			q.push(trunk.AppendFrame(nil, trunk.Frame{
				Type: trunk.Event, Stream: stream, Payload: evText,
			}))
		}
	}
	// Stop forwarding advisory frames before building the commit, so
	// the commit is the last word on this stream.
	q.close()
	fwdWG.Wait()

	exposure := time.Since(connectedAt)
	if exposure > g.cfg.MaxExposure {
		exposure = g.cfg.MaxExposure
	}
	var stages []trunk.Stage
	if traced {
		stages = []trunk.Stage{
			{Name: trace.StageGatewayRecv, Offset: gatewayRecv},
			{Name: trace.StageTrunkForward, Offset: stageOffset(payload.TraceSent, time.Now())},
		}
	}
	commit := trunk.AppendFrame(nil, trunk.Frame{
		Type: trunk.Commit, Stream: stream,
		RemoteIP:    remote,
		ConnectedAt: connectedAt.UnixNano(),
		Exposure:    exposure,
		Payload:     payload.Encode(),
		Stages:      stages,
	})
	// Spill before closing the client: once the commit is in the spill
	// buffer the replay loop guarantees delivery, so the close
	// handshake the client treats as its ack is never a lie.
	g.spillCommit(stream, commit)

	if g.draining.Load() {
		_ = conn.Close(wsproto.CloseServiceRestart, g.drainCloseReason())
	} else {
		_ = conn.Close(wsproto.CloseNormal, "")
	}
}

// spillCommit registers a commit for guaranteed delivery and nudges the
// replay loop to send it now.
func (g *Gateway) spillCommit(stream uint64, frame []byte) {
	g.tel.commits.Add(1)
	g.spillMu.Lock()
	g.spill[stream] = &spillEntry{frame: frame, enqueued: time.Now()}
	g.spillMu.Unlock()
	select {
	case g.replayWake <- struct{}{}:
	default:
	}
}

// ackStream removes an acked commit from the spill buffer.
func (g *Gateway) ackStream(stream uint64) {
	g.spillMu.Lock()
	e, ok := g.spill[stream]
	if ok {
		delete(g.spill, stream)
	}
	g.spillMu.Unlock()
	if ok {
		g.tel.acks.Add(1)
		g.tel.forward.ObserveDuration(time.Since(e.enqueued))
	}
}

// rejectStream drops a commit the collector refused permanently.
func (g *Gateway) rejectStream(stream uint64, reason string) {
	g.spillMu.Lock()
	_, ok := g.spill[stream]
	if ok {
		delete(g.spill, stream)
	}
	g.spillMu.Unlock()
	if ok {
		g.tel.rejects.Add(1)
		g.log.Warn("gateway: collector rejected commit", "stream", stream, "reason", reason)
	}
}

// forwardLoop drains one session's queue onto healthy trunks. Advisory
// frames are droppable: with no healthy trunk they are discarded, since
// the accounting state travels self-contained in the commit. The
// session pins itself to one trunk while it stays healthy, so a
// session's Open and Events arrive at the collector in order on one
// connection — load still spreads across trunks because each session
// picks its own.
func (g *Gateway) forwardLoop(q *sessionQueue) {
	var t *trunkConn
	for {
		frame, ok := q.pop()
		if !ok {
			return
		}
		if t == nil || !t.isHealthy() {
			t = g.pickTrunk()
		}
		if t == nil || !t.enqueue(frame) {
			g.tel.queueDrops.Add(1)
		}
	}
}

// pickTrunk returns a healthy trunk, round-robin, or nil.
func (g *Gateway) pickTrunk() *trunkConn {
	n := len(g.trunks)
	start := int(g.rr.Add(1)) % n
	for i := 0; i < n; i++ {
		t := g.trunks[(start+i)%n]
		if t.isHealthy() {
			return t
		}
	}
	return nil
}

// healthyTrunks counts established trunk connections.
func (g *Gateway) healthyTrunks() int {
	n := 0
	for _, t := range g.trunks {
		if t.isHealthy() {
			n++
		}
	}
	return n
}

// HealthStatus is the gateway's /healthz body.
type HealthStatus struct {
	// Status is "ok" (all trunks up), "degraded" (some up), or
	// "unhealthy" (none up: commits are spilling, nothing reaches the
	// collector).
	Status        string `json:"status"`
	GatewayID     string `json:"gateway_id"`
	TrunksTotal   int    `json:"trunks_total"`
	TrunksHealthy int    `json:"trunks_healthy"`
	Sessions      int    `json:"sessions"`
	SpillPending  int    `json:"spill_pending"`
	Draining      bool   `json:"draining"`
}

// Health reports the gateway's degradation level.
func (g *Gateway) Health() HealthStatus {
	h := HealthStatus{
		GatewayID:     g.cfg.GatewayID,
		TrunksTotal:   len(g.trunks),
		TrunksHealthy: g.healthyTrunks(),
		Sessions:      g.SessionCount(),
		SpillPending:  g.spillPending(),
		Draining:      g.draining.Load(),
	}
	switch {
	case h.TrunksHealthy == h.TrunksTotal:
		h.Status = "ok"
	case h.TrunksHealthy > 0:
		h.Status = "degraded"
	default:
		h.Status = "unhealthy"
	}
	return h
}

// Drain sheds new sessions, forces live ones to commit and hands them
// back with a resumable close (1012 + retry-after), then waits up to
// grace for the spill buffer to empty. It returns the number of commits
// still unacknowledged when the grace expired — 0 means every
// impression this gateway acked to a client reached the collector.
func (g *Gateway) Drain(grace time.Duration) int {
	g.draining.Store(true)
	// Send the resumable close ourselves: unblocking the session's read
	// with a bare deadline would make wsproto auto-close with a protocol
	// error before runSession could speak. Closing the transport is what
	// breaks the read loop; the commit still happens after it.
	g.sessMu.Lock()
	for conn := range g.sessConns {
		_ = conn.Close(wsproto.CloseServiceRestart, g.drainCloseReason())
	}
	g.sessMu.Unlock()

	deadline := time.Now().Add(grace)
	done := make(chan struct{})
	go func() {
		g.sessWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(grace):
		g.log.Warn("gateway: drain grace expired with sessions still open",
			"sessions", g.SessionCount())
	}
	for g.spillPending() > 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	return g.spillPending()
}

// Close stops the trunk runners and replay loop and closes every trunk
// connection. Pending spill entries are abandoned; call Drain first for
// a zero-loss shutdown.
func (g *Gateway) Close() {
	g.stopOnce.Do(func() { close(g.stopCh) })
	for _, t := range g.trunks {
		t.closeConn()
	}
	g.runnersWG.Wait()
}
