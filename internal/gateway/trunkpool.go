package gateway

import (
	"context"
	"net/http"
	"sync"
	"time"

	"adaudit/internal/trunk"
	"adaudit/internal/wsproto"
)

// trunkMaxMessage mirrors the collector's trunk batch bound.
const trunkMaxMessage = 1 << 20

// trunkDialTimeout bounds one trunk connection attempt.
const trunkDialTimeout = 5 * time.Second

// trunkConn is one slot in the persistent trunk pool: a WebSocket to
// the collector's /trunk endpoint carrying batched frames for many
// beacon sessions. Each slot runs its own dial/read lifecycle with a
// circuit breaker, so a dead collector costs bounded probing, not a
// dial storm.
type trunkConn struct {
	gw  *Gateway
	idx int

	mu sync.Mutex
	// conn is the live connection (nil while down); buf the pending
	// batch, firstAppend when its oldest frame was buffered.
	conn        *wsproto.Conn
	buf         []byte
	firstAppend time.Time
	healthy     bool
	// fails counts consecutive dial failures for the breaker; reset on
	// a successful dial.
	fails int
}

func (t *trunkConn) isHealthy() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.healthy
}

// run is the trunk slot's lifecycle loop: breaker-gated dial, hello,
// then reading acks until the connection dies.
func (t *trunkConn) run() {
	g := t.gw
	defer g.runnersWG.Done()
	for {
		select {
		case <-g.stopCh:
			return
		default:
		}
		if t.fails >= g.cfg.BreakerThreshold {
			// Breaker open: wait out the cooldown, then the next dial is
			// the half-open probe. Success closes the breaker (fails
			// resets); failure re-opens it for another cooldown.
			if !sleepOrStop(g.stopCh, g.cfg.BreakerCooldown) {
				return
			}
		} else if t.fails > 0 {
			// Below the breaker threshold, space retries briefly so a
			// transient blip does not burn the whole failure budget at
			// once.
			if !sleepOrStop(g.stopCh, g.cfg.BreakerCooldown/4) {
				return
			}
		}
		conn, err := t.dial()
		if err != nil {
			t.fails++
			if t.fails == g.cfg.BreakerThreshold {
				g.tel.breakerOpens.Add(1)
				g.log.Warn("gateway: trunk breaker opened",
					"trunk", t.idx, "fails", t.fails, "err", err)
			}
			continue
		}
		t.fails = 0
		t.attach(conn)
		t.reader(conn)
		t.detach(conn)
	}
}

// sleepOrStop waits d unless stop closes first; reports whether the
// full wait elapsed.
func sleepOrStop(stop <-chan struct{}, d time.Duration) bool {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-stop:
		return false
	}
}

// dial opens the trunk connection and performs the Hello exchange.
func (t *trunkConn) dial() (*wsproto.Conn, error) {
	g := t.gw
	d := g.cfg.Dialer
	d.MaxMessageSize = trunkMaxMessage
	hdr := http.Header{}
	for k, vs := range g.cfg.Dialer.Header {
		hdr[k] = vs
	}
	if g.cfg.TrunkToken != "" {
		hdr.Set(trunk.TokenHeader, g.cfg.TrunkToken)
	}
	d.Header = hdr
	ctx, cancel := context.WithTimeout(context.Background(), trunkDialTimeout)
	defer cancel()
	conn, _, err := d.Dial(ctx, g.cfg.CollectorURL)
	if err != nil {
		return nil, err
	}
	// Ack/reject batches are fully decoded before the next read.
	conn.ReuseReadBuffer()
	hello := trunk.AppendFrame(nil, trunk.Frame{
		Type: trunk.Hello, Version: trunk.Version, GatewayID: g.cfg.GatewayID,
	})
	if err := conn.WriteMessage(wsproto.OpBinary, hello); err != nil {
		_ = conn.NetConn().Close()
		return nil, err
	}
	return conn, nil
}

// attach publishes the fresh connection: the trunk becomes eligible for
// session traffic and the replay loop is nudged to push spilled commits
// through it.
func (t *trunkConn) attach(conn *wsproto.Conn) {
	g := t.gw
	t.mu.Lock()
	t.conn = conn
	t.buf = nil
	t.healthy = true
	t.mu.Unlock()
	g.tel.trunksHealthy.Add(1)
	g.gen.Add(1)
	select {
	case g.replayWake <- struct{}{}:
	default:
	}
	g.log.Info("gateway: trunk established", "trunk", t.idx, "collector", g.cfg.CollectorURL)
}

// detach withdraws a dead connection. The generation bump makes the
// replay loop re-send every commit whose ack may have died with this
// trunk, onto whichever trunk is healthy — session re-homing needs no
// per-session state because commits are self-contained.
func (t *trunkConn) detach(conn *wsproto.Conn) {
	g := t.gw
	t.mu.Lock()
	wasHealthy := t.healthy
	t.conn = nil
	t.healthy = false
	t.buf = nil
	t.mu.Unlock()
	_ = conn.NetConn().Close()
	if wasHealthy {
		g.tel.trunksHealthy.Add(-1)
	}
	g.gen.Add(1)
	g.log.Warn("gateway: trunk lost", "trunk", t.idx)
}

// reader consumes collector replies (acks and rejects) and runs the
// trunk's keepalive until the connection dies. It also hosts the
// age-based batch flusher, so a trickle of frames below the size
// threshold still leaves within BatchAge.
func (t *trunkConn) reader(conn *wsproto.Conn) {
	g := t.gw
	stop := make(chan struct{})
	defer close(stop)

	renewDeadline := func() {
		if ka := g.cfg.KeepAliveInterval; ka > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(2 * ka))
		}
	}
	conn.SetPongHandler(func([]byte) { renewDeadline() })
	renewDeadline()
	if ka := g.cfg.KeepAliveInterval; ka > 0 {
		go func() {
			tick := time.NewTicker(ka)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					_ = conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
					err := conn.Ping(nil)
					_ = conn.SetWriteDeadline(time.Time{})
					if err != nil {
						_ = conn.NetConn().Close()
						return
					}
				}
			}
		}()
	}
	go func() {
		period := g.cfg.BatchAge / 2
		if period < 5*time.Millisecond {
			period = 5 * time.Millisecond
		}
		tick := time.NewTicker(period)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				t.flushAged()
			}
		}
	}()

	for {
		op, msg, err := conn.ReadMessage()
		if err != nil {
			return
		}
		renewDeadline()
		if op != wsproto.OpBinary {
			continue
		}
		frames, err := trunk.DecodeBatch(msg)
		if err != nil {
			g.log.Warn("gateway: malformed trunk reply", "trunk", t.idx, "err", err)
			return
		}
		for _, f := range frames {
			switch f.Type {
			case trunk.Ack:
				g.ackStream(f.Stream)
			case trunk.Reject:
				g.rejectStream(f.Stream, f.Reason)
			}
		}
	}
}

// enqueue buffers one encoded frame onto the trunk's pending batch,
// flushing when the size threshold is reached. Reports false when the
// trunk is down (the caller re-homes or drops).
func (t *trunkConn) enqueue(frame []byte) bool {
	g := t.gw
	t.mu.Lock()
	if !t.healthy || t.conn == nil {
		t.mu.Unlock()
		return false
	}
	if len(t.buf) == 0 {
		t.firstAppend = time.Now()
	}
	t.buf = append(t.buf, frame...)
	var out []byte
	var conn *wsproto.Conn
	if len(t.buf) >= g.cfg.BatchBytes {
		out, t.buf = t.buf, nil
		conn = t.conn
	}
	t.mu.Unlock()
	if out != nil {
		t.write(conn, out)
	}
	return true
}

// flush forces the pending batch out now.
func (t *trunkConn) flush() {
	t.mu.Lock()
	out := t.buf
	conn := t.conn
	t.buf = nil
	t.mu.Unlock()
	if len(out) > 0 && conn != nil {
		t.write(conn, out)
	}
}

// flushAged flushes the batch when its oldest frame has waited past
// BatchAge.
func (t *trunkConn) flushAged() {
	t.mu.Lock()
	var out []byte
	var conn *wsproto.Conn
	if len(t.buf) > 0 && time.Since(t.firstAppend) >= t.gw.cfg.BatchAge {
		out, t.buf = t.buf, nil
		conn = t.conn
	}
	t.mu.Unlock()
	if len(out) > 0 && conn != nil {
		t.write(conn, out)
	}
}

// write sends one batch message. On failure the transport is closed so
// the reader notices and the slot recycles; the frames in the batch are
// either advisory (droppable) or commits the replay loop will re-send.
func (t *trunkConn) write(conn *wsproto.Conn, batch []byte) {
	g := t.gw
	g.tel.trunkBatches.Add(1)
	g.tel.batchBytes.Observe(float64(len(batch)))
	if err := conn.WriteMessage(wsproto.OpBinary, batch); err != nil {
		_ = conn.NetConn().Close()
	}
}

// closeConn tears down the live connection (shutdown path).
func (t *trunkConn) closeConn() {
	t.mu.Lock()
	conn := t.conn
	t.mu.Unlock()
	if conn != nil {
		_ = conn.NetConn().Close()
	}
}

// replayLoop is the single sender for commits: it pushes fresh spill
// entries immediately (woken by spillCommit and trunk attach) and
// re-sends entries whose trunk died or whose ack timed out. Having one
// sender means a commit can never race its own retransmission onto two
// trunks.
func (g *Gateway) replayLoop() {
	defer g.runnersWG.Done()
	tick := time.NewTicker(g.cfg.ReplayInterval)
	defer tick.Stop()
	for {
		select {
		case <-g.stopCh:
			return
		case <-g.replayWake:
		case <-tick.C:
		}
		g.replayPending()
	}
}

// replayPending sends every due spill entry over a healthy trunk: never
// sent, sent under an older trunk generation (its trunk may have died
// with the ack in flight), or unacked past AckTimeout.
func (g *Gateway) replayPending() {
	t := g.pickTrunk()
	if t == nil {
		return
	}
	gen := g.gen.Load()
	now := time.Now()
	type item struct {
		stream uint64
		e      *spillEntry
	}
	var due []item
	g.spillMu.Lock()
	for s, e := range g.spill {
		if e.sentGen != gen || now.Sub(e.sentAt) > g.cfg.AckTimeout {
			due = append(due, item{s, e})
		}
	}
	g.spillMu.Unlock()
	if len(due) == 0 {
		return
	}
	sent := 0
	for _, it := range due {
		if !t.enqueue(it.e.frame) {
			break // trunk died mid-replay; the next wake retries
		}
		resend := it.e.sentGen != 0
		g.spillMu.Lock()
		if _, ok := g.spill[it.stream]; ok {
			it.e.sentGen = gen
			it.e.sentAt = now
		}
		g.spillMu.Unlock()
		if resend {
			g.tel.replays.Add(1)
		}
		sent++
	}
	if sent > 0 {
		t.flush()
	}
}

// sessionQueue is a bounded frame queue between one session's read loop
// and its forwarder, with watermark hysteresis: pushes stall at the
// high watermark and resume only once the forwarder has drained the
// queue to the low watermark, so a slow trunk throttles the client's
// TCP window instead of growing gateway memory.
type sessionQueue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	frames  [][]byte
	high    int
	low     int
	stalled bool
	closed  bool
}

func newSessionQueue(high, low int) *sessionQueue {
	q := &sessionQueue{high: high, low: low}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push appends a frame, blocking while the queue is over its high
// watermark. Reports false when the queue closed while waiting.
func (q *sessionQueue) push(frame []byte) bool {
	q.mu.Lock()
	if len(q.frames) >= q.high {
		q.stalled = true
	}
	for q.stalled && !q.closed {
		q.cond.Wait()
	}
	if q.closed {
		q.mu.Unlock()
		return false
	}
	q.frames = append(q.frames, frame)
	q.mu.Unlock()
	q.cond.Broadcast()
	return true
}

// pop removes the oldest frame, blocking until one is available or the
// queue is closed and empty (ok == false). A closed queue still drains:
// the forwarder finishes in-flight advisory frames before the session
// builds its commit.
func (q *sessionQueue) pop() ([]byte, bool) {
	q.mu.Lock()
	for len(q.frames) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.frames) == 0 {
		q.mu.Unlock()
		return nil, false
	}
	f := q.frames[0]
	q.frames = q.frames[1:]
	if q.stalled && len(q.frames) <= q.low {
		q.stalled = false
	}
	q.mu.Unlock()
	q.cond.Broadcast()
	return f, true
}

// close wakes every waiter; pending frames remain poppable.
func (q *sessionQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}
