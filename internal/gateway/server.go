package gateway

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"
)

// serverOptions collects the tunables NewServer accepts as options.
type serverOptions struct {
	drainGrace time.Duration
	listener   net.Listener
}

// ServerOption customises a Server.
type ServerOption func(*serverOptions)

// WithDrainGrace bounds how long Serve waits on shutdown for in-flight
// beacon sessions to commit and for the spill buffer to empty into the
// collector (default 5 s).
func WithDrainGrace(d time.Duration) ServerOption {
	return func(o *serverOptions) { o.drainGrace = d }
}

// WithListener serves on ln instead of opening a fresh TCP listener
// (addr is then ignored) — the hook the chaos tests use to put a
// fault-injected accept path under the gateway's client leg.
func WithListener(ln net.Listener) ServerOption {
	return func(o *serverOptions) { o.listener = ln }
}

// Server runs a Gateway behind an HTTP listener with the standard
// operational sidecar: the beacon endpoint, GET /healthz (trunk pool
// health, ok → degraded → unhealthy), GET /metrics (Prometheus text)
// and GET /api/metrics (JSON). It owns listener lifecycle and graceful
// drain, so cmd/adgateway and the tests share one serving path.
type Server struct {
	gw      *Gateway
	httpSrv *http.Server
	ln      net.Listener
	opts    serverOptions
	start   time.Time
}

// NewServer wraps g in a Server listening on addr (host:port; port 0
// picks a free port).
func NewServer(g *Gateway, addr string, opts ...ServerOption) (*Server, error) {
	o := serverOptions{drainGrace: 5 * time.Second}
	for _, opt := range opts {
		opt(&o)
	}
	ln := o.listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", addr)
		if err != nil {
			return nil, fmt.Errorf("gateway: listening on %s: %w", addr, err)
		}
	}
	s := &Server{gw: g, ln: ln, opts: o, start: time.Now()}
	mux := http.NewServeMux()
	mux.Handle("/beacon", g)
	mux.HandleFunc("/healthz", s.serveHealthz)
	if reg := g.Telemetry(); reg != nil {
		reg.GaugeFunc("adaudit_gateway_uptime_seconds",
			"Time since the gateway server started.", nil,
			func() float64 { return time.Since(s.start).Seconds() })
		mux.Handle("/metrics", reg.Handler())
		mux.Handle("/api/metrics", reg.JSONHandler())
	}
	s.httpSrv = &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	return s, nil
}

// serveHealthz reports the trunk pool's degradation ladder: "ok" with
// every trunk up, "degraded" while at least one still carries traffic,
// "unhealthy" (503) when the collector is unreachable on all of them.
// Degraded stays 200: the gateway is still doing its job, and flapping
// a load balancer off a functioning edge node would convert a partial
// trunk outage into real client loss.
func (s *Server) serveHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	st := s.gw.Health()
	w.Header().Set("Content-Type", "application/json")
	if st.Status == "unhealthy" {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(st)
}

// Addr returns the bound listen address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// BeaconURL returns the ws:// URL beacon clients should dial.
func (s *Server) BeaconURL() string {
	return fmt.Sprintf("ws://%s/beacon", s.ln.Addr().String())
}

// Serve blocks serving requests until ctx is cancelled, then drains:
// admission flips to shedding, open sessions are closed with the
// resumable 1012 close code and a Retry-After hint, and the spill
// buffer is given until the drain grace to flush acked commits into the
// collector before the trunks are torn down.
func (s *Server) Serve(ctx context.Context) error {
	errCh := make(chan error, 1)
	go func() {
		errCh <- s.httpSrv.Serve(s.ln)
	}()
	select {
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = s.httpSrv.Shutdown(shutdownCtx)
		left := s.gw.Drain(s.opts.drainGrace)
		if left > 0 {
			s.gw.log.Warn("gateway: drain deadline hit with unflushed commits", "pending", left)
		}
		_ = s.httpSrv.Close()
		<-errCh
		s.gw.Close()
		return nil
	case err := <-errCh:
		s.gw.Close()
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return fmt.Errorf("gateway: serving: %w", err)
	}
}

// Close tears the server down immediately.
func (s *Server) Close() error {
	err := s.httpSrv.Close()
	s.gw.Close()
	return err
}
