package gateway

import (
	"context"
	"fmt"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"adaudit/internal/adnet"
	"adaudit/internal/audit"
	"adaudit/internal/beacon"
	"adaudit/internal/collector"
	"adaudit/internal/faultnet"
	"adaudit/internal/ipmeta"
	"adaudit/internal/publisher"
	"adaudit/internal/store"
	"adaudit/internal/streamaudit"
)

// TestChaosGatewayZeroLoss is the tentpole acceptance test: a beacon
// fleet reports through the full edge path with fault injection on BOTH
// legs — chaos proxies severing client connections and trunk
// connections — while the collector is killed and restarted from its
// WAL mid-run. The invariants: every impression a client was
// acknowledged for is present in the surviving store exactly once
// (zero loss, no double-counting through gateway replay + nonce dedup),
// and the streaming audit over the surviving store equals the batch
// FullAudit (the gatewayed path feeds both pipelines identically).
func TestChaosGatewayZeroLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test needs real time for kills, restarts and replays")
	}
	// Both restart legs (pre-crash journal, post-recovery journal) run
	// under each policy: "os" is the historical baseline, "group"
	// proves group commit keeps the zero-loss invariant while batching
	// fsyncs across the concurrently-committing trunk sessions.
	for name, policy := range map[string]store.SyncPolicy{"os": store.SyncOS, "group": store.SyncGroup} {
		t.Run(name, func(t *testing.T) { runChaosGatewayZeroLoss(t, policy) })
	}
}

func runChaosGatewayZeroLoss(t *testing.T, policy store.SyncPolicy) {
	walPath := filepath.Join(t.TempDir(), "gwchaos.wal")
	wal, err := store.OpenWAL(walPath, store.WALOptions{Policy: policy})
	if err != nil {
		t.Fatal(err)
	}
	st := store.New()
	st.AttachWAL(wal)
	newCollector := func(s *store.Store) *collector.Collector {
		c, err := collector.New(collector.Config{
			Store:             s,
			Anonymizer:        ipmeta.NewAnonymizer([]byte("gwchaos")),
			TrunkToken:        testTrunkToken,
			KeepAliveInterval: 50 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	csrvA, stopA := startCollectorServer(t, newCollector(st), "127.0.0.1:0")
	collectorAddr := csrvA.Addr().String()

	// Trunk-leg chaos: the gateway's connections to the collector die
	// repeatedly and crawl under a seeded bandwidth throttle.
	trunkPlan := &faultnet.Plan{
		Seed:                   7,
		KillAfter:              150 * time.Millisecond,
		KillJitter:             250 * time.Millisecond,
		SlowLinkProb:           0.5,
		SlowLinkBytesPerSecond: 512 << 10,
	}
	trunkProxy, err := faultnet.NewProxy("127.0.0.1:0", collectorAddr, trunkPlan)
	if err != nil {
		t.Fatal(err)
	}
	defer trunkProxy.Close()

	cfg := fastConfig(fmt.Sprintf("ws://%s/trunk", trunkProxy.Addr()))
	cfg.Trunks = 2
	g, gsrv := startGateway(t, cfg)

	// Client-leg chaos: beacon connections are killed mid-exposure and
	// occasionally reset mid-write; the client retries with its nonce.
	clientPlan := &faultnet.Plan{
		Seed:           20160329,
		KillAfter:      60 * time.Millisecond,
		KillJitter:     120 * time.Millisecond,
		ResetWriteProb: 0.02,
	}
	clientProxy, err := faultnet.NewProxy("127.0.0.1:0", gsrv.Addr().String(), clientPlan)
	if err != nil {
		t.Fatal(err)
	}
	defer clientProxy.Close()
	clientURL := fmt.Sprintf("ws://%s/beacon", clientProxy.Addr())

	pubs, err := publisher.NewUniverse(publisher.Config{Seed: 5, NumPublishers: 60})
	if err != nil {
		t.Fatal(err)
	}

	const fleet = 24
	type outcome struct {
		nonce string
		acked bool
	}
	outcomes := make([]outcome, fleet)
	var wg sync.WaitGroup
	for i := 0; i < fleet; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Stagger starts so the fleet's activity spans the collector
			// outage window instead of finishing before it.
			time.Sleep(time.Duration(i) * 30 * time.Millisecond)
			cl := &beacon.Client{
				CollectorURL:    clientURL,
				MaxAttempts:     12,
				RetryBackoff:    5 * time.Millisecond,
				RetryBackoffMax: 40 * time.Millisecond,
			}
			p := beacon.Payload{
				CampaignID: "GatewayChaos-001",
				CreativeID: fmt.Sprintf("cr-%d", i),
				PageURL:    fmt.Sprintf("http://%s/page", pubs.At(i%8).Domain),
				UserAgent:  "Mozilla/5.0 Chaos",
				Nonce:      fmt.Sprintf("gwchaos-%04d", i),
				Events: []beacon.Event{
					{Kind: beacon.EventMouseMove, At: 40 * time.Millisecond},
					{Kind: beacon.EventClick, At: 110 * time.Millisecond},
				},
			}
			exposure := time.Duration(150+10*(i%8)) * time.Millisecond
			rctx, rcancel := context.WithTimeout(context.Background(), 20*time.Second)
			defer rcancel()
			err := cl.Report(rctx, p, exposure)
			outcomes[i] = outcome{nonce: p.Nonce, acked: err == nil}
		}(i)
	}

	// Mid-run, the collector process "crashes": the server is torn down,
	// the store recovered from the WAL alone, and a fresh collector —
	// empty trunk stream-dedup cache, nonce cache reseeded from the
	// recovered records — rebinds the same address behind the proxy.
	// The outage lasts long enough that sessions commit INTO it: those
	// clients are acked purely from the spill buffer.
	time.Sleep(200 * time.Millisecond)
	stopA()
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}
	st2, applied, err := store.RecoverWAL(walPath, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	spilledDuringOutage := g.spillPending()
	if spilledDuringOutage == 0 {
		t.Error("no commit spilled during the collector outage; the zero-loss path went unexercised")
	}
	t.Logf("chaos: collector restarted mid-run with %d WAL entries recovered, %d commits spilled during outage",
		applied, spilledDuringOutage)
	wal2, err := store.OpenWAL(walPath, store.WALOptions{Policy: policy})
	if err != nil {
		t.Fatal(err)
	}
	st2.AttachWAL(wal2)
	startCollectorServer(t, newCollector(st2), collectorAddr)

	wg.Wait()

	_, clientKills, _, _ := clientPlan.Stats()
	_, trunkKills, _, _ := trunkPlan.Stats()
	if clientKills == 0 || trunkKills == 0 {
		t.Fatalf("chaos too gentle: clientKills=%d trunkKills=%d — both legs must see faults",
			clientKills, trunkKills)
	}
	if trunkPlan.SlowLinks.Load() == 0 {
		t.Fatal("no trunk connection drew the bandwidth throttle")
	}
	acked := 0
	for _, o := range outcomes {
		if o.acked {
			acked++
		}
	}
	if acked == 0 {
		t.Fatal("no beacon ever got through; chaos too violent to test the invariant")
	}

	// Drain the gateway: every commit it acknowledged must flush to the
	// restarted collector before we audit.
	if left := g.Drain(15 * time.Second); left != 0 {
		t.Fatalf("gateway drain left %d acked commits undelivered (loss)", left)
	}
	t.Logf("chaos: %d/%d acked, clientKills=%d trunkKills=%d slowTrunks=%d replays=%d breakerOpens=%d",
		acked, fleet, clientKills, trunkKills,
		trunkPlan.SlowLinks.Load(), g.tel.replays.Load(), g.tel.breakerOpens.Load())

	// Zero loss, exactly once, on the surviving store.
	byNonce := map[string]int{}
	st2.ForEach(func(im store.Impression) bool {
		if im.Nonce != "" {
			byNonce[im.Nonce]++
		}
		return true
	})
	for i, o := range outcomes {
		n := byNonce[o.nonce]
		if o.acked && n == 0 {
			t.Errorf("beacon %d acked but absent from the surviving store (zero-loss violated)", i)
		}
		if n > 1 {
			t.Errorf("nonce of beacon %d appears %d times (replay double-counted)", i, n)
		}
	}

	// Audit equality: the streaming engine primed from the surviving
	// store must report exactly what the batch audit computes over it.
	meta := audit.UniverseMetadata{Universe: pubs}
	inputs := auditInputsFromStore(st2)
	aud, err := audit.New(st2, meta)
	if err != nil {
		t.Fatal(err)
	}
	want, err := aud.FullAuditSerial(inputs)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := streamaudit.New(streamaudit.Config{Store: st2, Meta: meta})
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.Report(inputs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("streaming audit diverges from batch FullAudit on the surviving store")
	}
}

// auditInputsFromStore synthesizes per-campaign vendor reports from the
// store itself, the way the simtest oracle builds them from its model —
// the audit then cross-checks the store against a report that agrees
// with it by construction, so batch-vs-streaming equality is the only
// thing under test.
func auditInputsFromStore(st *store.Store) []audit.CampaignInput {
	type pubCount struct {
		impressions int64
		clicks      int64
	}
	perCampaign := map[string]map[string]*pubCount{}
	st.ForEach(func(im store.Impression) bool {
		pubs := perCampaign[im.CampaignID]
		if pubs == nil {
			pubs = map[string]*pubCount{}
			perCampaign[im.CampaignID] = pubs
		}
		pc := pubs[im.Publisher]
		if pc == nil {
			pc = &pubCount{}
			pubs[im.Publisher] = pc
		}
		pc.impressions++
		pc.clicks += int64(im.Clicks)
		return true
	})
	var ids []string
	for id := range perCampaign {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var inputs []audit.CampaignInput
	for _, id := range ids {
		rep := &adnet.VendorReport{CampaignID: id}
		var total int64
		for pub, pc := range perCampaign[id] {
			rep.Rows = append(rep.Rows, adnet.ReportRow{
				Publisher:   pub,
				Impressions: pc.impressions,
				Clicks:      pc.clicks,
			})
			total += pc.impressions
		}
		sort.Slice(rep.Rows, func(a, b int) bool {
			if rep.Rows[a].Impressions != rep.Rows[b].Impressions {
				return rep.Rows[a].Impressions > rep.Rows[b].Impressions
			}
			return rep.Rows[a].Publisher < rep.Rows[b].Publisher
		})
		rep.TotalImpressionsCharged = total
		rep.ContextualImpressions = total * 2 / 3
		rep.RefundedImpressions = total / 10
		inputs = append(inputs, audit.CampaignInput{ID: id, Report: rep})
	}
	return inputs
}
