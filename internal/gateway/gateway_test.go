package gateway

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"adaudit/internal/beacon"
	"adaudit/internal/collector"
	"adaudit/internal/ipmeta"
	"adaudit/internal/store"
	"adaudit/internal/trace"
	"adaudit/internal/wsproto"
)

const testTrunkToken = "trunk-secret"

// testCollector builds a collector suitable for fronting with a
// gateway: trunk endpoint guarded by testTrunkToken, fast keepalive.
func testCollector(t *testing.T, mut func(*collector.Config)) (*collector.Collector, *store.Store) {
	t.Helper()
	st := store.New()
	cfg := collector.Config{
		Store:             st,
		Anonymizer:        ipmeta.NewAnonymizer([]byte("gw-test")),
		TrunkToken:        testTrunkToken,
		KeepAliveInterval: 50 * time.Millisecond,
	}
	if mut != nil {
		mut(&cfg)
	}
	c, err := collector.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, st
}

// startCollectorServer serves c on addr ("127.0.0.1:0" for a free
// port); stop shuts it down gracefully and may be called once.
func startCollectorServer(t *testing.T, c *collector.Collector, addr string) (*collector.Server, func()) {
	t.Helper()
	srv, err := collector.NewServer(c, addr)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ctx)
	}()
	stopped := false
	stop := func() {
		if stopped {
			return
		}
		stopped = true
		cancel()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("collector server did not stop")
		}
	}
	t.Cleanup(stop)
	return srv, stop
}

// fastConfig returns a gateway Config tuned for test time scales.
func fastConfig(trunkURL string) Config {
	return Config{
		CollectorURL:      trunkURL,
		TrunkToken:        testTrunkToken,
		GatewayID:         "gw-test",
		KeepAliveInterval: 50 * time.Millisecond,
		BatchAge:          10 * time.Millisecond,
		AckTimeout:        300 * time.Millisecond,
		ReplayInterval:    50 * time.Millisecond,
		BreakerThreshold:  3,
		BreakerCooldown:   50 * time.Millisecond,
		RetryAfterHint:    2 * time.Second,
	}
}

// startGateway builds and serves a gateway; the cleanup closes it.
func startGateway(t *testing.T, cfg Config) (*Gateway, *Server) {
	t.Helper()
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(g, "127.0.0.1:0", WithDrainGrace(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("gateway server did not stop")
		}
	})
	return g, srv
}

func trunkURL(srv *collector.Server) string {
	return fmt.Sprintf("ws://%s/trunk", srv.Addr())
}

func waitFor(t *testing.T, timeout time.Duration, msg string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", msg)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func testPayload(i int) beacon.Payload {
	return beacon.Payload{
		CampaignID: "Gateway-001",
		CreativeID: fmt.Sprintf("cr-%d", i),
		PageURL:    fmt.Sprintf("http://pub%d.es/page", i%3),
		UserAgent:  "Mozilla/5.0 Chrome/49.0",
		Nonce:      beacon.NewNonce(),
	}
}

// TestGatewayEndToEnd pushes one beacon session through the full edge
// path — client → gateway → trunk → collector — and checks the
// impression lands with its events, exposure, and nonce intact, and
// that the gateway's spill buffer drains to empty on the ack.
func TestGatewayEndToEnd(t *testing.T) {
	c, st := testCollector(t, nil)
	csrv, _ := startCollectorServer(t, c, "127.0.0.1:0")
	g, gsrv := startGateway(t, fastConfig(trunkURL(csrv)))
	waitFor(t, 5*time.Second, "trunks to establish", func() bool { return g.healthyTrunks() == len(g.trunks) })

	client := &beacon.Client{CollectorURL: gsrv.BeaconURL()}
	p := testPayload(0)
	ctx := context.Background()
	sess, err := client.Open(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.SendEvent(beacon.Event{Kind: beacon.EventClick, At: 20 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(60 * time.Millisecond)
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}

	waitFor(t, 5*time.Second, "impression to reach the collector", func() bool { return st.Len() == 1 })
	im, _ := st.Get(1)
	if im.CampaignID != "Gateway-001" || im.Publisher != "pub0.es" {
		t.Fatalf("record = %+v", im)
	}
	if im.Clicks != 1 {
		t.Fatalf("clicks = %d, want 1", im.Clicks)
	}
	if im.Exposure < 40*time.Millisecond {
		t.Fatalf("exposure = %v, want >= hold duration", im.Exposure)
	}
	if im.Nonce != p.Nonce {
		t.Fatalf("nonce = %q, want %q", im.Nonce, p.Nonce)
	}
	waitFor(t, 5*time.Second, "spill buffer to drain", func() bool { return g.spillPending() == 0 })
	if got := g.tel.acks.Load(); got != 1 {
		t.Fatalf("acks = %v, want 1", got)
	}
	if got := c.Metrics.Events.Load(); got != 1 {
		t.Fatalf("collector events metric = %d, want 1 (direct-path parity)", got)
	}
}

// TestGatewaySynthesizesNonce: a nonce-less payload must still be
// replay-safe across a collector restart, so the gateway mints one.
func TestGatewaySynthesizesNonce(t *testing.T) {
	c, st := testCollector(t, nil)
	csrv, _ := startCollectorServer(t, c, "127.0.0.1:0")
	g, gsrv := startGateway(t, fastConfig(trunkURL(csrv)))
	waitFor(t, 5*time.Second, "trunks to establish", func() bool { return g.healthyTrunks() > 0 })

	client := &beacon.Client{CollectorURL: gsrv.BeaconURL()}
	p := testPayload(0)
	p.Nonce = ""
	if err := client.Report(context.Background(), p, 30*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "impression to land", func() bool { return st.Len() == 1 })
	im, _ := st.Get(1)
	if im.Nonce == "" {
		t.Fatal("gatewayed impression stored without a nonce")
	}
}

// TestGatewayOriginAdmission covers the allowlist: bare host and
// subdomain origins are admitted, others are refused with 403 before
// the upgrade.
func TestGatewayOriginAdmission(t *testing.T) {
	c, _ := testCollector(t, nil)
	csrv, _ := startCollectorServer(t, c, "127.0.0.1:0")
	cfg := fastConfig(trunkURL(csrv))
	cfg.AllowedOrigins = []string{"ads.example.com"}
	g, gsrv := startGateway(t, cfg)
	waitFor(t, 5*time.Second, "trunks to establish", func() bool { return g.healthyTrunks() > 0 })

	dialWithOrigin := func(origin string) (*wsproto.Conn, *http.Response, error) {
		d := &wsproto.Dialer{Header: http.Header{}}
		if origin != "" {
			d.Header.Set("Origin", origin)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return d.Dial(ctx, gsrv.BeaconURL())
	}

	for _, origin := range []string{"https://ads.example.com", "https://sub.ads.example.com:8443"} {
		conn, _, err := dialWithOrigin(origin)
		if err != nil {
			t.Fatalf("allowed origin %q refused: %v", origin, err)
		}
		conn.Close(wsproto.CloseNormal, "")
	}
	for _, origin := range []string{"https://evil.example.net", "https://notads.example.com.evil.io", ""} {
		_, resp, err := dialWithOrigin(origin)
		if err == nil {
			t.Fatalf("origin %q admitted, want 403", origin)
		}
		if resp == nil || resp.StatusCode != http.StatusForbidden {
			t.Fatalf("origin %q: response %+v, want 403", origin, resp)
		}
	}
	if got := g.tel.sheds.With(ShedOrigin).Load(); got != 3 {
		t.Fatalf("origin sheds = %v, want 3", got)
	}
}

// TestGatewayShedsAtCapacity: with MaxSessions reached, admission
// returns 503 with the Retry-After hint the beacon client honors as a
// backoff floor.
func TestGatewayShedsAtCapacity(t *testing.T) {
	c, _ := testCollector(t, nil)
	csrv, _ := startCollectorServer(t, c, "127.0.0.1:0")
	cfg := fastConfig(trunkURL(csrv))
	cfg.MaxSessions = 1
	g, gsrv := startGateway(t, cfg)
	waitFor(t, 5*time.Second, "trunks to establish", func() bool { return g.healthyTrunks() > 0 })

	ctx := context.Background()
	d := &wsproto.Dialer{}
	first, _, err := d.Dial(ctx, gsrv.BeaconURL())
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close(wsproto.CloseNormal, "")
	waitFor(t, 2*time.Second, "first session tracked", func() bool { return g.SessionCount() == 1 })

	_, resp, err := d.Dial(ctx, gsrv.BeaconURL())
	if err == nil {
		t.Fatal("second session admitted past MaxSessions")
	}
	if resp == nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed response = %+v, want 503", resp)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Fatalf("Retry-After = %q, want %q", got, "2")
	}
	if got := g.tel.sheds.With(ShedCapacity).Load(); got != 1 {
		t.Fatalf("capacity sheds = %v, want 1", got)
	}
}

// TestGatewayRejectsWithoutTrunkToken: a gateway holding the wrong
// credential never establishes a trunk, trips its breaker, and reports
// unhealthy — misconfiguration is loud, not silent loss.
func TestGatewayRejectsWithoutTrunkToken(t *testing.T) {
	c, _ := testCollector(t, nil)
	csrv, _ := startCollectorServer(t, c, "127.0.0.1:0")
	cfg := fastConfig(trunkURL(csrv))
	cfg.TrunkToken = "wrong"
	g, _ := startGateway(t, cfg)

	waitFor(t, 5*time.Second, "breaker to open", func() bool { return g.tel.breakerOpens.Load() >= 1 })
	if h := g.Health(); h.Status != "unhealthy" || h.TrunksHealthy != 0 {
		t.Fatalf("health = %+v, want unhealthy with zero trunks", h)
	}
}

// TestHealthzDegradationLadder walks /healthz through the three levels
// by breaking trunks: all up → ok (200), one up → degraded (200),
// none up → unhealthy (503).
func TestHealthzDegradationLadder(t *testing.T) {
	c, _ := testCollector(t, nil)
	csrv, stopCollector := startCollectorServer(t, c, "127.0.0.1:0")
	cfg := fastConfig(trunkURL(csrv))
	cfg.Trunks = 2
	// A long cooldown keeps broken trunks down for the duration of the
	// middle rung instead of instantly redialing.
	cfg.BreakerThreshold = 1
	cfg.BreakerCooldown = 30 * time.Second
	g, gsrv := startGateway(t, cfg)
	base := fmt.Sprintf("http://%s/healthz", gsrv.Addr())

	getHealth := func() (int, HealthStatus) {
		resp, err := http.Get(base)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st HealthStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, st
	}

	waitFor(t, 5*time.Second, "both trunks up", func() bool { return g.healthyTrunks() == 2 })
	if code, st := getHealth(); code != http.StatusOK || st.Status != "ok" {
		t.Fatalf("healthz with all trunks = %d %+v, want 200 ok", code, st)
	}

	// Break one trunk by severing its TCP connection; the breaker keeps
	// the slot down.
	g.trunks[0].closeConn()
	waitFor(t, 5*time.Second, "one trunk down", func() bool { return g.healthyTrunks() == 1 })
	if code, st := getHealth(); code != http.StatusOK || st.Status != "degraded" {
		t.Fatalf("healthz with one trunk = %d %+v, want 200 degraded", code, st)
	}

	// Take the collector away entirely: the survivor drops too.
	stopCollector()
	waitFor(t, 5*time.Second, "all trunks down", func() bool { return g.healthyTrunks() == 0 })
	if code, st := getHealth(); code != http.StatusServiceUnavailable || st.Status != "unhealthy" {
		t.Fatalf("healthz with no trunks = %d %+v, want 503 unhealthy", code, st)
	}
}

// TestGatewaySpillReplaysAcrossCollectorOutage is the zero-loss
// headline: a session commits while the collector is down, the client
// is acked from the spill buffer, and when the collector returns the
// commit replays through the nonce/stream-dedup path exactly once.
func TestGatewaySpillReplaysAcrossCollectorOutage(t *testing.T) {
	c, st := testCollector(t, nil)
	csrv, stopCollector := startCollectorServer(t, c, "127.0.0.1:0")
	collectorAddr := csrv.Addr().String()
	g, gsrv := startGateway(t, fastConfig(trunkURL(csrv)))
	waitFor(t, 5*time.Second, "trunks to establish", func() bool { return g.healthyTrunks() > 0 })

	stopCollector()
	waitFor(t, 5*time.Second, "trunks to drop", func() bool { return g.healthyTrunks() == 0 })

	// The client's whole session happens during the outage; Report
	// returning nil is the gateway's promise.
	client := &beacon.Client{CollectorURL: gsrv.BeaconURL()}
	p := testPayload(1)
	if err := client.Report(context.Background(), p, 40*time.Millisecond); err != nil {
		t.Fatalf("client not acked during collector outage: %v", err)
	}
	// The close handshake the client just saw races the commit's spill
	// insert by microseconds; wait for it rather than sampling.
	waitFor(t, 2*time.Second, "commit to spill", func() bool { return g.spillPending() == 1 })
	if st.Len() != 0 {
		t.Fatal("impression reached a stopped collector?")
	}

	// Collector restarts on the same address with the surviving store
	// (its nonce cache reseeds from it in New).
	c2, err := collector.New(collector.Config{
		Store:             st,
		Anonymizer:        ipmeta.NewAnonymizer([]byte("gw-test")),
		TrunkToken:        testTrunkToken,
		KeepAliveInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	startCollectorServer(t, c2, collectorAddr)

	waitFor(t, 10*time.Second, "spilled commit to replay", func() bool { return st.Len() == 1 && g.spillPending() == 0 })
	im, _ := st.Get(1)
	if im.Nonce != p.Nonce {
		t.Fatalf("replayed nonce = %q, want %q", im.Nonce, p.Nonce)
	}
	if got := g.tel.acks.Load(); got != 1 {
		t.Fatalf("acks = %v, want 1", got)
	}
}

// TestGatewayDrainHandsSessionsBack: Drain sheds new work, closes live
// sessions with the resumable 1012 code and a parseable retry-after
// reason, and flushes the spill buffer before returning.
func TestGatewayDrainHandsSessionsBack(t *testing.T) {
	c, st := testCollector(t, nil)
	csrv, _ := startCollectorServer(t, c, "127.0.0.1:0")
	g, gsrv := startGateway(t, fastConfig(trunkURL(csrv)))
	waitFor(t, 5*time.Second, "trunks to establish", func() bool { return g.healthyTrunks() > 0 })

	ctx := context.Background()
	d := &wsproto.Dialer{}
	conn, _, err := d.Dial(ctx, gsrv.BeaconURL())
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.WriteText(testPayload(2).Encode()); err != nil {
		t.Fatal(err)
	}
	// An acknowledged event proves the gateway finished the payload
	// handshake — draining before that would correctly close 1002.
	if err := conn.WriteText(beacon.EncodeEventUpdate(beacon.Event{Kind: beacon.EventClick, At: 5 * time.Millisecond})); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, "payload handshake to finish", func() bool { return g.tel.events.Load() == 1 })

	drained := make(chan int, 1)
	go func() { drained <- g.Drain(5 * time.Second) }()

	// The client's next read surfaces the drain close frame.
	var ce *wsproto.CloseError
	for {
		_, _, err := conn.ReadMessage()
		if err != nil {
			if !errors.As(err, &ce) {
				t.Fatalf("drain surfaced %v, want a close frame", err)
			}
			break
		}
	}
	if ce.Code != wsproto.CloseServiceRestart {
		t.Fatalf("drain close code = %d, want %d", ce.Code, wsproto.CloseServiceRestart)
	}
	if !strings.Contains(ce.Reason, "retry-after=") {
		t.Fatalf("drain close reason = %q, want a retry-after hint", ce.Reason)
	}

	left := <-drained
	if left != 0 {
		t.Fatalf("drain left %d commits unflushed", left)
	}
	// The mid-flight session's impression still landed: acked-to-client
	// is never a lie, even for a drain-truncated exposure.
	waitFor(t, 5*time.Second, "drained commit to land", func() bool { return st.Len() == 1 })

	// New admissions during/after drain are shed with 503.
	_, resp, err := d.Dial(ctx, gsrv.BeaconURL())
	if err == nil {
		t.Fatal("draining gateway admitted a session")
	}
	if resp == nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("drain shed response = %+v, want 503", resp)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("drain shed missing Retry-After header")
	}
}

// TestGatewayTraceSpans: a sampled impression traced through the
// gateway carries the two edge spans, spliced into the collector's
// pipeline stages.
func TestGatewayTraceSpans(t *testing.T) {
	rec := trace.NewRecorder(16)
	tracer := trace.NewTracer(rec, 1)
	c, st := testCollector(t, func(cfg *collector.Config) { cfg.Tracer = tracer })
	csrv, _ := startCollectorServer(t, c, "127.0.0.1:0")
	g, gsrv := startGateway(t, fastConfig(trunkURL(csrv)))
	waitFor(t, 5*time.Second, "trunks to establish", func() bool { return g.healthyTrunks() > 0 })

	client := &beacon.Client{CollectorURL: gsrv.BeaconURL(), Tracer: tracer}
	if err := client.Report(context.Background(), testPayload(3), 30*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "impression to land", func() bool { return st.Len() == 1 })

	var snap trace.Snapshot
	waitFor(t, 5*time.Second, "trace to appear", func() bool {
		recent := rec.Recent(1)
		if len(recent) == 0 {
			return false
		}
		snap = recent[0]
		return len(snap.Stages) >= 5
	})
	names := make([]string, len(snap.Stages))
	for i, s := range snap.Stages {
		names[i] = s.Name
	}
	wantPrefix := []string{
		trace.StageBeaconSend, trace.StageWireRecv,
		trace.StageGatewayRecv, trace.StageTrunkForward, trace.StageDecode,
	}
	for i, want := range wantPrefix {
		if i >= len(names) || names[i] != want {
			t.Fatalf("stage sequence = %v, want prefix %v", names, wantPrefix)
		}
	}
	// The two edge spans bracket the session in causal order.
	if snap.StageOffset(trace.StageTrunkForward) < snap.StageOffset(trace.StageGatewayRecv) {
		t.Fatalf("trunk_forward (%v) precedes gateway_recv (%v)",
			snap.StageOffset(trace.StageTrunkForward), snap.StageOffset(trace.StageGatewayRecv))
	}
}

// TestSessionQueueWatermarks pins the hysteresis contract: pushes stall
// at the high watermark and resume only once drained to low.
func TestSessionQueueWatermarks(t *testing.T) {
	q := newSessionQueue(4, 1)
	for i := 0; i < 4; i++ {
		if !q.push([]byte{byte(i)}) {
			t.Fatal("push refused below watermark")
		}
	}
	blocked := make(chan bool, 1)
	go func() { blocked <- q.push([]byte{99}) }()
	select {
	case <-blocked:
		t.Fatal("push past high watermark did not stall")
	case <-time.After(50 * time.Millisecond):
	}
	// Draining one frame (len 3 > low) must not wake the pusher.
	if f, ok := q.pop(); !ok || f[0] != 0 {
		t.Fatalf("pop = %v %v", f, ok)
	}
	select {
	case <-blocked:
		t.Fatal("pusher woke before the low watermark")
	case <-time.After(50 * time.Millisecond):
	}
	// Draining to the low watermark releases it.
	q.pop()
	q.pop()
	if ok := <-blocked; !ok {
		t.Fatal("released push reported closed")
	}
	q.close()
	// A closed queue still drains its backlog, then reports done.
	got := 0
	for {
		if _, ok := q.pop(); !ok {
			break
		}
		got++
	}
	if got != 2 { // frames 3 and 99 remained
		t.Fatalf("drained %d frames after close, want 2", got)
	}
	if q.push([]byte{1}) {
		t.Fatal("push succeeded on closed queue")
	}
}

// TestGatewayBackpressureDropsAdvisoryNotCommits: with no healthy trunk
// the advisory stream is dropped but the commit still lands once the
// collector returns — the queue never blocks a session forever.
func TestGatewayBackpressureDropsAdvisoryNotCommits(t *testing.T) {
	c, st := testCollector(t, nil)
	csrv, stopCollector := startCollectorServer(t, c, "127.0.0.1:0")
	collectorAddr := csrv.Addr().String()
	cfg := fastConfig(trunkURL(csrv))
	cfg.QueueHigh = 4
	cfg.QueueLow = 1
	g, gsrv := startGateway(t, cfg)
	waitFor(t, 5*time.Second, "trunks to establish", func() bool { return g.healthyTrunks() > 0 })
	stopCollector()
	waitFor(t, 5*time.Second, "trunks to drop", func() bool { return g.healthyTrunks() == 0 })

	client := &beacon.Client{CollectorURL: gsrv.BeaconURL()}
	p := testPayload(4)
	sess, err := client.Open(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if err := sess.SendEvent(beacon.Event{Kind: beacon.EventMouseMove, At: time.Duration(i) * time.Millisecond}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, "advisory frames to be dropped", func() bool { return g.tel.queueDrops.Load() > 0 })

	c2, err := collector.New(collector.Config{
		Store:             st,
		Anonymizer:        ipmeta.NewAnonymizer([]byte("gw-test")),
		TrunkToken:        testTrunkToken,
		KeepAliveInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	startCollectorServer(t, c2, collectorAddr)
	waitFor(t, 10*time.Second, "commit to replay", func() bool { return st.Len() == 1 })
	im, _ := st.Get(1)
	if im.MouseMoves != 32 {
		t.Fatalf("mouse moves = %d, want all 32 carried by the commit", im.MouseMoves)
	}
}

// listenerAddr pins a free port without serving, for tests that need a
// guaranteed-dead collector address.
func listenerAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestGatewayShedsWhenSpillFull: a full spill buffer (collector gone
// for too long) flips admission to shedding rather than promising acks
// the gateway cannot keep.
func TestGatewayShedsWhenSpillFull(t *testing.T) {
	cfg := fastConfig("ws://" + listenerAddr(t) + "/trunk")
	cfg.SpillLimit = 1
	g, gsrv := startGateway(t, cfg)

	client := &beacon.Client{CollectorURL: gsrv.BeaconURL()}
	if err := client.Report(context.Background(), testPayload(5), 10*time.Millisecond); err != nil {
		t.Fatalf("first session should be acked into the spill: %v", err)
	}
	waitFor(t, 2*time.Second, "commit to spill", func() bool { return g.spillPending() == 1 })
	d := &wsproto.Dialer{}
	_, resp, err := d.Dial(context.Background(), gsrv.BeaconURL())
	if err == nil {
		t.Fatal("gateway with a full spill admitted a session")
	}
	if resp == nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("spill shed response = %+v, want 503", resp)
	}
	if got := g.tel.sheds.With(ShedSpill).Load(); got != 1 {
		t.Fatalf("spill sheds = %v, want 1", got)
	}
}
