package gateway

import (
	"context"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"adaudit/internal/beacon"
)

// -update regenerates the golden files from the live fixture:
//
//	go test ./internal/gateway -run Golden -update
var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/golden")

func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if string(want) != string(got) {
		t.Errorf("response differs from %s (re-run with -update if the change is intended)\ngot:\n%s\nwant:\n%s",
			path, got, want)
	}
}

// TestMetricsJSONShapeGolden pins the shape of the gateway's
// /api/metrics — every registered instrument's key and kind (scalar or
// histogram). Values are timing-dependent, so the golden captures the
// schema a dashboard binds to, not the numbers. One report is pushed
// through the full edge path first so the forward/batch histograms are
// live, not hypothetical.
func TestMetricsJSONShapeGolden(t *testing.T) {
	c, st := testCollector(t, nil)
	csrv, _ := startCollectorServer(t, c, "127.0.0.1:0")
	_, gsrv := startGateway(t, fastConfig(trunkURL(csrv)))

	cl := &beacon.Client{CollectorURL: gsrv.BeaconURL()}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := cl.Report(ctx, beacon.Payload{
		CampaignID: "camp-golden", CreativeID: "cr",
		PageURL: "http://pub.example.com/p", UserAgent: "UA",
		Nonce: "golden-0001",
	}, 30*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, "report committed through trunk", func() bool {
		return st.Len() == 1
	})

	resp, err := http.Get("http://" + gsrv.Addr().String() + "/api/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /api/metrics: status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var metrics map[string]json.RawMessage
	if err := json.Unmarshal(body, &metrics); err != nil {
		t.Fatalf("metrics JSON does not parse: %v", err)
	}
	var lines []string
	for key, raw := range metrics {
		kind := "scalar"
		if strings.HasPrefix(strings.TrimSpace(string(raw)), "{") {
			kind = "histogram"
		}
		lines = append(lines, key+" "+kind+"\n")
	}
	sort.Strings(lines)
	golden(t, "metrics_shape.txt", []byte(strings.Join(lines, "")))
}
