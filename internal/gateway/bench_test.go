package gateway

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"testing"
	"time"

	"adaudit/internal/beacon"
	"adaudit/internal/collector"
	"adaudit/internal/ipmeta"
	"adaudit/internal/store"
)

// BenchmarkGatewayForward measures the full edge path per impression:
// beacon dial → gateway session → trunk batch → collector commit →
// ack back through the gateway. Compare against the collector
// package's BenchmarkWebSocketSession (the direct, no-gateway network
// path) to see what the extra hop costs; scripts/bench_compare.sh
// records both in BENCH_gateway.json and gates the direct path
// against its committed baseline.
func BenchmarkGatewayForward(b *testing.B) {
	// Silence both processes: bench_compare.sh parses the
	// `BenchmarkGatewayForward ...` result line from stdout, and
	// slog.Default() would interleave trunk-established lines with it.
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	st := store.New()
	c, err := collector.New(collector.Config{
		Store:            st,
		Anonymizer:       ipmeta.NewAnonymizer([]byte("bench")),
		TrunkToken:       testTrunkToken,
		DisableTelemetry: true,
		Logger:           quiet,
	})
	if err != nil {
		b.Fatal(err)
	}
	csrv, err := collector.NewServer(c, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go csrv.Serve(ctx)

	cfg := fastConfig(trunkURL(csrv))
	cfg.BatchAge = time.Millisecond // latency-bound loop: flush eagerly
	cfg.Logger = quiet
	g, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	gsrv, err := NewServer(g, "127.0.0.1:0", WithDrainGrace(10*time.Second))
	if err != nil {
		b.Fatal(err)
	}
	gctx, gcancel := context.WithCancel(context.Background())
	gdone := make(chan struct{})
	go func() {
		defer close(gdone)
		_ = gsrv.Serve(gctx)
	}()
	defer func() {
		gcancel()
		<-gdone
	}()

	client := &beacon.Client{CollectorURL: gsrv.BeaconURL()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := beacon.Payload{
			CampaignID: "bench",
			CreativeID: "cr",
			PageURL:    "http://pub.es/p",
			UserAgent:  "Mozilla/5.0 Chrome/49.0",
			Nonce:      fmt.Sprintf("bench-%08d", i),
		}
		sess, err := client.Open(ctx, p)
		if err != nil {
			b.Fatal(err)
		}
		if err := sess.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	// The gateway acks from its spill buffer; wait for every commit to
	// land in the collector so the bench accounts the real work.
	deadline := time.Now().Add(30 * time.Second)
	for st.Len() < b.N && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if st.Len() < b.N {
		b.Fatalf("only %d/%d commits reached the collector", st.Len(), b.N)
	}
}
