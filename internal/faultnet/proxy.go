package faultnet

import (
	"fmt"
	"io"
	"net"
	"sync"
)

// Proxy is a chaos TCP proxy: it accepts client connections, applies a
// fault Plan to the client side, and relays bytes to a fixed upstream
// address. Parking one between a beacon fleet and the collector makes
// an entire campaign flow through injected kills, resets and torn
// writes without either endpoint knowing — both just see a misbehaving
// network, which is the point.
type Proxy struct {
	plan     *Plan
	upstream string
	ln       net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewProxy listens on listenAddr (host:port; port 0 picks a free port)
// and relays every connection to upstream through plan's faults. The
// proxy serves until Close.
func NewProxy(listenAddr, upstream string, plan *Plan) (*Proxy, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("faultnet: proxy listening on %s: %w", listenAddr, err)
	}
	p := &Proxy{
		plan:     plan,
		upstream: upstream,
		ln:       ln,
		conns:    map[net.Conn]struct{}{},
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address.
func (p *Proxy) Addr() net.Addr { return p.ln.Addr() }

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		nc, err := p.ln.Accept()
		if err != nil {
			return
		}
		client := p.plan.Wrap(nc)
		server, err := net.Dial("tcp", p.upstream)
		if err != nil {
			_ = client.Close()
			continue
		}
		if !p.track(client, server) {
			_ = client.Close()
			_ = server.Close()
			return
		}
		p.wg.Add(1)
		go p.relay(client, server)
	}
}

func (p *Proxy) track(cs ...net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	for _, c := range cs {
		p.conns[c] = struct{}{}
	}
	return true
}

func (p *Proxy) untrack(cs ...net.Conn) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range cs {
		delete(p.conns, c)
	}
}

// relay copies both directions until either side dies, then tears both
// down — a fault on the client leg severs the upstream leg too, so the
// collector sees the abnormal close the fault simulates.
func (p *Proxy) relay(client, server net.Conn) {
	defer p.wg.Done()
	defer p.untrack(client, server)
	done := make(chan struct{}, 2)
	pipe := func(dst, src net.Conn) {
		_, _ = io.Copy(dst, src)
		done <- struct{}{}
	}
	go pipe(server, client)
	go pipe(client, server)
	<-done
	_ = client.Close()
	_ = server.Close()
	<-done
}

// Close stops accepting and severs every in-flight relay.
func (p *Proxy) Close() error {
	p.mu.Lock()
	p.closed = true
	for c := range p.conns {
		_ = c.Close()
	}
	p.mu.Unlock()
	err := p.ln.Close()
	p.wg.Wait()
	return err
}
