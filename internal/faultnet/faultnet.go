// Package faultnet is a deterministic fault-injection layer for TCP
// connections: a net.Conn / net.Listener wrapper that adds latency,
// throttles bandwidth, tears writes, truncates bytes, injects resets
// and kills connections mid-session — the conditions live ad-beacon
// traffic produces (flaky mobile links, NAT timeouts, browsers killed
// mid-exposure) and the reason the paper's §4.1 measurement-loss model
// exists at all.
//
// Every stochastic decision draws from a stats.RNG seeded from the
// Plan's seed and a per-connection sequence number, so a chaos run
// replays bit-for-bit: the same seed produces the same kills, the same
// resets, the same torn writes. Hot paths pay nothing when a fault
// class is disabled (probability zero, duration zero).
//
// The package plugs in at three points without touching production
// code: a Dialer-compatible NetDial for the beacon client, a Listener
// wrapper for the collector, and a standalone TCP Proxy (proxy.go) that
// chaos tests park between the two.
package faultnet

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"adaudit/internal/stats"
)

// ErrInjectedReset is the error surfaced by reads and writes on a
// connection the plan reset or killed. It reports Timeout() == false so
// callers classify it like a real peer reset, not a deadline.
var ErrInjectedReset = errors.New("faultnet: connection reset by fault plan")

// Plan describes which faults to inject and how hard. The zero value
// injects nothing and wraps at (almost) zero cost. Probabilities are
// per operation (one Read or Write call); durations and byte counts are
// drawn uniformly between the base value and base+jitter.
type Plan struct {
	// Seed drives every random decision. Two runs with equal seeds and
	// equal traffic see identical faults.
	Seed int64

	// Latency is added to every Read and Write; LatencyJitter adds a
	// uniform random extra on top.
	Latency       time.Duration
	LatencyJitter time.Duration

	// BytesPerSecond throttles throughput per direction per connection
	// (0 = unlimited). Implemented as a sleep proportional to the bytes
	// moved, so large frames take realistically long on the wire.
	BytesPerSecond int

	// SlowLinkProb is the probability a wrapped connection is a slow
	// link for its whole lifetime: its byte rate is capped at a seeded
	// per-connection draw from [SlowLinkBytesPerSecond/2,
	// SlowLinkBytesPerSecond]. Unlike BytesPerSecond (a uniform cap on
	// every connection), a slow link models the long tail of throttled
	// mobile paths: most connections run clean while an unlucky few
	// crawl, which is what actually exercises per-session backpressure
	// upstream. When both caps apply the tighter one wins.
	SlowLinkProb           float64
	SlowLinkBytesPerSecond int

	// PartialWriteProb is the probability a Write delivers only a
	// prefix of its buffer and then fails with ErrInjectedReset — the
	// torn write a connection dying mid-frame produces.
	PartialWriteProb float64

	// TruncateProb is the probability a Write silently drops its tail
	// bytes while reporting full success — bytes lost in transit that
	// the sender never learns about. The peer sees a truncated stream.
	TruncateProb float64

	// ResetReadProb / ResetWriteProb are the per-operation probabilities
	// of an immediate connection reset before any bytes move.
	ResetReadProb  float64
	ResetWriteProb float64

	// KillAfter schedules a hard mid-session kill: the transport is
	// closed KillAfter (+ uniform KillJitter) after the connection is
	// wrapped, whatever the endpoints are doing. Zero disables.
	KillAfter  time.Duration
	KillJitter time.Duration

	// conns numbers wrapped connections so each gets an independent,
	// reproducible RNG stream.
	conns atomic.Uint64

	// Fault counters, for tests asserting a chaos run actually bit.
	Resets        atomic.Uint64
	Kills         atomic.Uint64
	PartialWrites atomic.Uint64
	Truncations   atomic.Uint64

	// SlowLinks counts connections that drew a slow-link byte-rate cap.
	// Kept out of Stats() so its four-value signature stays stable.
	SlowLinks atomic.Uint64
}

// Stats summarises the faults a plan has injected so far.
func (p *Plan) Stats() (resets, kills, partialWrites, truncations uint64) {
	return p.Resets.Load(), p.Kills.Load(), p.PartialWrites.Load(), p.Truncations.Load()
}

// Wrap returns nc with the plan's faults injected. Each call derives an
// independent deterministic RNG stream from the plan seed and the
// wrap sequence number.
func (p *Plan) Wrap(nc net.Conn) net.Conn {
	n := p.conns.Add(1)
	c := &Conn{
		Conn: nc,
		plan: p,
		rng:  stats.NewRNG(p.Seed).Fork(fmt.Sprintf("conn-%d", n)),
	}
	if p.SlowLinkProb > 0 && p.SlowLinkBytesPerSecond > 0 {
		c.draw(func(r *stats.RNG) {
			if r.Bool(p.SlowLinkProb) {
				// Draw the cap inside [ceil/2, ceil] so two same-seed
				// plans give each connection the same rate.
				ceil := p.SlowLinkBytesPerSecond
				c.byteRate = ceil - r.Intn(ceil/2+1)
				p.SlowLinks.Add(1)
			}
		})
	}
	if p.KillAfter > 0 {
		d := p.KillAfter
		if p.KillJitter > 0 {
			c.mu.Lock()
			d += time.Duration(c.rng.Int63n(int64(p.KillJitter) + 1))
			c.mu.Unlock()
		}
		c.killTimer = time.AfterFunc(d, func() {
			if c.killed.CompareAndSwap(false, true) {
				p.Kills.Add(1)
				_ = nc.Close()
			}
		})
	}
	return c
}

// Listen wraps ln so every accepted connection carries the plan's
// faults.
func (p *Plan) Listen(ln net.Listener) net.Listener {
	return &listener{Listener: ln, plan: p}
}

// NetDial is a wsproto.Dialer.NetDial-compatible dial that applies the
// plan to the outbound connection.
func (p *Plan) NetDial(ctx context.Context, network, addr string) (net.Conn, error) {
	var d net.Dialer
	nc, err := d.DialContext(ctx, network, addr)
	if err != nil {
		return nil, err
	}
	return p.Wrap(nc), nil
}

type listener struct {
	net.Listener
	plan *Plan
}

func (l *listener) Accept() (net.Conn, error) {
	nc, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.plan.Wrap(nc), nil
}

// resetError wraps ErrInjectedReset as a net.Error so error-classifying
// code (e.g. the collector's close-reason mapping) treats it like a
// genuine peer reset rather than a timeout.
type resetError struct{}

func (resetError) Error() string   { return ErrInjectedReset.Error() }
func (resetError) Unwrap() error   { return ErrInjectedReset }
func (resetError) Timeout() bool   { return false }
func (resetError) Temporary() bool { return false }

var _ net.Error = resetError{}

// Conn is a net.Conn with a fault plan attached. Reads and writes may
// be delayed, torn, truncated or reset according to the plan.
type Conn struct {
	net.Conn
	plan *Plan

	// mu guards rng: the read and write sides run on different
	// goroutines but stats.RNG is single-stream.
	mu  sync.Mutex
	rng *stats.RNG

	killed    atomic.Bool
	killTimer *time.Timer

	// byteRate is this connection's slow-link cap in bytes/second, drawn
	// once at Wrap time; 0 means the connection did not draw a slow link.
	byteRate int
}

// draw runs fn under the RNG lock; kept tiny so the lock never spans a
// sleep or an I/O call.
func (c *Conn) draw(fn func(r *stats.RNG)) {
	c.mu.Lock()
	fn(c.rng)
	c.mu.Unlock()
}

// delay sleeps for the plan's latency plus the bandwidth cost of moving
// n bytes.
func (c *Conn) delay(n int) {
	p := c.plan
	d := p.Latency
	if p.LatencyJitter > 0 {
		c.draw(func(r *stats.RNG) { d += time.Duration(r.Int63n(int64(p.LatencyJitter) + 1)) })
	}
	rate := p.BytesPerSecond
	if c.byteRate > 0 && (rate == 0 || c.byteRate < rate) {
		rate = c.byteRate
	}
	if rate > 0 && n > 0 {
		d += time.Duration(float64(n) / float64(rate) * float64(time.Second))
	}
	if d > 0 {
		time.Sleep(d)
	}
}

func (c *Conn) reset() error {
	c.plan.Resets.Add(1)
	c.killed.Store(true)
	_ = c.Conn.Close()
	return resetError{}
}

// Read applies latency and throttling to the bytes read and may inject
// a reset before any bytes move.
func (c *Conn) Read(b []byte) (int, error) {
	if c.killed.Load() {
		return 0, resetError{}
	}
	if p := c.plan.ResetReadProb; p > 0 {
		var hit bool
		c.draw(func(r *stats.RNG) { hit = r.Bool(p) })
		if hit {
			return 0, c.reset()
		}
	}
	n, err := c.Conn.Read(b)
	c.delay(n)
	if err != nil && c.killed.Load() {
		// The kill timer closed the transport under us; report the
		// injected reset rather than "use of closed connection".
		return n, resetError{}
	}
	return n, err
}

// Write applies latency and throttling and may tear, truncate or reset
// the write.
func (c *Conn) Write(b []byte) (int, error) {
	if c.killed.Load() {
		return 0, resetError{}
	}
	p := c.plan
	var resetHit, partialHit, truncHit bool
	var cut int
	if p.ResetWriteProb > 0 || p.PartialWriteProb > 0 || p.TruncateProb > 0 {
		c.draw(func(r *stats.RNG) {
			resetHit = r.Bool(p.ResetWriteProb)
			partialHit = !resetHit && r.Bool(p.PartialWriteProb)
			truncHit = !resetHit && !partialHit && r.Bool(p.TruncateProb)
			if (partialHit || truncHit) && len(b) > 1 {
				cut = 1 + r.Intn(len(b)-1)
			}
		})
	}
	switch {
	case resetHit:
		return 0, c.reset()
	case partialHit && len(b) > 1:
		p.PartialWrites.Add(1)
		n, _ := c.Conn.Write(b[:cut])
		c.delay(n)
		c.killed.Store(true)
		_ = c.Conn.Close()
		return n, resetError{}
	case truncHit && len(b) > 1:
		p.Truncations.Add(1)
		n, err := c.Conn.Write(b[:cut])
		c.delay(n)
		if err != nil {
			return n, err
		}
		// Lie: the tail evaporated in transit but the sender sees a
		// full write, exactly like a buffer lost to a dying link.
		return len(b), nil
	}
	n, err := c.Conn.Write(b)
	c.delay(n)
	if err != nil && c.killed.Load() {
		return n, resetError{}
	}
	return n, err
}

// Close tears the connection down and cancels any scheduled kill.
func (c *Conn) Close() error {
	if c.killTimer != nil {
		c.killTimer.Stop()
	}
	return c.Conn.Close()
}
