package faultnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// tcpPair returns two ends of a loopback TCP connection.
func tcpPair(t *testing.T) (client, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	client, err = net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	t.Cleanup(func() { client.Close(); r.c.Close() })
	return client, r.c
}

func TestZeroPlanPassesTrafficThrough(t *testing.T) {
	var plan Plan
	c, s := tcpPair(t)
	fc := plan.Wrap(c)
	msg := []byte("hello collector")
	go func() {
		if _, err := fc.Write(msg); err != nil {
			t.Error(err)
		}
	}()
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(s, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, msg) {
		t.Fatalf("got %q want %q", buf, msg)
	}
	if r, k, pw, tr := plan.Stats(); r+k+pw+tr != 0 {
		t.Fatalf("zero plan injected faults: resets=%d kills=%d partial=%d trunc=%d", r, k, pw, tr)
	}
}

func TestAddedLatency(t *testing.T) {
	plan := Plan{Seed: 1, Latency: 30 * time.Millisecond}
	c, s := tcpPair(t)
	fc := plan.Wrap(c)
	go s.Write([]byte("x"))
	start := time.Now()
	if _, err := fc.Read(make([]byte, 1)); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("read returned in %v, want >= ~30ms of injected latency", d)
	}
}

func TestBandwidthThrottle(t *testing.T) {
	// 64 KiB at 256 KiB/s should take ~250ms.
	plan := Plan{Seed: 1, BytesPerSecond: 256 << 10}
	c, s := tcpPair(t)
	fc := plan.Wrap(c)
	payload := make([]byte, 64<<10)
	go io.Copy(io.Discard, s)
	start := time.Now()
	if _, err := fc.Write(payload); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 150*time.Millisecond {
		t.Fatalf("64KiB moved in %v, want >= ~250ms at 256KiB/s", d)
	}
}

func TestPartialWriteTearsConnection(t *testing.T) {
	plan := Plan{Seed: 42, PartialWriteProb: 1}
	c, s := tcpPair(t)
	fc := plan.Wrap(c)
	msg := make([]byte, 1024)
	n, err := fc.Write(msg)
	if !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("want ErrInjectedReset, got n=%d err=%v", n, err)
	}
	if n <= 0 || n >= len(msg) {
		t.Fatalf("partial write delivered %d of %d bytes, want a strict prefix", n, len(msg))
	}
	// The peer sees exactly the prefix, then EOF/reset.
	got, _ := io.ReadAll(s)
	if len(got) != n {
		t.Fatalf("peer received %d bytes, sender delivered %d", len(got), n)
	}
	if pw := plan.PartialWrites.Load(); pw != 1 {
		t.Fatalf("partial write counter = %d, want 1", pw)
	}
}

func TestTruncationLiesAboutSuccess(t *testing.T) {
	plan := Plan{Seed: 7, TruncateProb: 1}
	c, s := tcpPair(t)
	fc := plan.Wrap(c)
	msg := make([]byte, 512)
	n, err := fc.Write(msg)
	if err != nil || n != len(msg) {
		t.Fatalf("truncating write should report full success, got n=%d err=%v", n, err)
	}
	fc.Close()
	got, _ := io.ReadAll(s)
	if len(got) >= len(msg) {
		t.Fatalf("peer received %d bytes, want fewer than the %d sent", len(got), len(msg))
	}
}

func TestInjectedReset(t *testing.T) {
	plan := Plan{Seed: 3, ResetReadProb: 1}
	c, _ := tcpPair(t)
	fc := plan.Wrap(c)
	_, err := fc.Read(make([]byte, 1))
	if !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("want ErrInjectedReset, got %v", err)
	}
	var ne net.Error
	if !errors.As(err, &ne) || ne.Timeout() {
		t.Fatalf("injected reset must be a non-timeout net.Error, got %#v", err)
	}
	// Subsequent ops fail fast.
	if _, err := fc.Write([]byte("x")); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("post-reset write: want ErrInjectedReset, got %v", err)
	}
}

func TestScheduledKill(t *testing.T) {
	plan := Plan{Seed: 9, KillAfter: 20 * time.Millisecond}
	c, _ := tcpPair(t)
	fc := plan.Wrap(c)
	start := time.Now()
	_, err := fc.Read(make([]byte, 1)) // blocks until the kill fires
	if !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("want ErrInjectedReset after kill, got %v", err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("killed after %v, want >= ~20ms", d)
	}
	if k := plan.Kills.Load(); k != 1 {
		t.Fatalf("kill counter = %d, want 1", k)
	}
}

func TestDeterministicFaultSchedule(t *testing.T) {
	// Two identical plans driving identical traffic make identical
	// fault decisions — the property chaos tests rely on.
	run := func(seed int64) []int {
		plan := Plan{Seed: seed, PartialWriteProb: 0.3, TruncateProb: 0.2}
		c, s := tcpPair(t)
		go io.Copy(io.Discard, s)
		fc := plan.Wrap(c)
		// Record the delivered byte count per op: the tear position of a
		// partial write is seed-dependent, so schedules fingerprint the
		// seed.
		var outcomes []int
		for i := 0; i < 32; i++ {
			n, err := fc.Write(make([]byte, 4096))
			outcomes = append(outcomes, n)
			if err != nil {
				return outcomes
			}
		}
		return outcomes
	}
	a, b := run(11), run(11)
	if len(a) != len(b) {
		t.Fatalf("runs diverged in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at op %d: %d vs %d", i, a[i], b[i])
		}
	}
	if c := run(12); len(c) == len(a) && func() bool {
		for i := range a {
			if a[i] != c[i] {
				return false
			}
		}
		return true
	}() {
		t.Fatal("different seeds produced identical fault schedules")
	}
}

func TestProxyRelays(t *testing.T) {
	// Echo upstream.
	up, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer up.Close()
	go func() {
		for {
			c, err := up.Accept()
			if err != nil {
				return
			}
			go func() { io.Copy(c, c); c.Close() }()
		}
	}()

	var plan Plan
	px, err := NewProxy("127.0.0.1:0", up.Addr().String(), &plan)
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()

	c, err := net.Dial("tcp", px.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	msg := []byte("through the proxy")
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, msg) {
		t.Fatalf("echo mismatch: %q", buf)
	}
}

func TestProxyKillSeversBothSides(t *testing.T) {
	up, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer up.Close()
	serverSaw := make(chan error, 1)
	go func() {
		c, err := up.Accept()
		if err != nil {
			return
		}
		_, err = io.ReadAll(c) // blocks until the relay severs it
		serverSaw <- err
		c.Close()
	}()

	plan := Plan{Seed: 5, KillAfter: 30 * time.Millisecond}
	px, err := NewProxy("127.0.0.1:0", up.Addr().String(), &plan)
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()

	c, err := net.Dial("tcp", px.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("hold")); err != nil {
		t.Fatal(err)
	}
	// The client's read fails once the kill fires...
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("client read survived the kill")
	}
	// ...and the upstream leg is severed too (ReadAll returns).
	select {
	case <-serverSaw:
	case <-time.After(2 * time.Second):
		t.Fatal("upstream leg not severed within 2s of the kill")
	}
	if plan.Kills.Load() == 0 {
		t.Fatal("kill never fired")
	}
}

func TestSlowLinkThrottlesDrawnConnections(t *testing.T) {
	// With probability 1 every connection draws a cap in
	// [ceil/2, ceil]; 32 KiB at <= 128 KiB/s takes >= 250ms.
	plan := Plan{Seed: 7, SlowLinkProb: 1, SlowLinkBytesPerSecond: 128 << 10}
	c, s := tcpPair(t)
	fc := plan.Wrap(c)
	if got := fc.(*Conn).byteRate; got < 64<<10 || got > 128<<10 {
		t.Fatalf("drawn byte rate %d outside [%d, %d]", got, 64<<10, 128<<10)
	}
	go io.Copy(io.Discard, s)
	start := time.Now()
	if _, err := fc.Write(make([]byte, 32<<10)); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 200*time.Millisecond {
		t.Fatalf("32KiB moved in %v, want >= ~250ms on a <=128KiB/s slow link", d)
	}
	if n := plan.SlowLinks.Load(); n != 1 {
		t.Fatalf("slow-link counter = %d, want 1", n)
	}
}

func TestSlowLinkDeterministicAcrossPlans(t *testing.T) {
	// Two same-seed plans hand identical per-connection rates to the
	// same wrap sequence; a different seed diverges somewhere.
	rates := func(seed int64) []int {
		plan := Plan{Seed: seed, SlowLinkProb: 0.5, SlowLinkBytesPerSecond: 100_000}
		var out []int
		for i := 0; i < 16; i++ {
			c, s := tcpPair(t)
			fc := plan.Wrap(c)
			out = append(out, fc.(*Conn).byteRate)
			fc.Close()
			s.Close()
		}
		return out
	}
	a, b := rates(21), rates(21)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed plans diverged at conn %d: %d vs %d", i, a[i], b[i])
		}
	}
	drew := 0
	for _, r := range a {
		if r > 0 {
			if r < 50_000 || r > 100_000 {
				t.Fatalf("drawn rate %d outside [50000, 100000]", r)
			}
			drew++
		}
	}
	if drew == 0 || drew == len(a) {
		t.Fatalf("SlowLinkProb=0.5 drew %d/%d slow links, want a mix", drew, len(a))
	}
	c := rates(22)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical slow-link draws")
	}
}

func TestSlowLinkTighterCapWins(t *testing.T) {
	// A plan-wide 512 KiB/s cap plus a guaranteed ~64-128 KiB/s slow
	// link: the slow link dominates.
	plan := Plan{Seed: 3, BytesPerSecond: 512 << 10, SlowLinkProb: 1, SlowLinkBytesPerSecond: 128 << 10}
	c, s := tcpPair(t)
	fc := plan.Wrap(c)
	go io.Copy(io.Discard, s)
	start := time.Now()
	if _, err := fc.Write(make([]byte, 32<<10)); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 200*time.Millisecond {
		t.Fatalf("32KiB moved in %v under the looser plan cap, want the slow link to dominate", d)
	}
}
