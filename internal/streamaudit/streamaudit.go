// Package streamaudit is the streaming counterpart of internal/audit:
// an engine that subscribes to the store's change feed and maintains
// every per-campaign audit dimension incrementally — brand-safety
// publisher sets, contextual per-publisher impression counts,
// popularity rank observations, viewability counters and exposure
// samples, frequency-cap timestamp groups, and data-center fraud
// counters — in O(delta) work per mutation instead of a full-store
// rescan per query.
//
// The headline contract, enforced by the unit tests and the simtest
// oracle: at quiescence (every published feed event applied),
// Engine.Report is deep-equal to Auditor.FullAudit over the same store
// and the same campaign inputs. The engine achieves that not by
// approximating the batch path but by sharing its materialization code
// (audit.BrandSafetyFromSets, audit.PopularityFromRanks,
// audit.FraudFromState, audit.FrequencyFromTimes) over incrementally
// maintained state, and by keeping per-campaign exposure samples in
// store insertion order so even float summation order matches.
//
// Recovery follows the feed's drop-then-resync policy: a consumer the
// bus evicted (or an out-of-order delta, which cannot happen unless
// state was lost) discards its aggregates and re-subscribes, rebuilding
// from the consistent snapshot prime. Resyncs are counted, never
// wrong — only slower.
package streamaudit

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"adaudit/internal/adnet"
	"adaudit/internal/audit"
	"adaudit/internal/semsim"
	"adaudit/internal/store"
	"adaudit/internal/telemetry"
	"adaudit/internal/trace"
)

// Config configures an Engine.
type Config struct {
	// Store is the impression database to follow. Required.
	Store *store.Store
	// Meta resolves publisher metadata (rank, keywords, topics, brand
	// safety). Required — the popularity and context dimensions need
	// it, exactly as audit.Auditor does.
	Meta audit.MetadataSource
	// Matcher decides contextual relevance; nil selects the default
	// Leacock–Chodorow matcher over the default taxonomy, matching
	// audit.New.
	Matcher *semsim.Matcher
	// Buffer is the change-feed buffer size (store.DefaultFeedBuffer
	// when <= 0). A smaller buffer trades memory for resync frequency,
	// never correctness.
	Buffer int
	// Keywords optionally maps campaign ID to targeting keywords for
	// the live per-campaign view; Report-path callers pass keywords
	// explicitly per call.
	Keywords map[string][]string
	// Reports optionally maps campaign ID to the vendor report used by
	// the live per-campaign view. Campaigns without one are audited
	// against an empty report (vendor-side numbers all zero).
	Reports map[string]*adnet.VendorReport
	// Sellers resolves the declared-seller state for the adversarial
	// dimensions; nil uses the simulated ecosystem's registry, matching
	// audit.Auditor's default.
	Sellers audit.SellerDirectory
	// Telemetry registers the engine's instruments when non-nil.
	Telemetry *telemetry.Registry
}

// Engine consumes the store change feed and serves incremental audit
// views. All exported methods are safe for concurrent use.
type Engine struct {
	store    *store.Store
	meta     audit.MetadataSource
	matcher  *semsim.Matcher
	buffer   int
	keywords map[string][]string
	reports  map[string]*adnet.VendorReport
	sellers  audit.SellerDirectory

	// mu guards st, sub and metaMemo. appliedSeq/resyncs are atomics
	// so monitoring reads never contend with apply.
	mu       sync.Mutex
	st       *state
	sub      *store.FeedSub
	metaMemo map[string]metaEntry

	appliedSeq atomic.Int64
	resyncs    atomic.Int64

	// lastPub is the PublishedAt stamp (unix nanos) of the last applied
	// feed event; attachedAt is when the engine last (re)subscribed.
	// Together they bound the age of the oldest unapplied event for the
	// freshness SLO without peeking into the feed buffer.
	lastPub    atomic.Int64
	attachedAt atomic.Int64

	lmu       sync.Mutex
	listeners map[*Updates]struct{}

	tel engineTelemetry
}

type metaEntry struct {
	meta audit.PublisherMeta
	ok   bool
}

// New builds an engine and attaches it to the store's change feed,
// priming its state from a consistent snapshot of the current
// contents. The engine is queryable immediately; call Drain or Run to
// keep consuming deltas.
func New(cfg Config) (*Engine, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("streamaudit: engine requires a store")
	}
	if cfg.Meta == nil {
		return nil, fmt.Errorf("streamaudit: engine requires a metadata source")
	}
	m := cfg.Matcher
	if m == nil {
		m = semsim.NewMatcher(semsim.DefaultTaxonomy())
	}
	sellers := cfg.Sellers
	if sellers == nil {
		sellers = adnet.SellerRegistry{}
	}
	e := &Engine{
		store:     cfg.Store,
		meta:      cfg.Meta,
		matcher:   m,
		buffer:    cfg.Buffer,
		keywords:  cfg.Keywords,
		reports:   cfg.Reports,
		sellers:   sellers,
		metaMemo:  map[string]metaEntry{},
		listeners: map[*Updates]struct{}{},
	}
	e.tel.init(cfg.Telemetry, e)
	e.mu.Lock()
	e.attachLocked()
	e.mu.Unlock()
	return e, nil
}

// lookupMeta memoizes publisher-metadata lookups; the memo survives
// resyncs (metadata is immutable for the life of the engine).
// Callers hold e.mu.
func (e *Engine) lookupMeta(pub string) (audit.PublisherMeta, bool) {
	if ent, ok := e.metaMemo[pub]; ok {
		return ent.meta, ent.ok
	}
	meta, ok := e.meta.PublisherMeta(pub)
	e.metaMemo[pub] = metaEntry{meta, ok}
	return meta, ok
}

// attachLocked (re)subscribes to the feed and rebuilds state from the
// snapshot prime. Caller holds e.mu.
func (e *Engine) attachLocked() {
	st := newState()
	e.st = st
	// The prime callbacks run under the store's read locks; they only
	// touch engine state (also safe: e.mu is held).
	e.sub = e.store.Subscribe(e.buffer,
		func(im *store.Impression) { st.applyInsert(e, im) },
		func(c *store.Conversion) { st.applyConversion(c) })
	e.appliedSeq.Store(e.sub.StartSeq())
	e.attachedAt.Store(time.Now().UnixNano())
}

// resyncLocked implements drop-then-resync: close the old
// subscription (a no-op if the bus already dropped it), rebuild from a
// fresh snapshot, count it. Caller holds e.mu.
func (e *Engine) resyncLocked(dirty map[string]struct{}) {
	if e.sub != nil {
		e.sub.Close()
	}
	e.attachLocked()
	e.resyncs.Add(1)
	e.tel.observeResync()
	// Every campaign may have changed from the listeners' perspective.
	for id := range e.st.campaigns {
		dirty[id] = struct{}{}
	}
}

// applyLocked applies one feed event. A sequence gap or a merge for an
// unknown record means the consumer's state no longer matches the
// feed; the caller must resync. Caller holds e.mu.
func (e *Engine) applyLocked(ev *store.FeedEvent, dirty map[string]struct{}) error {
	if want := e.appliedSeq.Load() + 1; ev.Seq != want {
		return fmt.Errorf("streamaudit: feed gap: got seq %d, want %d", ev.Seq, want)
	}
	switch ev.Kind {
	case store.FeedInsert:
		e.st.applyInsert(e, &ev.Im)
		dirty[ev.Im.CampaignID] = struct{}{}
	case store.FeedMerge:
		if err := e.st.applyMerge(e, ev); err != nil {
			return err
		}
		dirty[ev.Im.CampaignID] = struct{}{}
	case store.FeedConversion:
		e.st.applyConversion(&ev.Conv)
		dirty[ev.Conv.CampaignID] = struct{}{}
	default:
		return fmt.Errorf("streamaudit: unknown feed event kind %v", ev.Kind)
	}
	e.appliedSeq.Store(ev.Seq)
	if ev.PublishedAt > 0 {
		e.lastPub.Store(ev.PublishedAt)
	}
	e.tel.observeEvent()
	// Apply is the trace's terminal stage: stamp it, record the
	// commit→apply freshness observation (with the trace as the
	// histogram exemplar), then finish — idempotent, so a second
	// subscriber finishing the same trace is harmless.
	ev.Trace.Stage(trace.StageApply)
	e.tel.observeFreshness(ev)
	ev.Trace.Finish()
	return nil
}

// Drain synchronously applies every buffered feed event, resyncing if
// the subscription was dropped, and returns how many events it applied
// plus whether a resync happened. This is the deterministic
// consumption mode the simulation harness checkpoints use; live
// deployments run Run instead.
func (e *Engine) Drain() (applied int, resynced bool) {
	if e.store == nil {
		return 0, false // static engine (NewStatic): no feed to drain
	}
	dirty := map[string]struct{}{}
	e.mu.Lock()
	for {
		select {
		case ev, ok := <-e.sub.Events():
			if !ok {
				e.resyncLocked(dirty)
				resynced = true
				continue
			}
			if err := e.applyLocked(&ev, dirty); err != nil {
				e.resyncLocked(dirty)
				resynced = true
				continue
			}
			applied++
		default:
			e.mu.Unlock()
			e.notify(dirty)
			return applied, resynced
		}
	}
}

// Run consumes the feed until ctx is cancelled, resyncing from
// snapshot whenever the bus drops the subscription. On cancellation it
// drains whatever is already buffered before returning, so a graceful
// shutdown ends with the engine caught up to the last pre-shutdown
// mutation.
func (e *Engine) Run(ctx context.Context) {
	if e.store == nil {
		return // static engine (NewStatic): no feed to consume
	}
	for {
		e.mu.Lock()
		sub := e.sub
		e.mu.Unlock()
		select {
		case <-ctx.Done():
			e.Drain()
			return
		case ev, ok := <-sub.Events():
			dirty := map[string]struct{}{}
			e.mu.Lock()
			if !ok {
				e.resyncLocked(dirty)
			} else if err := e.applyLocked(&ev, dirty); err != nil {
				e.resyncLocked(dirty)
			} else {
				// Batch whatever else is already buffered under one
				// lock hold, then notify once.
			batch:
				for {
					select {
					case ev2, ok2 := <-e.sub.Events():
						if !ok2 {
							e.resyncLocked(dirty)
							break batch
						}
						if err := e.applyLocked(&ev2, dirty); err != nil {
							e.resyncLocked(dirty)
							break batch
						}
					default:
						break batch
					}
				}
			}
			e.mu.Unlock()
			e.notify(dirty)
		}
	}
}

// Applied returns the feed sequence number of the last applied event
// (or the snapshot cut after an attach/resync).
func (e *Engine) Applied() int64 { return e.appliedSeq.Load() }

// Resyncs returns how many times the engine rebuilt from snapshot.
func (e *Engine) Resyncs() int64 { return e.resyncs.Load() }

// CaughtUp reports whether the engine has applied every mutation
// published so far.
func (e *Engine) CaughtUp() bool {
	if e.store == nil {
		return true // static engine: frozen at the export cut
	}
	return e.Applied() >= e.store.FeedSeq()
}

// Staleness returns how far behind the feed the engine is in wall
// time: zero when caught up, otherwise the time elapsed since the
// last applied event's publish stamp (or since the engine attached,
// if nothing was applied yet). It upper-bounds the age of the oldest
// unapplied event — the audit-freshness signal /healthz checks.
func (e *Engine) Staleness() time.Duration {
	if e.CaughtUp() {
		return 0
	}
	since := e.lastPub.Load()
	if at := e.attachedAt.Load(); at > since {
		since = at
	}
	if since == 0 {
		return 0
	}
	d := time.Duration(time.Now().UnixNano() - since)
	if d < 0 {
		return 0
	}
	return d
}

// WaitCaughtUp polls until the engine catches up with the feed or the
// timeout expires — the quiescence barrier tests and shutdown paths
// use around a concurrently Running engine.
func (e *Engine) WaitCaughtUp(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		if e.CaughtUp() {
			return true
		}
		if time.Now().After(deadline) {
			return e.CaughtUp()
		}
		time.Sleep(time.Millisecond)
	}
}

// Updates is a coalescing change notification: listeners learn which
// campaigns changed since they last looked, without the engine ever
// blocking on them (the signal channel has capacity one and the dirty
// set is bounded by the campaign count).
type Updates struct {
	mu    sync.Mutex
	dirty map[string]struct{}
	sig   chan struct{}
}

// Listen registers a listener. Pair with Unlisten.
func (e *Engine) Listen() *Updates {
	u := &Updates{dirty: map[string]struct{}{}, sig: make(chan struct{}, 1)}
	e.lmu.Lock()
	e.listeners[u] = struct{}{}
	e.lmu.Unlock()
	return u
}

// Unlisten removes a listener.
func (e *Engine) Unlisten(u *Updates) {
	e.lmu.Lock()
	delete(e.listeners, u)
	e.lmu.Unlock()
}

// C signals when at least one campaign turned dirty.
func (u *Updates) C() <-chan struct{} { return u.sig }

// Take drains and returns the dirty campaign set, sorted.
func (u *Updates) Take() []string {
	u.mu.Lock()
	defer u.mu.Unlock()
	out := make([]string, 0, len(u.dirty))
	for c := range u.dirty {
		out = append(out, c)
		delete(u.dirty, c)
	}
	sort.Strings(out)
	return out
}

// notify marks the campaigns dirty on every listener.
func (e *Engine) notify(dirty map[string]struct{}) {
	if len(dirty) == 0 {
		return
	}
	e.lmu.Lock()
	for u := range e.listeners {
		u.mu.Lock()
		for c := range dirty {
			u.dirty[c] = struct{}{}
		}
		u.mu.Unlock()
		select {
		case u.sig <- struct{}{}:
		default:
		}
	}
	e.lmu.Unlock()
}
