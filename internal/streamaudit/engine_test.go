package streamaudit

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"adaudit/internal/adnet"
	"adaudit/internal/audit"
	"adaudit/internal/publisher"
	"adaudit/internal/store"
)

// testWorld is a seeded synthetic workload: a publisher universe for
// metadata, a store, and the campaign inputs (keywords + synthesized
// vendor reports) both audit paths are queried with.
type testWorld struct {
	uni    *publisher.Universe
	meta   audit.MetadataSource
	st     *store.Store
	inputs []audit.CampaignInput
}

var testCampaigns = []string{"camp-alpha", "camp-beta", "camp-gamma"}

var testVerdicts = []string{
	"", "", "", "not-data-center", "not-data-center",
	"vpn-exception", "provider-db", "deny-list", "manual",
}

func newTestWorld(t testing.TB, seed int64) *testWorld {
	t.Helper()
	uni, err := publisher.NewUniverse(publisher.Config{Seed: seed, NumPublishers: 120})
	if err != nil {
		t.Fatalf("NewUniverse: %v", err)
	}
	w := &testWorld{
		uni:  uni,
		meta: audit.UniverseMetadata{Universe: uni},
		st:   store.New(),
	}
	return w
}

// impression fabricates one valid record. Exposures use raw nanosecond
// values so the order-sensitive float mean is actually stressed, and a
// slice of publishers falls outside the universe (unknown metadata).
func (w *testWorld) impression(rng *rand.Rand, campaign string) store.Impression {
	var pub string
	if rng.Intn(10) == 0 {
		pub = fmt.Sprintf("offgrid%d.example", rng.Intn(5))
	} else {
		pub = w.uni.At(rng.Intn(w.uni.Len())).Domain
	}
	im := store.Impression{
		CampaignID:  campaign,
		CreativeID:  "cr-1",
		Publisher:   pub,
		UserKey:     fmt.Sprintf("user-%d", rng.Intn(40)),
		IPPseudonym: fmt.Sprintf("ip-%d", rng.Intn(30)),
		UserAgent:   "test-agent",
		DataCenter:  testVerdicts[rng.Intn(len(testVerdicts))],
		Timestamp:   time.Unix(1700000000, 0).Add(time.Duration(rng.Intn(86400)) * time.Second),
		Exposure:    time.Duration(rng.Int63n(int64(3 * time.Second))),
		MouseMoves:  rng.Intn(4),
		Clicks:      rng.Intn(2),
	}
	if rng.Intn(3) == 0 {
		im.VisibilityMeasured = true
		im.MaxVisibleFraction = rng.Float64()
	}
	return im
}

// populate inserts n impressions (returning their IDs), merges
// continuations into a fraction of them, and records a few conversions.
func (w *testWorld) populate(t testing.TB, rng *rand.Rand, n int) []int64 {
	t.Helper()
	ids := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		campaign := testCampaigns[rng.Intn(len(testCampaigns))]
		id, err := w.st.Insert(w.impression(rng, campaign))
		if err != nil {
			t.Fatalf("Insert: %v", err)
		}
		ids = append(ids, id)
		if rng.Intn(4) == 0 {
			cont := store.Continuation{
				Exposure:   time.Duration(rng.Int63n(int64(2 * time.Second))),
				MouseMoves: rng.Intn(3),
				Clicks:     rng.Intn(2),
			}
			if rng.Intn(2) == 0 {
				cont.VisibilityMeasured = true
				cont.MaxVisibleFraction = rng.Float64()
			}
			if err := w.st.Merge(ids[rng.Intn(len(ids))], cont); err != nil {
				t.Fatalf("Merge: %v", err)
			}
		}
		if rng.Intn(10) == 0 {
			_, err := w.st.InsertConversion(store.Conversion{
				CampaignID: campaign,
				UserKey:    fmt.Sprintf("user-%d", rng.Intn(40)),
				Action:     "purchase",
				ValueCents: int64(rng.Intn(5000)),
				Timestamp:  time.Unix(1700000000, 0).Add(time.Duration(rng.Intn(86400)) * time.Second),
			})
			if err != nil {
				t.Fatalf("InsertConversion: %v", err)
			}
		}
	}
	return ids
}

// buildInputs synthesizes per-campaign vendor reports from the store
// contents, the way the simulation oracle does: rows for a subset of
// the audited publishers (so the Venn has all three regions), an
// anonymous-inventory row, and a vendor-only phantom publisher. It also
// appends a campaign the store never saw, to pin down empty-campaign
// parity between the two audit paths.
func (w *testWorld) buildInputs(rng *rand.Rand) {
	w.inputs = nil
	for _, c := range testCampaigns {
		pubs := w.st.Publishers(c)
		sort.Strings(pubs)
		rep := &adnet.VendorReport{CampaignID: c}
		for i, p := range pubs {
			if i%3 == 2 { // audit-only region
				continue
			}
			rep.Rows = append(rep.Rows, adnet.ReportRow{
				Publisher:   p,
				Impressions: int64(1 + rng.Intn(50)),
				Clicks:      int64(rng.Intn(5)),
			})
		}
		rep.Rows = append(rep.Rows,
			adnet.ReportRow{Publisher: adnet.AnonymousPublisher, Impressions: int64(10 + rng.Intn(90))},
			adnet.ReportRow{Publisher: "vendoronly.example", Impressions: 7},
		)
		for _, r := range rep.Rows {
			rep.TotalImpressionsCharged += r.Impressions
		}
		rep.ContextualImpressions = rep.TotalImpressionsCharged * 2 / 3
		rep.RefundedImpressions = rep.TotalImpressionsCharged / 10
		kw := w.keywordsFor(c)
		w.inputs = append(w.inputs, audit.CampaignInput{ID: c, Keywords: kw, Report: rep})
	}
	w.inputs = append(w.inputs, audit.CampaignInput{
		ID:       "camp-ghost",
		Keywords: []string{"phantom"},
		Report:   &adnet.VendorReport{CampaignID: "camp-ghost"},
	})
}

// keywordsFor returns targeting keywords that actually match part of
// the universe (drawn from real publisher keyword lists) plus one that
// matches nothing.
func (w *testWorld) keywordsFor(campaign string) []string {
	h := 0
	for _, b := range campaign {
		h = h*31 + int(b)
	}
	kws := []string{"zzz-nomatch"}
	for i := 0; i < 3; i++ {
		p := w.uni.At((h + i*17) % w.uni.Len())
		if len(p.Keywords) > 0 {
			kws = append(kws, p.Keywords[0])
		}
	}
	return kws
}

func (w *testWorld) auditor(t testing.TB) *audit.Auditor {
	t.Helper()
	a, err := audit.New(w.st, w.meta)
	if err != nil {
		t.Fatalf("audit.New: %v", err)
	}
	return a
}

// requireReportsEqual asserts the headline guarantee: at quiescence the
// streaming report deep-equals the batch report (serial and parallel).
func requireReportsEqual(t *testing.T, w *testWorld, e *Engine) {
	t.Helper()
	got, err := e.Report(w.inputs)
	if err != nil {
		t.Fatalf("streaming Report: %v", err)
	}
	a := w.auditor(t)
	want, err := a.FullAuditSerial(w.inputs)
	if err != nil {
		t.Fatalf("FullAuditSerial: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("streaming report != batch report\nstream: %+v\nbatch:  %+v", got, want)
	}
	par, err := a.FullAudit(w.inputs)
	if err != nil {
		t.Fatalf("FullAudit: %v", err)
	}
	if !reflect.DeepEqual(got, par) {
		t.Fatalf("streaming report != parallel batch report")
	}
}

// TestReportMatchesFullAudit is the headline contract over several
// seeds, covering both attach orders: an engine primed from a populated
// store (snapshot path) and an engine that watched every event arrive
// (delta path) must both match the batch audit exactly.
func TestReportMatchesFullAudit(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			w := newTestWorld(t, seed)
			rng := rand.New(rand.NewSource(seed))

			// Delta path: subscribe to the empty store, then mutate.
			deltaEng, err := New(Config{Store: w.st, Meta: w.meta})
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			w.populate(t, rng, 400)
			w.buildInputs(rng)
			applied, resynced := deltaEng.Drain()
			if resynced {
				t.Fatalf("delta engine resynced; buffer should have held the workload")
			}
			if applied == 0 {
				t.Fatalf("delta engine applied no events")
			}
			if !deltaEng.CaughtUp() {
				t.Fatalf("delta engine not caught up after Drain")
			}
			requireReportsEqual(t, w, deltaEng)

			// Snapshot path: a fresh engine primes from current contents.
			snapEng, err := New(Config{Store: w.st, Meta: w.meta})
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			requireReportsEqual(t, w, snapEng)

			// Mixed path: more mutations on top of the snapshot prime.
			w.populate(t, rng, 150)
			w.buildInputs(rng)
			snapEng.Drain()
			deltaEng.Drain()
			requireReportsEqual(t, w, snapEng)
			requireReportsEqual(t, w, deltaEng)
		})
	}
}

// TestReportNilVendorReport pins the error contract to the batch path's.
func TestReportNilVendorReport(t *testing.T) {
	w := newTestWorld(t, 1)
	e, err := New(Config{Store: w.st, Meta: w.meta})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	_, gotErr := e.Report([]audit.CampaignInput{{ID: "c1"}})
	_, wantErr := w.auditor(t).FullAuditSerial([]audit.CampaignInput{{ID: "c1"}})
	if gotErr == nil || wantErr == nil {
		t.Fatalf("expected errors, got stream=%v batch=%v", gotErr, wantErr)
	}
	if gotErr.Error() != wantErr.Error() {
		t.Fatalf("error mismatch: stream %q, batch %q", gotErr, wantErr)
	}
}

// TestSlowConsumerResyncConverges stalls an engine behind a tiny feed
// buffer until the bus drops it, then verifies the drop-then-resync
// path: the engine notices, rebuilds from snapshot, and its report
// still deep-equals the batch audit.
func TestSlowConsumerResyncConverges(t *testing.T) {
	w := newTestWorld(t, 7)
	rng := rand.New(rand.NewSource(7))
	e, err := New(Config{Store: w.st, Meta: w.meta, Buffer: 4})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Far more events than the buffer holds, with the consumer stalled.
	w.populate(t, rng, 200)
	w.buildInputs(rng)

	_, resynced := e.Drain()
	if !resynced {
		t.Fatalf("engine was not dropped despite buffer overflow")
	}
	if e.Resyncs() == 0 {
		t.Fatalf("Resyncs() = 0 after drop")
	}
	if !e.CaughtUp() {
		t.Fatalf("engine not caught up after resync")
	}
	requireReportsEqual(t, w, e)

	// The resynced subscription keeps working for subsequent deltas.
	w.populate(t, rng, 3)
	w.buildInputs(rng)
	e.Drain()
	requireReportsEqual(t, w, e)
}

// TestRunConcurrentWithWriters exercises Run-mode consumption under
// concurrent writers (the -race configuration the check script runs):
// after the writers finish and the engine catches up, the report must
// match the batch audit, regardless of how many resyncs happened along
// the way.
func TestRunConcurrentWithWriters(t *testing.T) {
	w := newTestWorld(t, 11)
	e, err := New(Config{Store: w.st, Meta: w.meta, Buffer: 64})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var engDone sync.WaitGroup
	engDone.Add(1)
	go func() {
		defer engDone.Done()
		e.Run(ctx)
	}()

	u := e.Listen()
	defer e.Unlisten(u)

	var wg sync.WaitGroup
	for wtr := 0; wtr < 4; wtr++ {
		wtr := wtr
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(100 + int64(wtr)))
			ids := make([]int64, 0, 100)
			for i := 0; i < 100; i++ {
				campaign := testCampaigns[(wtr+i)%len(testCampaigns)]
				id, err := w.st.Insert(w.impression(rng, campaign))
				if err != nil {
					t.Errorf("Insert: %v", err)
					return
				}
				ids = append(ids, id)
				if i%5 == 0 {
					if err := w.st.Merge(ids[rng.Intn(len(ids))], store.Continuation{
						Exposure: time.Duration(rng.Int63n(int64(time.Second))),
					}); err != nil {
						t.Errorf("Merge: %v", err)
						return
					}
				}
				// Live reads race the apply path on purpose.
				if i%25 == 0 {
					e.Summaries()
				}
			}
		}()
	}
	wg.Wait()

	if !e.WaitCaughtUp(5 * time.Second) {
		t.Fatalf("engine did not catch up: applied %d, feed %d", e.Applied(), w.st.FeedSeq())
	}
	cancel()
	engDone.Wait()

	// The coalescing listener saw dirty campaigns, not events.
	select {
	case <-u.C():
	default:
		t.Fatalf("updates listener never signalled")
	}
	if got := u.Take(); len(got) == 0 {
		t.Fatalf("updates listener had no dirty campaigns")
	}

	rng := rand.New(rand.NewSource(11))
	w.buildInputs(rng)
	requireReportsEqual(t, w, e)
}

// TestLiveViews sanity-checks the query surface the collector serves:
// summaries are sorted and internally consistent, and the per-campaign
// live audit reuses the configured report/keywords.
func TestLiveViews(t *testing.T) {
	w := newTestWorld(t, 3)
	rng := rand.New(rand.NewSource(3))
	w.populate(t, rng, 250)
	w.buildInputs(rng)

	reports := map[string]*adnet.VendorReport{}
	keywords := map[string][]string{}
	for _, in := range w.inputs {
		reports[in.ID] = in.Report
		keywords[in.ID] = in.Keywords
	}
	e, err := New(Config{Store: w.st, Meta: w.meta, Reports: reports, Keywords: keywords})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	sums := e.Summaries()
	if len(sums) != len(testCampaigns) {
		t.Fatalf("Summaries returned %d campaigns, want %d", len(sums), len(testCampaigns))
	}
	if !sort.SliceIsSorted(sums, func(i, j int) bool { return sums[i].CampaignID < sums[j].CampaignID }) {
		t.Fatalf("Summaries not sorted by campaign ID")
	}
	totalImps := 0
	for _, s := range sums {
		if s.Impressions <= 0 || s.Users <= 0 || s.Publishers <= 0 {
			t.Fatalf("degenerate summary: %+v", s)
		}
		if s.Seq != e.Applied() {
			t.Fatalf("summary seq %d != applied %d", s.Seq, e.Applied())
		}
		totalImps += s.Impressions
	}
	if totalImps != w.st.Len() {
		t.Fatalf("summaries count %d impressions, store has %d", totalImps, w.st.Len())
	}

	one, ok := e.LiveSummary(testCampaigns[0])
	if !ok || one.CampaignID != testCampaigns[0] {
		t.Fatalf("LiveSummary(%q) = %+v, %v", testCampaigns[0], one, ok)
	}
	if _, ok := e.LiveSummary("nope"); ok {
		t.Fatalf("LiveSummary of unknown campaign reported ok")
	}

	la, ok, err := e.Audit(testCampaigns[0])
	if err != nil || !ok {
		t.Fatalf("Audit: ok=%v err=%v", ok, err)
	}
	// Must equal the batch single-campaign audit against the same input.
	a := w.auditor(t)
	wantBS := a.BrandSafety(testCampaigns[0], reports[testCampaigns[0]])
	if !reflect.DeepEqual(la.Audit.BrandSafety, wantBS) {
		t.Fatalf("live audit brand safety mismatch:\n got %+v\nwant %+v", la.Audit.BrandSafety, wantBS)
	}
	if la.Summary.CampaignID != testCampaigns[0] {
		t.Fatalf("live audit summary for wrong campaign: %+v", la.Summary)
	}
	if _, ok, _ := e.Audit("nope"); ok {
		t.Fatalf("Audit of unknown campaign reported ok")
	}
}

// BenchmarkStreamApply measures deltas/sec through the incremental
// aggregators: ns/op is the cost of applying one already-published feed
// event (inserts with a 25% merge mix), excluding store insert time.
func BenchmarkStreamApply(b *testing.B) {
	w := newTestWorld(b, 42)
	rng := rand.New(rand.NewSource(42))
	const batch = 4096
	e, err := New(Config{Store: w.st, Meta: w.meta, Buffer: batch + 16})
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	var ids []int64
	b.ReportAllocs()
	b.ResetTimer()
	applied := 0
	for applied < b.N {
		n := batch
		if rem := b.N - applied; rem < n {
			n = rem
		}
		b.StopTimer()
		for i := 0; i < n; i++ {
			if i%4 == 3 && len(ids) > 0 {
				if err := w.st.Merge(ids[rng.Intn(len(ids))], store.Continuation{
					Exposure: time.Duration(rng.Int63n(int64(time.Second))),
				}); err != nil {
					b.Fatalf("Merge: %v", err)
				}
				continue
			}
			id, err := w.st.Insert(w.impression(rng, testCampaigns[i%len(testCampaigns)]))
			if err != nil {
				b.Fatalf("Insert: %v", err)
			}
			ids = append(ids, id)
		}
		b.StartTimer()
		got, resynced := e.Drain()
		if resynced {
			b.Fatalf("benchmark engine resynced; raise the buffer")
		}
		if got != n {
			b.Fatalf("Drain applied %d, want %d", got, n)
		}
		applied += n
	}
}
