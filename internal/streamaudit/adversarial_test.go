package streamaudit

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"adaudit/internal/adnet"
	"adaudit/internal/store"
)

// The adversarial parity suite: the same deep-equal-at-quiescence
// contract as TestReportMatchesFullAudit, but over workloads carrying
// the ISSUE-9 attack signatures — timer bots with degenerate behavior,
// stacked-1px placements, and vendor reports with spoofed and pooled
// seller attributions — so the three adversarial dimensions are
// exercised with non-empty results on both audit paths.

// populateAdversarial layers the attack traffic on top of the organic
// workload: per campaign, one timer bot (fixed cadence, fixed
// signature, merged identically so the merge slot-overwrite path runs)
// and one stacked-placement publisher (long exposures, 1-px visible
// fractions, one-impression users).
func (w *testWorld) populateAdversarial(t testing.TB) {
	t.Helper()
	base := time.Unix(1700050000, 0)
	for ci, c := range testCampaigns {
		botPub := w.uni.At((ci * 7) % w.uni.Len()).Domain
		botIDs := make([]int64, 0, 8)
		for k := 0; k < 8; k++ {
			id, err := w.st.Insert(store.Impression{
				CampaignID:         c,
				CreativeID:         "cr-1",
				Publisher:          botPub,
				UserKey:            fmt.Sprintf("timerbot-%d", ci),
				IPPseudonym:        fmt.Sprintf("botip-%d", ci),
				UserAgent:          "bot-agent",
				Timestamp:          base.Add(time.Duration(k) * 30 * time.Second),
				Exposure:           1500 * time.Millisecond,
				VisibilityMeasured: true,
				MaxVisibleFraction: 0.35,
			})
			if err != nil {
				t.Fatalf("Insert bot impression: %v", err)
			}
			botIDs = append(botIDs, id)
		}
		// One identical continuation per bot impression: exposures move
		// together (1.5s -> 1.75s everywhere) and the max fraction is
		// unchanged, so the signature stays degenerate after the merge.
		for _, id := range botIDs {
			if err := w.st.Merge(id, store.Continuation{
				Exposure:           250 * time.Millisecond,
				VisibilityMeasured: true,
				MaxVisibleFraction: 0.10,
			}); err != nil {
				t.Fatalf("Merge bot impression: %v", err)
			}
		}
		// Stacked placement: viewable by exposure, never on screen.
		infPub := fmt.Sprintf("stacked%d.example", ci)
		for k := 0; k < 7; k++ {
			_, err := w.st.Insert(store.Impression{
				CampaignID:         c,
				CreativeID:         "cr-1",
				Publisher:          infPub,
				UserKey:            fmt.Sprintf("stackuser-%d-%d", ci, k),
				IPPseudonym:        fmt.Sprintf("stackip-%d-%d", ci, k),
				UserAgent:          "test-agent",
				Timestamp:          base.Add(time.Duration(k) * 7 * time.Minute),
				Exposure:           2 * time.Second,
				VisibilityMeasured: true,
				MaxVisibleFraction: 0.02 + 0.005*float64(k),
			})
			if err != nil {
				t.Fatalf("Insert stacked impression: %v", err)
			}
		}
	}
}

// buildAdversarialInputs builds the vendor reports the way
// buildInputs does, then adds seller attributions: honest rows carry
// the publisher's own direct seller, one spoofed row books a premium
// publisher under another domain's seller, and a pooled seller ID
// spans publishers from five distinct owner groups.
func (w *testWorld) buildAdversarialInputs(t testing.TB, rng *rand.Rand) {
	t.Helper()
	w.buildInputs(rng)
	// Publishers spanning five distinct owner groups, for the pool rows.
	groups := map[string]bool{}
	var poolPubs []string
	for i := 0; i < w.uni.Len() && len(poolPubs) < 5; i++ {
		d := w.uni.At(i).Domain
		g := adnet.OwnerGroupOf(d)
		if !groups[g] {
			groups[g] = true
			poolPubs = append(poolPubs, d)
		}
	}
	if len(poolPubs) < 5 {
		t.Fatalf("universe spans only %d owner groups", len(poolPubs))
	}
	for _, in := range w.inputs {
		rep := in.Report
		for i := range rep.Rows {
			switch rep.Rows[i].Publisher {
			case adnet.AnonymousPublisher:
				rep.Rows[i].SellerID = adnet.ExchangeSellerID
			case "vendoronly.example":
				// Left unattributed: the cross-check counts it but says
				// nothing.
			default:
				rep.Rows[i].SellerID = adnet.DirectSellerID(rep.Rows[i].Publisher)
			}
		}
		if in.ID == "camp-ghost" {
			continue
		}
		// Spoof: premium inventory booked under an unrelated seller.
		rep.Rows = append(rep.Rows, adnet.ReportRow{
			Publisher:   w.uni.At(0).Domain,
			SellerID:    adnet.DirectSellerID("lowquality.example"),
			Impressions: 31,
		})
		// Pool: one seller account reselling across five owner groups.
		for _, p := range poolPubs {
			rep.Rows = append(rep.Rows, adnet.ReportRow{
				Publisher:   p,
				SellerID:    "pool-test",
				Impressions: 5,
			})
		}
	}
}

// TestAdversarialDimensionsParity is the deep-equal contract over
// adversarial workloads, across seeds and both attach orders. It first
// checks on the batch side that every adversarial dimension actually
// fired — unauthorized sellers, pooled sellers, bot users, inflated
// publishers — so the parity assertion is not vacuous.
func TestAdversarialDimensionsParity(t *testing.T) {
	for seed := int64(21); seed <= 23; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			w := newTestWorld(t, seed)
			rng := rand.New(rand.NewSource(seed))

			// Delta path: engine attached to the empty store.
			deltaEng, err := New(Config{Store: w.st, Meta: w.meta})
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			w.populate(t, rng, 300)
			w.populateAdversarial(t)
			w.buildAdversarialInputs(t, rng)

			want, err := w.auditor(t).FullAuditSerial(w.inputs)
			if err != nil {
				t.Fatalf("FullAuditSerial: %v", err)
			}
			for _, ca := range want.PerCampaign {
				if ca.ID == "camp-ghost" {
					continue
				}
				if len(ca.Sellers.UnauthorizedPairs) == 0 {
					t.Fatalf("campaign %s: no unauthorized seller pairs; adversarial input broken", ca.ID)
				}
				if len(ca.Pooling.PooledSellers) == 0 {
					t.Fatalf("campaign %s: pooling detector silent; adversarial input broken", ca.ID)
				}
				if len(ca.Behavior.BotUsers) == 0 {
					t.Fatalf("campaign %s: behavior detector saw no bots; adversarial input broken", ca.ID)
				}
				if len(ca.Behavior.InflatedPublishers) == 0 {
					t.Fatalf("campaign %s: no inflated publishers; adversarial input broken", ca.ID)
				}
			}

			if _, resynced := deltaEng.Drain(); resynced {
				t.Fatalf("delta engine resynced; buffer should have held the workload")
			}
			requireReportsEqual(t, w, deltaEng)

			// Snapshot path: fresh engine primes from current contents
			// (merged bot impressions arrive pre-merged).
			snapEng, err := New(Config{Store: w.st, Meta: w.meta})
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			requireReportsEqual(t, w, snapEng)

			// Mixed path: more organic traffic on top, both engines.
			w.populate(t, rng, 100)
			w.buildAdversarialInputs(t, rng)
			deltaEng.Drain()
			snapEng.Drain()
			requireReportsEqual(t, w, deltaEng)
			requireReportsEqual(t, w, snapEng)
		})
	}
}
