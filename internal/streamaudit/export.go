package streamaudit

import (
	"fmt"
	"sort"
	"time"

	"adaudit/internal/adnet"
	"adaudit/internal/audit"
	"adaudit/internal/semsim"
)

// Export is a self-contained, JSON-serialisable snapshot of an engine's
// incremental state — everything a merge layer needs to reconstruct the
// engine's report without the store it was folded from. The shard-merge
// tier ships one Export per collector shard over /api/live/export and
// unions them (internal/shardmerge) into a combined state whose report
// is deep-equal to a single-store FullAudit over the union of the
// shards' data.
//
// Slot-indexed slices (Exposures, VisMeasured, VisFrac, and the slot
// lists in UserSlots/PubSlots) are in store insertion order, exactly as
// the engine maintains them; merging concatenates them in shard order
// so even order-sensitive float summation (stats.Summarize's mean) is
// bit-stable. Every float in the export round-trips JSON exactly
// (encoding/json emits the shortest representation that parses back to
// the same float64), so a report materialised from a decoded Export is
// byte-identical to one materialised in-process.
type Export struct {
	// Seq is the feed sequence the exporting engine had applied. A
	// merged export sums shard Seqs — a monotone progress indicator,
	// not a feed position.
	Seq int64 `json:"seq"`
	// Campaigns holds one entry per campaign the engine observed
	// (impressions or conversions).
	Campaigns map[string]*CampaignExport `json:"campaigns"`
	// AllPubs is the cross-campaign publisher set (sorted) backing the
	// aggregate Figure 1 Venn.
	AllPubs []string `json:"all_pubs"`
	// Freq is the per-(campaign, user) impression-timestamp groups for
	// the Figure 3 frequency analysis, sorted by (campaign, user);
	// times within a group are in insertion order.
	Freq []FreqGroup `json:"freq"`
}

// FreqGroup is one (campaign, user) timestamp group.
type FreqGroup struct {
	CampaignID string      `json:"campaign_id"`
	UserKey    string      `json:"user_key"`
	Times      []time.Time `json:"times"`
}

// CampaignExport mirrors the engine's per-campaign aggregate state
// field for field (see state.go's campaignState for the semantics of
// each).
type CampaignExport struct {
	PubImps     map[string]int `json:"pub_imps,omitempty"`
	Users       []string       `json:"users,omitempty"`
	Clicks      int            `json:"clicks,omitempty"`
	Conversions int            `json:"conversions,omitempty"`
	FirstSeen   time.Time      `json:"first_seen"`
	LastSeen    time.Time      `json:"last_seen"`

	ImpRanks    []int `json:"imp_ranks,omitempty"`
	UnknownMeta int   `json:"unknown_meta,omitempty"`

	Exposures   []float64 `json:"exposures,omitempty"`
	ViewableUB  int       `json:"viewable_ub,omitempty"`
	Measured    int       `json:"measured,omitempty"`
	MRCViewable int       `json:"mrc_viewable,omitempty"`

	DCImps    int             `json:"dc_imps,omitempty"`
	ByVerdict map[string]int  `json:"by_verdict,omitempty"`
	IPSeen    map[string]bool `json:"ip_seen,omitempty"`
	PubSeen   map[string]bool `json:"pub_seen,omitempty"`
	DCPerPub  map[string]int  `json:"dc_per_pub,omitempty"`

	VisMeasured []bool           `json:"vis_measured,omitempty"`
	VisFrac     []float64        `json:"vis_frac,omitempty"`
	UserSlots   map[string][]int `json:"user_slots,omitempty"`
	PubSlots    map[string][]int `json:"pub_slots,omitempty"`
	UserConvs   map[string]int   `json:"user_convs,omitempty"`
	UserDC      map[string]bool  `json:"user_dc,omitempty"`
}

// Export deep-copies the engine's state into a Export. Safe for
// concurrent use; the engine keeps folding deltas afterwards.
func (e *Engine) Export() *Export {
	e.mu.Lock()
	defer e.mu.Unlock()

	out := &Export{
		Seq:       e.appliedSeq.Load(),
		Campaigns: make(map[string]*CampaignExport, len(e.st.campaigns)),
		AllPubs:   sortedKeys(e.st.allPubs),
	}
	for id, cs := range e.st.campaigns {
		out.Campaigns[id] = exportCampaign(cs)
	}
	out.Freq = make([]FreqGroup, 0, len(e.st.freq))
	for k, ts := range e.st.freq {
		out.Freq = append(out.Freq, FreqGroup{
			CampaignID: k.CampaignID,
			UserKey:    k.UserKey,
			Times:      append([]time.Time(nil), ts...),
		})
	}
	sort.Slice(out.Freq, func(a, b int) bool {
		if out.Freq[a].CampaignID != out.Freq[b].CampaignID {
			return out.Freq[a].CampaignID < out.Freq[b].CampaignID
		}
		return out.Freq[a].UserKey < out.Freq[b].UserKey
	})
	return out
}

func exportCampaign(cs *campaignState) *CampaignExport {
	return &CampaignExport{
		PubImps:     copyMap(cs.pubImps),
		Users:       sortedKeys(cs.users),
		Clicks:      cs.clicks,
		Conversions: cs.conversions,
		FirstSeen:   cs.firstSeen,
		LastSeen:    cs.lastSeen,
		ImpRanks:    append([]int(nil), cs.impRanks...),
		UnknownMeta: cs.unknownMeta,
		Exposures:   append([]float64(nil), cs.exposures...),
		ViewableUB:  cs.viewableUB,
		Measured:    cs.measured,
		MRCViewable: cs.mrcViewable,
		DCImps:      cs.dcImps,
		ByVerdict:   copyMap(cs.byVerdict),
		IPSeen:      copyMap(cs.ipSeen),
		PubSeen:     copyMap(cs.pubSeen),
		DCPerPub:    copyMap(cs.dcPerPub),
		VisMeasured: append([]bool(nil), cs.visMeasured...),
		VisFrac:     append([]float64(nil), cs.visFrac...),
		UserSlots:   copySlotMap(cs.userSlots),
		PubSlots:    copySlotMap(cs.pubSlots),
		UserConvs:   copyMap(cs.userConvs),
		UserDC:      copyMap(cs.userDC),
	}
}

// StaticConfig configures NewStatic — Config minus the store and feed
// machinery a static engine has no use for.
type StaticConfig struct {
	// Meta resolves publisher metadata. Required, and it must agree
	// with the shards' metadata source: the export carries rank/context
	// observations already folded against it.
	Meta audit.MetadataSource
	// Matcher, Keywords, Reports, Sellers: as in Config.
	Matcher  *semsim.Matcher
	Keywords map[string][]string
	Reports  map[string]*adnet.VendorReport
	Sellers  audit.SellerDirectory
}

// NewStatic builds a query-only engine over a decoded (typically
// merged) Export: Report, Summaries, LiveSummary and Audit work exactly
// as on a live engine, but there is no store and no change feed — the
// state is frozen at the export's cut. Drain, Run, CaughtUp and
// Staleness report the engine as permanently caught up.
func NewStatic(cfg StaticConfig, exp *Export) (*Engine, error) {
	if exp == nil {
		return nil, fmt.Errorf("streamaudit: static engine requires an export")
	}
	if cfg.Meta == nil {
		return nil, fmt.Errorf("streamaudit: static engine requires a metadata source")
	}
	m := cfg.Matcher
	if m == nil {
		m = semsim.NewMatcher(semsim.DefaultTaxonomy())
	}
	sellers := cfg.Sellers
	if sellers == nil {
		sellers = adnet.SellerRegistry{}
	}
	e := &Engine{
		meta:      cfg.Meta,
		matcher:   m,
		keywords:  cfg.Keywords,
		reports:   cfg.Reports,
		sellers:   sellers,
		metaMemo:  map[string]metaEntry{},
		listeners: map[*Updates]struct{}{},
		st:        importState(exp),
	}
	e.tel.init(nil, e)
	e.appliedSeq.Store(exp.Seq)
	return e, nil
}

// importState reconstructs the engine's internal state from an export.
// recs stays empty: a static engine never applies merges.
func importState(exp *Export) *state {
	st := newState()
	for _, p := range exp.AllPubs {
		st.allPubs[p] = struct{}{}
	}
	for _, g := range exp.Freq {
		k := audit.FrequencyKey{CampaignID: g.CampaignID, UserKey: g.UserKey}
		st.freq[k] = append([]time.Time(nil), g.Times...)
	}
	for id, ce := range exp.Campaigns {
		cs := st.campaign(id)
		for p, n := range ce.PubImps {
			cs.pubImps[p] = n
		}
		for _, u := range ce.Users {
			cs.users[u] = struct{}{}
		}
		cs.clicks = ce.Clicks
		cs.conversions = ce.Conversions
		cs.firstSeen = ce.FirstSeen
		cs.lastSeen = ce.LastSeen
		cs.impRanks = append([]int(nil), ce.ImpRanks...)
		cs.unknownMeta = ce.UnknownMeta
		cs.exposures = append([]float64(nil), ce.Exposures...)
		cs.viewableUB = ce.ViewableUB
		cs.measured = ce.Measured
		cs.mrcViewable = ce.MRCViewable
		cs.dcImps = ce.DCImps
		fillMap(cs.byVerdict, ce.ByVerdict)
		fillMap(cs.ipSeen, ce.IPSeen)
		fillMap(cs.pubSeen, ce.PubSeen)
		fillMap(cs.dcPerPub, ce.DCPerPub)
		cs.visMeasured = append([]bool(nil), ce.VisMeasured...)
		cs.visFrac = append([]float64(nil), ce.VisFrac...)
		for u, slots := range ce.UserSlots {
			cs.userSlots[u] = append([]int(nil), slots...)
		}
		for p, slots := range ce.PubSlots {
			cs.pubSlots[p] = append([]int(nil), slots...)
		}
		fillMap(cs.userConvs, ce.UserConvs)
		fillMap(cs.userDC, ce.UserDC)
	}
	return st
}

// Static reports whether the engine was built by NewStatic (no store,
// no feed).
func (e *Engine) Static() bool { return e.store == nil }

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func copyMap[V int | bool | string](m map[string]V) map[string]V {
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]V, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func copySlotMap(m map[string][]int) map[string][]int {
	if len(m) == 0 {
		return nil
	}
	out := make(map[string][]int, len(m))
	for k, v := range m {
		out[k] = append([]int(nil), v...)
	}
	return out
}

func fillMap[V any](dst, src map[string]V) {
	for k, v := range src {
		dst[k] = v
	}
}
