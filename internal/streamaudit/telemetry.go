package streamaudit

import (
	"sync/atomic"
	"time"

	"adaudit/internal/store"
	"adaudit/internal/telemetry"
)

// Apply-latency sections: the engine's per-dimension state updates.
// "publisher" covers the shared publisher/user/summary fold that feeds
// brand safety, context and the live summaries.
const (
	dimPublisher   = "publisher"
	dimPopularity  = "popularity"
	dimViewability = "viewability"
	dimFraud       = "fraud"
	dimFrequency   = "frequency"
	dimBehavior    = "behavior"
)

// engineTelemetry instruments the engine: applied events, resyncs, a
// caught-up lag gauge, and per-dimension apply-latency histograms.
// Like the store's instruments, dimension timing is sampled (1 in
// sampleInterval events) so the apply path is not dominated by clock
// reads; the counters stay exact. The zero value is fully disabled.
type engineTelemetry struct {
	enabled   bool
	tick      atomic.Uint64
	freshTick atomic.Uint64
	events    *telemetry.Counter
	resyncs   *telemetry.Counter
	freshness *telemetry.Histogram
	sections  map[string]*telemetry.Histogram
}

const sampleInterval = 8

func (t *engineTelemetry) init(reg *telemetry.Registry, e *Engine) {
	if reg == nil {
		return
	}
	t.enabled = true
	t.events = reg.Counter("adaudit_streamaudit_events_total",
		"Change-feed events applied by the streaming audit engine.", nil)
	t.resyncs = reg.Counter("adaudit_streamaudit_resyncs_total",
		"Snapshot resyncs after the feed dropped the engine (or a state mismatch).", nil)
	t.freshness = reg.Histogram("adaudit_pipeline_commit_to_apply_seconds",
		"Store-commit to streamaudit-apply pipeline latency — the freshness SLO (sampled; traced events always observed).",
		telemetry.LatencyBuckets(), nil)
	t.sections = map[string]*telemetry.Histogram{}
	for _, dim := range []string{dimPublisher, dimPopularity, dimViewability, dimFraud, dimFrequency, dimBehavior} {
		t.sections[dim] = reg.Histogram("adaudit_streamaudit_apply_seconds",
			"Per-dimension incremental apply latency (sampled).",
			telemetry.LatencyBuckets(),
			map[string]string{"dimension": dim})
	}
	reg.GaugeFunc("adaudit_streamaudit_lag",
		"Feed events published but not yet applied by the engine.", nil,
		func() float64 {
			lag := e.store.FeedSeq() - e.Applied()
			if lag < 0 {
				lag = 0
			}
			return float64(lag)
		})
	reg.GaugeFunc("adaudit_streamaudit_applied_seq",
		"Feed sequence number of the last applied event.", nil,
		func() float64 { return float64(e.Applied()) })
	reg.GaugeFunc("adaudit_pipeline_feed_queue_age_seconds",
		"Age of the oldest published-but-unapplied feed event (0 when the engine is caught up).", nil,
		func() float64 { return e.Staleness().Seconds() })
}

// observeFreshness records the commit→apply latency of one applied
// feed event. Untraced events are sampled (1 in sampleInterval) to
// keep clock reads off the apply hot path; traced events always
// observe and attach their trace ID as the histogram's exemplar.
func (t *engineTelemetry) observeFreshness(ev *store.FeedEvent) {
	if !t.enabled || ev.PublishedAt <= 0 {
		return
	}
	traced := ev.Trace.ID() != 0
	if !traced && t.freshTick.Add(1)&(sampleInterval-1) != 1 {
		return
	}
	d := time.Duration(time.Now().UnixNano() - ev.PublishedAt)
	if d < 0 {
		d = 0
	}
	t.freshness.ObserveDuration(d)
	if traced {
		t.freshness.SetExemplar(uint64(ev.Trace.ID()))
	}
}

func (t *engineTelemetry) observeEvent() {
	if t.enabled {
		t.events.Inc()
	}
}

func (t *engineTelemetry) observeResync() {
	if t.enabled {
		t.resyncs.Inc()
	}
}

// sectionTimer returns a closure the apply path calls after each
// dimension section; on sampled events it observes the section's
// duration into that dimension's histogram, otherwise it is a no-op.
func (t *engineTelemetry) sectionTimer() func(dim string) {
	if !t.enabled || t.tick.Add(1)&(sampleInterval-1) != 1 {
		return func(string) {}
	}
	last := time.Now()
	return func(dim string) {
		now := time.Now()
		if h := t.sections[dim]; h != nil {
			h.ObserveDuration(now.Sub(last))
		}
		last = now
	}
}
