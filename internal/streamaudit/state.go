package streamaudit

import (
	"fmt"
	"time"

	"adaudit/internal/audit"
	"adaudit/internal/store"
)

// state is the engine's aggregate view of the store: everything the
// five audit dimensions (plus the live summaries) need, maintained
// per-event. Nothing here re-reads the store — a resync rebuilds the
// whole struct from the snapshot prime instead.
type state struct {
	campaigns map[string]*campaignState
	// allPubs is the cross-campaign publisher set backing the
	// aggregate Figure 1 Venn (audit.BrandSafetyAggregate's audited
	// side).
	allPubs map[string]struct{}
	// freq groups impression timestamps per (campaign, user) for the
	// Figure 3 frequency analysis.
	freq map[audit.FrequencyKey][]time.Time
	// recs maps store record ID to where its mutable fields live, so
	// exposure merges update in place.
	recs map[int64]recRef
}

type recRef struct {
	cs   *campaignState
	slot int
}

// campaignState is one campaign's incremental aggregates. Each field
// mirrors state the batch analyses derive by rescanning; the Report
// path feeds them through the same materializers the batch path uses.
type campaignState struct {
	// pubImps counts impressions per publisher: the brand-safety
	// audited set (its keys), the context match denominators, and the
	// live top-publisher view.
	pubImps map[string]int
	// users, clicks, firstSeen/lastSeen and conversions back the live
	// summary view.
	users       map[string]struct{}
	clicks      int
	conversions int
	firstSeen   time.Time
	lastSeen    time.Time

	// Popularity: ranks of known-metadata impressions in insertion
	// order (matching the batch visit order), plus the unknown-meta
	// impression count shared with the context dimension.
	impRanks    []int
	unknownMeta int

	// Viewability: per-impression exposure seconds in insertion order
	// (slot-indexed so merges overwrite in place; insertion order
	// keeps even float summation identical to the batch path) and the
	// derived counters.
	exposures   []float64
	viewableUB  int
	measured    int
	mrcViewable int

	// Fraud: exactly the maps the batch analysis folds over.
	dcImps    int
	byVerdict map[string]int
	ipSeen    map[string]bool
	pubSeen   map[string]bool
	dcPerPub  map[string]int

	// Behavior: the slot-indexed mutable visibility signals (aligned
	// with exposures so merges overwrite in place), per-user and
	// per-publisher slot lists in insertion order, per-user conversion
	// counts, and the users the DC cascade caught — together the
	// audit.BehaviorState the shared behavioral fold consumes.
	visMeasured []bool
	visFrac     []float64
	userSlots   map[string][]int
	pubSlots    map[string][]int
	userConvs   map[string]int
	userDC      map[string]bool
}

func newState() *state {
	return &state{
		campaigns: map[string]*campaignState{},
		allPubs:   map[string]struct{}{},
		freq:      map[audit.FrequencyKey][]time.Time{},
		recs:      map[int64]recRef{},
	}
}

// campaign returns (creating if needed) one campaign's state.
func (s *state) campaign(id string) *campaignState {
	cs := s.campaigns[id]
	if cs == nil {
		cs = &campaignState{
			pubImps:   map[string]int{},
			users:     map[string]struct{}{},
			byVerdict: map[string]int{},
			ipSeen:    map[string]bool{},
			pubSeen:   map[string]bool{},
			dcPerPub:  map[string]int{},
			userSlots: map[string][]int{},
			pubSlots:  map[string][]int{},
			userConvs: map[string]int{},
			userDC:    map[string]bool{},
		}
		s.campaigns[id] = cs
	}
	return cs
}

// applyInsert folds one new impression into every dimension. Also used
// by the snapshot prime (a primed record is just an insert whose
// merges already happened).
func (s *state) applyInsert(e *Engine, im *store.Impression) {
	done := e.tel.sectionTimer()
	cs := s.campaign(im.CampaignID)

	// Publisher/user/summary state (brand safety + context + live).
	cs.pubImps[im.Publisher]++
	s.allPubs[im.Publisher] = struct{}{}
	cs.users[im.UserKey] = struct{}{}
	cs.clicks += im.Clicks
	if cs.firstSeen.IsZero() || im.Timestamp.Before(cs.firstSeen) {
		cs.firstSeen = im.Timestamp
	}
	if im.Timestamp.After(cs.lastSeen) {
		cs.lastSeen = im.Timestamp
	}
	done(dimPublisher)

	// Popularity.
	if meta, ok := e.lookupMeta(im.Publisher); ok {
		cs.impRanks = append(cs.impRanks, meta.Rank)
	} else {
		cs.unknownMeta++
	}
	done(dimPopularity)

	// Viewability.
	slot := len(cs.exposures)
	s.recs[im.ID] = recRef{cs: cs, slot: slot}
	cs.exposures = append(cs.exposures, im.Exposure.Seconds())
	if im.Exposure >= audit.ViewabilityThreshold {
		cs.viewableUB++
	}
	if im.VisibilityMeasured {
		cs.measured++
		if im.Exposure >= audit.ViewabilityThreshold && im.MaxVisibleFraction >= 0.5 {
			cs.mrcViewable++
		}
	}
	done(dimViewability)

	// Fraud.
	isDC := audit.IsDataCenterVerdict(im.DataCenter)
	if isDC {
		cs.dcImps++
		cs.byVerdict[im.DataCenter]++
		cs.dcPerPub[im.Publisher]++
	}
	cs.ipSeen[im.IPPseudonym] = cs.ipSeen[im.IPPseudonym] || isDC
	cs.pubSeen[im.Publisher] = cs.pubSeen[im.Publisher] || isDC
	done(dimFraud)

	// Behavior: slot-aligned visibility signals plus the identity slot
	// lists the behavioral fold groups by.
	cs.visMeasured = append(cs.visMeasured, im.VisibilityMeasured)
	cs.visFrac = append(cs.visFrac, im.MaxVisibleFraction)
	cs.userSlots[im.UserKey] = append(cs.userSlots[im.UserKey], slot)
	cs.pubSlots[im.Publisher] = append(cs.pubSlots[im.Publisher], slot)
	if isDC {
		cs.userDC[im.UserKey] = true
	}
	done(dimBehavior)

	// Frequency.
	k := audit.FrequencyKey{CampaignID: im.CampaignID, UserKey: im.UserKey}
	s.freq[k] = append(s.freq[k], im.Timestamp)
	done(dimFrequency)
}

// applyMerge folds an exposure update into the dimensions that read
// the mutable fields (viewability and the live interaction counters):
// the event carries both the pre- and post-merge values, so the old
// contribution is retracted exactly. Timestamps, publisher and the
// data-center verdict are immutable after insert, so frequency,
// popularity, brand safety and fraud are untouched by design.
func (s *state) applyMerge(e *Engine, ev *store.FeedEvent) error {
	ref, ok := s.recs[ev.Im.ID]
	if !ok {
		return fmt.Errorf("streamaudit: merge for unknown record %d", ev.Im.ID)
	}
	done := e.tel.sectionTimer()
	cs := ref.cs
	prev, now := &ev.Prev, &ev.Im

	cs.exposures[ref.slot] = now.Exposure.Seconds()
	cs.viewableUB += b2i(now.Exposure >= audit.ViewabilityThreshold) -
		b2i(prev.Exposure >= audit.ViewabilityThreshold)
	cs.measured += b2i(now.VisibilityMeasured) - b2i(prev.VisibilityMeasured)
	cs.mrcViewable += b2i(mrcViewable(now.VisibilityMeasured, now.Exposure, now.MaxVisibleFraction)) -
		b2i(mrcViewable(prev.VisibilityMeasured, prev.Exposure, prev.MaxVisibleFraction))
	done(dimViewability)

	cs.visMeasured[ref.slot] = now.VisibilityMeasured
	cs.visFrac[ref.slot] = now.MaxVisibleFraction
	done(dimBehavior)

	cs.clicks += now.Clicks - prev.Clicks
	done(dimPublisher)
	return nil
}

// applyConversion counts one conversion for the live summary view and
// the behavioral bot score (converting users are never flagged).
func (s *state) applyConversion(c *store.Conversion) {
	cs := s.campaign(c.CampaignID)
	cs.conversions++
	cs.userConvs[c.UserKey]++
}

func mrcViewable(measured bool, exp time.Duration, maxVis float64) bool {
	return measured && exp >= audit.ViewabilityThreshold && maxVis >= 0.5
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
