package streamaudit

import (
	"fmt"
	"sort"
	"time"

	"adaudit/internal/adnet"
	"adaudit/internal/audit"
	"adaudit/internal/stats"
)

// Report materializes the full audit from the incremental state,
// mirroring audit.Auditor.FullAudit: one CampaignAudit per input (in
// input order), the aggregate brand-safety Venn, and the cross-
// campaign frequency scatter. At quiescence the result is deep-equal
// to FullAudit over the same store and inputs — the package's headline
// guarantee — because every nontrivially assembled result goes through
// the same audit-package materializer both paths share.
func (e *Engine) Report(inputs []audit.CampaignInput) (*audit.FullReport, error) {
	e.mu.Lock()
	defer e.mu.Unlock()

	reports := make(map[string]*adnet.VendorReport, len(inputs))
	for _, in := range inputs {
		if in.Report == nil {
			return nil, fmt.Errorf("audit: campaign %s has no vendor report", in.ID)
		}
		reports[in.ID] = in.Report
	}

	rep := &audit.FullReport{PerCampaign: make([]audit.CampaignAudit, len(inputs))}
	for i, in := range inputs {
		ca, err := e.campaignAuditLocked(in)
		if err != nil {
			return nil, err
		}
		rep.PerCampaign[i] = ca
	}

	reported := map[string]struct{}{}
	var anon int64
	for _, r := range reports {
		for _, p := range r.ReportedPublishers() {
			reported[p] = struct{}{}
		}
		anon += r.AnonymousImpressions()
	}
	rep.Aggregate = audit.BrandSafetyFromSets(e.meta, "", e.st.allPubs, reported, anon)
	rep.Frequency = audit.FrequencyFromTimes(e.st.freq)
	return rep, nil
}

// campaignAuditLocked materializes one campaign's five dimensions from
// the incremental state. Caller holds e.mu. A campaign with no
// observed impressions produces the same empty results the batch path
// does.
func (e *Engine) campaignAuditLocked(in audit.CampaignInput) (audit.CampaignAudit, error) {
	cs := e.st.campaigns[in.ID]
	if cs == nil {
		cs = &campaignState{} // nil maps/slices: only ranged and len'd below
	}
	ca := audit.CampaignAudit{ID: in.ID}

	// Brand safety: the audited set is the campaign's publisher keys.
	audited := make(map[string]struct{}, len(cs.pubImps))
	for p := range cs.pubImps {
		audited[p] = struct{}{}
	}
	ca.BrandSafety = audit.BrandSafetyFromSets(e.meta, in.ID, audited,
		stats.SetOf(in.Report.ReportedPublishers()), in.Report.AnonymousImpressions())

	// Context: relevance is a publisher property, so per-publisher
	// impression counts are a sufficient statistic; the campaign
	// keywords are only known here, at query time.
	query := e.matcher.Compile(in.Keywords)
	ctx := audit.ContextResult{CampaignID: in.ID}
	for pub, n := range cs.pubImps {
		ctx.AuditImpressions += n
		if meta, ok := e.lookupMeta(pub); !ok {
			ctx.UnknownMeta += n
		} else if query.Relevant(meta.Keywords, meta.Topics) {
			ctx.MeaningfulImpressions += n
		}
	}
	ctx.VendorClaimed = in.Report.ContextualImpressions
	ctx.VendorTotal = in.Report.TotalImpressionsCharged + in.Report.RefundedImpressions
	ca.Context = ctx

	// Popularity: publisher ranks in sorted-publisher order (the batch
	// iteration order), impression ranks in insertion order (already
	// maintained that way). Copy impRanks — the materializer retains
	// its arguments and the live slice keeps growing.
	pubs := make([]string, 0, len(cs.pubImps))
	for p := range cs.pubImps {
		pubs = append(pubs, p)
	}
	sort.Strings(pubs)
	var pubRanks []int
	for _, p := range pubs {
		if meta, ok := e.lookupMeta(p); ok {
			pubRanks = append(pubRanks, meta.Rank)
		}
	}
	pop, err := audit.PopularityFromRanks(in.ID, 10, 10_000_000,
		pubRanks, append([]int(nil), cs.impRanks...), cs.unknownMeta)
	if err != nil {
		return audit.CampaignAudit{}, fmt.Errorf("audit: popularity for %s: %w", in.ID, err)
	}
	ca.Popularity = pop

	// Viewability: counters plus the exposure summary. Summarize
	// copies before sorting and the samples are in insertion order, so
	// every statistic (including the order-sensitive float mean)
	// matches the batch scan.
	ca.Viewability = audit.ViewabilityResult{
		CampaignID:          in.ID,
		Impressions:         len(cs.exposures),
		ViewableUB:          cs.viewableUB,
		MeasuredImpressions: cs.measured,
		MRCViewable:         cs.mrcViewable,
		ExposureSummary:     stats.Summarize(cs.exposures),
	}

	// Fraud: the engine maintains exactly the maps the batch fold
	// builds; the shared materializer does the rest (and copies, so
	// the result never aliases live state).
	ca.Fraud = audit.FraudFromState(in.ID, len(cs.exposures), cs.dcImps,
		cs.byVerdict, cs.ipSeen, cs.pubSeen, cs.dcPerPub)

	// Adversarial dimensions. Sellers and pooling are pure functions of
	// the vendor report and the directory, shared verbatim with the
	// batch path. Behavior folds the slot-indexed state; per-user
	// timestamps come from the frequency groups (the fold only sorts
	// the slices in place, exactly as FrequencyFromTimes does, so
	// aliasing the live slices is safe).
	ca.Sellers = audit.SellerAuditFromReport(in.ID, in.Report, e.sellers)
	ca.Pooling = audit.PoolingFromReport(in.ID, in.Report, e.sellers, audit.DefaultMaxGroupSpan)
	times := make(map[string][]time.Time, len(cs.userSlots))
	for k, ts := range e.st.freq {
		if k.CampaignID == in.ID {
			times[k.UserKey] = ts
		}
	}
	ca.Behavior = audit.BehaviorFromState(in.ID, audit.BehaviorState{
		Times:       times,
		UserSlots:   cs.userSlots,
		PubSlots:    cs.pubSlots,
		Exposures:   cs.exposures,
		VisMeasured: cs.visMeasured,
		VisFrac:     cs.visFrac,
		UserConvs:   cs.userConvs,
		UserDC:      cs.userDC,
	})
	return ca, nil
}

// CampaignLive is the live per-campaign summary served by
// /api/live/summary and the SSE stream — the streaming analogue of the
// query API's CampaignSummary, plus the feed position it reflects.
type CampaignLive struct {
	CampaignID         string    `json:"campaign_id"`
	Seq                int64     `json:"seq"`
	Impressions        int       `json:"impressions"`
	Publishers         int       `json:"publishers"`
	Users              int       `json:"users"`
	Clicks             int       `json:"clicks"`
	Conversions        int       `json:"conversions"`
	ViewableUpperBound float64   `json:"viewable_upper_bound"`
	MRCViewableShare   float64   `json:"mrc_viewable_share"`
	DataCenterShare    float64   `json:"data_center_share"`
	ContextShare       float64   `json:"context_share"`
	FirstSeen          time.Time `json:"first_seen"`
	LastSeen           time.Time `json:"last_seen"`
}

// LiveAudit is the /api/live/audit/{campaign} response: the live
// summary plus the five-dimension audit view, computed against the
// configured vendor report and keywords (or an empty report when none
// was configured — the vendor-side columns read zero).
type LiveAudit struct {
	Summary CampaignLive        `json:"summary"`
	Audit   audit.CampaignAudit `json:"audit"`
}

// Summaries returns the live summary of every observed campaign,
// sorted by campaign ID.
func (e *Engine) Summaries() []CampaignLive {
	e.mu.Lock()
	defer e.mu.Unlock()
	ids := make([]string, 0, len(e.st.campaigns))
	for id := range e.st.campaigns {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]CampaignLive, 0, len(ids))
	for _, id := range ids {
		out = append(out, e.liveSummaryLocked(id))
	}
	return out
}

// LiveSummary returns one campaign's live summary.
func (e *Engine) LiveSummary(id string) (CampaignLive, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.st.campaigns[id]; !ok {
		return CampaignLive{}, false
	}
	return e.liveSummaryLocked(id), true
}

func (e *Engine) liveSummaryLocked(id string) CampaignLive {
	cs := e.st.campaigns[id]
	sum := CampaignLive{
		CampaignID:  id,
		Seq:         e.appliedSeq.Load(),
		Impressions: len(cs.exposures),
		Publishers:  len(cs.pubImps),
		Users:       len(cs.users),
		Clicks:      cs.clicks,
		Conversions: cs.conversions,
		FirstSeen:   cs.firstSeen,
		LastSeen:    cs.lastSeen,
	}
	if n := len(cs.exposures); n > 0 {
		sum.ViewableUpperBound = float64(cs.viewableUB) / float64(n)
		sum.DataCenterShare = float64(cs.dcImps) / float64(n)
		sum.ContextShare = e.contextShareLocked(id, cs)
	}
	if cs.measured > 0 {
		sum.MRCViewableShare = float64(cs.mrcViewable) / float64(cs.measured)
	}
	return sum
}

// contextShareLocked computes the contextual match rate against the
// configured keywords (zero when none were configured).
func (e *Engine) contextShareLocked(id string, cs *campaignState) float64 {
	kws := e.keywords[id]
	if len(kws) == 0 {
		return 0
	}
	query := e.matcher.Compile(kws)
	meaningful, total := 0, 0
	for pub, n := range cs.pubImps {
		total += n
		if meta, ok := e.lookupMeta(pub); ok && query.Relevant(meta.Keywords, meta.Topics) {
			meaningful += n
		}
	}
	if total == 0 {
		return 0
	}
	return float64(meaningful) / float64(total)
}

// Audit returns one campaign's live five-dimension audit view, or
// ok=false for a campaign the engine has not observed.
func (e *Engine) Audit(id string) (LiveAudit, bool, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.st.campaigns[id]; !ok {
		return LiveAudit{}, false, nil
	}
	rep := e.reports[id]
	if rep == nil {
		rep = &adnet.VendorReport{}
	}
	ca, err := e.campaignAuditLocked(audit.CampaignInput{ID: id, Keywords: e.keywords[id], Report: rep})
	if err != nil {
		return LiveAudit{}, true, err
	}
	return LiveAudit{Summary: e.liveSummaryLocked(id), Audit: ca}, true, nil
}
