package store

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"strconv"
	"time"
)

// WriteSnapshot streams the store as JSON lines (one impression per
// line), the dataset format cmd/adsim writes and cmd/auditctl reads.
func (s *Store) WriteSnapshot(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.writeSnapshotLocked(w)
}

// writeSnapshotLocked streams every record; callers hold at least a
// read lock (WriteSnapshot, SnapshotCompact).
func (s *Store) writeSnapshotLocked(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range s.recs {
		if err := enc.Encode(&s.recs[i]); err != nil {
			return fmt.Errorf("store: encoding snapshot record %d: %w", s.recs[i].ID, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("store: flushing snapshot: %w", err)
	}
	return nil
}

// ReadSnapshot loads JSON-lines records into a fresh store. IDs are
// reassigned in file order; indexes are rebuilt. A truncated final
// record — the signature of a writer that crashed mid-snapshot — is
// dropped with a logged warning rather than failing the whole load,
// matching the WAL's torn-tail replay semantics; corruption anywhere
// else still fails.
func ReadSnapshot(r io.Reader) (*Store, error) {
	s := New()
	dec := json.NewDecoder(bufio.NewReader(r))
	for line := 1; ; line++ {
		var im Impression
		err := dec.Decode(&im)
		if err == io.EOF {
			break
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			slog.Warn("store: snapshot ends in a truncated record; dropping it",
				"records_kept", s.Len())
			break
		}
		if err != nil {
			return nil, fmt.Errorf("store: decoding snapshot record %d: %w", line, err)
		}
		if _, err := s.Insert(im); err != nil {
			return nil, fmt.Errorf("store: snapshot record %d: %w", line, err)
		}
	}
	return s, nil
}

// csvHeader is the column order of WriteCSV.
var csvHeader = []string{
	"id", "campaign_id", "creative_id", "publisher", "page_url",
	"user_agent", "ip_pseudonym", "user_key", "isp", "country",
	"data_center", "timestamp", "exposure_ms", "mouse_moves", "clicks",
	"visibility_measured", "max_visible_fraction",
}

// WriteCSV exports the store for spreadsheet/pandas-style analysis.
func (s *Store) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("store: writing csv header: %w", err)
	}
	var writeErr error
	s.ForEach(func(im Impression) bool {
		rec := []string{
			strconv.FormatInt(im.ID, 10),
			im.CampaignID,
			im.CreativeID,
			im.Publisher,
			im.PageURL,
			im.UserAgent,
			im.IPPseudonym,
			im.UserKey,
			im.ISP,
			im.Country,
			im.DataCenter,
			im.Timestamp.UTC().Format(time.RFC3339Nano),
			strconv.FormatInt(im.Exposure.Milliseconds(), 10),
			strconv.Itoa(im.MouseMoves),
			strconv.Itoa(im.Clicks),
			strconv.FormatBool(im.VisibilityMeasured),
			strconv.FormatFloat(im.MaxVisibleFraction, 'f', 3, 64),
		}
		if err := cw.Write(rec); err != nil {
			writeErr = fmt.Errorf("store: writing csv record %d: %w", im.ID, err)
			return false
		}
		return true
	})
	if writeErr != nil {
		return writeErr
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("store: flushing csv: %w", err)
	}
	return nil
}
