package store

import (
	"sync/atomic"
	"time"

	"adaudit/internal/telemetry"
	"adaudit/internal/trace"
)

// storeTelemetry holds the store's instruments. The zero value is a
// fully disabled set: the enabled flag gates the clock reads so an
// uninstrumented store pays nothing on the insert hot path.
//
// Insert-latency timing is sampled (1 in sampleInterval inserts, the
// first always included) because two clock reads per insert would cost
// more than the insert itself at paper scale; the insert counters stay
// exact. tick picks the samples.
type storeTelemetry struct {
	enabled        bool
	tick           atomic.Uint64
	insertLatency  *telemetry.Histogram
	inserts        *telemetry.Counter
	insertFailures *telemetry.Counter
	convInserts    *telemetry.Counter
	convFailures   *telemetry.Counter
	feedEvents     *telemetry.Counter
	feedDrops      *telemetry.Counter
	feedSubscribes *telemetry.Counter
}

// sampleInterval is the stage-timing sampling rate (power of two; the
// collector's stage histograms use the same value).
const sampleInterval = 8

// sampleTiming reports whether this insert's latency should be
// measured: ticks 1, 1+sampleInterval, ... are sampled, so the first
// insert always produces a latency observation.
func (t *storeTelemetry) sampleTiming() bool {
	return t.enabled && t.tick.Add(1)&(sampleInterval-1) == 1
}

// Instrument registers the store's instruments on reg: insert latency,
// insert/failure counters, and gauges for record and index-key counts
// (computed at scrape time, so growth is visible without polling the
// store from outside). Safe to call once per store; a nil registry
// leaves the store uninstrumented.
func (s *Store) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	s.tel = storeTelemetry{
		enabled: true,
		insertLatency: reg.Histogram("adaudit_store_insert_seconds",
			"Impression insert latency (validate, lock, append, index).",
			telemetry.LatencyBuckets(), nil),
		inserts: reg.Counter("adaudit_store_inserts_total",
			"Impressions appended to the store.", nil),
		insertFailures: reg.Counter("adaudit_store_insert_failures_total",
			"Impression inserts rejected by validation.", nil),
		convInserts: reg.Counter("adaudit_store_conversion_inserts_total",
			"Conversions appended to the store.", nil),
		convFailures: reg.Counter("adaudit_store_conversion_insert_failures_total",
			"Conversion inserts rejected by validation.", nil),
		feedEvents: reg.Counter("adaudit_store_feed_events_total",
			"Mutations published on the change feed.", nil),
		feedDrops: reg.Counter("adaudit_store_feed_drops_total",
			"Change-feed subscribers evicted for falling behind.", nil),
		feedSubscribes: reg.Counter("adaudit_store_feed_subscribes_total",
			"Change-feed subscriptions (including resyncs).", nil),
	}
	reg.GaugeFunc("adaudit_store_feed_subscribers",
		"Change-feed subscribers currently attached.", nil,
		func() float64 { subs, _, _ := s.feedStats(); return float64(subs) })
	reg.GaugeFunc("adaudit_store_feed_depth",
		"Deepest per-subscriber change-feed buffer.", nil,
		func() float64 { _, depth, _ := s.feedStats(); return float64(depth) })
	reg.GaugeFunc("adaudit_store_wal_dirty_seconds",
		"Age of the oldest journal entry not yet fsynced (SyncInterval policy; 0 when clean).", nil,
		func() float64 { return s.WALDirtyDuration().Seconds() })
	reg.GaugeFunc("adaudit_store_records",
		"Impression records held.", nil,
		func() float64 { return float64(s.Len()) })
	reg.GaugeFunc("adaudit_store_conversions",
		"Conversion records held.", nil,
		func() float64 { return float64(s.NumConversions()) })
	for _, idx := range []string{"campaign", "publisher", "user"} {
		idx := idx
		reg.GaugeFunc("adaudit_store_index_keys",
			"Distinct keys per secondary index.",
			map[string]string{"index": idx},
			func() float64 {
				c, p, u := s.indexKeys()
				switch idx {
				case "campaign":
					return float64(c)
				case "publisher":
					return float64(p)
				default:
					return float64(u)
				}
			})
	}
}

func (s *Store) indexKeys() (campaigns, publishers, users int) {
	return s.byCampaign.numKeys(), s.byPublisher.numKeys(), s.byUser.numKeys()
}

// observeInsertTraced records one successful insert; start is the
// zero time on unsampled (or untimed) inserts, where only the counter
// moves. A traced insert attaches its trace ID as the histogram's
// exemplar, linking the latency aggregate to one concrete impression
// in the flight recorder.
func (s *Store) observeInsertTraced(start time.Time, tr *trace.Trace) {
	if !s.tel.enabled {
		return
	}
	if !start.IsZero() {
		s.tel.insertLatency.ObserveDuration(time.Since(start))
		if id := tr.ID(); id != 0 {
			s.tel.insertLatency.SetExemplar(uint64(id))
		}
	}
	s.tel.inserts.Inc()
}
