package store

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"sync"
	"time"

	"adaudit/internal/simclock"
	"adaudit/internal/trace"
)

// The write-ahead log makes acknowledged impressions survive a
// collector crash. Every Insert and Merge appends one JSON line to the
// journal *before* the in-memory store mutates, so a daemon killed at
// any instant recovers, at boot, every record it ever acknowledged —
// closing the gap the periodic snapshot leaves (a crash used to lose
// everything since the last flush).
//
// Design points:
//
//   - One entry per line, written in a single write(2) call including
//     the trailing newline. A torn final line therefore always means a
//     crash mid-append, never a corrupt middle; replay tolerates it by
//     truncating the tail and logging a warning.
//   - Merge entries carry the absolute post-merge values (not deltas),
//     so replaying a WAL over a snapshot that already contains any
//     prefix of it is idempotent. That makes the compaction race
//     windows (crash between snapshot rename and journal reset) safe.
//   - Durability is a policy: SyncAlways fsyncs per append (every
//     acknowledged impression survives power loss), SyncInterval
//     fsyncs on a timer (bounded loss under power failure, none under
//     process crash), SyncOS leaves flushing to the kernel (process
//     crashes still lose nothing — entries reach the page cache in the
//     append call itself).

// SyncPolicy says when the WAL calls fsync.
type SyncPolicy int

const (
	// SyncOS never fsyncs explicitly: every append still reaches the
	// kernel synchronously (surviving a process crash), and the OS
	// flushes to disk on its own schedule. The default.
	SyncOS SyncPolicy = iota
	// SyncAlways fsyncs after every append.
	SyncAlways
	// SyncInterval fsyncs on a background timer (WALOptions.Interval).
	SyncInterval
	// SyncGroup batches fsyncs across concurrently-committing sessions:
	// an append enqueues the entry and returns, and the commit then
	// waits — outside the store lock — for a shared group fsync that
	// covers it. Every acknowledged impression is durable (same
	// guarantee as SyncAlways) at a fraction of the fsync count: all
	// appends that land while one fsync is in flight are covered by the
	// next, so the disk sees one flush per batch, not per impression.
	// WALOptions.GroupLatency optionally delays each flush to widen the
	// batch at the cost of commit latency.
	SyncGroup
)

// ParseSyncPolicy maps the -wal-sync flag values onto a SyncPolicy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "os", "":
		return SyncOS, nil
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "group":
		return SyncGroup, nil
	}
	return 0, fmt.Errorf("store: unknown wal sync policy %q (want os, always, interval or group)", s)
}

// WALOptions tune the journal.
type WALOptions struct {
	// Policy is the fsync policy (default SyncOS).
	Policy SyncPolicy
	// Interval is the SyncInterval flush period (default 100ms).
	Interval time.Duration
	// GroupLatency is how long the SyncGroup flusher waits after the
	// first append of a batch before fsyncing, trading commit latency
	// for wider batches. Zero (the default) flushes as soon as the
	// flusher is free: batching still happens naturally because appends
	// that arrive during an in-flight fsync pile into the next one.
	// Keep it zero under a virtual clock unless the simulation advances
	// time, or commits stall waiting for a timer that never fires.
	GroupLatency time.Duration
	// Clock schedules the SyncInterval flush ticker. Nil means the real
	// clock; internal/simtest substitutes a virtual one so the flush
	// cadence is driven by simulated time.
	Clock simclock.Clock
}

// WAL is an append-only JSON-lines journal of store mutations. Attach
// one with Store.AttachWAL; open an existing journal at boot with
// RecoverWAL first.
type WAL struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	policy SyncPolicy
	clock  simclock.Clock
	dirty  bool // appended since last fsync (SyncInterval bookkeeping)
	// firstDirty is when dirty last flipped on: the age of the oldest
	// acknowledged entry that is not yet on disk — the WAL sync-lag
	// health signal.
	firstDirty time.Time

	// Group-commit state (SyncGroup only). seq numbers appends;
	// syncedSeq is the highest seq a completed fsync covers. Committers
	// block on synced until their seq is covered; the flusher fsyncs
	// outside mu so appends keep landing while the disk works.
	groupLatency time.Duration
	seq          int64
	syncedSeq    int64
	syncErr      error // sticky: first group-fsync failure fails all later waits
	closed       bool
	synced       *sync.Cond    // on mu; broadcast when syncedSeq, syncErr or closed change
	wake         chan struct{} // cap 1; nudges the group flusher

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

// walEntry is one journal line. Insert entries carry the full record
// (including its assigned ID); merge entries carry the absolute
// post-merge values so replay is idempotent.
type walEntry struct {
	Op string      `json:"op"` // "ins" | "mrg"
	Im *Impression `json:"im,omitempty"`

	ID          int64   `json:"id,omitempty"`
	ExposureNS  int64   `json:"exp,omitempty"`
	MouseMoves  int     `json:"moves,omitempty"`
	Clicks      int     `json:"clicks,omitempty"`
	VisMeasured bool    `json:"vis,omitempty"`
	MaxVis      float64 `json:"maxvis,omitempty"`
}

// OpenWAL opens (creating if missing) the journal at path for
// appending. Call RecoverWAL first when the file may hold entries from
// a previous run — OpenWAL does not replay.
func OpenWAL(path string, opts WALOptions) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening wal %s: %w", path, err)
	}
	w := &WAL{
		f:      f,
		path:   path,
		policy: opts.Policy,
		clock:  simclock.Or(opts.Clock),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	switch w.policy {
	case SyncInterval:
		interval := opts.Interval
		if interval <= 0 {
			interval = 100 * time.Millisecond
		}
		go w.flushLoop(interval)
	case SyncGroup:
		w.groupLatency = opts.GroupLatency
		w.synced = sync.NewCond(&w.mu)
		w.wake = make(chan struct{}, 1)
		go w.groupLoop()
	default:
		close(w.done)
	}
	return w, nil
}

// Path returns the journal's file path.
func (w *WAL) Path() string { return w.path }

func (w *WAL) flushLoop(interval time.Duration) {
	defer close(w.done)
	t := w.clock.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C():
			w.mu.Lock()
			if w.dirty {
				_ = w.f.Sync()
				w.dirty = false
			}
			w.mu.Unlock()
		}
	}
}

// groupLoop is the SyncGroup flusher: woken by the first append of a
// batch, it (optionally, after GroupLatency) fsyncs once for every
// entry appended so far and releases their waiting committers.
func (w *WAL) groupLoop() {
	defer close(w.done)
	for {
		select {
		case <-w.stop:
			// Final flush so committers racing Close are released with
			// their entries durable, not with an error.
			w.groupSync()
			return
		case <-w.wake:
		}
		if w.groupLatency > 0 {
			t := w.clock.NewTimer(w.groupLatency)
			select {
			case <-w.stop:
				t.Stop()
				w.groupSync()
				return
			case <-t.C():
			}
		}
		w.groupSync()
	}
}

// groupSync performs one group fsync: snapshot the high-water seq,
// flush outside mu (appends keep landing meanwhile — they form the
// next batch), then publish coverage and wake the waiters.
func (w *WAL) groupSync() {
	w.mu.Lock()
	pending := w.seq
	if pending == w.syncedSeq {
		w.mu.Unlock()
		return
	}
	w.mu.Unlock()
	err := w.f.Sync()
	w.mu.Lock()
	if err != nil && w.syncErr == nil {
		w.syncErr = err
	}
	if err == nil && pending > w.syncedSeq {
		w.syncedSeq = pending
		if w.syncedSeq == w.seq {
			w.dirty = false
		}
	}
	w.synced.Broadcast()
	w.mu.Unlock()
}

// append writes one entry as a single line in a single write call; the
// fsync policy decides whether the entry is also forced to disk before
// the append returns. Under SyncGroup the returned seq is the entry's
// place in the group-commit order: the caller must not acknowledge the
// mutation until waitDurable(seq) returns nil. Other policies return
// seq 0 (waitDurable treats it as already durable).
func (w *WAL) append(e walEntry) (int64, error) {
	line, err := json.Marshal(e)
	if err != nil {
		return 0, fmt.Errorf("store: encoding wal entry: %w", err)
	}
	line = append(line, '\n')
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.f.Write(line); err != nil {
		return 0, fmt.Errorf("store: appending wal entry: %w", err)
	}
	switch w.policy {
	case SyncAlways:
		if err := w.f.Sync(); err != nil {
			return 0, fmt.Errorf("store: syncing wal: %w", err)
		}
	case SyncInterval:
		if !w.dirty {
			w.dirty = true
			w.firstDirty = w.clock.Now()
		}
	case SyncGroup:
		w.seq++
		if !w.dirty {
			w.dirty = true
			w.firstDirty = w.clock.Now()
		}
		select {
		case w.wake <- struct{}{}:
		default: // flusher already has a wakeup pending
		}
		return w.seq, nil
	}
	return 0, nil
}

// waitDurable blocks until the group fsync covers seq — the second
// half of a SyncGroup commit, called after the store lock held across
// append has been released (waiting under that lock would serialise
// commits and defeat the batching). A nil WAL, a non-group policy or
// seq 0 return immediately. An error means the entry may not be on
// disk: the caller must not acknowledge upstream (the in-memory
// mutation stands — a replay against it deduplicates).
func (w *WAL) waitDurable(seq int64) error {
	if w == nil || w.policy != SyncGroup || seq == 0 {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.syncedSeq < seq && w.syncErr == nil && !w.closed {
		w.synced.Wait()
	}
	if w.syncedSeq >= seq {
		return nil
	}
	if w.syncErr != nil {
		return fmt.Errorf("store: group wal sync: %w", w.syncErr)
	}
	return errors.New("store: wal closed before group sync covered entry")
}

// DirtyDuration reports how long acknowledged journal entries have
// been waiting for an fsync: the age of the oldest unsynced append,
// or 0 when the journal is clean. Only the SyncInterval policy
// accumulates dirtiness (SyncAlways syncs inline; SyncOS delegates
// flushing to the kernel), so this is the health signal that the
// interval flusher is alive and keeping up.
func (w *WAL) DirtyDuration() time.Duration {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.dirty {
		return 0
	}
	return w.clock.Since(w.firstDirty)
}

// Sync forces buffered journal bytes to disk regardless of policy.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	err := w.f.Sync()
	if err == nil {
		w.dirty = false
		w.publishSyncedLocked()
	}
	return err
}

// publishSyncedLocked marks every appended entry durable and releases
// group-commit waiters; callers must hold mu and have fsynced (or
// truncated) the file first.
func (w *WAL) publishSyncedLocked() {
	if w.synced == nil {
		return
	}
	w.syncedSeq = w.seq
	w.synced.Broadcast()
}

// Reset truncates the journal to empty — called after a snapshot has
// been durably published, which supersedes every journaled entry.
// Callers must ensure no append can race the reset (Store holds its
// write-excluding lock across SnapshotCompact for exactly this reason).
func (w *WAL) Reset() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("store: truncating wal: %w", err)
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("store: rewinding wal: %w", err)
	}
	w.dirty = false
	// Truncation supersedes every journaled entry, so any group-commit
	// waiter's entry is moot: the snapshot that triggered the reset
	// already covers it durably.
	w.publishSyncedLocked()
	return w.f.Sync()
}

// Close flushes and closes the journal. The group flusher (if any)
// performs a final fsync before exiting, so committers waiting in
// waitDurable are released durable; any append racing past that final
// flush is still synced here before the file closes, and its waiter is
// released by the closed broadcast.
func (w *WAL) Close() error {
	w.stopOnce.Do(func() { close(w.stop) })
	<-w.done
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.f.Sync(); err == nil {
		w.publishSyncedLocked()
	}
	w.closed = true
	if w.synced != nil {
		w.synced.Broadcast()
	}
	return w.f.Close()
}

// AttachWAL makes every subsequent Insert and Merge journal itself to w
// before mutating the store. Attach before the store starts taking
// traffic; a nil w detaches.
func (s *Store) AttachWAL(w *WAL) {
	s.mu.Lock()
	s.wal = w
	s.mu.Unlock()
}

// WALDirtyDuration reports the attached journal's sync lag (see
// WAL.DirtyDuration); 0 with no WAL attached.
func (s *Store) WALDirtyDuration() time.Duration {
	s.mu.RLock()
	w := s.wal
	s.mu.RUnlock()
	return w.DirtyDuration()
}

// RecoverWAL replays the journal at path into base (nil starts an empty
// store) and returns the recovered store plus the number of entries
// applied. base is typically the last published snapshot; insert
// entries the snapshot already contains are skipped and merge entries
// re-apply idempotently, so any prefix overlap between snapshot and
// journal is harmless. A torn final line — the signature of a crash
// mid-append — is logged, dropped, and truncated away so the journal is
// append-clean afterwards; corruption anywhere else fails the recovery.
func RecoverWAL(path string, base *Store, logger *slog.Logger) (*Store, int, error) {
	if logger == nil {
		logger = slog.Default()
	}
	s := base
	if s == nil {
		s = New()
	}
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return s, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("store: opening wal %s: %w", path, err)
	}
	defer f.Close()

	br := bufio.NewReader(f)
	applied := 0
	var goodOffset int64 // end of the last intact, newline-terminated entry
	for lineNo := 1; ; lineNo++ {
		line, err := br.ReadString('\n')
		if err == io.EOF {
			if len(line) > 0 {
				// Data after the last newline: a torn append. Drop it.
				logger.Warn("store: wal ends in a torn entry; dropping tail",
					"path", path, "line", lineNo, "bytes", len(line))
				if err := truncateAt(path, goodOffset); err != nil {
					return nil, 0, err
				}
			}
			break
		}
		if err != nil {
			return nil, 0, fmt.Errorf("store: reading wal %s: %w", path, err)
		}
		var e walEntry
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			// A newline-terminated line that does not parse is real
			// corruption, not a crash artifact: appends write the whole
			// line atomically.
			return nil, 0, fmt.Errorf("store: wal %s entry %d corrupt: %w", path, lineNo, err)
		}
		ok, err := s.applyWALEntry(e)
		if err != nil {
			return nil, 0, fmt.Errorf("store: wal %s entry %d: %w", path, lineNo, err)
		}
		if ok {
			applied++
		}
		goodOffset += int64(len(line))
	}
	return s, applied, nil
}

// applyWALEntry replays one journal entry; ok reports whether it
// changed the store (snapshot-covered inserts are skipped).
func (s *Store) applyWALEntry(e walEntry) (ok bool, err error) {
	switch e.Op {
	case "ins":
		if e.Im == nil {
			return false, fmt.Errorf("insert entry missing record")
		}
		s.mu.Lock()
		have := int64(len(s.recs))
		s.mu.Unlock()
		if e.Im.ID <= have {
			// Already covered by the snapshot the journal was replayed
			// over (crash landed between snapshot publish and reset).
			return false, nil
		}
		if e.Im.ID != have+1 {
			return false, fmt.Errorf("insert id %d does not follow store length %d", e.Im.ID, have)
		}
		if _, err := s.Insert(*e.Im); err != nil {
			return false, err
		}
		return true, nil
	case "mrg":
		s.mu.Lock()
		defer s.mu.Unlock()
		if e.ID < 1 || e.ID > int64(len(s.recs)) {
			return false, fmt.Errorf("merge id %d out of range (store length %d)", e.ID, len(s.recs))
		}
		im := &s.recs[e.ID-1]
		prev := MergePrev{
			Exposure:           im.Exposure,
			MouseMoves:         im.MouseMoves,
			Clicks:             im.Clicks,
			VisibilityMeasured: im.VisibilityMeasured,
			MaxVisibleFraction: im.MaxVisibleFraction,
		}
		im.Exposure = time.Duration(e.ExposureNS)
		im.MouseMoves = e.MouseMoves
		im.Clicks = e.Clicks
		im.VisibilityMeasured = e.VisMeasured
		im.MaxVisibleFraction = e.MaxVis
		s.publishFeed(FeedEvent{Kind: FeedMerge, Im: *im, Prev: prev})
		return true, nil
	}
	return false, fmt.Errorf("unknown op %q", e.Op)
}

// truncateAt chops the file to size off, removing a torn tail.
func truncateAt(path string, off int64) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return fmt.Errorf("store: reopening wal for truncation: %w", err)
	}
	defer f.Close()
	if err := f.Truncate(off); err != nil {
		return fmt.Errorf("store: truncating torn wal tail: %w", err)
	}
	return f.Sync()
}

// Continuation is the contribution of a reconnected beacon session to
// an impression it resumes: the extra connection time and the
// interactions observed on the new connection. Store.Merge folds it
// into the original record instead of double-counting the impression.
type Continuation struct {
	// Exposure is the resumed connection's duration, added to the
	// record's exposure (the paper measures exposure as total
	// connection time, however the connections end).
	Exposure time.Duration
	// MouseMoves and Clicks are interaction counts from the resumed
	// session, added to the record's counts.
	MouseMoves int
	Clicks     int
	// VisibilityMeasured / MaxVisibleFraction extend the record's
	// visibility measurement (logical-or / max).
	VisibilityMeasured bool
	MaxVisibleFraction float64
}

// Merge folds cont into the impression with the given ID — the
// collector's dedup path for a beacon that reconnected mid-exposure
// with the same nonce. The journal entry (when a WAL is attached)
// records the absolute post-merge values, keeping replay idempotent.
func (s *Store) Merge(id int64, cont Continuation) error {
	return s.MergeTraced(id, cont, nil)
}

// MergeTraced is Merge carrying the resumed session's pipeline trace
// (nil when unsampled). A reconnected beacon resends the original
// trace ID, so the merge leg's trace shares the ID of the insert
// leg's — the flight recorder then holds one trace per session leg of
// the impression. Stamping and finishing mirror InsertTraced.
func (s *Store) MergeTraced(id int64, cont Continuation, tr *trace.Trace) error {
	if cont.Exposure < 0 {
		tr.Truncate("reject:merge-validate")
		return fmt.Errorf("store: negative continuation exposure %v", cont.Exposure)
	}
	s.mu.Lock()
	if id < 1 || id > int64(len(s.recs)) {
		s.mu.Unlock()
		tr.Truncate("reject:merge-target")
		return fmt.Errorf("store: merge target %d out of range (store length %d)", id, len(s.recs))
	}
	im := &s.recs[id-1]
	prev := MergePrev{
		Exposure:           im.Exposure,
		MouseMoves:         im.MouseMoves,
		Clicks:             im.Clicks,
		VisibilityMeasured: im.VisibilityMeasured,
		MaxVisibleFraction: im.MaxVisibleFraction,
	}
	exp := im.Exposure + cont.Exposure
	moves := im.MouseMoves + cont.MouseMoves
	clicks := im.Clicks + cont.Clicks
	vis := im.VisibilityMeasured || cont.VisibilityMeasured
	maxVis := im.MaxVisibleFraction
	if cont.MaxVisibleFraction > maxVis {
		maxVis = cont.MaxVisibleFraction
	}
	wal := s.wal
	var walSeq int64
	if wal != nil {
		seq, err := wal.append(walEntry{
			Op: "mrg", ID: id,
			ExposureNS:  int64(exp),
			MouseMoves:  moves,
			Clicks:      clicks,
			VisMeasured: vis,
			MaxVis:      maxVis,
		})
		if err != nil {
			s.mu.Unlock()
			tr.Truncate("reject:wal-append")
			return err
		}
		walSeq = seq
		tr.Stage(trace.StageWAL)
	}
	im.Exposure = exp
	im.MouseMoves = moves
	im.Clicks = clicks
	im.VisibilityMeasured = vis
	im.MaxVisibleFraction = maxVis
	tr.Stage(trace.StageCommit)
	delivered := s.publishFeed(FeedEvent{Kind: FeedMerge, Im: *im, Prev: prev, Trace: tr})
	s.mu.Unlock()
	// Same group-commit rendezvous as InsertTraced: wait outside the
	// store lock; an error means don't ack, the merged state stands.
	if err := wal.waitDurable(walSeq); err != nil {
		return err
	}
	if delivered == 0 {
		tr.Finish()
	}
	return nil
}

// SnapshotCompact writes a consistent snapshot through persist and,
// when persist succeeds, resets the attached WAL (no-op without one).
// persist receives a write function that streams the snapshot to any
// writer; it should only return nil once the snapshot is durably
// published (e.g. temp-file + rename). The store's writer-excluding
// lock is held across both steps, so no insert can land between the
// snapshot scan and the journal truncation — the invariant that makes
// crash recovery (snapshot + journal replay) lossless.
func (s *Store) SnapshotCompact(persist func(write func(io.Writer) error) error) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if err := persist(func(w io.Writer) error { return s.writeSnapshotLocked(w) }); err != nil {
		return err
	}
	if s.wal != nil {
		return s.wal.Reset()
	}
	return nil
}
