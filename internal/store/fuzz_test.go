package store

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// fuzzLogger keeps WAL-repair warnings out of fuzz output.
func fuzzLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// walBytes journals a small store mutation history and returns the raw
// journal — a well-formed seed for the replay fuzzer.
func walBytes(t interface{ Fatal(...any) }, mutate func(*Store)) []byte {
	dir, err := os.MkdirTemp("", "walfuzz")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "seed.wal")
	w, err := OpenWAL(path, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := New()
	s.AttachWAL(w)
	mutate(s)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func fuzzImpression(i int) Impression {
	return Impression{
		CampaignID: "fz",
		Publisher:  "pub.es",
		PageURL:    "http://pub.es/p",
		UserKey:    "uk",
		Nonce:      string(rune('a' + i)),
		Timestamp:  time.Date(2016, 3, 29, 12, i, 0, 0, time.UTC),
		Exposure:   time.Duration(i+1) * time.Second,
	}
}

// FuzzRecoverWAL feeds arbitrary bytes to the journal replayer: it must
// never panic, every record it recovers must be valid, and — because
// replay repairs a torn tail by truncating it — a second replay of the
// same file must succeed and produce the identical store.
func FuzzRecoverWAL(f *testing.F) {
	f.Add(walBytes(f, func(s *Store) {
		id, _ := s.Insert(fuzzImpression(0))
		s.Insert(fuzzImpression(1))
		s.Merge(id, Continuation{Exposure: time.Second, Clicks: 1})
	}))
	full := walBytes(f, func(s *Store) { s.Insert(fuzzImpression(2)) })
	f.Add(full[:len(full)-3]) // torn tail
	f.Add([]byte("{\"op\":\"ins\"}\n"))
	f.Add([]byte("not json\n"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 64<<10 {
			// Replay cost is linear in journal size; giant mutated
			// inputs only slow the smoke run without new structure.
			return
		}
		path := filepath.Join(t.TempDir(), "fuzz.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		rec, _, err := RecoverWAL(path, nil, fuzzLogger())
		if err != nil {
			return
		}
		rec.ForEach(func(im Impression) bool {
			if verr := im.Validate(); verr != nil {
				t.Fatalf("recovered invalid record %d: %v", im.ID, verr)
			}
			return true
		})
		// The replay left a repaired journal behind: replaying it again
		// must yield the same store.
		again, _, err := RecoverWAL(path, nil, fuzzLogger())
		if err != nil {
			t.Fatalf("replay of repaired journal failed: %v", err)
		}
		if again.Len() != rec.Len() {
			t.Fatalf("second replay recovered %d records, first %d", again.Len(), rec.Len())
		}
	})
}

// FuzzReadSnapshot feeds arbitrary bytes to the snapshot reader: no
// panics, recovered records valid, and an accepted snapshot must
// round-trip through WriteSnapshot unchanged.
func FuzzReadSnapshot(f *testing.F) {
	var buf bytes.Buffer
	s := New()
	s.Insert(fuzzImpression(0))
	s.Insert(fuzzImpression(1))
	if err := s.WriteSnapshot(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:buf.Len()-4]) // truncated final record
	f.Add([]byte("{}"))
	f.Add([]byte("null"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := rec.WriteSnapshot(&out); err != nil {
			t.Fatalf("accepted snapshot fails to re-write: %v", err)
		}
		again, err := ReadSnapshot(&out)
		if err != nil {
			t.Fatalf("re-read failed: %v", err)
		}
		if again.Len() != rec.Len() {
			t.Fatalf("round trip drift: %d vs %d records", again.Len(), rec.Len())
		}
		a, b := dumpAll(rec), dumpAll(again)
		for i := range a {
			aj, _ := json.Marshal(a[i])
			bj, _ := json.Marshal(b[i])
			if !bytes.Equal(aj, bj) {
				t.Fatalf("record %d drift: %s vs %s", i, aj, bj)
			}
		}
	})
}

func dumpAll(s *Store) []Impression {
	var out []Impression
	s.ForEach(func(im Impression) bool {
		out = append(out, im)
		return true
	})
	return out
}
