package store

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// failingWriter accepts limit bytes and then fails every write — an
// in-memory stand-in for a disk filling up mid-snapshot.
type failingWriter struct {
	limit int
	buf   bytes.Buffer
}

var errWriterDead = errors.New("disk full")

func (f *failingWriter) Write(b []byte) (int, error) {
	if f.buf.Len()+len(b) > f.limit {
		room := f.limit - f.buf.Len()
		if room > 0 {
			f.buf.Write(b[:room])
		}
		return room, errWriterDead
	}
	return f.buf.Write(b)
}

func TestWriteSnapshotPropagatesWriterFailure(t *testing.T) {
	s := New()
	for i := 0; i < 50; i++ {
		if _, err := s.Insert(walImpression("c1", i)); err != nil {
			t.Fatal(err)
		}
	}
	fw := &failingWriter{limit: 300}
	if err := s.WriteSnapshot(fw); !errors.Is(err, errWriterDead) {
		t.Fatalf("WriteSnapshot over a failing writer returned %v, want the writer's error", err)
	}
	// The failure is the writer's problem, not the store's: it still
	// serves reads and snapshots cleanly afterwards.
	if s.Len() != 50 {
		t.Fatalf("store mutated by failed snapshot: %d records", s.Len())
	}
	var ok bytes.Buffer
	if err := s.WriteSnapshot(&ok); err != nil {
		t.Fatalf("snapshot after failed snapshot: %v", err)
	}
	got, err := ReadSnapshot(&ok)
	if err != nil || got.Len() != 50 {
		t.Fatalf("retry round-trip: len=%d err=%v", got.Len(), err)
	}
}

func TestReadSnapshotToleratesTruncatedFinalRecord(t *testing.T) {
	s := New()
	for i := 0; i < 3; i++ {
		if _, err := s.Insert(walImpression("c1", i)); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.String()
	// Chop mid-way through the last record — a writer that died between
	// write(2) calls.
	lines := strings.SplitAfter(strings.TrimSuffix(full, "\n"), "\n")
	torn := strings.Join(lines[:2], "") + lines[2][:len(lines[2])/2]

	got, err := ReadSnapshot(strings.NewReader(torn))
	if err != nil {
		t.Fatalf("truncated final record must not fail the load: %v", err)
	}
	if got.Len() != 2 {
		t.Fatalf("kept %d records, want the 2 intact ones", got.Len())
	}
	for id := int64(1); id <= 2; id++ {
		want, _ := s.Get(id)
		if g, ok := got.Get(id); !ok || g != want {
			t.Fatalf("record %d mismatch after truncated load", id)
		}
	}
	// Corruption that is NOT a truncated tail still fails.
	corrupt := lines[0] + "###garbage###\n" + lines[2]
	if _, err := ReadSnapshot(strings.NewReader(corrupt)); err == nil {
		t.Fatal("mid-file corruption silently accepted")
	}
}

func TestWriteCSVPropagatesWriterFailure(t *testing.T) {
	s := New()
	for i := 0; i < 50; i++ {
		if _, err := s.Insert(walImpression("c1", i)); err != nil {
			t.Fatal(err)
		}
	}
	fw := &failingWriter{limit: 200}
	if err := s.WriteCSV(fw); !errors.Is(err, errWriterDead) {
		t.Fatalf("WriteCSV over a failing writer returned %v, want the writer's error", err)
	}
}
