package store

import (
	"sort"
	"sync"
	"sync/atomic"
)

// The secondary indexes (campaign, publisher, user) are sharded: each
// shard owns a disjoint slice of the key space behind its own RWMutex,
// so audits streaming different campaigns never contend on one lock and
// a long analysis read never blocks lookups of unrelated keys. The
// record log itself stays a single append-only slice under the store's
// main lock; index entries are positions into it.
//
// Two invariants make the zero-copy read path work:
//
//   - Posting lists only ever grow by append. A slice header read under
//     the shard lock therefore stays valid forever: a later append may
//     reallocate the backing array, but the elements visible through
//     the old header are never rewritten.
//   - An index entry is only published after its record is in the log
//     (Insert appends the record, then indexes it, all under the
//     store's write lock). Any posting-list snapshot taken before
//     acquiring the store's read lock can only reference records the
//     log already holds.

// indexShardCount must be a power of two (the shard picker masks the
// hash). 16 shards keep per-shard maps small at paper scale while
// bounding the fixed footprint of an empty store.
const indexShardCount = 16

// shardedIndex is one secondary index: key -> posting list of record
// positions, split across indexShardCount lock-striped shards.
type shardedIndex struct {
	shards [indexShardCount]indexShard

	// keyGen counts distinct keys ever created; it doubles as the cache
	// generation for the sorted key listing below.
	keyGen atomic.Int64

	// listing caches the sorted key list (Campaigns(), Publishers(""),
	// Users("") are called once per analysis dimension): it is rebuilt
	// only when a new key appeared since the last build, not re-sorted
	// on every call.
	listing struct {
		mu     sync.Mutex
		gen    int64
		sorted []string
	}
}

type indexShard struct {
	mu sync.RWMutex
	m  map[string][]int
}

// shard picks the shard for key with FNV-1a, inlined to keep the
// insert hot path allocation-free.
func (x *shardedIndex) shard(key string) *indexShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return &x.shards[h&(indexShardCount-1)]
}

// add appends record position idx to key's posting list. Callers hold
// the store's write lock, which is what serialises appends and keeps
// per-key posting lists in insertion order; the shard lock only
// excludes concurrent readers of the same shard.
func (x *shardedIndex) add(key string, idx int) {
	sh := x.shard(key)
	sh.mu.Lock()
	if sh.m == nil {
		sh.m = map[string][]int{}
	}
	if _, ok := sh.m[key]; !ok {
		x.keyGen.Add(1)
	}
	sh.m[key] = append(sh.m[key], idx)
	sh.mu.Unlock()
}

// snapshot returns the current posting list header for key. Per the
// append-only invariant the returned slice is immutable: it is safe to
// iterate without any lock held.
func (x *shardedIndex) snapshot(key string) []int {
	sh := x.shard(key)
	sh.mu.RLock()
	idxs := sh.m[key]
	sh.mu.RUnlock()
	return idxs
}

// numKeys returns the number of distinct keys.
func (x *shardedIndex) numKeys() int {
	return int(x.keyGen.Load())
}

// sortedKeys returns the distinct keys, sorted. The result is shared
// with the internal cache and must not be mutated by callers inside
// this package; exported listing methods copy it.
func (x *shardedIndex) sortedKeys() []string {
	gen := x.keyGen.Load()
	l := &x.listing
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.gen == gen && l.sorted != nil {
		return l.sorted
	}
	out := make([]string, 0, gen)
	for i := range x.shards {
		sh := &x.shards[i]
		sh.mu.RLock()
		for k := range sh.m {
			out = append(out, k)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	// Keys created while we were collecting keep the cache one
	// generation behind; record the generation we actually saw so the
	// next call rebuilds.
	l.gen = gen
	l.sorted = out
	return out
}

// copyKeys returns a caller-owned copy of sortedKeys.
func (x *shardedIndex) copyKeys() []string {
	keys := x.sortedKeys()
	out := make([]string, len(keys))
	copy(out, keys)
	return out
}
