package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Conversion is one desired action (purchase, booking, signup) reported
// by the advertiser's own conversion pixel and attributed to a user.
// The paper defines the conversion ratio in §2 and defers its analysis
// to future work; this implements it.
type Conversion struct {
	// ID is the store-assigned sequence number (1-based).
	ID int64 `json:"id"`
	// CampaignID is the campaign the converting user was exposed to.
	CampaignID string `json:"campaign_id"`
	// UserKey is the same (IP pseudonym, User-Agent) identity the
	// impression records use, so conversions join to exposures.
	UserKey string `json:"user_key"`
	// Action names the conversion event, e.g. "purchase".
	Action string `json:"action"`
	// ValueCents is the conversion's monetary value in euro cents
	// (0 when the action has no value).
	ValueCents int64 `json:"value_cents"`
	// Timestamp is the conversion time at the collector.
	Timestamp time.Time `json:"timestamp"`
}

// Validate checks the record is complete enough to insert.
func (c *Conversion) Validate() error {
	switch {
	case c.CampaignID == "":
		return fmt.Errorf("store: conversion missing campaign id")
	case c.UserKey == "":
		return fmt.Errorf("store: conversion missing user key")
	case c.Action == "":
		return fmt.Errorf("store: conversion missing action")
	case c.Timestamp.IsZero():
		return fmt.Errorf("store: conversion missing timestamp")
	case c.ValueCents < 0:
		return fmt.Errorf("store: negative conversion value %d", c.ValueCents)
	}
	return nil
}

// conversionLog holds the conversion records alongside the impression
// store. Kept separate so impression scans stay unaffected.
type conversionLog struct {
	mu         sync.RWMutex
	recs       []Conversion
	byCampaign map[string][]int
	byUser     map[string][]int
}

func (l *conversionLog) init() {
	if l.byCampaign == nil {
		l.byCampaign = map[string][]int{}
		l.byUser = map[string][]int{}
	}
}

// InsertConversion validates c, assigns it the next ID and appends it.
func (s *Store) InsertConversion(c Conversion) (int64, error) {
	if err := c.Validate(); err != nil {
		s.tel.convFailures.Inc()
		return 0, err
	}
	l := &s.conversions
	l.mu.Lock()
	defer l.mu.Unlock()
	l.init()
	idx := len(l.recs)
	c.ID = int64(idx + 1)
	l.recs = append(l.recs, c)
	l.byCampaign[c.CampaignID] = append(l.byCampaign[c.CampaignID], idx)
	l.byUser[c.UserKey] = append(l.byUser[c.UserKey], idx)
	// Published under l.mu (not s.mu): the feed's own mutex assigns
	// the cross-log sequence number, and Subscribe holds both read
	// locks while priming, so the snapshot/delta cut stays consistent.
	s.publishFeed(FeedEvent{Kind: FeedConversion, Conv: c})
	s.tel.convInserts.Inc()
	return c.ID, nil
}

// NumConversions returns the number of stored conversions.
func (s *Store) NumConversions() int {
	l := &s.conversions
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.recs)
}

// Conversions returns a copy of one campaign's conversions in insertion
// order; an empty campaignID returns all of them.
func (s *Store) Conversions(campaignID string) []Conversion {
	l := &s.conversions
	l.mu.RLock()
	defer l.mu.RUnlock()
	if campaignID == "" {
		out := make([]Conversion, len(l.recs))
		copy(out, l.recs)
		return out
	}
	idxs := l.byCampaign[campaignID]
	out := make([]Conversion, len(idxs))
	for i, idx := range idxs {
		out[i] = l.recs[idx]
	}
	return out
}

// ConversionsByUser returns one user's conversions for a campaign.
func (s *Store) ConversionsByUser(campaignID, userKey string) []Conversion {
	l := &s.conversions
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []Conversion
	for _, idx := range l.byUser[userKey] {
		if l.recs[idx].CampaignID == campaignID {
			out = append(out, l.recs[idx])
		}
	}
	return out
}

// ConvertingCampaigns returns the campaigns with at least one
// conversion, sorted.
func (s *Store) ConvertingCampaigns() []string {
	l := &s.conversions
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]string, 0, len(l.byCampaign))
	for c := range l.byCampaign {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// WriteConversionsSnapshot streams the conversions as JSON lines.
func (s *Store) WriteConversionsSnapshot(w io.Writer) error {
	l := &s.conversions
	l.mu.RLock()
	defer l.mu.RUnlock()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range l.recs {
		if err := enc.Encode(l.recs[i]); err != nil {
			return fmt.Errorf("store: encoding conversion %d: %w", l.recs[i].ID, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("store: flushing conversions snapshot: %w", err)
	}
	return nil
}

// ReadConversionsSnapshot loads JSON-lines conversions into the store,
// reassigning IDs in file order.
func (s *Store) ReadConversionsSnapshot(r io.Reader) error {
	dec := json.NewDecoder(bufio.NewReader(r))
	for line := 1; ; line++ {
		var c Conversion
		if err := dec.Decode(&c); err == io.EOF {
			return nil
		} else if err != nil {
			return fmt.Errorf("store: decoding conversion %d: %w", line, err)
		}
		if _, err := s.InsertConversion(c); err != nil {
			return fmt.Errorf("store: conversion snapshot record %d: %w", line, err)
		}
	}
}
