package store

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func walImpression(campaign string, n int) Impression {
	return Impression{
		CampaignID: campaign,
		CreativeID: "cr",
		Publisher:  "pub.es",
		PageURL:    "http://pub.es/p",
		UserKey:    "u" + strings.Repeat("x", n%3),
		Timestamp:  time.Date(2016, 3, 29, 0, 0, n, 0, time.UTC),
		Exposure:   time.Duration(n) * time.Second,
		Nonce:      "nonce-" + campaign + "-" + strings.Repeat("a", n%5),
	}
}

func openTestWAL(t *testing.T, opts WALOptions) (string, *WAL) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "journal.wal")
	w, err := OpenWAL(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	return path, w
}

func TestWALRecoversEveryInsert(t *testing.T) {
	path, w := openTestWAL(t, WALOptions{Policy: SyncAlways})
	s := New()
	s.AttachWAL(w)
	for i := 0; i < 25; i++ {
		im := walImpression("c1", i)
		im.Nonce = ""
		if _, err := s.Insert(im); err != nil {
			t.Fatal(err)
		}
	}
	// Crash: no snapshot ever written, recover from the journal alone.
	rec, applied, err := RecoverWAL(path, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 25 || rec.Len() != 25 {
		t.Fatalf("recovered %d entries into %d records, want 25/25", applied, rec.Len())
	}
	for id := int64(1); id <= 25; id++ {
		orig, _ := s.Get(id)
		got, ok := rec.Get(id)
		if !ok || got != orig {
			t.Fatalf("record %d mismatch after recovery:\n got %+v\nwant %+v", id, got, orig)
		}
	}
	// Indexes rebuilt.
	if len(rec.ByCampaign("c1")) != 25 {
		t.Fatalf("campaign index lost records: %d", len(rec.ByCampaign("c1")))
	}
}

func TestWALMergeReplayIsIdempotent(t *testing.T) {
	path, w := openTestWAL(t, WALOptions{Policy: SyncAlways})
	s := New()
	s.AttachWAL(w)
	id, err := s.Insert(walImpression("c1", 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Merge(id, Continuation{
		Exposure:           2 * time.Second,
		MouseMoves:         3,
		Clicks:             1,
		VisibilityMeasured: true,
		MaxVisibleFraction: 0.8,
	}); err != nil {
		t.Fatal(err)
	}
	want, _ := s.Get(id)

	// Recover into an empty base...
	rec, _, err := RecoverWAL(path, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := rec.Get(id); got != want {
		t.Fatalf("merge lost in recovery:\n got %+v\nwant %+v", got, want)
	}

	// ...and into a base that ALREADY contains the fully merged state
	// (crash between snapshot rename and journal reset): replay must
	// not double-apply.
	base := New()
	if _, err := base.Insert(want); err != nil {
		t.Fatal(err)
	}
	rec2, _, err := RecoverWAL(path, base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := rec2.Get(id); got != want {
		t.Fatalf("replay over snapshot double-applied:\n got %+v\nwant %+v", got, want)
	}
	if rec2.Len() != 1 {
		t.Fatalf("replay over snapshot duplicated records: %d", rec2.Len())
	}
}

func TestWALTornTailToleratedAndTruncated(t *testing.T) {
	path, w := openTestWAL(t, WALOptions{Policy: SyncAlways})
	s := New()
	s.AttachWAL(w)
	for i := 0; i < 5; i++ {
		if _, err := s.Insert(walImpression("c1", i)); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	// Simulate a crash mid-append: half an entry, no newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"ins","im":{"id":6,"campaign`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	rec, applied, err := RecoverWAL(path, nil, nil)
	if err != nil {
		t.Fatalf("torn tail must not fail recovery: %v", err)
	}
	if applied != 5 || rec.Len() != 5 {
		t.Fatalf("recovered %d/%d records, want 5/5", applied, rec.Len())
	}
	// The torn tail is physically gone: the journal is append-clean and
	// a second recovery sees exactly the same state.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) == 0 || raw[len(raw)-1] != '\n' {
		t.Fatalf("journal not truncated to a newline boundary (len %d)", len(raw))
	}
	rec2, applied2, err := RecoverWAL(path, nil, nil)
	if err != nil || applied2 != 5 || rec2.Len() != 5 {
		t.Fatalf("second recovery diverged: applied=%d len=%d err=%v", applied2, rec2.Len(), err)
	}
}

func TestWALCorruptMiddleFailsRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	content := `{"op":"ins","im":{"id":1,"campaign_id":"c","publisher":"p","user_key":"u","timestamp":"2016-03-29T00:00:00Z"}}
not json at all
{"op":"ins","im":{"id":2,"campaign_id":"c","publisher":"p","user_key":"u","timestamp":"2016-03-29T00:00:01Z"}}
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := RecoverWAL(path, nil, nil); err == nil {
		t.Fatal("corrupt middle entry must fail recovery, not be skipped")
	}
}

func TestWALMissingFileIsEmptyRecovery(t *testing.T) {
	rec, applied, err := RecoverWAL(filepath.Join(t.TempDir(), "nope.wal"), nil, nil)
	if err != nil || applied != 0 || rec.Len() != 0 {
		t.Fatalf("missing wal: applied=%d len=%d err=%v", applied, rec.Len(), err)
	}
}

func TestSnapshotCompactResetsWAL(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "journal.wal")
	snapPath := filepath.Join(dir, "snap.jsonl")
	w, err := OpenWAL(walPath, WALOptions{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	s := New()
	s.AttachWAL(w)
	for i := 0; i < 10; i++ {
		if _, err := s.Insert(walImpression("c1", i)); err != nil {
			t.Fatal(err)
		}
	}
	// Publish a snapshot with the temp-file + rename discipline and
	// compact the journal.
	err = s.SnapshotCompact(func(write func(io.Writer) error) error {
		tmp := snapPath + ".tmp"
		f, err := os.Create(tmp)
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		return os.Rename(tmp, snapPath)
	})
	if err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(walPath); err != nil || fi.Size() != 0 {
		t.Fatalf("journal not compacted after snapshot: size=%d err=%v", fi.Size(), err)
	}

	// Post-compaction inserts journal from a clean file; recovery =
	// snapshot + journal replay reconstructs everything.
	for i := 10; i < 15; i++ {
		if _, err := s.Insert(walImpression("c2", i)); err != nil {
			t.Fatal(err)
		}
	}
	sf, err := os.Open(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	base, err := ReadSnapshot(sf)
	sf.Close()
	if err != nil {
		t.Fatal(err)
	}
	rec, applied, err := RecoverWAL(walPath, base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 5 || rec.Len() != 15 {
		t.Fatalf("recovery after compaction: applied=%d len=%d, want 5/15", applied, rec.Len())
	}
	for id := int64(1); id <= 15; id++ {
		orig, _ := s.Get(id)
		if got, _ := rec.Get(id); got != orig {
			t.Fatalf("record %d mismatch after compacted recovery", id)
		}
	}
}

// TestSnapshotCompactFailedPersistKeepsWAL: a persist failure must NOT
// truncate the journal — the snapshot never published, so the journal
// is still the only durable copy.
func TestSnapshotCompactFailedPersistKeepsWAL(t *testing.T) {
	path, w := openTestWAL(t, WALOptions{Policy: SyncAlways})
	s := New()
	s.AttachWAL(w)
	if _, err := s.Insert(walImpression("c1", 1)); err != nil {
		t.Fatal(err)
	}
	persistErr := errors.New("disk full")
	if err := s.SnapshotCompact(func(func(io.Writer) error) error { return persistErr }); !errors.Is(err, persistErr) {
		t.Fatalf("want persist error back, got %v", err)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
		t.Fatalf("journal truncated despite failed snapshot: size=%v err=%v", fi, err)
	}
}

func TestWALSyncPolicies(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts WALOptions
	}{
		{"os", WALOptions{Policy: SyncOS}},
		{"always", WALOptions{Policy: SyncAlways}},
		{"interval", WALOptions{Policy: SyncInterval, Interval: 5 * time.Millisecond}},
		{"group", WALOptions{Policy: SyncGroup}},
		{"group-latency", WALOptions{Policy: SyncGroup, GroupLatency: time.Millisecond}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path, w := openTestWAL(t, tc.opts)
			s := New()
			s.AttachWAL(w)
			for i := 0; i < 8; i++ {
				if _, err := s.Insert(walImpression("c1", i)); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.Sync(); err != nil {
				t.Fatal(err)
			}
			rec, _, err := RecoverWAL(path, nil, nil)
			if err != nil || rec.Len() != 8 {
				t.Fatalf("policy %s: recovered %d records, err=%v", tc.name, rec.Len(), err)
			}
		})
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{"": SyncOS, "os": SyncOS, "always": SyncAlways, "interval": SyncInterval, "group": SyncGroup} {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

// TestWALGroupCommitConcurrent hammers a group-commit WAL from many
// goroutines and then recovers: every acknowledged insert must be in
// the journal, and the committers must all have been released by
// shared fsyncs rather than hanging.
func TestWALGroupCommitConcurrent(t *testing.T) {
	path, w := openTestWAL(t, WALOptions{Policy: SyncGroup})
	s := New()
	s.AttachWAL(w)
	const workers, per = 8, 20
	errs := make(chan error, workers)
	for g := 0; g < workers; g++ {
		go func(g int) {
			for i := 0; i < per; i++ {
				im := walImpression("c"+string(rune('a'+g)), i)
				im.Nonce = ""
				if _, err := s.Insert(im); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(g)
	}
	for g := 0; g < workers; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	// Acks imply durability under the group policy: recover WITHOUT
	// closing or syncing first — everything acknowledged must be there.
	rec, applied, err := RecoverWAL(path, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if applied != workers*per || rec.Len() != workers*per {
		t.Fatalf("recovered %d entries into %d records, want %d", applied, rec.Len(), workers*per)
	}
	w.mu.Lock()
	seq, synced := w.seq, w.syncedSeq
	w.mu.Unlock()
	if seq != workers*per || synced != seq {
		t.Fatalf("seq=%d syncedSeq=%d, want both %d", seq, synced, workers*per)
	}
}

// TestWALGroupCloseReleasesWaiters verifies Close performs a final
// group flush so a commit racing shutdown lands durable, not hung.
func TestWALGroupCloseReleasesWaiters(t *testing.T) {
	path, w := openTestWAL(t, WALOptions{Policy: SyncGroup, GroupLatency: time.Hour})
	// A huge latency parks the flusher on its timer; only Close's final
	// flush can release the waiter.
	s := New()
	s.AttachWAL(w)
	done := make(chan error, 1)
	go func() {
		_, err := s.Insert(walImpression("c1", 1))
		done <- err
	}()
	// Give the insert time to append and block in waitDurable.
	time.Sleep(20 * time.Millisecond)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("group-commit waiter not released by Close")
	}
	rec, _, err := RecoverWAL(path, nil, nil)
	if err != nil || rec.Len() != 1 {
		t.Fatalf("recovered %d records, err=%v", rec.Len(), err)
	}
}

// TestWALGroupDirtyDuration checks the sync-lag health signal covers
// the group policy: dirty while a commit is pending, clean after the
// flush catches up.
func TestWALGroupDirtyDuration(t *testing.T) {
	_, w := openTestWAL(t, WALOptions{Policy: SyncGroup})
	s := New()
	s.AttachWAL(w)
	if _, err := s.Insert(walImpression("c1", 1)); err != nil {
		t.Fatal(err)
	}
	// The insert only returns once its entry is flushed, so the journal
	// must already be clean again.
	if d := w.DirtyDuration(); d != 0 {
		t.Fatalf("dirty for %v after acknowledged group commit", d)
	}
}
