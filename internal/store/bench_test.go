package store

import (
	"fmt"
	"io"
	"testing"
	"time"
)

func benchRecord(i int) Impression {
	return Impression{
		CampaignID:  fmt.Sprintf("c%d", i%8),
		CreativeID:  "cr",
		Publisher:   fmt.Sprintf("pub%d.es", i%5000),
		PageURL:     "http://pub.es/p",
		UserAgent:   "Mozilla/5.0",
		IPPseudonym: fmt.Sprintf("ip%d", i%30000),
		UserKey:     fmt.Sprintf("u%d", i%30000),
		ISP:         "isp-a",
		Country:     "ES",
		DataCenter:  "not-data-center",
		Timestamp:   time.Date(2016, 3, 29, 0, 0, 0, 0, time.UTC).Add(time.Duration(i) * time.Second),
		Exposure:    3 * time.Second,
	}
}

func BenchmarkInsert(b *testing.B) {
	s := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.Insert(benchRecord(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func benchStore(b *testing.B, n int) *Store {
	b.Helper()
	s := New()
	for i := 0; i < n; i++ {
		if _, err := s.Insert(benchRecord(i)); err != nil {
			b.Fatal(err)
		}
	}
	return s
}

func BenchmarkByCampaign(b *testing.B) {
	s := benchStore(b, 100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := s.ByCampaign("c3"); len(got) == 0 {
			b.Fatal("empty campaign")
		}
	}
}

func BenchmarkPublishersAggregate(b *testing.B) {
	s := benchStore(b, 100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := s.Publishers(""); len(got) == 0 {
			b.Fatal("no publishers")
		}
	}
}

func BenchmarkFullScan(b *testing.B) {
	s := benchStore(b, 100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		s.ForEach(func(Impression) bool { n++; return true })
		if n != 100_000 {
			b.Fatal("short scan")
		}
	}
}

func BenchmarkWriteSnapshot(b *testing.B) {
	s := benchStore(b, 50_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.WriteSnapshot(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteCSV(b *testing.B) {
	s := benchStore(b, 50_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.WriteCSV(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
