package store

import (
	"bytes"
	"sync"
	"testing"
	"time"
)

func testConversion(campaign, user string, at time.Time) Conversion {
	return Conversion{
		CampaignID: campaign,
		UserKey:    user,
		Action:     "purchase",
		ValueCents: 2500,
		Timestamp:  at,
	}
}

func TestInsertConversion(t *testing.T) {
	s := New()
	id, err := s.InsertConversion(testConversion("c", "u", t0))
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 || s.NumConversions() != 1 {
		t.Fatalf("id=%d num=%d", id, s.NumConversions())
	}
}

func TestInsertConversionValidates(t *testing.T) {
	s := New()
	bad := []Conversion{
		{},
		{CampaignID: "c"},
		{CampaignID: "c", UserKey: "u"},
		{CampaignID: "c", UserKey: "u", Action: "a"},
		{CampaignID: "c", UserKey: "u", Action: "a", Timestamp: t0, ValueCents: -1},
	}
	for i, c := range bad {
		if _, err := s.InsertConversion(c); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if s.NumConversions() != 0 {
		t.Fatal("invalid conversions stored")
	}
}

func TestConversionsQueries(t *testing.T) {
	s := New()
	s.InsertConversion(testConversion("c1", "u1", t0))
	s.InsertConversion(testConversion("c1", "u2", t0.Add(time.Hour)))
	s.InsertConversion(testConversion("c2", "u1", t0.Add(2*time.Hour)))

	if got := s.Conversions("c1"); len(got) != 2 {
		t.Fatalf("Conversions(c1) = %d", len(got))
	}
	if got := s.Conversions(""); len(got) != 3 {
		t.Fatalf("Conversions(all) = %d", len(got))
	}
	if got := s.ConversionsByUser("c1", "u1"); len(got) != 1 {
		t.Fatalf("ConversionsByUser = %d", len(got))
	}
	if got := s.ConversionsByUser("c2", "u2"); len(got) != 0 {
		t.Fatalf("ConversionsByUser(miss) = %d", len(got))
	}
	cs := s.ConvertingCampaigns()
	if len(cs) != 2 || cs[0] != "c1" || cs[1] != "c2" {
		t.Fatalf("ConvertingCampaigns = %v", cs)
	}
}

func TestConversionSnapshotRoundTrip(t *testing.T) {
	s := New()
	for i := 0; i < 20; i++ {
		c := testConversion("c", "u", t0.Add(time.Duration(i)*time.Minute))
		c.ValueCents = int64(100 * i)
		s.InsertConversion(c)
	}
	var buf bytes.Buffer
	if err := s.WriteConversionsSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored := New()
	if err := restored.ReadConversionsSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if restored.NumConversions() != 20 {
		t.Fatalf("restored %d conversions", restored.NumConversions())
	}
	a := s.Conversions("c")
	b := restored.Conversions("c")
	for i := range a {
		if a[i].ValueCents != b[i].ValueCents || !a[i].Timestamp.Equal(b[i].Timestamp) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestReadConversionsSnapshotRejectsGarbage(t *testing.T) {
	s := New()
	if err := s.ReadConversionsSnapshot(bytes.NewBufferString("{broken")); err == nil {
		t.Fatal("garbage accepted")
	}
	if err := s.ReadConversionsSnapshot(bytes.NewBufferString(`{"campaign_id":""}`)); err == nil {
		t.Fatal("invalid record accepted")
	}
}

func TestConversionsConcurrent(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if _, err := s.InsertConversion(testConversion("c", "u", t0.Add(time.Duration(i)*time.Second))); err != nil {
					t.Error(err)
					return
				}
				s.NumConversions()
				s.Conversions("c")
			}
		}(w)
	}
	wg.Wait()
	if s.NumConversions() != 800 {
		t.Fatalf("NumConversions = %d", s.NumConversions())
	}
}
