package store

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

func visitFixture(t *testing.T) *Store {
	t.Helper()
	s := New()
	for i := 0; i < 40; i++ {
		im := Impression{
			CampaignID: fmt.Sprintf("c%d", i%4),
			Publisher:  fmt.Sprintf("pub%d.example", i%5),
			UserKey:    fmt.Sprintf("user%d", i%3),
			Timestamp:  time.Unix(int64(1000+i), 0),
			Exposure:   time.Duration(i) * time.Millisecond,
		}
		if _, err := s.Insert(im); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// The zero-copy visit path must see exactly what the copying accessors
// return, in the same order.
func TestVisitMatchesCopyingAccessors(t *testing.T) {
	s := visitFixture(t)

	var visited []Impression
	s.VisitCampaign("c2", func(im *Impression) bool {
		visited = append(visited, *im)
		return true
	})
	if want := s.ByCampaign("c2"); !reflect.DeepEqual(visited, want) {
		t.Fatalf("VisitCampaign diverges from ByCampaign:\n got %v\nwant %v", visited, want)
	}

	visited = nil
	s.VisitPublisher("pub3.example", func(im *Impression) bool {
		visited = append(visited, *im)
		return true
	})
	if want := s.ByPublisher("pub3.example"); !reflect.DeepEqual(visited, want) {
		t.Fatalf("VisitPublisher diverges from ByPublisher")
	}

	visited = nil
	s.VisitUser("user1", func(im *Impression) bool {
		visited = append(visited, *im)
		return true
	})
	if want := s.ByUser("user1"); !reflect.DeepEqual(visited, want) {
		t.Fatalf("VisitUser diverges from ByUser")
	}

	n := 0
	s.Visit(func(im *Impression) bool { n++; return true })
	if n != s.Len() {
		t.Fatalf("Visit saw %d records, store holds %d", n, s.Len())
	}
}

func TestVisitEarlyStop(t *testing.T) {
	s := visitFixture(t)
	n := 0
	s.VisitCampaign("c0", func(*Impression) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("VisitCampaign visited %d records after early stop", n)
	}
	n = 0
	s.Visit(func(*Impression) bool { n++; return false })
	if n != 1 {
		t.Fatalf("Visit visited %d records after immediate stop", n)
	}
}

func TestVisitUnknownKey(t *testing.T) {
	s := visitFixture(t)
	s.VisitCampaign("nope", func(*Impression) bool {
		t.Fatal("visited a record of an unknown campaign")
		return false
	})
}

func TestCursorSemantics(t *testing.T) {
	s := visitFixture(t)
	want := s.ByCampaign("c1")

	c := s.CampaignCursor("c1")
	if c.Len() != len(want) {
		t.Fatalf("cursor Len = %d, want %d", c.Len(), len(want))
	}

	// Mixed consumption: two Next calls, then Visit for the rest.
	first, ok := c.Next()
	if !ok || !reflect.DeepEqual(first, want[0]) {
		t.Fatalf("Next #1 = (%v, %v), want %v", first, ok, want[0])
	}
	second, ok := c.Next()
	if !ok || !reflect.DeepEqual(second, want[1]) {
		t.Fatalf("Next #2 mismatch")
	}
	var rest []Impression
	c.Visit(func(im *Impression) bool {
		rest = append(rest, *im)
		return true
	})
	if !reflect.DeepEqual(rest, want[2:]) {
		t.Fatalf("cursor Visit remainder mismatch: got %d records, want %d", len(rest), len(want)-2)
	}
	if _, ok := c.Next(); ok {
		t.Fatal("Next succeeded on an exhausted cursor")
	}

	// The cursor is a stable snapshot: records inserted after creation
	// are not visited.
	c2 := s.UserCursor("user0")
	preLen := c2.Len()
	if _, err := s.Insert(Impression{
		CampaignID: "c9", Publisher: "late.example", UserKey: "user0",
		Timestamp: time.Unix(99999, 0),
	}); err != nil {
		t.Fatal(err)
	}
	n := 0
	c2.Visit(func(*Impression) bool { n++; return true })
	if n != preLen {
		t.Fatalf("cursor visited %d records, snapshot had %d", n, preLen)
	}
	if got := s.UserCursor("user0").Len(); got != preLen+1 {
		t.Fatalf("fresh cursor Len = %d, want %d", got, preLen+1)
	}
}

// Sorted listings must stay correct as new keys appear (the cache must
// invalidate on key creation, not serve stale listings).
func TestListingCacheInvalidation(t *testing.T) {
	s := visitFixture(t)
	before := s.Campaigns()
	if again := s.Campaigns(); !reflect.DeepEqual(before, again) {
		t.Fatalf("repeated Campaigns() diverged: %v vs %v", before, again)
	}
	// A caller mutating its copy must not corrupt the cache.
	again := s.Campaigns()
	for i := range again {
		again[i] = "mutated"
	}
	if got := s.Campaigns(); !reflect.DeepEqual(got, before) {
		t.Fatalf("caller mutation leaked into the listing cache: %v", got)
	}

	if _, err := s.Insert(Impression{
		CampaignID: "a-new-campaign", Publisher: "new.example", UserKey: "u",
		Timestamp: time.Unix(5, 0),
	}); err != nil {
		t.Fatal(err)
	}
	got := s.Campaigns()
	if len(got) != len(before)+1 || got[0] != "a-new-campaign" {
		t.Fatalf("Campaigns() after new key = %v", got)
	}
	if pubs := s.Publishers(""); pubs[len(pubs)-1] != "pub4.example" && pubs[0] != "new.example" {
		t.Fatalf("Publishers(\"\") missing new key: %v", pubs)
	}
}

// Concurrent visits, cursor reads, listings and inserts must be safe
// (run under -race in CI) and every visited index must point at a
// fully published record.
func TestConcurrentVisitsAndInserts(t *testing.T) {
	s := New()
	const writers, perWriter = 4, 300
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				_, err := s.Insert(Impression{
					CampaignID: fmt.Sprintf("c%d", i%3),
					Publisher:  fmt.Sprintf("p%d.example", (w+i)%7),
					UserKey:    fmt.Sprintf("u%d", w),
					Timestamp:  time.Unix(int64(i+1), 0),
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}

	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s.VisitCampaign("c1", func(im *Impression) bool {
					if im.CampaignID != "c1" {
						t.Errorf("index pointed at record of campaign %q", im.CampaignID)
						return false
					}
					return true
				})
				s.Campaigns()
				cur := s.CampaignCursor("c2")
				cur.Visit(func(im *Impression) bool { return im.CampaignID == "c2" })
			}
		}()
	}

	// Let readers overlap the writers, then wind down.
	done := make(chan struct{})
	go func() {
		defer close(done)
		wg.Wait()
	}()
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(stop)
	}()
	<-done

	if got := s.Len(); got != writers*perWriter {
		t.Fatalf("store holds %d records, want %d", got, writers*perWriter)
	}
	total := 0
	for _, c := range s.Campaigns() {
		s.VisitCampaign(c, func(*Impression) bool { total++; return true })
	}
	if total != writers*perWriter {
		t.Fatalf("campaign indexes cover %d records, want %d", total, writers*perWriter)
	}
}
