package store

import (
	"bytes"
	"encoding/csv"
	"fmt"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func testImpression(campaign, publisher, user string, at time.Time) Impression {
	return Impression{
		CampaignID:  campaign,
		CreativeID:  "cr1",
		Publisher:   publisher,
		PageURL:     "http://" + publisher + "/page",
		UserAgent:   "UA",
		IPPseudonym: "abcd",
		UserKey:     user,
		ISP:         "isp-a",
		Country:     "ES",
		DataCenter:  "not-data-center",
		Timestamp:   at,
		Exposure:    1500 * time.Millisecond,
		MouseMoves:  2,
		Clicks:      1,
	}
}

var t0 = time.Date(2016, 3, 29, 12, 0, 0, 0, time.UTC)

func TestInsertAssignsSequentialIDs(t *testing.T) {
	s := New()
	for i := 1; i <= 5; i++ {
		id, err := s.Insert(testImpression("c", "p.es", "u", t0))
		if err != nil {
			t.Fatal(err)
		}
		if id != int64(i) {
			t.Fatalf("id = %d, want %d", id, i)
		}
	}
	if s.Len() != 5 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestInsertValidates(t *testing.T) {
	s := New()
	bad := []Impression{
		{},
		{CampaignID: "c"},
		{CampaignID: "c", Publisher: "p"},
		{CampaignID: "c", Publisher: "p", UserKey: "u"},
		func() Impression {
			im := testImpression("c", "p", "u", t0)
			im.Exposure = -time.Second
			return im
		}(),
	}
	for i, im := range bad {
		if _, err := s.Insert(im); err == nil {
			t.Errorf("case %d: invalid impression accepted", i)
		}
	}
	if s.Len() != 0 {
		t.Fatal("invalid inserts changed the store")
	}
}

func TestGet(t *testing.T) {
	s := New()
	id, _ := s.Insert(testImpression("c", "p.es", "u", t0))
	got, ok := s.Get(id)
	if !ok || got.Publisher != "p.es" {
		t.Fatalf("Get(%d) = %+v, %v", id, got, ok)
	}
	if _, ok := s.Get(0); ok {
		t.Fatal("Get(0) succeeded")
	}
	if _, ok := s.Get(99); ok {
		t.Fatal("Get(99) succeeded")
	}
}

func TestIndexes(t *testing.T) {
	s := New()
	s.Insert(testImpression("A", "p1.es", "u1", t0))
	s.Insert(testImpression("A", "p2.es", "u1", t0.Add(time.Minute)))
	s.Insert(testImpression("B", "p1.es", "u2", t0.Add(2*time.Minute)))

	if got := s.ByCampaign("A"); len(got) != 2 {
		t.Fatalf("ByCampaign(A) = %d records", len(got))
	}
	if got := s.ByPublisher("p1.es"); len(got) != 2 {
		t.Fatalf("ByPublisher(p1.es) = %d records", len(got))
	}
	if got := s.ByUser("u1"); len(got) != 2 {
		t.Fatalf("ByUser(u1) = %d records", len(got))
	}
	if got := s.ByCampaign("missing"); len(got) != 0 {
		t.Fatalf("ByCampaign(missing) = %d records", len(got))
	}
	cs := s.Campaigns()
	if len(cs) != 2 || cs[0] != "A" || cs[1] != "B" {
		t.Fatalf("Campaigns = %v", cs)
	}
}

func TestPublishersAndUsers(t *testing.T) {
	s := New()
	s.Insert(testImpression("A", "p1.es", "u1", t0))
	s.Insert(testImpression("A", "p2.es", "u2", t0))
	s.Insert(testImpression("B", "p3.es", "u1", t0))

	if got := s.Publishers("A"); len(got) != 2 {
		t.Fatalf("Publishers(A) = %v", got)
	}
	if got := s.Publishers(""); len(got) != 3 {
		t.Fatalf("Publishers(all) = %v", got)
	}
	if got := s.Users("B"); len(got) != 1 || got[0] != "u1" {
		t.Fatalf("Users(B) = %v", got)
	}
	if got := s.Users(""); len(got) != 2 {
		t.Fatalf("Users(all) = %v", got)
	}
}

func TestForEachEarlyStop(t *testing.T) {
	s := New()
	for i := 0; i < 10; i++ {
		s.Insert(testImpression("c", "p.es", "u", t0))
	}
	n := 0
	s.ForEach(func(Impression) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("ForEach visited %d records after early stop", n)
	}
}

func TestConcurrentInsertAndRead(t *testing.T) {
	s := New()
	const writers, perWriter = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				im := testImpression(
					fmt.Sprintf("c%d", w%3),
					fmt.Sprintf("p%d.es", i%17),
					fmt.Sprintf("u%d-%d", w, i%11),
					t0.Add(time.Duration(i)*time.Second),
				)
				if _, err := s.Insert(im); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	// Concurrent readers.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s.Len()
				s.Publishers("")
				s.ByCampaign("c0")
			}
		}()
	}
	wg.Wait()
	if s.Len() != writers*perWriter {
		t.Fatalf("Len = %d, want %d", s.Len(), writers*perWriter)
	}
	// IDs must be a permutation-free 1..N sequence.
	seen := map[int64]bool{}
	s.ForEach(func(im Impression) bool {
		if seen[im.ID] {
			t.Errorf("duplicate id %d", im.ID)
		}
		seen[im.ID] = true
		return true
	})
	if len(seen) != writers*perWriter {
		t.Fatalf("distinct ids = %d", len(seen))
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := New()
	for i := 0; i < 50; i++ {
		im := testImpression(fmt.Sprintf("c%d", i%3), fmt.Sprintf("p%d.es", i%7),
			fmt.Sprintf("u%d", i%11), t0.Add(time.Duration(i)*time.Minute))
		im.Exposure = time.Duration(i) * 100 * time.Millisecond
		s.Insert(im)
	}
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != s.Len() {
		t.Fatalf("restored %d records, want %d", got.Len(), s.Len())
	}
	for id := int64(1); id <= int64(s.Len()); id++ {
		a, _ := s.Get(id)
		b, _ := got.Get(id)
		if !a.Timestamp.Equal(b.Timestamp) {
			t.Fatalf("record %d timestamp mismatch", id)
		}
		a.Timestamp, b.Timestamp = time.Time{}, time.Time{}
		if a != b {
			t.Fatalf("record %d mismatch:\n%+v\n%+v", id, a, b)
		}
	}
	// Indexes must be rebuilt.
	if len(got.Publishers("")) != len(s.Publishers("")) {
		t.Fatal("publisher index not rebuilt")
	}
}

func TestReadSnapshotRejectsGarbage(t *testing.T) {
	if _, err := ReadSnapshot(strings.NewReader("{not json")); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
	// Valid JSON but invalid record.
	if _, err := ReadSnapshot(strings.NewReader(`{"campaign_id":""}`)); err == nil {
		t.Fatal("invalid record accepted")
	}
}

func TestWriteCSV(t *testing.T) {
	s := New()
	s.Insert(testImpression("c1", "p1.es", "u1", t0))
	s.Insert(testImpression("c2", "p2.es", "u2", t0.Add(time.Hour)))
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("csv rows = %d, want header + 2", len(recs))
	}
	if recs[0][0] != "id" || recs[1][1] != "c1" || recs[2][3] != "p2.es" {
		t.Fatalf("csv content unexpected: %v", recs)
	}
	if recs[1][12] != "1500" {
		t.Fatalf("exposure_ms = %q, want 1500", recs[1][12])
	}
}

// Property: inserting any set of valid records keeps every index
// consistent with a full scan.
func TestIndexConsistencyProperty(t *testing.T) {
	err := quick.Check(func(camps, pubs, users []uint8) bool {
		n := len(camps)
		if len(pubs) < n {
			n = len(pubs)
		}
		if len(users) < n {
			n = len(users)
		}
		s := New()
		for i := 0; i < n; i++ {
			s.Insert(testImpression(
				fmt.Sprintf("c%d", camps[i]%5),
				fmt.Sprintf("p%d.es", pubs[i]%7),
				fmt.Sprintf("u%d", users[i]%9),
				t0.Add(time.Duration(i)*time.Second)))
		}
		// Cross-check ByCampaign against a scan.
		counts := map[string]int{}
		s.ForEach(func(im Impression) bool {
			counts[im.CampaignID]++
			return true
		})
		for c, want := range counts {
			if got := len(s.ByCampaign(c)); got != want {
				return false
			}
		}
		total := 0
		for _, c := range s.Campaigns() {
			total += len(s.ByCampaign(c))
		}
		return total == s.Len()
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}
