package store

import (
	"path/filepath"
	"testing"
	"time"

	"adaudit/internal/simclock"
)

// TestWALIntervalSyncOnVirtualClock proves the interval-sync ticker
// runs on the configured Clock: with a virtual clock the journal stays
// dirty however much wall time passes, and flushes as soon as one
// virtual interval is advanced.
func TestWALIntervalSyncOnVirtualClock(t *testing.T) {
	clk := simclock.NewVirtual(time.Time{})
	w, err := OpenWAL(filepath.Join(t.TempDir(), "clock.wal"), WALOptions{
		Policy:   SyncInterval,
		Interval: time.Minute,
		Clock:    clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	im := Impression{
		CampaignID: "c", Publisher: "p", UserKey: "u",
		Timestamp: time.Unix(1, 0),
	}
	if _, err := w.append(walEntry{Op: "ins", Im: &im}); err != nil {
		t.Fatal(err)
	}
	dirty := func() bool {
		w.mu.Lock()
		defer w.mu.Unlock()
		return w.dirty
	}
	// Real time passes, virtual time does not: no flush.
	time.Sleep(20 * time.Millisecond)
	if !dirty() {
		t.Fatal("journal flushed without the virtual interval elapsing")
	}
	clk.Advance(time.Minute)
	deadline := time.Now().Add(5 * time.Second)
	for dirty() {
		if time.Now().After(deadline) {
			t.Fatal("journal never flushed after advancing one interval")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
