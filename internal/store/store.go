// Package store is the embedded impression database backing the
// collector — the stand-in for the paper's MySQL instance. It keeps an
// append-only record log with in-memory secondary indexes (campaign,
// publisher, user), supports concurrent writers and readers, and
// round-trips datasets through JSON-lines snapshots and CSV exports for
// downstream analysis.
package store

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Impression is one fully enriched ad-impression record: the beacon
// payload joined with the connection-derived facts (client address,
// timestamps, exposure) and the IP metadata extracted before
// anonymisation, exactly the row schema the paper's §3 methodology
// stores per impression.
type Impression struct {
	// ID is the store-assigned sequence number (1-based).
	ID int64 `json:"id"`
	// CampaignID and CreativeID identify the ad.
	CampaignID string `json:"campaign_id"`
	CreativeID string `json:"creative_id"`
	// Publisher is the registrable domain extracted from the page URL.
	Publisher string `json:"publisher"`
	// PageURL is the full URL where the impression rendered.
	PageURL string `json:"page_url"`
	// UserAgent is the reported navigator.userAgent.
	UserAgent string `json:"user_agent"`
	// IPPseudonym is the keyed hash of the client IP (the raw address
	// is discarded after metadata extraction, per the paper's
	// anonymisation footnote).
	IPPseudonym string `json:"ip_pseudonym"`
	// UserKey identifies a user as the combination of IP and
	// User-Agent — the identity §4.2's frequency analysis uses, so two
	// devices behind a NAT with different browsers count separately.
	UserKey string `json:"user_key"`
	// ISP is the owning organisation of the client IP; Country its
	// geolocation; both extracted before anonymisation.
	ISP     string `json:"isp"`
	Country string `json:"country"`
	// DataCenter records the fraud cascade's verdict for the client IP
	// (ipmeta.DataCenterVerdict.String()).
	DataCenter string `json:"data_center"`
	// Timestamp is the connection-establishment time at the collector.
	Timestamp time.Time `json:"timestamp"`
	// Exposure is the connection duration — the paper's upper-bound
	// viewability signal.
	Exposure time.Duration `json:"exposure"`
	// MouseMoves and Clicks count interaction events on the ad.
	MouseMoves int `json:"mouse_moves"`
	Clicks     int `json:"clicks"`
	// VisibilityMeasured marks impressions whose placement allowed
	// pixel-visibility measurement (friendly iframe); cross-origin
	// placements cannot report it (§3.1) and leave it false.
	VisibilityMeasured bool `json:"visibility_measured,omitempty"`
	// MaxVisibleFraction is the peak visible-pixel fraction observed,
	// meaningful only when VisibilityMeasured.
	MaxVisibleFraction float64 `json:"max_visible_fraction,omitempty"`
	// Nonce is the client-generated impression nonce the collector
	// deduplicates beacon reconnects by; empty when the beacon never
	// sent one.
	Nonce string `json:"nonce,omitempty"`
}

// Validate checks the record is complete enough to insert.
func (im *Impression) Validate() error {
	switch {
	case im.CampaignID == "":
		return fmt.Errorf("store: impression missing campaign id")
	case im.Publisher == "":
		return fmt.Errorf("store: impression missing publisher")
	case im.UserKey == "":
		return fmt.Errorf("store: impression missing user key")
	case im.Timestamp.IsZero():
		return fmt.Errorf("store: impression missing timestamp")
	case im.Exposure < 0:
		return fmt.Errorf("store: negative exposure %v", im.Exposure)
	}
	return nil
}

// Store is a concurrency-safe impression database with an adjacent
// conversion log (see conversions.go).
type Store struct {
	mu   sync.RWMutex
	recs []Impression

	byCampaign  map[string][]int
	byPublisher map[string][]int
	byUser      map[string][]int

	conversions conversionLog

	// wal, when attached, journals every insert and merge before the
	// in-memory mutation (see wal.go).
	wal *WAL

	tel storeTelemetry
}

// New returns an empty store.
func New() *Store {
	return &Store{
		byCampaign:  map[string][]int{},
		byPublisher: map[string][]int{},
		byUser:      map[string][]int{},
	}
}

// Insert validates im, assigns it the next ID and appends it. The
// returned ID is 1-based. With a WAL attached the record is journaled
// before the in-memory store mutates, so an insert that returned
// survives a crash.
func (s *Store) Insert(im Impression) (int64, error) {
	var start time.Time
	if s.tel.sampleTiming() {
		start = time.Now()
	}
	if err := im.Validate(); err != nil {
		s.tel.insertFailures.Inc()
		return 0, err
	}
	s.mu.Lock()
	idx := len(s.recs)
	im.ID = int64(idx + 1)
	if s.wal != nil {
		// Journal a branch-local copy: taking &im directly would make the
		// parameter escape and cost a heap allocation even with no WAL.
		w := im
		if err := s.wal.append(walEntry{Op: "ins", Im: &w}); err != nil {
			s.mu.Unlock()
			s.tel.insertFailures.Inc()
			return 0, err
		}
	}
	s.recs = append(s.recs, im)
	s.byCampaign[im.CampaignID] = append(s.byCampaign[im.CampaignID], idx)
	s.byPublisher[im.Publisher] = append(s.byPublisher[im.Publisher], idx)
	s.byUser[im.UserKey] = append(s.byUser[im.UserKey], idx)
	s.mu.Unlock()
	s.observeInsert(start)
	return im.ID, nil
}

// Len returns the number of stored impressions.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.recs)
}

// Get returns the impression with the given 1-based ID.
func (s *Store) Get(id int64) (Impression, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if id < 1 || id > int64(len(s.recs)) {
		return Impression{}, false
	}
	return s.recs[id-1], true
}

// ForEach calls fn for every impression in insertion order; fn returning
// false stops the scan. The store must not be mutated from within fn.
func (s *Store) ForEach(fn func(Impression) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for i := range s.recs {
		if !fn(s.recs[i]) {
			return
		}
	}
}

// Campaigns returns the distinct campaign IDs present, sorted.
func (s *Store) Campaigns() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.byCampaign))
	for c := range s.byCampaign {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// ByCampaign returns a copy of the impressions of one campaign in
// insertion order.
func (s *Store) ByCampaign(campaignID string) []Impression {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.collect(s.byCampaign[campaignID])
}

// ByPublisher returns a copy of the impressions shown on one publisher.
func (s *Store) ByPublisher(publisher string) []Impression {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.collect(s.byPublisher[publisher])
}

// ByUser returns a copy of the impressions delivered to one user key.
func (s *Store) ByUser(userKey string) []Impression {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.collect(s.byUser[userKey])
}

func (s *Store) collect(idxs []int) []Impression {
	out := make([]Impression, len(idxs))
	for i, idx := range idxs {
		out[i] = s.recs[idx]
	}
	return out
}

// Publishers returns the distinct publishers of a campaign, sorted. An
// empty campaignID aggregates across all campaigns, as the paper's
// Figure 1 does.
func (s *Store) Publishers(campaignID string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	set := map[string]struct{}{}
	if campaignID == "" {
		for p := range s.byPublisher {
			set[p] = struct{}{}
		}
	} else {
		for _, idx := range s.byCampaign[campaignID] {
			set[s.recs[idx].Publisher] = struct{}{}
		}
	}
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Users returns the distinct user keys of a campaign, sorted. An empty
// campaignID aggregates across all campaigns.
func (s *Store) Users(campaignID string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	set := map[string]struct{}{}
	if campaignID == "" {
		for u := range s.byUser {
			set[u] = struct{}{}
		}
	} else {
		for _, idx := range s.byCampaign[campaignID] {
			set[s.recs[idx].UserKey] = struct{}{}
		}
	}
	out := make([]string, 0, len(set))
	for u := range set {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}
