// Package store is the embedded impression database backing the
// collector — the stand-in for the paper's MySQL instance. It keeps an
// append-only record log with in-memory secondary indexes (campaign,
// publisher, user), supports concurrent writers and readers, and
// round-trips datasets through JSON-lines snapshots and CSV exports for
// downstream analysis.
package store

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"adaudit/internal/trace"
)

// Impression is one fully enriched ad-impression record: the beacon
// payload joined with the connection-derived facts (client address,
// timestamps, exposure) and the IP metadata extracted before
// anonymisation, exactly the row schema the paper's §3 methodology
// stores per impression.
type Impression struct {
	// ID is the store-assigned sequence number (1-based).
	ID int64 `json:"id"`
	// CampaignID and CreativeID identify the ad.
	CampaignID string `json:"campaign_id"`
	CreativeID string `json:"creative_id"`
	// Publisher is the registrable domain extracted from the page URL.
	Publisher string `json:"publisher"`
	// PageURL is the full URL where the impression rendered.
	PageURL string `json:"page_url"`
	// UserAgent is the reported navigator.userAgent.
	UserAgent string `json:"user_agent"`
	// IPPseudonym is the keyed hash of the client IP (the raw address
	// is discarded after metadata extraction, per the paper's
	// anonymisation footnote).
	IPPseudonym string `json:"ip_pseudonym"`
	// UserKey identifies a user as the combination of IP and
	// User-Agent — the identity §4.2's frequency analysis uses, so two
	// devices behind a NAT with different browsers count separately.
	UserKey string `json:"user_key"`
	// ISP is the owning organisation of the client IP; Country its
	// geolocation; both extracted before anonymisation.
	ISP     string `json:"isp"`
	Country string `json:"country"`
	// DataCenter records the fraud cascade's verdict for the client IP
	// (ipmeta.DataCenterVerdict.String()).
	DataCenter string `json:"data_center"`
	// Timestamp is the connection-establishment time at the collector.
	Timestamp time.Time `json:"timestamp"`
	// Exposure is the connection duration — the paper's upper-bound
	// viewability signal.
	Exposure time.Duration `json:"exposure"`
	// MouseMoves and Clicks count interaction events on the ad.
	MouseMoves int `json:"mouse_moves"`
	Clicks     int `json:"clicks"`
	// VisibilityMeasured marks impressions whose placement allowed
	// pixel-visibility measurement (friendly iframe); cross-origin
	// placements cannot report it (§3.1) and leave it false.
	VisibilityMeasured bool `json:"visibility_measured,omitempty"`
	// MaxVisibleFraction is the peak visible-pixel fraction observed,
	// meaningful only when VisibilityMeasured.
	MaxVisibleFraction float64 `json:"max_visible_fraction,omitempty"`
	// Nonce is the client-generated impression nonce the collector
	// deduplicates beacon reconnects by; empty when the beacon never
	// sent one.
	Nonce string `json:"nonce,omitempty"`
}

// Validate checks the record is complete enough to insert.
func (im *Impression) Validate() error {
	switch {
	case im.CampaignID == "":
		return fmt.Errorf("store: impression missing campaign id")
	case im.Publisher == "":
		return fmt.Errorf("store: impression missing publisher")
	case im.UserKey == "":
		return fmt.Errorf("store: impression missing user key")
	case im.Timestamp.IsZero():
		return fmt.Errorf("store: impression missing timestamp")
	case im.Exposure < 0:
		return fmt.Errorf("store: negative exposure %v", im.Exposure)
	}
	return nil
}

// Store is a concurrency-safe impression database with an adjacent
// conversion log (see conversions.go). The record log is a single
// append-only slice under mu; the secondary indexes are lock-striped
// shards (see index.go) so concurrent analyses of different campaigns,
// publishers or users never serialise on one mutex.
type Store struct {
	mu   sync.RWMutex
	recs []Impression

	byCampaign  shardedIndex
	byPublisher shardedIndex
	byUser      shardedIndex

	conversions conversionLog

	// wal, when attached, journals every insert and merge before the
	// in-memory mutation (see wal.go).
	wal *WAL

	// feed, when non-nil, broadcasts every mutation to change-feed
	// subscribers (see feed.go). Created lazily on first Subscribe;
	// atomic because the conversion path publishes without holding mu.
	feed atomic.Pointer[feed]

	tel storeTelemetry
}

// New returns an empty store.
func New() *Store {
	return &Store{}
}

// Insert validates im, assigns it the next ID and appends it. The
// returned ID is 1-based. With a WAL attached the record is journaled
// before the in-memory store mutates, so an insert that returned
// survives a crash.
func (s *Store) Insert(im Impression) (int64, error) {
	return s.InsertTraced(im, nil)
}

// InsertTraced is Insert carrying the impression's pipeline trace
// (nil for unsampled impressions — the common case, which costs only
// predicted nil checks). The trace is stamped at each durability
// stage in execution order — wal_append, commit, feed_publish — and
// handed to the change feed; when no subscriber received it the store
// finishes the trace here, since no downstream stage will.
func (s *Store) InsertTraced(im Impression, tr *trace.Trace) (int64, error) {
	var start time.Time
	if s.tel.sampleTiming() || tr != nil {
		start = time.Now()
	}
	if err := im.Validate(); err != nil {
		s.tel.insertFailures.Inc()
		tr.Truncate("reject:store-validate")
		return 0, err
	}
	s.mu.Lock()
	idx := len(s.recs)
	im.ID = int64(idx + 1)
	wal := s.wal
	var walSeq int64
	if wal != nil {
		// Journal a branch-local copy: taking &im directly would make the
		// parameter escape and cost a heap allocation even with no WAL.
		w := im
		seq, err := wal.append(walEntry{Op: "ins", Im: &w})
		if err != nil {
			s.mu.Unlock()
			s.tel.insertFailures.Inc()
			tr.Truncate("reject:wal-append")
			return 0, err
		}
		walSeq = seq
		tr.Stage(trace.StageWAL)
	}
	s.recs = append(s.recs, im)
	// Index while still holding the write lock: that is what keeps
	// posting lists in insertion order across concurrent inserts.
	s.byCampaign.add(im.CampaignID, idx)
	s.byPublisher.add(im.Publisher, idx)
	s.byUser.add(im.UserKey, idx)
	tr.Stage(trace.StageCommit)
	// Publish while still holding the write lock, so feed sequence
	// order matches insertion order and a concurrent Subscribe either
	// primes this record or receives this event, never both.
	delivered := s.publishFeed(FeedEvent{Kind: FeedInsert, Im: im, Trace: tr})
	s.mu.Unlock()
	// Group-commit rendezvous, outside the store lock so concurrent
	// inserts batch into one fsync. On failure the in-memory record
	// stands (a later flush may yet cover it) but the caller must not
	// acknowledge: a client replay deduplicates against it by nonce.
	if err := wal.waitDurable(walSeq); err != nil {
		s.tel.insertFailures.Inc()
		return 0, err
	}
	s.observeInsertTraced(start, tr)
	if delivered == 0 {
		// No live-audit consumer: the commit is the trace's last stage.
		tr.Finish()
	}
	return im.ID, nil
}

// Len returns the number of stored impressions.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.recs)
}

// Get returns the impression with the given 1-based ID.
func (s *Store) Get(id int64) (Impression, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if id < 1 || id > int64(len(s.recs)) {
		return Impression{}, false
	}
	return s.recs[id-1], true
}

// ForEach calls fn for every impression in insertion order; fn returning
// false stops the scan. The store must not be mutated from within fn.
func (s *Store) ForEach(fn func(Impression) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for i := range s.recs {
		if !fn(s.recs[i]) {
			return
		}
	}
}

// Visit calls fn with a pointer to every impression in insertion
// order, without copying records; fn returning false stops the scan.
// The pointer is only valid during the call, fn must treat the record
// as read-only, and the store must not be mutated from within fn.
func (s *Store) Visit(fn func(*Impression) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for i := range s.recs {
		if !fn(&s.recs[i]) {
			return
		}
	}
}

// VisitCampaign streams one campaign's impressions in insertion order
// through fn without materializing a copy; fn returning false stops
// the scan. Same aliasing rules as Visit. Scans of different campaigns
// proceed fully in parallel.
func (s *Store) VisitCampaign(campaignID string, fn func(*Impression) bool) {
	s.visit(s.byCampaign.snapshot(campaignID), fn)
}

// VisitPublisher streams the impressions shown on one publisher.
func (s *Store) VisitPublisher(publisher string, fn func(*Impression) bool) {
	s.visit(s.byPublisher.snapshot(publisher), fn)
}

// VisitUser streams the impressions delivered to one user key.
func (s *Store) VisitUser(userKey string, fn func(*Impression) bool) {
	s.visit(s.byUser.snapshot(userKey), fn)
}

// visit iterates a posting-list snapshot under the read lock. The
// snapshot was taken before the lock, which is safe: posting lists are
// append-only and every indexed position is already in the log.
func (s *Store) visit(idxs []int, fn func(*Impression) bool) {
	if len(idxs) == 0 {
		return
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, idx := range idxs {
		if !fn(&s.recs[idx]) {
			return
		}
	}
}

// Campaigns returns the distinct campaign IDs present, sorted. The
// sorted listing is cached and only rebuilt when a campaign appeared.
func (s *Store) Campaigns() []string {
	return s.byCampaign.copyKeys()
}

// ByCampaign returns a copy of the impressions of one campaign in
// insertion order. Prefer VisitCampaign on hot paths: it streams the
// records without allocating the copy.
func (s *Store) ByCampaign(campaignID string) []Impression {
	return s.collect(s.byCampaign.snapshot(campaignID))
}

// ByPublisher returns a copy of the impressions shown on one publisher.
func (s *Store) ByPublisher(publisher string) []Impression {
	return s.collect(s.byPublisher.snapshot(publisher))
}

// ByUser returns a copy of the impressions delivered to one user key.
func (s *Store) ByUser(userKey string) []Impression {
	return s.collect(s.byUser.snapshot(userKey))
}

// collect copies the records of one posting-list snapshot, preallocated
// to the exact length the index already knows.
func (s *Store) collect(idxs []int) []Impression {
	out := make([]Impression, len(idxs))
	s.mu.RLock()
	defer s.mu.RUnlock()
	for i, idx := range idxs {
		out[i] = s.recs[idx]
	}
	return out
}

// Publishers returns the distinct publishers of a campaign, sorted. An
// empty campaignID aggregates across all campaigns, as the paper's
// Figure 1 does; that listing is served from the index's sorted-key
// cache instead of being rebuilt and re-sorted per call.
func (s *Store) Publishers(campaignID string) []string {
	if campaignID == "" {
		return s.byPublisher.copyKeys()
	}
	return s.distinctByCampaign(campaignID, func(im *Impression) string { return im.Publisher })
}

// Users returns the distinct user keys of a campaign, sorted. An empty
// campaignID aggregates across all campaigns (cached, like Publishers).
func (s *Store) Users(campaignID string) []string {
	if campaignID == "" {
		return s.byUser.copyKeys()
	}
	return s.distinctByCampaign(campaignID, func(im *Impression) string { return im.UserKey })
}

// distinctByCampaign collects the sorted distinct values of one field
// over a campaign's impressions.
func (s *Store) distinctByCampaign(campaignID string, field func(*Impression) string) []string {
	set := map[string]struct{}{}
	s.VisitCampaign(campaignID, func(im *Impression) bool {
		set[field(im)] = struct{}{}
		return true
	})
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}
