package store

import (
	"sync"
	"sync/atomic"
	"time"

	"adaudit/internal/trace"
)

// This file is the store's change feed: a bounded broadcast bus that
// lets a subscriber attach with a consistent snapshot of the store and
// then receive every subsequent mutation as an ordered delta. It is
// the substrate the streaming audit engine (internal/streamaudit)
// consumes, replacing full-store rescans with per-event updates.
//
// Guarantees (documented in DESIGN.md §10):
//
//   - Total order. Every mutation — impression insert, exposure merge,
//     conversion insert — is assigned a strictly increasing sequence
//     number under one feed mutex, across both the impression log and
//     the conversion log. Each subscriber observes events in sequence
//     order with no gaps and no duplicates, until it is dropped.
//   - Consistent attach. Subscribe primes the subscriber from the
//     current store contents while holding the store's read locks, so
//     writers are excluded: every record is seen exactly once, either
//     in the snapshot prime or as a later delta, never both or neither.
//   - Bounded buffering, drop-then-resync. Each subscriber has its own
//     buffered channel. A publisher never blocks on a slow consumer:
//     when the buffer is full the subscriber is marked dropped, removed
//     from the bus, and its channel closed. The consumer detects the
//     close (Dropped() reports true), discards its state, and
//     re-subscribes — resyncing from a fresh snapshot. Correctness
//     never depends on the buffer being large enough; only efficiency
//     does.
//
// The feed is created lazily on first Subscribe. Before that, every
// mutation pays a single atomic pointer load — the insert hot path is
// unchanged for deployments that never attach a subscriber.

// FeedKind discriminates change-feed events.
type FeedKind uint8

const (
	// FeedInsert is a new impression; Im is the record as stored.
	FeedInsert FeedKind = iota + 1
	// FeedMerge is an exposure update (a reconnected beacon session
	// folded into an existing record); Im is the full post-merge
	// record and Prev holds the pre-merge mutable fields.
	FeedMerge
	// FeedConversion is a new conversion record in Conv.
	FeedConversion
)

// String returns the kind's wire/debug name.
func (k FeedKind) String() string {
	switch k {
	case FeedInsert:
		return "insert"
	case FeedMerge:
		return "merge"
	case FeedConversion:
		return "conversion"
	}
	return "unknown"
}

// MergePrev is the pre-merge value of every field Store.Merge can
// change. Incremental consumers need it to retract the old
// contribution (e.g. a viewability predicate that held before the
// merge but not after); all other Impression fields are immutable
// after insert.
type MergePrev struct {
	Exposure           time.Duration
	MouseMoves         int
	Clicks             int
	VisibilityMeasured bool
	MaxVisibleFraction float64
}

// FeedEvent is one ordered store mutation.
type FeedEvent struct {
	// Seq is the store-wide mutation sequence number (1-based,
	// contiguous across impression and conversion mutations).
	Seq  int64
	Kind FeedKind
	// Im is set for FeedInsert (the inserted record) and FeedMerge
	// (the post-merge record).
	Im Impression
	// Prev is set for FeedMerge only.
	Prev MergePrev
	// Conv is set for FeedConversion only.
	Conv Conversion
	// PublishedAt is the wall clock (unix nanoseconds) at publish —
	// the commit side of the commit→apply freshness SLO. Consumers
	// subtract it from their own clock to measure pipeline lag.
	PublishedAt int64
	// Trace is the impression's pipeline trace (nil for unsampled
	// impressions). Consumers stamp their apply stage on it and finish
	// it; all Trace methods tolerate concurrent use by multiple
	// subscribers.
	Trace *trace.Trace
}

// DefaultFeedBuffer is the per-subscriber channel capacity used when
// Subscribe is called with a non-positive buffer size.
const DefaultFeedBuffer = 1024

// feed is the broadcast bus. seq and the subscriber set are guarded by
// mu; publishers hold it only long enough to stamp the sequence number
// and attempt one non-blocking send per subscriber.
type feed struct {
	mu    sync.Mutex
	seq   int64
	subs  map[*FeedSub]struct{}
	drops atomic.Int64
}

// FeedSub is one subscriber's handle on the change feed.
type FeedSub struct {
	f        *feed
	ch       chan FeedEvent
	startSeq int64
	dropped  atomic.Bool
}

// Events returns the subscriber's delta channel. The channel is closed
// when the subscriber is dropped for falling behind (Dropped reports
// true) or after Close.
func (sub *FeedSub) Events() <-chan FeedEvent { return sub.ch }

// StartSeq returns the feed sequence number the snapshot prime
// covered: every event delivered on Events has Seq > StartSeq.
func (sub *FeedSub) StartSeq() int64 { return sub.startSeq }

// Dropped reports whether the bus evicted this subscriber because its
// buffer overflowed. After the events channel closes, it
// distinguishes eviction (resync required) from a plain Close.
func (sub *FeedSub) Dropped() bool { return sub.dropped.Load() }

// Close detaches the subscriber and closes its events channel.
// Idempotent, and a no-op if the bus already dropped the subscriber.
func (sub *FeedSub) Close() {
	f := sub.f
	f.mu.Lock()
	if _, ok := f.subs[sub]; ok {
		delete(f.subs, sub)
		close(sub.ch)
	}
	f.mu.Unlock()
}

// feedHandle returns the store's feed, creating it on first use.
func (s *Store) feedHandle() *feed {
	if f := s.feed.Load(); f != nil {
		return f
	}
	f := &feed{subs: map[*FeedSub]struct{}{}}
	if s.feed.CompareAndSwap(nil, f) {
		return f
	}
	return s.feed.Load()
}

// Subscribe attaches a change-feed subscriber. prime (if non-nil) is
// called once per stored impression and primeConv once per stored
// conversion, both in insertion order, while the store's read locks
// exclude writers — together with the registration happening under the
// same critical section, that makes the snapshot + delta stream
// consistent: no mutation is missed and none is delivered twice. The
// callbacks must not call back into the store. buffer <= 0 selects
// DefaultFeedBuffer.
func (s *Store) Subscribe(buffer int, prime func(*Impression), primeConv func(*Conversion)) *FeedSub {
	if buffer <= 0 {
		buffer = DefaultFeedBuffer
	}
	f := s.feedHandle()
	sub := &FeedSub{f: f, ch: make(chan FeedEvent, buffer)}
	// Lock order: impression log, then conversion log, then feed —
	// the same order the publish paths compose them in.
	s.mu.RLock()
	l := &s.conversions
	l.mu.RLock()
	if prime != nil {
		for i := range s.recs {
			prime(&s.recs[i])
		}
	}
	if primeConv != nil {
		for i := range l.recs {
			primeConv(&l.recs[i])
		}
	}
	f.mu.Lock()
	sub.startSeq = f.seq
	f.subs[sub] = struct{}{}
	f.mu.Unlock()
	l.mu.RUnlock()
	s.mu.RUnlock()
	s.tel.feedSubscribes.Inc()
	return sub
}

// FeedSeq returns the sequence number of the latest published
// mutation (0 before any subscriber ever attached — sequence numbers
// only start being assigned once the feed exists).
func (s *Store) FeedSeq() int64 {
	f := s.feed.Load()
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.seq
}

// publishFeed stamps ev with the next sequence number and the publish
// wall clock and offers it to every subscriber, returning how many
// subscribers received it. Called with the mutated log's lock held
// (s.mu for impressions, conversions.mu for conversions) so that
// sequence order equals mutation order. A subscriber whose buffer is
// full is dropped: removed from the bus, marked, and its channel
// closed — the publisher never blocks.
func (s *Store) publishFeed(ev FeedEvent) int {
	f := s.feed.Load()
	if f == nil {
		return 0
	}
	f.mu.Lock()
	f.seq++
	ev.Seq = f.seq
	ev.PublishedAt = time.Now().UnixNano()
	// Stamp before the sends: a subscriber may apply (and finish) the
	// trace before this function returns.
	ev.Trace.Stage(trace.StageFeed)
	delivered := 0
	for sub := range f.subs {
		select {
		case sub.ch <- ev:
			delivered++
		default:
			sub.dropped.Store(true)
			delete(f.subs, sub)
			close(sub.ch)
			f.drops.Add(1)
			s.tel.feedDrops.Inc()
		}
	}
	f.mu.Unlock()
	s.tel.feedEvents.Inc()
	return delivered
}

// FeedDrops returns the total number of subscribers the bus has
// evicted for falling behind — the /healthz signal that live audit
// consumers are resyncing instead of keeping up.
func (s *Store) FeedDrops() int64 {
	_, _, drops := s.feedStats()
	return drops
}

// feedStats samples the feed for the scrape-time gauges: subscriber
// count, the deepest per-subscriber buffer, and total drops.
func (s *Store) feedStats() (subs int, maxDepth int, drops int64) {
	f := s.feed.Load()
	if f == nil {
		return 0, 0, 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for sub := range f.subs {
		if d := len(sub.ch); d > maxDepth {
			maxDepth = d
		}
	}
	return len(f.subs), maxDepth, f.drops.Load()
}
