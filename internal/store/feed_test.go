package store

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func feedTestImpression(campaign, pub, user string, ts time.Time) Impression {
	return Impression{
		CampaignID: campaign,
		Publisher:  pub,
		PageURL:    "https://" + pub + "/p",
		UserKey:    user,
		Timestamp:  ts,
		Exposure:   2 * time.Second,
	}
}

// drainFeed reads every buffered event without blocking.
func drainFeed(sub *FeedSub) []FeedEvent {
	var evs []FeedEvent
	for {
		select {
		case ev, ok := <-sub.Events():
			if !ok {
				return evs
			}
			evs = append(evs, ev)
		default:
			return evs
		}
	}
}

func TestFeedDeliversOrderedDeltas(t *testing.T) {
	s := New()
	base := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)

	// One record before the subscription: it must arrive via the
	// snapshot prime, not the delta stream.
	if _, err := s.Insert(feedTestImpression("c1", "pub-a.example", "u1", base)); err != nil {
		t.Fatal(err)
	}

	var primed []Impression
	var primedConvs []Conversion
	sub := s.Subscribe(16,
		func(im *Impression) { primed = append(primed, *im) },
		func(c *Conversion) { primedConvs = append(primedConvs, *c) })
	defer sub.Close()

	if len(primed) != 1 || primed[0].ID != 1 {
		t.Fatalf("prime saw %d impressions, want the 1 pre-existing record", len(primed))
	}
	if len(primedConvs) != 0 {
		t.Fatalf("prime saw %d conversions, want 0", len(primedConvs))
	}
	// Sequence numbers are only assigned once the feed exists: the
	// pre-subscribe insert predates it, so the snapshot cut is seq 0.
	if got := sub.StartSeq(); got != s.FeedSeq() {
		t.Fatalf("StartSeq = %d, want FeedSeq %d at attach time", got, s.FeedSeq())
	}

	id2, err := s.Insert(feedTestImpression("c1", "pub-b.example", "u2", base.Add(time.Minute)))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Merge(id2, Continuation{Exposure: 3 * time.Second, Clicks: 1, VisibilityMeasured: true, MaxVisibleFraction: 0.8}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.InsertConversion(Conversion{CampaignID: "c1", UserKey: "u2", Action: "purchase", Timestamp: base.Add(2 * time.Minute)}); err != nil {
		t.Fatal(err)
	}

	evs := drainFeed(sub)
	if len(evs) != 3 {
		t.Fatalf("got %d deltas, want 3: %+v", len(evs), evs)
	}
	for i, ev := range evs {
		if want := sub.StartSeq() + int64(i) + 1; ev.Seq != want {
			t.Fatalf("event %d has seq %d, want %d (contiguous)", i, ev.Seq, want)
		}
	}
	if evs[0].Kind != FeedInsert || evs[0].Im.ID != id2 {
		t.Fatalf("delta 0 = %+v, want insert of record %d", evs[0], id2)
	}
	if evs[1].Kind != FeedMerge {
		t.Fatalf("delta 1 kind = %v, want merge", evs[1].Kind)
	}
	if evs[1].Prev.Exposure != 2*time.Second || evs[1].Im.Exposure != 5*time.Second {
		t.Fatalf("merge delta exposure prev=%v new=%v, want 2s -> 5s", evs[1].Prev.Exposure, evs[1].Im.Exposure)
	}
	if evs[1].Prev.VisibilityMeasured || !evs[1].Im.VisibilityMeasured {
		t.Fatalf("merge delta visibility prev=%v new=%v, want false -> true", evs[1].Prev.VisibilityMeasured, evs[1].Im.VisibilityMeasured)
	}
	if evs[2].Kind != FeedConversion || evs[2].Conv.Action != "purchase" {
		t.Fatalf("delta 2 = %+v, want the conversion", evs[2])
	}
}

func TestFeedSlowConsumerDropped(t *testing.T) {
	s := New()
	base := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	sub := s.Subscribe(2, nil, nil)

	for i := 0; i < 5; i++ {
		im := feedTestImpression("c1", fmt.Sprintf("pub-%d.example", i), "u1", base.Add(time.Duration(i)*time.Second))
		if _, err := s.Insert(im); err != nil {
			t.Fatal(err)
		}
	}

	// Buffer of 2: the third publish overflows and evicts the
	// subscriber. The two buffered events stay readable, then the
	// channel closes with Dropped reporting true.
	evs := drainFeed(sub)
	if len(evs) != 2 {
		t.Fatalf("read %d buffered events, want 2", len(evs))
	}
	if _, ok := <-sub.Events(); ok {
		t.Fatal("events channel still open after overflow")
	}
	if !sub.Dropped() {
		t.Fatal("Dropped() = false after eviction")
	}
	if subs, _, drops := s.feedStats(); subs != 0 || drops != 1 {
		t.Fatalf("feedStats after drop: subs=%d drops=%d, want 0 and 1", subs, drops)
	}

	// The store keeps accepting writes and a fresh subscription
	// resyncs from the full snapshot.
	var primed int
	sub2 := s.Subscribe(16, func(*Impression) { primed++ }, nil)
	defer sub2.Close()
	if primed != 5 {
		t.Fatalf("resync primed %d records, want 5", primed)
	}
	if sub2.Dropped() {
		t.Fatal("fresh subscriber marked dropped")
	}
}

func TestFeedCloseIsIdempotentAndDistinctFromDrop(t *testing.T) {
	s := New()
	sub := s.Subscribe(4, nil, nil)
	sub.Close()
	sub.Close() // must not panic or double-close
	if sub.Dropped() {
		t.Fatal("plain Close must not mark the subscriber dropped")
	}
	if _, ok := <-sub.Events(); ok {
		t.Fatal("events channel open after Close")
	}
	// Publishing after the close must not panic on the closed channel.
	if _, err := s.Insert(feedTestImpression("c1", "pub.example", "u1", time.Now())); err != nil {
		t.Fatal(err)
	}
}

// TestFeedConsistentAttachUnderLoad hammers Subscribe against
// concurrent writers: for every subscriber, snapshot + deltas must
// cover each record exactly once (no gap, no duplicate at the cut).
func TestFeedConsistentAttachUnderLoad(t *testing.T) {
	s := New()
	base := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	const writers, perWriter = 4, 200

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				im := feedTestImpression("c1", fmt.Sprintf("pub-%d.example", w), fmt.Sprintf("u-%d-%d", w, i), base.Add(time.Duration(i)*time.Millisecond))
				if _, err := s.Insert(im); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}

	results := make(chan map[int64]int, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			seen := map[int64]int{}
			sub := s.Subscribe(writers*perWriter+1, func(im *Impression) { seen[im.ID]++ }, nil)
			defer sub.Close()
			// Wait for the writers from inside the subscriber: drain
			// until every record is accounted for.
			deadline := time.After(5 * time.Second)
			for len(seen) < writers*perWriter {
				select {
				case ev, ok := <-sub.Events():
					if !ok {
						t.Error("subscriber dropped despite adequate buffer")
						return
					}
					if ev.Kind == FeedInsert {
						seen[ev.Im.ID]++
					}
				case <-deadline:
					t.Errorf("timed out with %d/%d records", len(seen), writers*perWriter)
					return
				}
			}
			results <- seen
		}()
	}
	wg.Wait()
	close(results)
	for seen := range results {
		for id, n := range seen {
			if n != 1 {
				t.Fatalf("record %d observed %d times by one subscriber, want exactly once", id, n)
			}
		}
	}
}
