package store

// Cursor is an index-snapshot cursor: it pins the posting list of one
// key at creation time (a slice-header copy, not a data copy — posting
// lists are append-only) and streams the referenced records on demand.
// Records inserted after the cursor was created are not visited, which
// gives a long-running analysis a stable dataset view while ingest
// continues; records merged after creation (beacon reconnects) are
// visited in their current state, exactly like ByCampaign would return
// them at read time.
type Cursor struct {
	s    *Store
	idxs []int
	pos  int
}

// CampaignCursor returns a cursor over one campaign's impressions in
// insertion order.
func (s *Store) CampaignCursor(campaignID string) *Cursor {
	return &Cursor{s: s, idxs: s.byCampaign.snapshot(campaignID)}
}

// PublisherCursor returns a cursor over one publisher's impressions.
func (s *Store) PublisherCursor(publisher string) *Cursor {
	return &Cursor{s: s, idxs: s.byPublisher.snapshot(publisher)}
}

// UserCursor returns a cursor over one user key's impressions.
func (s *Store) UserCursor(userKey string) *Cursor {
	return &Cursor{s: s, idxs: s.byUser.snapshot(userKey)}
}

// Len returns the number of impressions the cursor will visit in total
// (independent of position) — known up front from the index snapshot.
func (c *Cursor) Len() int { return len(c.idxs) }

// Next returns the next impression and advances, or ok=false when the
// cursor is exhausted. Each call copies one record under a brief read
// lock, so writers make progress between calls; use Visit to stream
// the remainder without per-record locking or copying.
func (c *Cursor) Next() (Impression, bool) {
	if c.pos >= len(c.idxs) {
		return Impression{}, false
	}
	idx := c.idxs[c.pos]
	c.pos++
	c.s.mu.RLock()
	im := c.s.recs[idx]
	c.s.mu.RUnlock()
	return im, true
}

// Visit streams the remaining records through fn under a single read
// lock, zero-copy; fn returning false stops (and leaves the cursor
// positioned after the last visited record). Same aliasing rules as
// Store.Visit: the pointer is only valid during the call and the store
// must not be mutated from within fn.
func (c *Cursor) Visit(fn func(*Impression) bool) {
	c.s.mu.RLock()
	defer c.s.mu.RUnlock()
	for c.pos < len(c.idxs) {
		idx := c.idxs[c.pos]
		c.pos++
		if !fn(&c.s.recs[idx]) {
			return
		}
	}
}
