// Package campaign orchestrates end-to-end auditing runs: it executes
// campaigns on the simulated ad network, replays each delivered
// impression as a beacon observation against the collector — applying
// the paper's §3.1 measurement-loss model on the way — and bundles the
// resulting dataset with the vendor reports for the audit package.
//
// Two replay paths exist. The default direct path calls the collector's
// ingest funnel with virtual timestamps, which scales to the paper's
// 160K-impression workload in milliseconds. The wire path drives real
// WebSocket connections through the full network stack for a subset of
// impressions, proving the direct path measures the same thing the
// sockets would.
package campaign

import (
	"context"
	"fmt"
	"sync"
	"time"

	"adaudit/internal/adnet"
	"adaudit/internal/beacon"
	"adaudit/internal/collector"
	"adaudit/internal/stats"
	"adaudit/internal/telemetry"
	"adaudit/internal/trace"
)

// LossModel is the paper's §3.1 error model: reasons an ad impression
// never reaches the central server.
type LossModel struct {
	// ConnectionFailure is the per-impression probability that the
	// beacon's WebSocket never completes (network errors, server load,
	// browser killed mid-handshake). Blocked devices are modelled
	// separately on the device itself (Device.BeaconBlocked).
	ConnectionFailure float64
}

// DefaultLossModel returns the calibrated loss model: combined with the
// fleet's 10% script-blocked devices it reproduces the paper's
// footnote-2 finding that the methodology missed 16.5% of publishers.
func DefaultLossModel() LossModel {
	return LossModel{ConnectionFailure: 0.04}
}

// Driver runs campaigns and feeds the collector.
type Driver struct {
	// Network simulates delivery. Required.
	Network *adnet.Network
	// Collector ingests observations. Required.
	Collector *collector.Collector
	// Loss is the measurement-loss model.
	Loss LossModel
	// Seed drives the loss draws.
	Seed int64

	telOnce sync.Once
	tel     driverTelemetry
}

// driverTelemetry measures replay throughput: how fast campaigns move
// through the beacon-replay funnel and where impressions are lost.
type driverTelemetry struct {
	runs        *telemetry.Counter
	deliveries  *telemetry.Counter
	logged      *telemetry.Counter
	lost        *telemetry.CounterVec
	conversions *telemetry.Counter
	runSeconds  *telemetry.Histogram
}

// telemetry lazily registers the driver's instruments on the
// collector's registry, so a driver shares the exposition surface of
// the collector it feeds. With telemetry disabled on the collector the
// instruments stay nil (all methods are nil-safe no-ops).
func (d *Driver) telemetry() *driverTelemetry {
	d.telOnce.Do(func() {
		reg := d.Collector.Telemetry()
		if reg == nil {
			return
		}
		d.tel = driverTelemetry{
			runs: reg.Counter("adaudit_campaign_runs_total",
				"Campaign executions completed.", nil),
			deliveries: reg.Counter("adaudit_campaign_deliveries_total",
				"Network-side ad deliveries produced.", nil),
			logged: reg.Counter("adaudit_campaign_logged_total",
				"Deliveries that reached the collector as impressions.", nil),
			lost: reg.CounterVec("adaudit_campaign_lost_total",
				"Deliveries lost before the collector, by reason.", "reason"),
			conversions: reg.Counter("adaudit_campaign_conversions_total",
				"Conversion records replayed into the collector.", nil),
			runSeconds: reg.Histogram("adaudit_campaign_run_seconds",
				"Wall time per campaign execution (delivery + replay).",
				telemetry.LatencyBuckets(), nil),
		}
	})
	return &d.tel
}

// CampaignOutcome summarises one campaign's run.
type CampaignOutcome struct {
	// Result is the network-side ground truth and vendor report.
	Result *adnet.CampaignResult
	// Logged counts impressions that reached the collector.
	Logged int
	// LostBlocked counts impressions on script-blocked devices.
	LostBlocked int
	// LostConnection counts impressions dropped by connection errors.
	LostConnection int
	// Conversions counts conversion-pixel records logged.
	Conversions int
}

// RunOutcome aggregates a multi-campaign run.
type RunOutcome struct {
	Campaigns []CampaignOutcome
}

// Reports returns the vendor reports keyed by campaign ID.
func (r *RunOutcome) Reports() map[string]*adnet.VendorReport {
	out := make(map[string]*adnet.VendorReport, len(r.Campaigns))
	for i := range r.Campaigns {
		res := r.Campaigns[i].Result
		out[res.Campaign.ID] = &res.Report
	}
	return out
}

// TotalLogged sums logged impressions across campaigns.
func (r *RunOutcome) TotalLogged() int {
	n := 0
	for _, c := range r.Campaigns {
		n += c.Logged
	}
	return n
}

// Run executes one campaign and replays its deliveries into the
// collector through the direct ingest path.
func (d *Driver) Run(c adnet.Campaign) (*CampaignOutcome, error) {
	if d.Network == nil || d.Collector == nil {
		return nil, fmt.Errorf("campaign: driver requires a network and a collector")
	}
	tel := d.telemetry()
	runStart := time.Now()
	res, err := d.Network.Run(c)
	if err != nil {
		return nil, fmt.Errorf("campaign: running %s: %w", c.ID, err)
	}
	tel.deliveries.Add(int64(len(res.Deliveries)))
	rng := stats.NewRNG(d.Seed).Fork("loss/" + c.ID)
	out := &CampaignOutcome{Result: res}
	for i := range res.Deliveries {
		del := &res.Deliveries[i]
		switch {
		case del.Publisher.BeaconHostile, del.Device.BeaconBlocked:
			// Either the page's embedding policy or the device's
			// browser/antivirus configuration stopped the script.
			out.LostBlocked++
			continue
		case rng.Bool(d.Loss.ConnectionFailure):
			out.LostConnection++
			continue
		}
		obs := ObservationFor(&res.Campaign, del)
		// The driver is the beacon sender on the direct path: sampled
		// deliveries start their pipeline trace here, stamped at the
		// moment the simulated beacon would have fired.
		if tr := d.Collector.Tracer().Start(); tr != nil {
			tr.Stage(trace.StageBeaconSend)
			obs.Trace = tr
		}
		if _, err := d.Collector.Ingest(obs); err != nil {
			return nil, fmt.Errorf("campaign: ingesting %s delivery %d: %w", c.ID, i, err)
		}
		out.Logged++

		// Conversions fire from the advertiser's own page: the
		// first-party pixel is unaffected by the publisher's iframe
		// policies, only by generic network loss.
		if del.Converted && !rng.Bool(d.Loss.ConnectionFailure) {
			if _, err := d.Collector.IngestConversion(collector.ConversionObservation{
				Conversion: beacon.Conversion{
					CampaignID: c.ID,
					Action:     "purchase",
					ValueCents: del.ConversionValueCents,
				},
				RemoteIP:  del.Device.Addr,
				UserAgent: del.Device.UserAgent,
				At:        del.ConvertedAt,
			}); err != nil {
				return nil, fmt.Errorf("campaign: ingesting %s conversion %d: %w", c.ID, i, err)
			}
			out.Conversions++
		}
	}
	tel.logged.Add(int64(out.Logged))
	tel.lost.With("blocked").Add(int64(out.LostBlocked))
	tel.lost.With("connection").Add(int64(out.LostConnection))
	tel.conversions.Add(int64(out.Conversions))
	tel.runs.Inc()
	tel.runSeconds.ObserveDuration(time.Since(runStart))
	return out, nil
}

// RunAll executes campaigns in order.
func (d *Driver) RunAll(cs []adnet.Campaign) (*RunOutcome, error) {
	out := &RunOutcome{}
	for _, c := range cs {
		oc, err := d.Run(c)
		if err != nil {
			return nil, err
		}
		out.Campaigns = append(out.Campaigns, *oc)
	}
	return out, nil
}

// ObservationFor converts a network delivery into the observation the
// collector would have derived from the device's beacon connection.
func ObservationFor(c *adnet.Campaign, del *adnet.Delivery) collector.Observation {
	return collector.Observation{
		Payload:     PayloadFor(c, del),
		RemoteIP:    del.Device.Addr,
		ConnectedAt: del.At,
		Exposure:    del.Exposure,
	}
}

// PayloadFor builds the beacon payload a delivery's device would send.
func PayloadFor(c *adnet.Campaign, del *adnet.Delivery) beacon.Payload {
	events := make([]beacon.Event, 0, del.MouseMoves+del.Clicks)
	// Spread interactions across the exposure window deterministically;
	// exact offsets are not analysed, only counts.
	step := del.Exposure / time.Duration(del.MouseMoves+del.Clicks+1)
	at := step
	for i := 0; i < del.MouseMoves; i++ {
		events = append(events, beacon.Event{Kind: beacon.EventMouseMove, At: at})
		at += step
	}
	for i := 0; i < del.Clicks; i++ {
		events = append(events, beacon.Event{Kind: beacon.EventClick, At: at})
		at += step
	}
	if del.VisibilityMeasured {
		events = append(events, beacon.Event{
			Kind:     beacon.EventVisibility,
			At:       step,
			Fraction: del.MaxVisibleFraction,
		})
	}
	return beacon.Payload{
		CampaignID: c.ID,
		CreativeID: c.CreativeID,
		PageURL:    fmt.Sprintf("http://www.%s/p/%d", del.Publisher.Domain, del.At.Unix()%1000),
		UserAgent:  del.Device.UserAgent,
		Events:     events,
	}
}

// ReplayOverWire drives up to limit impressions of a campaign result
// through real WebSocket connections to collectorURL, holding each
// connection for a compressed exposure (exposureScale maps simulated
// seconds to wall time; e.g. 0.001 turns 5 s of exposure into 5 ms).
// It returns the number of impressions successfully reported.
//
// Wire replay exists to validate the direct ingest path end to end; the
// timestamps/exposures recorded by the collector come from real
// connection lifetimes, so they reflect wall time, not the simulated
// flight.
func ReplayOverWire(ctx context.Context, collectorURL string, res *adnet.CampaignResult, limit int, exposureScale float64) (int, error) {
	if exposureScale <= 0 {
		return 0, fmt.Errorf("campaign: exposure scale must be positive")
	}
	client := &beacon.Client{CollectorURL: collectorURL}
	sent := 0
	for i := range res.Deliveries {
		if sent >= limit {
			break
		}
		del := &res.Deliveries[i]
		if del.Device.BeaconBlocked {
			continue
		}
		p := PayloadFor(&res.Campaign, del)
		// Scale event offsets along with the exposure.
		for j := range p.Events {
			p.Events[j].At = time.Duration(float64(p.Events[j].At) * exposureScale)
		}
		exposure := time.Duration(float64(del.Exposure) * exposureScale)
		if err := client.Report(ctx, p, exposure); err != nil {
			return sent, fmt.Errorf("campaign: wire replay of delivery %d: %w", i, err)
		}
		sent++
	}
	return sent, nil
}

// RunAllParallel executes campaigns concurrently, as the paper's
// overlapping flights did (Table 1's date ranges overlap). The store
// and the collector's ingest funnel are concurrency-safe; each campaign
// gets its own deterministic RNG stream, so the resulting dataset
// contains exactly the same records as a sequential run, merely
// interleaved.
func (d *Driver) RunAllParallel(cs []adnet.Campaign) (*RunOutcome, error) {
	if d.Network == nil || d.Collector == nil {
		return nil, fmt.Errorf("campaign: driver requires a network and a collector")
	}
	type slot struct {
		outcome *CampaignOutcome
		err     error
	}
	slots := make([]slot, len(cs))
	var wg sync.WaitGroup
	for i := range cs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			oc, err := d.Run(cs[i])
			slots[i] = slot{outcome: oc, err: err}
		}(i)
	}
	wg.Wait()
	out := &RunOutcome{}
	for i := range slots {
		if slots[i].err != nil {
			return nil, slots[i].err
		}
		out.Campaigns = append(out.Campaigns, *slots[i].outcome)
	}
	return out, nil
}
