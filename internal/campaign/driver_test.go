package campaign

import (
	"context"
	"reflect"
	"testing"
	"time"

	"adaudit/internal/adnet"
	"adaudit/internal/collector"
	"adaudit/internal/ipmeta"
	"adaudit/internal/publisher"
	"adaudit/internal/store"
)

type fixture struct {
	network *adnet.Network
	store   *store.Store
	coll    *collector.Collector
	driver  *Driver
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	pubs, err := publisher.NewUniverse(publisher.Config{Seed: 21, NumPublishers: 3000})
	if err != nil {
		t.Fatal(err)
	}
	ips, err := ipmeta.NewUniverse(ipmeta.UniverseConfig{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	net, err := adnet.New(adnet.Config{Seed: 21, Publishers: pubs, IPs: ips})
	if err != nil {
		t.Fatal(err)
	}
	st := store.New()
	coll, err := collector.New(collector.Config{
		Store:      st,
		IPDB:       ips.DB,
		Classifier: &ipmeta.Classifier{DB: ips.DB, DenyList: ips.DenyList, ManualVerify: ips.ManualVerify},
		Anonymizer: ipmeta.NewAnonymizer([]byte("fixture")),
	})
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{
		network: net,
		store:   st,
		coll:    coll,
		driver:  &Driver{Network: net, Collector: coll, Loss: DefaultLossModel(), Seed: 21},
	}
}

func smallCampaign(id string, imps int) adnet.Campaign {
	return adnet.Campaign{
		ID: id, CreativeID: "cr", Keywords: []string{"football"},
		CPM: 0.10, Geo: "ES", Impressions: imps,
		Start: time.Date(2016, 4, 2, 0, 0, 0, 0, time.UTC),
		End:   time.Date(2016, 4, 3, 0, 0, 0, 0, time.UTC),
	}
}

func TestRunAccountsForEveryImpression(t *testing.T) {
	f := newFixture(t)
	out, err := f.driver.Run(smallCampaign("acct", 3000))
	if err != nil {
		t.Fatal(err)
	}
	total := out.Logged + out.LostBlocked + out.LostConnection
	if total != 3000 {
		t.Fatalf("accounted %d of 3000 impressions", total)
	}
	if f.store.Len() != out.Logged {
		t.Fatalf("store has %d, outcome says %d", f.store.Len(), out.Logged)
	}
	if out.Logged == 0 {
		t.Fatal("nothing logged")
	}
}

func TestLossModelLosesSomething(t *testing.T) {
	f := newFixture(t)
	out, err := f.driver.Run(smallCampaign("loss", 4000))
	if err != nil {
		t.Fatal(err)
	}
	if out.LostBlocked == 0 {
		t.Fatal("no script-blocked losses: fleet model broken")
	}
	if out.LostConnection == 0 {
		t.Fatal("no connection losses: loss model broken")
	}
	lostFrac := float64(out.LostBlocked+out.LostConnection) / 4000
	if lostFrac < 0.05 || lostFrac > 0.30 {
		t.Fatalf("loss fraction = %v, want ~0.10-0.20", lostFrac)
	}
}

func TestZeroLossDriver(t *testing.T) {
	f := newFixture(t)
	f.driver.Loss = LossModel{}
	out, err := f.driver.Run(smallCampaign("noloss", 1000))
	if err != nil {
		t.Fatal(err)
	}
	if out.LostConnection != 0 {
		t.Fatalf("connection losses with zero loss model: %d", out.LostConnection)
	}
	// Blocked devices still lose impressions: that is a device property.
	if out.Logged+out.LostBlocked != 1000 {
		t.Fatalf("accounting broken: %+v", out)
	}
}

func TestStoredRecordsMatchDeliveries(t *testing.T) {
	f := newFixture(t)
	f.driver.Loss = LossModel{}
	out, err := f.driver.Run(smallCampaign("match", 800))
	if err != nil {
		t.Fatal(err)
	}
	recs := f.store.ByCampaign("match")
	if len(recs) != out.Logged {
		t.Fatalf("stored %d, logged %d", len(recs), out.Logged)
	}
	// Every stored publisher must exist in the universe.
	for _, im := range recs {
		if _, ok := f.network.Publishers().ByDomain(im.Publisher); !ok {
			t.Fatalf("stored publisher %q not in universe", im.Publisher)
		}
		if im.Exposure <= 0 {
			t.Fatalf("stored exposure %v", im.Exposure)
		}
		if im.Timestamp.Before(time.Date(2016, 4, 2, 0, 0, 0, 0, time.UTC)) {
			t.Fatalf("timestamp %v before flight", im.Timestamp)
		}
	}
}

func TestRunAllMultipleCampaigns(t *testing.T) {
	f := newFixture(t)
	cs := []adnet.Campaign{smallCampaign("m1", 500), smallCampaign("m2", 700)}
	out, err := f.driver.RunAll(cs)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Campaigns) != 2 {
		t.Fatalf("outcomes = %d", len(out.Campaigns))
	}
	reports := out.Reports()
	if reports["m1"] == nil || reports["m2"] == nil {
		t.Fatal("missing vendor reports")
	}
	if out.TotalLogged() != f.store.Len() {
		t.Fatalf("TotalLogged %d != store %d", out.TotalLogged(), f.store.Len())
	}
	if got := len(f.store.Campaigns()); got != 2 {
		t.Fatalf("store campaigns = %d", got)
	}
}

func TestPayloadForBuildsValidPayload(t *testing.T) {
	f := newFixture(t)
	res, err := f.network.Run(smallCampaign("pl", 50))
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Deliveries {
		p := PayloadFor(&res.Campaign, &res.Deliveries[i])
		if err := p.Validate(); err != nil {
			t.Fatalf("delivery %d: %v", i, err)
		}
		pub, err := p.Publisher()
		if err != nil {
			t.Fatal(err)
		}
		if pub != res.Deliveries[i].Publisher.Domain {
			t.Fatalf("publisher %q != delivery %q", pub, res.Deliveries[i].Publisher.Domain)
		}
		want := res.Deliveries[i].MouseMoves + res.Deliveries[i].Clicks
		if res.Deliveries[i].VisibilityMeasured {
			want++
		}
		if len(p.Events) != want {
			t.Fatalf("delivery %d: %d events, want %d", i, len(p.Events), want)
		}
	}
}

func TestDriverRequiresComponents(t *testing.T) {
	d := &Driver{}
	if _, err := d.Run(smallCampaign("x", 10)); err == nil {
		t.Fatal("empty driver ran")
	}
}

func TestWireReplayMatchesDirectPath(t *testing.T) {
	f := newFixture(t)
	res, err := f.network.Run(smallCampaign("wire", 200))
	if err != nil {
		t.Fatal(err)
	}
	eligible := 0
	for i := range res.Deliveries {
		if !res.Deliveries[i].Device.BeaconBlocked {
			eligible++
		}
	}
	if eligible < 25 {
		t.Fatalf("fixture too small: only %d unblocked deliveries", eligible)
	}

	srv, err := collector.NewServer(f.coll, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go srv.Serve(ctx)

	const limit = 25
	sent, err := ReplayOverWire(ctx, srv.BeaconURL(), res, limit, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if sent != limit {
		t.Fatalf("sent %d, want %d", sent, limit)
	}
	// Records land asynchronously on disconnect.
	deadline := time.Now().Add(5 * time.Second)
	for f.store.Len() < limit && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if f.store.Len() != limit {
		t.Fatalf("store has %d of %d wire records", f.store.Len(), limit)
	}
	recs := f.store.ByCampaign("wire")
	for _, im := range recs {
		if _, ok := f.network.Publishers().ByDomain(im.Publisher); !ok {
			t.Fatalf("wire record publisher %q unknown", im.Publisher)
		}
		if im.IPPseudonym == "" || im.UserKey == "" {
			t.Fatal("wire record not enriched")
		}
	}
}

func TestWireReplayValidatesScale(t *testing.T) {
	if _, err := ReplayOverWire(context.Background(), "ws://x", &adnet.CampaignResult{}, 1, 0); err == nil {
		t.Fatal("zero exposure scale accepted")
	}
}

func TestConversionsFlowThroughDriver(t *testing.T) {
	f := newFixture(t)
	out, err := f.driver.Run(smallCampaign("convs", 8000))
	if err != nil {
		t.Fatal(err)
	}
	if out.Conversions == 0 {
		t.Fatal("no conversions logged")
	}
	if f.store.NumConversions() != out.Conversions {
		t.Fatalf("store has %d conversions, outcome says %d",
			f.store.NumConversions(), out.Conversions)
	}
	// Conversions join to exposures: every conversion's user key must
	// have impressions in the same campaign.
	for _, conv := range f.store.Conversions("convs") {
		if len(f.store.ByUser(conv.UserKey)) == 0 {
			t.Fatalf("conversion user %q has no impressions", conv.UserKey)
		}
	}
	// Plausible conversion ratio: well under 1%.
	ratio := float64(out.Conversions) / 8000
	if ratio > 0.01 {
		t.Fatalf("conversion ratio %v implausibly high", ratio)
	}
}

func TestRunAllParallelMatchesSequential(t *testing.T) {
	cs := []adnet.Campaign{
		smallCampaign("par-1", 900),
		smallCampaign("par-2", 700),
		smallCampaign("par-3", 500),
	}
	seq := newFixture(t)
	seqOut, err := seq.driver.RunAll(cs)
	if err != nil {
		t.Fatal(err)
	}
	par := newFixture(t)
	parOut, err := par.driver.RunAllParallel(cs)
	if err != nil {
		t.Fatal(err)
	}
	if seqOut.TotalLogged() != parOut.TotalLogged() {
		t.Fatalf("logged: seq %d vs par %d", seqOut.TotalLogged(), parOut.TotalLogged())
	}
	// Same records per campaign, independent of interleaving: compare
	// the per-campaign publisher multisets via counts.
	for _, c := range cs {
		a := seq.store.ByCampaign(c.ID)
		b := par.store.ByCampaign(c.ID)
		if len(a) != len(b) {
			t.Fatalf("%s: seq %d vs par %d records", c.ID, len(a), len(b))
		}
		ca := map[string]int{}
		cb := map[string]int{}
		for i := range a {
			ca[a[i].Publisher+"|"+a[i].UserKey]++
			cb[b[i].Publisher+"|"+b[i].UserKey]++
		}
		for k, v := range ca {
			if cb[k] != v {
				t.Fatalf("%s: record multiset differs at %q (%d vs %d)", c.ID, k, v, cb[k])
			}
		}
	}
}

// scaledPaperRoster is the paper's 8-campaign Table 1 roster with
// impression volumes scaled down ~40x so the full roster runs in test
// time while keeping every campaign's keywords, geo, CPM and flight.
func scaledPaperRoster() []adnet.Campaign {
	cs := adnet.PaperCampaigns()
	for i := range cs {
		cs[i].Impressions /= 40
		if cs[i].Impressions < 400 {
			cs[i].Impressions = 400
		}
	}
	return cs
}

// TestRunAllParallelMatchesSequentialPaperRoster runs the full Table 1
// roster both ways on separate fixtures and requires deep equality: the
// outcome structs (deliveries, vendor reports, loss accounting) and
// every stored record per campaign, in order. Valid because both the
// network and the loss model fork a per-campaign RNG stream — execution
// order must be invisible.
func TestRunAllParallelMatchesSequentialPaperRoster(t *testing.T) {
	cs := scaledPaperRoster()
	if len(cs) != 8 {
		t.Fatalf("paper roster has %d campaigns, want 8", len(cs))
	}
	seq := newFixture(t)
	seqOut, err := seq.driver.RunAll(cs)
	if err != nil {
		t.Fatal(err)
	}
	par := newFixture(t)
	parOut, err := par.driver.RunAllParallel(cs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seqOut, parOut) {
		for i := range seqOut.Campaigns {
			if !reflect.DeepEqual(seqOut.Campaigns[i], parOut.Campaigns[i]) {
				t.Errorf("campaign %s outcome differs: seq %+v vs par %+v",
					cs[i].ID, seqOut.Campaigns[i], parOut.Campaigns[i])
			}
		}
		t.Fatal("parallel RunOutcome differs from sequential")
	}
	for _, c := range cs {
		a := seq.store.ByCampaign(c.ID)
		b := par.store.ByCampaign(c.ID)
		if len(a) != len(b) {
			t.Fatalf("%s: seq stored %d records, par %d", c.ID, len(a), len(b))
		}
		for i := range a {
			// Global insertion IDs depend on cross-campaign
			// interleaving; everything else must match record for
			// record.
			a[i].ID, b[i].ID = 0, 0
			if !reflect.DeepEqual(a[i], b[i]) {
				t.Fatalf("%s record %d differs:\nseq %+v\npar %+v", c.ID, i, a[i], b[i])
			}
		}
	}
}
