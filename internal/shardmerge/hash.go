package shardmerge

// ShardFor maps a session key onto one of n shards. The key is the
// beacon nonce: it is present on every gatewayed or routed impression
// (the edge mints one when the client omits it), it is stable across
// client retries and gateway replays — so a re-sent commit lands on the
// same shard — and it is uniformly distributed, unlike user keys or
// publishers, whose popularity skew would hotspot a shard.
//
// The router and the shard-merge oracle both use this function, so a
// dataset partitioned by either agrees about ownership. FNV-1a over the
// key, reduced modulo n; with n <= 1 everything maps to shard 0.
func ShardFor(key string, n int) int {
	if n <= 1 {
		return 0
	}
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return int(h % uint32(n))
}
