package shardmerge

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"testing"
	"time"

	"adaudit/internal/adnet"
	"adaudit/internal/audit"
	"adaudit/internal/publisher"
	"adaudit/internal/store"
	"adaudit/internal/streamaudit"
)

// The package's headline test: a workload partitioned onto N shard
// stores by session-nonce hash, audited per shard by unmodified
// streamaudit engines, exported, JSON round-tripped (the wire the
// router really ships), and merged in shard order must produce a report
// reflect.DeepEqual to a batch FullAudit over a single store holding
// the shards' data concatenated in the same shard order — including
// the Table 5 adversarial dimensions, which the workload makes
// non-vacuous.

var mergeCampaigns = []string{"camp-alpha", "camp-beta", "camp-gamma"}

var mergeVerdicts = []string{
	"", "", "", "not-data-center", "not-data-center",
	"vpn-exception", "provider-db", "deny-list", "manual",
}

// shardWorld is N shard stores plus the publisher universe the
// metadata comes from.
type shardWorld struct {
	uni    *publisher.Universe
	meta   audit.MetadataSource
	shards []*store.Store
	inputs []audit.CampaignInput
}

func newShardWorld(t testing.TB, seed int64, n int) *shardWorld {
	t.Helper()
	uni, err := publisher.NewUniverse(publisher.Config{Seed: seed, NumPublishers: 120})
	if err != nil {
		t.Fatalf("NewUniverse: %v", err)
	}
	w := &shardWorld{
		uni:    uni,
		meta:   audit.UniverseMetadata{Universe: uni},
		shards: make([]*store.Store, n),
	}
	for i := range w.shards {
		w.shards[i] = store.New()
	}
	return w
}

// shardFor routes a session key the way the router does — the real
// partition function, so the test's placement matches a live topology.
func shardFor(key string, n int) int { return ShardFor(key, n) }

// TestShardForMatchesFNV pins the hash: the partition function is part
// of the wire contract (a changed hash re-homes every session on a
// rolling upgrade), so a change here must be deliberate.
func TestShardForMatchesFNV(t *testing.T) {
	for _, key := range []string{"", "a", "sm-0001", "adsim-replay-42"} {
		h := fnv.New32a()
		h.Write([]byte(key))
		for _, n := range []int{1, 2, 4, 8} {
			want := 0
			if n > 1 {
				want = int(h.Sum32() % uint32(n))
			}
			if got := ShardFor(key, n); got != want {
				t.Fatalf("ShardFor(%q, %d) = %d, want %d", key, n, got, want)
			}
		}
	}
}

type placed struct {
	shard int
	id    int64
}

// populate drives a seeded workload onto the shards: inserts routed by
// nonce, continuations merged on the owning shard, conversions routed
// by user key (deliberately a different key than impressions — per-user
// state must still merge exactly when a user's conversions land on a
// different shard than their impressions).
func (w *shardWorld) populate(t testing.TB, rng *rand.Rand, n int) {
	t.Helper()
	var ids []placed
	for i := 0; i < n; i++ {
		campaign := mergeCampaigns[rng.Intn(len(mergeCampaigns))]
		var pub string
		if rng.Intn(10) == 0 {
			pub = fmt.Sprintf("offgrid%d.example", rng.Intn(5))
		} else {
			pub = w.uni.At(rng.Intn(w.uni.Len())).Domain
		}
		im := store.Impression{
			CampaignID:  campaign,
			CreativeID:  "cr-1",
			Publisher:   pub,
			UserKey:     fmt.Sprintf("user-%d", rng.Intn(40)),
			IPPseudonym: fmt.Sprintf("ip-%d", rng.Intn(30)),
			UserAgent:   "test-agent",
			DataCenter:  mergeVerdicts[rng.Intn(len(mergeVerdicts))],
			Timestamp:   time.Unix(1700000000, 0).UTC().Add(time.Duration(rng.Intn(86400)) * time.Second),
			Exposure:    time.Duration(rng.Int63n(int64(3 * time.Second))),
			MouseMoves:  rng.Intn(4),
			Clicks:      rng.Intn(2),
			Nonce:       fmt.Sprintf("sm-%04d", i),
		}
		if rng.Intn(3) == 0 {
			im.VisibilityMeasured = true
			im.MaxVisibleFraction = rng.Float64()
		}
		sh := shardFor(im.Nonce, len(w.shards))
		id, err := w.shards[sh].Insert(im)
		if err != nil {
			t.Fatalf("Insert: %v", err)
		}
		ids = append(ids, placed{sh, id})
		if rng.Intn(4) == 0 {
			cont := store.Continuation{
				Exposure:   time.Duration(rng.Int63n(int64(2 * time.Second))),
				MouseMoves: rng.Intn(3),
				Clicks:     rng.Intn(2),
			}
			if rng.Intn(2) == 0 {
				cont.VisibilityMeasured = true
				cont.MaxVisibleFraction = rng.Float64()
			}
			target := ids[rng.Intn(len(ids))]
			if err := w.shards[target.shard].Merge(target.id, cont); err != nil {
				t.Fatalf("Merge: %v", err)
			}
		}
		if rng.Intn(10) == 0 {
			user := fmt.Sprintf("user-%d", rng.Intn(40))
			_, err := w.shards[shardFor(user, len(w.shards))].InsertConversion(store.Conversion{
				CampaignID: campaign,
				UserKey:    user,
				Action:     "purchase",
				ValueCents: int64(rng.Intn(5000)),
				Timestamp:  time.Unix(1700000000, 0).UTC().Add(time.Duration(rng.Intn(86400)) * time.Second),
			})
			if err != nil {
				t.Fatalf("InsertConversion: %v", err)
			}
		}
	}
}

// populateAdversarial layers the Table 5 attack traffic on: per
// campaign one timer bot (whose nonce-distinct impressions scatter
// across shards — per-user behavioral state must reassemble in the
// merge) and one stacked-1px publisher.
func (w *shardWorld) populateAdversarial(t testing.TB) {
	t.Helper()
	base := time.Unix(1700050000, 0).UTC()
	for ci, c := range mergeCampaigns {
		botPub := w.uni.At((ci * 7) % w.uni.Len()).Domain
		for k := 0; k < 8; k++ {
			nonce := fmt.Sprintf("bot-%d-%d", ci, k)
			sh := shardFor(nonce, len(w.shards))
			id, err := w.shards[sh].Insert(store.Impression{
				CampaignID:         c,
				CreativeID:         "cr-1",
				Publisher:          botPub,
				UserKey:            fmt.Sprintf("timerbot-%d", ci),
				IPPseudonym:        fmt.Sprintf("botip-%d", ci),
				UserAgent:          "bot-agent",
				Timestamp:          base.Add(time.Duration(k) * 30 * time.Second),
				Exposure:           1500 * time.Millisecond,
				VisibilityMeasured: true,
				MaxVisibleFraction: 0.35,
				Nonce:              nonce,
			})
			if err != nil {
				t.Fatalf("Insert bot impression: %v", err)
			}
			if err := w.shards[sh].Merge(id, store.Continuation{
				Exposure:           250 * time.Millisecond,
				VisibilityMeasured: true,
				MaxVisibleFraction: 0.10,
			}); err != nil {
				t.Fatalf("Merge bot impression: %v", err)
			}
		}
		infPub := fmt.Sprintf("stacked%d.example", ci)
		for k := 0; k < 7; k++ {
			nonce := fmt.Sprintf("stack-%d-%d", ci, k)
			_, err := w.shards[shardFor(nonce, len(w.shards))].Insert(store.Impression{
				CampaignID:         c,
				CreativeID:         "cr-1",
				Publisher:          infPub,
				UserKey:            fmt.Sprintf("stackuser-%d-%d", ci, k),
				IPPseudonym:        fmt.Sprintf("stackip-%d-%d", ci, k),
				UserAgent:          "test-agent",
				Timestamp:          base.Add(time.Duration(k) * 7 * time.Minute),
				Exposure:           2 * time.Second,
				VisibilityMeasured: true,
				MaxVisibleFraction: 0.02 + 0.005*float64(k),
				Nonce:              nonce,
			})
			if err != nil {
				t.Fatalf("Insert stacked impression: %v", err)
			}
		}
	}
}

// combined builds the reference single store: every shard's records and
// conversions concatenated in shard order — the order Merge unions
// exports in, which is what makes even the order-sensitive float mean
// bit-identical.
func (w *shardWorld) combined(t testing.TB) *store.Store {
	t.Helper()
	st := store.New()
	for _, sh := range w.shards {
		var err error
		sh.ForEach(func(im store.Impression) bool {
			_, err = st.Insert(im)
			return err == nil
		})
		if err != nil {
			t.Fatalf("combining shard records: %v", err)
		}
		for _, c := range sh.Conversions("") {
			if _, err := st.InsertConversion(c); err != nil {
				t.Fatalf("combining shard conversions: %v", err)
			}
		}
	}
	return st
}

// buildInputs synthesizes the vendor reports from the combined store:
// honest rows with direct-seller attributions, an anonymous-exchange
// row, a vendor-only phantom, one spoofed row and one pooled seller
// spanning five owner groups — so every adversarial dimension fires.
func (w *shardWorld) buildInputs(t testing.TB, rng *rand.Rand, combined *store.Store) {
	t.Helper()
	groups := map[string]bool{}
	var poolPubs []string
	for i := 0; i < w.uni.Len() && len(poolPubs) < 5; i++ {
		d := w.uni.At(i).Domain
		g := adnet.OwnerGroupOf(d)
		if !groups[g] {
			groups[g] = true
			poolPubs = append(poolPubs, d)
		}
	}
	if len(poolPubs) < 5 {
		t.Fatalf("universe spans only %d owner groups", len(poolPubs))
	}
	w.inputs = nil
	for _, c := range mergeCampaigns {
		pubs := combined.Publishers(c)
		sort.Strings(pubs)
		rep := &adnet.VendorReport{CampaignID: c}
		for i, p := range pubs {
			if i%3 == 2 { // audit-only region of the Venn
				continue
			}
			rep.Rows = append(rep.Rows, adnet.ReportRow{
				Publisher:   p,
				SellerID:    adnet.DirectSellerID(p),
				Impressions: int64(1 + rng.Intn(50)),
				Clicks:      int64(rng.Intn(5)),
			})
		}
		rep.Rows = append(rep.Rows,
			adnet.ReportRow{Publisher: adnet.AnonymousPublisher, SellerID: adnet.ExchangeSellerID, Impressions: int64(10 + rng.Intn(90))},
			adnet.ReportRow{Publisher: "vendoronly.example", Impressions: 7},
			adnet.ReportRow{
				Publisher:   w.uni.At(0).Domain,
				SellerID:    adnet.DirectSellerID("lowquality.example"),
				Impressions: 31,
			})
		for _, p := range poolPubs {
			rep.Rows = append(rep.Rows, adnet.ReportRow{
				Publisher: p, SellerID: "pool-test", Impressions: 5,
			})
		}
		for _, r := range rep.Rows {
			rep.TotalImpressionsCharged += r.Impressions
		}
		rep.ContextualImpressions = rep.TotalImpressionsCharged * 2 / 3
		rep.RefundedImpressions = rep.TotalImpressionsCharged / 10
		w.inputs = append(w.inputs, audit.CampaignInput{ID: c, Keywords: w.keywordsFor(c), Report: rep})
	}
	w.inputs = append(w.inputs, audit.CampaignInput{
		ID:       "camp-ghost",
		Keywords: []string{"phantom"},
		Report:   &adnet.VendorReport{CampaignID: "camp-ghost"},
	})
}

func (w *shardWorld) keywordsFor(campaign string) []string {
	h := 0
	for _, b := range campaign {
		h = h*31 + int(b)
	}
	kws := []string{"zzz-nomatch"}
	for i := 0; i < 3; i++ {
		p := w.uni.At((h + i*17) % w.uni.Len())
		if len(p.Keywords) > 0 {
			kws = append(kws, p.Keywords[0])
		}
	}
	return kws
}

// exports runs one unmodified streamaudit engine per shard (snapshot
// prime) and collects their exports in shard order.
func (w *shardWorld) exports(t testing.TB) []*streamaudit.Export {
	t.Helper()
	out := make([]*streamaudit.Export, len(w.shards))
	for i, sh := range w.shards {
		eng, err := streamaudit.New(streamaudit.Config{Store: sh, Meta: w.meta})
		if err != nil {
			t.Fatalf("shard %d: streamaudit.New: %v", i, err)
		}
		eng.Drain()
		out[i] = eng.Export()
	}
	return out
}

// roundTrip pushes each export through its JSON encoding — the wire the
// router fetches over — so the test proves the codec preserves report
// equality, floats included.
func roundTrip(t testing.TB, exports []*streamaudit.Export) []*streamaudit.Export {
	t.Helper()
	out := make([]*streamaudit.Export, len(exports))
	for i, exp := range exports {
		b, err := json.Marshal(exp)
		if err != nil {
			t.Fatalf("shard %d: marshal export: %v", i, err)
		}
		out[i] = &streamaudit.Export{}
		if err := json.Unmarshal(b, out[i]); err != nil {
			t.Fatalf("shard %d: unmarshal export: %v", i, err)
		}
	}
	return out
}

func TestShardMergeMatchesFullAudit(t *testing.T) {
	for _, shards := range []int{2, 4, 8} {
		shards := shards
		t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
			seed := int64(40 + shards)
			w := newShardWorld(t, seed, shards)
			rng := rand.New(rand.NewSource(seed))
			w.populate(t, rng, 400)
			w.populateAdversarial(t)

			combined := w.combined(t)
			w.buildInputs(t, rng, combined)

			aud, err := audit.New(combined, w.meta)
			if err != nil {
				t.Fatalf("audit.New: %v", err)
			}
			want, err := aud.FullAuditSerial(w.inputs)
			if err != nil {
				t.Fatalf("FullAuditSerial: %v", err)
			}
			// Non-vacuity: every adversarial dimension must have fired,
			// or the deep-equal below proves nothing about Table 5.
			for _, ca := range want.PerCampaign {
				if ca.ID == "camp-ghost" {
					continue
				}
				if len(ca.Sellers.UnauthorizedPairs) == 0 {
					t.Fatalf("campaign %s: no unauthorized seller pairs; adversarial input broken", ca.ID)
				}
				if len(ca.Pooling.PooledSellers) == 0 {
					t.Fatalf("campaign %s: pooling detector silent; adversarial input broken", ca.ID)
				}
				if len(ca.Behavior.BotUsers) == 0 {
					t.Fatalf("campaign %s: behavior detector saw no bots; adversarial input broken", ca.ID)
				}
				if len(ca.Behavior.InflatedPublishers) == 0 {
					t.Fatalf("campaign %s: no inflated publishers; adversarial input broken", ca.ID)
				}
			}

			merged := Merge(roundTrip(t, w.exports(t)))
			eng, err := streamaudit.NewStatic(streamaudit.StaticConfig{Meta: w.meta}, merged)
			if err != nil {
				t.Fatalf("NewStatic: %v", err)
			}
			got, err := eng.Report(w.inputs)
			if err != nil {
				t.Fatalf("merged Report: %v", err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("merged shard report != single-store FullAudit (shards=%d)\nmerged: %+v\nbatch:  %+v",
					shards, got, want)
			}

			// And against the parallel batch path, for completeness.
			par, err := aud.FullAudit(w.inputs)
			if err != nil {
				t.Fatalf("FullAudit: %v", err)
			}
			if !reflect.DeepEqual(got, par) {
				t.Fatalf("merged shard report != parallel FullAudit")
			}
		})
	}
}

// TestMergeSingleShardIdentity pins the degenerate case: merging one
// shard's export must reproduce that shard's own report exactly.
func TestMergeSingleShardIdentity(t *testing.T) {
	w := newShardWorld(t, 7, 1)
	rng := rand.New(rand.NewSource(7))
	w.populate(t, rng, 200)
	combined := w.combined(t)
	w.buildInputs(t, rng, combined)

	exports := w.exports(t)
	eng, err := streamaudit.NewStatic(streamaudit.StaticConfig{Meta: w.meta}, Merge(exports))
	if err != nil {
		t.Fatalf("NewStatic: %v", err)
	}
	got, err := eng.Report(w.inputs)
	if err != nil {
		t.Fatalf("merged Report: %v", err)
	}
	direct, err := streamaudit.New(streamaudit.Config{Store: w.shards[0], Meta: w.meta})
	if err != nil {
		t.Fatalf("streamaudit.New: %v", err)
	}
	want, err := direct.Report(w.inputs)
	if err != nil {
		t.Fatalf("direct Report: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("single-shard merge != direct engine report")
	}
}

// TestClientFetchMerged covers the HTTP fetch path end to end: two
// httptest shards serving real engine exports, fetched and merged, must
// match the combined-store audit.
func TestClientFetchMerged(t *testing.T) {
	w := newShardWorld(t, 11, 2)
	rng := rand.New(rand.NewSource(11))
	w.populate(t, rng, 150)
	combined := w.combined(t)
	w.buildInputs(t, rng, combined)

	exports := w.exports(t)
	var urls []string
	for i := range exports {
		exp := exports[i]
		srv := httptest.NewServer(http.HandlerFunc(func(wr http.ResponseWriter, r *http.Request) {
			if r.URL.Path != ExportPath {
				http.NotFound(wr, r)
				return
			}
			wr.Header().Set("Content-Type", "application/json")
			json.NewEncoder(wr).Encode(exp)
		}))
		defer srv.Close()
		urls = append(urls, srv.URL)
	}

	cl := &Client{Shards: urls}
	merged, err := cl.FetchMerged(context.Background())
	if err != nil {
		t.Fatalf("FetchMerged: %v", err)
	}
	eng, err := streamaudit.NewStatic(streamaudit.StaticConfig{Meta: w.meta}, merged)
	if err != nil {
		t.Fatalf("NewStatic: %v", err)
	}
	got, err := eng.Report(w.inputs)
	if err != nil {
		t.Fatalf("merged Report: %v", err)
	}
	aud, err := audit.New(combined, w.meta)
	if err != nil {
		t.Fatalf("audit.New: %v", err)
	}
	want, err := aud.FullAuditSerial(w.inputs)
	if err != nil {
		t.Fatalf("FullAuditSerial: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("fetched+merged report != single-store FullAudit")
	}

	// One dead shard must fail the fetch, not silently shrink the data.
	cl = &Client{Shards: append(append([]string(nil), urls...), "http://127.0.0.1:1"), Timeout: 2 * time.Second}
	if _, err := cl.FetchMerged(context.Background()); err == nil {
		t.Fatalf("FetchMerged with an unreachable shard: want error, got nil")
	}
}
