package shardmerge

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"adaudit/internal/streamaudit"
)

// ExportPath is the collector endpoint serving a shard's
// streamaudit.Export.
const ExportPath = "/api/live/export"

// maxExportBytes bounds one shard's export document (a runaway shard
// must not OOM the router).
const maxExportBytes = 256 << 20

// Client fetches per-shard exports over HTTP and merges them. Shard
// order in Shards is the merge order — keep it identical across
// routers, restarts and the reference single-store audit, or float
// aggregates lose bit-stability (counts stay exact either way).
type Client struct {
	// Shards lists the shard base URLs (for example
	// "http://10.0.0.1:8443") in shard order.
	Shards []string
	// HTTPClient overrides http.DefaultClient.
	HTTPClient *http.Client
	// Timeout bounds each per-shard fetch when the caller's context has
	// no earlier deadline (default 10s).
	Timeout time.Duration
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// FetchExports retrieves every shard's export concurrently, returning
// them in shard order. All shards must answer: one unreachable shard
// fails the fetch, because a merged report silently missing a shard's
// slice of the data is worse than no report.
func (c *Client) FetchExports(ctx context.Context) ([]*streamaudit.Export, error) {
	timeout := c.Timeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	exports := make([]*streamaudit.Export, len(c.Shards))
	errs := make([]error, len(c.Shards))
	var wg sync.WaitGroup
	for i, base := range c.Shards {
		wg.Add(1)
		go func(i int, base string) {
			defer wg.Done()
			exports[i], errs[i] = c.fetchOne(ctx, base)
		}(i, base)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("shardmerge: shard %d (%s): %w", i, c.Shards[i], err)
		}
	}
	return exports, nil
}

// FetchMerged fetches every shard and merges in shard order.
func (c *Client) FetchMerged(ctx context.Context) (*streamaudit.Export, error) {
	exports, err := c.FetchExports(ctx)
	if err != nil {
		return nil, err
	}
	return Merge(exports), nil
}

func (c *Client) fetchOne(ctx context.Context, base string) (*streamaudit.Export, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+ExportPath, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("export fetch: %s: %s", resp.Status, body)
	}
	var exp streamaudit.Export
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxExportBytes)).Decode(&exp); err != nil {
		return nil, fmt.Errorf("decoding export: %w", err)
	}
	return &exp, nil
}
