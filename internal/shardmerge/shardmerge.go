// Package shardmerge reconstructs a single-store audit view from N
// collector shards. Each shard runs its own store + WAL + change feed +
// streamaudit engine and serves its incremental state as a
// streamaudit.Export (/api/live/export); Merge unions those exports —
// in shard order — into one combined Export whose materialised report
// (streamaudit.NewStatic + Engine.Report) is reflect.DeepEqual to a
// single-store FullAudit over the concatenation of the shards' data.
//
// Shard order is load-bearing for bit-stability, not correctness of
// counts: per-campaign slot-indexed slices (exposure samples,
// visibility signals) concatenate in shard order, so the one
// order-sensitive statistic in the report — stats.Summarize's float
// mean, summed in element order — sees the samples in exactly the
// insertion order of a reference store built by concatenating the
// shards' datasets in the same order. Everything else merges by sum,
// union, OR, min/max, or slot-offset relabelling, all order-insensitive.
//
// The merged Seq is the sum of shard Seqs: a monotone progress
// indicator for staleness displays, not a feed position.
package shardmerge

import (
	"sort"
	"time"

	"adaudit/internal/audit"
	"adaudit/internal/streamaudit"
)

// Merge unions per-shard exports in shard order into one combined
// export. Nil shards (a shard that failed to export) are skipped;
// callers that need all-or-nothing semantics check before calling.
func Merge(shards []*streamaudit.Export) *streamaudit.Export {
	out := &streamaudit.Export{
		Campaigns: map[string]*streamaudit.CampaignExport{},
	}
	allPubs := map[string]struct{}{}
	users := map[string]map[string]struct{}{}
	freq := map[audit.FrequencyKey][]time.Time{}

	for _, sh := range shards {
		if sh == nil {
			continue
		}
		out.Seq += sh.Seq
		for _, p := range sh.AllPubs {
			allPubs[p] = struct{}{}
		}
		for _, g := range sh.Freq {
			k := audit.FrequencyKey{CampaignID: g.CampaignID, UserKey: g.UserKey}
			freq[k] = append(freq[k], g.Times...)
		}
		for id, ce := range sh.Campaigns {
			mergeCampaign(out, users, id, ce)
		}
	}

	for id, set := range users {
		out.Campaigns[id].Users = sortedSet(set)
	}
	out.AllPubs = sortedSet(allPubs)
	out.Freq = make([]streamaudit.FreqGroup, 0, len(freq))
	for k, ts := range freq {
		out.Freq = append(out.Freq, streamaudit.FreqGroup{
			CampaignID: k.CampaignID, UserKey: k.UserKey, Times: ts,
		})
	}
	sort.Slice(out.Freq, func(a, b int) bool {
		if out.Freq[a].CampaignID != out.Freq[b].CampaignID {
			return out.Freq[a].CampaignID < out.Freq[b].CampaignID
		}
		return out.Freq[a].UserKey < out.Freq[b].UserKey
	})
	return out
}

// mergeCampaign folds one shard's view of one campaign into the
// accumulating merged export. The slot offset — how many exposure
// samples the merged campaign already holds — relabels the shard's
// slot-indexed identity lists so they keep pointing at their samples
// after concatenation.
func mergeCampaign(out *streamaudit.Export, users map[string]map[string]struct{}, id string, ce *streamaudit.CampaignExport) {
	mc := out.Campaigns[id]
	if mc == nil {
		mc = &streamaudit.CampaignExport{}
		out.Campaigns[id] = mc
		users[id] = map[string]struct{}{}
	}
	offset := len(mc.Exposures)

	mc.PubImps = addMap(mc.PubImps, ce.PubImps)
	for _, u := range ce.Users {
		users[id][u] = struct{}{}
	}
	mc.Clicks += ce.Clicks
	mc.Conversions += ce.Conversions
	if !ce.FirstSeen.IsZero() && (mc.FirstSeen.IsZero() || ce.FirstSeen.Before(mc.FirstSeen)) {
		mc.FirstSeen = ce.FirstSeen
	}
	if ce.LastSeen.After(mc.LastSeen) {
		mc.LastSeen = ce.LastSeen
	}

	mc.ImpRanks = append(mc.ImpRanks, ce.ImpRanks...)
	mc.UnknownMeta += ce.UnknownMeta

	mc.Exposures = append(mc.Exposures, ce.Exposures...)
	mc.ViewableUB += ce.ViewableUB
	mc.Measured += ce.Measured
	mc.MRCViewable += ce.MRCViewable

	mc.DCImps += ce.DCImps
	mc.ByVerdict = addMap(mc.ByVerdict, ce.ByVerdict)
	mc.IPSeen = orMap(mc.IPSeen, ce.IPSeen)
	mc.PubSeen = orMap(mc.PubSeen, ce.PubSeen)
	mc.DCPerPub = addMap(mc.DCPerPub, ce.DCPerPub)

	mc.VisMeasured = append(mc.VisMeasured, ce.VisMeasured...)
	mc.VisFrac = append(mc.VisFrac, ce.VisFrac...)
	mc.UserSlots = appendSlots(mc.UserSlots, ce.UserSlots, offset)
	mc.PubSlots = appendSlots(mc.PubSlots, ce.PubSlots, offset)
	mc.UserConvs = addMap(mc.UserConvs, ce.UserConvs)
	mc.UserDC = orMap(mc.UserDC, ce.UserDC)
}

func addMap(dst, src map[string]int) map[string]int {
	if len(src) == 0 {
		return dst
	}
	if dst == nil {
		dst = make(map[string]int, len(src))
	}
	for k, v := range src {
		dst[k] += v
	}
	return dst
}

func orMap(dst, src map[string]bool) map[string]bool {
	if len(src) == 0 {
		return dst
	}
	if dst == nil {
		dst = make(map[string]bool, len(src))
	}
	for k, v := range src {
		dst[k] = dst[k] || v
	}
	return dst
}

func appendSlots(dst, src map[string][]int, offset int) map[string][]int {
	if len(src) == 0 {
		return dst
	}
	if dst == nil {
		dst = make(map[string][]int, len(src))
	}
	for k, slots := range src {
		for _, s := range slots {
			dst[k] = append(dst[k], s+offset)
		}
	}
	return dst
}

func sortedSet(set map[string]struct{}) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
