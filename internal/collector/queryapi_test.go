package collector

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/netip"
	"testing"
	"time"

	"adaudit/internal/beacon"
	"adaudit/internal/store"
)

func queryFixture(t *testing.T) (*Collector, *store.Store, string, context.CancelFunc) {
	t.Helper()
	c, st := testCollector(t)
	srv, err := NewServer(c, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go srv.Serve(ctx)

	base := time.Date(2016, 3, 29, 12, 0, 0, 0, time.UTC)
	for i := 0; i < 30; i++ {
		obs := Observation{
			Payload: beacon.Payload{
				CampaignID: "camp-a",
				CreativeID: "cr",
				PageURL:    fmt.Sprintf("http://pub%d.es/p", i%6),
				UserAgent:  fmt.Sprintf("UA-%d", i%9),
			},
			RemoteIP:    netip.AddrFrom4([4]byte{10, 0, 1, byte(i%200 + 1)}),
			ConnectedAt: base.Add(time.Duration(i) * time.Minute),
			Exposure:    time.Duration(i%3) * time.Second, // 1/3 below 1s
		}
		if _, err := c.Ingest(obs); err != nil {
			t.Fatal(err)
		}
	}
	c.IngestConversion(ConversionObservation{
		Conversion: beacon.Conversion{CampaignID: "camp-a", Action: "purchase", ValueCents: 100},
		RemoteIP:   netip.MustParseAddr("10.0.1.1"),
		UserAgent:  "UA-0",
		At:         base.Add(time.Hour),
	})
	return c, st, "http://" + srv.Addr().String(), cancel
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func TestAPICampaigns(t *testing.T) {
	_, _, base, cancel := queryFixture(t)
	defer cancel()
	var list []CampaignListEntry
	if code := getJSON(t, base+"/api/campaigns", &list); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(list) != 1 || list[0].CampaignID != "camp-a" || list[0].Impressions != 30 {
		t.Fatalf("campaigns = %+v", list)
	}
}

func TestAPISummary(t *testing.T) {
	_, _, base, cancel := queryFixture(t)
	defer cancel()
	var sum CampaignSummary
	if code := getJSON(t, base+"/api/summary?campaign=camp-a", &sum); code != 200 {
		t.Fatalf("status %d", code)
	}
	if sum.Impressions != 30 || sum.Publishers != 6 {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.Conversions != 1 {
		t.Fatalf("conversions = %d", sum.Conversions)
	}
	// Exposures are 0s/1s/2s round-robin: 2/3 at or above 1s.
	if sum.ViewableUpperBound < 0.6 || sum.ViewableUpperBound > 0.7 {
		t.Fatalf("viewable = %v", sum.ViewableUpperBound)
	}
	if sum.FirstSeen.IsZero() || !sum.LastSeen.After(sum.FirstSeen) {
		t.Fatalf("window = %v..%v", sum.FirstSeen, sum.LastSeen)
	}
}

func TestAPISummaryErrors(t *testing.T) {
	_, _, base, cancel := queryFixture(t)
	defer cancel()
	var sum CampaignSummary
	if code := getJSON(t, base+"/api/summary", &sum); code != http.StatusBadRequest {
		t.Fatalf("missing param status %d", code)
	}
	if code := getJSON(t, base+"/api/summary?campaign=nope", &sum); code != http.StatusNotFound {
		t.Fatalf("unknown campaign status %d", code)
	}
}

func TestAPIPublishers(t *testing.T) {
	_, _, base, cancel := queryFixture(t)
	defer cancel()
	var rows []PublisherRow
	if code := getJSON(t, base+"/api/publishers?campaign=camp-a&limit=3", &rows); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Impressions > rows[i-1].Impressions {
			t.Fatal("rows not sorted")
		}
	}
	if code := getJSON(t, base+"/api/publishers?campaign=camp-a&limit=0", &rows); code != http.StatusBadRequest {
		t.Fatalf("bad limit status %d", code)
	}
	if code := getJSON(t, base+"/api/publishers", &rows); code != http.StatusBadRequest {
		t.Fatalf("missing campaign status %d", code)
	}
}

func TestAPIPublishersErrors(t *testing.T) {
	_, _, base, cancel := queryFixture(t)
	defer cancel()
	var rows []PublisherRow
	if code := getJSON(t, base+"/api/publishers?campaign=nope", &rows); code != http.StatusNotFound {
		t.Fatalf("unknown campaign status %d", code)
	}
	for _, limit := range []string{"abc", "-3", "10001"} {
		if code := getJSON(t, base+"/api/publishers?campaign=camp-a&limit="+limit, &rows); code != http.StatusBadRequest {
			t.Fatalf("limit=%s status %d, want 400", limit, code)
		}
	}
}

func TestAPITimeseriesBadBucketSyntax(t *testing.T) {
	_, _, base, cancel := queryFixture(t)
	defer cancel()
	var points []TimeseriesPoint
	for _, bucket := range []string{"xyz", "-1h", "30d", "0"} {
		if code := getJSON(t, base+"/api/timeseries?campaign=camp-a&bucket="+bucket, &points); code != http.StatusBadRequest {
			t.Fatalf("bucket=%s status %d, want 400", bucket, code)
		}
	}
}

func TestAPIRejectsNonGET(t *testing.T) {
	_, _, base, cancel := queryFixture(t)
	defer cancel()
	for _, path := range []string{"/api/campaigns", "/api/summary", "/api/publishers", "/api/timeseries"} {
		resp, err := http.Post(base+path, "text/plain", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("%s POST status = %d", path, resp.StatusCode)
		}
	}
}

func TestAPITimeseries(t *testing.T) {
	_, _, base, cancel := queryFixture(t)
	defer cancel()
	var points []TimeseriesPoint
	if code := getJSON(t, base+"/api/timeseries?campaign=camp-a&bucket=10m", &points); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(points) == 0 {
		t.Fatal("no buckets")
	}
	total := 0
	for i, p := range points {
		total += p.Impressions
		if i > 0 && !points[i-1].Start.Before(p.Start) {
			t.Fatal("buckets not sorted")
		}
	}
	if total != 30 {
		t.Fatalf("bucketed %d impressions, want 30", total)
	}
	// Default bucket (1h) covers the 30-minute fixture in one bucket.
	if code := getJSON(t, base+"/api/timeseries?campaign=camp-a", &points); code != 200 {
		t.Fatalf("default bucket status %d", code)
	}
	if code := getJSON(t, base+"/api/timeseries?campaign=camp-a&bucket=1s", &points); code != 400 {
		t.Fatalf("tiny bucket status %d", code)
	}
	if code := getJSON(t, base+"/api/timeseries?campaign=nope", &points); code != 404 {
		t.Fatalf("unknown campaign status %d", code)
	}
	if code := getJSON(t, base+"/api/timeseries", &points); code != 400 {
		t.Fatalf("missing campaign status %d", code)
	}
}
