package collector

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"adaudit/internal/streamaudit"
)

// liveAPI serves the streaming-audit endpoints of the collector — the
// incremental counterpart of queryAPI, answering from the streamaudit
// engine's O(state) aggregates instead of rescanning the store:
//
//	GET /api/live/summary             — every campaign's live summary
//	GET /api/live/audit/{campaign}    — one campaign's five-dimension audit
//	GET /api/live/stream              — SSE feed of dimension updates
//	GET /api/live/export              — the engine's full incremental state
//	                                    (streamaudit.Export), the document
//	                                    the shard-merge tier unions
//
// The SSE stream emits one "summary" event per batch of changed
// campaigns (coalesced by the engine's Updates listener, so a slow
// dashboard sees fewer, fresher events rather than a backlog), plus an
// initial snapshot on connect and periodic heartbeat comments to keep
// intermediaries from timing the connection out.
type liveAPI struct {
	engine *streamaudit.Engine

	// stop closes when the server begins shutdown, so SSE handlers end
	// promptly instead of pinning http.Server.Shutdown until its
	// timeout; wg tracks them so Serve can wait for their teardown.
	stop chan struct{}
	wg   sync.WaitGroup
}

func newLiveAPI(e *streamaudit.Engine) *liveAPI {
	return &liveAPI{engine: e, stop: make(chan struct{})}
}

func (l *liveAPI) register(mux *http.ServeMux) {
	mux.HandleFunc("/api/live/summary", l.handleSummary)
	mux.HandleFunc("/api/live/audit/", l.handleAudit)
	mux.HandleFunc("/api/live/stream", l.handleStream)
	mux.HandleFunc("/api/live/export", l.handleExport)
}

// shutdown ends every open SSE stream and waits for the handlers to
// return. Idempotent.
func (l *liveAPI) shutdown() {
	select {
	case <-l.stop:
	default:
		close(l.stop)
	}
	l.wg.Wait()
}

func (l *liveAPI) handleSummary(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, l.engine.Summaries())
}

func (l *liveAPI) handleAudit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/api/live/audit/")
	if id == "" || strings.Contains(id, "/") {
		http.Error(w, "missing campaign id", http.StatusBadRequest)
		return
	}
	la, ok, err := l.engine.Audit(id)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if !ok {
		http.Error(w, "unknown campaign", http.StatusNotFound)
		return
	}
	writeJSON(w, la)
}

// handleExport serves the engine's deep-copied incremental state. The
// engine drains whatever the feed already buffered first, so an export
// taken at quiescence reflects every acknowledged mutation — the
// property the shard-merge exactness contract needs.
func (l *liveAPI) handleExport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	l.engine.Drain()
	writeJSON(w, l.engine.Export())
}

// sseHeartbeat keeps idle streams alive through proxies.
const sseHeartbeat = 15 * time.Second

func (l *liveAPI) handleStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	select {
	case <-l.stop:
		http.Error(w, "shutting down", http.StatusServiceUnavailable)
		return
	default:
	}
	l.wg.Add(1)
	defer l.wg.Done()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")

	u := l.engine.Listen()
	defer l.engine.Unlisten(u)

	// Initial snapshot so a fresh client needs no separate poll.
	if err := writeSSE(w, "snapshot", l.engine.Summaries()); err != nil {
		return
	}
	flusher.Flush()

	heartbeat := time.NewTicker(sseHeartbeat)
	defer heartbeat.Stop()
	for {
		select {
		case <-l.stop:
			// Graceful server shutdown: tell the client it was the
			// server, not the network.
			fmt.Fprint(w, "event: shutdown\ndata: {}\n\n")
			flusher.Flush()
			return
		case <-r.Context().Done():
			return
		case <-heartbeat.C:
			if _, err := fmt.Fprint(w, ": heartbeat\n\n"); err != nil {
				return
			}
			flusher.Flush()
		case <-u.C():
			dirty := u.Take()
			sums := make([]streamaudit.CampaignLive, 0, len(dirty))
			for _, id := range dirty {
				if s, ok := l.engine.LiveSummary(id); ok {
					sums = append(sums, s)
				}
			}
			if len(sums) == 0 {
				continue
			}
			if err := writeSSE(w, "summary", sums); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}

// writeSSE emits one server-sent event with a JSON payload.
func writeSSE(w http.ResponseWriter, event string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
	return err
}
