package collector

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"adaudit/internal/beacon"
	"adaudit/internal/faultnet"
	"adaudit/internal/ipmeta"
	"adaudit/internal/store"
)

// TestChaosCampaignSurvivesFaultsAndCrash is the end-to-end resilience
// proof: a fleet of beacons reports a campaign through a chaos proxy
// that kills and resets their connections mid-exposure, the collector
// journals every commit to a WAL, and after the run the WAL is replayed
// into a fresh store as if the daemon had crashed. The invariant under
// test: every impression a beacon got acknowledged (Report returned
// nil) is present in the recovered store, exactly once — network
// violence plus a process crash lose nothing that was acknowledged and
// double-count nothing that was retried.
func TestChaosCampaignSurvivesFaultsAndCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test needs real time for kills and reconnects")
	}

	walPath := filepath.Join(t.TempDir(), "chaos.wal")
	wal, err := store.OpenWAL(walPath, store.WALOptions{Policy: store.SyncOS})
	if err != nil {
		t.Fatal(err)
	}
	st := store.New()
	st.AttachWAL(wal)
	c, err := New(Config{
		Store:      st,
		Anonymizer: ipmeta.NewAnonymizer([]byte("chaos")),
		// Fast keepalive so sessions severed by the proxy are detected
		// and committed promptly rather than lingering to the test end.
		KeepAliveInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(c, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan struct{})
	go func() {
		defer close(served)
		_ = srv.Serve(ctx)
	}()

	// The chaos layer: every beacon connection dies 60–180 ms in, and
	// a few writes are torn or reset on top.
	plan := &faultnet.Plan{
		Seed:           20160329,
		KillAfter:      60 * time.Millisecond,
		KillJitter:     120 * time.Millisecond,
		ResetWriteProb: 0.02,
	}
	proxy, err := faultnet.NewProxy("127.0.0.1:0", srv.Addr().String(), plan)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	proxyURL := fmt.Sprintf("ws://%s/beacon", proxy.Addr())

	const fleet = 24
	type outcome struct {
		nonce string
		acked bool
	}
	outcomes := make([]outcome, fleet)
	var wg sync.WaitGroup
	for i := 0; i < fleet; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl := &beacon.Client{
				CollectorURL:    proxyURL,
				MaxAttempts:     10,
				RetryBackoff:    5 * time.Millisecond,
				RetryBackoffMax: 40 * time.Millisecond,
			}
			p := beacon.Payload{
				CampaignID: "Chaos-001",
				CreativeID: fmt.Sprintf("cr-%d", i),
				PageURL:    fmt.Sprintf("http://pub%d.es/page", i%5),
				UserAgent:  "Mozilla/5.0 Chaos",
				Nonce:      beacon.NewNonce(),
				Events: []beacon.Event{
					{Kind: beacon.EventMouseMove, At: 40 * time.Millisecond},
					{Kind: beacon.EventClick, At: 110 * time.Millisecond},
				},
			}
			exposure := time.Duration(150+10*(i%8)) * time.Millisecond
			rctx, rcancel := context.WithTimeout(context.Background(), 15*time.Second)
			defer rcancel()
			err := cl.Report(rctx, p, exposure)
			outcomes[i] = outcome{nonce: p.Nonce, acked: err == nil}
		}(i)
	}
	wg.Wait()

	// The faults actually fired, and at least one beacon reconnected
	// into a nonce merge — otherwise the test proved nothing.
	resets, kills, _, _ := plan.Stats()
	if kills == 0 {
		t.Fatal("chaos plan killed no connections")
	}
	if c.tel.dedupHits.Load() == 0 {
		t.Fatal("no reconnect was deduplicated by nonce; chaos too gentle")
	}
	acked := 0
	for _, o := range outcomes {
		if o.acked {
			acked++
		}
	}
	if acked == 0 {
		t.Fatal("no beacon ever got through; chaos too violent to test the invariant")
	}
	t.Logf("chaos: %d/%d acked, kills=%d resets=%d, %d sessions merged by nonce",
		acked, fleet, kills, resets, c.tel.dedupHits.Load())

	// Drain the collector so every in-flight session commits, then
	// "crash": discard the in-memory store and recover from the WAL
	// alone.
	cancel()
	select {
	case <-served:
	case <-time.After(10 * time.Second):
		t.Fatal("server did not drain")
	}
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}
	rec, _, err := store.RecoverWAL(walPath, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	byNonce := map[string]int{}
	rec.ForEach(func(im store.Impression) bool {
		if im.Nonce != "" {
			byNonce[im.Nonce]++
		}
		return true
	})
	for i, o := range outcomes {
		n := byNonce[o.nonce]
		if o.acked && n == 0 {
			t.Errorf("beacon %d was acknowledged but its impression is gone after recovery", i)
		}
		if n > 1 {
			t.Errorf("nonce of beacon %d appears %d times after recovery; retries double-counted", i, n)
		}
	}
	// Recovered records carry real measurements.
	rec.ForEach(func(im store.Impression) bool {
		if im.Exposure <= 0 {
			t.Errorf("recovered record %d has no exposure", im.ID)
		}
		if im.CampaignID != "Chaos-001" {
			t.Errorf("recovered record %d from campaign %q", im.ID, im.CampaignID)
		}
		return true
	})
	// The recovered store matches what the live store held at drain.
	if rec.Len() != st.Len() {
		t.Errorf("recovered %d records, live store held %d", rec.Len(), st.Len())
	}
}
