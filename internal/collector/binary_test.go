package collector

import (
	"context"
	"reflect"
	"testing"
	"time"

	"adaudit/internal/beacon"
)

// TestIngestBinaryMatchesText pins the wire-equivalence contract at the
// collector layer: the same impression delivered as a pre-encoded
// binary frame and as a decoded text Observation must produce
// byte-identical store records.
func TestIngestBinaryMatchesText(t *testing.T) {
	cText, stText := testCollector(t)
	cBin, stBin := testCollector(t)

	obs := testObservation(t, cText)
	obs.Payload.Nonce = "n-equiv-1"
	obs.Payload.Events = append(obs.Payload.Events, beacon.Event{Kind: beacon.EventVisibility, At: 4 * time.Second, Fraction: 0.75})
	if _, err := cText.Ingest(obs); err != nil {
		t.Fatal(err)
	}
	raw := obs.Payload.EncodeBinary()
	if _, err := cBin.IngestBinary(raw, obs.RemoteIP, obs.ConnectedAt, obs.Exposure); err != nil {
		t.Fatal(err)
	}

	if stText.Len() != 1 || stBin.Len() != 1 {
		t.Fatalf("store lens = %d, %d", stText.Len(), stBin.Len())
	}
	it, _ := stText.Get(1)
	ib, _ := stBin.Get(1)
	if !reflect.DeepEqual(it, ib) {
		t.Fatalf("records diverge:\n text = %+v\n  bin = %+v", it, ib)
	}
}

// TestIngestBinaryRejectsGarbage verifies a malformed binary frame is
// classified as a decode reject, same as the text path.
func TestIngestBinaryRejectsGarbage(t *testing.T) {
	c, st := testCollector(t)
	if _, err := c.IngestBinary([]byte{0xff, 0x01, 0x02}, testObservation(t, c).RemoteIP, time.Now(), time.Second); err == nil {
		t.Fatal("expected decode error")
	}
	if st.Len() != 0 {
		t.Fatalf("store has %d records after reject", st.Len())
	}
	if got := c.Metrics.Rejected.Load(); got != 1 {
		t.Fatalf("rejected metric = %d", got)
	}
}

// TestEndToEndBinaryWebSocketSession runs a full binary-wire session —
// OpBinary handshake frame, binary event updates — and checks the
// stored record matches what an identical text session produces.
func TestEndToEndBinaryWebSocketSession(t *testing.T) {
	c, st := testCollector(t)
	srv, err := NewServer(c, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go srv.Serve(ctx)

	p := beacon.Payload{
		CampaignID: "Football-010",
		CreativeID: "cr2",
		PageURL:    "http://futbolhoy999.es/cronica",
		UserAgent:  "Mozilla/5.0 Chrome/49.0",
	}
	for _, wire := range []string{beacon.WireBinary, beacon.WireText} {
		client := &beacon.Client{CollectorURL: srv.BeaconURL(), Wire: wire}
		sess, err := client.Open(ctx, p)
		if err != nil {
			t.Fatalf("%s open: %v", wire, err)
		}
		if err := sess.SendEvent(beacon.Event{Kind: beacon.EventClick, At: 40 * time.Millisecond}); err != nil {
			t.Fatalf("%s event: %v", wire, err)
		}
		if err := sess.SendEvent(beacon.Event{Kind: beacon.EventVisibility, At: 60 * time.Millisecond, Fraction: 0.5}); err != nil {
			t.Fatalf("%s event: %v", wire, err)
		}
		if err := sess.Close(); err != nil {
			t.Fatalf("%s close: %v", wire, err)
		}
	}

	deadline := time.Now().Add(3 * time.Second)
	for st.Len() < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if st.Len() != 2 {
		t.Fatalf("store has %d records", st.Len())
	}
	bin, _ := st.Get(1)
	txt, _ := st.Get(2)
	if bin.Clicks != 1 || bin.CampaignID != "Football-010" || bin.Publisher != "futbolhoy999.es" {
		t.Fatalf("binary record = %+v", bin)
	}
	// Session timing differs between the two runs; compare the
	// wire-derived fields only.
	if bin.CampaignID != txt.CampaignID || bin.CreativeID != txt.CreativeID ||
		bin.Publisher != txt.Publisher || bin.Clicks != txt.Clicks ||
		bin.MouseMoves != txt.MouseMoves || bin.MaxVisibleFraction != txt.MaxVisibleFraction ||
		bin.IPPseudonym != txt.IPPseudonym || bin.UserKey != txt.UserKey {
		t.Fatalf("binary/text sessions diverge:\n bin = %+v\n txt = %+v", bin, txt)
	}
}
