package collector

import (
	"fmt"
	"net/http"
	"net/netip"
	"time"

	"adaudit/internal/beacon"
	"adaudit/internal/store"
)

// ConversionObservation is one conversion-pixel hit as seen at the
// network edge.
type ConversionObservation struct {
	Conversion beacon.Conversion
	// RemoteIP is the converting browser's address; together with the
	// User-Agent it forms the same user identity the impression records
	// carry, so exposures and conversions join.
	RemoteIP  netip.Addr
	UserAgent string
	// At is the pixel request time.
	At time.Time
}

// IngestConversion enriches obs and commits it to the store.
func (c *Collector) IngestConversion(obs ConversionObservation) (int64, error) {
	if err := obs.Conversion.Validate(); err != nil {
		c.reject(RejectConvValidate)
		return 0, err
	}
	pseud := c.cfg.Anonymizer.Pseudonym(obs.RemoteIP)
	id, err := c.cfg.Store.InsertConversion(store.Conversion{
		CampaignID: obs.Conversion.CampaignID,
		UserKey:    UserKey(pseud, obs.UserAgent),
		Action:     obs.Conversion.Action,
		ValueCents: obs.Conversion.ValueCents,
		Timestamp:  obs.At,
	})
	if err != nil {
		c.reject(RejectConvInsert)
		return 0, fmt.Errorf("collector: storing conversion: %w", err)
	}
	c.Metrics.Conversions.Add(1)
	if c.tel.enabled {
		c.lastIngest.Store(time.Now().UnixNano())
	}
	return id, nil
}

// onePixelGIF is a transparent 1x1 GIF, the classic tracking-pixel
// response body.
var onePixelGIF = []byte{
	0x47, 0x49, 0x46, 0x38, 0x39, 0x61, 0x01, 0x00, 0x01, 0x00, 0x80, 0x00,
	0x00, 0x00, 0x00, 0x00, 0xFF, 0xFF, 0xFF, 0x21, 0xF9, 0x04, 0x01, 0x00,
	0x00, 0x00, 0x00, 0x2C, 0x00, 0x00, 0x00, 0x00, 0x01, 0x00, 0x01, 0x00,
	0x00, 0x02, 0x02, 0x44, 0x01, 0x00, 0x3B,
}

// ServeConversionPixel handles GET /conv?...: it decodes the conversion
// payload from the query string, derives the user identity from the
// connection, commits the record and answers with a 1x1 GIF so the
// embedding <img> renders cleanly. Failures still return the pixel (a
// broken image on the advertiser's page would leak the measurement).
func (c *Collector) ServeConversionPixel(w http.ResponseWriter, r *http.Request) {
	serve := func() {
		w.Header().Set("Content-Type", "image/gif")
		w.Header().Set("Cache-Control", "no-store")
		w.Write(onePixelGIF)
	}
	if r.Method != http.MethodGet {
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	conv, err := beacon.DecodeConversion(r.URL.RawQuery)
	if err != nil {
		c.reject(RejectConvDecode)
		c.cfg.Logger.Debug("collector: bad conversion pixel", "err", err, "remote", r.RemoteAddr)
		serve()
		return
	}
	ap, err := netip.ParseAddrPort(r.RemoteAddr)
	if err != nil {
		c.reject(RejectConvPeerAddr)
		serve()
		return
	}
	if _, err := c.IngestConversion(ConversionObservation{
		Conversion: conv,
		RemoteIP:   ap.Addr().Unmap(),
		UserAgent:  r.UserAgent(),
		At:         time.Now(),
	}); err != nil {
		c.cfg.Logger.Warn("collector: conversion ingest failed", "err", err)
	}
	serve()
}
