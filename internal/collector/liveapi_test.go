package collector

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"adaudit/internal/audit"
	"adaudit/internal/publisher"
	"adaudit/internal/store"
	"adaudit/internal/streamaudit"
)

// liveTestServer spins up a collector server with the streaming-audit
// endpoints mounted over a fresh store and a synthetic publisher
// universe.
func liveTestServer(t *testing.T) (*Server, *store.Store, *streamaudit.Engine, context.CancelFunc, chan struct{}) {
	t.Helper()
	c, st := testCollector(t)
	uni, err := publisher.NewUniverse(publisher.Config{Seed: 5, NumPublishers: 60})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := streamaudit.New(streamaudit.Config{
		Store: st,
		Meta:  audit.UniverseMetadata{Universe: uni},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(c, "127.0.0.1:0", WithLiveAudit(eng))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
	return srv, st, eng, cancel, done
}

func liveInsert(t *testing.T, st *store.Store, campaign, pub, user string) {
	t.Helper()
	if _, err := st.Insert(store.Impression{
		CampaignID:  campaign,
		Publisher:   pub,
		UserKey:     user,
		IPPseudonym: "ip-" + user,
		Timestamp:   time.Unix(1700000000, 0),
		Exposure:    1500 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
}

func TestLiveEndpoints(t *testing.T) {
	srv, st, eng, _, _ := liveTestServer(t)
	base := fmt.Sprintf("http://%s", srv.Addr())

	liveInsert(t, st, "Football-010", "futbolhoy483.es", "u1")
	liveInsert(t, st, "Football-010", "futbolhoy483.es", "u2")
	liveInsert(t, st, "Psoriasis-005", "healthsite1.com", "u1")
	if !eng.WaitCaughtUp(5 * time.Second) {
		t.Fatalf("engine did not catch up")
	}

	resp, err := http.Get(base + "/api/live/summary")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/api/live/summary status = %d", resp.StatusCode)
	}
	var sums []streamaudit.CampaignLive
	if err := json.NewDecoder(resp.Body).Decode(&sums); err != nil {
		t.Fatalf("decoding summary: %v", err)
	}
	if len(sums) != 2 {
		t.Fatalf("got %d campaigns, want 2", len(sums))
	}
	if sums[0].CampaignID != "Football-010" || sums[0].Impressions != 2 {
		t.Fatalf("unexpected first summary: %+v", sums[0])
	}

	resp, err = http.Get(base + "/api/live/audit/Football-010")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/api/live/audit status = %d", resp.StatusCode)
	}
	var la streamaudit.LiveAudit
	if err := json.NewDecoder(resp.Body).Decode(&la); err != nil {
		t.Fatalf("decoding live audit: %v", err)
	}
	if la.Summary.CampaignID != "Football-010" || la.Audit.ID != "Football-010" {
		t.Fatalf("unexpected live audit: %+v", la.Summary)
	}
	if la.Audit.Viewability.Impressions != 2 || la.Audit.Viewability.ViewableUB != 2 {
		t.Fatalf("unexpected viewability: %+v", la.Audit.Viewability)
	}

	for path, want := range map[string]int{
		"/api/live/audit/No-Such-Campaign": http.StatusNotFound,
		"/api/live/audit/":                 http.StatusBadRequest,
	} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("%s status = %d, want %d", path, resp.StatusCode, want)
		}
	}
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	name string
	data string
}

// readSSE parses events from an SSE stream until the channel is closed
// on EOF/error.
func readSSE(r io.Reader) <-chan sseEvent {
	ch := make(chan sseEvent, 16)
	go func() {
		defer close(ch)
		sc := bufio.NewScanner(r)
		var ev sseEvent
		for sc.Scan() {
			line := sc.Text()
			switch {
			case line == "":
				if ev.name != "" || ev.data != "" {
					ch <- ev
				}
				ev = sseEvent{}
			case strings.HasPrefix(line, "event: "):
				ev.name = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				ev.data = strings.TrimPrefix(line, "data: ")
			}
		}
	}()
	return ch
}

func waitSSE(t *testing.T, ch <-chan sseEvent, want string) sseEvent {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				t.Fatalf("SSE stream closed while waiting for %q event", want)
			}
			if ev.name == want {
				return ev
			}
		case <-deadline:
			t.Fatalf("timed out waiting for %q event", want)
		}
	}
}

func TestLiveStreamDeliversUpdates(t *testing.T) {
	srv, st, eng, _, _ := liveTestServer(t)
	base := fmt.Sprintf("http://%s", srv.Addr())

	liveInsert(t, st, "Football-010", "futbolhoy483.es", "u1")
	if !eng.WaitCaughtUp(5 * time.Second) {
		t.Fatalf("engine did not catch up")
	}

	resp, err := http.Get(base + "/api/live/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	events := readSSE(resp.Body)

	snap := waitSSE(t, events, "snapshot")
	var sums []streamaudit.CampaignLive
	if err := json.Unmarshal([]byte(snap.data), &sums); err != nil {
		t.Fatalf("snapshot payload: %v", err)
	}
	if len(sums) != 1 || sums[0].CampaignID != "Football-010" {
		t.Fatalf("unexpected snapshot: %s", snap.data)
	}

	liveInsert(t, st, "Psoriasis-005", "healthsite1.com", "u2")
	upd := waitSSE(t, events, "summary")
	if !strings.Contains(upd.data, "Psoriasis-005") {
		t.Fatalf("summary update missing new campaign: %s", upd.data)
	}
}

// TestShutdownDrainsSSESubscribers is the regression test for the
// graceful-shutdown bug: a long-lived SSE stream must be closed by the
// server's teardown (with a final shutdown event), not pin
// http.Server.Shutdown until its 5 s timeout expires.
func TestShutdownDrainsSSESubscribers(t *testing.T) {
	srv, st, eng, cancel, done := liveTestServer(t)
	base := fmt.Sprintf("http://%s", srv.Addr())

	liveInsert(t, st, "Football-010", "futbolhoy483.es", "u1")
	if !eng.WaitCaughtUp(5 * time.Second) {
		t.Fatalf("engine did not catch up")
	}

	resp, err := http.Get(base + "/api/live/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	events := readSSE(resp.Body)
	waitSSE(t, events, "snapshot")

	start := time.Now()
	cancel()
	select {
	case <-done:
	case <-time.After(4 * time.Second):
		t.Fatalf("Serve did not return; SSE stream pinned shutdown")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("shutdown took %v; SSE subscribers were not drained promptly", elapsed)
	}

	// The client saw a clean shutdown event, then EOF.
	sawShutdown := false
	for ev := range events {
		if ev.name == "shutdown" {
			sawShutdown = true
		}
	}
	if !sawShutdown {
		t.Fatalf("SSE client never received the shutdown event")
	}

	// New streams are refused once shutdown began.
	if _, err := http.Get(base + "/api/live/stream"); err == nil {
		t.Logf("post-shutdown stream unexpectedly accepted (listener race); tolerated")
	}
}
