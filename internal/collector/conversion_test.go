package collector

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/netip"
	"testing"
	"time"

	"adaudit/internal/beacon"
)

func TestIngestConversion(t *testing.T) {
	c, st := testCollector(t)
	id, err := c.IngestConversion(ConversionObservation{
		Conversion: beacon.Conversion{CampaignID: "c", Action: "purchase", ValueCents: 900},
		RemoteIP:   netip.MustParseAddr("10.0.0.7"),
		UserAgent:  "Mozilla/5.0 Chrome/49.0",
		At:         time.Date(2016, 3, 29, 15, 0, 0, 0, time.UTC),
	})
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 || st.NumConversions() != 1 {
		t.Fatalf("id=%d num=%d", id, st.NumConversions())
	}
	conv := st.Conversions("c")[0]
	if conv.ValueCents != 900 || conv.Action != "purchase" {
		t.Fatalf("conversion = %+v", conv)
	}
	// Identity matches the impression path: same IP+UA yields the same
	// user key, so exposures and conversions join.
	obs := testObservation(t, c)
	obs.Payload.UserAgent = "Mozilla/5.0 Chrome/49.0"
	impID, err := c.Ingest(obs)
	if err != nil {
		t.Fatal(err)
	}
	im, _ := st.Get(impID)
	if im.UserKey != conv.UserKey {
		t.Fatalf("user keys diverge: %q vs %q", im.UserKey, conv.UserKey)
	}
	if c.Metrics.Conversions.Load() != 1 {
		t.Fatalf("conversions metric = %d", c.Metrics.Conversions.Load())
	}
}

func TestIngestConversionValidates(t *testing.T) {
	c, _ := testCollector(t)
	_, err := c.IngestConversion(ConversionObservation{
		Conversion: beacon.Conversion{},
		RemoteIP:   netip.MustParseAddr("10.0.0.7"),
		At:         time.Now(),
	})
	if err == nil {
		t.Fatal("invalid conversion accepted")
	}
}

func TestConversionPixelEndToEnd(t *testing.T) {
	c, st := testCollector(t)
	srv, err := NewServer(c, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go srv.Serve(ctx)

	conv := beacon.Conversion{CampaignID: "spring", Action: "purchase", ValueCents: 12999}
	url := fmt.Sprintf("http://%s/conv?%s", srv.Addr(), conv.EncodeQuery())
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	req.Header.Set("User-Agent", "Mozilla/5.0 Chrome/49.0")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if resp.Header.Get("Content-Type") != "image/gif" || len(body) == 0 {
		t.Fatalf("not a pixel response: %s %d bytes", resp.Header.Get("Content-Type"), len(body))
	}
	if st.NumConversions() != 1 {
		t.Fatalf("stored %d conversions", st.NumConversions())
	}
	got := st.Conversions("spring")[0]
	if got.ValueCents != 12999 || got.UserKey == "" {
		t.Fatalf("conversion = %+v", got)
	}
}

func TestConversionPixelToleratesGarbage(t *testing.T) {
	c, st := testCollector(t)
	srv, err := NewServer(c, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go srv.Serve(ctx)

	// Garbage query: still answers with the pixel (broken images on
	// the advertiser's page would leak the measurement), stores nothing.
	resp, err := http.Get(fmt.Sprintf("http://%s/conv?nonsense=1", srv.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if st.NumConversions() != 0 {
		t.Fatal("garbage conversion stored")
	}
	if c.Metrics.Rejected.Load() == 0 {
		t.Fatal("rejection not counted")
	}

	// POST is refused outright.
	resp, err = http.Post(fmt.Sprintf("http://%s/conv", srv.Addr()), "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status = %d", resp.StatusCode)
	}
}
