package collector

import (
	"context"
	"net/http"

	"adaudit/internal/wsproto"
)

// beaconDialer sends raw WebSocket text messages to the collector,
// bypassing the beacon package's payload validation — for exercising the
// server's rejection paths.
type beaconDialer struct {
	url string
}

func (d *beaconDialer) sendRaw(ctx context.Context, msg string) error {
	dial := &wsproto.Dialer{}
	conn, _, err := dial.Dial(ctx, d.url)
	if err != nil {
		return err
	}
	defer conn.Close(wsproto.CloseNormal, "")
	return conn.WriteText(msg)
}

func httpGet(ctx context.Context, url string) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, err
	}
	resp.Body.Close()
	return resp.StatusCode, nil
}
