package collector

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"adaudit/internal/beacon"
	"adaudit/internal/wsproto"
)

// newHardenedServer boots a full Server around a testCollector with the
// given config tweaks applied.
func newHardenedServer(t *testing.T, tweak func(*Config)) (*Server, *Collector) {
	t.Helper()
	c, _ := testCollector(t)
	if tweak != nil {
		cfg := c.cfg
		tweak(&cfg)
		c.cfg = cfg
	}
	srv, err := NewServer(c, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("server did not shut down")
		}
	})
	return srv, c
}

func TestSessionCapShedsWith503(t *testing.T) {
	srv, c := newHardenedServer(t, func(cfg *Config) { cfg.MaxSessions = 2 })

	// Fill the cap with two held-open sessions.
	cl := &beacon.Client{CollectorURL: srv.BeaconURL()}
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		p := samplePayload()
		p.CreativeID = fmt.Sprintf("cr-%d", i)
		sess, err := cl.Open(ctx, p)
		if err != nil {
			t.Fatal(err)
		}
		defer sess.Close()
	}
	waitFor(t, func() bool { return c.SessionCount() == 2 })

	// The third beacon is shed before the upgrade.
	httpURL := "http" + strings.TrimPrefix(srv.BeaconURL(), "ws")
	resp, err := http.Get(httpURL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-cap request got %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After hint")
	}
	if got := c.tel.sheds.Load(); got != 1 {
		t.Fatalf("sheds counter = %d, want 1", got)
	}
	// A WebSocket attempt is refused the same way and surfaces the 503
	// to the dialer.
	if _, err := cl.Open(ctx, samplePayload()); err == nil {
		t.Fatal("over-cap Open succeeded")
	} else if !strings.Contains(err.Error(), "503") {
		t.Fatalf("over-cap Open failed with %v, want a 503 rejection", err)
	}
}

func TestSessionPanicIsRecoveredAndIsolated(t *testing.T) {
	srv, c := newHardenedServer(t, nil)
	testSessionHook = func(p beacon.Payload) {
		if p.CreativeID == "boom" {
			panic("injected session failure")
		}
	}
	defer func() { testSessionHook = nil }()

	cl := &beacon.Client{CollectorURL: srv.BeaconURL()}
	ctx := context.Background()

	// A healthy session opened before the panic...
	healthy, err := cl.Open(ctx, samplePayload())
	if err != nil {
		t.Fatal(err)
	}

	// ...survives a sibling session blowing up.
	bad := samplePayload()
	bad.CreativeID = "boom"
	sess, err := cl.Open(ctx, bad)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return c.tel.panics.Load() == 1 })
	_ = sess.Close()

	select {
	case <-healthy.Done():
		t.Fatal("healthy session died with the panicked one")
	default:
	}
	// The panicked session was untracked; the healthy one still is.
	waitFor(t, func() bool { return c.SessionCount() == 1 })

	// The collector still ingests normally after the panic.
	if err := healthy.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return c.Metrics.Ingested.Load() == 1 })
}

func TestIngestDedupsByNonce(t *testing.T) {
	c, st := testCollector(t)
	obs := testObservation(t, c)
	obs.Payload.Nonce = "imp-nonce-1"
	id, err := c.Ingest(obs)
	if err != nil {
		t.Fatal(err)
	}

	// The beacon reconnects: same nonce, the second connection's share
	// of the exposure and fresh interactions.
	resumed := obs
	resumed.Payload.Events = []beacon.Event{{Kind: beacon.EventClick, At: time.Second}}
	resumed.Exposure = 1500 * time.Millisecond
	id2, err := c.Ingest(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if id2 != id {
		t.Fatalf("resumed ingest returned id %d, want original %d", id2, id)
	}
	if st.Len() != 1 {
		t.Fatalf("store holds %d records, want 1 (deduplicated)", st.Len())
	}
	im, _ := st.Get(id)
	if im.Exposure != 4000*time.Millisecond {
		t.Fatalf("merged exposure = %v, want 4s (2.5s + 1.5s)", im.Exposure)
	}
	if im.MouseMoves != 2 || im.Clicks != 2 {
		t.Fatalf("merged interactions = %d moves, %d clicks; want 2/2", im.MouseMoves, im.Clicks)
	}
	if got := c.tel.dedupHits.Load(); got != 1 {
		t.Fatalf("dedup hits = %d, want 1", got)
	}
	if got := c.Metrics.Ingested.Load(); got != 1 {
		t.Fatalf("ingested = %d, want 1 (merge is not a new impression)", got)
	}

	// A different nonce is a different impression.
	other := obs
	other.Payload.Nonce = "imp-nonce-2"
	if _, err := c.Ingest(other); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 2 {
		t.Fatalf("store holds %d records, want 2", st.Len())
	}
}

func TestNonceSeededFromRecoveredStore(t *testing.T) {
	// A collector built over a store that already holds a nonced record
	// (recovered from snapshot + WAL after a restart) must merge a
	// late-retrying beacon instead of double-counting it.
	c, st := testCollector(t)
	obs := testObservation(t, c)
	obs.Payload.Nonce = "pre-restart-nonce"
	id, err := c.Ingest(obs)
	if err != nil {
		t.Fatal(err)
	}

	c2, err := New(Config{
		Store:      st,
		Anonymizer: c.cfg.Anonymizer,
	})
	if err != nil {
		t.Fatal(err)
	}
	id2, err := c2.Ingest(obs)
	if err != nil {
		t.Fatal(err)
	}
	if id2 != id || st.Len() != 1 {
		t.Fatalf("post-restart ingest: id=%d len=%d, want id=%d len=1", id2, st.Len(), id)
	}
}

func TestNonceCacheRotatesGenerations(t *testing.T) {
	c, _ := testCollector(t)
	for i := 0; i < nonceCacheLimit+10; i++ {
		c.nonceRecord(fmt.Sprintf("n-%d", i), int64(i+1))
	}
	c.nonceMu.Lock()
	cur, prev := len(c.nonceCur), len(c.noncePrev)
	c.nonceMu.Unlock()
	if prev != nonceCacheLimit || cur != 10 {
		t.Fatalf("generations cur=%d prev=%d, want 10/%d", cur, prev, nonceCacheLimit)
	}
	// Entries in BOTH generations resolve.
	if _, ok := c.nonceLookup("n-0"); !ok {
		t.Fatal("previous-generation nonce forgotten")
	}
	if _, ok := c.nonceLookup(fmt.Sprintf("n-%d", nonceCacheLimit+5)); !ok {
		t.Fatal("current-generation nonce missing")
	}
}

func TestAbnormalCloseStillCommitsPartialExposure(t *testing.T) {
	srv, c := newHardenedServer(t, nil)

	// Dial raw so the transport can be killed with no close frame — a
	// crashed browser, a NAT binding expiring.
	d := &wsproto.Dialer{}
	conn, _, err := d.Dial(context.Background(), srv.BeaconURL())
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.WriteText(samplePayload().Encode()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return c.SessionCount() == 1 })
	_ = conn.NetConn().Close()
	waitFor(t, func() bool { return c.Metrics.Ingested.Load() == 1 })
	if got := c.tel.partialCommits.Load(); got != 1 {
		t.Fatalf("partial commits = %d, want 1", got)
	}
	// A clean close is NOT a partial commit.
	cl := &beacon.Client{CollectorURL: srv.BeaconURL()}
	if err := cl.Report(context.Background(), samplePayload(), 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return c.Metrics.Ingested.Load() == 2 })
	if got := c.tel.partialCommits.Load(); got != 1 {
		t.Fatalf("partial commits after clean close = %d, want still 1", got)
	}
}

// waitFor polls cond for up to 5 s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition never became true")
}

func samplePayload() beacon.Payload {
	return beacon.Payload{
		CampaignID: "Research-010",
		CreativeID: "cr1",
		PageURL:    "http://www.ciencia123.es/articulo",
		UserAgent:  "Mozilla/5.0 Chrome/49.0",
	}
}
