package collector

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"strings"
	"testing"
	"time"

	"adaudit/internal/beacon"
	"adaudit/internal/ipmeta"
	"adaudit/internal/store"
)

// FuzzQueryAPI throws arbitrary request targets at the advertiser-facing
// JSON endpoints: whatever the path and query contain, the handlers
// must not panic, must answer a recognised status, and every 200 must
// carry well-formed JSON.
func FuzzQueryAPI(f *testing.F) {
	st := store.New()
	c, err := New(Config{
		Store:      st,
		Anonymizer: ipmeta.NewAnonymizer([]byte("fuzz")),
	})
	if err != nil {
		f.Fatal(err)
	}
	base := time.Date(2016, 3, 29, 12, 0, 0, 0, time.UTC)
	for i := 0; i < 12; i++ {
		_, err := c.Ingest(Observation{
			Payload: beacon.Payload{
				CampaignID: fmt.Sprintf("camp-%d", i%2),
				CreativeID: "cr",
				PageURL:    fmt.Sprintf("http://pub%d.es/p", i%3),
				UserAgent:  "UA",
			},
			RemoteIP:    netip.AddrFrom4([4]byte{10, 0, 0, byte(i + 1)}),
			ConnectedAt: base.Add(time.Duration(i) * time.Minute),
			Exposure:    time.Duration(i) * time.Second,
		})
		if err != nil {
			f.Fatal(err)
		}
	}
	mux := http.NewServeMux()
	(&queryAPI{st: st}).register(mux)

	f.Add("/api/campaigns")
	f.Add("/api/summary?campaign=camp-0")
	f.Add("/api/summary?campaign=")
	f.Add("/api/publishers?campaign=camp-1&limit=2")
	f.Add("/api/publishers?campaign=camp-0&limit=-1")
	f.Add("/api/timeseries?campaign=camp-0&bucket=1h")
	f.Add("/api/timeseries?campaign=camp-0&bucket=%zz")
	f.Add("/api/summary?campaign=%00%ff")
	f.Add("/api/campaigns?x=" + strings.Repeat("y", 512))

	f.Fuzz(func(t *testing.T, target string) {
		req, err := http.NewRequest(http.MethodGet, "http://collector"+target, nil)
		if err != nil {
			return // not a parseable target; nothing reaches the handler
		}
		rw := httptest.NewRecorder()
		mux.ServeHTTP(rw, req)
		resp := rw.Result()
		body, _ := io.ReadAll(resp.Body)
		switch resp.StatusCode {
		case http.StatusOK:
			if !json.Valid(body) {
				t.Fatalf("200 with invalid JSON for %q: %q", target, body)
			}
		case http.StatusBadRequest, http.StatusNotFound,
			http.StatusMethodNotAllowed, http.StatusMovedPermanently:
			// the recognised refusals (301 is ServeMux path cleaning)
		default:
			t.Fatalf("unexpected status %d for %q", resp.StatusCode, target)
		}
	})
}
