package collector

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"adaudit/internal/beacon"
	"adaudit/internal/ipmeta"
	"adaudit/internal/simclock"
	"adaudit/internal/store"
	"adaudit/internal/wsproto"
)

// TestVirtualClockDrivesSessionTiming proves the satellite fix: the
// session-timing paths (exposure measurement, keepalive scheduling) run
// on the configured Clock, not the wall clock. A virtual clock anchored
// at the real present keeps transport deadlines in the real future
// while letting the test advance measured time deterministically: seven
// virtual minutes of exposure are measured in milliseconds of wall
// time, and the keepalive ticker fires exactly once per virtual
// interval.
func TestVirtualClockDrivesSessionTiming(t *testing.T) {
	vstart := time.Now()
	clk := simclock.NewVirtual(vstart)
	st := store.New()
	c, err := New(Config{
		Store:             st,
		Anonymizer:        ipmeta.NewAnonymizer([]byte("vclock")),
		KeepAliveInterval: time.Minute,
		Clock:             clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(c, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go srv.Serve(ctx)

	d := &wsproto.Dialer{}
	conn, _, err := d.Dial(ctx, srv.BeaconURL())
	if err != nil {
		t.Fatal(err)
	}
	var pings atomic.Int64
	conn.SetPingHandler(func([]byte) { pings.Add(1) })
	// Service control frames like a browser: pings get their automatic
	// pongs inside ReadMessage.
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			if _, _, err := conn.ReadMessage(); err != nil {
				return
			}
		}
	}()

	payload := beacon.Payload{
		CampaignID: "vclock", CreativeID: "cr",
		PageURL: "http://pub.es/", UserAgent: "UA",
	}
	if err := conn.WriteText(payload.Encode()); err != nil {
		t.Fatal(err)
	}
	// One event update round-trips through the session loop, proving
	// runSession has taken its connectedAt reading (and started the
	// keepalive ticker) before the clock moves.
	if err := conn.WriteText(beacon.EncodeEventUpdate(beacon.Event{
		Kind: beacon.EventClick, At: time.Second,
	})); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return c.Metrics.Events.Load() == 1 })

	// Advance one keepalive interval at a time, waiting for the ping to
	// land before the next step: the virtual ticker channel coalesces
	// like a real one, so a single 7-minute jump would fold seven due
	// ticks into however many the keepalive goroutine drains.
	for i := 1; i <= 7; i++ {
		clk.Advance(time.Minute)
		want := int64(i)
		waitFor(t, func() bool { return pings.Load() >= want })
	}
	if got := pings.Load(); got != 7 {
		t.Fatalf("pings = %d, want 7 (one per virtual minute)", got)
	}

	if err := conn.Close(wsproto.CloseNormal, "unload"); err != nil {
		t.Fatal(err)
	}
	<-readerDone
	waitFor(t, func() bool { return st.Len() == 1 })
	im, _ := st.Get(1)
	if im.Exposure != 7*time.Minute {
		t.Fatalf("exposure = %v, want exactly 7m of virtual time", im.Exposure)
	}
	if !im.Timestamp.Equal(vstart) {
		t.Fatalf("timestamp = %v, want the virtual connect instant %v", im.Timestamp, vstart)
	}
}
