package collector

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"
)

// Server runs a Collector behind an HTTP listener with an operational
// sidecar: the beacon endpoint, a health endpoint and a metrics
// endpoint. It owns listener lifecycle and graceful shutdown, so
// cmd/auditd and the examples share one hardened serving path.
type Server struct {
	collector *Collector
	httpSrv   *http.Server
	ln        net.Listener
}

// NewServer wraps c in a Server listening on addr (host:port; port 0
// picks a free port).
func NewServer(c *Collector, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("collector: listening on %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.Handle("/beacon", c)
	mux.HandleFunc("/conv", c.ServeConversionPixel)
	(&queryAPI{st: c.cfg.Store}).register(mux)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metricsz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "connections %d\n", c.Metrics.Connections.Load())
		fmt.Fprintf(w, "ingested %d\n", c.Metrics.Ingested.Load())
		fmt.Fprintf(w, "rejected %d\n", c.Metrics.Rejected.Load())
		fmt.Fprintf(w, "events %d\n", c.Metrics.Events.Load())
		fmt.Fprintf(w, "conversions %d\n", c.Metrics.Conversions.Load())
	})
	return &Server{
		collector: c,
		httpSrv: &http.Server{
			Handler:           mux,
			ReadHeaderTimeout: 10 * time.Second,
		},
		ln: ln,
	}, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// BeaconURL returns the ws:// URL beacons should dial.
func (s *Server) BeaconURL() string {
	return fmt.Sprintf("ws://%s/beacon", s.ln.Addr().String())
}

// Serve blocks serving requests until ctx is cancelled, then shuts the
// listener down gracefully (in-flight WebSocket sessions are summarily
// closed: their sockets die with the process, exactly like a real
// collector restart — the paper's §3.1 loss model).
func (s *Server) Serve(ctx context.Context) error {
	errCh := make(chan error, 1)
	go func() {
		errCh <- s.httpSrv.Serve(s.ln)
	}()
	select {
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.httpSrv.Shutdown(shutdownCtx)
		_ = s.httpSrv.Close()
		<-errCh
		return nil
	case err := <-errCh:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return fmt.Errorf("collector: serving: %w", err)
	}
}

// Close tears the server down immediately.
func (s *Server) Close() error { return s.httpSrv.Close() }
