package collector

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"adaudit/internal/streamaudit"
	"adaudit/internal/trace"
)

// serverOptions collects the tunables NewServer accepts as options, so
// existing NewServer(c, addr) call sites keep working unchanged.
type serverOptions struct {
	shutdownGrace time.Duration
	maxIngestAge  time.Duration
	maxWALLag     time.Duration
	maxStaleness  time.Duration
	checks        map[string]func() error
	listener      net.Listener
	liveEngine    *streamaudit.Engine
}

// ServerOption customises a Server.
type ServerOption func(*serverOptions)

// WithShutdownGrace bounds how long Serve waits for in-flight beacon
// sessions to commit their impressions on shutdown (default 5 s).
func WithShutdownGrace(d time.Duration) ServerOption {
	return func(o *serverOptions) { o.shutdownGrace = d }
}

// WithMaxIngestAge makes /healthz report unhealthy (503) when no record
// has been committed for longer than d. Zero (the default) disables the
// check — correct for a collector that legitimately idles.
func WithMaxIngestAge(d time.Duration) ServerOption {
	return func(o *serverOptions) { o.maxIngestAge = d }
}

// WithMaxWALSyncLag makes /healthz report unhealthy when a journal
// entry has waited longer than d for its fsync (SyncInterval WALs
// only; the other policies never go dirty). The default is 30 s —
// generous against any sane sync interval, tight enough to catch a
// wedged disk. d <= 0 disables the check; the measured lag is always
// surfaced in the response either way.
func WithMaxWALSyncLag(d time.Duration) ServerOption {
	return func(o *serverOptions) { o.maxWALLag = d }
}

// WithAuditStaleness makes /healthz report unhealthy when the live
// streaming-audit engine (WithLiveAudit) has fallen more than d of
// wall time behind the change feed — the pipeline-freshness SLO as a
// health check. The default is 30 s; d <= 0 disables the check. No-op
// without a live engine.
func WithAuditStaleness(d time.Duration) ServerOption {
	return func(o *serverOptions) { o.maxStaleness = d }
}

// WithHealthCheck adds a named check to /healthz; a non-nil error marks
// the server unhealthy and the message appears in the response. Used
// e.g. by cmd/auditd to verify the snapshot directory stays writable.
func WithHealthCheck(name string, fn func() error) ServerOption {
	return func(o *serverOptions) {
		if o.checks == nil {
			o.checks = map[string]func() error{}
		}
		o.checks[name] = fn
	}
}

// Server runs a Collector behind an HTTP listener with an operational
// sidecar: the beacon endpoint, the advertiser query API, and the
// telemetry surface — GET /metrics (Prometheus text), GET /api/metrics
// (JSON), GET /healthz (uptime, last-ingest age, custom checks). It
// owns listener lifecycle and graceful shutdown — in-flight beacon
// sessions are drained (bounded by the shutdown grace) so their
// impressions commit instead of dying with the process — so cmd/auditd
// and the examples share one hardened serving path.
type Server struct {
	collector *Collector
	httpSrv   *http.Server
	ln        net.Listener
	opts      serverOptions
	start     time.Time
	live      *liveAPI

	// Ingest-age probe: the collector timestamps only sampled ingests
	// (its hot path avoids clock reads), so between samples the server
	// detects activity by watching the ingest counters move between
	// health/metrics reads.
	probeMu         sync.Mutex
	probeCount      int64
	probeLastChange time.Time

	// Feed-drop probe: the drop counter is monotonic, so /healthz flags
	// unhealthy only when drops advanced since the previous probe —
	// a one-scrape signal that live consumers are resyncing right now,
	// not a permanent stain from one historical overflow.
	dropMu     sync.Mutex
	probeDrops int64
	probedOnce bool
}

// HealthStatus is the /healthz response body.
type HealthStatus struct {
	Status string `json:"status"` // "ok" or "unhealthy"
	// UptimeSeconds is time since the server started.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// LastIngestAgeSeconds is time since the last committed record;
	// counted from server start while nothing has been ingested yet.
	// -1 when the collector runs without telemetry.
	LastIngestAgeSeconds float64 `json:"last_ingest_age_seconds"`
	// StoreRecords is the impression count, proving the store readable.
	StoreRecords int `json:"store_records"`
	// SessionsActive is the number of live beacon sessions.
	SessionsActive int `json:"sessions_active"`
	// FeedDrops is the cumulative count of change-feed subscribers
	// evicted for falling behind.
	FeedDrops int64 `json:"feed_drops"`
	// WALSyncLagSeconds is how long the oldest unsynced journal entry
	// has waited for its fsync (0 when clean or no WAL attached).
	WALSyncLagSeconds float64 `json:"wal_sync_lag_seconds"`
	// AuditStalenessSeconds is how far the live streaming-audit engine
	// lags the change feed in wall time; -1 without a live engine.
	AuditStalenessSeconds float64 `json:"audit_staleness_seconds"`
	// Checks maps check name to "ok" or the failure message.
	Checks map[string]string `json:"checks,omitempty"`
}

// WithLiveAudit mounts the streaming-audit endpoints (/api/live/summary,
// /api/live/audit/{campaign}, /api/live/stream) backed by e, and makes
// Serve own the engine's consumption loop: Run starts with the server
// and is cancelled only after the beacon drain, so the final report
// reflects every impression that committed before shutdown.
func WithLiveAudit(e *streamaudit.Engine) ServerOption {
	return func(o *serverOptions) { o.liveEngine = e }
}

// WithListener serves on ln instead of opening a fresh TCP listener
// (addr is then ignored) — the hook fault-injection tests use to put an
// impaired accept path (internal/faultnet.Plan.Listen) under the
// collector.
func WithListener(ln net.Listener) ServerOption {
	return func(o *serverOptions) { o.listener = ln }
}

// NewServer wraps c in a Server listening on addr (host:port; port 0
// picks a free port).
func NewServer(c *Collector, addr string, opts ...ServerOption) (*Server, error) {
	o := serverOptions{
		shutdownGrace: 5 * time.Second,
		maxWALLag:     30 * time.Second,
		maxStaleness:  30 * time.Second,
	}
	for _, opt := range opts {
		opt(&o)
	}
	ln := o.listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", addr)
		if err != nil {
			return nil, fmt.Errorf("collector: listening on %s: %w", addr, err)
		}
	}
	s := &Server{
		collector: c,
		ln:        ln,
		opts:      o,
		start:     time.Now(),
	}
	mux := http.NewServeMux()
	mux.Handle("/beacon", c)
	mux.HandleFunc("/trunk", c.ServeTrunk)
	mux.HandleFunc("/conv", c.ServeConversionPixel)
	(&queryAPI{st: c.cfg.Store}).register(mux)
	if o.liveEngine != nil {
		s.live = newLiveAPI(o.liveEngine)
		s.live.register(mux)
	}
	mux.HandleFunc("/healthz", s.serveHealthz)
	if t := c.Tracer(); t != nil {
		if rec := t.Recorder(); rec != nil {
			trace.RegisterAPI(mux, rec)
		}
	}
	if reg := c.Telemetry(); reg != nil {
		reg.GaugeFunc("adaudit_collector_uptime_seconds",
			"Time since the collector server started.", nil,
			func() float64 { return time.Since(s.start).Seconds() })
		reg.GaugeFunc("adaudit_collector_last_ingest_age_seconds",
			"Time since the last committed record (since start while idle).", nil,
			func() float64 { return s.lastIngestAge().Seconds() })
		mux.Handle("/metrics", reg.Handler())
		mux.Handle("/api/metrics", reg.JSONHandler())
	}
	// Legacy plain-counter view, kept for existing scrapers/scripts.
	mux.HandleFunc("/metricsz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "connections %d\n", c.Metrics.Connections.Load())
		fmt.Fprintf(w, "ingested %d\n", c.Metrics.Ingested.Load())
		fmt.Fprintf(w, "rejected %d\n", c.Metrics.Rejected.Load())
		fmt.Fprintf(w, "events %d\n", c.Metrics.Events.Load())
		fmt.Fprintf(w, "conversions %d\n", c.Metrics.Conversions.Load())
	})
	s.httpSrv = &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	return s, nil
}

// lastIngestAge measures idle time: since the last committed record, or
// since server start while nothing has been ingested yet. The estimate
// combines the collector's sampled ingest timestamps with a
// counter-change probe, so its error is bounded by the probe-read
// interval (the health/metrics scrape cadence), not the sampling rate.
func (s *Server) lastIngestAge() time.Duration {
	now := time.Now()
	s.probeMu.Lock()
	count := s.collector.Metrics.Ingested.Load() + s.collector.Metrics.Conversions.Load()
	if count != s.probeCount {
		s.probeCount = count
		s.probeLastChange = now
	}
	probed := s.probeLastChange
	s.probeMu.Unlock()
	last := s.collector.LastIngest()
	if probed.After(last) {
		last = probed
	}
	if last.IsZero() {
		last = s.start
	}
	return now.Sub(last)
}

// feedDropsSince returns how many change-feed subscribers were
// dropped since the previous health probe. The first probe reports 0:
// drops that predate any observation window belong to no probe.
func (s *Server) feedDropsSince(total int64) int64 {
	s.dropMu.Lock()
	defer s.dropMu.Unlock()
	fresh := total - s.probeDrops
	if !s.probedOnce {
		s.probedOnce = true
		fresh = 0
	}
	s.probeDrops = total
	if fresh < 0 {
		fresh = 0
	}
	return fresh
}

// failCheck records a failed built-in health check on st.
func (s *Server) failCheck(st *HealthStatus, name, msg string) {
	if st.Checks == nil {
		st.Checks = map[string]string{}
	}
	st.Checks[name] = msg
	st.Status = "unhealthy"
}

// okCheck records a passing built-in health check on st.
func (s *Server) okCheck(st *HealthStatus, name string) {
	if st.Checks == nil {
		st.Checks = map[string]string{}
	}
	st.Checks[name] = "ok"
}

func (s *Server) serveHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	st := HealthStatus{
		Status:                "ok",
		UptimeSeconds:         time.Since(s.start).Seconds(),
		StoreRecords:          s.collector.cfg.Store.Len(),
		SessionsActive:        s.collector.SessionCount(),
		AuditStalenessSeconds: -1,
	}
	if s.collector.Telemetry() != nil {
		age := s.lastIngestAge()
		st.LastIngestAgeSeconds = age.Seconds()
		if s.opts.maxIngestAge > 0 && age > s.opts.maxIngestAge {
			st.Status = "unhealthy"
		}
	} else {
		st.LastIngestAgeSeconds = -1
	}
	st.FeedDrops = s.collector.cfg.Store.FeedDrops()
	if fresh := s.feedDropsSince(st.FeedDrops); fresh > 0 {
		s.failCheck(&st, "feed_subscribers",
			fmt.Sprintf("%d change-feed subscriber(s) dropped since last probe (consumers resyncing)", fresh))
	} else {
		s.okCheck(&st, "feed_subscribers")
	}
	walLag := s.collector.cfg.Store.WALDirtyDuration()
	st.WALSyncLagSeconds = walLag.Seconds()
	if s.opts.maxWALLag > 0 && walLag > s.opts.maxWALLag {
		s.failCheck(&st, "wal_sync",
			fmt.Sprintf("oldest unsynced journal entry is %.1fs old (max %v)", walLag.Seconds(), s.opts.maxWALLag))
	} else {
		s.okCheck(&st, "wal_sync")
	}
	if s.opts.liveEngine != nil {
		stale := s.opts.liveEngine.Staleness()
		st.AuditStalenessSeconds = stale.Seconds()
		if s.opts.maxStaleness > 0 && stale > s.opts.maxStaleness {
			s.failCheck(&st, "audit_freshness",
				fmt.Sprintf("streaming audit is %.1fs behind the change feed (max %v)", stale.Seconds(), s.opts.maxStaleness))
		} else {
			s.okCheck(&st, "audit_freshness")
		}
	}
	for name, fn := range s.opts.checks {
		if st.Checks == nil {
			st.Checks = map[string]string{}
		}
		if err := fn(); err != nil {
			st.Checks[name] = err.Error()
			st.Status = "unhealthy"
		} else {
			st.Checks[name] = "ok"
		}
	}
	w.Header().Set("Content-Type", "application/json")
	if st.Status != "ok" {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(st)
}

// Addr returns the bound listen address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// BeaconURL returns the ws:// URL beacons should dial.
func (s *Server) BeaconURL() string {
	return fmt.Sprintf("ws://%s/beacon", s.ln.Addr().String())
}

// Serve blocks serving requests until ctx is cancelled, then shuts down
// gracefully: live SSE subscribers are closed first (a long-lived
// stream would otherwise pin http.Server.Shutdown until its timeout),
// then the listener closes, in-flight beacon sessions are asked to
// commit and drained for up to the shutdown grace (sessions still open
// after that are counted as dropped — the paper's §3.1 loss model), and
// finally the streaming-audit engine is stopped, after the drain, so it
// applies every impression that committed before teardown.
func (s *Server) Serve(ctx context.Context) error {
	// Flight-recorder janitor: a trace is live for its whole beacon
	// session, so only ages beyond MaxExposure (plus slack) indicate a
	// leg that died without a commit — truncate those as "stale" so the
	// active map stays bounded and orphan spans become visible instead
	// of lingering forever.
	if t := s.collector.Tracer(); t != nil {
		if rec := t.Recorder(); rec != nil {
			staleAfter := s.collector.cfg.MaxExposure + 5*time.Minute
			stop := make(chan struct{})
			defer close(stop)
			go func() {
				tick := time.NewTicker(30 * time.Second)
				defer tick.Stop()
				for {
					select {
					case <-stop:
						return
					case <-tick.C:
						rec.SweepStale(staleAfter)
					}
				}
			}()
		}
	}
	var engineDone chan struct{}
	var engineCancel context.CancelFunc
	if s.live != nil {
		var engineCtx context.Context
		engineCtx, engineCancel = context.WithCancel(context.Background())
		engineDone = make(chan struct{})
		go func() {
			defer close(engineDone)
			s.live.engine.Run(engineCtx)
		}()
	}
	stopEngine := func() {
		if engineCancel != nil {
			engineCancel()
			<-engineDone
		}
	}
	errCh := make(chan error, 1)
	go func() {
		errCh <- s.httpSrv.Serve(s.ln)
	}()
	select {
	case <-ctx.Done():
		if s.live != nil {
			s.live.shutdown()
		}
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.httpSrv.Shutdown(shutdownCtx)
		s.collector.Drain(s.opts.shutdownGrace)
		_ = s.httpSrv.Close()
		<-errCh
		stopEngine()
		return nil
	case err := <-errCh:
		if s.live != nil {
			s.live.shutdown()
		}
		stopEngine()
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return fmt.Errorf("collector: serving: %w", err)
	}
}

// Close tears the server down immediately.
func (s *Server) Close() error { return s.httpSrv.Close() }
