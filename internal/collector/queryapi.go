package collector

import (
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
	"time"

	"adaudit/internal/store"
)

// queryAPI serves the advertiser-facing JSON endpoints of the collector
// — the live view an auditing dashboard polls while campaigns run:
//
//	GET /api/campaigns                    — campaign list with counters
//	GET /api/summary?campaign=ID          — one campaign's live summary
//	GET /api/publishers?campaign=ID&limit=N — top delivering publishers
//
// All data comes from the impression store; vendor-independent by
// construction, exactly as the paper's methodology demands.
type queryAPI struct {
	st *store.Store
}

// CampaignSummary is the /api/summary response.
type CampaignSummary struct {
	CampaignID  string `json:"campaign_id"`
	Impressions int    `json:"impressions"`
	Publishers  int    `json:"publishers"`
	Users       int    `json:"users"`
	Clicks      int    `json:"clicks"`
	Conversions int    `json:"conversions"`
	// ViewableUpperBound is the fraction exposed >= 1 s.
	ViewableUpperBound float64 `json:"viewable_upper_bound"`
	// DataCenterShare is the fraction of impressions from DC addresses.
	DataCenterShare float64 `json:"data_center_share"`
	// FirstSeen/LastSeen bound the observed delivery window.
	FirstSeen time.Time `json:"first_seen"`
	LastSeen  time.Time `json:"last_seen"`
}

// CampaignListEntry is one row of the /api/campaigns response.
type CampaignListEntry struct {
	CampaignID  string `json:"campaign_id"`
	Impressions int    `json:"impressions"`
}

// PublisherRow is one row of the /api/publishers response.
type PublisherRow struct {
	Publisher   string `json:"publisher"`
	Impressions int    `json:"impressions"`
	Clicks      int    `json:"clicks"`
}

// TimeseriesPoint is one bucket of the /api/timeseries response.
type TimeseriesPoint struct {
	Start       time.Time `json:"start"`
	Impressions int       `json:"impressions"`
	Clicks      int       `json:"clicks"`
	DataCenter  int       `json:"data_center"`
}

func (q *queryAPI) register(mux *http.ServeMux) {
	mux.HandleFunc("/api/campaigns", q.handleCampaigns)
	mux.HandleFunc("/api/summary", q.handleSummary)
	mux.HandleFunc("/api/publishers", q.handlePublishers)
	mux.HandleFunc("/api/timeseries", q.handleTimeseries)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (q *queryAPI) handleCampaigns(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	out := []CampaignListEntry{}
	for _, id := range q.st.Campaigns() {
		out = append(out, CampaignListEntry{
			CampaignID:  id,
			Impressions: len(q.st.ByCampaign(id)),
		})
	}
	writeJSON(w, out)
}

func (q *queryAPI) handleSummary(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	id := r.URL.Query().Get("campaign")
	if id == "" {
		http.Error(w, "missing campaign parameter", http.StatusBadRequest)
		return
	}
	recs := q.st.ByCampaign(id)
	if len(recs) == 0 {
		http.Error(w, "unknown campaign", http.StatusNotFound)
		return
	}
	sum := CampaignSummary{CampaignID: id, Impressions: len(recs)}
	pubs := map[string]struct{}{}
	users := map[string]struct{}{}
	viewable, dc := 0, 0
	for i := range recs {
		im := &recs[i]
		pubs[im.Publisher] = struct{}{}
		users[im.UserKey] = struct{}{}
		sum.Clicks += im.Clicks
		if im.Exposure >= time.Second {
			viewable++
		}
		switch im.DataCenter {
		case "", "not-data-center", "vpn-exception":
		default:
			dc++
		}
		if sum.FirstSeen.IsZero() || im.Timestamp.Before(sum.FirstSeen) {
			sum.FirstSeen = im.Timestamp
		}
		if im.Timestamp.After(sum.LastSeen) {
			sum.LastSeen = im.Timestamp
		}
	}
	sum.Publishers = len(pubs)
	sum.Users = len(users)
	sum.Conversions = len(q.st.Conversions(id))
	sum.ViewableUpperBound = float64(viewable) / float64(len(recs))
	sum.DataCenterShare = float64(dc) / float64(len(recs))
	writeJSON(w, sum)
}

// handleTimeseries buckets a campaign's impressions over time —
// GET /api/timeseries?campaign=ID&bucket=1h — the delivery-pacing view
// a dashboard plots.
func (q *queryAPI) handleTimeseries(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	id := r.URL.Query().Get("campaign")
	if id == "" {
		http.Error(w, "missing campaign parameter", http.StatusBadRequest)
		return
	}
	bucket := time.Hour
	if raw := r.URL.Query().Get("bucket"); raw != "" {
		d, err := time.ParseDuration(raw)
		if err != nil || d < time.Minute || d > 7*24*time.Hour {
			http.Error(w, "bad bucket duration", http.StatusBadRequest)
			return
		}
		bucket = d
	}
	recs := q.st.ByCampaign(id)
	if len(recs) == 0 {
		http.Error(w, "unknown campaign", http.StatusNotFound)
		return
	}
	byBucket := map[time.Time]*TimeseriesPoint{}
	for i := range recs {
		im := &recs[i]
		start := im.Timestamp.Truncate(bucket)
		p := byBucket[start]
		if p == nil {
			p = &TimeseriesPoint{Start: start}
			byBucket[start] = p
		}
		p.Impressions++
		p.Clicks += im.Clicks
		switch im.DataCenter {
		case "", "not-data-center", "vpn-exception":
		default:
			p.DataCenter++
		}
	}
	out := make([]TimeseriesPoint, 0, len(byBucket))
	for _, p := range byBucket {
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	writeJSON(w, out)
}

func (q *queryAPI) handlePublishers(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	id := r.URL.Query().Get("campaign")
	if id == "" {
		http.Error(w, "missing campaign parameter", http.StatusBadRequest)
		return
	}
	limit := 50
	if raw := r.URL.Query().Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 || n > 10_000 {
			http.Error(w, "bad limit", http.StatusBadRequest)
			return
		}
		limit = n
	}
	recs := q.st.ByCampaign(id)
	if len(recs) == 0 {
		http.Error(w, "unknown campaign", http.StatusNotFound)
		return
	}
	type agg struct{ imps, clicks int }
	counts := map[string]*agg{}
	for _, im := range recs {
		a := counts[im.Publisher]
		if a == nil {
			a = &agg{}
			counts[im.Publisher] = a
		}
		a.imps++
		a.clicks += im.Clicks
	}
	rows := make([]PublisherRow, 0, len(counts))
	for pub, a := range counts {
		rows = append(rows, PublisherRow{Publisher: pub, Impressions: a.imps, Clicks: a.clicks})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Impressions != rows[j].Impressions {
			return rows[i].Impressions > rows[j].Impressions
		}
		return rows[i].Publisher < rows[j].Publisher
	})
	if len(rows) > limit {
		rows = rows[:limit]
	}
	writeJSON(w, rows)
}
