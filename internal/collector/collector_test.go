package collector

import (
	"context"
	"net/netip"
	"testing"
	"time"

	"adaudit/internal/beacon"
	"adaudit/internal/ipmeta"
	"adaudit/internal/store"
)

func testCollector(t *testing.T) (*Collector, *store.Store) {
	t.Helper()
	st := store.New()
	uni, err := ipmeta.NewUniverse(ipmeta.UniverseConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Config{
		Store:      st,
		IPDB:       uni.DB,
		Classifier: &ipmeta.Classifier{DB: uni.DB, DenyList: uni.DenyList, ManualVerify: uni.ManualVerify},
		Anonymizer: ipmeta.NewAnonymizer([]byte("test-secret")),
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, st
}

func testObservation(t *testing.T, c *Collector) Observation {
	t.Helper()
	return Observation{
		Payload: beacon.Payload{
			CampaignID: "Research-010",
			CreativeID: "cr1",
			PageURL:    "http://www.ciencia123.es/articulo",
			UserAgent:  "Mozilla/5.0 Chrome/49.0",
			Events: []beacon.Event{
				{Kind: beacon.EventMouseMove, At: time.Second},
				{Kind: beacon.EventClick, At: 2 * time.Second},
				{Kind: beacon.EventMouseMove, At: 3 * time.Second},
			},
		},
		RemoteIP:    netip.MustParseAddr("10.0.0.7"),
		ConnectedAt: time.Date(2016, 3, 29, 10, 0, 0, 0, time.UTC),
		Exposure:    2500 * time.Millisecond,
	}
}

func TestNewRequiresStoreAndAnonymizer(t *testing.T) {
	if _, err := New(Config{Anonymizer: ipmeta.NewAnonymizer([]byte("k"))}); err == nil {
		t.Fatal("missing store accepted")
	}
	if _, err := New(Config{Store: store.New()}); err == nil {
		t.Fatal("missing anonymizer accepted")
	}
}

func TestIngestEnrichesRecord(t *testing.T) {
	c, st := testCollector(t)
	obs := testObservation(t, c)
	id, err := c.Ingest(obs)
	if err != nil {
		t.Fatal(err)
	}
	im, ok := st.Get(id)
	if !ok {
		t.Fatal("record not stored")
	}
	if im.Publisher != "ciencia123.es" {
		t.Fatalf("publisher = %q", im.Publisher)
	}
	if im.ISP == "" || im.Country == "" {
		t.Fatalf("IP metadata missing: isp=%q country=%q", im.ISP, im.Country)
	}
	if im.IPPseudonym == "" || im.IPPseudonym == obs.RemoteIP.String() {
		t.Fatalf("IP not pseudonymised: %q", im.IPPseudonym)
	}
	if im.UserKey != UserKey(im.IPPseudonym, obs.Payload.UserAgent) {
		t.Fatalf("user key = %q", im.UserKey)
	}
	if im.MouseMoves != 2 || im.Clicks != 1 {
		t.Fatalf("interactions = %d moves, %d clicks", im.MouseMoves, im.Clicks)
	}
	if im.Exposure != 2500*time.Millisecond {
		t.Fatalf("exposure = %v", im.Exposure)
	}
	if im.DataCenter != "not-data-center" {
		t.Fatalf("residential IP classified as %q", im.DataCenter)
	}
	if c.Metrics.Ingested.Load() != 1 {
		t.Fatalf("ingested metric = %d", c.Metrics.Ingested.Load())
	}
}

func TestIngestClassifiesDataCenterIP(t *testing.T) {
	st := store.New()
	uni, err := ipmeta.NewUniverse(ipmeta.UniverseConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Config{
		Store:      st,
		IPDB:       uni.DB,
		Classifier: &ipmeta.Classifier{DB: uni.DB, DenyList: uni.DenyList, ManualVerify: uni.ManualVerify},
		Anonymizer: ipmeta.NewAnonymizer([]byte("k")),
	})
	if err != nil {
		t.Fatal(err)
	}
	dcAddr, err := uni.RandomHostingAddr()
	if err != nil {
		t.Fatal(err)
	}
	obs := testObservation(t, c)
	obs.RemoteIP = dcAddr
	id, err := c.Ingest(obs)
	if err != nil {
		t.Fatal(err)
	}
	im, _ := st.Get(id)
	switch im.DataCenter {
	case "provider-db", "deny-list", "manual":
		// Any cascade stage is fine; which one fires depends on whether
		// the synthetic registry mislabelled this provider.
	default:
		t.Fatalf("data-center verdict = %q", im.DataCenter)
	}
}

func TestIngestClampsExposure(t *testing.T) {
	c, st := testCollector(t)
	obs := testObservation(t, c)
	obs.Exposure = 99 * time.Hour
	id, err := c.Ingest(obs)
	if err != nil {
		t.Fatal(err)
	}
	im, _ := st.Get(id)
	if im.Exposure != 30*time.Minute {
		t.Fatalf("exposure = %v, want clamped to 30m", im.Exposure)
	}
	obs.Exposure = -time.Second
	id, err = c.Ingest(obs)
	if err != nil {
		t.Fatal(err)
	}
	im, _ = st.Get(id)
	if im.Exposure != 0 {
		t.Fatalf("negative exposure stored as %v", im.Exposure)
	}
}

func TestIngestRejectsBadPageURL(t *testing.T) {
	c, _ := testCollector(t)
	obs := testObservation(t, c)
	obs.Payload.PageURL = "garbage"
	if _, err := c.Ingest(obs); err == nil {
		t.Fatal("bad page URL accepted")
	}
	if c.Metrics.Rejected.Load() != 1 {
		t.Fatalf("rejected metric = %d", c.Metrics.Rejected.Load())
	}
}

func TestIngestUnknownIPStillStored(t *testing.T) {
	c, st := testCollector(t)
	obs := testObservation(t, c)
	obs.RemoteIP = netip.MustParseAddr("203.0.113.9") // outside synthetic registry
	id, err := c.Ingest(obs)
	if err != nil {
		t.Fatal(err)
	}
	im, _ := st.Get(id)
	if im.ISP != "" || im.Country != "" {
		t.Fatalf("unknown IP got metadata: %+v", im)
	}
	if im.DataCenter != "not-data-center" {
		t.Fatalf("unknown IP verdict = %q", im.DataCenter)
	}
}

func TestUserKeySeparatesNATUsers(t *testing.T) {
	// Same IP, different browsers: distinct users (paper §4.2).
	a := UserKey("pseudo1", "Chrome/49")
	b := UserKey("pseudo1", "Firefox/45")
	if a == b {
		t.Fatal("NAT users with different UAs share a key")
	}
	if UserKey("pseudo1", "Chrome/49") != a {
		t.Fatal("user key not deterministic")
	}
}

func TestEndToEndWebSocketSession(t *testing.T) {
	c, st := testCollector(t)
	srv, err := NewServer(c, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(ctx)
	}()

	client := &beacon.Client{CollectorURL: srv.BeaconURL()}
	p := beacon.Payload{
		CampaignID: "Football-010",
		CreativeID: "cr2",
		PageURL:    "http://futbolhoy999.es/cronica",
		UserAgent:  "Mozilla/5.0 Chrome/49.0",
	}
	sess, err := client.Open(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.SendEvent(beacon.Event{Kind: beacon.EventClick, At: 40 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(80 * time.Millisecond) // hold the connection: this is the exposure
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}

	// The collector commits on disconnect; poll briefly.
	deadline := time.Now().Add(3 * time.Second)
	for st.Len() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if st.Len() != 1 {
		t.Fatalf("store has %d records", st.Len())
	}
	im, _ := st.Get(1)
	if im.CampaignID != "Football-010" || im.Publisher != "futbolhoy999.es" {
		t.Fatalf("record = %+v", im)
	}
	if im.Clicks != 1 {
		t.Fatalf("clicks = %d", im.Clicks)
	}
	if im.Exposure < 50*time.Millisecond {
		t.Fatalf("exposure = %v, want >= hold duration", im.Exposure)
	}
	if im.IPPseudonym == "" {
		t.Fatal("missing pseudonym")
	}
	if got := c.Metrics.Connections.Load(); got != 1 {
		t.Fatalf("connections metric = %d", got)
	}

	cancel()
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("server did not shut down")
	}
}

func TestServerRejectsGarbagePayload(t *testing.T) {
	c, st := testCollector(t)
	srv, err := NewServer(c, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go srv.Serve(ctx)

	// Dial raw WebSocket and send a non-payload message.
	d := &beaconDialer{url: srv.BeaconURL()}
	if err := d.sendRaw(ctx, "this is not a payload"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for c.Metrics.Rejected.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if c.Metrics.Rejected.Load() == 0 {
		t.Fatal("garbage payload not rejected")
	}
	if st.Len() != 0 {
		t.Fatal("garbage payload stored")
	}
}

func TestServerHealthAndMetrics(t *testing.T) {
	c, _ := testCollector(t)
	srv, err := NewServer(c, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go srv.Serve(ctx)

	for _, path := range []string{"/healthz", "/metricsz"} {
		resp, err := httpGet(ctx, "http://"+srv.Addr().String()+path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp != 200 {
			t.Fatalf("GET %s status = %d", path, resp)
		}
	}
}
