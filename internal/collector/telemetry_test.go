package collector

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"adaudit/internal/beacon"
)

func httpGetBody(ctx context.Context, url string) (int, string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, "", err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body), err
}

var promSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$`)

// parsePromText parses the exposition into series-key → value, failing
// the test on any malformed line.
func parsePromText(t *testing.T, text string) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		m := promSampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed Prometheus sample line %q", line)
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		out[m[1]+m[2]] = v
	}
	return out
}

// TestMetricsEndpointAfterWebSocketTraffic drives a real beacon session
// and checks /metrics exposes the registered series with consistent
// values and monotone histogram buckets.
func TestMetricsEndpointAfterWebSocketTraffic(t *testing.T) {
	c, _ := testCollector(t)
	srv, err := NewServer(c, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go srv.Serve(ctx)

	client := &beacon.Client{CollectorURL: srv.BeaconURL()}
	p := beacon.Payload{
		CampaignID: "Metrics-010",
		CreativeID: "cr1",
		PageURL:    "http://metricas123.es/nota",
		UserAgent:  "Mozilla/5.0 Chrome/49.0",
	}
	if err := client.Report(ctx, p, 30*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for c.Metrics.Ingested.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if c.Metrics.Ingested.Load() == 0 {
		t.Fatal("impression never committed")
	}

	status, body, err := httpGetBody(ctx, "http://"+srv.Addr().String()+"/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if status != 200 {
		t.Fatalf("GET /metrics status = %d", status)
	}
	samples := parsePromText(t, body)
	if got := samples["adaudit_collector_ingested_total"]; got != 1 {
		t.Fatalf("ingested series = %v, want 1\n%s", got, body)
	}
	if got := samples["adaudit_collector_connections_total"]; got != 1 {
		t.Fatalf("connections series = %v, want 1", got)
	}
	if _, ok := samples["adaudit_collector_sessions_active"]; !ok {
		t.Fatalf("sessions gauge missing:\n%s", body)
	}
	if got := samples[`adaudit_collector_sessions_closed_total{reason="peer-close"}`]; got != 1 {
		t.Fatalf("close-reason series = %v, want 1\n%s", got, body)
	}
	if got := samples["adaudit_store_inserts_total"]; got != 1 {
		t.Fatalf("store inserts series = %v, want 1", got)
	}
	if got := samples["adaudit_collector_exposure_seconds_count"]; got != 1 {
		t.Fatalf("exposure histogram count = %v, want 1", got)
	}
	// Per-stage latency histograms recorded the session's work.
	for _, h := range []string{
		"adaudit_collector_upgrade_seconds_count",
		"adaudit_collector_decode_seconds_count",
		"adaudit_collector_enrich_seconds_count",
		"adaudit_store_insert_seconds_count",
	} {
		if samples[h] < 1 {
			t.Fatalf("stage histogram %s = %v, want >= 1\n%s", h, samples[h], body)
		}
	}
	// Histogram bucket series are cumulative, hence monotone in le.
	checkBucketsMonotone(t, body, "adaudit_store_insert_seconds_bucket")
	checkBucketsMonotone(t, body, "adaudit_collector_exposure_seconds_bucket")
}

// checkBucketsMonotone asserts the cumulative bucket counts of one
// histogram family never decrease as le grows (file order is ascending).
func checkBucketsMonotone(t *testing.T, text, family string) {
	t.Helper()
	prev := -1.0
	n := 0
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, family+"{") {
			continue
		}
		v, err := strconv.ParseFloat(line[strings.LastIndexByte(line, ' ')+1:], 64)
		if err != nil {
			t.Fatal(err)
		}
		if v < prev {
			t.Fatalf("%s buckets not monotone at %q", family, line)
		}
		prev = v
		n++
	}
	if n == 0 {
		t.Fatalf("no bucket series for %s", family)
	}
}

func TestJSONMetricsEndpoint(t *testing.T) {
	c, _ := testCollector(t)
	srv, err := NewServer(c, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go srv.Serve(ctx)

	if _, err := c.Ingest(testObservation(t, c)); err != nil {
		t.Fatal(err)
	}
	status, body, err := httpGetBody(ctx, "http://"+srv.Addr().String()+"/api/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if status != 200 {
		t.Fatalf("GET /api/metrics status = %d", status)
	}
	var out map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("JSON metrics do not parse: %v", err)
	}
	var ingested float64
	if err := json.Unmarshal(out["adaudit_collector_ingested_total"], &ingested); err != nil || ingested != 1 {
		t.Fatalf("ingested = %v (err %v)", ingested, err)
	}
	var hist struct {
		Count uint64  `json:"count"`
		P99   float64 `json:"p99"`
	}
	if err := json.Unmarshal(out["adaudit_store_insert_seconds"], &hist); err != nil {
		t.Fatal(err)
	}
	if hist.Count != 1 {
		t.Fatalf("insert histogram count = %d", hist.Count)
	}
}

// TestHealthzFlipsOnIngestAge: a collector expected to receive traffic
// goes unhealthy when the last-ingest age passes the threshold, and
// recovers as soon as a record commits.
func TestHealthzFlipsOnIngestAge(t *testing.T) {
	c, _ := testCollector(t)
	srv, err := NewServer(c, "127.0.0.1:0", WithMaxIngestAge(80*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go srv.Serve(ctx)

	url := "http://" + srv.Addr().String() + "/healthz"
	status, body, err := httpGetBody(ctx, url)
	if err != nil {
		t.Fatal(err)
	}
	if status != 200 {
		t.Fatalf("fresh server unhealthy: %d %s", status, body)
	}

	time.Sleep(150 * time.Millisecond)
	status, body, err = httpGetBody(ctx, url)
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusServiceUnavailable {
		t.Fatalf("idle server still healthy: %d %s", status, body)
	}
	var hs HealthStatus
	if err := json.Unmarshal([]byte(body), &hs); err != nil {
		t.Fatal(err)
	}
	if hs.Status != "unhealthy" || hs.LastIngestAgeSeconds <= 0.08 {
		t.Fatalf("health body = %+v", hs)
	}

	if _, err := c.Ingest(testObservation(t, c)); err != nil {
		t.Fatal(err)
	}
	status, body, err = httpGetBody(ctx, url)
	if err != nil {
		t.Fatal(err)
	}
	if status != 200 {
		t.Fatalf("server did not recover after ingest: %d %s", status, body)
	}
}

func TestHealthzCustomCheck(t *testing.T) {
	c, _ := testCollector(t)
	healthy := true
	srv, err := NewServer(c, "127.0.0.1:0", WithHealthCheck("snapshot-dir", func() error {
		if healthy {
			return nil
		}
		return io.ErrClosedPipe
	}))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go srv.Serve(ctx)

	url := "http://" + srv.Addr().String() + "/healthz"
	if status, body, _ := httpGetBody(ctx, url); status != 200 {
		t.Fatalf("healthy check reported %d %s", status, body)
	}
	healthy = false
	status, body, err := httpGetBody(ctx, url)
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusServiceUnavailable || !strings.Contains(body, "snapshot-dir") {
		t.Fatalf("failing check reported %d %s", status, body)
	}
}

// TestShutdownDrainsOpenSessions: a session still streaming when the
// server shuts down has its impression committed (not lost), counted
// under the "drain" close reason.
func TestShutdownDrainsOpenSessions(t *testing.T) {
	c, st := testCollector(t)
	srv, err := NewServer(c, "127.0.0.1:0", WithShutdownGrace(3*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(ctx)
	}()

	client := &beacon.Client{CollectorURL: srv.BeaconURL()}
	p := beacon.Payload{
		CampaignID: "Drain-010",
		CreativeID: "cr1",
		PageURL:    "http://drenaje456.es/p",
		UserAgent:  "Mozilla/5.0 Chrome/49.0",
	}
	sess, err := client.Open(ctx, p)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	defer sess.Close()

	// Wait until the server has decoded the payload (the session is past
	// its handshake), then shut down with the connection still open.
	deadline := time.Now().Add(3 * time.Second)
	for c.tel.decode.Snapshot().Count == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if c.tel.decode.Snapshot().Count == 0 {
		cancel()
		t.Fatal("session never decoded its payload")
	}
	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}

	if st.Len() != 1 {
		t.Fatalf("store has %d records after drain, want 1", st.Len())
	}
	im, _ := st.Get(1)
	if im.CampaignID != "Drain-010" {
		t.Fatalf("drained record = %+v", im)
	}
	reg := c.Telemetry()
	if s, ok := reg.Find("adaudit_collector_sessions_closed_total", map[string]string{"reason": CloseDrain}); !ok || s.Value != 1 {
		t.Fatalf("drain close reason = %+v ok=%v, want 1", s, ok)
	}
	if s, _ := reg.Find("adaudit_collector_sessions_dropped_shutdown_total", nil); s.Value != 0 {
		t.Fatalf("dropped-on-shutdown = %v, want 0", s.Value)
	}
}

// TestRejectClassesSplit: decode failures and store-insert failures land
// in distinct labelled series while the legacy aggregate still counts
// both.
func TestRejectClassesSplit(t *testing.T) {
	c, _ := testCollector(t)
	obs := testObservation(t, c)
	obs.Payload.PageURL = "garbage" // Publisher() fails → payload class
	if _, err := c.Ingest(obs); err == nil {
		t.Fatal("bad page URL accepted")
	}
	obs = testObservation(t, c)
	obs.Payload.CampaignID = "" // store validation fails → insert class
	if _, err := c.Ingest(obs); err == nil {
		t.Fatal("missing campaign accepted")
	}
	reg := c.Telemetry()
	if s, ok := reg.Find("adaudit_collector_rejects_total", map[string]string{"class": RejectPayload}); !ok || s.Value != 1 {
		t.Fatalf("payload reject series = %+v ok=%v", s, ok)
	}
	if s, ok := reg.Find("adaudit_collector_rejects_total", map[string]string{"class": RejectInsert}); !ok || s.Value != 1 {
		t.Fatalf("insert reject series = %+v ok=%v", s, ok)
	}
	if got := c.Metrics.Rejected.Load(); got != 2 {
		t.Fatalf("legacy rejected total = %d, want 2", got)
	}
	if s, _ := reg.Find("adaudit_store_insert_failures_total", nil); s.Value != 1 {
		t.Fatalf("store insert failures = %v, want 1", s.Value)
	}
}

// TestDisableTelemetry: the Metrics field API keeps working with
// instrumentation off, and no registry is exposed.
func TestDisableTelemetry(t *testing.T) {
	c, _ := testCollector(t)
	c2, err := New(Config{
		Store:            c.cfg.Store,
		Anonymizer:       c.cfg.Anonymizer,
		DisableTelemetry: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if c2.Telemetry() != nil {
		t.Fatal("disabled collector still has a registry")
	}
	if _, err := c2.Ingest(testObservation(t, c2)); err != nil {
		t.Fatal(err)
	}
	if c2.Metrics.Ingested.Load() != 1 {
		t.Fatalf("ingested = %d with telemetry disabled", c2.Metrics.Ingested.Load())
	}
}
