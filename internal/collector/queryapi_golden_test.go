package collector

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/netip"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"adaudit/internal/beacon"
	"adaudit/internal/ipmeta"
	"adaudit/internal/store"
	"adaudit/internal/telemetry"
)

// -update regenerates the golden files from the live fixture:
//
//	go test ./internal/collector -run Golden -update
var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/golden")

func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if string(want) != string(got) {
		t.Errorf("response differs from %s (re-run with -update if the change is intended)\ngot:\n%s\nwant:\n%s",
			path, got, want)
	}
}

func getBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("GET %s: content type %q", url, ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestQueryAPIGolden pins the exact success-path JSON of every
// dashboard endpoint against committed fixtures: the deterministic
// store fixture means any byte of drift in shapes, field names,
// ordering or derived metrics fails here first.
func TestQueryAPIGolden(t *testing.T) {
	_, _, base, cancel := queryFixture(t)
	defer cancel()

	for _, tc := range []struct {
		name string
		path string
	}{
		{"campaigns.json", "/api/campaigns"},
		{"summary.json", "/api/summary?campaign=camp-a"},
		{"publishers.json", "/api/publishers?campaign=camp-a&limit=3"},
		{"timeseries.json", "/api/timeseries?campaign=camp-a&bucket=10m"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			golden(t, tc.name, getBody(t, base+tc.path))
		})
	}
}

// TestMetricsJSONShapeGolden pins the shape of /api/metrics — every
// registered instrument's key and kind (scalar or histogram). Values
// are timing-dependent, so the golden captures the schema a dashboard
// binds to, not the numbers.
func TestMetricsJSONShapeGolden(t *testing.T) {
	st := store.New()
	c, err := New(Config{
		Store:      st,
		Anonymizer: ipmeta.NewAnonymizer([]byte("golden")),
		Telemetry:  telemetry.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(c, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go srv.Serve(ctx)

	base := time.Date(2016, 3, 29, 12, 0, 0, 0, time.UTC)
	for i := 0; i < 8; i++ {
		if _, err := c.Ingest(Observation{
			Payload: beacon.Payload{
				CampaignID: "camp-m", CreativeID: "cr",
				PageURL: fmt.Sprintf("http://pub%d.es/p", i%2), UserAgent: "UA",
			},
			RemoteIP:    netip.AddrFrom4([4]byte{10, 0, 2, byte(i + 1)}),
			ConnectedAt: base.Add(time.Duration(i) * time.Minute),
			Exposure:    time.Duration(i) * time.Second,
		}); err != nil {
			t.Fatal(err)
		}
	}

	body := getBody(t, "http://"+srv.Addr().String()+"/api/metrics")
	var metrics map[string]json.RawMessage
	if err := json.Unmarshal(body, &metrics); err != nil {
		t.Fatalf("metrics JSON does not parse: %v", err)
	}
	var lines []string
	for key, raw := range metrics {
		kind := "scalar"
		if strings.HasPrefix(strings.TrimSpace(string(raw)), "{") {
			kind = "histogram"
		}
		lines = append(lines, key+" "+kind+"\n")
	}
	sort.Strings(lines)
	golden(t, "metrics_shape.txt", []byte(strings.Join(lines, "")))
}
