package collector

import (
	"net/netip"
	"sync"

	"adaudit/internal/beacon"
	"adaudit/internal/ipmeta"
)

// ingestCacheLimit is the per-generation size bound of each ingest
// cache map. Two generations are live, so at most 2x this many entries
// are remembered per cache.
const ingestCacheLimit = 1 << 15

// gen2 is a bounded two-generation map: when the current generation
// fills it becomes the previous one, so an entry survives at least one
// and at most two generations of distinct keys — the same rotation
// discipline as the nonce and trunk-stream dedup caches.
type gen2[K comparable, V any] struct {
	cur, prev map[K]V
}

// get looks k up in both generations, promoting a previous-generation
// hit into the current one so hot entries survive rotation.
func (g *gen2[K, V]) get(k K) (V, bool) {
	if v, ok := g.cur[k]; ok {
		return v, true
	}
	v, ok := g.prev[k]
	if ok {
		g.put(k, v)
	}
	return v, ok
}

func (g *gen2[K, V]) put(k K, v V) {
	if g.cur == nil || len(g.cur) >= ingestCacheLimit {
		g.prev = g.cur
		g.cur = make(map[K]V, ingestCacheLimit/4)
	}
	g.cur[k] = v
}

// enrichment is the cached per-address result of the IP pipeline: LPM
// metadata lookup, fraud-cascade verdict (pre-rendered to its store
// string) and pseudonym. All four are pure functions of the address
// for a given collector configuration, so caching them only skips
// recomputation — records are byte-identical either way. (The
// classifier's internal per-verdict counters then count distinct
// classifications rather than impressions; nothing outside its own
// unit tests reads them per-impression.)
type enrichment struct {
	isp, country, dataCenter, pseud string
}

// userKeyPair keys the user-key cache by the two interned strings it
// concatenates. A struct key costs no allocation to look up.
type userKeyPair struct {
	pseud, ua string
}

// ingestCache holds the bounded caches that make steady-state ingest
// allocation-free: canonical copies of the hot wire strings, page URL →
// publisher, address → enrichment, and (pseudonym, UA) → user key. One
// mutex guards all four; every critical section is a map operation or
// two, and the binary decode path batches its intern lookups under a
// single acquisition.
type ingestCache struct {
	mu  sync.Mutex
	str gen2[string, string]
	pub gen2[string, string]
	enr gen2[netip.Addr, enrichment]
	uk  gen2[userKeyPair, string]
}

// internLocked returns the canonical copy of b, copying at most once
// per two generations. The caller holds mu. The map index expressions
// use the string(b) conversion directly so the compiler elides the
// conversion's allocation on the lookup path.
func (ic *ingestCache) internLocked(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if s, ok := ic.str.cur[string(b)]; ok {
		return s
	}
	if s, ok := ic.str.prev[string(b)]; ok {
		ic.str.put(s, s)
		return s
	}
	s := string(b)
	ic.str.put(s, s)
	return s
}

// decodeBinary parses a binary impression message into p through the
// intern tables, holding the cache lock once for all of the payload's
// fields.
func (ic *ingestCache) decodeBinary(p *beacon.Payload, raw []byte) error {
	ic.mu.Lock()
	defer ic.mu.Unlock()
	return beacon.DecodeBinaryInto(p, raw, ic.internLocked)
}

// publisherFor resolves the publisher for a page URL, consulting the
// cache before paying for url.Parse. Failures are not cached: a
// malformed URL is a rejected impression, not a hot path.
func (c *Collector) publisherFor(p beacon.Payload) (string, error) {
	ic := &c.icache
	ic.mu.Lock()
	pub, ok := ic.pub.get(p.PageURL)
	ic.mu.Unlock()
	if ok {
		return pub, nil
	}
	pub, err := p.Publisher()
	if err != nil {
		return "", err
	}
	ic.mu.Lock()
	ic.pub.put(p.PageURL, pub)
	ic.mu.Unlock()
	return pub, nil
}

// enrichFor runs the per-address enrichment pipeline, consulting the
// cache before paying for the LPM lookup, the fraud cascade and the
// HMAC pseudonym.
func (c *Collector) enrichFor(addr netip.Addr) enrichment {
	ic := &c.icache
	ic.mu.Lock()
	enr, ok := ic.enr.get(addr)
	ic.mu.Unlock()
	if ok {
		return enr
	}
	if c.cfg.IPDB != nil {
		if rec, ok := c.cfg.IPDB.Lookup(addr); ok {
			enr.isp, enr.country = rec.Org.Name, rec.Org.Country
		}
	}
	verdict := ipmeta.VerdictNotDataCenter
	if c.cfg.Classifier != nil {
		verdict = c.cfg.Classifier.Classify(addr)
	}
	enr.dataCenter = verdict.String()
	enr.pseud = c.cfg.Anonymizer.Pseudonym(addr)
	ic.mu.Lock()
	ic.enr.put(addr, enr)
	ic.mu.Unlock()
	return enr
}

// userKeyFor derives (and caches) the paper's user identity for a
// pseudonym/user-agent pair, skipping the concatenation allocation on
// repeat visitors.
func (c *Collector) userKeyFor(pseud, ua string) string {
	ic := &c.icache
	ic.mu.Lock()
	defer ic.mu.Unlock()
	k := userKeyPair{pseud: pseud, ua: ua}
	if uk, ok := ic.uk.get(k); ok {
		return uk
	}
	uk := UserKey(pseud, ua)
	ic.uk.put(k, uk)
	return uk
}
