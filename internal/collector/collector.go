// Package collector implements the paper's central measurement server
// (§3): it terminates the beacons' WebSocket connections, parses the
// impression payloads, derives the connection-side facts the client
// cannot forge — peer IP address, impression timestamp (connection
// establishment) and exposure time (connection duration) — enriches the
// record with IP metadata (ISP, country, data-center verdict) and then
// anonymises the address before the record reaches the store.
//
// The same enrichment pipeline is reachable without a socket through
// Ingest, which the campaign simulator uses to replay large synthetic
// workloads on a virtual clock; the WebSocket path and the direct path
// converge on identical store records.
package collector

import (
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/netip"
	"sync/atomic"
	"time"

	"adaudit/internal/beacon"
	"adaudit/internal/ipmeta"
	"adaudit/internal/store"
	"adaudit/internal/wsproto"
)

// Config assembles a Collector.
type Config struct {
	// Store receives enriched impression records. Required.
	Store *store.Store
	// IPDB resolves client addresses to ISP/country metadata. Optional;
	// unresolved addresses yield empty ISP/Country.
	IPDB *ipmeta.DB
	// Classifier runs the data-center fraud cascade on client
	// addresses. Optional; when nil every record is "not-data-center".
	Classifier *ipmeta.Classifier
	// Anonymizer pseudonymises client IPs. Required: the paper's
	// methodology never stores raw addresses.
	Anonymizer *ipmeta.Anonymizer
	// MaxMessageSize bounds beacon messages (default 16 KiB).
	MaxMessageSize int64
	// MaxExposure caps a single connection's lifetime so an abandoned
	// browser tab cannot hold a socket forever (default 30 minutes, the
	// session horizon; exposure is clamped to this).
	MaxExposure time.Duration
	// HandshakeTimeout bounds how long a connection may sit idle before
	// sending its initial payload (default 10 s).
	HandshakeTimeout time.Duration
	// KeepAliveInterval pings idle beacon sessions and drops peers that
	// stop answering within two intervals; without that a silently dead
	// TCP peer (crashed browser, NAT timeout) holds its socket — and
	// inflates its exposure measurement — until MaxExposure fires.
	// Default 30 s; negative disables.
	KeepAliveInterval time.Duration
	// Logger receives operational events; defaults to slog.Default().
	Logger *slog.Logger
}

// Metrics are the collector's liveness counters, all updated atomically.
type Metrics struct {
	// Connections counts accepted WebSocket connections.
	Connections atomic.Int64
	// Ingested counts impressions committed to the store.
	Ingested atomic.Int64
	// Rejected counts connections dropped before a valid payload
	// (decode failures, timeouts, invalid records).
	Rejected atomic.Int64
	// Events counts interaction updates received.
	Events atomic.Int64
	// Conversions counts conversion-pixel records committed.
	Conversions atomic.Int64
}

// Collector terminates beacon traffic and writes impression records.
type Collector struct {
	cfg      Config
	upgrader wsproto.Upgrader
	// Metrics exposes ingest counters for health checks and tests.
	Metrics Metrics
}

// New validates cfg and returns a Collector.
func New(cfg Config) (*Collector, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("collector: config requires a store")
	}
	if cfg.Anonymizer == nil {
		return nil, fmt.Errorf("collector: config requires an anonymizer")
	}
	if cfg.MaxMessageSize == 0 {
		cfg.MaxMessageSize = 16 << 10
	}
	if cfg.MaxExposure == 0 {
		cfg.MaxExposure = 30 * time.Minute
	}
	if cfg.HandshakeTimeout == 0 {
		cfg.HandshakeTimeout = 10 * time.Second
	}
	switch {
	case cfg.KeepAliveInterval == 0:
		cfg.KeepAliveInterval = 30 * time.Second
	case cfg.KeepAliveInterval < 0:
		cfg.KeepAliveInterval = 0
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	return &Collector{
		cfg: cfg,
		upgrader: wsproto.Upgrader{
			MaxMessageSize: cfg.MaxMessageSize,
			// Ad beacons are cross-origin by design: the iframe origin
			// is whatever publisher the network chose. All origins pass.
			CheckOrigin: nil,
			// Accept permessage-deflate offers: individual payloads are
			// small, but browsers offer it and long-lived sessions with
			// many interaction updates benefit.
			EnableCompression: true,
		},
	}, nil
}

// Observation is one impression as seen at the network edge, before
// enrichment: the decoded payload plus the connection-derived facts.
type Observation struct {
	Payload beacon.Payload
	// RemoteIP is the peer address of the beacon connection.
	RemoteIP netip.Addr
	// ConnectedAt is the connection-establishment time — the paper's
	// impression timestamp.
	ConnectedAt time.Time
	// Exposure is the connection duration.
	Exposure time.Duration
}

// Ingest enriches obs and commits it to the store. This is the single
// funnel both the WebSocket path and the simulator's direct path use.
func (c *Collector) Ingest(obs Observation) (int64, error) {
	pub, err := obs.Payload.Publisher()
	if err != nil {
		c.Metrics.Rejected.Add(1)
		return 0, fmt.Errorf("collector: extracting publisher: %w", err)
	}
	if obs.Exposure < 0 {
		obs.Exposure = 0
	}
	if obs.Exposure > c.cfg.MaxExposure {
		obs.Exposure = c.cfg.MaxExposure
	}

	var isp, country string
	if c.cfg.IPDB != nil {
		if rec, ok := c.cfg.IPDB.Lookup(obs.RemoteIP); ok {
			isp, country = rec.Org.Name, rec.Org.Country
		}
	}
	verdict := ipmeta.VerdictNotDataCenter
	if c.cfg.Classifier != nil {
		verdict = c.cfg.Classifier.Classify(obs.RemoteIP)
	}
	pseud := c.cfg.Anonymizer.Pseudonym(obs.RemoteIP)

	moves, clicks := 0, 0
	visMeasured := false
	maxVis := 0.0
	for _, e := range obs.Payload.Events {
		switch e.Kind {
		case beacon.EventMouseMove:
			moves++
		case beacon.EventClick:
			clicks++
		case beacon.EventVisibility:
			visMeasured = true
			if e.Fraction > maxVis {
				maxVis = e.Fraction
			}
		}
	}

	im := store.Impression{
		CampaignID:  obs.Payload.CampaignID,
		CreativeID:  obs.Payload.CreativeID,
		Publisher:   pub,
		PageURL:     obs.Payload.PageURL,
		UserAgent:   obs.Payload.UserAgent,
		IPPseudonym: pseud,
		UserKey:     UserKey(pseud, obs.Payload.UserAgent),
		ISP:         isp,
		Country:     country,
		DataCenter:  verdict.String(),
		Timestamp:   obs.ConnectedAt,
		Exposure:    obs.Exposure,
		MouseMoves:  moves,
		Clicks:      clicks,

		VisibilityMeasured: visMeasured,
		MaxVisibleFraction: maxVis,
	}
	id, err := c.cfg.Store.Insert(im)
	if err != nil {
		c.Metrics.Rejected.Add(1)
		return 0, fmt.Errorf("collector: storing impression: %w", err)
	}
	c.Metrics.Ingested.Add(1)
	return id, nil
}

// ServeHTTP upgrades the request to a WebSocket and runs the beacon
// session protocol: first text message is the impression payload,
// subsequent "ev:" messages are interaction updates, and the connection
// lifetime measures exposure. The impression is committed when the
// connection ends (or the exposure cap fires).
func (c *Collector) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	conn, err := c.upgrader.Upgrade(w, r)
	if err != nil {
		c.cfg.Logger.Debug("collector: handshake rejected", "err", err, "remote", r.RemoteAddr)
		return
	}
	c.Metrics.Connections.Add(1)
	go c.runSession(conn)
}

func (c *Collector) runSession(conn *wsproto.Conn) {
	defer conn.Close(wsproto.CloseNormal, "")

	remote, err := remoteAddr(conn.RemoteAddr())
	if err != nil {
		c.Metrics.Rejected.Add(1)
		c.cfg.Logger.Warn("collector: unresolvable peer address", "err", err)
		return
	}
	connectedAt := conn.Established()

	// The beacon must identify itself promptly.
	_ = conn.SetReadDeadline(connectedAt.Add(c.cfg.HandshakeTimeout))
	op, msg, err := conn.ReadMessage()
	if err != nil || op != wsproto.OpText {
		c.Metrics.Rejected.Add(1)
		return
	}
	payload, err := beacon.Decode(string(msg))
	if err != nil {
		c.Metrics.Rejected.Add(1)
		c.cfg.Logger.Debug("collector: bad payload", "err", err, "remote", remote)
		_ = conn.Close(wsproto.ClosePolicyViolation, "bad payload")
		return
	}

	// Stream interaction updates until disconnect or exposure cap. With
	// keep-alive enabled the read deadline renews on every pong, so a
	// dead peer is detected within two intervals instead of holding the
	// socket until the exposure cap.
	hardStop := connectedAt.Add(c.cfg.MaxExposure)
	renewDeadline := func() {
		d := hardStop
		if ka := c.cfg.KeepAliveInterval; ka > 0 {
			if soft := time.Now().Add(2 * ka); soft.Before(d) {
				d = soft
			}
		}
		_ = conn.SetReadDeadline(d)
	}
	conn.SetPongHandler(func([]byte) { renewDeadline() })
	renewDeadline()
	if ka := c.cfg.KeepAliveInterval; ka > 0 {
		stopPings := make(chan struct{})
		defer close(stopPings)
		go func() {
			t := time.NewTicker(ka)
			defer t.Stop()
			for {
				select {
				case <-stopPings:
					return
				case <-t.C:
					if err := conn.Ping(nil); err != nil {
						return
					}
				}
			}
		}()
	}
	for {
		_, msg, err := conn.ReadMessage()
		if err != nil {
			break
		}
		renewDeadline()
		e, isEvent, err := beacon.DecodeEventUpdate(string(msg))
		if err != nil {
			c.cfg.Logger.Debug("collector: bad event update", "err", err, "remote", remote)
			continue
		}
		if isEvent {
			c.Metrics.Events.Add(1)
			payload.Events = append(payload.Events, e)
		}
	}

	exposure := time.Since(connectedAt)
	if _, err := c.Ingest(Observation{
		Payload:     payload,
		RemoteIP:    remote,
		ConnectedAt: connectedAt,
		Exposure:    exposure,
	}); err != nil {
		c.cfg.Logger.Warn("collector: ingest failed", "err", err, "remote", remote)
	}
}

func remoteAddr(a net.Addr) (netip.Addr, error) {
	ap, err := netip.ParseAddrPort(a.String())
	if err != nil {
		return netip.Addr{}, fmt.Errorf("collector: parsing remote addr %q: %w", a.String(), err)
	}
	return ap.Addr().Unmap(), nil
}

// UserKey derives the paper's user identity — the combination of IP
// (already pseudonymised) and User-Agent — as a stable opaque token.
func UserKey(ipPseudonym, userAgent string) string {
	return ipPseudonym + "|" + userAgent
}
