// Package collector implements the paper's central measurement server
// (§3): it terminates the beacons' WebSocket connections, parses the
// impression payloads, derives the connection-side facts the client
// cannot forge — peer IP address, impression timestamp (connection
// establishment) and exposure time (connection duration) — enriches the
// record with IP metadata (ISP, country, data-center verdict) and then
// anonymises the address before the record reaches the store.
//
// The same enrichment pipeline is reachable without a socket through
// Ingest, which the campaign simulator uses to replay large synthetic
// workloads on a virtual clock; the WebSocket path and the direct path
// converge on identical store records.
//
// The collector is self-measuring: every ingest stage (upgrade, payload
// decode, ipmeta enrichment, store insert) reports its latency to an
// internal/telemetry registry, sessions report lifecycle events
// (concurrent count, close reasons, keepalive failures, exposure
// distribution), and rejects are classified by failure class. The
// registry is exposed over /metrics and /api/metrics by Server.
package collector

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/netip"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"adaudit/internal/beacon"
	"adaudit/internal/ipmeta"
	"adaudit/internal/simclock"
	"adaudit/internal/store"
	"adaudit/internal/telemetry"
	"adaudit/internal/trace"
	"adaudit/internal/wsproto"
)

// Config assembles a Collector.
type Config struct {
	// Store receives enriched impression records. Required.
	Store *store.Store
	// IPDB resolves client addresses to ISP/country metadata. Optional;
	// unresolved addresses yield empty ISP/Country.
	IPDB *ipmeta.DB
	// Classifier runs the data-center fraud cascade on client
	// addresses. Optional; when nil every record is "not-data-center".
	Classifier *ipmeta.Classifier
	// Anonymizer pseudonymises client IPs. Required: the paper's
	// methodology never stores raw addresses.
	Anonymizer *ipmeta.Anonymizer
	// MaxMessageSize bounds beacon messages (default 16 KiB).
	MaxMessageSize int64
	// MaxExposure caps a single connection's lifetime so an abandoned
	// browser tab cannot hold a socket forever (default 30 minutes, the
	// session horizon; exposure is clamped to this).
	MaxExposure time.Duration
	// HandshakeTimeout bounds how long a connection may sit idle before
	// sending its initial payload (default 10 s).
	HandshakeTimeout time.Duration
	// KeepAliveInterval pings idle beacon sessions and drops peers that
	// stop answering within two intervals; without that a silently dead
	// TCP peer (crashed browser, NAT timeout) holds its socket — and
	// inflates its exposure measurement — until MaxExposure fires.
	// Default 30 s; negative disables.
	KeepAliveInterval time.Duration
	// TrunkToken, when set, is the shared secret an edge gateway must
	// present (in the trunk.TokenHeader header) to open a trunk
	// connection on /trunk. Empty leaves the endpoint open — fine for
	// tests and single-host deployments, not for a public collector.
	TrunkToken string
	// MaxSessions caps concurrent beacon sessions. At the cap new
	// beacon requests are shed with a fast HTTP 503 (plus a Retry-After
	// hint) before the WebSocket upgrade spends any further resources —
	// an overloaded collector degrades into bounded, retryable refusals
	// instead of collapsing under its own sockets. 0 disables the cap.
	MaxSessions int
	// Logger receives operational events; defaults to slog.Default().
	Logger *slog.Logger
	// Telemetry is the metrics registry the collector registers its
	// instruments on (and instruments its store with). Nil creates a
	// private registry, so metrics always work; share one registry
	// across components to get a single exposition.
	Telemetry *telemetry.Registry
	// DisableTelemetry turns off all instrumentation, including the
	// per-stage clock reads. The Metrics field API keeps working
	// (backed by unregistered counters). Intended for overhead
	// benchmarking and minimal embeddings.
	DisableTelemetry bool
	// Clock supplies the time for every duration the collector
	// measures or enforces — session establishment, exposure, keepalive
	// scheduling, handshake and drain timeouts. Nil means the real
	// clock; internal/simtest substitutes a virtual one so session
	// timing runs deterministically.
	Clock simclock.Clock
	// Tracer samples impressions for end-to-end pipeline tracing: the
	// collector adopts trace context arriving in beacon payloads and
	// threads the trace through decode, enrichment, store commit and
	// the change feed into its flight recorder. Nil disables tracing;
	// unsampled impressions pay only nil checks. Trace stage offsets
	// always use the real monotonic clock (they measure the pipeline
	// itself), independent of Clock.
	Tracer *trace.Tracer
}

// Metrics are the collector's liveness counters. Historically these
// were bespoke atomics; they are now thin handles onto registry-backed
// counters, so `c.Metrics.Ingested.Load()` and the Prometheus series
// `adaudit_collector_ingested_total` read the same cell.
type Metrics struct {
	// Connections counts accepted WebSocket connections.
	Connections *telemetry.Counter
	// Ingested counts impressions committed to the store.
	Ingested *telemetry.Counter
	// Rejected counts all rejects regardless of class: connections
	// dropped before a valid payload, store-insert failures, bad
	// conversions. Per-class counts are on the registry under
	// adaudit_collector_rejects_total{class=...}.
	Rejected *telemetry.Counter
	// Events counts interaction updates received.
	Events *telemetry.Counter
	// Conversions counts conversion-pixel records committed.
	Conversions *telemetry.Counter
}

// Reject classes used for adaudit_collector_rejects_total{class=...}.
// Decode/handshake failures and store-insert failures are different
// operational signals: the former blames the peer (or the network), the
// latter blames the collector's own pipeline.
const (
	RejectHandshake    = "handshake"      // first message missing, late, or not a data frame
	RejectDecode       = "decode"         // payload failed to parse
	RejectPayload      = "payload"        // payload parsed but unusable (bad page URL)
	RejectInsert       = "insert"         // store refused the record
	RejectPeerAddr     = "peer-addr"      // unresolvable remote address
	RejectUpgrade      = "upgrade"        // HTTP → WebSocket upgrade failed
	RejectConvDecode   = "conv-decode"    // conversion query string failed to parse
	RejectConvValidate = "conv-validate"  // conversion payload incomplete
	RejectConvInsert   = "conv-insert"    // store refused the conversion
	RejectConvPeerAddr = "conv-peer-addr" // unresolvable pixel peer address
	RejectTrunkAuth    = "trunk-auth"     // gateway presented a bad trunk token
	RejectTrunkProto   = "trunk-proto"    // malformed trunk frame or batch
)

// Session close reasons used for
// adaudit_collector_sessions_closed_total{reason=...}.
const (
	ClosePeer        = "peer-close"        // clean WebSocket close from the beacon
	CloseError       = "error"             // read error / TCP reset
	CloseExposureCap = "exposure-cap"      // MaxExposure fired
	CloseKeepAlive   = "keepalive-timeout" // peer stopped answering pings
	CloseDrain       = "drain"             // collector shutdown drained the session
)

// pingWriteTimeout bounds a keepalive ping's write so a stalled peer
// cannot park the ping goroutine on a full TCP window.
const pingWriteTimeout = 5 * time.Second

// testSessionHook, when non-nil, runs inside runSession right after the
// payload decodes — the seam session-panic tests use to blow up a live
// session deterministically.
var testSessionHook func(p beacon.Payload)

// sampleInterval is the stage-timing sampling rate on the direct ingest
// path (power of two): a clock read costs tens of nanoseconds, so
// timing every enrich stage would dominate the telemetry budget at the
// paper's 160K-impression replay rate. Ticks 1, 1+sampleInterval, ...
// are measured — the first ingest always lands in the histogram.
// Counters are never sampled; only stage latency is. The per-session
// timings (upgrade, decode) stay unsampled: they are amortised over a
// whole WebSocket connection.
const sampleInterval = 8

// collectorTelemetry bundles the registry-backed instruments beyond the
// legacy Metrics counters. All fields are nil-safe; enabled gates the
// clock reads so DisableTelemetry removes the hot-path cost entirely.
type collectorTelemetry struct {
	enabled         bool
	rejects         *telemetry.CounterVec
	sessionsActive  *telemetry.Gauge
	sessionsClosed  *telemetry.CounterVec
	droppedShutdown *telemetry.Counter
	pingFailures    *telemetry.Counter
	sheds           *telemetry.Counter
	panics          *telemetry.Counter
	dedupHits       *telemetry.Counter
	partialCommits  *telemetry.Counter
	trunksActive    *telemetry.Gauge
	trunkFrames     *telemetry.CounterVec
	trunkDuplicates *telemetry.Counter
	exposure        *telemetry.Histogram
	upgrade         *telemetry.Histogram
	decode          *telemetry.Histogram
	enrich          *telemetry.Histogram
}

// Collector terminates beacon traffic and writes impression records.
type Collector struct {
	cfg      Config
	clock    simclock.Clock
	upgrader wsproto.Upgrader
	// Metrics exposes ingest counters for health checks and tests.
	Metrics Metrics

	reg *telemetry.Registry
	tel collectorTelemetry

	// lastIngest is the unix-nano time of the last committed record
	// (impression or conversion); /healthz alarms on its age.
	lastIngest atomic.Int64

	// sampleTick selects which ingests get enrich-stage timing; see
	// sampleInterval.
	sampleTick atomic.Uint64

	// Session bookkeeping: every runSession goroutine is tracked so
	// shutdown can drain in-flight impressions instead of losing them.
	sessMu    sync.Mutex
	sessConns map[*wsproto.Conn]struct{}
	sessWG    sync.WaitGroup
	draining  atomic.Bool

	// icache holds the bounded ingest caches (interned wire strings,
	// URL → publisher, address → enrichment, user keys) that make
	// steady-state ingest allocation-free.
	icache ingestCache

	// Nonce dedup: impression nonce → store record ID, so a beacon that
	// reconnects mid-exposure merges into its original record instead of
	// double-counting. Two generations bound the memory: when the
	// current map fills, it becomes the previous one and lookups consult
	// both — a nonce is forgotten only after a full generation of other
	// traffic, far longer than any retry window.
	nonceMu   sync.Mutex
	nonceCur  map[string]int64
	noncePrev map[string]int64
	// nonceInflight marks nonces whose first insert has been claimed
	// but has not yet committed — the claim/wait handshake that makes
	// lookup-miss → insert → record atomic against a concurrent replay
	// of the same nonce. The window was always there, but group-commit
	// WAL stretches it from microseconds to a whole fsync, so a racing
	// replay waits on the claimer's channel instead of inserting a
	// duplicate record.
	nonceInflight map[string]chan struct{}

	// Trunk stream dedup: "gatewayID/streamID" of commits already
	// ingested, so a gateway replaying an unacked commit (lost ack,
	// trunk re-homing) gets an ack without a second ingest. Same
	// two-generation bound as the nonce cache. Across a collector
	// restart this cache starts empty and the nonce path catches the
	// replay instead.
	streamMu   sync.Mutex
	streamCur  map[string]struct{}
	streamPrev map[string]struct{}
}

// nonceCacheLimit is the per-generation nonce map size; two generations
// are live, so at most 2x this many nonces are remembered.
const nonceCacheLimit = 1 << 16

// New validates cfg and returns a Collector.
func New(cfg Config) (*Collector, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("collector: config requires a store")
	}
	if cfg.Anonymizer == nil {
		return nil, fmt.Errorf("collector: config requires an anonymizer")
	}
	if cfg.MaxMessageSize == 0 {
		cfg.MaxMessageSize = 16 << 10
	}
	if cfg.MaxExposure == 0 {
		cfg.MaxExposure = 30 * time.Minute
	}
	if cfg.HandshakeTimeout == 0 {
		cfg.HandshakeTimeout = 10 * time.Second
	}
	switch {
	case cfg.KeepAliveInterval == 0:
		cfg.KeepAliveInterval = 30 * time.Second
	case cfg.KeepAliveInterval < 0:
		cfg.KeepAliveInterval = 0
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	reg := cfg.Telemetry
	if cfg.DisableTelemetry {
		reg = nil
	} else if reg == nil {
		reg = telemetry.NewRegistry()
	}
	c := &Collector{
		cfg:           cfg,
		clock:         simclock.Or(cfg.Clock),
		nonceCur:      map[string]int64{},
		nonceInflight: map[string]chan struct{}{},
		streamCur:     map[string]struct{}{},
		upgrader: wsproto.Upgrader{
			MaxMessageSize: cfg.MaxMessageSize,
			// Ad beacons are cross-origin by design: the iframe origin
			// is whatever publisher the network chose. All origins pass.
			CheckOrigin: nil,
			// Accept permessage-deflate offers: individual payloads are
			// small, but browsers offer it and long-lived sessions with
			// many interaction updates benefit.
			EnableCompression: true,
		},
		reg:       reg,
		sessConns: map[*wsproto.Conn]struct{}{},
	}
	// With a nil registry these come back unregistered but functional,
	// so the Metrics field API never breaks.
	c.Metrics = Metrics{
		Connections: reg.Counter("adaudit_collector_connections_total",
			"WebSocket beacon connections accepted.", nil),
		Ingested: reg.Counter("adaudit_collector_ingested_total",
			"Impressions committed to the store.", nil),
		Rejected: reg.Counter("adaudit_collector_rejected_total",
			"Rejects across all classes (see adaudit_collector_rejects_total).", nil),
		Events: reg.Counter("adaudit_collector_events_total",
			"Interaction updates received.", nil),
		Conversions: reg.Counter("adaudit_collector_conversions_total",
			"Conversion-pixel records committed.", nil),
	}
	if reg != nil {
		c.tel = collectorTelemetry{
			enabled: true,
			rejects: reg.CounterVec("adaudit_collector_rejects_total",
				"Rejects by failure class.", "class"),
			sessionsActive: reg.Gauge("adaudit_collector_sessions_active",
				"Beacon sessions currently open.", nil),
			sessionsClosed: reg.CounterVec("adaudit_collector_sessions_closed_total",
				"Beacon sessions ended, by close reason.", "reason"),
			droppedShutdown: reg.Counter("adaudit_collector_sessions_dropped_shutdown_total",
				"Sessions still open when the shutdown grace period expired.", nil),
			pingFailures: reg.Counter("adaudit_collector_keepalive_failures_total",
				"Keepalive pings that could not be written.", nil),
			sheds: reg.Counter("adaudit_collector_sheds_total",
				"Beacon requests refused with 503 at the session cap.", nil),
			panics: reg.Counter("adaudit_collector_session_panics_total",
				"Beacon session goroutines recovered from a panic.", nil),
			dedupHits: reg.Counter("adaudit_collector_dedup_hits_total",
				"Reconnected sessions merged into their original impression by nonce.", nil),
			partialCommits: reg.Counter("adaudit_collector_partial_commits_total",
				"Impressions committed from sessions that ended abnormally.", nil),
			trunksActive: reg.Gauge("adaudit_collector_trunks_active",
				"Gateway trunk connections currently open.", nil),
			trunkFrames: reg.CounterVec("adaudit_collector_trunk_frames_total",
				"Trunk frames received from gateways, by frame type.", "type"),
			trunkDuplicates: reg.Counter("adaudit_collector_trunk_duplicates_total",
				"Replayed trunk commits deduplicated by stream ID.", nil),
			exposure: reg.Histogram("adaudit_collector_exposure_seconds",
				"Measured ad-exposure durations (connection lifetimes).",
				telemetry.ExposureBuckets(), nil),
			upgrade: reg.Histogram("adaudit_collector_upgrade_seconds",
				"HTTP → WebSocket upgrade latency.",
				telemetry.LatencyBuckets(), nil),
			decode: reg.Histogram("adaudit_collector_decode_seconds",
				"Beacon payload decode latency.",
				telemetry.LatencyBuckets(), nil),
			enrich: reg.Histogram("adaudit_collector_enrich_seconds",
				"IP metadata enrichment latency (LPM lookup, fraud cascade, pseudonymisation).",
				telemetry.LatencyBuckets(), nil),
		}
		cfg.Store.Instrument(reg)
		cfg.Tracer.Recorder().Instrument(reg)
	}
	// A store recovered from a snapshot + WAL may already hold nonced
	// impressions whose beacons could still be retrying; remember them so
	// a post-restart reconnect merges instead of duplicating.
	cfg.Store.ForEach(func(im store.Impression) bool {
		if im.Nonce != "" {
			c.nonceRecord(im.Nonce, im.ID)
		}
		return true
	})
	return c, nil
}

// nonceLookup returns the store ID previously recorded for nonce.
func (c *Collector) nonceLookup(nonce string) (int64, bool) {
	c.nonceMu.Lock()
	defer c.nonceMu.Unlock()
	if id, ok := c.nonceCur[nonce]; ok {
		return id, true
	}
	id, ok := c.noncePrev[nonce]
	return id, ok
}

// nonceRecord remembers nonce → id, rotating generations at the cap,
// and releases any in-flight claim so racing replays of the same nonce
// re-check and take the merge path.
func (c *Collector) nonceRecord(nonce string, id int64) {
	c.nonceMu.Lock()
	defer c.nonceMu.Unlock()
	if len(c.nonceCur) >= nonceCacheLimit {
		c.noncePrev = c.nonceCur
		c.nonceCur = make(map[string]int64, nonceCacheLimit/4)
	}
	c.nonceCur[nonce] = id
	if ch, ok := c.nonceInflight[nonce]; ok {
		delete(c.nonceInflight, nonce)
		close(ch)
	}
}

// nonceClaim atomically resolves what an ingest holding this nonce
// should do: merge into id (ok), wait for a concurrent first insert of
// the same nonce to commit (wait non-nil — receive, then re-claim), or
// proceed as the claimed first insert (ok false, wait nil; the caller
// MUST follow with nonceRecord on success or nonceRelease on failure).
func (c *Collector) nonceClaim(nonce string) (id int64, ok bool, wait <-chan struct{}) {
	c.nonceMu.Lock()
	defer c.nonceMu.Unlock()
	if id, ok := c.nonceCur[nonce]; ok {
		return id, true, nil
	}
	if id, ok := c.noncePrev[nonce]; ok {
		return id, true, nil
	}
	if ch, inflight := c.nonceInflight[nonce]; inflight {
		return 0, false, ch
	}
	c.nonceInflight[nonce] = make(chan struct{})
	return 0, false, nil
}

// nonceRelease abandons a claim whose insert failed, waking waiters to
// re-claim (the next one becomes the first insert).
func (c *Collector) nonceRelease(nonce string) {
	c.nonceMu.Lock()
	defer c.nonceMu.Unlock()
	if ch, ok := c.nonceInflight[nonce]; ok {
		delete(c.nonceInflight, nonce)
		close(ch)
	}
}

// Telemetry returns the collector's metrics registry (nil when built
// with DisableTelemetry).
func (c *Collector) Telemetry() *telemetry.Registry { return c.reg }

// Tracer returns the collector's pipeline tracer (nil when tracing is
// disabled).
func (c *Collector) Tracer() *trace.Tracer { return c.cfg.Tracer }

// LastIngest returns the commit time of the most recent record, or the
// zero time if nothing has been ingested yet.
func (c *Collector) LastIngest() time.Time {
	n := c.lastIngest.Load()
	if n == 0 {
		return time.Time{}
	}
	return time.Unix(0, n)
}

// SessionCount returns the number of live beacon sessions.
func (c *Collector) SessionCount() int {
	c.sessMu.Lock()
	defer c.sessMu.Unlock()
	return len(c.sessConns)
}

// reject records one reject of the given class on both the legacy
// aggregate counter and the per-class series.
func (c *Collector) reject(class string) {
	c.Metrics.Rejected.Add(1)
	c.tel.rejects.With(class).Inc()
}

// Observation is one impression as seen at the network edge, before
// enrichment: the decoded payload plus the connection-derived facts.
type Observation struct {
	Payload beacon.Payload
	// Publisher, when non-empty, is the pre-extracted publisher for
	// Payload.PageURL — a fast path for callers that already resolved
	// it. Empty means Ingest derives it (through the collector's URL
	// cache) from the page URL.
	Publisher string
	// RemoteIP is the peer address of the beacon connection.
	RemoteIP netip.Addr
	// ConnectedAt is the connection-establishment time — the paper's
	// impression timestamp.
	ConnectedAt time.Time
	// Exposure is the connection duration.
	Exposure time.Duration
	// Trace is the impression's pipeline trace (nil when unsampled).
	// The WebSocket path adopts it from the payload at decode time;
	// direct callers may start one themselves. Ingest threads it
	// through enrichment and the store.
	Trace *trace.Trace
}

// adoptTrace materialises a trace for payload-borne trace context —
// the fallback for direct-path observations whose caller did not
// adopt one itself. Returns nil for untraced payloads.
func (c *Collector) adoptTrace(p beacon.Payload) *trace.Trace {
	if c.cfg.Tracer == nil || p.TraceID == "" {
		return nil
	}
	id, err := trace.ParseID(p.TraceID)
	if err != nil {
		return nil
	}
	return c.cfg.Tracer.Adopt(id, p.TraceSent)
}

// Ingest enriches obs and commits it to the store. This is the single
// funnel both the WebSocket path and the simulator's direct path use.
func (c *Collector) Ingest(obs Observation) (int64, error) {
	tr := obs.Trace
	if tr == nil {
		tr = c.adoptTrace(obs.Payload)
	}
	pub := obs.Publisher
	if pub == "" {
		var err error
		pub, err = c.publisherFor(obs.Payload)
		if err != nil {
			c.reject(RejectPayload)
			tr.Truncate("reject:" + RejectPayload)
			return 0, fmt.Errorf("collector: extracting publisher: %w", err)
		}
	}
	tr.Annotate(obs.Payload.Nonce, obs.Payload.CampaignID)
	if obs.Exposure < 0 {
		obs.Exposure = 0
	}
	if obs.Exposure > c.cfg.MaxExposure {
		obs.Exposure = c.cfg.MaxExposure
	}

	moves, clicks := 0, 0
	visMeasured := false
	maxVis := 0.0
	for _, e := range obs.Payload.Events {
		switch e.Kind {
		case beacon.EventMouseMove:
			moves++
		case beacon.EventClick:
			clicks++
		case beacon.EventVisibility:
			visMeasured = true
			if e.Fraction > maxVis {
				maxVis = e.Fraction
			}
		}
	}

	// A reconnected beacon resends its payload under the original nonce;
	// fold the resumed connection into the existing record (the paper
	// measures exposure as total connection time) instead of counting a
	// second impression. Enrichment is skipped: the record already
	// carries the ISP/country/fraud verdict from the first connection.
	// The claim/wait handshake makes lookup-miss → insert → record atomic
	// against a concurrent replay of the same nonce: the race window was
	// always there, but group-commit WAL stretches the insert from
	// microseconds to a whole fsync, so a racing replay now waits for the
	// first insert to commit and then takes the merge path.
	if nonce := obs.Payload.Nonce; nonce != "" {
		for {
			id, ok, wait := c.nonceClaim(nonce)
			if ok {
				err := c.cfg.Store.MergeTraced(id, store.Continuation{
					Exposure:           obs.Exposure,
					MouseMoves:         moves,
					Clicks:             clicks,
					VisibilityMeasured: visMeasured,
					MaxVisibleFraction: maxVis,
				}, tr)
				if err != nil {
					c.reject(RejectInsert)
					return 0, fmt.Errorf("collector: merging resumed impression: %w", err)
				}
				c.tel.dedupHits.Inc()
				return id, nil
			}
			if wait == nil {
				break // claimed: this ingest is the nonce's first insert
			}
			<-wait
		}
	}

	var enrichStart time.Time
	sampled := c.tel.enabled && c.sampleTick.Add(1)&(sampleInterval-1) == 1
	if sampled {
		enrichStart = c.clock.Now()
	}
	enr := c.enrichFor(obs.RemoteIP)
	if sampled {
		c.tel.enrich.ObserveDuration(c.clock.Since(enrichStart))
		if id := tr.ID(); id != 0 {
			c.tel.enrich.SetExemplar(uint64(id))
		}
	}
	tr.Stage(trace.StageEnrich)

	im := store.Impression{
		CampaignID:  obs.Payload.CampaignID,
		CreativeID:  obs.Payload.CreativeID,
		Publisher:   pub,
		PageURL:     obs.Payload.PageURL,
		UserAgent:   obs.Payload.UserAgent,
		IPPseudonym: enr.pseud,
		UserKey:     c.userKeyFor(enr.pseud, obs.Payload.UserAgent),
		ISP:         enr.isp,
		Country:     enr.country,
		DataCenter:  enr.dataCenter,
		Nonce:       obs.Payload.Nonce,
		Timestamp:   obs.ConnectedAt,
		Exposure:    obs.Exposure,
		MouseMoves:  moves,
		Clicks:      clicks,

		VisibilityMeasured: visMeasured,
		MaxVisibleFraction: maxVis,
	}
	id, err := c.cfg.Store.InsertTraced(im, tr)
	if err != nil {
		if im.Nonce != "" {
			c.nonceRelease(im.Nonce)
		}
		c.reject(RejectInsert)
		return 0, fmt.Errorf("collector: storing impression: %w", err)
	}
	c.Metrics.Ingested.Add(1)
	if im.Nonce != "" {
		c.nonceRecord(im.Nonce, id)
	}
	if sampled {
		// Reusing enrichStart keeps the unsampled path free of clock
		// reads; the server's health probe covers the gap between
		// samples by watching the ingest counters change (see
		// Server.lastIngestAge).
		c.lastIngest.Store(enrichStart.UnixNano())
	}
	return id, nil
}

// payloadPool recycles decode targets for the binary direct-ingest
// path: IngestBinary borrows a Payload, decodes into it (reusing its
// Events capacity), ingests, and returns it. Safe because the store
// never retains the Events slice and every retained string is either
// interned or freshly copied.
var payloadPool = sync.Pool{New: func() any { return new(beacon.Payload) }}

// IngestBinary decodes one binary impression message (see
// beacon.DecodeBinary for the format) and ingests it through the same
// funnel as Ingest. The decode goes through a pooled payload and the
// collector's intern tables, so the steady-state path — hot campaign,
// known URL, seen address — allocates nothing. This is the
// direct-path twin of a binary WebSocket session, used by the
// simulator's binary-wire replay.
func (c *Collector) IngestBinary(raw []byte, remoteIP netip.Addr, connectedAt time.Time, exposure time.Duration) (int64, error) {
	p := payloadPool.Get().(*beacon.Payload)
	defer payloadPool.Put(p)
	if err := c.icache.decodeBinary(p, raw); err != nil {
		c.reject(RejectDecode)
		return 0, fmt.Errorf("collector: decoding binary payload: %w", err)
	}
	return c.Ingest(Observation{
		Payload:     *p,
		RemoteIP:    remoteIP,
		ConnectedAt: connectedAt,
		Exposure:    exposure,
	})
}

// ServeHTTP upgrades the request to a WebSocket and runs the beacon
// session protocol: the first data message is the impression payload —
// a text frame carries the JavaScript beacon's query-string encoding, a
// binary frame the length-prefixed binary encoding — subsequent event
// messages are interaction updates on the same wire, and the connection
// lifetime measures exposure. The impression is committed when the
// connection ends (or the exposure cap fires).
func (c *Collector) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if max := c.cfg.MaxSessions; max > 0 && c.SessionCount() >= max {
		// Shed before the upgrade: a plain 503 costs a few hundred bytes
		// and no goroutine, and a well-behaved beacon retries with
		// backoff — bounded refusals instead of unbounded sockets.
		c.tel.sheds.Inc()
		w.Header().Set("Retry-After", "1")
		http.Error(w, "collector at session capacity", http.StatusServiceUnavailable)
		return
	}
	var upgradeStart time.Time
	if c.tel.enabled {
		upgradeStart = c.clock.Now()
	}
	conn, err := c.upgrader.Upgrade(w, r)
	if err != nil {
		c.tel.rejects.With(RejectUpgrade).Inc()
		c.cfg.Logger.Debug("collector: handshake rejected", "err", err, "remote", r.RemoteAddr)
		return
	}
	if c.tel.enabled {
		c.tel.upgrade.ObserveDuration(c.clock.Since(upgradeStart))
	}
	c.Metrics.Connections.Add(1)
	if c.draining.Load() {
		// The listener is gone; an upgrade that raced shutdown gets a
		// clean going-away close instead of a half-tracked session.
		_ = conn.Close(wsproto.CloseGoingAway, "collector shutting down")
		return
	}
	// Session messages are decoded (text) or copied/interned (binary)
	// before the next read, so the frame buffer can recycle.
	conn.ReuseReadBuffer()
	c.trackSession(conn)
	go func() {
		defer c.untrackSession(conn)
		// A panic in one session — a malformed frame tripping a bug, a
		// store failure mode — must cost exactly that session, not the
		// collector. The impression is lost (the paper's loss model
		// covers it); every other live session keeps measuring.
		defer func() {
			if r := recover(); r != nil {
				c.tel.panics.Inc()
				c.cfg.Logger.Error("collector: session panicked",
					"panic", r, "stack", string(debug.Stack()))
				_ = conn.Close(wsproto.CloseInternalError, "internal error")
			}
		}()
		c.runSession(conn)
	}()
}

func (c *Collector) trackSession(conn *wsproto.Conn) {
	c.sessWG.Add(1)
	c.sessMu.Lock()
	c.sessConns[conn] = struct{}{}
	c.sessMu.Unlock()
	c.tel.sessionsActive.Add(1)
}

func (c *Collector) untrackSession(conn *wsproto.Conn) {
	c.sessMu.Lock()
	delete(c.sessConns, conn)
	c.sessMu.Unlock()
	c.tel.sessionsActive.Add(-1)
	c.sessWG.Done()
}

// Drain asks every live session to commit now — each connection's read
// deadline is forced to the past, which makes its session loop fall
// through to the normal commit path — and waits up to grace for them to
// finish. It returns the number of sessions still running when the
// grace period expired (also recorded on
// adaudit_collector_sessions_dropped_shutdown_total); those
// impressions die with the process, the paper's §3.1 loss model.
func (c *Collector) Drain(grace time.Duration) int {
	c.draining.Store(true)
	c.sessMu.Lock()
	for conn := range c.sessConns {
		_ = conn.SetReadDeadline(c.clock.Now())
	}
	c.sessMu.Unlock()

	done := make(chan struct{})
	go func() {
		c.sessWG.Wait()
		close(done)
	}()
	timer := c.clock.NewTimer(grace)
	defer timer.Stop()
	select {
	case <-done:
		return 0
	case <-timer.C():
		dropped := c.SessionCount()
		if dropped > 0 {
			c.tel.droppedShutdown.Add(int64(dropped))
			c.cfg.Logger.Warn("collector: shutdown grace expired with sessions still open",
				"dropped", dropped, "grace", grace)
		}
		return dropped
	}
}

func (c *Collector) runSession(conn *wsproto.Conn) {
	defer conn.Close(wsproto.CloseNormal, "")

	remote, err := remoteAddr(conn.RemoteAddr())
	if err != nil {
		c.reject(RejectPeerAddr)
		c.cfg.Logger.Warn("collector: unresolvable peer address", "err", err)
		return
	}
	// The impression timestamp and every session deadline come from the
	// collector's clock, not conn.Established(): on the real clock the
	// two agree to microseconds (runSession starts right after the
	// upgrade), and on a virtual clock the whole session-timing path —
	// exposure, keepalive, hard stop — becomes deterministic.
	connectedAt := c.clock.Now()

	// The beacon must identify itself promptly. The opcode of this
	// first message negotiates the session's wire: text selects the
	// JavaScript beacon's query-string encoding, binary the
	// length-prefixed binary encoding.
	_ = conn.SetReadDeadline(connectedAt.Add(c.cfg.HandshakeTimeout))
	op, msg, err := conn.ReadMessage()
	if err != nil || !op.IsData() {
		c.reject(RejectHandshake)
		return
	}
	var decodeStart time.Time
	if c.tel.enabled {
		decodeStart = c.clock.Now()
	}
	var payload beacon.Payload
	if op == wsproto.OpBinary {
		payload, err = beacon.DecodeBinary(msg)
	} else {
		payload, err = beacon.Decode(string(msg))
	}
	if c.tel.enabled {
		c.tel.decode.ObserveDuration(c.clock.Since(decodeStart))
	}
	if err != nil {
		c.reject(RejectDecode)
		c.cfg.Logger.Debug("collector: bad payload", "err", err, "remote", remote)
		_ = conn.Close(wsproto.ClosePolicyViolation, "bad payload")
		return
	}
	// Adopt payload-borne trace context now, while the frame is fresh:
	// the wire_recv offset then measures actual transit, not transit
	// plus the session's whole exposure. The trace stays active for
	// the session's lifetime; the server's janitor sweeps traces whose
	// session leg died without committing.
	tr := c.adoptTrace(payload)
	tr.Stage(trace.StageDecode)
	tr.Annotate(payload.Nonce, payload.CampaignID)
	ctx := trace.ContextWithID(context.Background(), tr.ID())
	if tr != nil && c.tel.enabled {
		c.tel.decode.SetExemplar(uint64(tr.ID()))
	}
	if testSessionHook != nil {
		testSessionHook(payload)
	}

	// Stream interaction updates until disconnect or exposure cap. With
	// keep-alive enabled the read deadline renews on every pong, so a
	// dead peer is detected within two intervals instead of holding the
	// socket until the exposure cap.
	hardStop := connectedAt.Add(c.cfg.MaxExposure)
	renewDeadline := func() {
		if c.draining.Load() {
			// Drain forced the deadline to the past; a racing pong must
			// not push it back out.
			return
		}
		d := hardStop
		if ka := c.cfg.KeepAliveInterval; ka > 0 {
			if soft := c.clock.Now().Add(2 * ka); soft.Before(d) {
				d = soft
			}
		}
		_ = conn.SetReadDeadline(d)
	}
	conn.SetPongHandler(func([]byte) { renewDeadline() })
	renewDeadline()
	if ka := c.cfg.KeepAliveInterval; ka > 0 {
		stopPings := make(chan struct{})
		defer close(stopPings)
		go func() {
			t := c.clock.NewTicker(ka)
			defer t.Stop()
			for {
				select {
				case <-stopPings:
					return
				case <-t.C():
					// Bound the write so a peer with a full TCP window
					// (dead radio, zero-window attack) cannot park this
					// goroutine; the missed pong tears the session down.
					_ = conn.SetWriteDeadline(c.clock.Now().Add(pingWriteTimeout))
					err := conn.Ping(nil)
					_ = conn.SetWriteDeadline(time.Time{})
					if err != nil {
						c.tel.pingFailures.Inc()
						return
					}
				}
			}
		}()
	}
	closeReason := CloseError
	for {
		op, msg, err := conn.ReadMessage()
		if err != nil {
			closeReason = c.classifyClose(err, hardStop)
			break
		}
		renewDeadline()
		// Event updates are dispatched per message opcode, so a session
		// may mix wires (the negotiation only fixes the payload's).
		var e beacon.Event
		var isEvent bool
		if op == wsproto.OpBinary {
			e, isEvent, err = beacon.DecodeBinaryEventUpdate(msg)
		} else {
			e, isEvent, err = beacon.DecodeEventUpdate(string(msg))
		}
		if err != nil {
			c.cfg.Logger.DebugContext(ctx, "collector: bad event update", "err", err, "remote", remote)
			continue
		}
		if isEvent {
			c.Metrics.Events.Add(1)
			payload.Events = append(payload.Events, e)
		}
	}
	c.tel.sessionsClosed.With(closeReason).Inc()

	exposure := c.clock.Since(connectedAt)
	c.tel.exposure.ObserveDuration(exposure)
	if _, err := c.Ingest(Observation{
		Payload:     payload,
		RemoteIP:    remote,
		ConnectedAt: connectedAt,
		Exposure:    exposure,
		Trace:       tr,
	}); err != nil {
		c.cfg.Logger.WarnContext(ctx, "collector: ingest failed", "err", err, "remote", remote)
	} else if closeReason != ClosePeer {
		// The session ended abnormally (reset, keepalive timeout,
		// exposure cap, drain) but its exposure up to that moment still
		// committed — the measurement the paper derives server-side
		// precisely so a dying client cannot lose it.
		c.tel.partialCommits.Inc()
	}
}

// classifyClose maps a session-ending read error onto a close-reason
// label.
func (c *Collector) classifyClose(err error, hardStop time.Time) string {
	var ce *wsproto.CloseError
	if errors.As(err, &ce) {
		return ClosePeer
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		switch {
		case c.draining.Load():
			return CloseDrain
		case !c.clock.Now().Before(hardStop):
			return CloseExposureCap
		default:
			return CloseKeepAlive
		}
	}
	if c.draining.Load() {
		return CloseDrain
	}
	return CloseError
}

func remoteAddr(a net.Addr) (netip.Addr, error) {
	ap, err := netip.ParseAddrPort(a.String())
	if err != nil {
		return netip.Addr{}, fmt.Errorf("collector: parsing remote addr %q: %w", a.String(), err)
	}
	return ap.Addr().Unmap(), nil
}

// UserKey derives the paper's user identity — the combination of IP
// (already pseudonymised) and User-Agent — as a stable opaque token.
func UserKey(ipPseudonym, userAgent string) string {
	return ipPseudonym + "|" + userAgent
}
