package collector

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"adaudit/internal/audit"
	"adaudit/internal/beacon"
	"adaudit/internal/ipmeta"
	"adaudit/internal/publisher"
	"adaudit/internal/store"
	"adaudit/internal/streamaudit"
	"adaudit/internal/trace"
)

// tracedTestServer assembles the full traced pipeline: a WAL-backed
// store, a sample-everything tracer, the collector, a streaming-audit
// engine, and the HTTP server with the flight-recorder API mounted.
func tracedTestServer(t *testing.T) (*Server, *trace.Tracer, *streamaudit.Engine) {
	t.Helper()
	st := store.New()
	wal, err := store.OpenWAL(filepath.Join(t.TempDir(), "wal.jsonl"), store.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { wal.Close() })
	st.AttachWAL(wal)
	uni, err := ipmeta.NewUniverse(ipmeta.UniverseConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tracer := trace.NewTracer(trace.NewRecorder(64), 1)
	c, err := New(Config{
		Store:      st,
		IPDB:       uni.DB,
		Classifier: &ipmeta.Classifier{DB: uni.DB, DenyList: uni.DenyList, ManualVerify: uni.ManualVerify},
		Anonymizer: ipmeta.NewAnonymizer([]byte("test-secret")),
		Tracer:     tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	pubs, err := publisher.NewUniverse(publisher.Config{Seed: 5, NumPublishers: 60})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := streamaudit.New(streamaudit.Config{
		Store:     st,
		Meta:      audit.UniverseMetadata{Universe: pubs},
		Telemetry: c.Telemetry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(c, "127.0.0.1:0", WithLiveAudit(eng))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
	return srv, tracer, eng
}

// TestTraceEndToEnd is the tentpole acceptance test: one sampled
// impression sent over a real WebSocket produces one causal trace
// spanning beacon_send → wire_recv → decode → enrich → wal_append →
// commit → feed_publish → stream_apply, retrievable with per-stage
// offsets from /api/trace/{id}.
func TestTraceEndToEnd(t *testing.T) {
	srv, tracer, eng := tracedTestServer(t)
	base := fmt.Sprintf("http://%s", srv.Addr())

	client := &beacon.Client{CollectorURL: srv.BeaconURL(), Tracer: tracer}
	p := beacon.Payload{
		CampaignID: "Football-010",
		CreativeID: "cr1",
		PageURL:    "http://futbolhoy999.es/cronica",
		UserAgent:  "Mozilla/5.0 Chrome/49.0",
		Nonce:      beacon.NewNonce(),
	}
	ctx := context.Background()
	sess, err := client.Open(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.SendEvent(beacon.Event{Kind: beacon.EventClick, At: 20 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}

	// The trace finishes when the engine applies the feed event; poll
	// the flight recorder for the completed trace.
	var snap trace.Snapshot
	deadline := time.Now().Add(5 * time.Second)
	for {
		if !eng.WaitCaughtUp(time.Second) && time.Now().After(deadline) {
			t.Fatal("engine never caught up")
		}
		var recent struct {
			Traces []trace.Snapshot `json:"traces"`
		}
		mustGetJSON(t, base+"/api/trace/recent", &recent)
		if len(recent.Traces) > 0 && recent.Traces[0].Done {
			snap = recent.Traces[0]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no finished trace in flight recorder (got %+v)", recent)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Fetch it again by ID — the operator's drill-down path.
	var byID trace.Snapshot
	mustGetJSON(t, base+"/api/trace/"+snap.IDHex, &byID)
	if byID.IDHex != snap.IDHex {
		t.Fatalf("trace by id returned %q, want %q", byID.IDHex, snap.IDHex)
	}
	if byID.Truncated != "" {
		t.Fatalf("trace unexpectedly truncated: %q", byID.Truncated)
	}

	want := []string{
		trace.StageBeaconSend, trace.StageWireRecv, trace.StageDecode,
		trace.StageEnrich, trace.StageWAL, trace.StageCommit,
		trace.StageFeed, trace.StageApply,
	}
	if len(byID.Stages) != len(want) {
		t.Fatalf("trace has %d stages %v, want %d", len(byID.Stages), stageNames(byID), len(want))
	}
	prev := time.Duration(-1)
	for i, st := range byID.Stages {
		if st.Name != want[i] {
			t.Fatalf("stage %d = %q, want %q (all: %v)", i, st.Name, want[i], stageNames(byID))
		}
		// Stamps are appended in causal order; within-pipeline offsets
		// must never decrease. (beacon_send/wire_recv come from the
		// adopted wall-clock context and are clamped non-negative.)
		if st.Offset < prev && i > 2 {
			t.Fatalf("stage %q offset %v went backwards from %v", st.Name, st.Offset, prev)
		}
		prev = st.Offset
	}
	if byID.Nonce == "" || byID.Campaign != "Football-010" {
		t.Fatalf("trace annotations missing: nonce=%q campaign=%q", byID.Nonce, byID.Campaign)
	}

	// The Chrome/Perfetto export must include the trace as a complete
	// slice sequence.
	resp, err := http.Get(base + "/api/trace/export")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var chrome struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &chrome); err != nil {
		t.Fatalf("export is not JSON: %v\n%s", err, body)
	}
	if len(chrome.TraceEvents) < len(want) {
		t.Fatalf("export has %d events, want >= %d", len(chrome.TraceEvents), len(want))
	}

	// The freshness SLO histogram observed the commit→apply hop, and
	// the insert-latency histogram carries the trace as its exemplar.
	metrics := getText(t, base+"/metrics")
	if !strings.Contains(metrics, "adaudit_pipeline_commit_to_apply_seconds") {
		t.Fatal("metrics missing adaudit_pipeline_commit_to_apply_seconds")
	}
	if !strings.Contains(metrics, "# EXEMPLAR") || !strings.Contains(metrics, "trace_id=") {
		t.Fatal("metrics missing histogram exemplar annotation")
	}
}

// TestHealthzPipelineChecks exercises the new /healthz surface: feed
// drops, WAL sync lag and audit staleness appear with the built-in
// checks passing on a healthy pipeline.
func TestHealthzPipelineChecks(t *testing.T) {
	srv, _, eng := tracedTestServer(t)
	base := fmt.Sprintf("http://%s", srv.Addr())
	if !eng.WaitCaughtUp(5 * time.Second) {
		t.Fatal("engine did not catch up")
	}
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("healthz = %d: %s", resp.StatusCode, body)
	}
	var st HealthStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.FeedDrops != 0 {
		t.Fatalf("feed drops = %d, want 0", st.FeedDrops)
	}
	if st.AuditStalenessSeconds < 0 {
		t.Fatalf("audit staleness = %v, want >= 0 with a live engine", st.AuditStalenessSeconds)
	}
	for _, check := range []string{"feed_subscribers", "wal_sync", "audit_freshness"} {
		if got := st.Checks[check]; got != "ok" {
			t.Fatalf("check %q = %q, want ok (all: %v)", check, got, st.Checks)
		}
	}
}

func stageNames(s trace.Snapshot) []string {
	out := make([]string, len(s.Stages))
	for i, st := range s.Stages {
		out[i] = st.Name
	}
	return out
}

// mustGetJSON wraps queryapi_test's getJSON, failing on any non-200.
func mustGetJSON(t *testing.T, url string, v any) {
	t.Helper()
	if code := getJSON(t, url, v); code != http.StatusOK {
		t.Fatalf("GET %s = %d", url, code)
	}
}

func getText(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return string(body)
}
