package collector

import (
	"context"
	"fmt"
	"net/netip"
	"testing"
	"time"

	"adaudit/internal/beacon"
	"adaudit/internal/ipmeta"
	"adaudit/internal/store"
	"adaudit/internal/trace"
)

func benchCollector(b *testing.B, disableTelemetry bool) *Collector {
	b.Helper()
	uni, err := ipmeta.NewUniverse(ipmeta.UniverseConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	c, err := New(Config{
		Store:            store.New(),
		IPDB:             uni.DB,
		Classifier:       &ipmeta.Classifier{DB: uni.DB, DenyList: uni.DenyList, ManualVerify: uni.ManualVerify},
		Anonymizer:       ipmeta.NewAnonymizer([]byte("bench")),
		DisableTelemetry: disableTelemetry,
	})
	if err != nil {
		b.Fatal(err)
	}
	return c
}

func benchIngest(b *testing.B, c *Collector) {
	b.Helper()
	base := time.Date(2016, 3, 29, 0, 0, 0, 0, time.UTC)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obs := Observation{
			Payload: beacon.Payload{
				CampaignID: "bench",
				CreativeID: "cr",
				PageURL:    fmt.Sprintf("http://pub%d.es/p", i%1000),
				UserAgent:  "Mozilla/5.0 Chrome/49.0",
			},
			RemoteIP:    netip.AddrFrom4([4]byte{10, byte(i >> 16), byte(i >> 8), byte(i%250 + 1)}),
			ConnectedAt: base.Add(time.Duration(i) * time.Second),
			Exposure:    3 * time.Second,
		}
		if _, err := c.Ingest(obs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCollectorIngest measures the instrumented ingest funnel —
// the production configuration, telemetry on. Compare against
// BenchmarkCollectorIngestUninstrumented to see the observability
// overhead; the budget is <5%.
func BenchmarkCollectorIngest(b *testing.B) {
	benchIngest(b, benchCollector(b, false))
}

// BenchmarkCollectorIngestUninstrumented is the same funnel with
// DisableTelemetry set: no registry, no histograms, no clock reads.
func BenchmarkCollectorIngestUninstrumented(b *testing.B) {
	benchIngest(b, benchCollector(b, true))
}

// BenchmarkIngest measures the direct ingest funnel: payload →
// enrichment (LPM lookup, classification, pseudonymisation) → store.
func BenchmarkIngest(b *testing.B) {
	benchIngest(b, benchCollector(b, false))
}

// benchTracedCollector is benchCollector with a flight recorder and
// tracer attached — the configuration the trace-overhead gate
// compares against the tracer-less funnel. Telemetry stays off so the
// comparison isolates the tracing cost.
func benchTracedCollector(b *testing.B) *Collector {
	b.Helper()
	uni, err := ipmeta.NewUniverse(ipmeta.UniverseConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	c, err := New(Config{
		Store:            store.New(),
		IPDB:             uni.DB,
		Classifier:       &ipmeta.Classifier{DB: uni.DB, DenyList: uni.DenyList, ManualVerify: uni.ManualVerify},
		Anonymizer:       ipmeta.NewAnonymizer([]byte("bench")),
		DisableTelemetry: true,
		Tracer:           trace.NewTracer(trace.NewRecorder(trace.DefaultCapacity), 1),
	})
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkIngestUntraced measures the ingest funnel with a tracer
// attached but no trace context on any payload — the cost every
// unsampled impression pays when tracing is enabled. The perf gate
// (scripts/bench_compare.sh) holds this within 5% of
// BenchmarkCollectorIngestUninstrumented, the tracer-less funnel.
func BenchmarkIngestUntraced(b *testing.B) {
	benchIngest(b, benchTracedCollector(b))
}

// BenchmarkIngestTraced measures the fully traced funnel: every
// payload carries wire trace context, so each iteration adopts,
// stages, commits and finishes one flight-recorder trace.
func BenchmarkIngestTraced(b *testing.B) {
	c := benchTracedCollector(b)
	base := time.Date(2016, 3, 29, 0, 0, 0, 0, time.UTC)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obs := Observation{
			Payload: beacon.Payload{
				CampaignID: "bench",
				CreativeID: "cr",
				PageURL:    fmt.Sprintf("http://pub%d.es/p", i%1000),
				UserAgent:  "Mozilla/5.0 Chrome/49.0",
				TraceID:    trace.NextID().String(),
				TraceSent:  base.UnixNano(),
			},
			RemoteIP:    netip.AddrFrom4([4]byte{10, byte(i >> 16), byte(i >> 8), byte(i%250 + 1)}),
			ConnectedAt: base.Add(time.Duration(i) * time.Second),
			Exposure:    3 * time.Second,
		}
		if _, err := c.Ingest(obs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWebSocketSession measures the full network path: dial,
// handshake, payload frame, disconnect, commit — one real impression
// per iteration.
func BenchmarkWebSocketSession(b *testing.B) {
	c := benchCollector(b, false)
	srv, err := NewServer(c, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go srv.Serve(ctx)

	client := &beacon.Client{CollectorURL: srv.BeaconURL()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := beacon.Payload{
			CampaignID: "bench",
			CreativeID: "cr",
			PageURL:    "http://pub.es/p",
			UserAgent:  "Mozilla/5.0 Chrome/49.0",
		}
		sess, err := client.Open(ctx, p)
		if err != nil {
			b.Fatal(err)
		}
		if err := sess.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	// Wait for the async commits so the bench accounts real work.
	deadline := time.Now().Add(10 * time.Second)
	for c.Metrics.Ingested.Load() < int64(b.N) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
}

// BenchmarkIngestBinary measures the zero-copy binary ingest path:
// pre-encoded wire frames decoded through the pooled payload + intern
// cache into the store. Frames are encoded outside the timed loop so
// the measurement isolates decode+ingest; the steady-state budget is
// ≤1 alloc/op (scripts/bench_compare.sh gates it).
func BenchmarkIngestBinary(b *testing.B) {
	c := benchCollector(b, false)
	base := time.Date(2016, 3, 29, 0, 0, 0, 0, time.UTC)
	frames := make([][]byte, 1000)
	for i := range frames {
		frames[i] = beacon.Payload{
			CampaignID: "bench",
			CreativeID: "cr",
			PageURL:    fmt.Sprintf("http://pub%d.es/p", i),
			UserAgent:  "Mozilla/5.0 Chrome/49.0",
		}.EncodeBinary()
	}
	ips := make([]netip.Addr, 250)
	for i := range ips {
		ips[i] = netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i%250 + 1)})
	}
	// Warm the publisher/enrichment/intern caches so the loop measures
	// steady state, not first-touch misses.
	for i := 0; i < len(frames); i++ {
		if _, err := c.IngestBinary(frames[i], ips[i%len(ips)], base.Add(time.Duration(i)*time.Second), 3*time.Second); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.IngestBinary(frames[i%1000], ips[i%250], base.Add(time.Duration(i)*time.Second), 3*time.Second); err != nil {
			b.Fatal(err)
		}
	}
}
