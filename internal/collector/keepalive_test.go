package collector

import (
	"context"
	"testing"
	"time"

	"adaudit/internal/beacon"
	"adaudit/internal/ipmeta"
	"adaudit/internal/store"
	"adaudit/internal/wsproto"
)

func keepaliveCollector(t *testing.T, interval time.Duration) (*Collector, *store.Store) {
	t.Helper()
	st := store.New()
	c, err := New(Config{
		Store:             st,
		Anonymizer:        ipmeta.NewAnonymizer([]byte("ka")),
		KeepAliveInterval: interval,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, st
}

// TestKeepAliveDropsDeadPeer: a beacon that completes the handshake and
// sends its payload but then goes silent (never reads, so never pongs)
// must be dropped within ~two keep-alive intervals, not held until the
// 30-minute exposure cap.
func TestKeepAliveDropsDeadPeer(t *testing.T) {
	c, st := keepaliveCollector(t, 50*time.Millisecond)
	srv, err := NewServer(c, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go srv.Serve(ctx)

	// Dial raw (below the beacon.Client layer, which services control
	// frames like a browser would): send the payload, then go silent —
	// no reads means no pongs.
	d := &wsproto.Dialer{}
	conn, _, err := d.Dial(ctx, srv.BeaconURL())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.NetConn().Close()
	payload := beacon.Payload{
		CampaignID: "ka", CreativeID: "cr",
		PageURL: "http://pub.es/", UserAgent: "UA",
	}
	if err := conn.WriteText(payload.Encode()); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for st.Len() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if st.Len() != 1 {
		t.Fatal("dead peer's impression never committed")
	}
	im, _ := st.Get(1)
	// The session must have ended near 2 keep-alive intervals, far
	// below the exposure cap.
	if im.Exposure > 2*time.Second {
		t.Fatalf("dead peer held for %v", im.Exposure)
	}
}

// TestKeepAliveSustainsLivePeer: a beacon that keeps reading (and thus
// auto-ponging) survives well past two intervals. The interval is kept
// wide enough that scheduler jitter under -race cannot eat the
// two-interval pong window and drop the live peer spuriously.
func TestKeepAliveSustainsLivePeer(t *testing.T) {
	const interval = 100 * time.Millisecond
	c, st := keepaliveCollector(t, interval)
	srv, err := NewServer(c, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go srv.Serve(ctx)

	client := &beacon.Client{CollectorURL: srv.BeaconURL()}
	hold := 4 * interval
	err = client.Report(ctx, beacon.Payload{
		CampaignID: "ka", CreativeID: "cr",
		PageURL: "http://pub.es/", UserAgent: "UA",
	}, hold)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for st.Len() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if st.Len() != 1 {
		t.Fatal("live peer's impression never committed")
	}
	im, _ := st.Get(1)
	// The client times the hold on its own clock while the collector
	// measures exposure on the session's, so the two can disagree by a
	// few milliseconds. A keep-alive drop would have capped exposure
	// near two intervals; lived-to-the-hold is anything well beyond.
	if im.Exposure < hold-interval/2 {
		t.Fatalf("live peer dropped early: exposure %v < hold %v", im.Exposure, hold)
	}
}
