package collector

import (
	"net/http"
	"net/netip"
	"strconv"
	"time"

	"adaudit/internal/beacon"
	"adaudit/internal/trace"
	"adaudit/internal/trunk"
	"adaudit/internal/wsproto"
)

// trunkMaxMessage bounds one trunk batch message. A batch multiplexes
// many beacon payloads, so the limit is far above the per-beacon
// MaxMessageSize; 1 MiB comfortably holds the largest flush a gateway
// sends before its size threshold fires.
const trunkMaxMessage = 1 << 20

// streamCacheLimit is the per-generation trunk stream-dedup map size.
const streamCacheLimit = 1 << 16

// streamSeen reports whether the stream's commit was already ingested,
// recording it if not. One atomic check-and-record under the lock so
// two trunks replaying the same commit concurrently cannot both ingest.
func (c *Collector) streamSeen(key string) bool {
	c.streamMu.Lock()
	defer c.streamMu.Unlock()
	if _, ok := c.streamCur[key]; ok {
		return true
	}
	if _, ok := c.streamPrev[key]; ok {
		return true
	}
	if len(c.streamCur) >= streamCacheLimit {
		c.streamPrev = c.streamCur
		c.streamCur = make(map[string]struct{}, streamCacheLimit/4)
	}
	c.streamCur[key] = struct{}{}
	return false
}

// streamForget drops a stream key recorded by streamSeen — the undo for
// a commit whose ingest failed, so the gateway's replay is not
// deduplicated against an impression that never reached the store.
func (c *Collector) streamForget(key string) {
	c.streamMu.Lock()
	delete(c.streamCur, key)
	delete(c.streamPrev, key)
	c.streamMu.Unlock()
}

// ServeTrunk terminates one gateway trunk connection: a long-lived
// WebSocket multiplexing every beacon session the gateway holds, as
// batches of trunk frames. Commits are ingested through the same
// funnel as direct beacon sessions and acknowledged per stream;
// replayed commits (a gateway re-homing after a trunk failure, or
// retrying after a lost ack) are deduplicated by stream ID and acked
// without a second ingest.
func (c *Collector) ServeTrunk(w http.ResponseWriter, r *http.Request) {
	if tok := c.cfg.TrunkToken; tok != "" && r.Header.Get(trunk.TokenHeader) != tok {
		c.reject(RejectTrunkAuth)
		http.Error(w, "bad trunk token", http.StatusForbidden)
		return
	}
	up := wsproto.Upgrader{MaxMessageSize: trunkMaxMessage}
	conn, err := up.Upgrade(w, r)
	if err != nil {
		c.tel.rejects.With(RejectUpgrade).Inc()
		c.cfg.Logger.Debug("collector: trunk handshake rejected", "err", err, "remote", r.RemoteAddr)
		return
	}
	if c.draining.Load() {
		_ = conn.Close(wsproto.CloseGoingAway, "collector shutting down")
		return
	}
	// DecodeBatch copies every string out of the message, so the batch
	// buffer can recycle across reads.
	conn.ReuseReadBuffer()
	// Trunks ride the same session tracking as beacon connections, so
	// Drain tears them down too: the gateway spills unacked commits and
	// replays them against the restarted collector.
	c.trackSession(conn)
	defer c.untrackSession(conn)
	c.tel.trunksActive.Add(1)
	defer c.tel.trunksActive.Add(-1)
	defer conn.Close(wsproto.CloseNormal, "")

	// The gateway must identify itself promptly; after the Hello the
	// trunk may legitimately idle (the gateway pings keep it alive).
	_ = conn.SetReadDeadline(c.clock.Now().Add(c.cfg.HandshakeTimeout))
	gatewayID := ""
	for {
		op, msg, err := conn.ReadMessage()
		if err != nil {
			if gatewayID != "" {
				c.cfg.Logger.Debug("collector: trunk closed", "gateway", gatewayID, "err", err)
			}
			return
		}
		if op != wsproto.OpBinary {
			c.reject(RejectTrunkProto)
			_ = conn.Close(wsproto.ClosePolicyViolation, "trunk frames must be binary")
			return
		}
		frames, err := trunk.DecodeBatch(msg)
		if err != nil {
			c.reject(RejectTrunkProto)
			c.cfg.Logger.Warn("collector: malformed trunk batch", "gateway", gatewayID, "err", err)
			_ = conn.Close(wsproto.ClosePolicyViolation, "malformed trunk batch")
			return
		}
		var reply []byte
		for _, f := range frames {
			c.tel.trunkFrames.With(f.Type.String()).Inc()
			switch f.Type {
			case trunk.Hello:
				if gatewayID == "" {
					gatewayID = f.GatewayID
					_ = conn.SetReadDeadline(time.Time{})
					c.cfg.Logger.Info("collector: trunk established",
						"gateway", gatewayID, "version", f.Version, "remote", r.RemoteAddr)
				}
			case trunk.Open, trunk.Event:
				// Advisory liveness traffic; the accounting state arrives
				// self-contained in the Commit. Events still count so the
				// gatewayed path's event metric matches the direct path's.
				if f.Type == trunk.Event {
					c.Metrics.Events.Add(1)
				}
			case trunk.Commit:
				reply = c.ingestTrunkCommit(gatewayID, f, reply)
			default:
				c.reject(RejectTrunkProto)
			}
		}
		if gatewayID == "" {
			// First batch carried no Hello: a peer speaking the wrong
			// protocol, not a gateway.
			c.reject(RejectTrunkProto)
			_ = conn.Close(wsproto.ClosePolicyViolation, "trunk batch before hello")
			return
		}
		if len(reply) > 0 {
			if err := conn.WriteMessage(wsproto.OpBinary, reply); err != nil {
				return
			}
		}
	}
}

// ingestTrunkCommit processes one Commit frame and appends the Ack or
// Reject reply to the batch under construction.
func (c *Collector) ingestTrunkCommit(gatewayID string, f trunk.Frame, reply []byte) []byte {
	ack := func() []byte {
		return trunk.AppendFrame(reply, trunk.Frame{Type: trunk.Ack, Stream: f.Stream})
	}
	rejectFrame := func(reason string) []byte {
		return trunk.AppendFrame(reply, trunk.Frame{Type: trunk.Reject, Stream: f.Stream, Reason: reason})
	}
	key := gatewayID + "/" + strconv.FormatUint(f.Stream, 10)
	if c.streamSeen(key) {
		c.tel.trunkDuplicates.Inc()
		return ack()
	}
	payload, err := beacon.Decode(f.Payload)
	if err != nil {
		c.streamForget(key)
		c.reject(RejectDecode)
		return rejectFrame("decode: " + err.Error())
	}
	remote, err := netip.ParseAddr(f.RemoteIP)
	if err != nil {
		c.streamForget(key)
		c.reject(RejectPeerAddr)
		return rejectFrame("peer-addr: " + err.Error())
	}
	// Adopt the payload's trace context, then splice in the stage
	// offsets the gateway measured on its own leg, so the sampled trace
	// shows the full hop sequence: beacon_send, wire_recv, gateway_recv,
	// trunk_forward, decode, ...
	tr := c.adoptTrace(payload)
	for _, st := range f.Stages {
		tr.StageAt(st.Name, st.Offset)
	}
	tr.Stage(trace.StageDecode)
	if _, err := c.Ingest(Observation{
		Payload:     payload,
		RemoteIP:    remote.Unmap(),
		ConnectedAt: time.Unix(0, f.ConnectedAt),
		Exposure:    f.Exposure,
		Trace:       tr,
	}); err != nil {
		// Ingest already classified the reject. Forget the stream so a
		// replay retries rather than acking a record that never landed;
		// the Reject tells the gateway this exact commit is hopeless.
		c.streamForget(key)
		c.cfg.Logger.Warn("collector: trunk commit rejected",
			"gateway", gatewayID, "stream", f.Stream, "err", err)
		return rejectFrame("ingest: " + err.Error())
	}
	c.tel.exposure.ObserveDuration(f.Exposure)
	return ack()
}
