package audit

import (
	"cmp"
	"slices"
	"strings"
	"time"

	"adaudit/internal/stats"
	"adaudit/internal/store"
)

// ViewabilityResult is the Table 3 analysis: the fraction of logged
// impressions meeting the upper-bound viewability criterion the
// methodology can measure from inside an iframe — exposed for at least
// one second (the Same-Origin policy hides whether 50% of pixels were
// on screen, §3.1).
type ViewabilityResult struct {
	CampaignID  string
	Impressions int
	ViewableUB  int
	// MeasuredImpressions counts placements where the beacon could read
	// the visible-pixel fraction (friendly iframes); MRCViewable counts
	// those meeting the FULL MRC standard — >= 50% of pixels for >= 1 s.
	// Comparing MRCFraction with Fraction quantifies how loose the
	// §3.1 upper bound is.
	MeasuredImpressions int
	MRCViewable         int
	// ExposureSummary describes the exposure-time distribution in
	// seconds.
	ExposureSummary stats.Summary
}

// Fraction returns the viewable-upper-bound share.
func (r ViewabilityResult) Fraction() float64 {
	if r.Impressions == 0 {
		return 0
	}
	return float64(r.ViewableUB) / float64(r.Impressions)
}

// MRCFraction returns the strict-standard viewable share among the
// impressions where visibility was measurable, or 0 when none were.
func (r ViewabilityResult) MRCFraction() float64 {
	if r.MeasuredImpressions == 0 {
		return 0
	}
	return float64(r.MRCViewable) / float64(r.MeasuredImpressions)
}

// ViewabilityThreshold is the MRC/IAB standard's time component.
const ViewabilityThreshold = time.Second

// Viewability runs the Table 3 analysis for one campaign ("" for all).
func (a *Auditor) Viewability(campaignID string) ViewabilityResult {
	res := ViewabilityResult{CampaignID: campaignID}
	exposures := floatScratch(a.impressionCount(campaignID))
	defer putFloatScratch(exposures)
	a.visitImpressions(campaignID, func(im *store.Impression) bool {
		res.Impressions++
		if im.Exposure >= ViewabilityThreshold {
			res.ViewableUB++
		}
		if im.VisibilityMeasured {
			res.MeasuredImpressions++
			if im.Exposure >= ViewabilityThreshold && im.MaxVisibleFraction >= 0.5 {
				res.MRCViewable++
			}
		}
		exposures = append(exposures, im.Exposure.Seconds())
		return true
	})
	res.ExposureSummary = stats.SummarizeInPlace(exposures)
	return res
}

// UserFrequency is one point of Figure 3's scatter: a (campaign, user)
// pair with the impressions it received and the median inter-arrival
// time between consecutive impressions.
type UserFrequency struct {
	CampaignID string
	UserKey    string
	// Impressions of this campaign's ad delivered to the user.
	Impressions int
	// MedianInterArrival between consecutive impressions; zero when the
	// user saw fewer than two.
	MedianInterArrival time.Duration
}

// FrequencyResult is the Figure 3 analysis.
type FrequencyResult struct {
	// Points holds one entry per (campaign, user) pair, sorted by
	// impressions descending.
	Points []UserFrequency
	// UsersOver counts users above each impression threshold; the paper
	// reports 1720 users over 10 and 176 over 100.
	UsersOver10  int
	UsersOver100 int
}

// MaxImpressions returns the heaviest user's impression count.
func (r FrequencyResult) MaxImpressions() int {
	if len(r.Points) == 0 {
		return 0
	}
	return r.Points[0].Impressions
}

// MedianIATBelow counts users with more than minImps impressions whose
// median inter-arrival time is below d — the paper's "hundreds of
// impressions under a minute apart" observation.
func (r FrequencyResult) MedianIATBelow(minImps int, d time.Duration) int {
	n := 0
	for _, p := range r.Points {
		if p.Impressions > minImps && p.MedianInterArrival > 0 && p.MedianInterArrival < d {
			n++
		}
	}
	return n
}

// FrequencyKey identifies one (campaign, user) pair of the Figure 3
// scatter — the grouping key for per-user impression timestamps.
type FrequencyKey struct {
	CampaignID string
	UserKey    string
}

// Frequency runs the Figure 3 analysis across all campaigns: a user is
// an (IP pseudonym, User-Agent) pair, and each campaign's ad is counted
// separately for the same user.
//
// Grouping is done in two passes over the store: the first counts
// impressions per (campaign, user) key, the second fills exact-capacity
// sub-slices carved out of one shared timestamp arena. Compared with
// the obvious one-pass append-per-impression build, this replaces the
// per-key slice growth chains (tens of thousands of reallocations at
// paper scale) with two map builds and a single arena allocation.
func (a *Auditor) Frequency() FrequencyResult {
	counts := map[FrequencyKey]int{}
	total := 0
	a.Store.Visit(func(im *store.Impression) bool {
		counts[FrequencyKey{im.CampaignID, im.UserKey}]++
		total++
		return true
	})
	arena := make([]time.Time, total)
	times := make(map[FrequencyKey][]time.Time, len(counts))
	next := 0
	for k, n := range counts {
		// Full slices (len 0, cap n) so the fill pass cannot spill past
		// its key's region even on a miscount.
		times[k] = arena[next : next : next+n]
		next += n
	}
	a.Store.Visit(func(im *store.Impression) bool {
		k := FrequencyKey{im.CampaignID, im.UserKey}
		times[k] = append(times[k], im.Timestamp)
		return true
	})
	return FrequencyFromTimes(times)
}

// FrequencyFromTimes materializes the Figure 3 result from per-(campaign,
// user) impression timestamps — the shared fold behind the batch
// analysis and the streaming engine's incremental view. The timestamp
// slices are sorted in place (the result depends only on the multiset);
// the map itself is not retained. One inter-arrival scratch buffer is
// reused across all keys, so the fold allocates only the Points slice.
func FrequencyFromTimes(times map[FrequencyKey][]time.Time) FrequencyResult {
	res := FrequencyResult{Points: make([]UserFrequency, 0, len(times))}
	var gaps []float64
	for k, ts := range times {
		p := UserFrequency{
			CampaignID:  k.CampaignID,
			UserKey:     k.UserKey,
			Impressions: len(ts),
		}
		if len(ts) >= 2 {
			slices.SortFunc(ts, func(a, b time.Time) int { return a.Compare(b) })
			if cap(gaps) < len(ts)-1 {
				gaps = make([]float64, 0, len(ts)-1)
			}
			gaps = gaps[:0]
			for i := 1; i < len(ts); i++ {
				// float64 nanoseconds, the representation
				// stats.MedianDurations reduces to — kept bit-identical so
				// the streaming engine's view cannot drift.
				gaps = append(gaps, float64(ts[i].Sub(ts[i-1])))
			}
			slices.Sort(gaps)
			p.MedianInterArrival = time.Duration(stats.QuantileSorted(gaps, 0.5))
		}
		if p.Impressions > 10 {
			res.UsersOver10++
		}
		if p.Impressions > 100 {
			res.UsersOver100++
		}
		res.Points = append(res.Points, p)
	}
	slices.SortFunc(res.Points, func(a, b UserFrequency) int {
		if a.Impressions != b.Impressions {
			return cmp.Compare(b.Impressions, a.Impressions)
		}
		if c := strings.Compare(a.UserKey, b.UserKey); c != 0 {
			return c
		}
		return strings.Compare(a.CampaignID, b.CampaignID)
	})
	return res
}
