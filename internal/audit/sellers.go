package audit

import (
	"sort"

	"adaudit/internal/adnet"
)

// SellerDirectory resolves the declared (ads.txt / sellers.json) state
// of the supply chain: which seller accounts a publisher has
// authorized, which accounts are disclosed exchanges, and which owner
// group a publisher belongs to. The default is the simulated
// ecosystem's registry (adnet.SellerRegistry); a real deployment would
// back this with an ads.txt crawl.
type SellerDirectory interface {
	// Authorized reports whether seller appears in publisher's declared
	// seller set.
	Authorized(publisher, seller string) bool
	// KnownExchange reports whether seller is a disclosed exchange
	// account (legitimately spans every publisher).
	KnownExchange(seller string) bool
	// OwnerGroup returns the publisher's owner-group label — the
	// "unrelated publisher groups" unit of the pooling detector.
	OwnerGroup(publisher string) string
}

// sellers resolves the configured directory.
func (a *Auditor) sellers() SellerDirectory {
	if a.Sellers != nil {
		return a.Sellers
	}
	return adnet.SellerRegistry{}
}

// SellerPair is one (publisher, seller) report attribution with the
// impressions booked under it.
type SellerPair struct {
	Publisher   string
	SellerID    string
	Impressions int64
}

// SellerAuditResult is the ads.txt-style seller cross-check: every
// vendor-report row's seller of record compared against the
// publisher's declared seller set. Unauthorized attributions are the
// domain-spoofing / dark-pooling signature — somebody sold inventory
// the publisher never authorized them to sell.
type SellerAuditResult struct {
	CampaignID string
	// RowsChecked counts report rows carrying a seller attribution;
	// UnattributedRows counts rows without one (reports predating
	// seller IDs), which the cross-check can say nothing about.
	RowsChecked      int
	UnattributedRows int
	// AuthorizedImpressions and UnauthorizedImpressions split the
	// checked rows' impressions by whether the seller was declared.
	AuthorizedImpressions   int64
	UnauthorizedImpressions int64
	// UnauthorizedPairs lists every undeclared (publisher, seller)
	// attribution, most impressions first.
	UnauthorizedPairs []SellerPair
}

// UnauthorizedRate returns the unauthorized-reseller rate: the share
// of checked impressions booked under undeclared sellers.
func (r SellerAuditResult) UnauthorizedRate() float64 {
	total := r.AuthorizedImpressions + r.UnauthorizedImpressions
	if total == 0 {
		return 0
	}
	return float64(r.UnauthorizedImpressions) / float64(total)
}

// SellerAudit runs the seller cross-check for one campaign's vendor
// report against the auditor's directory.
func (a *Auditor) SellerAudit(campaignID string, rep *adnet.VendorReport) SellerAuditResult {
	return SellerAuditFromReport(campaignID, rep, a.sellers())
}

// SellerAuditFromReport materializes the cross-check from a vendor
// report and a declared-seller directory. It is a pure function of its
// inputs — the batch auditor and the streaming engine call exactly
// this, so the two paths cannot drift. A nil report yields the empty
// result.
func SellerAuditFromReport(campaignID string, rep *adnet.VendorReport, dir SellerDirectory) SellerAuditResult {
	res := SellerAuditResult{CampaignID: campaignID}
	if rep == nil {
		return res
	}
	type pairKey struct{ pub, seller string }
	unauthorized := map[pairKey]int64{}
	for _, row := range rep.Rows {
		if row.SellerID == "" {
			res.UnattributedRows++
			continue
		}
		res.RowsChecked++
		if dir.Authorized(row.Publisher, row.SellerID) {
			res.AuthorizedImpressions += row.Impressions
			continue
		}
		res.UnauthorizedImpressions += row.Impressions
		unauthorized[pairKey{row.Publisher, row.SellerID}] += row.Impressions
	}
	res.UnauthorizedPairs = make([]SellerPair, 0, len(unauthorized))
	for k, imps := range unauthorized {
		res.UnauthorizedPairs = append(res.UnauthorizedPairs, SellerPair{
			Publisher: k.pub, SellerID: k.seller, Impressions: imps,
		})
	}
	sort.Slice(res.UnauthorizedPairs, func(i, j int) bool {
		a, b := res.UnauthorizedPairs[i], res.UnauthorizedPairs[j]
		if a.Impressions != b.Impressions {
			return a.Impressions > b.Impressions
		}
		if a.Publisher != b.Publisher {
			return a.Publisher < b.Publisher
		}
		return a.SellerID < b.SellerID
	})
	return res
}
