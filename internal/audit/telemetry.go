package audit

import (
	"time"

	"adaudit/internal/telemetry"
)

// auditStages are the analysis dimensions FullAudit times, in the
// order the serial engine runs them per campaign, plus the two
// cross-campaign aggregates.
const (
	stageBrandSafety = "brandsafety"
	stageContext     = "context"
	stagePopularity  = "popularity"
	stageViewability = "viewability"
	stageFraud       = "fraud"
	stageSellers     = "sellers"
	stagePooling     = "pooling"
	stageBehavior    = "behavior"
	stageAggregate   = "aggregate"
	stageFrequency   = "frequency"
)

// auditTelemetry holds the auditor's instruments. The zero value is
// fully disabled; every field is nil-safe, so an uninstrumented
// auditor pays only a bool check per stage.
type auditTelemetry struct {
	enabled bool
	stages  map[string]*telemetry.Histogram
	full    *telemetry.Histogram
	audits  *telemetry.Counter
	errors  *telemetry.Counter
	workers *telemetry.Gauge
}

// Instrument registers the auditor's instruments on reg: a per-stage
// latency histogram family (labelled by analysis dimension), the
// end-to-end FullAudit latency, audit/error counters, and the worker
// count the pool last ran with. A nil registry leaves the auditor
// uninstrumented.
func (a *Auditor) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	stages := map[string]*telemetry.Histogram{}
	for _, stage := range []string{
		stageBrandSafety, stageContext, stagePopularity,
		stageViewability, stageFraud, stageSellers, stagePooling,
		stageBehavior, stageAggregate, stageFrequency,
	} {
		stages[stage] = reg.Histogram("adaudit_audit_stage_seconds",
			"Per-dimension analysis latency within FullAudit.",
			telemetry.LatencyBuckets(), map[string]string{"stage": stage})
	}
	a.tel = auditTelemetry{
		enabled: true,
		stages:  stages,
		full: reg.Histogram("adaudit_audit_full_seconds",
			"End-to-end FullAudit latency.",
			telemetry.LatencyBuckets(), nil),
		audits: reg.Counter("adaudit_audit_full_total",
			"FullAudit runs completed.", nil),
		errors: reg.Counter("adaudit_audit_full_failures_total",
			"FullAudit runs that returned an error.", nil),
		workers: reg.Gauge("adaudit_audit_workers",
			"Worker-pool size of the most recent FullAudit.", nil),
	}
}

// observeStage records one dimension's duration. Stage analyses run
// for milliseconds at paper scale, so unlike the store's sampled
// insert timing the two clock reads are noise here.
func (t *auditTelemetry) observeStage(stage string, start time.Time) {
	if !t.enabled {
		return
	}
	t.stages[stage].ObserveDuration(time.Since(start))
}

// stageStart returns the timing anchor, or the zero time when
// telemetry is off (time.Now is not free on the fan-out path).
func (t *auditTelemetry) stageStart() time.Time {
	if !t.enabled {
		return time.Time{}
	}
	return time.Now()
}

// observeFull records one completed FullAudit.
func (t *auditTelemetry) observeFull(start time.Time, workers int, err error) {
	if !t.enabled {
		return
	}
	if err != nil {
		t.errors.Inc()
		return
	}
	t.audits.Inc()
	t.workers.Set(int64(workers))
	t.full.ObserveDuration(time.Since(start))
}
