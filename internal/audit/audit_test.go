package audit

import (
	"fmt"
	"math"
	"testing"
	"time"

	"adaudit/internal/adnet"
	"adaudit/internal/semsim"
	"adaudit/internal/store"
)

// fakeMeta is a hand-built metadata source for unit tests.
type fakeMeta map[string]PublisherMeta

func (m fakeMeta) PublisherMeta(domain string) (PublisherMeta, bool) {
	meta, ok := m[domain]
	return meta, ok
}

var base = time.Date(2016, 3, 29, 10, 0, 0, 0, time.UTC)

func addImp(t *testing.T, st *store.Store, campaign, pub, user string, at time.Time, exposure time.Duration, dc string) {
	t.Helper()
	if dc == "" {
		dc = "not-data-center"
	}
	_, err := st.Insert(store.Impression{
		CampaignID: campaign, CreativeID: "cr", Publisher: pub,
		PageURL: "http://" + pub + "/", UserAgent: "UA",
		IPPseudonym: "ip-" + user, UserKey: user,
		Timestamp: at, Exposure: exposure, DataCenter: dc,
	})
	if err != nil {
		t.Fatal(err)
	}
}

func newAuditor(t *testing.T, st *store.Store, meta MetadataSource) *Auditor {
	t.Helper()
	a, err := New(st, meta)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewRequiresStore(t *testing.T) {
	if _, err := New(nil, fakeMeta{}); err == nil {
		t.Fatal("nil store accepted")
	}
}

func TestBrandSafetyVenn(t *testing.T) {
	st := store.New()
	// Audit saw p1, p2, p3; vendor reports p2, p3, p4 (+anonymous).
	addImp(t, st, "c", "p1.es", "u1", base, time.Second, "")
	addImp(t, st, "c", "p2.es", "u1", base, time.Second, "")
	addImp(t, st, "c", "p3.es", "u2", base, time.Second, "")
	a := newAuditor(t, st, fakeMeta{"p1.es": {Unsafe: true}})

	rep := &adnet.VendorReport{
		CampaignID: "c",
		Rows: []adnet.ReportRow{
			{Publisher: "p2.es", Impressions: 1},
			{Publisher: "p3.es", Impressions: 1},
			{Publisher: "p4.es", Impressions: 2},
			{Publisher: adnet.AnonymousPublisher, Impressions: 5},
		},
	}
	res := a.BrandSafety("c", rep)
	if res.Venn.OnlyA != 1 || res.Venn.OnlyB != 1 || res.Venn.Both != 2 {
		t.Fatalf("venn = %+v", res.Venn)
	}
	if got := res.FractionUnreported(); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("FractionUnreported = %v", got)
	}
	if got := res.FractionAuditMissed(); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("FractionAuditMissed = %v", got)
	}
	if len(res.AuditOnly) != 1 || res.AuditOnly[0] != "p1.es" {
		t.Fatalf("AuditOnly = %v", res.AuditOnly)
	}
	if len(res.VendorOnly) != 1 || res.VendorOnly[0] != "p4.es" {
		t.Fatalf("VendorOnly = %v", res.VendorOnly)
	}
	if res.AnonymousImpressions != 5 {
		t.Fatalf("AnonymousImpressions = %d", res.AnonymousImpressions)
	}
	if len(res.UnsafeUnreported) != 1 || res.UnsafeUnreported[0] != "p1.es" {
		t.Fatalf("UnsafeUnreported = %v", res.UnsafeUnreported)
	}
}

func TestBrandSafetyAggregatePoolsReports(t *testing.T) {
	st := store.New()
	addImp(t, st, "c1", "p1.es", "u1", base, time.Second, "")
	addImp(t, st, "c2", "p2.es", "u2", base, time.Second, "")
	a := newAuditor(t, st, nil)
	reports := map[string]*adnet.VendorReport{
		"c1": {Rows: []adnet.ReportRow{{Publisher: "p1.es", Impressions: 1}, {Publisher: adnet.AnonymousPublisher, Impressions: 3}}},
		"c2": {Rows: []adnet.ReportRow{{Publisher: adnet.AnonymousPublisher, Impressions: 4}}},
	}
	res := a.BrandSafetyAggregate(reports)
	if res.Venn.Both != 1 || res.Venn.OnlyA != 1 || res.Venn.OnlyB != 0 {
		t.Fatalf("venn = %+v", res.Venn)
	}
	if res.AnonymousImpressions != 7 {
		t.Fatalf("anon = %d", res.AnonymousImpressions)
	}
}

func TestContextAnalysis(t *testing.T) {
	st := store.New()
	// 4 impressions: 2 on a relevant pub, 1 irrelevant, 1 unknown meta.
	addImp(t, st, "c", "uni.es", "u1", base, time.Second, "")
	addImp(t, st, "c", "uni.es", "u2", base, time.Second, "")
	addImp(t, st, "c", "cook.es", "u3", base, time.Second, "")
	addImp(t, st, "c", "mystery.es", "u4", base, time.Second, "")
	meta := fakeMeta{
		// Topic "physics" is a sibling of "research" under the science
		// vertical: inside the default similarity threshold.
		"uni.es":  {Keywords: []string{"laboratorios"}, Topics: []string{"physics"}},
		"cook.es": {Keywords: []string{"recipes"}, Topics: []string{"recipes"}},
	}
	a := newAuditor(t, st, meta)
	rep := &adnet.VendorReport{TotalImpressionsCharged: 4, ContextualImpressions: 3}
	res, err := a.Context("c", []string{"research"}, rep)
	if err != nil {
		t.Fatal(err)
	}
	if res.AuditImpressions != 4 || res.MeaningfulImpressions != 2 || res.UnknownMeta != 1 {
		t.Fatalf("res = %+v", res)
	}
	if got := res.AuditFraction(); got != 0.5 {
		t.Fatalf("AuditFraction = %v", got)
	}
	if got := res.VendorFraction(); got != 0.75 {
		t.Fatalf("VendorFraction = %v", got)
	}
}

func TestContextRequiresMeta(t *testing.T) {
	a := newAuditor(t, store.New(), nil)
	a.Meta = nil
	if _, err := a.Context("c", []string{"x"}, nil); err == nil {
		t.Fatal("context without metadata ran")
	}
}

func TestPopularityBuckets(t *testing.T) {
	st := store.New()
	// p1 rank 5 (bucket 0), two impressions; p2 rank 50000 (bucket 4),
	// one impression; p3 unknown meta.
	addImp(t, st, "c", "p1.es", "u1", base, time.Second, "")
	addImp(t, st, "c", "p1.es", "u2", base, time.Second, "")
	addImp(t, st, "c", "p2.es", "u3", base, time.Second, "")
	addImp(t, st, "c", "p3.es", "u4", base, time.Second, "")
	meta := fakeMeta{
		"p1.es": {Rank: 5},
		"p2.es": {Rank: 50_000},
	}
	a := newAuditor(t, st, meta)
	res, err := a.Popularity("c", 10, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.UnknownMeta != 1 {
		t.Fatalf("UnknownMeta = %d", res.UnknownMeta)
	}
	if res.Publishers.Total != 2 || res.Impressions.Total != 3 {
		t.Fatalf("totals: pubs %d imps %d", res.Publishers.Total, res.Impressions.Total)
	}
	if got := res.TopKPublisherFraction(10_000); got != 0.5 {
		t.Fatalf("TopKPublisherFraction(10K) = %v", got)
	}
	if got := res.TopKImpressionFraction(10_000); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("TopKImpressionFraction(10K) = %v", got)
	}
}

func TestViewability(t *testing.T) {
	st := store.New()
	addImp(t, st, "c", "p.es", "u1", base, 2*time.Second, "")
	addImp(t, st, "c", "p.es", "u2", base, time.Second, "") // exactly 1s counts
	addImp(t, st, "c", "p.es", "u3", base, 300*time.Millisecond, "")
	addImp(t, st, "c", "p.es", "u4", base, 500*time.Millisecond, "")
	a := newAuditor(t, st, nil)
	res := a.Viewability("c")
	if res.Impressions != 4 || res.ViewableUB != 2 {
		t.Fatalf("res = %+v", res)
	}
	if got := res.Fraction(); got != 0.5 {
		t.Fatalf("Fraction = %v", got)
	}
	if res.ExposureSummary.N != 4 {
		t.Fatalf("summary N = %d", res.ExposureSummary.N)
	}
}

func TestFrequencyAnalysis(t *testing.T) {
	st := store.New()
	// Heavy user: 12 impressions 30 s apart in campaign c1.
	for i := 0; i < 12; i++ {
		addImp(t, st, "c1", "p.es", "heavy", base.Add(time.Duration(i)*30*time.Second), time.Second, "")
	}
	// Same user key in campaign c2: counted separately (3 impressions).
	for i := 0; i < 3; i++ {
		addImp(t, st, "c2", "p.es", "heavy", base.Add(time.Duration(i)*time.Hour), time.Second, "")
	}
	// Light user: 1 impression.
	addImp(t, st, "c1", "p.es", "light", base, time.Second, "")
	a := newAuditor(t, st, nil)
	res := a.Frequency()
	if len(res.Points) != 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	top := res.Points[0]
	if top.UserKey != "heavy" || top.CampaignID != "c1" || top.Impressions != 12 {
		t.Fatalf("top = %+v", top)
	}
	if top.MedianInterArrival != 30*time.Second {
		t.Fatalf("median IAT = %v", top.MedianInterArrival)
	}
	if res.UsersOver10 != 1 || res.UsersOver100 != 0 {
		t.Fatalf("over10 = %d over100 = %d", res.UsersOver10, res.UsersOver100)
	}
	if res.MaxImpressions() != 12 {
		t.Fatalf("MaxImpressions = %d", res.MaxImpressions())
	}
	if got := res.MedianIATBelow(10, time.Minute); got != 1 {
		t.Fatalf("MedianIATBelow = %d", got)
	}
	// Light user has no inter-arrival.
	for _, p := range res.Points {
		if p.Impressions == 1 && p.MedianInterArrival != 0 {
			t.Fatalf("singleton user has IAT %v", p.MedianInterArrival)
		}
	}
}

func TestFrequencyUnorderedTimestamps(t *testing.T) {
	st := store.New()
	// Insert out of order; median IAT must still be computed on the
	// sorted sequence.
	addImp(t, st, "c", "p.es", "u", base.Add(2*time.Minute), time.Second, "")
	addImp(t, st, "c", "p.es", "u", base, time.Second, "")
	addImp(t, st, "c", "p.es", "u", base.Add(time.Minute), time.Second, "")
	a := newAuditor(t, st, nil)
	res := a.Frequency()
	if res.Points[0].MedianInterArrival != time.Minute {
		t.Fatalf("median IAT = %v", res.Points[0].MedianInterArrival)
	}
}

func TestFraudAnalysis(t *testing.T) {
	st := store.New()
	addImp(t, st, "c", "p1.es", "u1", base, time.Second, "not-data-center")
	addImp(t, st, "c", "p1.es", "u2", base, time.Second, "provider-db")
	addImp(t, st, "c", "p2.es", "u3", base, time.Second, "deny-list")
	addImp(t, st, "c", "p3.es", "u4", base, time.Second, "vpn-exception") // NOT fraud
	addImp(t, st, "c", "p3.es", "u5", base, time.Second, "manual")
	a := newAuditor(t, st, nil)
	res := a.Fraud("c")
	if res.Impressions != 5 || res.DataCenterImpressions != 3 {
		t.Fatalf("res = %+v", res)
	}
	if res.DistinctIPs != 5 || res.DataCenterIPs != 3 {
		t.Fatalf("IPs: %d/%d", res.DataCenterIPs, res.DistinctIPs)
	}
	if res.Publishers != 3 || res.PublishersServingDC != 3 {
		t.Fatalf("pubs: %d/%d", res.PublishersServingDC, res.Publishers)
	}
	if got := res.PctDataCenterImpressions(); got != 0.6 {
		t.Fatalf("pct imps = %v", got)
	}
	if res.ByVerdict["provider-db"] != 1 || res.ByVerdict["deny-list"] != 1 || res.ByVerdict["manual"] != 1 {
		t.Fatalf("by verdict = %v", res.ByVerdict)
	}
	if len(res.TopDCPublishers) == 0 {
		t.Fatal("no top DC publishers")
	}
}

func TestFraudVPNExceptionNotCounted(t *testing.T) {
	st := store.New()
	addImp(t, st, "c", "p.es", "u1", base, time.Second, "vpn-exception")
	a := newAuditor(t, st, nil)
	res := a.Fraud("c")
	if res.DataCenterImpressions != 0 || res.DataCenterIPs != 0 {
		t.Fatalf("VPN exception counted as fraud: %+v", res)
	}
}

func TestFullAuditRunsEverything(t *testing.T) {
	st := store.New()
	meta := fakeMeta{}
	for i := 0; i < 20; i++ {
		pub := fmt.Sprintf("p%d.es", i%5)
		meta[pub] = PublisherMeta{Rank: 100 * (i%5 + 1), Keywords: []string{"research"}, Topics: []string{"research"}}
		addImp(t, st, "c1", pub, fmt.Sprintf("u%d", i%7), base.Add(time.Duration(i)*time.Minute), time.Second, "")
	}
	a := newAuditor(t, st, meta)
	rep := &adnet.VendorReport{
		CampaignID:              "c1",
		Rows:                    []adnet.ReportRow{{Publisher: "p0.es", Impressions: 4}},
		TotalImpressionsCharged: 20,
		ContextualImpressions:   10,
	}
	full, err := a.FullAudit([]CampaignInput{{ID: "c1", Keywords: []string{"research"}, Report: rep}})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.PerCampaign) != 1 {
		t.Fatalf("per-campaign = %d", len(full.PerCampaign))
	}
	ca := full.PerCampaign[0]
	if ca.BrandSafety.Venn.SizeA() != 5 {
		t.Fatalf("audit publishers = %d", ca.BrandSafety.Venn.SizeA())
	}
	if ca.Context.AuditFraction() != 1.0 {
		t.Fatalf("context fraction = %v", ca.Context.AuditFraction())
	}
	if ca.Viewability.Impressions != 20 {
		t.Fatalf("viewability imps = %d", ca.Viewability.Impressions)
	}
	if full.Aggregate.Venn.SizeA() != 5 {
		t.Fatalf("aggregate venn = %+v", full.Aggregate.Venn)
	}
	if len(full.Frequency.Points) == 0 {
		t.Fatal("no frequency points")
	}
}

func TestFullAuditRequiresReports(t *testing.T) {
	a := newAuditor(t, store.New(), fakeMeta{})
	if _, err := a.FullAudit([]CampaignInput{{ID: "c"}}); err == nil {
		t.Fatal("missing report accepted")
	}
}

func TestMatcherDefaultsWired(t *testing.T) {
	a := newAuditor(t, store.New(), fakeMeta{})
	if a.Matcher == nil {
		t.Fatal("no default matcher")
	}
	// Default threshold must match semsim's default.
	want := semsim.NewMatcher(semsim.DefaultTaxonomy()).Threshold
	if a.Matcher.Threshold != want {
		t.Fatalf("threshold %v, want %v", a.Matcher.Threshold, want)
	}
}

func TestPopularityCPMCorrelation(t *testing.T) {
	mk := func(ranks []int, imps []int) PopularityResult {
		var r PopularityResult
		for i, rank := range ranks {
			for j := 0; j < imps[i]; j++ {
				r.impRanks = append(r.impRanks, rank)
			}
		}
		return r
	}
	// Cheap campaign delivers mostly top ranks; expensive mostly tail:
	// strong NEGATIVE correlation.
	cheap := mk([]int{100, 2_000_000}, []int{9, 1})
	mid := mk([]int{100, 2_000_000}, []int{5, 5})
	dear := mk([]int{100, 2_000_000}, []int{1, 9})
	rho, err := PopularityCPMCorrelation(
		[]float64{0.01, 0.10, 0.30},
		[]PopularityResult{cheap, mid, dear}, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if rho > -0.99 {
		t.Fatalf("rho = %v, want ~-1", rho)
	}
	if _, err := PopularityCPMCorrelation([]float64{1}, nil, 50_000); err == nil {
		t.Fatal("length mismatch accepted")
	}
}
