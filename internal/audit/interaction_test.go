package audit

import (
	"testing"
	"time"

	"adaudit/internal/store"
)

func addImpFull(t *testing.T, st *store.Store, user, ua, dc string, moves, clicks int, at time.Time) {
	t.Helper()
	if dc == "" {
		dc = "not-data-center"
	}
	if _, err := st.Insert(store.Impression{
		CampaignID: "c", CreativeID: "cr", Publisher: "p.es",
		PageURL: "http://p.es/", UserAgent: ua,
		IPPseudonym: "ip-" + user, UserKey: user,
		Timestamp: at, Exposure: time.Second,
		MouseMoves: moves, Clicks: clicks, DataCenter: dc,
	}); err != nil {
		t.Fatal(err)
	}
}

const (
	humanUA    = "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/49.0.2623.87 Safari/537.36"
	headlessUA = "Mozilla/5.0 (X11; Linux x86_64) AppleWebKit/537.36 (KHTML, like Gecko) HeadlessChrome/49.0.2623.87 Safari/537.36"
)

func TestInteractionSegments(t *testing.T) {
	st := store.New()
	// Human: moves and clicks, residential.
	addImpFull(t, st, "human", humanUA, "", 3, 1, base)
	// Corroborated bot: headless UA on DC address.
	addImpFull(t, st, "bot1", headlessUA, "provider-db", 0, 1, base)
	// Spoofing bot: clean UA on DC address.
	addImpFull(t, st, "bot2", humanUA, "deny-list", 0, 0, base)
	// Residential automation: headless UA, residential address.
	addImpFull(t, st, "proxybot", headlessUA, "", 0, 0, base)

	a := newAuditor(t, st, nil)
	res := a.Interactions("c")
	if res.Impressions != 4 {
		t.Fatalf("impressions = %d", res.Impressions)
	}
	if res.UAFlagged != 2 || res.DCFlagged != 2 {
		t.Fatalf("flags: ua=%d dc=%d", res.UAFlagged, res.DCFlagged)
	}
	if res.Corroborated != 1 || res.SpoofedUA != 1 || res.ResidentialAutomation != 1 {
		t.Fatalf("segments: corr=%d spoof=%d resauto=%d",
			res.Corroborated, res.SpoofedUA, res.ResidentialAutomation)
	}
	if got := res.SpoofShare(); got != 0.5 {
		t.Fatalf("spoof share = %v", got)
	}
	if got := res.UAFlaggedShare(); got != 0.5 {
		t.Fatalf("ua share = %v", got)
	}
}

func TestInteractionClickNoMove(t *testing.T) {
	st := store.New()
	addImpFull(t, st, "clicker", humanUA, "provider-db", 0, 2, base)
	addImpFull(t, st, "normal", humanUA, "", 5, 1, base)
	a := newAuditor(t, st, nil)
	res := a.Interactions("c")
	if res.ClickNoMove != 1 || res.ClickNoMoveDC != 1 {
		t.Fatalf("click-no-move = %d (dc %d)", res.ClickNoMove, res.ClickNoMoveDC)
	}
}

func TestInteractionSuspiciousUsers(t *testing.T) {
	st := store.New()
	// A user with 3 impressions, clicks, zero moves: suspicious.
	for i := 0; i < 3; i++ {
		addImpFull(t, st, "susp", humanUA, "", 0, 1, base.Add(time.Duration(i)*time.Minute))
	}
	// A user with clicks AND moves across history: fine.
	addImpFull(t, st, "ok", humanUA, "", 0, 1, base)
	addImpFull(t, st, "ok", humanUA, "", 4, 0, base.Add(time.Minute))
	addImpFull(t, st, "ok", humanUA, "", 2, 1, base.Add(2*time.Minute))
	// A click-only user below the impression floor: not listed.
	addImpFull(t, st, "light", humanUA, "", 0, 1, base)

	a := newAuditor(t, st, nil)
	res := a.Interactions("c")
	if len(res.SuspiciousUsers) != 1 || res.SuspiciousUsers[0] != "susp" {
		t.Fatalf("suspicious = %v", res.SuspiciousUsers)
	}
}

func TestInteractionEmptyStore(t *testing.T) {
	a := newAuditor(t, store.New(), nil)
	res := a.Interactions("")
	if res.Impressions != 0 || res.UAFlaggedShare() != 0 || res.SpoofShare() != 0 {
		t.Fatalf("empty result = %+v", res)
	}
}
