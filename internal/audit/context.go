package audit

import (
	"fmt"

	"adaudit/internal/adnet"
	"adaudit/internal/store"
)

// ContextResult is the Table 2 analysis: the fraction of impressions
// delivered to contextually meaningful publishers, as measured by the
// audit vs. claimed by the vendor.
type ContextResult struct {
	CampaignID string
	// AuditImpressions is the number of logged impressions analysed.
	AuditImpressions int
	// MeaningfulImpressions is how many of them rendered on a publisher
	// whose keywords match the campaign's or whose topics are
	// semantically similar (Leacock–Chodorow) to a campaign keyword.
	MeaningfulImpressions int
	// UnknownMeta counts impressions whose publisher has no metadata;
	// they count as not meaningful, as in the paper (publishers with no
	// assigned keywords cannot match).
	UnknownMeta int
	// VendorClaimed and VendorTotal are the vendor's contextual count
	// and its denominator (all delivered impressions).
	VendorClaimed int64
	VendorTotal   int64
}

// AuditFraction is the audit-measured contextually-meaningful share.
func (r ContextResult) AuditFraction() float64 {
	if r.AuditImpressions == 0 {
		return 0
	}
	return float64(r.MeaningfulImpressions) / float64(r.AuditImpressions)
}

// VendorFraction is the vendor-claimed contextually-delivered share.
func (r ContextResult) VendorFraction() float64 {
	if r.VendorTotal == 0 {
		return 0
	}
	return float64(r.VendorClaimed) / float64(r.VendorTotal)
}

// Context runs the Table 2 analysis for one campaign. keywords are the
// campaign's targeting keywords; report may be nil when only the audit
// side is wanted.
func (a *Auditor) Context(campaignID string, keywords []string, report *adnet.VendorReport) (ContextResult, error) {
	if a.Meta == nil || a.Matcher == nil {
		return ContextResult{}, fmt.Errorf("audit: context analysis requires metadata and a matcher")
	}
	res := ContextResult{CampaignID: campaignID}

	// Publisher relevance is a property of the publisher, not the
	// impression: resolve each distinct publisher once, against the
	// campaign keywords compiled once (not re-normalized per publisher).
	query := a.Matcher.Compile(keywords)
	relevant := map[string]bool{}
	for _, pub := range a.Store.Publishers(campaignID) {
		meta, ok := a.Meta.PublisherMeta(pub)
		if !ok {
			continue
		}
		relevant[pub] = query.Relevant(meta.Keywords, meta.Topics)
	}

	a.visitImpressions(campaignID, func(im *store.Impression) bool {
		res.AuditImpressions++
		rel, known := relevant[im.Publisher]
		if !known {
			res.UnknownMeta++
		} else if rel {
			res.MeaningfulImpressions++
		}
		return true
	})
	if report != nil {
		res.VendorClaimed = report.ContextualImpressions
		res.VendorTotal = report.TotalImpressionsCharged + report.RefundedImpressions
	}
	return res, nil
}
