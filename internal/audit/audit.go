// Package audit implements the paper's contribution: the independent
// campaign-quality assessment an advertiser can run from its own beacon
// dataset, without trusting the ad network's reporting (§4.2). Given
// the impression store the collector produced and the vendor's campaign
// reports, it computes the five quality dimensions of §2:
//
//   - Brand safety — the publisher sets seen by the audit vs. reported
//     by the vendor (Figure 1's Venn partition).
//   - Context — the fraction of impressions on contextually meaningful
//     publishers, via exact keyword match plus Leacock–Chodorow
//     semantic similarity (Table 2).
//   - Publisher popularity — impression and publisher distributions
//     over popularity-rank log buckets (Figure 2).
//   - Impression quality — upper-bound viewability (Table 3) and
//     frequency-cap behaviour (Figure 3).
//   - Fraud — data-center traffic shares (Table 4).
package audit

import (
	"fmt"

	"adaudit/internal/publisher"
	"adaudit/internal/semsim"
	"adaudit/internal/store"
)

// PublisherMeta is the per-publisher metadata the audit joins against:
// the popularity rank (the paper uses Alexa) and the keywords/topics
// the ad network's placement tool assigns to the publisher.
type PublisherMeta struct {
	Rank     int
	Keywords []string
	Topics   []string
	// Unsafe marks publishers in brand-unsafe verticals, the sites a
	// brand-safety blacklist exists to catch.
	Unsafe bool
}

// MetadataSource resolves publisher domains to metadata. Lookups for
// unknown domains return ok=false; analyses count and skip them rather
// than failing, since real metadata sources are incomplete too.
type MetadataSource interface {
	PublisherMeta(domain string) (PublisherMeta, bool)
}

// UniverseMetadata adapts the synthetic publisher universe to
// MetadataSource.
type UniverseMetadata struct {
	Universe *publisher.Universe
}

// PublisherMeta implements MetadataSource.
func (u UniverseMetadata) PublisherMeta(domain string) (PublisherMeta, bool) {
	p, ok := u.Universe.ByDomain(domain)
	if !ok {
		return PublisherMeta{}, false
	}
	return PublisherMeta{
		Rank:     p.Rank,
		Keywords: p.Keywords,
		Topics:   p.Topics,
		Unsafe:   p.BrandUnsafe,
	}, true
}

// Auditor runs the analyses over one dataset.
type Auditor struct {
	// Store is the beacon dataset. Required.
	Store *store.Store
	// Meta resolves publisher metadata. Required for the context and
	// popularity analyses.
	Meta MetadataSource
	// Matcher decides contextual relevance. Required for the context
	// analysis.
	Matcher *semsim.Matcher
}

// New returns an Auditor over st with the given metadata source and the
// default contextual matcher over the default taxonomy.
func New(st *store.Store, meta MetadataSource) (*Auditor, error) {
	if st == nil {
		return nil, fmt.Errorf("audit: auditor requires a store")
	}
	return &Auditor{
		Store:   st,
		Meta:    meta,
		Matcher: semsim.NewMatcher(semsim.DefaultTaxonomy()),
	}, nil
}

// campaignImpressions returns the impressions of one campaign, or all
// impressions when campaignID is empty.
func (a *Auditor) campaignImpressions(campaignID string) []store.Impression {
	if campaignID == "" {
		out := make([]store.Impression, 0, a.Store.Len())
		a.Store.ForEach(func(im store.Impression) bool {
			out = append(out, im)
			return true
		})
		return out
	}
	return a.Store.ByCampaign(campaignID)
}
