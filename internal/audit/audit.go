// Package audit implements the paper's contribution: the independent
// campaign-quality assessment an advertiser can run from its own beacon
// dataset, without trusting the ad network's reporting (§4.2). Given
// the impression store the collector produced and the vendor's campaign
// reports, it computes the five quality dimensions of §2:
//
//   - Brand safety — the publisher sets seen by the audit vs. reported
//     by the vendor (Figure 1's Venn partition).
//   - Context — the fraction of impressions on contextually meaningful
//     publishers, via exact keyword match plus Leacock–Chodorow
//     semantic similarity (Table 2).
//   - Publisher popularity — impression and publisher distributions
//     over popularity-rank log buckets (Figure 2).
//   - Impression quality — upper-bound viewability (Table 3) and
//     frequency-cap behaviour (Figure 3).
//   - Fraud — data-center traffic shares (Table 4).
package audit

import (
	"fmt"

	"adaudit/internal/publisher"
	"adaudit/internal/semsim"
	"adaudit/internal/store"
)

// PublisherMeta is the per-publisher metadata the audit joins against:
// the popularity rank (the paper uses Alexa) and the keywords/topics
// the ad network's placement tool assigns to the publisher.
type PublisherMeta struct {
	Rank     int
	Keywords []string
	Topics   []string
	// Unsafe marks publishers in brand-unsafe verticals, the sites a
	// brand-safety blacklist exists to catch.
	Unsafe bool
}

// MetadataSource resolves publisher domains to metadata. Lookups for
// unknown domains return ok=false; analyses count and skip them rather
// than failing, since real metadata sources are incomplete too.
type MetadataSource interface {
	PublisherMeta(domain string) (PublisherMeta, bool)
}

// UniverseMetadata adapts the synthetic publisher universe to
// MetadataSource.
type UniverseMetadata struct {
	Universe *publisher.Universe
}

// PublisherMeta implements MetadataSource.
func (u UniverseMetadata) PublisherMeta(domain string) (PublisherMeta, bool) {
	p, ok := u.Universe.ByDomain(domain)
	if !ok {
		return PublisherMeta{}, false
	}
	return PublisherMeta{
		Rank:     p.Rank,
		Keywords: p.Keywords,
		Topics:   p.Topics,
		Unsafe:   p.BrandUnsafe,
	}, true
}

// Auditor runs the analyses over one dataset.
type Auditor struct {
	// Store is the beacon dataset. Required.
	Store *store.Store
	// Meta resolves publisher metadata. Required for the context and
	// popularity analyses. Implementations must be safe for concurrent
	// lookups: FullAudit fans analyses out across a worker pool.
	Meta MetadataSource
	// Matcher decides contextual relevance. Required for the context
	// analysis.
	Matcher *semsim.Matcher
	// Parallelism bounds the worker pool FullAudit fans per-campaign,
	// per-dimension analysis tasks across. 0 uses GOMAXPROCS; 1 runs
	// serially. The report is identical at every setting.
	Parallelism int
	// Sellers resolves the declared-seller state for the adversarial
	// dimensions (seller cross-check, pooling detector). Nil uses the
	// simulated ecosystem's registry (adnet.SellerRegistry).
	Sellers SellerDirectory

	tel auditTelemetry
}

// New returns an Auditor over st with the given metadata source and the
// default contextual matcher over the default taxonomy.
func New(st *store.Store, meta MetadataSource) (*Auditor, error) {
	if st == nil {
		return nil, fmt.Errorf("audit: auditor requires a store")
	}
	return &Auditor{
		Store:   st,
		Meta:    meta,
		Matcher: semsim.NewMatcher(semsim.DefaultTaxonomy()),
	}, nil
}

// visitImpressions streams the impressions of one campaign — or every
// impression when campaignID is empty — through fn without
// materializing a copy of the dataset. It replaces the old
// campaignImpressions helper, which built a full []store.Impression
// per analysis call (and, for the all-campaigns case, re-walked the
// whole store copying record by record): every analysis now reads
// straight off the store's index via the zero-copy visit path.
func (a *Auditor) visitImpressions(campaignID string, fn func(*store.Impression) bool) {
	if campaignID == "" {
		a.Store.Visit(fn)
		return
	}
	a.Store.VisitCampaign(campaignID, fn)
}

// impressionCount returns how many impressions visitImpressions will
// stream — known up front from the index, for exact preallocation.
func (a *Auditor) impressionCount(campaignID string) int {
	if campaignID == "" {
		return a.Store.Len()
	}
	return a.Store.CampaignCursor(campaignID).Len()
}
