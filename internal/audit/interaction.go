package audit

import (
	"sort"

	"adaudit/internal/store"
	"adaudit/internal/useragent"
)

// InteractionResult is the behavioural fraud analysis that corroborates
// the IP-based cascade of Table 4: headless agents do not move a mouse,
// and click-spam bots click without any pointer activity — signals the
// beacon's interaction stream exposes even when a bot spoofs a clean
// browser User-Agent from a residential-looking address.
type InteractionResult struct {
	CampaignID  string
	Impressions int

	// UAFlagged counts impressions whose User-Agent parses as
	// automation (HeadlessChrome, PhantomJS, fetch libraries, ...).
	UAFlagged int
	// DCFlagged counts impressions from data-center addresses (the
	// Table 4 signal).
	DCFlagged int
	// Corroborated counts impressions flagged by BOTH signals.
	Corroborated int
	// SpoofedUA counts DC impressions whose User-Agent looks like a
	// clean human browser — the bots only the IP cascade catches.
	SpoofedUA int
	// ResidentialAutomation counts UA-flagged impressions from
	// non-DC addresses — automation running on residential proxies,
	// which the IP cascade alone would miss.
	ResidentialAutomation int

	// ClickNoMove counts impressions with at least one click and zero
	// mouse movement — physically implausible for pointer devices.
	ClickNoMove int
	// ClickNoMoveDC is the subset of those from data-center addresses.
	ClickNoMoveDC int

	// SuspiciousUsers lists users (>= 3 impressions) whose entire
	// history shows clicks but not a single mouse move, sorted.
	SuspiciousUsers []string
}

// UAFlaggedShare returns the fraction of impressions with automation
// User-Agents.
func (r InteractionResult) UAFlaggedShare() float64 {
	if r.Impressions == 0 {
		return 0
	}
	return float64(r.UAFlagged) / float64(r.Impressions)
}

// SpoofShare returns the fraction of DC impressions presenting clean
// browser User-Agents — how blind a UA-only detector would be.
func (r InteractionResult) SpoofShare() float64 {
	if r.DCFlagged == 0 {
		return 0
	}
	return float64(r.SpoofedUA) / float64(r.DCFlagged)
}

// Interactions runs the behavioural analysis for one campaign ("" for
// all).
func (a *Auditor) Interactions(campaignID string) InteractionResult {
	res := InteractionResult{CampaignID: campaignID}

	type userAgg struct {
		imps, moves, clicks int
	}
	users := map[string]*userAgg{}

	a.visitImpressions(campaignID, func(im *store.Impression) bool {
		res.Impressions++
		agent := useragent.Parse(im.UserAgent)
		uaBot := agent.IsBot()
		dc := im.DataCenter != "" && im.DataCenter != "not-data-center" && im.DataCenter != "vpn-exception"
		if uaBot {
			res.UAFlagged++
		}
		if dc {
			res.DCFlagged++
			if uaBot {
				res.Corroborated++
			} else {
				res.SpoofedUA++
			}
		} else if uaBot {
			res.ResidentialAutomation++
		}
		if im.Clicks > 0 && im.MouseMoves == 0 {
			res.ClickNoMove++
			if dc {
				res.ClickNoMoveDC++
			}
		}
		u := users[im.UserKey]
		if u == nil {
			u = &userAgg{}
			users[im.UserKey] = u
		}
		u.imps++
		u.moves += im.MouseMoves
		u.clicks += im.Clicks
		return true
	})

	for key, u := range users {
		if u.imps >= 3 && u.clicks > 0 && u.moves == 0 {
			res.SuspiciousUsers = append(res.SuspiciousUsers, key)
		}
	}
	sort.Strings(res.SuspiciousUsers)
	return res
}
