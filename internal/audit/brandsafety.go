package audit

import (
	"sort"

	"adaudit/internal/adnet"
	"adaudit/internal/stats"
)

// BrandSafetyResult is the Figure 1 analysis: the Venn partition of
// publishers observed by the audit vs. reported by the vendor, plus the
// anonymous-inventory accounting that rules out "it's all
// anonymous.google" as an explanation for the gap.
type BrandSafetyResult struct {
	// CampaignID is the audited campaign, or "" for the aggregate.
	CampaignID string
	// Venn partitions publishers: A = audit-observed, B =
	// vendor-reported (non-anonymous rows).
	Venn stats.Venn
	// AuditOnly lists publishers the audit saw but the vendor never
	// reported — the set an advertiser needs for brand-safety
	// blacklisting and cannot currently get.
	AuditOnly []string
	// VendorOnly lists publishers the vendor reported but the audit
	// missed (the methodology's own §3.1 loss).
	VendorOnly []string
	// AnonymousImpressions is the impression count the vendor lumped
	// under "anonymous.google".
	AnonymousImpressions int64
	// UnsafeUnreported lists audit-only publishers whose metadata marks
	// them brand-unsafe: concrete brand-safety exposure the vendor's
	// report hides.
	UnsafeUnreported []string
}

// FractionUnreported is the paper's headline metric: the share of
// audit-observed publishers absent from the vendor report (57%
// aggregate, up to 75% for General-005).
func (r BrandSafetyResult) FractionUnreported() float64 {
	return r.Venn.FractionMissedByB()
}

// FractionAuditMissed is the audit-side loss: the share of
// vendor-reported publishers the beacon never logged (the paper's
// footnote-2 16.5%).
func (r BrandSafetyResult) FractionAuditMissed() float64 {
	return r.Venn.FractionMissedByA()
}

// BrandSafety compares one campaign's audit-observed publishers with
// its vendor report.
func (a *Auditor) BrandSafety(campaignID string, report *adnet.VendorReport) BrandSafetyResult {
	audited := stats.SetOf(a.Store.Publishers(campaignID))
	reported := stats.SetOf(report.ReportedPublishers())
	return a.brandSafety(campaignID, audited, reported, report.AnonymousImpressions())
}

// BrandSafetyAggregate pools every campaign's publishers and reports,
// reproducing Figure 1's all-campaigns diagram.
func (a *Auditor) BrandSafetyAggregate(reports map[string]*adnet.VendorReport) BrandSafetyResult {
	audited := stats.SetOf(a.Store.Publishers(""))
	reported := map[string]struct{}{}
	var anon int64
	for _, rep := range reports {
		for _, p := range rep.ReportedPublishers() {
			reported[p] = struct{}{}
		}
		anon += rep.AnonymousImpressions()
	}
	return a.brandSafety("", audited, reported, anon)
}

func (a *Auditor) brandSafety(campaignID string, audited, reported map[string]struct{}, anon int64) BrandSafetyResult {
	return BrandSafetyFromSets(a.Meta, campaignID, audited, reported, anon)
}

// BrandSafetyFromSets materializes the Figure 1 result from the two
// publisher sets — the shared fold behind both the batch analysis and
// the streaming engine's incremental view, so the two paths cannot
// drift. meta may be nil, disabling the UnsafeUnreported breakdown.
// Neither input set is retained or mutated.
func BrandSafetyFromSets(meta MetadataSource, campaignID string, audited, reported map[string]struct{}, anon int64) BrandSafetyResult {
	res := BrandSafetyResult{
		CampaignID:           campaignID,
		Venn:                 stats.VennOf(audited, reported),
		AnonymousImpressions: anon,
	}
	for p := range audited {
		if _, ok := reported[p]; !ok {
			res.AuditOnly = append(res.AuditOnly, p)
			if meta != nil {
				if m, ok := meta.PublisherMeta(p); ok && m.Unsafe {
					res.UnsafeUnreported = append(res.UnsafeUnreported, p)
				}
			}
		}
	}
	for p := range reported {
		if _, ok := audited[p]; !ok {
			res.VendorOnly = append(res.VendorOnly, p)
		}
	}
	sort.Strings(res.AuditOnly)
	sort.Strings(res.VendorOnly)
	sort.Strings(res.UnsafeUnreported)
	return res
}
