package audit

import (
	"testing"
	"time"

	"adaudit/internal/store"
)

func addConv(t *testing.T, st *store.Store, campaign, user string, at time.Time, value int64) {
	t.Helper()
	if _, err := st.InsertConversion(store.Conversion{
		CampaignID: campaign, UserKey: user, Action: "purchase",
		ValueCents: value, Timestamp: at,
	}); err != nil {
		t.Fatal(err)
	}
}

func addImpClicks(t *testing.T, st *store.Store, campaign, user string, at time.Time, clicks int, dc string) {
	t.Helper()
	if dc == "" {
		dc = "not-data-center"
	}
	if _, err := st.Insert(store.Impression{
		CampaignID: campaign, CreativeID: "cr", Publisher: "p.es",
		PageURL: "http://p.es/", UserAgent: "UA",
		IPPseudonym: "ip-" + user, UserKey: user,
		Timestamp: at, Exposure: time.Second, Clicks: clicks, DataCenter: dc,
	}); err != nil {
		t.Fatal(err)
	}
}

func TestConversionTotals(t *testing.T) {
	st := store.New()
	// u1: 2 exposures, 1 click, 1 conversion worth 20€.
	addImpClicks(t, st, "c", "u1", base, 1, "")
	addImpClicks(t, st, "c", "u1", base.Add(time.Hour), 0, "")
	addConv(t, st, "c", "u1", base.Add(2*time.Hour), 2000)
	// u2: 1 exposure, no conversion.
	addImpClicks(t, st, "c", "u2", base, 0, "")
	// bot: 2 exposures, 3 clicks, no conversion.
	addImpClicks(t, st, "c", "bot", base, 2, "provider-db")
	addImpClicks(t, st, "c", "bot", base.Add(time.Minute), 1, "provider-db")

	a := newAuditor(t, st, nil)
	res := a.Conversions("c")
	if res.Impressions != 5 || res.Clicks != 4 || res.Conversions != 1 {
		t.Fatalf("totals = %+v", res)
	}
	if res.ValueCents != 2000 {
		t.Fatalf("value = %d", res.ValueCents)
	}
	if got := res.ConversionRatio(); got != 0.2 {
		t.Fatalf("ratio = %v", got)
	}
	if got := res.CTR(); got != 0.8 {
		t.Fatalf("ctr = %v", got)
	}
	// The click-spam signature: DC clicks high, DC conversions zero.
	if res.DataCenterImpressions != 2 || res.DataCenterClicks != 3 {
		t.Fatalf("dc segment = %+v", res)
	}
	if got := res.DataCenterCTR(); got != 1.5 {
		t.Fatalf("dc ctr = %v", got)
	}
	if res.DataCenterConversions != 0 {
		t.Fatalf("dc conversions = %d", res.DataCenterConversions)
	}
}

func TestConversionFrequencyCurve(t *testing.T) {
	st := store.New()
	// One user with 1 exposure and a conversion; one with 15 exposures
	// and a conversion; one with 30 exposures and none.
	addImpClicks(t, st, "c", "u1", base, 0, "")
	addConv(t, st, "c", "u1", base.Add(time.Hour), 100)
	for i := 0; i < 15; i++ {
		addImpClicks(t, st, "c", "u15", base.Add(time.Duration(i)*time.Minute), 0, "")
	}
	addConv(t, st, "c", "u15", base.Add(time.Hour), 100)
	for i := 0; i < 30; i++ {
		addImpClicks(t, st, "c", "u30", base.Add(time.Duration(i)*time.Minute), 0, "")
	}

	a := newAuditor(t, st, nil)
	res := a.Conversions("c")
	byLo := map[int]ExposureBucket{}
	for _, b := range res.ByExposure {
		byLo[b.Lo] = b
	}
	if b := byLo[1]; b.Users != 1 || b.Conversions != 1 {
		t.Fatalf("bucket [1,1] = %+v", b)
	}
	if b := byLo[11]; b.Users != 1 || b.Conversions != 1 || b.Impressions != 15 {
		t.Fatalf("bucket [11,20] = %+v", b)
	}
	if b := byLo[21]; b.Users != 1 || b.Conversions != 0 || b.Impressions != 30 {
		t.Fatalf("bucket [21,50] = %+v", b)
	}
	if got := byLo[1].ConversionsPerUser(); got != 1 {
		t.Fatalf("conv/user = %v", got)
	}
	if got := (ExposureBucket{}).ConversionsPerUser(); got != 0 {
		t.Fatalf("empty bucket conv/user = %v", got)
	}
}

func TestConversionsDontCrossCampaigns(t *testing.T) {
	st := store.New()
	addImpClicks(t, st, "c1", "u", base, 0, "")
	addConv(t, st, "c2", "u", base, 100)
	a := newAuditor(t, st, nil)
	if got := a.Conversions("c1"); got.Conversions != 0 {
		t.Fatalf("c1 picked up c2's conversion: %+v", got)
	}
	if got := a.Conversions("c2"); got.Conversions != 1 {
		t.Fatalf("c2 lost its conversion: %+v", got)
	}
}
