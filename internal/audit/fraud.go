package audit

import (
	"sort"

	"adaudit/internal/store"
)

// FraudResult is the Table 4 analysis: how much of a campaign's traffic
// came from data-center IP addresses, which the MRC/JICWEBS invalid-
// traffic guidelines the paper cites treat as likely fraud.
type FraudResult struct {
	CampaignID string
	// DistinctIPs is the number of distinct client IPs (pseudonyms)
	// observed; DataCenterIPs how many of them the detection cascade
	// flagged.
	DistinctIPs   int
	DataCenterIPs int
	// Impressions and DataCenterImpressions count delivered vs.
	// DC-delivered impressions.
	Impressions           int
	DataCenterImpressions int
	// Publishers and PublishersServingDC count distinct publishers vs.
	// those that served at least one impression to a DC address.
	Publishers          int
	PublishersServingDC int
	// ByVerdict breaks DC impressions down by detection stage
	// (provider-db / deny-list / manual), the cascade ablation.
	ByVerdict map[string]int
	// TopDCPublishers lists the publishers with the most DC
	// impressions, most exposed first (at most 20).
	TopDCPublishers []string
}

// PctDataCenterIPs is Table 4 column 1.
func (r FraudResult) PctDataCenterIPs() float64 {
	if r.DistinctIPs == 0 {
		return 0
	}
	return float64(r.DataCenterIPs) / float64(r.DistinctIPs)
}

// PctDataCenterImpressions is Table 4 column 2.
func (r FraudResult) PctDataCenterImpressions() float64 {
	if r.Impressions == 0 {
		return 0
	}
	return float64(r.DataCenterImpressions) / float64(r.Impressions)
}

// PctPublishersServingDC is Table 4 column 3.
func (r FraudResult) PctPublishersServingDC() float64 {
	if r.Publishers == 0 {
		return 0
	}
	return float64(r.PublishersServingDC) / float64(r.Publishers)
}

// Fraud runs the Table 4 analysis for one campaign ("" for all). The
// per-impression data-center verdicts were computed at ingest time —
// before IP anonymisation, as the paper's methodology requires — so the
// analysis only aggregates them.
func (a *Auditor) Fraud(campaignID string) FraudResult {
	res := FraudResult{CampaignID: campaignID, ByVerdict: map[string]int{}}
	ipSeen := map[string]bool{}  // pseudonym -> isDC
	pubSeen := map[string]bool{} // publisher -> servedDC
	dcPerPub := map[string]int{}

	a.visitImpressions(campaignID, func(im *store.Impression) bool {
		res.Impressions++
		isDC := im.DataCenter != "" && im.DataCenter != "not-data-center" && im.DataCenter != "vpn-exception"
		if isDC {
			res.DataCenterImpressions++
			res.ByVerdict[im.DataCenter]++
			dcPerPub[im.Publisher]++
		}
		ipSeen[im.IPPseudonym] = ipSeen[im.IPPseudonym] || isDC
		pubSeen[im.Publisher] = pubSeen[im.Publisher] || isDC
		return true
	})
	res.DistinctIPs = len(ipSeen)
	res.Publishers = len(pubSeen)
	for _, dc := range ipSeen {
		if dc {
			res.DataCenterIPs++
		}
	}
	for _, dc := range pubSeen {
		if dc {
			res.PublishersServingDC++
		}
	}

	pubs := make([]string, 0, len(dcPerPub))
	for p := range dcPerPub {
		pubs = append(pubs, p)
	}
	sort.Slice(pubs, func(i, j int) bool {
		if dcPerPub[pubs[i]] != dcPerPub[pubs[j]] {
			return dcPerPub[pubs[i]] > dcPerPub[pubs[j]]
		}
		return pubs[i] < pubs[j]
	})
	if len(pubs) > 20 {
		pubs = pubs[:20]
	}
	res.TopDCPublishers = pubs
	return res
}
