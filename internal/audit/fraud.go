package audit

import (
	"sort"

	"adaudit/internal/store"
)

// FraudResult is the Table 4 analysis: how much of a campaign's traffic
// came from data-center IP addresses, which the MRC/JICWEBS invalid-
// traffic guidelines the paper cites treat as likely fraud.
type FraudResult struct {
	CampaignID string
	// DistinctIPs is the number of distinct client IPs (pseudonyms)
	// observed; DataCenterIPs how many of them the detection cascade
	// flagged.
	DistinctIPs   int
	DataCenterIPs int
	// Impressions and DataCenterImpressions count delivered vs.
	// DC-delivered impressions.
	Impressions           int
	DataCenterImpressions int
	// Publishers and PublishersServingDC count distinct publishers vs.
	// those that served at least one impression to a DC address.
	Publishers          int
	PublishersServingDC int
	// ByVerdict breaks DC impressions down by detection stage
	// (provider-db / deny-list / manual), the cascade ablation.
	ByVerdict map[string]int
	// TopDCPublishers lists the publishers with the most DC
	// impressions, most exposed first (at most 20).
	TopDCPublishers []string
}

// PctDataCenterIPs is Table 4 column 1.
func (r FraudResult) PctDataCenterIPs() float64 {
	if r.DistinctIPs == 0 {
		return 0
	}
	return float64(r.DataCenterIPs) / float64(r.DistinctIPs)
}

// PctDataCenterImpressions is Table 4 column 2.
func (r FraudResult) PctDataCenterImpressions() float64 {
	if r.Impressions == 0 {
		return 0
	}
	return float64(r.DataCenterImpressions) / float64(r.Impressions)
}

// PctPublishersServingDC is Table 4 column 3.
func (r FraudResult) PctPublishersServingDC() float64 {
	if r.Publishers == 0 {
		return 0
	}
	return float64(r.PublishersServingDC) / float64(r.Publishers)
}

// IsDataCenterVerdict reports whether an ingest-time data-center
// verdict (Impression.DataCenter) counts as data-center traffic: any
// cascade stage except the explicit non-DC and VPN-exception outcomes.
func IsDataCenterVerdict(verdict string) bool {
	return verdict != "" && verdict != "not-data-center" && verdict != "vpn-exception"
}

// Fraud runs the Table 4 analysis for one campaign ("" for all). The
// per-impression data-center verdicts were computed at ingest time —
// before IP anonymisation, as the paper's methodology requires — so the
// analysis only aggregates them.
func (a *Auditor) Fraud(campaignID string) FraudResult {
	var impressions, dcImpressions int
	byVerdict := map[string]int{}
	ipSeen := map[string]bool{}  // pseudonym -> isDC
	pubSeen := map[string]bool{} // publisher -> servedDC
	dcPerPub := map[string]int{}

	a.visitImpressions(campaignID, func(im *store.Impression) bool {
		impressions++
		isDC := IsDataCenterVerdict(im.DataCenter)
		if isDC {
			dcImpressions++
			byVerdict[im.DataCenter]++
			dcPerPub[im.Publisher]++
		}
		ipSeen[im.IPPseudonym] = ipSeen[im.IPPseudonym] || isDC
		pubSeen[im.Publisher] = pubSeen[im.Publisher] || isDC
		return true
	})
	return FraudFromState(campaignID, impressions, dcImpressions, byVerdict, ipSeen, pubSeen, dcPerPub)
}

// FraudFromState materializes the Table 4 result from the fraud
// counters: total and DC impression counts, DC impressions by cascade
// verdict, per-pseudonym and per-publisher served-DC flags, and DC
// impressions per publisher. Shared by the batch analysis and the
// streaming engine (which maintains exactly these maps incrementally).
// The inputs are read, never retained: ByVerdict is copied into a
// fresh map and the top-publishers list is built here.
func FraudFromState(campaignID string, impressions, dcImpressions int, byVerdict map[string]int, ipSeen, pubSeen map[string]bool, dcPerPub map[string]int) FraudResult {
	res := FraudResult{
		CampaignID:            campaignID,
		Impressions:           impressions,
		DataCenterImpressions: dcImpressions,
		DistinctIPs:           len(ipSeen),
		Publishers:            len(pubSeen),
		ByVerdict:             make(map[string]int, len(byVerdict)),
	}
	for v, n := range byVerdict {
		res.ByVerdict[v] = n
	}
	for _, dc := range ipSeen {
		if dc {
			res.DataCenterIPs++
		}
	}
	for _, dc := range pubSeen {
		if dc {
			res.PublishersServingDC++
		}
	}

	pubs := make([]string, 0, len(dcPerPub))
	for p := range dcPerPub {
		pubs = append(pubs, p)
	}
	sort.Slice(pubs, func(i, j int) bool {
		if dcPerPub[pubs[i]] != dcPerPub[pubs[j]] {
			return dcPerPub[pubs[i]] > dcPerPub[pubs[j]]
		}
		return pubs[i] < pubs[j]
	})
	if len(pubs) > 20 {
		pubs = pubs[:20]
	}
	res.TopDCPublishers = pubs
	return res
}
