package audit

import (
	"math"
	"sort"
	"time"

	"adaudit/internal/store"
)

// Behavioral bot scoring — fraud detection beyond IP metadata. The
// DC-IP cascade (Table 4) catches data-center automation, but bots
// routed through residential proxies present clean ipmeta. What they
// cannot fake cheaply is organic behavior: real users arrive on
// bursty, irregular schedules, dwell for wildly varying times, and
// occasionally convert. Fraud automation runs on a timer — fixed
// inter-impression cadence, fixed exposure, fixed visibility, zero
// conversions. The detector flags users whose whole behavioral
// signature is degenerate; every threshold is exported so the simtest
// oracle can compute expected flags independently from its shadow
// model.
const (
	// BehaviorMinImpressions is the minimum per-user impression count
	// before the cadence statistics mean anything.
	BehaviorMinImpressions = 5
	// BehaviorMaxCadenceCV is the flag threshold on the coefficient of
	// variation of a user's inter-arrival times. Organic arrivals are
	// approximately log-normal (CV near or above 1); a timer sits at 0.
	BehaviorMaxCadenceCV = 0.05
	// BehaviorDegenerateEps bounds the per-user exposure range (in
	// seconds) and visible-fraction range that still count as "no
	// variance".
	BehaviorDegenerateEps = 1e-9
)

// Placement-inflation thresholds: stacked/1-px placements keep ads
// "rendered" (long exposures) while almost no pixels are ever visible.
const (
	// InflationMinMeasured is the minimum visibility-measured
	// impressions per publisher before its mean fraction is scored.
	InflationMinMeasured = 5
	// InflationMaxMeanFraction flags publishers whose mean measured
	// visible fraction sits at 1-px levels.
	InflationMaxMeanFraction = 0.10
	// InflationMinViewableShare requires the exposure side of the
	// inflation: mostly "viewable" by time yet never on screen.
	InflationMinViewableShare = 0.5
)

// BotUser is one flagged user with its degenerate signature.
type BotUser struct {
	UserKey     string
	Impressions int
	// CadenceCV is the inter-arrival coefficient of variation that
	// tripped the flag.
	CadenceCV float64
	// DataCenter marks users the DC-IP cascade also caught; flagged
	// users without it are the residential-proxy population only this
	// detector sees.
	DataCenter bool
}

// InflatedPublisher is one flagged placement operator.
type InflatedPublisher struct {
	Publisher   string
	Impressions int
	Measured    int
	// MeanVisibleFraction is the mean measured visible-pixel fraction;
	// ViewableShare the share of impressions exposed >= 1 s.
	MeanVisibleFraction float64
	ViewableShare       float64
}

// BehaviorResult is the behavioral fraud dimension: per-user bot
// scoring plus per-publisher placement-inflation scoring.
type BehaviorResult struct {
	CampaignID string
	// Users counts distinct users; UsersScored those with enough
	// impressions to score.
	Users       int
	UsersScored int
	// BotUsers lists flagged users, most impressions first;
	// BotImpressions sums their impressions. ResidentialBotUsers
	// counts the flagged users the DC cascade did NOT catch.
	BotUsers            []BotUser
	BotImpressions      int
	ResidentialBotUsers int
	// Publishers counts distinct publishers; PublishersScored those
	// with enough measured impressions; InflatedPublishers the flagged
	// ones with InflatedImpressions their impression total.
	Publishers          int
	PublishersScored    int
	InflatedPublishers  []InflatedPublisher
	InflatedImpressions int
	// Impressions is the campaign's impression total, the denominator
	// of the share methods.
	Impressions int
}

// PctBotImpressions returns flagged users' share of the campaign's
// impressions.
func (r BehaviorResult) PctBotImpressions() float64 {
	if r.Impressions == 0 {
		return 0
	}
	return float64(r.BotImpressions) / float64(r.Impressions)
}

// PctInflatedImpressions returns flagged publishers' share of the
// campaign's impressions.
func (r BehaviorResult) PctInflatedImpressions() float64 {
	if r.Impressions == 0 {
		return 0
	}
	return float64(r.InflatedImpressions) / float64(r.Impressions)
}

// CadenceCV returns the coefficient of variation (stddev/mean) of the
// inter-arrival times of ts, sorting ts in place. A single repeated
// timestamp (mean gap 0) returns 0 — maximally regular. Fewer than
// three timestamps return +Inf: no cadence is measurable.
func CadenceCV(ts []time.Time) float64 {
	if len(ts) < 3 {
		return math.Inf(1)
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i].Before(ts[j]) })
	n := float64(len(ts) - 1)
	var sum float64
	for i := 1; i < len(ts); i++ {
		sum += float64(ts[i].Sub(ts[i-1]))
	}
	mean := sum / n
	if mean == 0 {
		return 0
	}
	var sq float64
	for i := 1; i < len(ts); i++ {
		d := float64(ts[i].Sub(ts[i-1])) - mean
		sq += d * d
	}
	return math.Sqrt(sq/n) / mean
}

// BehaviorState is the per-campaign raw material of the behavioral
// dimension, built identically by the batch auditor (one store visit
// in insertion order) and the streaming engine (slot-indexed state
// maintained across inserts and merges). Slices indexed by slot hold
// the mutable per-impression fields — merges overwrite a slot in
// place, so order-dependent float folds stay bit-identical between
// the two paths.
type BehaviorState struct {
	// Times maps user key -> impression timestamps (any order; the
	// fold sorts, so only the multiset matters).
	Times map[string][]time.Time
	// UserSlots and PubSlots map user key / publisher -> slot indexes
	// in insertion order.
	UserSlots map[string][]int
	PubSlots  map[string][]int
	// Exposures (seconds), VisMeasured and VisFrac are slot-indexed.
	Exposures   []float64
	VisMeasured []bool
	VisFrac     []float64
	// UserConvs counts conversions per user key; UserDC marks users
	// with at least one DC-verdict impression.
	UserConvs map[string]int
	UserDC    map[string]bool
}

// Behavior runs the behavioral fraud analysis for one campaign (""
// for all campaigns together).
func (a *Auditor) Behavior(campaignID string) BehaviorResult {
	n := a.impressionCount(campaignID)
	s := BehaviorState{
		Times:       map[string][]time.Time{},
		UserSlots:   map[string][]int{},
		PubSlots:    map[string][]int{},
		Exposures:   make([]float64, 0, n),
		VisMeasured: make([]bool, 0, n),
		VisFrac:     make([]float64, 0, n),
		UserConvs:   map[string]int{},
		UserDC:      map[string]bool{},
	}
	slot := 0
	a.visitImpressions(campaignID, func(im *store.Impression) bool {
		s.Times[im.UserKey] = append(s.Times[im.UserKey], im.Timestamp)
		s.UserSlots[im.UserKey] = append(s.UserSlots[im.UserKey], slot)
		s.PubSlots[im.Publisher] = append(s.PubSlots[im.Publisher], slot)
		s.Exposures = append(s.Exposures, im.Exposure.Seconds())
		s.VisMeasured = append(s.VisMeasured, im.VisibilityMeasured)
		s.VisFrac = append(s.VisFrac, im.MaxVisibleFraction)
		if IsDataCenterVerdict(im.DataCenter) {
			s.UserDC[im.UserKey] = true
		}
		slot++
		return true
	})
	if campaignID == "" {
		for _, cid := range a.Store.ConvertingCampaigns() {
			for _, c := range a.Store.Conversions(cid) {
				s.UserConvs[c.UserKey]++
			}
		}
	} else {
		for _, c := range a.Store.Conversions(campaignID) {
			s.UserConvs[c.UserKey]++
		}
	}
	return BehaviorFromState(campaignID, s)
}

// BehaviorFromState materializes the behavioral result — the shared
// fold behind the batch analysis and the streaming engine's view.
// Timestamp slices are sorted in place; slot slices are only read.
func BehaviorFromState(campaignID string, s BehaviorState) BehaviorResult {
	res := BehaviorResult{
		CampaignID: campaignID,
		Users:      len(s.UserSlots),
		Publishers: len(s.PubSlots),
	}
	res.Impressions = len(s.Exposures)

	for user, slots := range s.UserSlots {
		if len(slots) < BehaviorMinImpressions {
			continue
		}
		res.UsersScored++
		if s.UserConvs[user] > 0 {
			continue // converting users are humans whatever their cadence
		}
		cv := CadenceCV(s.Times[user])
		if !(cv <= BehaviorMaxCadenceCV) {
			continue
		}
		if !degenerateSlots(s, slots) {
			continue
		}
		res.BotUsers = append(res.BotUsers, BotUser{
			UserKey:     user,
			Impressions: len(slots),
			CadenceCV:   cv,
			DataCenter:  s.UserDC[user],
		})
	}
	sort.Slice(res.BotUsers, func(i, j int) bool {
		a, b := res.BotUsers[i], res.BotUsers[j]
		if a.Impressions != b.Impressions {
			return a.Impressions > b.Impressions
		}
		return a.UserKey < b.UserKey
	})
	for _, u := range res.BotUsers {
		res.BotImpressions += u.Impressions
		if !u.DataCenter {
			res.ResidentialBotUsers++
		}
	}

	threshold := ViewabilityThreshold.Seconds()
	for pub, slots := range s.PubSlots {
		measured, viewable := 0, 0
		var fracSum float64
		for _, sl := range slots {
			if s.Exposures[sl] >= threshold {
				viewable++
			}
			if s.VisMeasured[sl] {
				measured++
				fracSum += s.VisFrac[sl]
			}
		}
		if measured < InflationMinMeasured {
			continue
		}
		res.PublishersScored++
		mean := fracSum / float64(measured)
		vshare := float64(viewable) / float64(len(slots))
		if mean <= InflationMaxMeanFraction && vshare >= InflationMinViewableShare {
			res.InflatedPublishers = append(res.InflatedPublishers, InflatedPublisher{
				Publisher:           pub,
				Impressions:         len(slots),
				Measured:            measured,
				MeanVisibleFraction: mean,
				ViewableShare:       vshare,
			})
		}
	}
	sort.Slice(res.InflatedPublishers, func(i, j int) bool {
		a, b := res.InflatedPublishers[i], res.InflatedPublishers[j]
		if a.Impressions != b.Impressions {
			return a.Impressions > b.Impressions
		}
		return a.Publisher < b.Publisher
	})
	for _, p := range res.InflatedPublishers {
		res.InflatedImpressions += p.Impressions
	}
	return res
}

// degenerateSlots reports whether the user's mutable per-impression
// signals show no variance at all: exposure range within epsilon, and
// — among visibility-measured impressions, if any — visible-fraction
// range within epsilon.
func degenerateSlots(s BehaviorState, slots []int) bool {
	minE, maxE := math.Inf(1), math.Inf(-1)
	minF, maxF := math.Inf(1), math.Inf(-1)
	measured := false
	for _, sl := range slots {
		e := s.Exposures[sl]
		if e < minE {
			minE = e
		}
		if e > maxE {
			maxE = e
		}
		if s.VisMeasured[sl] {
			measured = true
			f := s.VisFrac[sl]
			if f < minF {
				minF = f
			}
			if f > maxF {
				maxF = f
			}
		}
	}
	if maxE-minE > BehaviorDegenerateEps {
		return false
	}
	if measured && maxF-minF > BehaviorDegenerateEps {
		return false
	}
	return true
}
