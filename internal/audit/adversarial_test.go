package audit

import (
	"math"
	"testing"
	"time"

	"adaudit/internal/adnet"
)

// Unit tests for the three adversarial dimensions, against both a
// hand-rolled directory (full control of authorization outcomes) and
// the real simulated registry. The end-to-end precision/recall
// contract lives in internal/simtest; these pin the pure folds.

// fakeDirectory authorizes explicit (publisher, seller) pairs, knows
// one exchange, and maps publishers to owner groups by table.
type fakeDirectory struct {
	authorized map[[2]string]bool
	exchange   string
	groups     map[string]string
}

func (d fakeDirectory) Authorized(pub, seller string) bool {
	return seller == d.exchange || d.authorized[[2]string{pub, seller}]
}
func (d fakeDirectory) KnownExchange(seller string) bool { return seller == d.exchange }
func (d fakeDirectory) OwnerGroup(pub string) string {
	if g, ok := d.groups[pub]; ok {
		return g
	}
	return "group-" + pub
}

func TestCadenceCV(t *testing.T) {
	base := time.Unix(1700000000, 0)
	at := func(secs ...float64) []time.Time {
		ts := make([]time.Time, len(secs))
		for i, s := range secs {
			ts[i] = base.Add(time.Duration(s * float64(time.Second)))
		}
		return ts
	}
	if cv := CadenceCV(at(0, 30)); !math.IsInf(cv, 1) {
		t.Errorf("two timestamps: cv = %v, want +Inf", cv)
	}
	if cv := CadenceCV(at(0, 0, 0)); cv != 0 {
		t.Errorf("repeated timestamp: cv = %v, want 0", cv)
	}
	if cv := CadenceCV(at(0, 30, 60, 90, 120)); cv != 0 {
		t.Errorf("perfect timer: cv = %v, want 0", cv)
	}
	// Unsorted input: the fold sorts in place.
	if cv := CadenceCV(at(90, 0, 60, 120, 30)); cv != 0 {
		t.Errorf("unsorted perfect timer: cv = %v, want 0", cv)
	}
	if cv := CadenceCV(at(0, 10, 50, 51, 200)); cv <= BehaviorMaxCadenceCV {
		t.Errorf("organic gaps: cv = %v, should exceed the flag threshold", cv)
	}
}

func TestSellerAuditFromReport(t *testing.T) {
	dir := fakeDirectory{
		authorized: map[[2]string]bool{
			{"good.example", "direct:good"}: true,
		},
		exchange: "open-exchange",
	}
	rep := &adnet.VendorReport{Rows: []adnet.ReportRow{
		{Publisher: "good.example", SellerID: "direct:good", Impressions: 100},
		{Publisher: "good.example", SellerID: "open-exchange", Impressions: 40},
		{Publisher: "good.example", SellerID: "direct:evil", Impressions: 7},
		{Publisher: "good.example", SellerID: "direct:evil", Impressions: 3},
		{Publisher: "legacy.example", Impressions: 9}, // no attribution
	}}
	res := SellerAuditFromReport("c", rep, dir)
	if res.RowsChecked != 4 || res.UnattributedRows != 1 {
		t.Fatalf("rows checked/unattributed = %d/%d, want 4/1", res.RowsChecked, res.UnattributedRows)
	}
	if res.AuthorizedImpressions != 140 || res.UnauthorizedImpressions != 10 {
		t.Fatalf("authorized/unauthorized = %d/%d, want 140/10",
			res.AuthorizedImpressions, res.UnauthorizedImpressions)
	}
	// The two evil rows merge into one pair with summed impressions.
	if len(res.UnauthorizedPairs) != 1 {
		t.Fatalf("pairs = %+v, want one merged pair", res.UnauthorizedPairs)
	}
	p := res.UnauthorizedPairs[0]
	if p.Publisher != "good.example" || p.SellerID != "direct:evil" || p.Impressions != 10 {
		t.Fatalf("pair = %+v", p)
	}
	if got := res.UnauthorizedRate(); math.Abs(got-10.0/150.0) > 1e-12 {
		t.Fatalf("unauthorized rate = %v", got)
	}

	empty := SellerAuditFromReport("c", nil, dir)
	if empty.RowsChecked != 0 || len(empty.UnauthorizedPairs) != 0 {
		t.Fatalf("nil report not empty: %+v", empty)
	}
}

func TestSellerAuditAgainstRegistry(t *testing.T) {
	// The simulated registry's three declared forms all pass; a foreign
	// direct account does not.
	pub := "news-site.example"
	rep := &adnet.VendorReport{Rows: []adnet.ReportRow{
		{Publisher: pub, SellerID: adnet.DirectSellerID(pub), Impressions: 1},
		{Publisher: pub, SellerID: adnet.OwnerSellerID(adnet.OwnerGroupOf(pub)), Impressions: 1},
		{Publisher: pub, SellerID: adnet.ExchangeSellerID, Impressions: 1},
		{Publisher: pub, SellerID: adnet.DirectSellerID("other.example"), Impressions: 1},
	}}
	res := SellerAuditFromReport("c", rep, adnet.SellerRegistry{})
	if res.AuthorizedImpressions != 3 || res.UnauthorizedImpressions != 1 {
		t.Fatalf("authorized/unauthorized = %d/%d, want 3/1",
			res.AuthorizedImpressions, res.UnauthorizedImpressions)
	}
}

func TestPoolingFromReport(t *testing.T) {
	dir := fakeDirectory{exchange: "open-exchange", groups: map[string]string{
		"a.example": "g1", "b.example": "g2", "c.example": "g3",
		"d.example": "g4", "e.example": "g4", // same group: no span growth
	}}
	rep := &adnet.VendorReport{Rows: []adnet.ReportRow{
		{Publisher: "a.example", SellerID: "pool-x", Impressions: 5},
		{Publisher: "b.example", SellerID: "pool-x", Impressions: 5},
		{Publisher: "c.example", SellerID: "pool-x", Impressions: 5},
		{Publisher: "d.example", SellerID: "pool-x", Impressions: 5},
		{Publisher: "e.example", SellerID: "pool-x", Impressions: 5},
		// A narrow seller and the exchange never flag, whatever they span.
		{Publisher: "a.example", SellerID: "direct:a", Impressions: 9},
		{Publisher: "a.example", SellerID: "open-exchange", Impressions: 9},
		{Publisher: "b.example", SellerID: "open-exchange", Impressions: 9},
		{Publisher: "c.example", SellerID: "open-exchange", Impressions: 9},
		{Publisher: "d.example", SellerID: "open-exchange", Impressions: 9},
		{Publisher: "legacy.example", Impressions: 9},
	}}
	res := PoolingFromReport("c", rep, dir, 3)
	if res.SellersChecked != 2 { // pool-x and direct:a; the exchange is exempt
		t.Fatalf("sellers checked = %d, want 2", res.SellersChecked)
	}
	if res.MaxGroupSpan != 4 || res.GroupLimit != 3 {
		t.Fatalf("span/limit = %d/%d, want 4/3", res.MaxGroupSpan, res.GroupLimit)
	}
	if len(res.PooledSellers) != 1 {
		t.Fatalf("pooled sellers = %+v, want exactly pool-x", res.PooledSellers)
	}
	ps := res.PooledSellers[0]
	if ps.SellerID != "pool-x" || ps.OwnerGroups != 4 || ps.Publishers != 5 || ps.Impressions != 25 {
		t.Fatalf("pooled footprint = %+v", ps)
	}

	// At the limit (span == K) nothing flags.
	within := PoolingFromReport("c", rep, dir, 4)
	if len(within.PooledSellers) != 0 {
		t.Fatalf("span == limit flagged: %+v", within.PooledSellers)
	}
	empty := PoolingFromReport("c", nil, dir, 3)
	if empty.SellersChecked != 0 || len(empty.PooledSellers) != 0 {
		t.Fatalf("nil report not empty: %+v", empty)
	}
}

// behaviorFixture builds a BehaviorState with one perfect timer bot,
// one organic heavy user, and one stacked publisher hosting the
// organic user's impressions.
func behaviorFixture() BehaviorState {
	base := time.Unix(1700000000, 0)
	s := BehaviorState{
		Times:     map[string][]time.Time{},
		UserSlots: map[string][]int{},
		PubSlots:  map[string][]int{},
		UserConvs: map[string]int{},
		UserDC:    map[string]bool{},
	}
	add := func(user, pub string, at time.Time, exposure float64, measured bool, frac float64) {
		slot := len(s.Exposures)
		s.Times[user] = append(s.Times[user], at)
		s.UserSlots[user] = append(s.UserSlots[user], slot)
		s.PubSlots[pub] = append(s.PubSlots[pub], slot)
		s.Exposures = append(s.Exposures, exposure)
		s.VisMeasured = append(s.VisMeasured, measured)
		s.VisFrac = append(s.VisFrac, frac)
	}
	for i := 0; i < 6; i++ { // the timer
		add("bot", "botfarm.example", base.Add(time.Duration(i)*45*time.Second), 2.0, true, 0.35)
	}
	organic := []float64{0, 11, 55, 300, 1800, 1900} // bursty human gaps
	for i, g := range organic {                      // the human, on the stacked placement
		add("human", "stacked.example", base.Add(time.Duration(g*float64(time.Second))),
			3.0+float64(i), true, 0.04)
	}
	return s
}

func TestBehaviorFromStateBotScoring(t *testing.T) {
	res := BehaviorFromState("c", behaviorFixture())
	if res.Users != 2 || res.UsersScored != 2 || res.Impressions != 12 {
		t.Fatalf("users/scored/imps = %d/%d/%d", res.Users, res.UsersScored, res.Impressions)
	}
	if len(res.BotUsers) != 1 || res.BotUsers[0].UserKey != "bot" {
		t.Fatalf("bot users = %+v, want exactly the timer", res.BotUsers)
	}
	bot := res.BotUsers[0]
	if bot.Impressions != 6 || bot.CadenceCV != 0 || bot.DataCenter {
		t.Fatalf("bot = %+v", bot)
	}
	if res.ResidentialBotUsers != 1 || res.BotImpressions != 6 {
		t.Fatalf("residential/imps = %d/%d", res.ResidentialBotUsers, res.BotImpressions)
	}

	// A single conversion acquits the same signature.
	s := behaviorFixture()
	s.UserConvs["bot"] = 1
	if got := BehaviorFromState("c", s); len(got.BotUsers) != 0 {
		t.Fatalf("converting timer still flagged: %+v", got.BotUsers)
	}

	// Exposure variance acquits too.
	s = behaviorFixture()
	s.Exposures[s.UserSlots["bot"][0]] = 2.5
	if got := BehaviorFromState("c", s); len(got.BotUsers) != 0 {
		t.Fatalf("varying-exposure timer still flagged: %+v", got.BotUsers)
	}

	// A DC-caught bot keeps the flag but is not counted residential.
	s = behaviorFixture()
	s.UserDC["bot"] = true
	got := BehaviorFromState("c", s)
	if len(got.BotUsers) != 1 || !got.BotUsers[0].DataCenter || got.ResidentialBotUsers != 0 {
		t.Fatalf("dc bot = %+v residential = %d", got.BotUsers, got.ResidentialBotUsers)
	}
}

func TestBehaviorFromStateInflation(t *testing.T) {
	res := BehaviorFromState("c", behaviorFixture())
	// Both publishers have 6 measured impressions and full viewable
	// share; only the stacked one sits at 1-px fractions.
	if res.Publishers != 2 || res.PublishersScored != 2 {
		t.Fatalf("publishers/scored = %d/%d", res.Publishers, res.PublishersScored)
	}
	if len(res.InflatedPublishers) != 1 || res.InflatedPublishers[0].Publisher != "stacked.example" {
		t.Fatalf("inflated = %+v, want exactly stacked.example", res.InflatedPublishers)
	}
	p := res.InflatedPublishers[0]
	if p.Impressions != 6 || p.Measured != 6 || p.ViewableShare != 1 ||
		math.Abs(p.MeanVisibleFraction-0.04) > 1e-12 {
		t.Fatalf("inflated footprint = %+v", p)
	}
	if res.InflatedImpressions != 6 {
		t.Fatalf("inflated imps = %d", res.InflatedImpressions)
	}

	// Raising the fractions above the 1-px band clears the flag.
	s := behaviorFixture()
	for _, sl := range s.PubSlots["stacked.example"] {
		s.VisFrac[sl] = 0.5
	}
	// (the "human" user's signature is still non-degenerate: exposures vary)
	if got := BehaviorFromState("c", s); len(got.InflatedPublishers) != 0 {
		t.Fatalf("visible placement still flagged: %+v", got.InflatedPublishers)
	}

	// Short exposures (below the viewability threshold) clear it too:
	// inflation requires looking viewable by time.
	s = behaviorFixture()
	for _, sl := range s.PubSlots["stacked.example"] {
		s.Exposures[sl] = 0.2
	}
	if got := BehaviorFromState("c", s); len(got.InflatedPublishers) != 0 {
		t.Fatalf("short-exposure placement still flagged: %+v", got.InflatedPublishers)
	}
}
