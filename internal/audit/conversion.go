package audit

import (
	"sort"

	"adaudit/internal/store"
)

// ConversionResult is the conversion-ratio analysis the paper defines
// in §2 and defers to future work: how exposures turn into desired
// actions, segmented by traffic quality, plus the conversion-vs-
// frequency curve behind the "cap at 10" recommendation the paper
// cites.
type ConversionResult struct {
	CampaignID string
	// Impressions / Clicks / Conversions are the logged totals.
	Impressions int
	Clicks      int
	Conversions int
	// ValueCents is the summed conversion value.
	ValueCents int64
	// DataCenter segments the same counters over data-center traffic —
	// the tell: bots click but never buy.
	DataCenterImpressions int
	DataCenterClicks      int
	DataCenterConversions int
	// ByExposure maps a user's total exposure count (bucketed) to the
	// users and conversions at that frequency, the empirical version of
	// the optimal-frequency curve.
	ByExposure []ExposureBucket
}

// ExposureBucket aggregates users whose total exposure count falls in
// [Lo, Hi].
type ExposureBucket struct {
	Lo, Hi      int
	Users       int
	Impressions int
	Conversions int
}

// ConversionsPerUser returns the bucket's conversions per user.
func (b ExposureBucket) ConversionsPerUser() float64 {
	if b.Users == 0 {
		return 0
	}
	return float64(b.Conversions) / float64(b.Users)
}

// ConversionRatio is conversions per impression (§2's definition).
func (r ConversionResult) ConversionRatio() float64 {
	if r.Impressions == 0 {
		return 0
	}
	return float64(r.Conversions) / float64(r.Impressions)
}

// CTR is clicks per impression.
func (r ConversionResult) CTR() float64 {
	if r.Impressions == 0 {
		return 0
	}
	return float64(r.Clicks) / float64(r.Impressions)
}

// DataCenterCTR is the click rate of data-center traffic — typically
// comparable to or above the human CTR while converting at zero, the
// click-spam signature.
func (r ConversionResult) DataCenterCTR() float64 {
	if r.DataCenterImpressions == 0 {
		return 0
	}
	return float64(r.DataCenterClicks) / float64(r.DataCenterImpressions)
}

// exposureBucketBounds are the frequency buckets of the optimal-
// frequency curve; the final bucket is open-ended.
var exposureBucketBounds = [][2]int{
	{1, 1}, {2, 3}, {4, 6}, {7, 10}, {11, 20}, {21, 50}, {51, 1 << 30},
}

// Conversions runs the conversion analysis for one campaign ("" for
// all). Conversions join to exposures through the shared (campaign,
// user) identity.
func (a *Auditor) Conversions(campaignID string) ConversionResult {
	res := ConversionResult{CampaignID: campaignID}

	type userStats struct {
		exposures   int
		conversions int
	}
	users := map[string]*userStats{} // campaign|user -> stats
	key := func(camp, user string) string { return camp + "|" + user }

	// One streaming pass builds both the per-user exposure stats and
	// the DC-user set (the old code materialized the campaign's
	// impressions twice to do this).
	dcUsers := map[string]bool{}
	a.visitImpressions(campaignID, func(im *store.Impression) bool {
		res.Impressions++
		res.Clicks += im.Clicks
		isDC := im.DataCenter != "" && im.DataCenter != "not-data-center" && im.DataCenter != "vpn-exception"
		k := key(im.CampaignID, im.UserKey)
		if isDC {
			res.DataCenterImpressions++
			res.DataCenterClicks += im.Clicks
			dcUsers[k] = true
		}
		if users[k] == nil {
			users[k] = &userStats{}
		}
		users[k].exposures++
		return true
	})

	for _, conv := range a.Store.Conversions(campaignID) {
		res.Conversions++
		res.ValueCents += conv.ValueCents
		k := key(conv.CampaignID, conv.UserKey)
		if dcUsers[k] {
			res.DataCenterConversions++
		}
		if u := users[k]; u != nil {
			u.conversions++
		}
	}

	// Build the frequency curve.
	for _, b := range exposureBucketBounds {
		res.ByExposure = append(res.ByExposure, ExposureBucket{Lo: b[0], Hi: b[1]})
	}
	for _, u := range users {
		for i := range res.ByExposure {
			b := &res.ByExposure[i]
			if u.exposures >= b.Lo && u.exposures <= b.Hi {
				b.Users++
				b.Impressions += u.exposures
				b.Conversions += u.conversions
				break
			}
		}
	}
	sort.Slice(res.ByExposure, func(i, j int) bool {
		return res.ByExposure[i].Lo < res.ByExposure[j].Lo
	})
	return res
}
