package audit

import (
	"sort"

	"adaudit/internal/adnet"
)

// DefaultMaxGroupSpan is K, the widest owner-group span a non-exchange
// seller can have before the pooling detector flags it. Legitimate
// structures stay narrow: a direct account spans one publisher, an
// owner account spans one group, and disclosed exchanges are exempt —
// so any honest seller spans exactly one group.
const DefaultMaxGroupSpan = 3

// PooledSeller is one flagged seller ID with its co-occurrence
// footprint.
type PooledSeller struct {
	SellerID string
	// Publishers and OwnerGroups count the distinct report publishers
	// (and their distinct owner groups) whose inventory the seller
	// booked.
	Publishers  int
	OwnerGroups int
	Impressions int64
}

// PoolingResult is the dark-pooling detector (Vekaria et al., arXiv
// 2210.06654): seller IDs whose publisher set spans more than K
// unrelated owner groups. One account reselling inventory across many
// unrelated publisher groups is pooled inventory, whatever the rows
// call it.
type PoolingResult struct {
	CampaignID string
	// SellersChecked counts distinct attributed, non-exchange sellers;
	// MaxGroupSpan is the widest span observed among them (diagnostic:
	// clean supply chains sit at 1); GroupLimit is the K applied.
	SellersChecked int
	MaxGroupSpan   int
	GroupLimit     int
	// PooledSellers lists the sellers spanning more than K groups,
	// widest span first.
	PooledSellers []PooledSeller
}

// Pooling runs the dark-pooling detector for one campaign's vendor
// report with the default K.
func (a *Auditor) Pooling(campaignID string, rep *adnet.VendorReport) PoolingResult {
	return PoolingFromReport(campaignID, rep, a.sellers(), DefaultMaxGroupSpan)
}

// PoolingFromReport materializes the pooling detector from a vendor
// report and a directory — pure, shared verbatim by the batch auditor
// and the streaming engine. A nil report yields the empty result.
func PoolingFromReport(campaignID string, rep *adnet.VendorReport, dir SellerDirectory, maxGroups int) PoolingResult {
	res := PoolingResult{CampaignID: campaignID, GroupLimit: maxGroups}
	if rep == nil {
		return res
	}
	type footprint struct {
		pubs   map[string]bool
		groups map[string]bool
		imps   int64
	}
	sellers := map[string]*footprint{}
	for _, row := range rep.Rows {
		if row.SellerID == "" || dir.KnownExchange(row.SellerID) {
			continue
		}
		f := sellers[row.SellerID]
		if f == nil {
			f = &footprint{pubs: map[string]bool{}, groups: map[string]bool{}}
			sellers[row.SellerID] = f
		}
		f.pubs[row.Publisher] = true
		f.groups[dir.OwnerGroup(row.Publisher)] = true
		f.imps += row.Impressions
	}
	res.SellersChecked = len(sellers)
	for id, f := range sellers {
		if len(f.groups) > res.MaxGroupSpan {
			res.MaxGroupSpan = len(f.groups)
		}
		if len(f.groups) > maxGroups {
			res.PooledSellers = append(res.PooledSellers, PooledSeller{
				SellerID:    id,
				Publishers:  len(f.pubs),
				OwnerGroups: len(f.groups),
				Impressions: f.imps,
			})
		}
	}
	sort.Slice(res.PooledSellers, func(i, j int) bool {
		a, b := res.PooledSellers[i], res.PooledSellers[j]
		if a.OwnerGroups != b.OwnerGroups {
			return a.OwnerGroups > b.OwnerGroups
		}
		if a.Impressions != b.Impressions {
			return a.Impressions > b.Impressions
		}
		return a.SellerID < b.SellerID
	})
	return res
}
