package audit

import "sync"

// floatPool recycles the float64 sample buffers the per-campaign
// analyses fill and fold (exposure summaries). FullAudit fans
// dimensions out across a worker pool, so a sync.Pool gives each
// worker its own warm buffer without any coordination; at paper scale
// this removes one multi-hundred-KiB allocation per viewability task.
var floatPool = sync.Pool{
	New: func() any { return new([]float64) },
}

// floatScratch returns an empty float64 buffer with at least the given
// capacity, drawn from the pool. Return it with putFloatScratch once
// every value derived from it has been copied out.
func floatScratch(capacity int) []float64 {
	buf := *(floatPool.Get().(*[]float64))
	if cap(buf) < capacity {
		buf = make([]float64, 0, capacity)
	}
	return buf[:0]
}

// putFloatScratch recycles a buffer obtained from floatScratch. The
// boxed header costs one word-sized allocation, traded for the
// buffer's backing array.
func putFloatScratch(buf []float64) {
	floatPool.Put(&buf)
}
