package audit

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"adaudit/internal/adnet"
)

// CampaignInput names one campaign to audit: its targeting keywords
// (needed by the context analysis) and its vendor report.
type CampaignInput struct {
	ID       string
	Keywords []string
	Report   *adnet.VendorReport
}

// CampaignAudit bundles every per-campaign analysis.
type CampaignAudit struct {
	ID          string
	BrandSafety BrandSafetyResult
	Context     ContextResult
	Popularity  PopularityResult
	Viewability ViewabilityResult
	Fraud       FraudResult
	// The adversarial dimensions (see sellers.go, pooling.go,
	// behavior.go): supply-chain and behavioral fraud the five paper
	// dimensions cannot see.
	Sellers  SellerAuditResult
	Pooling  PoolingResult
	Behavior BehaviorResult
}

// FullReport is the complete audit of a dataset: one CampaignAudit per
// campaign plus the cross-campaign aggregates (Figure 1's all-campaigns
// Venn and Figure 3's frequency scatter).
type FullReport struct {
	PerCampaign []CampaignAudit
	Aggregate   BrandSafetyResult
	Frequency   FrequencyResult
}

// FullAudit runs every analysis over the dataset. Popularity uses
// base-10 rank buckets up to 10M, matching Figure 2.
//
// The work fans out across a bounded pool (Auditor.Parallelism
// workers; GOMAXPROCS when 0): every (campaign, dimension) pair plus
// the two cross-campaign aggregates is an independent task writing a
// distinct field of the report, so no result ever crosses a lock. The
// first task error cancels the remaining tasks. Output is
// deterministic — identical to FullAuditSerial bit for bit — because
// task identity, not completion order, decides where a result lands,
// and each analysis reads the store's indexes in insertion order.
func (a *Auditor) FullAudit(inputs []CampaignInput) (*FullReport, error) {
	return a.fullAudit(inputs, a.workers())
}

// FullAuditSerial runs the same audit on one goroutine in the fixed
// legacy order (per campaign: brand safety, context, popularity,
// viewability, fraud; then the aggregates) — the baseline the
// serial-vs-parallel benchmarks and determinism tests compare against.
func (a *Auditor) FullAuditSerial(inputs []CampaignInput) (*FullReport, error) {
	return a.fullAudit(inputs, 1)
}

// workers resolves the configured pool size.
func (a *Auditor) workers() int {
	if a.Parallelism > 0 {
		return a.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// task is one unit of audit work: a closure that computes a single
// dimension and stores it into its preassigned slot in the report.
type task struct {
	stage string
	run   func() error
}

func (a *Auditor) fullAudit(inputs []CampaignInput, workers int) (rep *FullReport, err error) {
	start := a.tel.stageStart()
	defer func() { a.tel.observeFull(start, workers, err) }()

	reports := make(map[string]*adnet.VendorReport, len(inputs))
	for _, in := range inputs {
		if in.Report == nil {
			return nil, fmt.Errorf("audit: campaign %s has no vendor report", in.ID)
		}
		reports[in.ID] = in.Report
	}

	rep = &FullReport{PerCampaign: make([]CampaignAudit, len(inputs))}
	tasks := make([]task, 0, 8*len(inputs)+2)
	for i := range inputs {
		in := inputs[i]
		ca := &rep.PerCampaign[i]
		ca.ID = in.ID
		tasks = append(tasks,
			task{stageBrandSafety, func() error {
				ca.BrandSafety = a.BrandSafety(in.ID, in.Report)
				return nil
			}},
			task{stageContext, func() error {
				ctx, err := a.Context(in.ID, in.Keywords, in.Report)
				if err != nil {
					return fmt.Errorf("audit: context for %s: %w", in.ID, err)
				}
				ca.Context = ctx
				return nil
			}},
			task{stagePopularity, func() error {
				pop, err := a.Popularity(in.ID, 10, 10_000_000)
				if err != nil {
					return fmt.Errorf("audit: popularity for %s: %w", in.ID, err)
				}
				ca.Popularity = pop
				return nil
			}},
			task{stageViewability, func() error {
				ca.Viewability = a.Viewability(in.ID)
				return nil
			}},
			task{stageFraud, func() error {
				ca.Fraud = a.Fraud(in.ID)
				return nil
			}},
			task{stageSellers, func() error {
				ca.Sellers = a.SellerAudit(in.ID, in.Report)
				return nil
			}},
			task{stagePooling, func() error {
				ca.Pooling = a.Pooling(in.ID, in.Report)
				return nil
			}},
			task{stageBehavior, func() error {
				ca.Behavior = a.Behavior(in.ID)
				return nil
			}},
		)
	}
	tasks = append(tasks,
		task{stageAggregate, func() error {
			rep.Aggregate = a.BrandSafetyAggregate(reports)
			return nil
		}},
		task{stageFrequency, func() error {
			rep.Frequency = a.Frequency()
			return nil
		}},
	)

	if err := a.runTasks(tasks, workers); err != nil {
		return nil, err
	}
	return rep, nil
}

// runTask executes one task with stage timing.
func (a *Auditor) runTask(t task) error {
	start := a.tel.stageStart()
	err := t.run()
	if err == nil {
		a.tel.observeStage(t.stage, start)
	}
	return err
}

// runTasks drains the task list with a bounded worker pool. Workers
// claim tasks off a shared atomic counter (no channel churn, cache-
// friendly in-order claiming); the first error parks the pool —
// every worker re-checks the cancel flag before claiming — and is the
// one returned. workers <= 1 degenerates to an inline loop with no
// goroutines, the serial path.
func (a *Auditor) runTasks(tasks []task, workers int) error {
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers <= 1 {
		for _, t := range tasks {
			if err := a.runTask(t); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next      atomic.Int64
		cancelled atomic.Bool
		errOnce   sync.Once
		firstErr  error
		wg        sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if cancelled.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(tasks) {
					return
				}
				if err := a.runTask(tasks[i]); err != nil {
					errOnce.Do(func() {
						firstErr = err
						cancelled.Store(true)
					})
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
