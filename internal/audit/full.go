package audit

import (
	"fmt"

	"adaudit/internal/adnet"
)

// CampaignInput names one campaign to audit: its targeting keywords
// (needed by the context analysis) and its vendor report.
type CampaignInput struct {
	ID       string
	Keywords []string
	Report   *adnet.VendorReport
}

// CampaignAudit bundles every per-campaign analysis.
type CampaignAudit struct {
	ID          string
	BrandSafety BrandSafetyResult
	Context     ContextResult
	Popularity  PopularityResult
	Viewability ViewabilityResult
	Fraud       FraudResult
}

// FullReport is the complete audit of a dataset: one CampaignAudit per
// campaign plus the cross-campaign aggregates (Figure 1's all-campaigns
// Venn and Figure 3's frequency scatter).
type FullReport struct {
	PerCampaign []CampaignAudit
	Aggregate   BrandSafetyResult
	Frequency   FrequencyResult
}

// FullAudit runs every analysis over the dataset. Popularity uses
// base-10 rank buckets up to 10M, matching Figure 2.
func (a *Auditor) FullAudit(inputs []CampaignInput) (*FullReport, error) {
	rep := &FullReport{}
	reports := map[string]*adnet.VendorReport{}
	for _, in := range inputs {
		if in.Report == nil {
			return nil, fmt.Errorf("audit: campaign %s has no vendor report", in.ID)
		}
		reports[in.ID] = in.Report

		ca := CampaignAudit{ID: in.ID}
		ca.BrandSafety = a.BrandSafety(in.ID, in.Report)
		ctx, err := a.Context(in.ID, in.Keywords, in.Report)
		if err != nil {
			return nil, fmt.Errorf("audit: context for %s: %w", in.ID, err)
		}
		ca.Context = ctx
		pop, err := a.Popularity(in.ID, 10, 10_000_000)
		if err != nil {
			return nil, fmt.Errorf("audit: popularity for %s: %w", in.ID, err)
		}
		ca.Popularity = pop
		ca.Viewability = a.Viewability(in.ID)
		ca.Fraud = a.Fraud(in.ID)
		rep.PerCampaign = append(rep.PerCampaign, ca)
	}
	rep.Aggregate = a.BrandSafetyAggregate(reports)
	rep.Frequency = a.Frequency()
	return rep, nil
}
