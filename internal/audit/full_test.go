package audit

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"adaudit/internal/adnet"
	"adaudit/internal/store"
	"adaudit/internal/telemetry"
)

// fullFixture builds a multi-campaign dataset diverse enough that a
// scheduling bug would scramble some field of the report: several
// campaigns of different sizes, shared publishers and users, a few
// data-center impressions, and vendor reports that only partially
// overlap the audit's view.
func fullFixture(t *testing.T) (*Auditor, []CampaignInput) {
	t.Helper()
	st := store.New()
	meta := fakeMeta{}
	const campaigns = 6
	inputs := make([]CampaignInput, 0, campaigns)
	for c := 0; c < campaigns; c++ {
		id := fmt.Sprintf("camp%d", c)
		rep := &adnet.VendorReport{CampaignID: id}
		for i := 0; i < 30+10*c; i++ {
			pub := fmt.Sprintf("p%d.es", (c+i)%9)
			meta[pub] = PublisherMeta{
				Rank:     50 * ((c+i)%9 + 1),
				Keywords: []string{"research"},
				Topics:   []string{"science"},
				Unsafe:   (c+i)%9 == 0,
			}
			dc := ""
			if i%11 == 0 {
				dc = "aws"
			}
			addImp(t, st, id, pub, fmt.Sprintf("u%d", i%13),
				base.Add(time.Duration(c*997+i*31)*time.Second),
				time.Duration(500+i*17)*time.Millisecond, dc)
			if i%3 == 0 {
				rep.Rows = append(rep.Rows, adnet.ReportRow{Publisher: pub, Impressions: 1})
			}
		}
		rep.Rows = append(rep.Rows, adnet.ReportRow{Publisher: adnet.AnonymousPublisher, Impressions: 7})
		rep.TotalImpressionsCharged = int64(40 + 10*c)
		rep.ContextualImpressions = int64(20 + 5*c)
		inputs = append(inputs, CampaignInput{
			ID: id, Keywords: []string{"research", "science"}, Report: rep,
		})
	}
	return newAuditor(t, st, meta), inputs
}

// The parallel engine must produce a report deep-equal to the serial
// one on every run, regardless of scheduling. Run with -race this is
// also the engine's data-race check.
func TestFullAuditParallelMatchesSerial(t *testing.T) {
	a, inputs := fullFixture(t)
	want, err := a.FullAuditSerial(inputs)
	if err != nil {
		t.Fatal(err)
	}

	a.Parallelism = 8 // force real fan-out even on 1-CPU machines
	for rep := 0; rep < 10; rep++ {
		got, err := a.FullAudit(inputs)
		if err != nil {
			t.Fatalf("rep %d: %v", rep, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("rep %d: parallel report diverges from serial\n got %+v\nwant %+v", rep, got, want)
		}
	}
}

// Every Parallelism setting must yield the same report — the knob is a
// throughput control, never a semantics control.
func TestFullAuditParallelismInvariant(t *testing.T) {
	a, inputs := fullFixture(t)
	want, err := a.FullAuditSerial(inputs)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{0, 1, 2, 3, 16, 64} {
		a.Parallelism = p
		got, err := a.FullAudit(inputs)
		if err != nil {
			t.Fatalf("parallelism %d: %v", p, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("parallelism %d: report diverges from serial", p)
		}
	}
}

// A failing task must surface its error from both engines and yield a
// nil report.
func TestFullAuditErrorPropagates(t *testing.T) {
	a, inputs := fullFixture(t)
	a.Meta = nil // every context task now fails

	for _, p := range []int{1, 8} {
		a.Parallelism = p
		rep, err := a.FullAudit(inputs)
		if err == nil {
			t.Fatalf("parallelism %d: failing context task returned no error", p)
		}
		if !strings.Contains(err.Error(), "context for camp") {
			t.Fatalf("parallelism %d: error %q does not identify the failing stage", p, err)
		}
		if rep != nil {
			t.Fatalf("parallelism %d: got a partial report alongside the error", p)
		}
	}
}

// The serial path must stop at the first error without touching later
// tasks — deterministically observable because workers<=1 is an
// in-order inline loop.
func TestRunTasksSerialStopsAtFirstError(t *testing.T) {
	a := newAuditor(t, store.New(), fakeMeta{})
	boom := errors.New("boom")
	var ran []int
	tasks := []task{
		{stageBrandSafety, func() error { ran = append(ran, 0); return nil }},
		{stageContext, func() error { ran = append(ran, 1); return boom }},
		{stageFraud, func() error { ran = append(ran, 2); return nil }},
	}
	if err := a.runTasks(tasks, 1); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if !reflect.DeepEqual(ran, []int{0, 1}) {
		t.Fatalf("tasks ran = %v, want [0 1]", ran)
	}
}

// The parallel pool must return the error, not hang, and cancellation
// must keep it from draining the whole task list. The error lands
// immediately while the other worker burns a millisecond per task, so
// the pool parks long before the 200-task list is exhausted.
func TestRunTasksParallelCancels(t *testing.T) {
	a := newAuditor(t, store.New(), fakeMeta{})
	boom := errors.New("boom")
	var executed atomic.Int64
	tasks := []task{{stageContext, func() error { return boom }}}
	for i := 0; i < 200; i++ {
		tasks = append(tasks, task{stageFraud, func() error {
			executed.Add(1)
			time.Sleep(time.Millisecond)
			return nil
		}})
	}
	if err := a.runTasks(tasks, 2); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n := executed.Load(); n >= 200 {
		t.Fatalf("cancellation did not park the pool: %d/200 follow-up tasks ran", n)
	}
}

// workers must honor Parallelism and clamp to the task count.
func TestWorkersResolution(t *testing.T) {
	a := newAuditor(t, store.New(), fakeMeta{})
	if got := a.workers(); got < 1 {
		t.Fatalf("default workers = %d", got)
	}
	a.Parallelism = 5
	if got := a.workers(); got != 5 {
		t.Fatalf("workers = %d, want 5", got)
	}
}

// Instrument must register the audit metrics and observeFull must feed
// them on both the success and failure paths.
func TestInstrumentRecordsAudits(t *testing.T) {
	a, inputs := fullFixture(t)
	reg := telemetry.NewRegistry()
	a.Instrument(reg)
	a.Parallelism = 3

	if _, err := a.FullAudit(inputs); err != nil {
		t.Fatal(err)
	}
	a.Meta = nil
	if _, err := a.FullAudit(inputs); err == nil {
		t.Fatal("expected failure run")
	}

	find := func(name string, labels map[string]string) telemetry.SeriesSnapshot {
		t.Helper()
		ss, ok := reg.Find(name, labels)
		if !ok {
			t.Fatalf("metric %s%v not registered", name, labels)
		}
		return ss
	}
	if got := find("adaudit_audit_full_total", nil).Value; got != 1 {
		t.Fatalf("audit total = %v, want 1", got)
	}
	if got := find("adaudit_audit_full_failures_total", nil).Value; got != 1 {
		t.Fatalf("audit failures = %v, want 1", got)
	}
	if got := find("adaudit_audit_workers", nil).Value; got != 3 {
		t.Fatalf("workers gauge = %v, want 3", got)
	}
	full := find("adaudit_audit_full_seconds", nil)
	if full.Hist == nil || full.Hist.Count != 1 {
		t.Fatalf("full-audit histogram = %+v, want one observation", full.Hist)
	}
	// Per-stage histograms exist for every dimension and the hot ones
	// saw one observation per campaign on the successful run.
	for _, stage := range []string{"brandsafety", "context", "popularity", "viewability", "fraud", "aggregate", "frequency"} {
		ss := find("adaudit_audit_stage_seconds", map[string]string{"stage": stage})
		if ss.Hist == nil || ss.Hist.Count == 0 {
			t.Fatalf("stage %s histogram empty: %+v", stage, ss.Hist)
		}
	}
}
