package audit

import (
	"fmt"

	"adaudit/internal/stats"
	"adaudit/internal/store"
)

// PopularityResult is the Figure 2 analysis: how a campaign's
// publishers and impressions distribute across popularity-rank buckets.
type PopularityResult struct {
	CampaignID string
	// Publishers histograms each distinct publisher once by its rank.
	Publishers *stats.Histogram
	// Impressions histograms every impression by its publisher's rank.
	Impressions *stats.Histogram
	// UnknownMeta counts impressions whose publisher has no rank
	// metadata (excluded from the histograms).
	UnknownMeta int

	// Raw ranks backing exact threshold queries (the histograms bucket
	// by decades, which cannot answer mid-bucket cut-offs like the
	// paper's Top-50K exactly).
	pubRanks []int
	impRanks []int
}

// TopKPublisherFraction returns the share of distinct publishers inside
// the top-limit ranks, Figure 2's headline summary (e.g. limit=50000).
func (r PopularityResult) TopKPublisherFraction(limit int) float64 {
	return fractionAtOrBelow(r.pubRanks, limit)
}

// TopKImpressionFraction returns the share of impressions delivered on
// publishers inside the top-limit ranks.
func (r PopularityResult) TopKImpressionFraction(limit int) float64 {
	return fractionAtOrBelow(r.impRanks, limit)
}

func fractionAtOrBelow(ranks []int, limit int) float64 {
	if len(ranks) == 0 {
		return 0
	}
	n := 0
	for _, r := range ranks {
		if r <= limit {
			n++
		}
	}
	return float64(n) / float64(len(ranks))
}

// Popularity runs the Figure 2 analysis for one campaign (or the whole
// dataset when campaignID is ""), bucketing ranks logarithmically with
// the given base up to maxRank. The paper uses base 10 over the Alexa
// ranking's 10M span.
func (a *Auditor) Popularity(campaignID string, base float64, maxRank float64) (PopularityResult, error) {
	if a.Meta == nil {
		return PopularityResult{}, fmt.Errorf("audit: popularity analysis requires metadata")
	}
	pubs := a.Store.Publishers(campaignID)
	pubRanks := make([]int, 0, len(pubs))
	impRanks := make([]int, 0, a.impressionCount(campaignID))
	unknown := 0
	ranks := make(map[string]int, len(pubs))
	for _, pub := range pubs {
		meta, ok := a.Meta.PublisherMeta(pub)
		if !ok {
			continue
		}
		ranks[pub] = meta.Rank
		pubRanks = append(pubRanks, meta.Rank)
	}
	a.visitImpressions(campaignID, func(im *store.Impression) bool {
		rank, ok := ranks[im.Publisher]
		if !ok {
			unknown++
			return true
		}
		impRanks = append(impRanks, rank)
		return true
	})
	// Empty rank lists stay nil so the result is deep-equal to the
	// streaming engine's view, which never allocates them.
	if len(pubRanks) == 0 {
		pubRanks = nil
	}
	if len(impRanks) == 0 {
		impRanks = nil
	}
	return PopularityFromRanks(campaignID, base, maxRank, pubRanks, impRanks, unknown)
}

// PopularityFromRanks materializes the Figure 2 result from raw rank
// observations: pubRanks holds one rank per distinct known-metadata
// publisher (in sorted-publisher order), impRanks one rank per
// known-metadata impression (in insertion order), unknownMeta the
// impressions excluded for missing metadata. Both the batch analysis
// and the streaming engine build their results through this function,
// which is what keeps them deep-equal — including the unexported raw
// rank slices backing the TopK queries, which are retained as passed.
func PopularityFromRanks(campaignID string, base, maxRank float64, pubRanks, impRanks []int, unknownMeta int) (PopularityResult, error) {
	lb, err := stats.NewLogBuckets(base, maxRank)
	if err != nil {
		return PopularityResult{}, fmt.Errorf("audit: building rank buckets: %w", err)
	}
	res := PopularityResult{
		CampaignID:  campaignID,
		Publishers:  stats.NewHistogram(lb),
		Impressions: stats.NewHistogram(lb),
		UnknownMeta: unknownMeta,
		pubRanks:    pubRanks,
		impRanks:    impRanks,
	}
	for _, r := range pubRanks {
		res.Publishers.Observe(float64(r))
	}
	for _, r := range impRanks {
		res.Impressions.Observe(float64(r))
	}
	return res, nil
}

// PopularityCPMCorrelation quantifies the paper's Figure 2 headline —
// that paying a higher CPM does not buy delivery on more popular
// publishers — as the Spearman rank correlation between campaign CPMs
// and their top-limit impression shares. A positive correlation would
// mean money buys popularity; the paper's data (and this reproduction)
// yield a non-positive one.
func PopularityCPMCorrelation(cpms []float64, results []PopularityResult, limit int) (float64, error) {
	if len(cpms) != len(results) {
		return 0, fmt.Errorf("audit: %d CPMs for %d popularity results", len(cpms), len(results))
	}
	shares := make([]float64, len(results))
	for i := range results {
		shares[i] = results[i].TopKImpressionFraction(limit)
	}
	return stats.SpearmanRho(cpms, shares)
}
