package wsproto

import (
	"bytes"
	"testing"
)

// FuzzReadFrame feeds arbitrary bytes to the frame decoder: it must
// never panic, and any frame it accepts must re-encode and re-decode to
// the same frame.
func FuzzReadFrame(f *testing.F) {
	// Seed with valid frames of each shape.
	seed := func(fr Frame) {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, fr); err == nil {
			f.Add(buf.Bytes())
		}
	}
	seed(Frame{Fin: true, Opcode: OpText, Payload: []byte("hello")})
	seed(Frame{Fin: true, Opcode: OpBinary, Masked: true, MaskKey: [4]byte{1, 2, 3, 4}, Payload: make([]byte, 300)})
	seed(Frame{Fin: false, Opcode: OpBinary, Payload: make([]byte, 70000)})
	seed(Frame{Fin: true, Opcode: OpClose, Payload: EncodeClosePayload(CloseNormal, "bye")})
	seed(Frame{Fin: true, Opcode: OpPing})
	f.Add([]byte{0x81})
	f.Add([]byte{0xFF, 0xFF})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := ReadFrame(bytes.NewReader(data), 1<<20)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, fr); err != nil {
			t.Fatalf("accepted frame fails to encode: %v", err)
		}
		fr2, err := ReadFrame(&buf, 1<<20)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if fr2.Fin != fr.Fin || fr2.Opcode != fr.Opcode || fr2.Masked != fr.Masked ||
			!bytes.Equal(fr2.Payload, fr.Payload) {
			t.Fatalf("round trip drift: %+v vs %+v", fr, fr2)
		}
	})
}

// FuzzDecodeClosePayload checks close-payload parsing never panics and
// round trips.
func FuzzDecodeClosePayload(f *testing.F) {
	f.Add(EncodeClosePayload(CloseNormal, "done"))
	f.Add([]byte{})
	f.Add([]byte{0x03})
	f.Fuzz(func(t *testing.T, data []byte) {
		code, reason, err := DecodeClosePayload(data)
		if err != nil {
			return
		}
		if code == CloseNoStatus {
			return // empty payload has no encoding
		}
		c2, r2, err := DecodeClosePayload(EncodeClosePayload(code, reason))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if c2 != code || r2 != reason {
			t.Fatalf("round trip drift: (%d,%q) vs (%d,%q)", code, reason, c2, r2)
		}
	})
}
