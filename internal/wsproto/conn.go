package wsproto

import (
	"bufio"
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
	"unicode/utf8"
)

// Role says which endpoint of the connection we are; it determines the
// masking rules (§5.1: client frames MUST be masked, server frames MUST
// NOT be).
type Role int

const (
	// RoleServer is the accepting endpoint.
	RoleServer Role = iota
	// RoleClient is the initiating endpoint.
	RoleClient
)

// CloseError is returned by read operations after the closing handshake
// (or an abnormal closure). It carries the peer's status code and reason.
type CloseError struct {
	Code   CloseCode
	Reason string
}

// Error implements error.
func (e *CloseError) Error() string {
	return fmt.Sprintf("wsproto: connection closed with code %d: %s", e.Code, e.Reason)
}

// ErrWriteAfterClose is returned when writing after the close handshake
// has started locally.
var ErrWriteAfterClose = errors.New("wsproto: write after close")

// Conn is an established WebSocket connection. Reads must be confined to
// one goroutine; writes are internally serialised and may come from
// multiple goroutines (ReadMessage itself writes pong and close replies).
type Conn struct {
	nc   net.Conn
	br   *bufio.Reader
	role Role

	// maxMessage bounds the reassembled message size; 0 means unlimited.
	maxMessage int64

	// compress is true when permessage-deflate (no context takeover)
	// was negotiated during the opening handshake.
	compress bool

	writeMu    sync.Mutex
	wroteClose bool

	readErr error // sticky read error

	// established is when the connection finished its opening handshake.
	established time.Time

	// pingHandler, if set, observes incoming pings after the automatic
	// pong reply. pongHandler observes incoming pongs.
	pingHandler func(payload []byte)
	pongHandler func(payload []byte)

	// reuseReadBuf, when set via ReuseReadBuffer, makes ReadMessage
	// recycle readBuf for frame payloads instead of allocating per
	// frame; the returned message then aliases the buffer.
	reuseReadBuf bool
	readBuf      []byte
}

// ReuseReadBuffer opts this connection into read-buffer recycling: the
// payload ReadMessage returns is only valid until the next ReadMessage
// call (fragmented and compressed messages are still reassembled into
// their own buffers). For receivers that decode or copy each message
// before reading the next — the collector and gateway do — this removes
// the per-frame payload allocation. Must be called before reads begin.
func (c *Conn) ReuseReadBuffer() { c.reuseReadBuf = true }

func newConn(nc net.Conn, br *bufio.Reader, role Role, maxMessage int64) *Conn {
	if br == nil {
		br = bufio.NewReader(nc)
	}
	return &Conn{
		nc:          nc,
		br:          br,
		role:        role,
		maxMessage:  maxMessage,
		established: time.Now(),
	}
}

// NetConn returns the underlying transport connection.
func (c *Conn) NetConn() net.Conn { return c.nc }

// RemoteAddr returns the peer address.
func (c *Conn) RemoteAddr() net.Addr { return c.nc.RemoteAddr() }

// LocalAddr returns the local address.
func (c *Conn) LocalAddr() net.Addr { return c.nc.LocalAddr() }

// Established returns when the opening handshake completed.
func (c *Conn) Established() time.Time { return c.established }

// SetReadDeadline sets the transport read deadline.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.nc.SetReadDeadline(t) }

// SetWriteDeadline sets the transport write deadline.
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.nc.SetWriteDeadline(t) }

// SetPingHandler registers f to observe incoming pings (after the
// automatic pong reply). Must be called before reads begin.
func (c *Conn) SetPingHandler(f func(payload []byte)) { c.pingHandler = f }

// SetPongHandler registers f to observe incoming pongs. Must be called
// before reads begin.
func (c *Conn) SetPongHandler(f func(payload []byte)) { c.pongHandler = f }

// CompressionEnabled reports whether permessage-deflate was negotiated.
func (c *Conn) CompressionEnabled() bool { return c.compress }

// WriteMessage sends a complete data message in a single frame. op must
// be OpText or OpBinary; text payloads must be valid UTF-8. When
// permessage-deflate is negotiated, payloads above a small threshold
// are compressed transparently.
func (c *Conn) WriteMessage(op Opcode, payload []byte) error {
	if !op.IsData() {
		return fmt.Errorf("wsproto: WriteMessage with non-data opcode %v", op)
	}
	if op == OpText && !utf8.Valid(payload) {
		return fmt.Errorf("wsproto: text message is not valid UTF-8")
	}
	if c.compress && len(payload) >= compressThreshold {
		compressed, err := deflateMessage(payload)
		if err != nil {
			return err
		}
		return c.writeFrame(Frame{Fin: true, Rsv1: true, Opcode: op, Payload: compressed})
	}
	return c.writeFrame(Frame{Fin: true, Opcode: op, Payload: payload})
}

// WriteText sends a text message.
func (c *Conn) WriteText(s string) error { return c.WriteMessage(OpText, []byte(s)) }

// Ping sends a ping control frame.
func (c *Conn) Ping(payload []byte) error {
	return c.writeFrame(Frame{Fin: true, Opcode: OpPing, Payload: payload})
}

// Pong sends an unsolicited pong control frame (§5.5.3 allows these as
// unidirectional heartbeats).
func (c *Conn) Pong(payload []byte) error {
	return c.writeFrame(Frame{Fin: true, Opcode: OpPong, Payload: payload})
}

func (c *Conn) writeFrame(f Frame) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if c.wroteClose {
		return ErrWriteAfterClose
	}
	return c.writeFrameLocked(f)
}

func (c *Conn) writeFrameLocked(f Frame) error {
	if c.role == RoleClient {
		f.Masked = true
		if _, err := rand.Read(f.MaskKey[:]); err != nil {
			return fmt.Errorf("wsproto: generating mask key: %w", err)
		}
	} else {
		f.Masked = false
	}
	return WriteFrame(c.nc, f)
}

// closeWriteTimeout bounds how long Close waits to flush the close frame
// to a peer that has stopped reading; the transport is torn down either
// way.
const closeWriteTimeout = time.Second

// Close performs the closing handshake: it sends a close frame with the
// given code and reason (bounded by a short write deadline, so a dead
// peer cannot stall the close), then closes the transport. It does not
// wait for the peer's close reply; callers that want a clean handshake
// should keep reading until ReadMessage returns a *CloseError before
// calling Close. Close is idempotent at the transport level.
func (c *Conn) Close(code CloseCode, reason string) error {
	c.writeMu.Lock()
	var writeErr error
	if !c.wroteClose {
		c.wroteClose = true
		_ = c.nc.SetWriteDeadline(time.Now().Add(closeWriteTimeout))
		writeErr = c.writeFrameLocked(Frame{
			Fin:     true,
			Opcode:  OpClose,
			Payload: EncodeClosePayload(code, reason),
		})
	}
	c.writeMu.Unlock()
	closeErr := c.nc.Close()
	if writeErr != nil {
		return writeErr
	}
	return closeErr
}

// ReadMessage returns the next complete data message, transparently
// handling control frames: pings are answered with pongs, pongs are
// delivered to the pong handler, and a close frame completes the closing
// handshake (echoing the code) and surfaces a *CloseError. Fragmented
// messages are reassembled up to the connection's message size limit.
func (c *Conn) ReadMessage() (Opcode, []byte, error) {
	if c.readErr != nil {
		return 0, nil, c.readErr
	}
	op, payload, err := c.readMessage()
	if err != nil {
		c.readErr = err
		// On protocol errors, tell the peer why before dropping.
		var ce *CloseError
		if !errors.As(err, &ce) && !errors.Is(err, io.EOF) {
			code := CloseProtocolError
			if errors.Is(err, ErrFrameTooLarge) {
				code = CloseMessageTooBig
			}
			_ = c.Close(code, err.Error())
		}
	}
	return op, payload, err
}

func (c *Conn) readMessage() (Opcode, []byte, error) {
	var (
		msgOp      Opcode
		buf        []byte
		inProg     bool
		compressed bool
	)
	for {
		var frameBuf []byte
		if c.reuseReadBuf {
			frameBuf = c.readBuf
		}
		f, err := ReadFrameBuf(c.br, c.frameLimit(), frameBuf)
		if err != nil {
			return 0, nil, err
		}
		if c.reuseReadBuf && cap(f.Payload) > cap(c.readBuf) {
			c.readBuf = f.Payload
		}
		// Masking direction rules (§5.1).
		if c.role == RoleServer && !f.Masked {
			return 0, nil, fmt.Errorf("wsproto: unmasked frame from client")
		}
		if c.role == RoleClient && f.Masked {
			return 0, nil, fmt.Errorf("wsproto: masked frame from server")
		}
		// RSV1 is only meaningful with permessage-deflate, and only on
		// the first frame of a data message (RFC 7692 §6.1).
		if f.Rsv1 {
			if !c.compress || !f.Opcode.IsData() {
				return 0, nil, fmt.Errorf("wsproto: unexpected RSV1 bit")
			}
		}

		switch {
		case f.Opcode == OpPing:
			if err := c.writeFrame(Frame{Fin: true, Opcode: OpPong, Payload: f.Payload}); err != nil {
				return 0, nil, fmt.Errorf("wsproto: replying to ping: %w", err)
			}
			if c.pingHandler != nil {
				c.pingHandler(f.Payload)
			}
		case f.Opcode == OpPong:
			if c.pongHandler != nil {
				c.pongHandler(f.Payload)
			}
		case f.Opcode == OpClose:
			code, reason, err := DecodeClosePayload(f.Payload)
			if err != nil {
				return 0, nil, err
			}
			// Echo the close to complete the handshake (§7.1.1), then
			// drop the transport.
			echo := CloseNormal
			if code != CloseNoStatus {
				echo = code
			}
			_ = c.Close(echo, "")
			return 0, nil, &CloseError{Code: code, Reason: reason}
		case f.Opcode == OpContinuation:
			if !inProg {
				return 0, nil, fmt.Errorf("wsproto: continuation frame without initial frame")
			}
			if c.maxMessage > 0 && int64(len(buf))+int64(len(f.Payload)) > c.maxMessage {
				return 0, nil, ErrFrameTooLarge
			}
			buf = append(buf, f.Payload...)
			if f.Fin {
				return c.finishMessage(msgOp, buf, compressed)
			}
		case f.Opcode.IsData():
			if inProg {
				return 0, nil, fmt.Errorf("wsproto: new data frame during fragmented message")
			}
			if f.Fin {
				return c.finishMessage(f.Opcode, f.Payload, f.Rsv1)
			}
			msgOp = f.Opcode
			inProg = true
			compressed = f.Rsv1
			buf = append(buf[:0], f.Payload...)
		}
	}
}

// finishMessage applies per-message decompression and text validation.
func (c *Conn) finishMessage(op Opcode, payload []byte, compressed bool) (Opcode, []byte, error) {
	if compressed {
		inflated, err := inflateMessage(payload, c.maxMessage)
		if err != nil {
			return 0, nil, err
		}
		payload = inflated
	}
	if op == OpText && !utf8.Valid(payload) {
		return 0, nil, &CloseError{Code: CloseInvalidPayload, Reason: "invalid UTF-8"}
	}
	return op, payload, nil
}

func (c *Conn) frameLimit() int64 {
	return c.maxMessage
}

// WriteFragmented sends payload as a fragmented message with the given
// fragment size, exercising §5.4 on the wire. fragSize must be positive.
// Intended for tests and interoperability checks; production senders use
// WriteMessage.
func (c *Conn) WriteFragmented(op Opcode, payload []byte, fragSize int) error {
	if !op.IsData() {
		return fmt.Errorf("wsproto: WriteFragmented with non-data opcode %v", op)
	}
	if fragSize <= 0 {
		return fmt.Errorf("wsproto: fragment size must be positive")
	}
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if c.wroteClose {
		return ErrWriteAfterClose
	}
	first := true
	for {
		n := len(payload)
		if n > fragSize {
			n = fragSize
		}
		frag := payload[:n]
		payload = payload[n:]
		f := Frame{Fin: len(payload) == 0, Payload: frag}
		if first {
			f.Opcode = op
			first = false
		} else {
			f.Opcode = OpContinuation
		}
		if err := c.writeFrameLocked(f); err != nil {
			return err
		}
		if f.Fin {
			return nil
		}
	}
}
