package wsproto

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func benchFrame(size int, masked bool) Frame {
	f := Frame{Fin: true, Opcode: OpBinary, Payload: bytes.Repeat([]byte{0xA5}, size)}
	if masked {
		f.Masked = true
		f.MaskKey = [4]byte{1, 2, 3, 4}
	}
	return f
}

func BenchmarkWriteFrame256(b *testing.B) {
	f := benchFrame(256, false)
	b.SetBytes(256)
	for i := 0; i < b.N; i++ {
		if err := WriteFrame(io256{}, f); err != nil {
			b.Fatal(err)
		}
	}
}

// io256 is a no-op writer avoiding buffer growth noise.
type io256 struct{}

func (io256) Write(p []byte) (int, error) { return len(p), nil }

func BenchmarkWriteFrameMasked4K(b *testing.B) {
	f := benchFrame(4096, true)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		if err := WriteFrame(io256{}, f); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadFrame4K(b *testing.B) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, benchFrame(4096, true)); err != nil {
		b.Fatal(err)
	}
	wire := buf.Bytes()
	b.SetBytes(int64(len(wire)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadFrame(bytes.NewReader(wire), 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMaskBytes(b *testing.B) {
	data := make([]byte, 16<<10)
	key := [4]byte{0xDE, 0xAD, 0xBE, 0xEF}
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		MaskBytes(key, 0, data)
	}
}

// BenchmarkEchoRoundTripTCP measures a full message round trip over a
// real TCP connection: beacon-sized text frames through handshake-
// established client and server conns.
func BenchmarkEchoRoundTripTCP(b *testing.B) {
	upgrader := &Upgrader{MaxMessageSize: 1 << 16}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conn, err := upgrader.Upgrade(w, r)
		if err != nil {
			return
		}
		defer conn.Close(CloseNormal, "")
		for {
			op, msg, err := conn.ReadMessage()
			if err != nil {
				return
			}
			if err := conn.WriteMessage(op, msg); err != nil {
				return
			}
		}
	}))
	defer srv.Close()

	d := &Dialer{MaxMessageSize: 1 << 16}
	conn, _, err := d.Dial(context.Background(), "ws"+strings.TrimPrefix(srv.URL, "http"))
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close(CloseNormal, "")

	payload := []byte("v=1&cid=Research-010&crid=banner&url=http%3A%2F%2Fciencia123.es%2Fp&ua=Mozilla%2F5.0")
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := conn.WriteMessage(OpText, payload); err != nil {
			b.Fatal(err)
		}
		if _, _, err := conn.ReadMessage(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHandshake(b *testing.B) {
	upgrader := &Upgrader{}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conn, err := upgrader.Upgrade(w, r)
		if err != nil {
			return
		}
		conn.Close(CloseNormal, "")
	}))
	defer srv.Close()
	url := "ws" + strings.TrimPrefix(srv.URL, "http")
	d := &Dialer{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conn, _, err := d.Dial(context.Background(), url)
		if err != nil {
			b.Fatal(err)
		}
		conn.Close(CloseNormal, "")
	}
}
