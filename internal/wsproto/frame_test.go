package wsproto

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, f Frame, maxPayload int64) Frame {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteFrame(&buf, f); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	got, err := ReadFrame(&buf, maxPayload)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	return got
}

func TestFrameRoundTripSmall(t *testing.T) {
	f := Frame{Fin: true, Opcode: OpText, Payload: []byte("hello")}
	got := roundTrip(t, f, 0)
	if !got.Fin || got.Opcode != OpText || string(got.Payload) != "hello" {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestFrameRoundTripMasked(t *testing.T) {
	orig := []byte("beacon payload")
	f := Frame{Fin: true, Opcode: OpText, Masked: true, MaskKey: [4]byte{1, 2, 3, 4}, Payload: orig}
	got := roundTrip(t, f, 0)
	if string(got.Payload) != "beacon payload" {
		t.Fatalf("masked round trip corrupted payload: %q", got.Payload)
	}
	if !got.Masked {
		t.Fatal("mask bit lost")
	}
	// WriteFrame must not mutate the caller's payload.
	if string(orig) != "beacon payload" {
		t.Fatalf("WriteFrame mutated input payload: %q", orig)
	}
}

func TestFrameLengthEncodings(t *testing.T) {
	for _, n := range []int{0, 1, 125, 126, 127, 1000, 0xFFFF, 0x10000, 1 << 18} {
		payload := bytes.Repeat([]byte{0xAB}, n)
		f := Frame{Fin: true, Opcode: OpBinary, Payload: payload}
		got := roundTrip(t, f, 0)
		if len(got.Payload) != n {
			t.Fatalf("length %d: got %d bytes back", n, len(got.Payload))
		}
		if n > 0 && !bytes.Equal(got.Payload, payload) {
			t.Fatalf("length %d: payload corrupted", n)
		}
	}
}

func TestFrameHeaderSizeBoundaries(t *testing.T) {
	// 125 bytes must use the 1-byte length form; 126 the 2-byte form;
	// 65536 the 8-byte form.
	sizes := map[int]int{125: 2 + 125, 126: 4 + 126, 0x10000: 10 + 0x10000}
	for plen, wire := range sizes {
		var buf bytes.Buffer
		err := WriteFrame(&buf, Frame{Fin: true, Opcode: OpBinary, Payload: make([]byte, plen)})
		if err != nil {
			t.Fatal(err)
		}
		if buf.Len() != wire {
			t.Errorf("payload %d: wire size %d, want %d", plen, buf.Len(), wire)
		}
	}
}

func TestReadFrameRejectsNonMinimalLength(t *testing.T) {
	// 16-bit extended length used for a value <= 125.
	raw := []byte{0x82, 126, 0, 100}
	raw = append(raw, make([]byte, 100)...)
	if _, err := ReadFrame(bytes.NewReader(raw), 0); !errors.Is(err, ErrBadPayloadLength) {
		t.Fatalf("err = %v, want ErrBadPayloadLength", err)
	}
	// 64-bit extended length used for a value <= 0xFFFF.
	raw = []byte{0x82, 127}
	var ext [8]byte
	binary.BigEndian.PutUint64(ext[:], 500)
	raw = append(raw, ext[:]...)
	raw = append(raw, make([]byte, 500)...)
	if _, err := ReadFrame(bytes.NewReader(raw), 0); !errors.Is(err, ErrBadPayloadLength) {
		t.Fatalf("err = %v, want ErrBadPayloadLength", err)
	}
}

func TestReadFrameRejectsHugeLength(t *testing.T) {
	raw := []byte{0x82, 127}
	var ext [8]byte
	binary.BigEndian.PutUint64(ext[:], 1<<63)
	raw = append(raw, ext[:]...)
	if _, err := ReadFrame(bytes.NewReader(raw), 0); !errors.Is(err, ErrBadPayloadLength) {
		t.Fatalf("err = %v, want ErrBadPayloadLength", err)
	}
}

func TestReadFrameRejectsReservedBits(t *testing.T) {
	// RSV2 and RSV3 have no negotiated meaning, ever.
	for _, bit := range []byte{0x20, 0x10, 0x30} {
		raw := []byte{0x80 | bit | byte(OpText), 0}
		if _, err := ReadFrame(bytes.NewReader(raw), 0); !errors.Is(err, ErrReservedBits) {
			t.Fatalf("rsv %#x: err = %v, want ErrReservedBits", bit, err)
		}
	}
	// RSV1 parses at the frame layer (permessage-deflate owns it); the
	// connection layer rejects it when no extension was negotiated.
	raw := []byte{0x80 | 0x40 | byte(OpText), 0}
	f, err := ReadFrame(bytes.NewReader(raw), 0)
	if err != nil || !f.Rsv1 {
		t.Fatalf("rsv1 frame = (%+v, %v)", f, err)
	}
}

func TestReadFrameRejectsReservedOpcode(t *testing.T) {
	for _, op := range []byte{0x3, 0x7, 0xB, 0xF} {
		raw := []byte{0x80 | op, 0}
		if _, err := ReadFrame(bytes.NewReader(raw), 0); !errors.Is(err, ErrReservedOpcode) {
			t.Fatalf("opcode %#x: err = %v, want ErrReservedOpcode", op, err)
		}
	}
}

func TestControlFrameRules(t *testing.T) {
	// Fragmented control frame rejected on write.
	err := WriteFrame(io.Discard, Frame{Fin: false, Opcode: OpPing})
	if !errors.Is(err, ErrFragmentedControl) {
		t.Fatalf("fragmented ping write: %v", err)
	}
	// Oversized control frame rejected on write.
	err = WriteFrame(io.Discard, Frame{Fin: true, Opcode: OpClose, Payload: make([]byte, 126)})
	if !errors.Is(err, ErrControlTooLong) {
		t.Fatalf("oversized close write: %v", err)
	}
	// Fragmented control frame rejected on read.
	raw := []byte{byte(OpPing), 0} // FIN clear
	if _, err := ReadFrame(bytes.NewReader(raw), 0); !errors.Is(err, ErrFragmentedControl) {
		t.Fatalf("fragmented ping read: %v", err)
	}
}

func TestReadFrameSizeLimit(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Frame{Fin: true, Opcode: OpBinary, Payload: make([]byte, 2048)}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrame(&buf, 1024); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestReadFrameShortInput(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Frame{Fin: true, Opcode: OpBinary, Payload: make([]byte, 300)}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, cut := range []int{0, 1, 2, 3, 50, len(raw) - 1} {
		_, err := ReadFrame(bytes.NewReader(raw[:cut]), 0)
		if err == nil {
			t.Fatalf("truncated read at %d succeeded", cut)
		}
	}
}

// Property: write/read round trip preserves every field for all data
// opcodes, payload sizes and mask keys.
func TestFrameRoundTripProperty(t *testing.T) {
	err := quick.Check(func(fin bool, opSel uint8, masked bool, key [4]byte, payload []byte) bool {
		ops := []Opcode{OpText, OpBinary, OpContinuation}
		f := Frame{
			Fin:     fin,
			Opcode:  ops[int(opSel)%len(ops)],
			Masked:  masked,
			MaskKey: key,
			Payload: payload,
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, f); err != nil {
			return false
		}
		got, err := ReadFrame(&buf, 0)
		if err != nil {
			return false
		}
		if got.Fin != f.Fin || got.Opcode != f.Opcode || got.Masked != f.Masked {
			return false
		}
		return bytes.Equal(got.Payload, f.Payload)
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: masking is an involution and position-aware masking over
// split buffers equals masking the concatenation.
func TestMaskBytesProperty(t *testing.T) {
	err := quick.Check(func(key [4]byte, data []byte, splitRaw uint8) bool {
		whole := append([]byte(nil), data...)
		MaskBytes(key, 0, whole)

		split := 0
		if len(data) > 0 {
			split = int(splitRaw) % (len(data) + 1)
		}
		parts := append([]byte(nil), data...)
		pos := MaskBytes(key, 0, parts[:split])
		MaskBytes(key, pos, parts[split:])
		if !bytes.Equal(whole, parts) {
			return false
		}
		// Involution.
		MaskBytes(key, 0, whole)
		return bytes.Equal(whole, data)
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestClosePayloadCodec(t *testing.T) {
	p := EncodeClosePayload(CloseNormal, "bye")
	code, reason, err := DecodeClosePayload(p)
	if err != nil || code != CloseNormal || reason != "bye" {
		t.Fatalf("decode = (%d, %q, %v)", code, reason, err)
	}
	if code, _, err := DecodeClosePayload(nil); err != nil || code != CloseNoStatus {
		t.Fatalf("empty close payload = (%d, %v)", code, err)
	}
	if _, _, err := DecodeClosePayload([]byte{1}); err == nil {
		t.Fatal("1-byte close payload accepted")
	}
	// Long reasons are truncated to fit the control limit.
	long := EncodeClosePayload(CloseNormal, string(bytes.Repeat([]byte("x"), 500)))
	if len(long) > 125 {
		t.Fatalf("close payload %d bytes exceeds control limit", len(long))
	}
}

func TestOpcodeClassification(t *testing.T) {
	if !OpClose.IsControl() || !OpPing.IsControl() || !OpPong.IsControl() {
		t.Fatal("control opcodes misclassified")
	}
	if OpText.IsControl() || OpContinuation.IsControl() {
		t.Fatal("data opcodes classified as control")
	}
	if !OpText.IsData() || !OpBinary.IsData() || OpContinuation.IsData() {
		t.Fatal("IsData misclassification")
	}
	if OpText.String() != "text" || Opcode(0x5).String() != "opcode(0x5)" {
		t.Fatal("opcode string mismatch")
	}
}
