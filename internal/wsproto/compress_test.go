package wsproto

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"testing/quick"
)

func TestDeflateInflateRoundTrip(t *testing.T) {
	msg := bytes.Repeat([]byte("impression payload "), 100)
	compressed, err := deflateMessage(msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(compressed) >= len(msg) {
		t.Fatalf("compression did not shrink repetitive payload: %d >= %d",
			len(compressed), len(msg))
	}
	got, err := inflateMessage(compressed, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("round trip corrupted payload")
	}
}

func TestDeflateInflateProperty(t *testing.T) {
	err := quick.Check(func(msg []byte) bool {
		compressed, err := deflateMessage(msg)
		if err != nil {
			return false
		}
		got, err := inflateMessage(compressed, 0)
		return err == nil && bytes.Equal(got, msg)
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInflateEnforcesSizeLimit(t *testing.T) {
	// A highly compressible 1 MiB message against a 64 KiB limit: the
	// zip-bomb guard must fire.
	big := make([]byte, 1<<20)
	compressed, err := deflateMessage(big)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inflateMessage(compressed, 64<<10); err == nil {
		t.Fatal("inflated past the message size limit")
	}
}

func TestAcceptExtension(t *testing.T) {
	cases := []struct {
		offers []string
		ok     bool
	}{
		{[]string{"permessage-deflate"}, true},
		{[]string{"permessage-deflate; client_no_context_takeover"}, true},
		{[]string{"permessage-deflate; client_max_window_bits"}, true},
		{[]string{"permessage-deflate; server_max_window_bits=10"}, false},
		{[]string{"x-webkit-deflate-frame"}, false},
		{[]string{"x-unknown, permessage-deflate"}, true},
		{nil, false},
	}
	for _, c := range cases {
		resp, ok := acceptExtension(c.offers)
		if ok != c.ok {
			t.Errorf("acceptExtension(%v) ok = %v, want %v", c.offers, ok, c.ok)
		}
		if ok && !strings.HasPrefix(resp, extensionName) {
			t.Errorf("response %q malformed", resp)
		}
	}
}

func TestExtensionAgreed(t *testing.T) {
	if ok, err := extensionAgreed(""); ok || err != nil {
		t.Fatalf("empty = (%v, %v)", ok, err)
	}
	if ok, err := extensionAgreed(offerExtension); !ok || err != nil {
		t.Fatalf("standard response = (%v, %v)", ok, err)
	}
	if _, err := extensionAgreed("x-mystery"); err == nil {
		t.Fatal("unknown extension accepted")
	}
	if _, err := extensionAgreed("permessage-deflate; server_max_window_bits=9"); err == nil {
		t.Fatal("unsupported parameter accepted")
	}
}

// compressedPair dials a compression-enabled client against a server
// echo handler with compression enabled.
func compressedPair(t *testing.T, serverCompress, clientCompress bool) (*Conn, func()) {
	t.Helper()
	upgrader := &Upgrader{MaxMessageSize: 1 << 20, EnableCompression: serverCompress}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conn, err := upgrader.Upgrade(w, r)
		if err != nil {
			return
		}
		defer conn.Close(CloseNormal, "")
		for {
			op, msg, err := conn.ReadMessage()
			if err != nil {
				return
			}
			if err := conn.WriteMessage(op, msg); err != nil {
				return
			}
		}
	}))
	d := &Dialer{MaxMessageSize: 1 << 20, EnableCompression: clientCompress}
	conn, _, err := d.Dial(context.Background(), "ws"+strings.TrimPrefix(srv.URL, "http"))
	if err != nil {
		srv.Close()
		t.Fatal(err)
	}
	return conn, func() {
		conn.Close(CloseNormal, "")
		srv.Close()
	}
}

func TestCompressionNegotiationMatrix(t *testing.T) {
	cases := []struct {
		server, client, want bool
	}{
		{true, true, true},
		{true, false, false},
		{false, true, false},
		{false, false, false},
	}
	for _, c := range cases {
		conn, done := compressedPair(t, c.server, c.client)
		if conn.CompressionEnabled() != c.want {
			t.Errorf("server=%v client=%v: negotiated %v, want %v",
				c.server, c.client, conn.CompressionEnabled(), c.want)
		}
		done()
	}
}

func TestCompressedEchoOverTCP(t *testing.T) {
	conn, done := compressedPair(t, true, true)
	defer done()
	if !conn.CompressionEnabled() {
		t.Fatal("compression not negotiated")
	}
	// Large, repetitive text: compressed on the wire, identical after
	// the round trip.
	msg := strings.Repeat("v=1&cid=Research-010&url=http%3A%2F%2Fciencia.es%2F&", 50)
	if err := conn.WriteText(msg); err != nil {
		t.Fatal(err)
	}
	op, got, err := conn.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if op != OpText || string(got) != msg {
		t.Fatalf("echo mismatch: %d bytes", len(got))
	}
	// Small messages skip compression but still round trip.
	if err := conn.WriteText("tiny"); err != nil {
		t.Fatal(err)
	}
	_, got, err = conn.ReadMessage()
	if err != nil || string(got) != "tiny" {
		t.Fatalf("tiny echo = (%q, %v)", got, err)
	}
}

func TestRSV1RejectedWithoutNegotiation(t *testing.T) {
	client, server := pipePair(0)
	defer client.NetConn().Close()
	defer server.NetConn().Close()
	go func() {
		client.writeFrame(Frame{Fin: true, Rsv1: true, Opcode: OpText, Payload: []byte("x")})
	}()
	if _, _, err := server.ReadMessage(); err == nil || !strings.Contains(err.Error(), "RSV1") {
		t.Fatalf("err = %v, want RSV1 violation", err)
	}
}

func TestCompressedFragmentedMessage(t *testing.T) {
	// Compression happens at message level; fragments of a compressed
	// message carry RSV1 only on the first frame. Exercise the read
	// path with a hand-rolled fragmented compressed message.
	client, server := pipePair(1 << 20)
	client.compress = true
	server.compress = true
	defer client.NetConn().Close()
	defer server.NetConn().Close()

	msg := bytes.Repeat([]byte("fragmented and deflated "), 200)
	compressed, err := deflateMessage(msg)
	if err != nil {
		t.Fatal(err)
	}
	half := len(compressed) / 2
	go func() {
		client.writeFrame(Frame{Fin: false, Rsv1: true, Opcode: OpBinary, Payload: compressed[:half]})
		client.writeFrame(Frame{Fin: true, Opcode: OpContinuation, Payload: compressed[half:]})
	}()
	op, got, err := server.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if op != OpBinary || !bytes.Equal(got, msg) {
		t.Fatalf("fragmented compressed message corrupted: %d bytes", len(got))
	}
}

func TestServerAcceptingUnofferedExtensionRejected(t *testing.T) {
	// A raw HTTP server that unconditionally claims permessage-deflate
	// even though the client never offered it: the dial must fail.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hj := w.(http.Hijacker)
		nc, _, err := hj.Hijack()
		if err != nil {
			return
		}
		defer nc.Close()
		key := r.Header.Get("Sec-Websocket-Key")
		nc.Write([]byte("HTTP/1.1 101 Switching Protocols\r\n" +
			"Upgrade: websocket\r\nConnection: Upgrade\r\n" +
			"Sec-WebSocket-Extensions: permessage-deflate\r\n" +
			"Sec-WebSocket-Accept: " + AcceptKey(key) + "\r\n\r\n"))
	}))
	defer srv.Close()
	d := &Dialer{} // no compression offered
	if _, _, err := d.Dial(context.Background(), "ws"+strings.TrimPrefix(srv.URL, "http")); err == nil {
		t.Fatal("unoffered extension accepted")
	}
}
