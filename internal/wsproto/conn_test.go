package wsproto

import (
	"bytes"
	"context"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// pipePair returns a connected client/server Conn pair over an in-memory
// transport.
func pipePair(maxMessage int64) (client, server *Conn) {
	cNC, sNC := net.Pipe()
	return newConn(cNC, nil, RoleClient, maxMessage), newConn(sNC, nil, RoleServer, maxMessage)
}

func TestConnTextRoundTrip(t *testing.T) {
	client, server := pipePair(0)
	defer client.NetConn().Close()
	defer server.NetConn().Close()

	go func() {
		client.WriteText("impression data")
	}()
	op, msg, err := server.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if op != OpText || string(msg) != "impression data" {
		t.Fatalf("got (%v, %q)", op, msg)
	}
}

func TestConnServerToClient(t *testing.T) {
	client, server := pipePair(0)
	defer client.NetConn().Close()
	defer server.NetConn().Close()

	go func() {
		server.WriteMessage(OpBinary, []byte{1, 2, 3})
	}()
	op, msg, err := client.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if op != OpBinary || !bytes.Equal(msg, []byte{1, 2, 3}) {
		t.Fatalf("got (%v, %v)", op, msg)
	}
}

func TestConnRejectsUnmaskedClientFrame(t *testing.T) {
	cNC, sNC := net.Pipe()
	server := newConn(sNC, nil, RoleServer, 0)
	defer sNC.Close()
	defer cNC.Close()

	go func() {
		// Write a raw unmasked frame from the client side.
		WriteFrame(cNC, Frame{Fin: true, Opcode: OpText, Payload: []byte("x")})
	}()
	if _, _, err := server.ReadMessage(); err == nil || !strings.Contains(err.Error(), "unmasked") {
		t.Fatalf("err = %v, want unmasked-frame violation", err)
	}
}

func TestConnRejectsMaskedServerFrame(t *testing.T) {
	cNC, sNC := net.Pipe()
	client := newConn(cNC, nil, RoleClient, 0)
	defer sNC.Close()
	defer cNC.Close()

	go func() {
		WriteFrame(sNC, Frame{Fin: true, Opcode: OpText, Masked: true, MaskKey: [4]byte{1, 2, 3, 4}, Payload: []byte("x")})
	}()
	if _, _, err := client.ReadMessage(); err == nil || !strings.Contains(err.Error(), "masked") {
		t.Fatalf("err = %v, want masked-frame violation", err)
	}
}

func TestConnPingAutoPong(t *testing.T) {
	client, server := pipePair(0)
	defer client.NetConn().Close()
	defer server.NetConn().Close()

	var wg sync.WaitGroup
	wg.Add(1)
	var pongPayload []byte
	client.SetPongHandler(func(p []byte) {
		pongPayload = append([]byte(nil), p...)
		wg.Done()
	})

	// Server reads in background (it must see the ping and auto-reply).
	go server.ReadMessage()
	// Client sends ping then reads until pong arrives.
	go client.Ping([]byte("hb-1"))

	done := make(chan struct{})
	go func() {
		// The pong is a control frame; ReadMessage processes it and
		// keeps waiting for data, so run it in the background and rely
		// on the handler.
		client.ReadMessage()
	}()
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("pong not received")
	}
	if string(pongPayload) != "hb-1" {
		t.Fatalf("pong payload = %q", pongPayload)
	}
}

func TestConnPingHandlerObserves(t *testing.T) {
	client, server := pipePair(0)
	defer client.NetConn().Close()
	defer server.NetConn().Close()

	seen := make(chan []byte, 1)
	server.SetPingHandler(func(p []byte) { seen <- append([]byte(nil), p...) })
	go server.ReadMessage()
	go client.ReadMessage() // consume the auto-pong
	if err := client.Ping([]byte("probe")); err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-seen:
		if string(p) != "probe" {
			t.Fatalf("ping payload = %q", p)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("ping handler not invoked")
	}
}

func TestConnCloseHandshake(t *testing.T) {
	client, server := pipePair(0)

	go func() {
		server.ReadMessage() // will see close, echo it, and surface CloseError
	}()
	if err := client.Close(CloseGoingAway, "done"); err != nil {
		t.Fatal(err)
	}
	// Client should observe... the transport is torn down by Close;
	// instead verify the server side got the code.
	client.NetConn().Close()
	server.NetConn().Close()
}

func TestConnCloseErrorSurfaced(t *testing.T) {
	client, server := pipePair(0)
	defer client.NetConn().Close()
	defer server.NetConn().Close()

	errCh := make(chan error, 1)
	go func() {
		_, _, err := server.ReadMessage()
		errCh <- err
	}()
	// Send close from client without closing TCP first so the server
	// can read it.
	if err := client.writeFrame(Frame{Fin: true, Opcode: OpClose, Payload: EncodeClosePayload(CloseGoingAway, "bye")}); err != nil {
		t.Fatal(err)
	}
	// The server replies with a close echo; consume it.
	go ReadFrame(client.br, 0)

	select {
	case err := <-errCh:
		var ce *CloseError
		if !errors.As(err, &ce) {
			t.Fatalf("err = %v, want *CloseError", err)
		}
		if ce.Code != CloseGoingAway || ce.Reason != "bye" {
			t.Fatalf("close = %+v", ce)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("close not surfaced")
	}
}

func TestConnWriteAfterClose(t *testing.T) {
	client, server := pipePair(0)
	defer server.NetConn().Close()
	go func() { server.ReadMessage() }()
	client.Close(CloseNormal, "")
	if err := client.WriteText("late"); !errors.Is(err, ErrWriteAfterClose) {
		t.Fatalf("err = %v, want ErrWriteAfterClose", err)
	}
}

func TestConnFragmentedMessageReassembly(t *testing.T) {
	client, server := pipePair(0)
	defer client.NetConn().Close()
	defer server.NetConn().Close()

	payload := bytes.Repeat([]byte("abcdefgh"), 100)
	go func() {
		client.WriteFragmented(OpBinary, payload, 17)
	}()
	op, msg, err := server.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if op != OpBinary || !bytes.Equal(msg, payload) {
		t.Fatalf("reassembly mismatch: %d bytes, op %v", len(msg), op)
	}
}

func TestConnFragmentsInterleavedWithPing(t *testing.T) {
	client, server := pipePair(0)
	defer client.NetConn().Close()
	defer server.NetConn().Close()

	go client.ReadMessage() // consume auto-pong
	go func() {
		// Fragment, ping, continuation: §5.5 requires control frames to
		// be processable mid-message.
		client.writeFrame(Frame{Fin: false, Opcode: OpText, Payload: []byte("hel")})
		client.Ping([]byte("mid"))
		client.writeFrame(Frame{Fin: true, Opcode: OpContinuation, Payload: []byte("lo")})
	}()
	op, msg, err := server.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if op != OpText || string(msg) != "hello" {
		t.Fatalf("got (%v, %q)", op, msg)
	}
}

func TestConnRejectsStrayContinuation(t *testing.T) {
	client, server := pipePair(0)
	defer client.NetConn().Close()
	defer server.NetConn().Close()
	go func() {
		client.writeFrame(Frame{Fin: true, Opcode: OpContinuation, Payload: []byte("x")})
	}()
	if _, _, err := server.ReadMessage(); err == nil || !strings.Contains(err.Error(), "continuation") {
		t.Fatalf("err = %v, want stray-continuation violation", err)
	}
}

func TestConnRejectsInterleavedDataFrames(t *testing.T) {
	client, server := pipePair(0)
	defer client.NetConn().Close()
	defer server.NetConn().Close()
	go func() {
		client.writeFrame(Frame{Fin: false, Opcode: OpText, Payload: []byte("a")})
		client.writeFrame(Frame{Fin: true, Opcode: OpText, Payload: []byte("b")})
	}()
	if _, _, err := server.ReadMessage(); err == nil || !strings.Contains(err.Error(), "fragmented") {
		t.Fatalf("err = %v, want interleaving violation", err)
	}
}

func TestConnMessageSizeLimit(t *testing.T) {
	client, server := pipePair(64)
	defer client.NetConn().Close()
	defer server.NetConn().Close()
	go func() {
		client.WriteFragmented(OpBinary, make([]byte, 200), 32)
	}()
	if _, _, err := server.ReadMessage(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestConnRejectsInvalidUTF8Text(t *testing.T) {
	client, server := pipePair(0)
	defer client.NetConn().Close()
	defer server.NetConn().Close()
	if err := client.WriteMessage(OpText, []byte{0xFF, 0xFE}); err == nil {
		t.Fatal("WriteMessage accepted invalid UTF-8 text")
	}
	// Bypass the write-side check to verify the read side too.
	go func() {
		client.writeFrame(Frame{Fin: true, Opcode: OpText, Payload: []byte{0xFF, 0xFE}})
	}()
	_, _, err := server.ReadMessage()
	var ce *CloseError
	if !errors.As(err, &ce) || ce.Code != CloseInvalidPayload {
		t.Fatalf("err = %v, want CloseInvalidPayload", err)
	}
}

func TestConnWriteMessageRejectsControlOpcode(t *testing.T) {
	client, _ := pipePair(0)
	defer client.NetConn().Close()
	if err := client.WriteMessage(OpPing, nil); err == nil {
		t.Fatal("WriteMessage accepted control opcode")
	}
}

func TestEndToEndOverHTTPServer(t *testing.T) {
	upgrader := &Upgrader{MaxMessageSize: 1 << 20}
	received := make(chan string, 1)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conn, err := upgrader.Upgrade(w, r)
		if err != nil {
			return
		}
		defer conn.Close(CloseNormal, "")
		_, msg, err := conn.ReadMessage()
		if err != nil {
			return
		}
		received <- string(msg)
		conn.WriteText("ack:" + string(msg))
	}))
	defer srv.Close()

	d := &Dialer{MaxMessageSize: 1 << 20, Header: http.Header{"Origin": {"http://publisher.example"}}}
	url := "ws" + strings.TrimPrefix(srv.URL, "http")
	conn, resp, err := d.Dial(context.Background(), url)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close(CloseNormal, "")
	if resp.StatusCode != http.StatusSwitchingProtocols {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if err := conn.WriteText("payload-1"); err != nil {
		t.Fatal(err)
	}
	op, msg, err := conn.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if op != OpText || string(msg) != "ack:payload-1" {
		t.Fatalf("got (%v, %q)", op, msg)
	}
	select {
	case got := <-received:
		if got != "payload-1" {
			t.Fatalf("server received %q", got)
		}
	case <-time.After(time.Second):
		t.Fatal("server never received message")
	}
}

func TestDialRejectsBadScheme(t *testing.T) {
	d := &Dialer{}
	if _, _, err := d.Dial(context.Background(), "http://x"); err == nil {
		t.Fatal("http scheme accepted")
	}
	if _, _, err := d.Dial(context.Background(), "wss://x"); err == nil {
		t.Fatal("wss scheme accepted (unsupported by design)")
	}
}

func TestDialContextCancellation(t *testing.T) {
	// A listener that accepts but never responds.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			defer c.Close()
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	d := &Dialer{}
	start := time.Now()
	_, _, err = d.Dial(ctx, "ws://"+ln.Addr().String())
	if err == nil {
		t.Fatal("dial to mute server succeeded")
	}
	if time.Since(start) > 3*time.Second {
		t.Fatal("context cancellation not honoured")
	}
}

func TestUpgradeRejections(t *testing.T) {
	upgrader := &Upgrader{}
	h := func(w http.ResponseWriter, r *http.Request) {
		upgrader.Upgrade(w, r)
	}
	srv := httptest.NewServer(http.HandlerFunc(h))
	defer srv.Close()

	// Plain GET without upgrade headers.
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("plain GET status = %d", resp.StatusCode)
	}

	// POST.
	resp, err = http.Post(srv.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status = %d", resp.StatusCode)
	}

	// Wrong version.
	req, _ := http.NewRequest(http.MethodGet, srv.URL, nil)
	req.Header.Set("Connection", "Upgrade")
	req.Header.Set("Upgrade", "websocket")
	req.Header.Set("Sec-WebSocket-Version", "8")
	req.Header.Set("Sec-WebSocket-Key", "AAAAAAAAAAAAAAAAAAAAAA==")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUpgradeRequired {
		t.Fatalf("bad version status = %d", resp.StatusCode)
	}
}

func TestUpgradeOriginCheck(t *testing.T) {
	upgrader := &Upgrader{CheckOrigin: func(r *http.Request) bool {
		return r.Header.Get("Origin") == "http://trusted.example"
	}}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		upgrader.Upgrade(w, r)
	}))
	defer srv.Close()
	url := "ws" + strings.TrimPrefix(srv.URL, "http")

	d := &Dialer{Header: http.Header{"Origin": {"http://evil.example"}}}
	if _, resp, err := d.Dial(context.Background(), url); err == nil {
		t.Fatal("rejected origin dialed successfully")
	} else if resp == nil || resp.StatusCode != http.StatusForbidden {
		t.Fatalf("origin rejection response = %+v", resp)
	}

	d = &Dialer{Header: http.Header{"Origin": {"http://trusted.example"}}}
	conn, _, err := d.Dial(context.Background(), url)
	if err != nil {
		t.Fatalf("trusted origin rejected: %v", err)
	}
	conn.Close(CloseNormal, "")
}

func TestAcceptKeyRFCVector(t *testing.T) {
	// The worked example from RFC 6455 §1.3.
	got := AcceptKey("dGhlIHNhbXBsZSBub25jZQ==")
	want := "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="
	if got != want {
		t.Fatalf("AcceptKey = %q, want %q", got, want)
	}
}

func TestLargeMessageOverTCP(t *testing.T) {
	upgrader := &Upgrader{MaxMessageSize: 4 << 20}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conn, err := upgrader.Upgrade(w, r)
		if err != nil {
			return
		}
		defer conn.Close(CloseNormal, "")
		op, msg, err := conn.ReadMessage()
		if err != nil {
			return
		}
		conn.WriteMessage(op, msg) // echo
	}))
	defer srv.Close()

	d := &Dialer{MaxMessageSize: 4 << 20}
	conn, _, err := d.Dial(context.Background(), "ws"+strings.TrimPrefix(srv.URL, "http"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close(CloseNormal, "")

	big := bytes.Repeat([]byte{0x5A}, 1<<20)
	if err := conn.WriteMessage(OpBinary, big); err != nil {
		t.Fatal(err)
	}
	op, msg, err := conn.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if op != OpBinary || !bytes.Equal(msg, big) {
		t.Fatalf("echo mismatch: %d bytes", len(msg))
	}
}

func TestConcurrentWritersSerialized(t *testing.T) {
	// Writes are documented as safe from multiple goroutines; hammer a
	// live connection from 8 writers and verify every message arrives
	// intact (no interleaved frames).
	upgrader := &Upgrader{MaxMessageSize: 1 << 16}
	received := make(chan string, 1024)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conn, err := upgrader.Upgrade(w, r)
		if err != nil {
			return
		}
		defer conn.Close(CloseNormal, "")
		for {
			_, msg, err := conn.ReadMessage()
			if err != nil {
				return
			}
			received <- string(msg)
		}
	}))
	defer srv.Close()

	d := &Dialer{MaxMessageSize: 1 << 16}
	conn, _, err := d.Dial(context.Background(), "ws"+strings.TrimPrefix(srv.URL, "http"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close(CloseNormal, "")

	const writers, perWriter = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				msg := strings.Repeat(string(rune('a'+w)), 64)
				if err := conn.WriteText(msg); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	seen := map[byte]int{}
	for i := 0; i < writers*perWriter; i++ {
		select {
		case msg := <-received:
			if len(msg) != 64 {
				t.Fatalf("corrupted message length %d", len(msg))
			}
			for j := 1; j < len(msg); j++ {
				if msg[j] != msg[0] {
					t.Fatalf("interleaved frame content: %q", msg)
				}
			}
			seen[msg[0]]++
		case <-time.After(5 * time.Second):
			t.Fatalf("only %d messages arrived", i)
		}
	}
	for w := 0; w < writers; w++ {
		if seen[byte('a'+w)] != perWriter {
			t.Fatalf("writer %d: %d messages arrived", w, seen[byte('a'+w)])
		}
	}
}

func TestConnReuseReadBuffer(t *testing.T) {
	client, server := pipePair(0)
	defer client.NetConn().Close()
	defer server.NetConn().Close()
	server.ReuseReadBuffer()

	go func() {
		client.WriteText("first message payload")
		client.WriteText("second!")
	}()
	_, first, err := server.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != "first message payload" {
		t.Fatalf("first = %q", first)
	}
	_, second, err := server.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if string(second) != "second!" {
		t.Fatalf("second = %q", second)
	}
	// The contract: the second read may recycle the first payload's
	// backing array. Pin the aliasing so a regression that silently
	// re-copies (losing the alloc win) is caught.
	if &first[0] != &second[0] {
		t.Fatal("expected second read to reuse the first payload's buffer")
	}
	if string(first[:len(second)]) != "second!" {
		t.Fatalf("first payload no longer aliases buffer: %q", first[:len(second)])
	}
}

func TestConnReuseReadBufferFragmented(t *testing.T) {
	client, server := pipePair(0)
	defer client.NetConn().Close()
	defer server.NetConn().Close()
	server.ReuseReadBuffer()

	go func() {
		// Fragmented message: reassembly must copy into its own
		// accumulator, not hand back the recycled frame buffer.
		WriteFrame(client.NetConn(), Frame{Opcode: OpText, Payload: []byte("frag-one "), Masked: true})
		WriteFrame(client.NetConn(), Frame{Opcode: OpContinuation, Fin: true, Payload: []byte("frag-two"), Masked: true})
		client.WriteText("next")
	}()
	_, msg, err := server.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if string(msg) != "frag-one frag-two" {
		t.Fatalf("reassembled = %q", msg)
	}
	keep := string(msg)
	_, next, err := server.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if string(next) != "next" {
		t.Fatalf("next = %q", next)
	}
	if string(msg) != keep {
		t.Fatal("fragmented payload corrupted by subsequent read")
	}
}
