package wsproto

import (
	"bufio"
	"context"
	"crypto/rand"
	"crypto/sha1"
	"encoding/base64"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// websocketGUID is the fixed GUID of RFC 6455 §1.3 used to derive
// Sec-WebSocket-Accept from Sec-WebSocket-Key.
const websocketGUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

// AcceptKey computes the Sec-WebSocket-Accept value for a client key.
func AcceptKey(clientKey string) string {
	h := sha1.Sum([]byte(clientKey + websocketGUID))
	return base64.StdEncoding.EncodeToString(h[:])
}

// generateKey produces a random 16-byte base64 Sec-WebSocket-Key.
func generateKey() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("wsproto: generating handshake key: %w", err)
	}
	return base64.StdEncoding.EncodeToString(b[:]), nil
}

// Upgrader upgrades HTTP requests to WebSocket connections on the server
// side.
type Upgrader struct {
	// MaxMessageSize bounds reassembled message sizes on the resulting
	// connection; 0 means unlimited.
	MaxMessageSize int64
	// EnableCompression accepts permessage-deflate offers (RFC 7692,
	// no-context-takeover profile).
	EnableCompression bool
	// CheckOrigin, if set, validates the Origin header. When nil all
	// origins are accepted — appropriate for an ad beacon collector,
	// which by design receives cross-origin traffic from arbitrary
	// publisher pages.
	CheckOrigin func(r *http.Request) bool
}

// Upgrade performs the server side of the opening handshake. On failure
// it writes an HTTP error response and returns the reason.
func (u *Upgrader) Upgrade(w http.ResponseWriter, r *http.Request) (*Conn, error) {
	if r.Method != http.MethodGet {
		http.Error(w, "websocket: method not GET", http.StatusMethodNotAllowed)
		return nil, fmt.Errorf("wsproto: handshake method %s", r.Method)
	}
	if !headerContainsToken(r.Header, "Connection", "upgrade") {
		http.Error(w, "websocket: missing Connection: Upgrade", http.StatusBadRequest)
		return nil, errors.New("wsproto: missing Connection upgrade token")
	}
	if !headerContainsToken(r.Header, "Upgrade", "websocket") {
		http.Error(w, "websocket: missing Upgrade: websocket", http.StatusBadRequest)
		return nil, errors.New("wsproto: missing Upgrade websocket token")
	}
	if v := r.Header.Get("Sec-Websocket-Version"); v != "13" {
		w.Header().Set("Sec-Websocket-Version", "13")
		http.Error(w, "websocket: unsupported version", http.StatusUpgradeRequired)
		return nil, fmt.Errorf("wsproto: unsupported version %q", v)
	}
	key := r.Header.Get("Sec-Websocket-Key")
	if key == "" {
		http.Error(w, "websocket: missing Sec-WebSocket-Key", http.StatusBadRequest)
		return nil, errors.New("wsproto: missing Sec-WebSocket-Key")
	}
	if raw, err := base64.StdEncoding.DecodeString(key); err != nil || len(raw) != 16 {
		http.Error(w, "websocket: bad Sec-WebSocket-Key", http.StatusBadRequest)
		return nil, errors.New("wsproto: malformed Sec-WebSocket-Key")
	}
	if u.CheckOrigin != nil && !u.CheckOrigin(r) {
		http.Error(w, "websocket: origin not allowed", http.StatusForbidden)
		return nil, errors.New("wsproto: origin rejected")
	}

	hj, ok := w.(http.Hijacker)
	if !ok {
		http.Error(w, "websocket: response does not support hijacking", http.StatusInternalServerError)
		return nil, errors.New("wsproto: ResponseWriter is not a Hijacker")
	}
	nc, brw, err := hj.Hijack()
	if err != nil {
		return nil, fmt.Errorf("wsproto: hijacking connection: %w", err)
	}
	compress := false
	extHeader := ""
	if u.EnableCompression {
		if response, ok := acceptExtension(r.Header.Values("Sec-Websocket-Extensions")); ok {
			compress = true
			extHeader = "Sec-WebSocket-Extensions: " + response + "\r\n"
		}
	}

	// Any buffered bytes the server read beyond the request belong to
	// the WebSocket stream.
	resp := "HTTP/1.1 101 Switching Protocols\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		extHeader +
		"Sec-WebSocket-Accept: " + AcceptKey(key) + "\r\n\r\n"
	if _, err := nc.Write([]byte(resp)); err != nil {
		nc.Close()
		return nil, fmt.Errorf("wsproto: writing handshake response: %w", err)
	}
	conn := newConn(nc, brw.Reader, RoleServer, u.MaxMessageSize)
	conn.compress = compress
	return conn, nil
}

// headerContainsToken reports whether any comma-separated value of the
// named header equals token case-insensitively.
func headerContainsToken(h http.Header, name, token string) bool {
	for _, v := range h.Values(name) {
		for _, part := range strings.Split(v, ",") {
			if strings.EqualFold(strings.TrimSpace(part), token) {
				return true
			}
		}
	}
	return false
}

// Dialer establishes client WebSocket connections.
type Dialer struct {
	// MaxMessageSize bounds reassembled message sizes on the resulting
	// connection; 0 means unlimited.
	MaxMessageSize int64
	// EnableCompression offers permessage-deflate (RFC 7692,
	// no-context-takeover profile) during the handshake.
	EnableCompression bool
	// NetDial overrides the transport dial, e.g. for tests or custom
	// source addresses. Defaults to a net.Dialer respecting ctx.
	NetDial func(ctx context.Context, network, addr string) (net.Conn, error)
	// WrapConn, if set, wraps the freshly dialed transport connection
	// before the handshake runs — the hook fault-injection layers
	// (internal/faultnet) use to impair a beacon's link without
	// replacing the dial itself.
	WrapConn func(net.Conn) net.Conn
	// Header is sent with the handshake request (e.g. Origin,
	// User-Agent — the beacon forwards the embedding page's values).
	Header http.Header
}

// Dial connects to a ws:// URL and performs the opening handshake.
// (wss:// is not supported: the collector terminates TLS upstream in
// deployment, and the simulator runs loopback.)
func (d *Dialer) Dial(ctx context.Context, rawURL string) (*Conn, *http.Response, error) {
	u, err := url.Parse(rawURL)
	if err != nil {
		return nil, nil, fmt.Errorf("wsproto: parsing url: %w", err)
	}
	if u.Scheme != "ws" {
		return nil, nil, fmt.Errorf("wsproto: unsupported scheme %q", u.Scheme)
	}
	host := u.Host
	if u.Port() == "" {
		host = net.JoinHostPort(u.Hostname(), "80")
	}
	dial := d.NetDial
	if dial == nil {
		var nd net.Dialer
		dial = nd.DialContext
	}
	nc, err := dial(ctx, "tcp", host)
	if err != nil {
		return nil, nil, fmt.Errorf("wsproto: dialing %s: %w", host, err)
	}
	if d.WrapConn != nil {
		nc = d.WrapConn(nc)
	}

	// Honour context cancellation during the handshake.
	if deadline, ok := ctx.Deadline(); ok {
		_ = nc.SetDeadline(deadline)
	}
	stop := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			nc.Close()
		case <-stop:
		}
	}()
	defer close(stop)

	key, err := generateKey()
	if err != nil {
		nc.Close()
		return nil, nil, err
	}
	path := u.RequestURI()
	if path == "" {
		path = "/"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "GET %s HTTP/1.1\r\n", path)
	fmt.Fprintf(&sb, "Host: %s\r\n", u.Host)
	sb.WriteString("Upgrade: websocket\r\nConnection: Upgrade\r\n")
	fmt.Fprintf(&sb, "Sec-WebSocket-Key: %s\r\nSec-WebSocket-Version: 13\r\n", key)
	if d.EnableCompression {
		fmt.Fprintf(&sb, "Sec-WebSocket-Extensions: %s\r\n", offerExtension)
	}
	for name, vals := range d.Header {
		for _, v := range vals {
			fmt.Fprintf(&sb, "%s: %s\r\n", name, v)
		}
	}
	sb.WriteString("\r\n")
	if _, err := nc.Write([]byte(sb.String())); err != nil {
		nc.Close()
		return nil, nil, fmt.Errorf("wsproto: writing handshake request: %w", err)
	}

	br := bufio.NewReader(nc)
	resp, err := http.ReadResponse(br, &http.Request{Method: http.MethodGet})
	if err != nil {
		nc.Close()
		return nil, nil, fmt.Errorf("wsproto: reading handshake response: %w", err)
	}
	if resp.StatusCode != http.StatusSwitchingProtocols {
		nc.Close()
		return nil, resp, fmt.Errorf("wsproto: handshake rejected with status %d", resp.StatusCode)
	}
	if !headerContainsToken(resp.Header, "Upgrade", "websocket") ||
		!headerContainsToken(resp.Header, "Connection", "upgrade") {
		nc.Close()
		return nil, resp, errors.New("wsproto: handshake response missing upgrade headers")
	}
	if got := resp.Header.Get("Sec-Websocket-Accept"); got != AcceptKey(key) {
		nc.Close()
		return nil, resp, fmt.Errorf("wsproto: bad Sec-WebSocket-Accept %q", got)
	}
	compress := false
	if ext := resp.Header.Get("Sec-Websocket-Extensions"); ext != "" {
		if !d.EnableCompression {
			nc.Close()
			return nil, resp, fmt.Errorf("wsproto: server accepted extension we never offered: %q", ext)
		}
		agreed, err := extensionAgreed(ext)
		if err != nil {
			nc.Close()
			return nil, resp, err
		}
		compress = agreed
	}
	_ = nc.SetDeadline(time.Time{})
	conn := newConn(nc, br, RoleClient, d.MaxMessageSize)
	conn.compress = compress
	return conn, resp, nil
}
