package wsproto

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"strings"
	"sync"
)

// This file implements the permessage-deflate extension (RFC 7692) in
// its simplest interoperable profile: no context takeover on either
// side, so every message is an independent DEFLATE stream. That profile
// is what production beacon collectors actually deploy — it caps
// per-connection memory at zero between messages, which matters when
// holding hundreds of thousands of mostly idle ad-impression sockets.
//
// Wire mechanics (§7): a compressed message sets RSV1 on its first
// frame; the payload is the raw DEFLATE stream with the final
// 0x00 0x00 0xff 0xff flush tail removed. Control frames are never
// compressed.

// extensionName is the RFC 7692 token.
const extensionName = "permessage-deflate"

// deflateTail is the flush marker removed from (and re-appended to)
// every compressed message, per RFC 7692 §7.2.1.
var deflateTail = []byte{0x00, 0x00, 0xff, 0xff}

// compressThreshold is the minimum payload size worth compressing;
// below it the DEFLATE framing overhead exceeds the savings.
const compressThreshold = 128

var flateWriterPool = sync.Pool{
	New: func() any {
		w, err := flate.NewWriter(io.Discard, flate.DefaultCompression)
		if err != nil {
			panic("wsproto: flate.NewWriter with default level failed: " + err.Error())
		}
		return w
	},
}

// deflateMessage compresses payload per RFC 7692 (tail stripped).
func deflateMessage(payload []byte) ([]byte, error) {
	var buf bytes.Buffer
	fw := flateWriterPool.Get().(*flate.Writer)
	defer flateWriterPool.Put(fw)
	fw.Reset(&buf)
	if _, err := fw.Write(payload); err != nil {
		return nil, fmt.Errorf("wsproto: deflating message: %w", err)
	}
	if err := fw.Flush(); err != nil {
		return nil, fmt.Errorf("wsproto: flushing deflate: %w", err)
	}
	out := buf.Bytes()
	if !bytes.HasSuffix(out, deflateTail) {
		return nil, fmt.Errorf("wsproto: deflate output missing flush tail")
	}
	return out[:len(out)-len(deflateTail)], nil
}

// finalBlock is an empty stored block with BFINAL set; appended after
// the flush tail so Go's flate reader sees a terminated stream (the
// wire stream never carries BFINAL under no-context-takeover).
var finalBlock = []byte{0x01, 0x00, 0x00, 0xff, 0xff}

// inflateMessage decompresses an RFC 7692 message body, enforcing
// maxSize on the inflated result (0 = unlimited).
func inflateMessage(payload []byte, maxSize int64) ([]byte, error) {
	full := make([]byte, 0, len(payload)+len(deflateTail)+len(finalBlock))
	full = append(full, payload...)
	full = append(full, deflateTail...)
	full = append(full, finalBlock...)
	fr := flate.NewReader(bytes.NewReader(full))
	defer fr.Close()
	var limited io.Reader = fr
	if maxSize > 0 {
		limited = io.LimitReader(fr, maxSize+1)
	}
	out, err := io.ReadAll(limited)
	if err != nil {
		return nil, fmt.Errorf("wsproto: inflating message: %w", err)
	}
	if maxSize > 0 && int64(len(out)) > maxSize {
		return nil, ErrFrameTooLarge
	}
	return out, nil
}

// offerExtension is the client's negotiation offer.
const offerExtension = extensionName + "; client_no_context_takeover; server_no_context_takeover"

// acceptExtension parses a client's Sec-WebSocket-Extensions offers and
// returns the server's response value and whether permessage-deflate was
// agreed. Only the no-context-takeover profile is accepted; offers
// demanding reduced window bits are declined (RFC 7692 allows declining
// any offer).
func acceptExtension(offers []string) (response string, ok bool) {
	for _, header := range offers {
		for _, offer := range strings.Split(header, ",") {
			parts := strings.Split(offer, ";")
			if strings.TrimSpace(parts[0]) != extensionName {
				continue
			}
			acceptable := true
			for _, p := range parts[1:] {
				switch key, _, _ := strings.Cut(strings.TrimSpace(p), "="); key {
				case "client_no_context_takeover", "server_no_context_takeover":
					// Fine: we operate without context takeover anyway.
				case "client_max_window_bits":
					// Offered without value: permission to choose; we
					// simply do not use it. With value: still fine, we
					// never compress with a custom window.
				default:
					acceptable = false
				}
			}
			if acceptable {
				// Always pin both no-context-takeover directions; the
				// server may include them regardless of the offer.
				return offerExtension, true
			}
		}
	}
	return "", false
}

// extensionAgreed checks a server's response for the accepted profile.
func extensionAgreed(response string) (bool, error) {
	if response == "" {
		return false, nil
	}
	for _, ext := range strings.Split(response, ",") {
		parts := strings.Split(ext, ";")
		if strings.TrimSpace(parts[0]) != extensionName {
			return false, fmt.Errorf("wsproto: server accepted unknown extension %q", strings.TrimSpace(parts[0]))
		}
		for _, p := range parts[1:] {
			switch key, _, _ := strings.Cut(strings.TrimSpace(p), "="); key {
			case "client_no_context_takeover", "server_no_context_takeover":
			default:
				return false, fmt.Errorf("wsproto: server demanded unsupported parameter %q", strings.TrimSpace(p))
			}
		}
		return true, nil
	}
	return false, nil
}
