// Package wsproto implements the WebSocket protocol (RFC 6455): frame
// codec, masking, client and server opening handshakes, control-frame
// handling and the closing handshake. It is the transport the paper's
// methodology uses between the JavaScript beacon inside the ad iframe
// and the central collector (§3), reimplemented on the Go standard
// library alone.
//
// The subset implemented is complete for data exchange: text and binary
// messages, fragmentation and reassembly, ping/pong, close with status
// codes, payload-size limits and strict masking rules (client-to-server
// frames MUST be masked, server-to-client MUST NOT be). Extensions
// (permessage-deflate) and subprotocol negotiation are intentionally not
// implemented; the beacon payload is a short text frame.
package wsproto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Opcode identifies a WebSocket frame type.
type Opcode byte

// RFC 6455 §5.2 opcodes.
const (
	OpContinuation Opcode = 0x0
	OpText         Opcode = 0x1
	OpBinary       Opcode = 0x2
	OpClose        Opcode = 0x8
	OpPing         Opcode = 0x9
	OpPong         Opcode = 0xA
)

// IsControl reports whether the opcode is a control opcode (§5.5).
func (op Opcode) IsControl() bool { return op >= OpClose }

// IsData reports whether the opcode begins a data message.
func (op Opcode) IsData() bool { return op == OpText || op == OpBinary }

// String returns the opcode name.
func (op Opcode) String() string {
	switch op {
	case OpContinuation:
		return "continuation"
	case OpText:
		return "text"
	case OpBinary:
		return "binary"
	case OpClose:
		return "close"
	case OpPing:
		return "ping"
	case OpPong:
		return "pong"
	default:
		return fmt.Sprintf("opcode(%#x)", byte(op))
	}
}

// Frame is a single WebSocket frame.
type Frame struct {
	Fin bool
	// Rsv1 is the RSV1 bit; with permessage-deflate negotiated it marks
	// the first frame of a compressed message (RFC 7692 §6). Without a
	// negotiated extension the connection layer rejects it.
	Rsv1    bool
	Opcode  Opcode
	Masked  bool
	MaskKey [4]byte
	Payload []byte
}

// Protocol violation errors surfaced by the codec.
var (
	ErrReservedBits      = errors.New("wsproto: non-zero reserved bits")
	ErrReservedOpcode    = errors.New("wsproto: reserved opcode")
	ErrFragmentedControl = errors.New("wsproto: fragmented control frame")
	ErrControlTooLong    = errors.New("wsproto: control frame payload exceeds 125 bytes")
	ErrFrameTooLarge     = errors.New("wsproto: frame exceeds size limit")
	ErrBadPayloadLength  = errors.New("wsproto: non-minimal or invalid payload length encoding")
)

// maxControlPayload is the RFC 6455 §5.5 limit for control frames.
const maxControlPayload = 125

// WriteFrame encodes f to w. If f.Masked, the payload is masked with
// f.MaskKey during writing; f.Payload is not modified.
func WriteFrame(w io.Writer, f Frame) error {
	if f.Opcode.IsControl() {
		if !f.Fin {
			return ErrFragmentedControl
		}
		if len(f.Payload) > maxControlPayload {
			return ErrControlTooLong
		}
	}
	var hdr [14]byte
	n := 2
	b0 := byte(f.Opcode) & 0x0F
	if f.Fin {
		b0 |= 0x80
	}
	if f.Rsv1 {
		b0 |= 0x40
	}
	hdr[0] = b0

	var b1 byte
	plen := len(f.Payload)
	switch {
	case plen <= 125:
		b1 = byte(plen)
	case plen <= 0xFFFF:
		b1 = 126
		binary.BigEndian.PutUint16(hdr[2:4], uint16(plen))
		n += 2
	default:
		b1 = 127
		binary.BigEndian.PutUint64(hdr[2:10], uint64(plen))
		n += 8
	}
	if f.Masked {
		b1 |= 0x80
	}
	hdr[1] = b1
	if f.Masked {
		copy(hdr[n:n+4], f.MaskKey[:])
		n += 4
	}
	if _, err := w.Write(hdr[:n]); err != nil {
		return fmt.Errorf("wsproto: writing frame header: %w", err)
	}
	if plen == 0 {
		return nil
	}
	payload := f.Payload
	if f.Masked {
		masked := make([]byte, plen)
		copy(masked, payload)
		MaskBytes(f.MaskKey, 0, masked)
		payload = masked
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("wsproto: writing frame payload: %w", err)
	}
	return nil
}

// ReadFrame decodes one frame from r, enforcing maxPayload (0 means no
// limit). Masked payloads are unmasked in place before return.
func ReadFrame(r io.Reader, maxPayload int64) (Frame, error) {
	return ReadFrameBuf(r, maxPayload, nil)
}

// ReadFrameBuf is ReadFrame with a caller-supplied payload buffer: when
// buf has capacity for the frame's payload, the returned Frame.Payload
// aliases buf instead of a fresh allocation. Callers reusing a buffer
// across frames must be done with the previous frame's payload before
// reading the next.
func ReadFrameBuf(r io.Reader, maxPayload int64, buf []byte) (Frame, error) {
	var hdr [2]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err
	}
	var f Frame
	f.Fin = hdr[0]&0x80 != 0
	f.Rsv1 = hdr[0]&0x40 != 0
	if hdr[0]&0x30 != 0 {
		return Frame{}, ErrReservedBits
	}
	f.Opcode = Opcode(hdr[0] & 0x0F)
	if !validOpcode(f.Opcode) {
		return Frame{}, ErrReservedOpcode
	}
	f.Masked = hdr[1]&0x80 != 0
	plen := int64(hdr[1] & 0x7F)

	switch plen {
	case 126:
		var ext [2]byte
		if _, err := io.ReadFull(r, ext[:]); err != nil {
			return Frame{}, fmt.Errorf("wsproto: reading extended length: %w", err)
		}
		plen = int64(binary.BigEndian.Uint16(ext[:]))
		if plen <= 125 {
			return Frame{}, ErrBadPayloadLength
		}
	case 127:
		var ext [8]byte
		if _, err := io.ReadFull(r, ext[:]); err != nil {
			return Frame{}, fmt.Errorf("wsproto: reading extended length: %w", err)
		}
		v := binary.BigEndian.Uint64(ext[:])
		if v > 1<<62 {
			return Frame{}, ErrBadPayloadLength
		}
		plen = int64(v)
		if plen <= 0xFFFF {
			return Frame{}, ErrBadPayloadLength
		}
	}

	if f.Opcode.IsControl() {
		if !f.Fin {
			return Frame{}, ErrFragmentedControl
		}
		if plen > maxControlPayload {
			return Frame{}, ErrControlTooLong
		}
	}
	if maxPayload > 0 && plen > maxPayload {
		return Frame{}, ErrFrameTooLarge
	}
	if f.Masked {
		if _, err := io.ReadFull(r, f.MaskKey[:]); err != nil {
			return Frame{}, fmt.Errorf("wsproto: reading mask key: %w", err)
		}
	}
	if plen > 0 {
		if int64(cap(buf)) >= plen {
			f.Payload = buf[:plen]
		} else {
			f.Payload = make([]byte, plen)
		}
		if _, err := io.ReadFull(r, f.Payload); err != nil {
			return Frame{}, fmt.Errorf("wsproto: reading payload: %w", err)
		}
		if f.Masked {
			MaskBytes(f.MaskKey, 0, f.Payload)
		}
	}
	return f, nil
}

func validOpcode(op Opcode) bool {
	switch op {
	case OpContinuation, OpText, OpBinary, OpClose, OpPing, OpPong:
		return true
	default:
		return false
	}
}

// MaskBytes XORs b with the RFC 6455 masking key starting at position
// pos within the payload, returning the position after the last byte.
// Masking is an involution: applying it twice restores the input.
func MaskBytes(key [4]byte, pos int, b []byte) int {
	for i := range b {
		b[i] ^= key[(pos+i)&3]
	}
	return pos + len(b)
}

// CloseCode is a WebSocket close status code (§7.4.1).
type CloseCode uint16

// Standard close codes.
const (
	CloseNormal          CloseCode = 1000
	CloseGoingAway       CloseCode = 1001
	CloseProtocolError   CloseCode = 1002
	CloseUnsupported     CloseCode = 1003
	CloseNoStatus        CloseCode = 1005
	CloseAbnormal        CloseCode = 1006
	CloseInvalidPayload  CloseCode = 1007
	ClosePolicyViolation CloseCode = 1008
	CloseMessageTooBig   CloseCode = 1009
	CloseInternalError   CloseCode = 1011
	// CloseServiceRestart (1012) tells the peer the endpoint is
	// restarting or draining: the session ended through no fault of the
	// client, which should reconnect (after any hinted delay) and resume.
	CloseServiceRestart CloseCode = 1012
	// CloseTryAgainLater (1013) tells the peer the endpoint is
	// overloaded: reconnecting immediately will not help; back off first.
	CloseTryAgainLater CloseCode = 1013
)

// EncodeClosePayload builds a close-frame payload from a status code and
// an optional UTF-8 reason, truncated to fit the 125-byte control limit.
func EncodeClosePayload(code CloseCode, reason string) []byte {
	if len(reason) > maxControlPayload-2 {
		reason = reason[:maxControlPayload-2]
	}
	p := make([]byte, 2+len(reason))
	binary.BigEndian.PutUint16(p, uint16(code))
	copy(p[2:], reason)
	return p
}

// DecodeClosePayload parses a close-frame payload. An empty payload
// yields CloseNoStatus per §7.1.5. A one-byte payload is a protocol
// error.
func DecodeClosePayload(p []byte) (CloseCode, string, error) {
	switch len(p) {
	case 0:
		return CloseNoStatus, "", nil
	case 1:
		return 0, "", fmt.Errorf("wsproto: close payload of 1 byte")
	default:
		return CloseCode(binary.BigEndian.Uint16(p[:2])), string(p[2:]), nil
	}
}
