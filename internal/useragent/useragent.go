// Package useragent generates and parses HTTP User-Agent strings. The
// paper's beacon records the User-Agent of every device receiving an ad
// impression and uses it (combined with the IP address) as the user
// identity for the frequency-cap analysis, so two users behind a NAT with
// different browsers are counted separately.
//
// The parser covers the browser families that dominate display-ad traffic
// plus the headless/automation agents typical of data-center bot traffic.
package useragent

import (
	"strings"
)

// DeviceClass is the coarse device type of a parsed agent.
type DeviceClass int

const (
	// DeviceDesktop is a desktop or laptop browser.
	DeviceDesktop DeviceClass = iota
	// DeviceMobile is a phone browser.
	DeviceMobile
	// DeviceTablet is a tablet browser.
	DeviceTablet
	// DeviceBot is an automation agent (headless browser, fetch library,
	// crawler).
	DeviceBot
	// DeviceUnknown is anything the parser cannot place.
	DeviceUnknown
)

// String returns the class name.
func (d DeviceClass) String() string {
	switch d {
	case DeviceDesktop:
		return "desktop"
	case DeviceMobile:
		return "mobile"
	case DeviceTablet:
		return "tablet"
	case DeviceBot:
		return "bot"
	default:
		return "unknown"
	}
}

// Agent is a parsed User-Agent.
type Agent struct {
	Raw     string
	Browser string // e.g. "Chrome", "Firefox", "Safari", "HeadlessChrome"
	Version string // major version, e.g. "49"
	OS      string // e.g. "Windows", "Android", "iOS", "Linux", "macOS"
	Device  DeviceClass
}

// IsBot reports whether the agent looks like automation rather than a
// human-driven browser. This is a heuristic signal only; the paper's
// fraud analysis relies on IP classification (data-center ranges), with
// UA bot-ness as a corroborating feature.
func (a Agent) IsBot() bool { return a.Device == DeviceBot }

// Parse extracts browser, OS and device class from a User-Agent string.
// Unknown strings yield Browser "" and DeviceUnknown rather than an
// error: the collector must never reject an impression for an
// unrecognised agent.
func Parse(raw string) Agent {
	a := Agent{Raw: raw}
	if raw == "" {
		a.Device = DeviceUnknown
		return a
	}
	l := strings.ToLower(raw)

	// Bots first: automation markers dominate all other signals.
	switch {
	case strings.Contains(l, "headlesschrome"):
		a.Browser, a.Device = "HeadlessChrome", DeviceBot
		a.Version = versionAfter(raw, "HeadlessChrome/")
		a.OS = parseOS(l)
		return a
	case strings.Contains(l, "phantomjs"):
		a.Browser, a.Device = "PhantomJS", DeviceBot
		a.Version = versionAfter(raw, "PhantomJS/")
		a.OS = parseOS(l)
		return a
	case strings.Contains(l, "selenium"), strings.Contains(l, "webdriver"):
		a.Browser, a.Device = "WebDriver", DeviceBot
		a.OS = parseOS(l)
		return a
	case strings.Contains(l, "python-requests"):
		a.Browser, a.Device = "python-requests", DeviceBot
		a.Version = versionAfter(raw, "python-requests/")
		return a
	case strings.Contains(l, "curl/"):
		a.Browser, a.Device = "curl", DeviceBot
		a.Version = versionAfter(raw, "curl/")
		return a
	case strings.Contains(l, "wget/"):
		a.Browser, a.Device = "Wget", DeviceBot
		a.Version = versionAfter(raw, "Wget/")
		return a
	case strings.Contains(l, "bot"), strings.Contains(l, "crawler"), strings.Contains(l, "spider"):
		a.Browser, a.Device = "Crawler", DeviceBot
		return a
	}

	a.OS = parseOS(l)
	a.Device = parseDevice(l)

	// Browser detection order matters: Chrome UAs contain "Safari",
	// Edge UAs contain "Chrome", Opera UAs contain both.
	switch {
	case strings.Contains(l, "edg/"), strings.Contains(l, "edge/"):
		a.Browser = "Edge"
		a.Version = firstNonEmpty(versionAfter(raw, "Edg/"), versionAfter(raw, "Edge/"))
	case strings.Contains(l, "opr/"), strings.Contains(l, "opera"):
		a.Browser = "Opera"
		a.Version = firstNonEmpty(versionAfter(raw, "OPR/"), versionAfter(raw, "Opera/"))
	case strings.Contains(l, "samsungbrowser/"):
		a.Browser = "SamsungBrowser"
		a.Version = versionAfter(raw, "SamsungBrowser/")
	case strings.Contains(l, "firefox/"):
		a.Browser = "Firefox"
		a.Version = versionAfter(raw, "Firefox/")
	case strings.Contains(l, "msie "), strings.Contains(l, "trident/"):
		a.Browser = "IE"
		a.Version = firstNonEmpty(versionAfter(raw, "MSIE "), versionAfter(raw, "rv:"))
	case strings.Contains(l, "chrome/"):
		a.Browser = "Chrome"
		a.Version = versionAfter(raw, "Chrome/")
	case strings.Contains(l, "safari/") && strings.Contains(l, "version/"):
		a.Browser = "Safari"
		a.Version = versionAfter(raw, "Version/")
	default:
		a.Device = DeviceUnknown
	}
	return a
}

func parseOS(l string) string {
	switch {
	case strings.Contains(l, "windows"):
		return "Windows"
	case strings.Contains(l, "android"):
		return "Android"
	case strings.Contains(l, "iphone"), strings.Contains(l, "ipad"), strings.Contains(l, "ios"):
		return "iOS"
	case strings.Contains(l, "mac os x"), strings.Contains(l, "macintosh"):
		return "macOS"
	case strings.Contains(l, "linux"):
		return "Linux"
	default:
		return ""
	}
}

func parseDevice(l string) DeviceClass {
	switch {
	case strings.Contains(l, "ipad"), strings.Contains(l, "tablet"):
		return DeviceTablet
	case strings.Contains(l, "mobile"), strings.Contains(l, "iphone"):
		return DeviceMobile
	case strings.Contains(l, "android"):
		// Android without "Mobile" is a tablet by UA convention.
		return DeviceTablet
	default:
		return DeviceDesktop
	}
}

// versionAfter returns the major version number following marker in raw,
// or "" when absent. Matching is case-insensitive.
func versionAfter(raw, marker string) string {
	idx := strings.Index(strings.ToLower(raw), strings.ToLower(marker))
	if idx < 0 {
		return ""
	}
	rest := raw[idx+len(marker):]
	end := 0
	for end < len(rest) && rest[end] >= '0' && rest[end] <= '9' {
		end++
	}
	return rest[:end]
}

func firstNonEmpty(xs ...string) string {
	for _, x := range xs {
		if x != "" {
			return x
		}
	}
	return ""
}
