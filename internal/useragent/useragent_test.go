package useragent

import (
	"testing"

	"adaudit/internal/stats"
)

func TestParseChromeWindows(t *testing.T) {
	a := Parse("Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/49.0.2623.87 Safari/537.36")
	if a.Browser != "Chrome" || a.Version != "49" || a.OS != "Windows" || a.Device != DeviceDesktop {
		t.Fatalf("got %+v", a)
	}
}

func TestParseFirefox(t *testing.T) {
	a := Parse("Mozilla/5.0 (Windows NT 6.1; Win64; x64; rv:45.0) Gecko/20100101 Firefox/45.0")
	if a.Browser != "Firefox" || a.Version != "45" || a.OS != "Windows" {
		t.Fatalf("got %+v", a)
	}
}

func TestParseSafariMac(t *testing.T) {
	a := Parse("Mozilla/5.0 (Macintosh; Intel Mac OS X 10_11_3) AppleWebKit/601.4.4 (KHTML, like Gecko) Version/9.0.3 Safari/601.4.4")
	if a.Browser != "Safari" || a.Version != "9" || a.OS != "macOS" || a.Device != DeviceDesktop {
		t.Fatalf("got %+v", a)
	}
}

func TestParseMobileSafariIPhone(t *testing.T) {
	a := Parse("Mozilla/5.0 (iPhone; CPU iPhone OS 9_2_1 like Mac OS X) AppleWebKit/601.1.46 (KHTML, like Gecko) Version/9.0 Mobile/13D15 Safari/601.1")
	if a.Browser != "Safari" || a.OS != "iOS" || a.Device != DeviceMobile {
		t.Fatalf("got %+v", a)
	}
}

func TestParseIPadIsTablet(t *testing.T) {
	a := Parse("Mozilla/5.0 (iPad; CPU OS 9_2 like Mac OS X) AppleWebKit/601.1.46 (KHTML, like Gecko) Version/9.0 Mobile/13C75 Safari/601.1")
	if a.Device != DeviceTablet {
		t.Fatalf("iPad parsed as %v", a.Device)
	}
}

func TestParseAndroidChromeMobile(t *testing.T) {
	a := Parse("Mozilla/5.0 (Linux; Android 6.0; Nexus 5 Build/MRA58N) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/49.0.2623.91 Mobile Safari/537.36")
	if a.Browser != "Chrome" || a.OS != "Android" || a.Device != DeviceMobile {
		t.Fatalf("got %+v", a)
	}
}

func TestParseAndroidTabletWithoutMobileToken(t *testing.T) {
	a := Parse("Mozilla/5.0 (Linux; Android 5.1.1; SM-T550) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/48.0.2564.106 Safari/537.36")
	if a.Device != DeviceTablet {
		t.Fatalf("Android non-mobile parsed as %v", a.Device)
	}
}

func TestParseEdge(t *testing.T) {
	a := Parse("Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/46.0.2486.0 Safari/537.36 Edge/13.10586")
	if a.Browser != "Edge" || a.Version != "13" {
		t.Fatalf("got %+v", a)
	}
}

func TestParseOpera(t *testing.T) {
	a := Parse("Mozilla/5.0 (Windows NT 6.3; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/48.0.2564.109 Safari/537.36 OPR/35.0.2256.48")
	if a.Browser != "Opera" || a.Version != "35" {
		t.Fatalf("got %+v", a)
	}
}

func TestParseIE11(t *testing.T) {
	a := Parse("Mozilla/5.0 (Windows NT 6.1; WOW64; Trident/7.0; rv:11.0) like Gecko")
	if a.Browser != "IE" || a.Version != "11" || a.OS != "Windows" {
		t.Fatalf("got %+v", a)
	}
}

func TestParseHeadlessChromeIsBot(t *testing.T) {
	a := Parse("Mozilla/5.0 (X11; Linux x86_64) AppleWebKit/537.36 (KHTML, like Gecko) HeadlessChrome/49.0.2623.87 Safari/537.36")
	if !a.IsBot() || a.Browser != "HeadlessChrome" || a.Version != "49" {
		t.Fatalf("got %+v", a)
	}
}

func TestParsePhantomJSIsBot(t *testing.T) {
	a := Parse("Mozilla/5.0 (Unknown; Linux x86_64) AppleWebKit/538.1 (KHTML, like Gecko) PhantomJS/2.1.1 Safari/538.1")
	if !a.IsBot() || a.Browser != "PhantomJS" {
		t.Fatalf("got %+v", a)
	}
}

func TestParseFetchLibraries(t *testing.T) {
	for raw, browser := range map[string]string{
		"python-requests/2.9.1":   "python-requests",
		"curl/7.47.0":             "curl",
		"Wget/1.17.1 (linux-gnu)": "Wget",
	} {
		a := Parse(raw)
		if !a.IsBot() || a.Browser != browser {
			t.Errorf("Parse(%q) = %+v, want bot %s", raw, a, browser)
		}
	}
}

func TestParseCrawler(t *testing.T) {
	a := Parse("Mozilla/5.0 (compatible; Googlebot/2.1; +http://www.google.com/bot.html)")
	if !a.IsBot() || a.Browser != "Crawler" {
		t.Fatalf("got %+v", a)
	}
}

func TestParseEmptyAndGarbage(t *testing.T) {
	if a := Parse(""); a.Device != DeviceUnknown || a.Browser != "" {
		t.Fatalf("Parse(\"\") = %+v", a)
	}
	if a := Parse("definitely not a user agent"); a.Device != DeviceUnknown {
		t.Fatalf("garbage parsed as %+v", a)
	}
}

func TestDeviceClassStrings(t *testing.T) {
	if DeviceDesktop.String() != "desktop" || DeviceBot.String() != "bot" || DeviceClass(99).String() != "unknown" {
		t.Fatal("DeviceClass.String mismatch")
	}
}

func TestGeneratorBrowserAgentsParse(t *testing.T) {
	g := NewGenerator(stats.NewRNG(1))
	browsers := map[string]int{}
	for i := 0; i < 2000; i++ {
		raw := g.Browser()
		a := Parse(raw)
		if a.Browser == "" {
			t.Fatalf("generated browser UA failed to parse: %q", raw)
		}
		if a.IsBot() {
			t.Fatalf("generated browser UA parsed as bot: %q", raw)
		}
		browsers[a.Browser]++
	}
	// The mix must cover the major families.
	for _, want := range []string{"Chrome", "Firefox", "Safari", "IE", "Edge"} {
		if browsers[want] == 0 {
			t.Errorf("browser family %s never generated (mix: %v)", want, browsers)
		}
	}
	// Chrome should dominate the 2016 mix.
	if browsers["Chrome"] < browsers["Firefox"] {
		t.Errorf("Chrome (%d) should outnumber Firefox (%d)", browsers["Chrome"], browsers["Firefox"])
	}
}

func TestGeneratorBotAgents(t *testing.T) {
	g := NewGenerator(stats.NewRNG(2))
	flagged, spoofed := 0, 0
	for i := 0; i < 2000; i++ {
		a := Parse(g.Bot())
		if a.IsBot() {
			flagged++
		} else {
			spoofed++
		}
	}
	if flagged == 0 {
		t.Fatal("no generated bot UA was flagged as bot")
	}
	// The spoofing fraction is deliberate: some bots present clean
	// browser strings and are only catchable by IP classification.
	if spoofed == 0 {
		t.Fatal("expected some bot UAs to spoof clean browser strings")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	g1 := NewGenerator(stats.NewRNG(7))
	g2 := NewGenerator(stats.NewRNG(7))
	for i := 0; i < 100; i++ {
		if g1.Browser() != g2.Browser() {
			t.Fatal("generator streams diverged")
		}
	}
}
