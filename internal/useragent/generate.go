package useragent

import (
	"fmt"

	"adaudit/internal/stats"
)

// Generator produces realistic User-Agent strings for the simulated
// device fleet, with a market-share-weighted mix of browsers, OSes and
// device classes circa the paper's measurement period (early 2016).
type Generator struct {
	rng *stats.RNG
}

// NewGenerator returns a generator drawing from rng.
func NewGenerator(rng *stats.RNG) *Generator {
	return &Generator{rng: rng}
}

type uaTemplate struct {
	weight float64
	format string
	// versions is the pool of major versions to draw from.
	versions []int
	device   DeviceClass
}

var browserTemplates = []uaTemplate{
	{ // Chrome on Windows — the dominant display-ad client.
		weight:   0.34,
		format:   "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/%d.0.2623.87 Safari/537.36",
		versions: []int{47, 48, 49, 50},
		device:   DeviceDesktop,
	},
	{ // Chrome on Android mobile.
		weight:   0.18,
		format:   "Mozilla/5.0 (Linux; Android 6.0; Nexus 5 Build/MRA58N) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/%d.0.2623.91 Mobile Safari/537.36",
		versions: []int{47, 48, 49},
		device:   DeviceMobile,
	},
	{ // Firefox on Windows.
		weight:   0.12,
		format:   "Mozilla/5.0 (Windows NT 6.1; Win64; x64; rv:%d.0) Gecko/20100101 Firefox/%d.0",
		versions: []int{43, 44, 45},
		device:   DeviceDesktop,
	},
	{ // Safari on macOS.
		weight:   0.07,
		format:   "Mozilla/5.0 (Macintosh; Intel Mac OS X 10_11_3) AppleWebKit/601.4.4 (KHTML, like Gecko) Version/%d.0.3 Safari/601.4.4",
		versions: []int{9},
		device:   DeviceDesktop,
	},
	{ // Safari on iPhone.
		weight:   0.10,
		format:   "Mozilla/5.0 (iPhone; CPU iPhone OS 9_2_1 like Mac OS X) AppleWebKit/601.1.46 (KHTML, like Gecko) Version/%d.0 Mobile/13D15 Safari/601.1",
		versions: []int{9},
		device:   DeviceMobile,
	},
	{ // Safari on iPad.
		weight:   0.04,
		format:   "Mozilla/5.0 (iPad; CPU OS 9_2 like Mac OS X) AppleWebKit/601.1.46 (KHTML, like Gecko) Version/%d.0 Mobile/13C75 Safari/601.1",
		versions: []int{9},
		device:   DeviceTablet,
	},
	{ // IE 11 on Windows 7 — still significant in 2016.
		weight:   0.08,
		format:   "Mozilla/5.0 (Windows NT 6.1; WOW64; Trident/7.0; rv:%d.0) like Gecko",
		versions: []int{11},
		device:   DeviceDesktop,
	},
	{ // Edge on Windows 10.
		weight:   0.03,
		format:   "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/46.0.2486.0 Safari/537.36 Edge/%d.10586",
		versions: []int{13},
		device:   DeviceDesktop,
	},
	{ // Opera on Windows.
		weight:   0.02,
		format:   "Mozilla/5.0 (Windows NT 6.3; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/48.0.2564.109 Safari/537.36 OPR/%d.0.2256.48",
		versions: []int{35},
		device:   DeviceDesktop,
	},
	{ // Samsung browser on Android.
		weight:   0.02,
		format:   "Mozilla/5.0 (Linux; Android 5.0.2; SAMSUNG SM-G920F Build/LRX22G) AppleWebKit/537.36 (KHTML, like Gecko) SamsungBrowser/%d.0 Chrome/38.0.2125.102 Mobile Safari/537.36",
		versions: []int{3},
		device:   DeviceMobile,
	},
}

var botTemplates = []uaTemplate{
	{ // Headless Chrome pretending to be a desktop browser.
		weight:   0.45,
		format:   "Mozilla/5.0 (X11; Linux x86_64) AppleWebKit/537.36 (KHTML, like Gecko) HeadlessChrome/%d.0.2623.87 Safari/537.36",
		versions: []int{48, 49},
		device:   DeviceBot,
	},
	{ // PhantomJS, the 2016-era headless workhorse.
		weight:   0.30,
		format:   "Mozilla/5.0 (Unknown; Linux x86_64) AppleWebKit/538.1 (KHTML, like Gecko) PhantomJS/%d.1.1 Safari/538.1",
		versions: []int{1, 2},
		device:   DeviceBot,
	},
	{ // A plain Chrome UA on Linux: a bot that spoofs a clean browser
		// string. Only the IP gives it away — this is why the paper's
		// fraud detection keys on data-center ranges, not UAs.
		weight:   0.25,
		format:   "Mozilla/5.0 (X11; Linux x86_64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/%d.0.2623.87 Safari/537.36",
		versions: []int{48, 49},
		device:   DeviceDesktop,
	},
}

func pickTemplate(rng *stats.RNG, templates []uaTemplate) string {
	weights := make([]float64, len(templates))
	for i, tpl := range templates {
		weights[i] = tpl.weight
	}
	tpl := templates[stats.WeightedPick(rng, weights)]
	v := tpl.versions[rng.Intn(len(tpl.versions))]
	// Firefox template has two %d verbs for the same version.
	n := 0
	for i := 0; i+1 < len(tpl.format); i++ {
		if tpl.format[i] == '%' && tpl.format[i+1] == 'd' {
			n++
		}
	}
	args := make([]any, n)
	for i := range args {
		args[i] = v
	}
	return fmt.Sprintf(tpl.format, args...)
}

// Browser returns a human-browser User-Agent drawn from the 2016 market
// mix.
func (g *Generator) Browser() string {
	return pickTemplate(g.rng, browserTemplates)
}

// Bot returns a User-Agent typical of data-center automation. A fraction
// of bot agents deliberately spoof clean browser strings.
func (g *Generator) Bot() string {
	return pickTemplate(g.rng, botTemplates)
}
