package ipmeta

import (
	"net/netip"
	"testing"
)

func buildClassifierFixture(t *testing.T) (*Classifier, map[string]netip.Addr) {
	t.Helper()
	b := NewBuilder()
	b.Add(mustPrefix(t, "10.0.0.0/16"), Org{Name: "home-isp", Kind: KindISP, Country: "ES"})
	b.Add(mustPrefix(t, "20.0.0.0/16"), Org{Name: "cloud-a", Kind: KindHosting, Country: "US"})
	b.Add(mustPrefix(t, "30.0.0.0/16"), Org{Name: "vpn-svc", Kind: KindVPN, Country: "US"})
	// cloud-b is NOT in the provider DB as hosting; it is mislabelled as
	// an ISP (a real-world MaxMind gap) but present on the deny list.
	b.Add(mustPrefix(t, "40.0.0.0/16"), Org{Name: "cloud-b", Kind: KindISP, Country: "US"})
	// cloud-c is only identifiable by manual verification.
	b.Add(mustPrefix(t, "50.0.0.0/16"), Org{Name: "cloud-c", Kind: KindISP, Country: "US"})
	db, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	dl, err := NewDenyList([]netip.Prefix{mustPrefix(t, "40.0.0.0/16")})
	if err != nil {
		t.Fatal(err)
	}
	c := &Classifier{
		DB:       db,
		DenyList: dl,
		ManualVerify: func(r Record) bool {
			return r.Org.Name == "cloud-c"
		},
	}
	addrs := map[string]netip.Addr{
		"residential": netip.MustParseAddr("10.0.1.1"),
		"hosting":     netip.MustParseAddr("20.0.1.1"),
		"vpn":         netip.MustParseAddr("30.0.1.1"),
		"denied":      netip.MustParseAddr("40.0.1.1"),
		"manual":      netip.MustParseAddr("50.0.1.1"),
		"unknown":     netip.MustParseAddr("99.0.0.1"),
	}
	return c, addrs
}

func TestClassifierCascade(t *testing.T) {
	c, addrs := buildClassifierFixture(t)
	cases := []struct {
		name string
		want DataCenterVerdict
	}{
		{"residential", VerdictNotDataCenter},
		{"hosting", VerdictProviderDB},
		{"vpn", VerdictVPNException},
		{"denied", VerdictDenyList},
		{"manual", VerdictManual},
		{"unknown", VerdictNotDataCenter},
	}
	for _, tc := range cases {
		if got := c.Classify(addrs[tc.name]); got != tc.want {
			t.Errorf("Classify(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestClassifierVerdictSemantics(t *testing.T) {
	if !VerdictProviderDB.IsDataCenter() || !VerdictDenyList.IsDataCenter() || !VerdictManual.IsDataCenter() {
		t.Fatal("data-center verdicts must report IsDataCenter")
	}
	if VerdictNotDataCenter.IsDataCenter() || VerdictVPNException.IsDataCenter() {
		t.Fatal("non-DC verdicts must not report IsDataCenter")
	}
}

func TestClassifierStats(t *testing.T) {
	c, addrs := buildClassifierFixture(t)
	for i := 0; i < 3; i++ {
		c.Classify(addrs["hosting"])
	}
	c.Classify(addrs["denied"])
	if got := c.VerdictCount(VerdictProviderDB); got != 3 {
		t.Fatalf("provider-db count = %d, want 3", got)
	}
	if got := c.VerdictCount(VerdictDenyList); got != 1 {
		t.Fatalf("deny-list count = %d, want 1", got)
	}
	if got := c.VerdictCount(DataCenterVerdict(99)); got != 0 {
		t.Fatalf("out-of-range verdict count = %d", got)
	}
}

func TestClassifierStagesOptional(t *testing.T) {
	_, addrs := buildClassifierFixture(t)
	// Cascade with no stages classifies everything as clean.
	empty := &Classifier{}
	if got := empty.Classify(addrs["hosting"]); got != VerdictNotDataCenter {
		t.Fatalf("stage-less classify = %v", got)
	}
	// Deny-list-only cascade still catches listed ranges.
	dl, err := NewDenyList([]netip.Prefix{netip.MustParsePrefix("40.0.0.0/16")})
	if err != nil {
		t.Fatal(err)
	}
	dlOnly := &Classifier{DenyList: dl}
	if got := dlOnly.Classify(addrs["denied"]); got != VerdictDenyList {
		t.Fatalf("deny-list-only classify = %v", got)
	}
	if got := dlOnly.Classify(addrs["hosting"]); got != VerdictNotDataCenter {
		t.Fatalf("deny-list-only classify of unlisted hosting = %v", got)
	}
}

func TestVerdictStrings(t *testing.T) {
	names := map[DataCenterVerdict]string{
		VerdictNotDataCenter: "not-data-center",
		VerdictProviderDB:    "provider-db",
		VerdictDenyList:      "deny-list",
		VerdictManual:        "manual",
		VerdictVPNException:  "vpn-exception",
	}
	for v, want := range names {
		if v.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(v), v.String(), want)
		}
	}
}

func TestOrgKindStrings(t *testing.T) {
	if KindHosting.String() != "hosting" || KindISP.String() != "isp" {
		t.Fatal("OrgKind.String mismatch")
	}
	if OrgKind(99).String() != "OrgKind(99)" {
		t.Fatalf("unknown kind string = %q", OrgKind(99).String())
	}
}
