// Package ipmeta maps IP addresses to network metadata: owning
// organisation, organisation kind (ISP, hosting/cloud provider, mobile
// carrier, ...), and country. It is the offline stand-in for the MaxMind
// GeoIP ISP database the paper uses in §4.2 (Fraud Identification),
// plus the Botlab deny-hosting IP list used as the second stage of the
// paper's data-center detection cascade.
//
// Lookups run over binary radix tries keyed by IP prefixes with
// longest-prefix-match semantics, the same structure real
// IP-intelligence databases compile to. IPv4 and IPv6 live in separate
// tries; 4-in-6 mapped addresses are unmapped and matched against the
// IPv4 trie, mirroring how dual-stack servers observe clients.
package ipmeta

import (
	"fmt"
	"net/netip"
)

// radixNode is a node in a binary trie over address bits.
// A node may carry a value (the most specific entry so far along the
// path); children are indexed by the next address bit.
type radixNode[V any] struct {
	child [2]*radixNode[V]
	val   V
	set   bool
}

// insertBits walks/extends the trie along the first `bits` bits of key
// and sets the value at the final node. It reports whether the entry is
// new.
func insertBits[V any](root *radixNode[V], key []byte, bits int, val V) bool {
	node := root
	for i := 0; i < bits; i++ {
		bit := (key[i/8] >> (7 - i%8)) & 1
		if node.child[bit] == nil {
			node.child[bit] = &radixNode[V]{}
		}
		node = node.child[bit]
	}
	isNew := !node.set
	node.val = val
	node.set = true
	return isNew
}

// lookupBits walks the trie along key, remembering the deepest value.
func lookupBits[V any](root *radixNode[V], key []byte, bits int) (V, bool) {
	var best V
	found := false
	node := root
	for i := 0; i <= bits; i++ {
		if node.set {
			best = node.val
			found = true
		}
		if i == bits {
			break
		}
		bit := (key[i/8] >> (7 - i%8)) & 1
		if node.child[bit] == nil {
			break
		}
		node = node.child[bit]
	}
	return best, found
}

// RadixTree is a longest-prefix-match table from IP CIDR prefixes
// (IPv4 and IPv6) to values. The zero value is not usable; call
// NewRadixTree. RadixTree is safe for concurrent readers once
// populated; Insert must not race with Lookup.
type RadixTree[V any] struct {
	v4 *radixNode[V]
	v6 *radixNode[V]
	n  int
}

// NewRadixTree returns an empty tree.
func NewRadixTree[V any]() *RadixTree[V] {
	return &RadixTree[V]{v4: &radixNode[V]{}, v6: &radixNode[V]{}}
}

// Len returns the number of prefixes inserted.
func (t *RadixTree[V]) Len() int { return t.n }

// Insert associates val with prefix. Inserting the same prefix twice
// overwrites the previous value. An invalid prefix returns an error.
func (t *RadixTree[V]) Insert(prefix netip.Prefix, val V) error {
	if !prefix.IsValid() {
		return fmt.Errorf("ipmeta: invalid prefix %v", prefix)
	}
	prefix = prefix.Masked()
	var isNew bool
	if prefix.Addr().Is4() {
		b := prefix.Addr().As4()
		isNew = insertBits(t.v4, b[:], prefix.Bits(), val)
	} else {
		b := prefix.Addr().As16()
		isNew = insertBits(t.v6, b[:], prefix.Bits(), val)
	}
	if isNew {
		t.n++
	}
	return nil
}

// Lookup returns the value of the longest prefix containing addr and
// true, or the zero value and false if no prefix matches. 4-in-6 mapped
// addresses are unmapped and matched against the IPv4 table.
func (t *RadixTree[V]) Lookup(addr netip.Addr) (V, bool) {
	var zero V
	addr = addr.Unmap()
	if !addr.IsValid() {
		return zero, false
	}
	if addr.Is4() {
		b := addr.As4()
		return lookupBits(t.v4, b[:], 32)
	}
	b := addr.As16()
	return lookupBits(t.v6, b[:], 128)
}

func uint32ToIPv4(v uint32) netip.Addr {
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}

func ipv4ToUint32(a netip.Addr) uint32 {
	b := a.As4()
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}
