package ipmeta

import (
	"net/netip"
	"testing"
	"testing/quick"
)

func TestAnonymizerConsistentWithinDataset(t *testing.T) {
	a := NewAnonymizer([]byte("dataset-secret"))
	addr := netip.MustParseAddr("203.0.113.7")
	if a.Pseudonym(addr) != a.Pseudonym(addr) {
		t.Fatal("same address produced different pseudonyms")
	}
}

func TestAnonymizerKeysIndependent(t *testing.T) {
	a := NewAnonymizer([]byte("key-a"))
	b := NewAnonymizer([]byte("key-b"))
	addr := netip.MustParseAddr("203.0.113.7")
	if a.Pseudonym(addr) == b.Pseudonym(addr) {
		t.Fatal("different keys produced the same pseudonym")
	}
}

func TestAnonymizerInjectiveInPractice(t *testing.T) {
	a := NewAnonymizer([]byte("k"))
	err := quick.Check(func(x, y uint32) bool {
		ax := netip.AddrFrom4([4]byte{byte(x >> 24), byte(x >> 16), byte(x >> 8), byte(x)})
		ay := netip.AddrFrom4([4]byte{byte(y >> 24), byte(y >> 16), byte(y >> 8), byte(y)})
		if ax == ay {
			return a.Pseudonym(ax) == a.Pseudonym(ay)
		}
		return a.Pseudonym(ax) != a.Pseudonym(ay)
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAnonymizerOutputFormat(t *testing.T) {
	a := NewAnonymizer([]byte("k"))
	p := a.Pseudonym(netip.MustParseAddr("10.0.0.1"))
	if len(p) != 32 {
		t.Fatalf("pseudonym length = %d, want 32 hex chars", len(p))
	}
	for _, c := range p {
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			t.Fatalf("pseudonym %q contains non-hex char %q", p, c)
		}
	}
}

func TestAnonymizerPanicsOnEmptySecret(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty secret")
		}
	}()
	NewAnonymizer(nil)
}

func TestAnonymizerDefensiveKeyCopy(t *testing.T) {
	secret := []byte("mutable")
	a := NewAnonymizer(secret)
	addr := netip.MustParseAddr("10.0.0.1")
	before := a.Pseudonym(addr)
	secret[0] = 'X'
	if a.Pseudonym(addr) != before {
		t.Fatal("anonymizer affected by caller mutating the secret slice")
	}
}
