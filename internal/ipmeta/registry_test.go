package ipmeta

import (
	"net/netip"
	"testing"
)

func testUniverse(t *testing.T) *Universe {
	t.Helper()
	u, err := NewUniverse(UniverseConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestUniverseCountries(t *testing.T) {
	u := testUniverse(t)
	got := u.Countries()
	want := []string{"ES", "RU", "US"}
	if len(got) != len(want) {
		t.Fatalf("Countries = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Countries = %v, want %v", got, want)
		}
	}
}

func TestResidentialAddrsResolveToCountry(t *testing.T) {
	u := testUniverse(t)
	for _, country := range u.Countries() {
		for i := 0; i < 50; i++ {
			addr, err := u.RandomResidentialAddr(country)
			if err != nil {
				t.Fatal(err)
			}
			rec, ok := u.DB.Lookup(addr)
			if !ok {
				t.Fatalf("residential addr %v not in DB", addr)
			}
			if rec.Org.Country != country {
				t.Fatalf("addr %v resolved to country %s, want %s", addr, rec.Org.Country, country)
			}
			if rec.Org.Kind == KindHosting || rec.Org.Kind == KindVPN {
				t.Fatalf("residential addr %v classified as %v", addr, rec.Org.Kind)
			}
		}
	}
}

func TestHostingAddrsDetectable(t *testing.T) {
	u := testUniverse(t)
	labelled, mislabelled := 0, 0
	for i := 0; i < 300; i++ {
		addr, err := u.RandomHostingAddr()
		if err != nil {
			t.Fatal(err)
		}
		rec, ok := u.DB.Lookup(addr)
		if !ok {
			t.Fatalf("hosting addr %v not in DB", addr)
		}
		switch rec.Org.Kind {
		case KindHosting:
			labelled++
		case KindISP:
			// Mislabelled in the registry (a MaxMind-style gap) — but
			// manual verification must still identify it.
			mislabelled++
			if !u.ManualVerify(rec) {
				t.Fatalf("mislabelled hosting addr %v not manually verifiable", addr)
			}
		default:
			t.Fatalf("hosting addr %v classified as %v", addr, rec.Org.Kind)
		}
	}
	if labelled == 0 {
		t.Fatal("no hosting addresses correctly labelled")
	}
	if mislabelled == 0 {
		t.Fatal("no mislabelled hosting addresses: registry gaps missing")
	}
}

func TestManualVerifyRejectsRealISPs(t *testing.T) {
	u := testUniverse(t)
	addr, err := u.RandomResidentialAddr("ES")
	if err != nil {
		t.Fatal(err)
	}
	rec, ok := u.DB.Lookup(addr)
	if !ok {
		t.Fatal("residential addr not in DB")
	}
	if u.ManualVerify(rec) {
		t.Fatalf("manual verification flagged real ISP %s", rec.Org.Name)
	}
}

func TestFullCascadeOverUniverse(t *testing.T) {
	u := testUniverse(t)
	c := &Classifier{DB: u.DB, DenyList: u.DenyList, ManualVerify: u.ManualVerify}
	caught := map[DataCenterVerdict]int{}
	for i := 0; i < 500; i++ {
		addr, err := u.RandomHostingAddr()
		if err != nil {
			t.Fatal(err)
		}
		v := c.Classify(addr)
		if !v.IsDataCenter() {
			t.Fatalf("hosting addr %v escaped the full cascade (%v)", addr, v)
		}
		caught[v]++
	}
	if caught[VerdictProviderDB] == 0 {
		t.Fatal("stage 1 caught nothing")
	}
	if caught[VerdictDenyList]+caught[VerdictManual] == 0 {
		t.Fatal("stages 2-3 caught nothing: mislabelling model inert")
	}
}

func TestDenyListCoversOnlyHostingSpace(t *testing.T) {
	u := testUniverse(t)
	if u.DenyList.Len() == 0 {
		t.Fatal("deny list is empty")
	}
	// Residential space must never be deny-listed.
	for i := 0; i < 200; i++ {
		addr, err := u.RandomResidentialAddr("ES")
		if err != nil {
			t.Fatal(err)
		}
		if u.DenyList.Contains(addr) {
			t.Fatalf("residential addr %v on deny list", addr)
		}
	}
}

func TestUniverseDeterminism(t *testing.T) {
	u1, err := NewUniverse(UniverseConfig{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	u2, err := NewUniverse(UniverseConfig{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		a1, err1 := u1.RandomResidentialAddr("US")
		a2, err2 := u2.RandomResidentialAddr("US")
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if a1 != a2 {
			t.Fatalf("universes diverged at draw %d: %v vs %v", i, a1, a2)
		}
	}
}

func TestRandomAddrUnknownCountry(t *testing.T) {
	u := testUniverse(t)
	if _, err := u.RandomAddr("XX", KindISP); err == nil {
		t.Fatal("expected error for unknown country")
	}
}

func TestRandomAddrAvoidsNetworkAndBroadcast(t *testing.T) {
	u := testUniverse(t)
	for i := 0; i < 500; i++ {
		addr, err := u.RandomResidentialAddr("RU")
		if err != nil {
			t.Fatal(err)
		}
		rec, _ := u.DB.Lookup(addr)
		netAddr := rec.Prefix.Masked().Addr()
		if addr == netAddr {
			t.Fatalf("drew network address %v", addr)
		}
	}
}

func TestBuilderPropagatesError(t *testing.T) {
	b := NewBuilder()
	b.Add(netip.Prefix{}, Org{Name: "x"})
	if _, err := b.Build(); err == nil {
		t.Fatal("expected error for invalid range")
	}
}

func TestBuilderAcceptsIPv6Ranges(t *testing.T) {
	b := NewBuilder()
	b.Add(netip.MustParsePrefix("2001:db8::/32"), Org{Name: "v6-isp", Kind: KindISP, Country: "ES"})
	db, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rec, ok := db.Lookup(netip.MustParseAddr("2001:db8::42"))
	if !ok || rec.Org.Name != "v6-isp" {
		t.Fatalf("v6 lookup = (%+v, %v)", rec, ok)
	}
}
