package ipmeta

import (
	"fmt"
	"net/netip"
	"sort"

	"adaudit/internal/stats"
)

// OrgKind classifies the organisation owning an IP range.
type OrgKind int

const (
	// KindISP is a residential/business access provider.
	KindISP OrgKind = iota
	// KindMobile is a mobile carrier.
	KindMobile
	// KindHosting is a data-center, cloud or hosting provider. The ad
	// industry treats traffic from such ranges as likely invalid (MRC /
	// JICWEBS invalid-traffic guidelines the paper cites).
	KindHosting
	// KindVPN is a hosting range known to serve consumer VPN exits —
	// the exception the MRC guidelines carve out of the data-center rule.
	KindVPN
	// KindEducation is a university or research network.
	KindEducation
)

// String returns the kind name.
func (k OrgKind) String() string {
	switch k {
	case KindISP:
		return "isp"
	case KindMobile:
		return "mobile"
	case KindHosting:
		return "hosting"
	case KindVPN:
		return "vpn"
	case KindEducation:
		return "education"
	default:
		return fmt.Sprintf("OrgKind(%d)", int(k))
	}
}

// Org is an organisation owning one or more IP ranges.
type Org struct {
	Name    string
	Kind    OrgKind
	Country string // ISO 3166-1 alpha-2
}

// Record is the metadata returned for an IP lookup — the equivalent of a
// MaxMind ISP-database row.
type Record struct {
	Org    Org
	Prefix netip.Prefix // the matched range
}

// DB is an IP-metadata database: an LPM table from ranges to organisation
// records. It is immutable after Build and safe for concurrent lookups.
type DB struct {
	tree *RadixTree[Record]
	orgs []Org
}

// Builder accumulates ranges for a DB.
type Builder struct {
	tree *RadixTree[Record]
	orgs []Org
	err  error
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{tree: NewRadixTree[Record]()}
}

// Add registers prefix as owned by org. Errors are deferred to Build.
func (b *Builder) Add(prefix netip.Prefix, org Org) *Builder {
	if b.err != nil {
		return b
	}
	if err := b.tree.Insert(prefix, Record{Org: org, Prefix: prefix.Masked()}); err != nil {
		b.err = err
		return b
	}
	b.orgs = append(b.orgs, org)
	return b
}

// Build finalises the database.
func (b *Builder) Build() (*DB, error) {
	if b.err != nil {
		return nil, b.err
	}
	return &DB{tree: b.tree, orgs: b.orgs}, nil
}

// Lookup returns the record for the longest prefix containing addr.
func (db *DB) Lookup(addr netip.Addr) (Record, bool) {
	return db.tree.Lookup(addr)
}

// NumRanges returns the number of ranges in the database.
func (db *DB) NumRanges() int { return db.tree.Len() }

// DenyList is a set of CIDR ranges considered deny-listed hosting space —
// the stand-in for the Botlab deny-hosting-IP list (130M+ data-center IPs
// across the top-100 providers) the paper uses as its second detection
// stage.
type DenyList struct {
	tree *RadixTree[struct{}]
}

// NewDenyList returns a deny list over the given prefixes.
func NewDenyList(prefixes []netip.Prefix) (*DenyList, error) {
	t := NewRadixTree[struct{}]()
	for _, p := range prefixes {
		if err := t.Insert(p, struct{}{}); err != nil {
			return nil, err
		}
	}
	return &DenyList{tree: t}, nil
}

// Contains reports whether addr falls in a deny-listed range.
func (d *DenyList) Contains(addr netip.Addr) bool {
	_, ok := d.tree.Lookup(addr)
	return ok
}

// Len returns the number of deny-listed ranges.
func (d *DenyList) Len() int { return d.tree.Len() }

// Universe is a fully generated synthetic IP world: a metadata DB, the
// deny list derived from its hosting providers, and per-country address
// pools to draw simulated users and bots from.
type Universe struct {
	DB       *DB
	DenyList *DenyList

	// pools maps country -> kind -> prefixes for address sampling.
	pools map[string]map[OrgKind][]netip.Prefix
	rng   *stats.RNG
	// trueHosting names the organisations that genuinely run data
	// centers, regardless of how the provider database labels them.
	trueHosting map[string]bool
}

// UniverseConfig controls synthetic registry generation.
type UniverseConfig struct {
	Seed int64
	// Countries to generate address space for (ISO alpha-2). Defaults to
	// the paper's campaign geos: ES, RU, US.
	Countries []string
	// ISPsPerCountry is the number of access providers per country
	// (default 12).
	ISPsPerCountry int
	// HostingProviders is the number of global hosting/cloud providers
	// (default 40; the Botlab list covers the top 100).
	HostingProviders int
	// DenyListCoverage is the fraction of hosting providers present on
	// the deny list (default 0.75). The remainder model the providers the
	// paper had to verify manually via their websites.
	DenyListCoverage float64
	// VPNFraction is the fraction of hosting providers that are VPN
	// services (the MRC exception); default 0.05.
	VPNFraction float64
	// MislabeledHostingFraction is the fraction of hosting providers the
	// provider database mislabels as plain ISPs — the real-world MaxMind
	// gaps that make the paper's deny-list and manual-verification
	// stages necessary (default 0.20).
	MislabeledHostingFraction float64
}

func (c *UniverseConfig) applyDefaults() {
	if len(c.Countries) == 0 {
		c.Countries = []string{"ES", "RU", "US"}
	}
	if c.ISPsPerCountry == 0 {
		c.ISPsPerCountry = 12
	}
	if c.HostingProviders == 0 {
		c.HostingProviders = 40
	}
	if c.DenyListCoverage == 0 {
		c.DenyListCoverage = 0.75
	}
	if c.VPNFraction == 0 {
		c.VPNFraction = 0.05
	}
	if c.MislabeledHostingFraction == 0 {
		c.MislabeledHostingFraction = 0.20
	}
}

// NewUniverse generates a synthetic IP universe. Generation is
// deterministic in cfg.Seed.
func NewUniverse(cfg UniverseConfig) (*Universe, error) {
	cfg.applyDefaults()
	rng := stats.NewRNG(cfg.Seed).Fork("ipmeta")
	b := NewBuilder()
	pools := make(map[string]map[OrgKind][]netip.Prefix)
	var denied []netip.Prefix

	// Carve ISP space out of 10.0.0.0/8-style blocks per country:
	// country i gets 16 /12s starting at i<<4 within 11.0.0.0..., here we
	// simply stripe /12 blocks across a base /6 so ranges never collide.
	next := uint32(10) << 24 // start at 10.0.0.0, stride /12 blocks
	alloc := func() netip.Prefix {
		p := netip.PrefixFrom(uint32ToIPv4(next), 12)
		next += 1 << 20 // /12 = 2^20 addresses
		return p
	}

	for _, country := range cfg.Countries {
		pools[country] = make(map[OrgKind][]netip.Prefix)
		for i := 0; i < cfg.ISPsPerCountry; i++ {
			kind := KindISP
			if rng.Bool(0.25) {
				kind = KindMobile
			}
			org := Org{
				Name:    fmt.Sprintf("%s-%s-%02d", country, kind, i),
				Kind:    kind,
				Country: country,
			}
			p := alloc()
			b.Add(p, org)
			pools[country][kind] = append(pools[country][kind], p)
		}
		// One education/research network per country (the paper's
		// campaigns target research keywords).
		edu := Org{Name: fmt.Sprintf("%s-edu-net", country), Kind: KindEducation, Country: country}
		p := alloc()
		b.Add(p, edu)
		pools[country][KindEducation] = append(pools[country][KindEducation], p)
	}

	// Hosting providers are global; attribute them to US for simplicity
	// of the registry, but pool them under the pseudo-country "ZZ" so the
	// simulator can draw bot traffic irrespective of campaign geo. A
	// fraction of them are mislabelled as plain ISPs in the provider
	// database (MaxMind-style gaps): those are only catchable by the
	// deny list or by manually verifying the provider's website.
	pools["ZZ"] = make(map[OrgKind][]netip.Prefix)
	trueHosting := map[string]bool{}
	for i := 0; i < cfg.HostingProviders; i++ {
		kind := KindHosting
		if rng.Bool(cfg.VPNFraction) {
			kind = KindVPN
		}
		name := fmt.Sprintf("dc-%02d.example", i)
		registeredKind := kind
		if kind == KindHosting && rng.Bool(cfg.MislabeledHostingFraction) {
			registeredKind = KindISP
		}
		org := Org{
			Name:    name,
			Kind:    registeredKind,
			Country: "US",
		}
		p := alloc()
		b.Add(p, org)
		// Traffic pools follow the ground truth, not the registry label.
		pools["ZZ"][kind] = append(pools["ZZ"][kind], p)
		if kind == KindHosting {
			trueHosting[name] = true
			if rng.Bool(cfg.DenyListCoverage) {
				denied = append(denied, p)
			}
		}
	}

	db, err := b.Build()
	if err != nil {
		return nil, err
	}
	dl, err := NewDenyList(denied)
	if err != nil {
		return nil, err
	}
	return &Universe{
		DB:          db,
		DenyList:    dl,
		pools:       pools,
		rng:         rng.Fork("sampling"),
		trueHosting: trueHosting,
	}, nil
}

// ManualVerify reports whether manually inspecting the organisation's
// website (the paper's third detection stage) reveals it offers
// data-center services. In the synthetic universe that is the ground
// truth the provider database may have mislabelled.
func (u *Universe) ManualVerify(rec Record) bool {
	return u.trueHosting[rec.Org.Name]
}

// DrawAddr draws an address from the given country's pools of the
// given kind using the caller's RNG stream — the concurrency-safe form
// used by parallel campaign simulations, where each campaign owns its
// deterministic stream. It returns an error if no pool matches.
func (u *Universe) DrawAddr(rng *stats.RNG, country string, kind OrgKind) (netip.Addr, error) {
	pool := u.pools[country][kind]
	if len(pool) == 0 {
		return netip.Addr{}, fmt.Errorf("ipmeta: no %v ranges for country %s", kind, country)
	}
	p := pool[rng.Intn(len(pool))]
	return randomAddrIn(rng, p), nil
}

// DrawHostingAddr draws an address from a random hosting provider
// (data-center) range — the source of simulated bot traffic — using
// the caller's RNG stream.
func (u *Universe) DrawHostingAddr(rng *stats.RNG) (netip.Addr, error) {
	return u.DrawAddr(rng, "ZZ", KindHosting)
}

// DrawResidentialAddr draws an ISP, mobile or education address in the
// given country, weighted toward fixed-line ISPs, using the caller's
// RNG stream.
func (u *Universe) DrawResidentialAddr(rng *stats.RNG, country string) (netip.Addr, error) {
	kinds := []OrgKind{KindISP, KindISP, KindISP, KindMobile, KindEducation}
	for attempts := 0; attempts < len(kinds)*2; attempts++ {
		kind := kinds[rng.Intn(len(kinds))]
		if addr, err := u.DrawAddr(rng, country, kind); err == nil {
			return addr, nil
		}
	}
	return netip.Addr{}, fmt.Errorf("ipmeta: no residential ranges for country %s", country)
}

// RandomAddr is DrawAddr on the universe's own stream. Not safe for
// concurrent use; parallel simulations must use DrawAddr.
func (u *Universe) RandomAddr(country string, kind OrgKind) (netip.Addr, error) {
	return u.DrawAddr(u.rng, country, kind)
}

// RandomHostingAddr is DrawHostingAddr on the universe's own stream.
// Not safe for concurrent use.
func (u *Universe) RandomHostingAddr() (netip.Addr, error) {
	return u.DrawHostingAddr(u.rng)
}

// RandomResidentialAddr is DrawResidentialAddr on the universe's own
// stream. Not safe for concurrent use.
func (u *Universe) RandomResidentialAddr(country string) (netip.Addr, error) {
	return u.DrawResidentialAddr(u.rng, country)
}

// Countries returns the countries with generated residential space,
// sorted for determinism.
func (u *Universe) Countries() []string {
	var cs []string
	for c := range u.pools {
		if c != "ZZ" {
			cs = append(cs, c)
		}
	}
	sort.Strings(cs)
	return cs
}

func randomAddrIn(rng *stats.RNG, p netip.Prefix) netip.Addr {
	base := ipv4ToUint32(p.Masked().Addr())
	size := uint32(1) << (32 - p.Bits())
	// Avoid network and broadcast addresses for realism.
	off := uint32(rng.Int63n(int64(size-2))) + 1
	return uint32ToIPv4(base + off)
}
