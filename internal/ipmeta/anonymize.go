package ipmeta

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"hash"
	"net/netip"
	"sync"
)

// Anonymizer irreversibly pseudonymises IP addresses, implementing the
// paper's footnote 1: metadata (ISP, country, data-center status) is
// extracted first, then the raw address is replaced by a keyed hash so
// analyses can still group by user (IP+User-Agent) without retaining
// personal data.
//
// The hash is HMAC-SHA-256 under a per-dataset secret, so equal addresses
// map to equal pseudonyms within a dataset but pseudonyms cannot be
// correlated across datasets or reversed by dictionary attack over the
// 2^32 IPv4 space without the key.
type Anonymizer struct {
	key []byte
	// pool recycles keyed HMAC states across Pseudonym calls: hmac.New
	// hashes the key into fresh inner/outer digests every time, which is
	// the dominant cost of the call, while Reset restores exactly that
	// keyed state for free.
	pool sync.Pool
}

// NewAnonymizer returns an anonymizer keyed with the given secret. The
// secret must be non-empty; it should be generated per dataset and
// discarded after ingestion.
func NewAnonymizer(secret []byte) *Anonymizer {
	if len(secret) == 0 {
		panic("ipmeta: anonymizer requires a non-empty secret")
	}
	key := make([]byte, len(secret))
	copy(key, secret)
	return &Anonymizer{key: key}
}

// Pseudonym returns the hex-encoded pseudonym for addr. Invalid addresses
// map to the pseudonym of the zero address.
func (a *Anonymizer) Pseudonym(addr netip.Addr) string {
	mac, _ := a.pool.Get().(hash.Hash)
	if mac == nil {
		mac = hmac.New(sha256.New, a.key)
	}
	b, _ := addr.MarshalBinary()
	mac.Write(b)
	out := hex.EncodeToString(mac.Sum(nil)[:16])
	mac.Reset()
	a.pool.Put(mac)
	return out
}
