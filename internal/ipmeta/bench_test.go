package ipmeta

import (
	"net/netip"
	"testing"
)

func benchUniverse(b *testing.B) *Universe {
	b.Helper()
	u, err := NewUniverse(UniverseConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	return u
}

func benchAddrs(b *testing.B, u *Universe, n int) []netip.Addr {
	b.Helper()
	addrs := make([]netip.Addr, n)
	for i := range addrs {
		var err error
		if i%5 == 0 {
			addrs[i], err = u.RandomHostingAddr()
		} else {
			addrs[i], err = u.RandomResidentialAddr("ES")
		}
		if err != nil {
			b.Fatal(err)
		}
	}
	return addrs
}

func BenchmarkLPMLookup(b *testing.B) {
	u := benchUniverse(b)
	addrs := benchAddrs(b, u, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := u.DB.Lookup(addrs[i%len(addrs)]); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkDenyListContains(b *testing.B) {
	u := benchUniverse(b)
	addrs := benchAddrs(b, u, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u.DenyList.Contains(addrs[i%len(addrs)])
	}
}

func BenchmarkFullCascadeClassify(b *testing.B) {
	u := benchUniverse(b)
	c := &Classifier{DB: u.DB, DenyList: u.DenyList, ManualVerify: u.ManualVerify}
	addrs := benchAddrs(b, u, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Classify(addrs[i%len(addrs)])
	}
}

func BenchmarkPseudonym(b *testing.B) {
	a := NewAnonymizer([]byte("bench-secret"))
	addr := netip.MustParseAddr("203.0.113.77")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Pseudonym(addr)
	}
}

func BenchmarkUniverseGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := NewUniverse(UniverseConfig{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
