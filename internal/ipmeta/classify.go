package ipmeta

import (
	"net/netip"
	"sync/atomic"
)

// DataCenterVerdict records how an address was classified as data-center
// traffic, mirroring the paper's three-stage methodology: (1) map the IP
// to its provider with MaxMind, (2) check the Botlab deny-hosting list,
// (3) manually verify the remaining providers' websites.
type DataCenterVerdict int

const (
	// VerdictNotDataCenter means the address is not attributable to a
	// data-center provider by any stage.
	VerdictNotDataCenter DataCenterVerdict = iota
	// VerdictProviderDB means stage 1 classified the owning organisation
	// as a hosting/cloud provider.
	VerdictProviderDB
	// VerdictDenyList means stage 2 found the address on the
	// deny-hosting list.
	VerdictDenyList
	// VerdictManual means stage 3 (manual provider verification)
	// identified the provider as offering data-center services.
	VerdictManual
	// VerdictVPNException means the address is in hosting space operated
	// as a VPN service — excluded from invalid traffic per the MRC
	// guidelines the paper cites.
	VerdictVPNException
)

// String returns the verdict name.
func (v DataCenterVerdict) String() string {
	switch v {
	case VerdictNotDataCenter:
		return "not-data-center"
	case VerdictProviderDB:
		return "provider-db"
	case VerdictDenyList:
		return "deny-list"
	case VerdictManual:
		return "manual"
	case VerdictVPNException:
		return "vpn-exception"
	default:
		return "unknown"
	}
}

// IsDataCenter reports whether the verdict marks the address as
// data-center (likely invalid) traffic.
func (v DataCenterVerdict) IsDataCenter() bool {
	return v == VerdictProviderDB || v == VerdictDenyList || v == VerdictManual
}

// Classifier implements the paper's data-center detection cascade.
type Classifier struct {
	// DB is the stage-1 provider database (MaxMind stand-in). Optional.
	DB *DB
	// DenyList is the stage-2 deny-hosting list (Botlab stand-in).
	// Optional.
	DenyList *DenyList
	// ManualVerify is the stage-3 fallback: given the provider record of
	// an address the first two stages did not flag, report whether manual
	// inspection of the provider's website shows data-center services.
	// Optional; when nil, stage 3 is skipped.
	ManualVerify func(Record) bool

	// stats counts classifications by verdict, useful for the ablation
	// benchmarks comparing cascade stages. Updated atomically: the
	// collector classifies from concurrent sessions.
	stats [5]atomic.Int64
}

// VerdictCount returns how many classifications ended with v.
func (c *Classifier) VerdictCount(v DataCenterVerdict) int64 {
	if int(v) < 0 || int(v) >= len(c.stats) {
		return 0
	}
	return c.stats[v].Load()
}

// Classify runs the cascade on addr. Safe for concurrent use once the
// DB and deny list are built.
func (c *Classifier) Classify(addr netip.Addr) DataCenterVerdict {
	v := c.classify(addr)
	c.stats[v].Add(1)
	return v
}

func (c *Classifier) classify(addr netip.Addr) DataCenterVerdict {
	var rec Record
	var known bool
	if c.DB != nil {
		rec, known = c.DB.Lookup(addr)
		if known {
			switch rec.Org.Kind {
			case KindVPN:
				return VerdictVPNException
			case KindHosting:
				return VerdictProviderDB
			}
		}
	}
	if c.DenyList != nil && c.DenyList.Contains(addr) {
		return VerdictDenyList
	}
	if known && c.ManualVerify != nil && c.ManualVerify(rec) {
		return VerdictManual
	}
	return VerdictNotDataCenter
}
