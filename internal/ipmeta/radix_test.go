package ipmeta

import (
	"net/netip"
	"testing"
	"testing/quick"
)

func mustPrefix(t *testing.T, s string) netip.Prefix {
	t.Helper()
	p, err := netip.ParsePrefix(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRadixLongestPrefixMatch(t *testing.T) {
	tr := NewRadixTree[string]()
	for p, v := range map[string]string{
		"10.0.0.0/8":     "big",
		"10.1.0.0/16":    "mid",
		"10.1.2.0/24":    "small",
		"192.168.0.0/16": "rfc1918",
	} {
		if err := tr.Insert(mustPrefix(t, p), v); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		addr string
		want string
		ok   bool
	}{
		{"10.1.2.3", "small", true},
		{"10.1.3.4", "mid", true},
		{"10.200.0.1", "big", true},
		{"192.168.55.1", "rfc1918", true},
		{"172.16.0.1", "", false},
		{"8.8.8.8", "", false},
	}
	for _, c := range cases {
		got, ok := tr.Lookup(netip.MustParseAddr(c.addr))
		if ok != c.ok || got != c.want {
			t.Errorf("Lookup(%s) = (%q, %v), want (%q, %v)", c.addr, got, ok, c.want, c.ok)
		}
	}
}

func TestRadixExactHostRoute(t *testing.T) {
	tr := NewRadixTree[int]()
	if err := tr.Insert(mustPrefix(t, "1.2.3.4/32"), 7); err != nil {
		t.Fatal(err)
	}
	if v, ok := tr.Lookup(netip.MustParseAddr("1.2.3.4")); !ok || v != 7 {
		t.Fatalf("host route lookup = (%d, %v)", v, ok)
	}
	if _, ok := tr.Lookup(netip.MustParseAddr("1.2.3.5")); ok {
		t.Fatal("adjacent address matched /32 route")
	}
}

func TestRadixDefaultRoute(t *testing.T) {
	tr := NewRadixTree[string]()
	if err := tr.Insert(mustPrefix(t, "0.0.0.0/0"), "default"); err != nil {
		t.Fatal(err)
	}
	if v, ok := tr.Lookup(netip.MustParseAddr("203.0.113.9")); !ok || v != "default" {
		t.Fatalf("default route lookup = (%q, %v)", v, ok)
	}
}

func TestRadixOverwrite(t *testing.T) {
	tr := NewRadixTree[string]()
	p := mustPrefix(t, "10.0.0.0/8")
	tr.Insert(p, "a")
	tr.Insert(p, "b")
	if tr.Len() != 1 {
		t.Fatalf("Len = %d after duplicate insert, want 1", tr.Len())
	}
	if v, _ := tr.Lookup(netip.MustParseAddr("10.1.1.1")); v != "b" {
		t.Fatalf("overwrite did not take: %q", v)
	}
}

func TestRadixIPv6LongestPrefixMatch(t *testing.T) {
	tr := NewRadixTree[string]()
	for p, v := range map[string]string{
		"2001:db8::/32":     "doc",
		"2001:db8:1::/48":   "doc-sub",
		"2001:db8:1:2::/64": "doc-subnet",
		"fd00::/8":          "ula",
		"2606:4700::/32":    "cdn",
	} {
		if err := tr.Insert(netip.MustParsePrefix(p), v); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		addr string
		want string
		ok   bool
	}{
		{"2001:db8:1:2::99", "doc-subnet", true},
		{"2001:db8:1:3::1", "doc-sub", true},
		{"2001:db8:ffff::1", "doc", true},
		{"fd12:3456::1", "ula", true},
		{"2606:4700:4700::1111", "cdn", true},
		{"2607::1", "", false},
	}
	for _, c := range cases {
		got, ok := tr.Lookup(netip.MustParseAddr(c.addr))
		if ok != c.ok || got != c.want {
			t.Errorf("Lookup(%s) = (%q, %v), want (%q, %v)", c.addr, got, ok, c.want, c.ok)
		}
	}
}

func TestRadixFamiliesSeparate(t *testing.T) {
	tr := NewRadixTree[int]()
	tr.Insert(mustPrefix(t, "0.0.0.0/0"), 4)
	tr.Insert(netip.MustParsePrefix("::/0"), 6)
	if v, ok := tr.Lookup(netip.MustParseAddr("2001:db8::1")); !ok || v != 6 {
		t.Fatalf("v6 default = (%d, %v)", v, ok)
	}
	if v, ok := tr.Lookup(netip.MustParseAddr("8.8.8.8")); !ok || v != 4 {
		t.Fatalf("v4 default = (%d, %v)", v, ok)
	}
	// An IPv4 default alone never matches IPv6 addresses.
	only4 := NewRadixTree[int]()
	only4.Insert(mustPrefix(t, "0.0.0.0/0"), 1)
	if _, ok := only4.Lookup(netip.MustParseAddr("2001:db8::1")); ok {
		t.Fatal("IPv6 address matched IPv4 tree")
	}
}

func TestRadixRejectsInvalidPrefix(t *testing.T) {
	tr := NewRadixTree[int]()
	if err := tr.Insert(netip.Prefix{}, 1); err == nil {
		t.Fatal("invalid prefix accepted")
	}
}

func TestRadixMappedIPv4Unmapped(t *testing.T) {
	tr := NewRadixTree[int]()
	tr.Insert(mustPrefix(t, "10.0.0.0/8"), 42)
	mapped := netip.MustParseAddr("::ffff:10.1.2.3")
	if v, ok := tr.Lookup(mapped); !ok || v != 42 {
		t.Fatalf("mapped IPv4 lookup = (%d, %v), want (42, true)", v, ok)
	}
}

func TestRadixMaskedInsert(t *testing.T) {
	tr := NewRadixTree[int]()
	// Un-masked prefix: host bits set; Insert must mask them.
	p, err := netip.ParsePrefix("10.1.2.3/16")
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(p, 1); err != nil {
		t.Fatal(err)
	}
	if v, ok := tr.Lookup(netip.MustParseAddr("10.1.200.200")); !ok || v != 1 {
		t.Fatalf("masked insert lookup = (%d, %v)", v, ok)
	}
}

// Property: LPM lookup agrees with a naive linear scan over all inserted
// prefixes (pick the longest containing prefix).
func TestRadixMatchesLinearScan(t *testing.T) {
	type entry struct {
		p netip.Prefix
		v int
	}
	check := func(seed int64) bool {
		rng := newTestRand(seed)
		var entries []entry
		tr := NewRadixTree[int]()
		n := int(rng()%40) + 1
		for i := 0; i < n; i++ {
			bits := int(rng() % 33)
			addr := netip.AddrFrom4([4]byte{byte(rng()), byte(rng()), byte(rng()), byte(rng())})
			p := netip.PrefixFrom(addr, bits).Masked()
			// Deduplicate: later insert wins in both models.
			entries = append(entries, entry{p, i})
			tr.Insert(p, i)
		}
		for trial := 0; trial < 50; trial++ {
			q := netip.AddrFrom4([4]byte{byte(rng()), byte(rng()), byte(rng()), byte(rng())})
			wantV, wantOK := -1, false
			bestBits := -1
			for _, e := range entries {
				if e.p.Contains(q) && e.p.Bits() >= bestBits {
					// >= so that for equal prefixes the later insert wins.
					if e.p.Bits() > bestBits || wantOK {
						wantV, wantOK = e.v, true
						bestBits = e.p.Bits()
					}
				}
			}
			gotV, gotOK := tr.Lookup(q)
			if gotOK != wantOK {
				return false
			}
			if wantOK && gotV != wantV {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// newTestRand returns a tiny deterministic generator for property tests
// that need raw bytes without importing the stats package (avoiding an
// import cycle in tests is not an issue here, but a local LCG keeps the
// property self-contained).
func newTestRand(seed int64) func() uint64 {
	s := uint64(seed)*2862933555777941757 + 3037000493
	return func() uint64 {
		s = s*2862933555777941757 + 3037000493
		return s >> 8
	}
}
