package simclock

import (
	"testing"
	"time"
)

func TestSystemClockTellsRealTime(t *testing.T) {
	c := System()
	before := time.Now()
	now := c.Now()
	after := time.Now()
	if now.Before(before) || now.After(after) {
		t.Fatalf("System().Now() = %v outside [%v, %v]", now, before, after)
	}
	tm := c.NewTimer(time.Millisecond)
	select {
	case <-tm.C():
	case <-time.After(2 * time.Second):
		t.Fatal("system timer never fired")
	}
	tk := c.NewTicker(time.Millisecond)
	defer tk.Stop()
	select {
	case <-tk.C():
	case <-time.After(2 * time.Second):
		t.Fatal("system ticker never ticked")
	}
}

func TestOrDefaultsToSystem(t *testing.T) {
	if Or(nil) != System() {
		t.Fatal("Or(nil) is not the system clock")
	}
	v := NewVirtual(time.Time{})
	if Or(v) != Clock(v) {
		t.Fatal("Or(v) did not pass the clock through")
	}
}

func TestVirtualNowOnlyMovesOnAdvance(t *testing.T) {
	start := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	v := NewVirtual(start)
	if !v.Now().Equal(start) {
		t.Fatalf("Now = %v, want %v", v.Now(), start)
	}
	v.Advance(90 * time.Second)
	if got := v.Since(start); got != 90*time.Second {
		t.Fatalf("Since = %v, want 90s", got)
	}
}

func TestVirtualTimerFiresAtDeadline(t *testing.T) {
	v := NewVirtual(time.Time{})
	tm := v.NewTimer(10 * time.Second)
	v.Advance(9 * time.Second)
	select {
	case <-tm.C():
		t.Fatal("timer fired before its deadline")
	default:
	}
	v.Advance(time.Second)
	select {
	case at := <-tm.C():
		if got := v.Since(at); got != 0 {
			t.Fatalf("timer fired at %v, clock now %v", at, v.Now())
		}
	default:
		t.Fatal("timer did not fire at its deadline")
	}
	if v.Waiters() != 0 {
		t.Fatalf("fired timer still pending: %d waiters", v.Waiters())
	}
}

func TestVirtualTimerStop(t *testing.T) {
	v := NewVirtual(time.Time{})
	tm := v.NewTimer(time.Second)
	if !tm.Stop() {
		t.Fatal("Stop on pending timer reported false")
	}
	v.Advance(2 * time.Second)
	select {
	case <-tm.C():
		t.Fatal("stopped timer fired")
	default:
	}
	if tm.Stop() {
		t.Fatal("second Stop reported true")
	}
}

func TestVirtualTickerTicksAndCoalesces(t *testing.T) {
	v := NewVirtual(time.Time{})
	tk := v.NewTicker(time.Second)
	defer tk.Stop()
	// 5 periods elapse without the receiver draining: ticks coalesce
	// into the 1-buffered channel, like a real time.Ticker.
	v.Advance(5 * time.Second)
	n := 0
	for {
		select {
		case <-tk.C():
			n++
			continue
		default:
		}
		break
	}
	if n != 1 {
		t.Fatalf("undrained ticker delivered %d ticks, want 1 (coalesced)", n)
	}
	// Draining between advances sees every tick.
	for i := 0; i < 3; i++ {
		v.Advance(time.Second)
		select {
		case <-tk.C():
		default:
			t.Fatalf("tick %d not delivered", i)
		}
	}
}

func TestVirtualFiresInDeadlineOrder(t *testing.T) {
	v := NewVirtual(time.Time{})
	var order []string
	a := v.NewTimer(3 * time.Second)
	b := v.NewTimer(1 * time.Second)
	c := v.NewTimer(2 * time.Second)
	v.Advance(5 * time.Second)
	drain := func(name string, tm Timer) {
		select {
		case at := <-tm.C():
			_ = at
			order = append(order, name)
		default:
			t.Fatalf("timer %s never fired", name)
		}
	}
	// All three fired during one Advance; their delivery times must
	// reflect deadline order. The channels are independent, so verify
	// via the timestamps delivered.
	drain("a", a)
	drain("b", b)
	drain("c", c)
	if len(order) != 3 {
		t.Fatalf("fired %d timers", len(order))
	}
	_, _, _ = a, b, c
}

func TestVirtualTimerFireTimesAreDeadlines(t *testing.T) {
	start := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	v := NewVirtual(start)
	b := v.NewTimer(1 * time.Second)
	a := v.NewTimer(3 * time.Second)
	v.Advance(10 * time.Second)
	bt := <-b.C()
	at := <-a.C()
	if !bt.Equal(start.Add(1 * time.Second)) {
		t.Fatalf("b fired at %v, want %v", bt, start.Add(time.Second))
	}
	if !at.Equal(start.Add(3 * time.Second)) {
		t.Fatalf("a fired at %v, want %v", at, start.Add(3*time.Second))
	}
}

func TestVirtualZeroTimerFiresOnNextAdvance(t *testing.T) {
	v := NewVirtual(time.Time{})
	tm := v.NewTimer(0)
	v.Advance(0)
	select {
	case <-tm.C():
	default:
		t.Fatal("zero timer did not fire on Advance(0)")
	}
}

func TestVirtualTickerStopRemovesWaiter(t *testing.T) {
	v := NewVirtual(time.Time{})
	tk := v.NewTicker(time.Second)
	if v.Waiters() != 1 {
		t.Fatalf("waiters = %d", v.Waiters())
	}
	tk.Stop()
	if v.Waiters() != 0 {
		t.Fatalf("waiters after stop = %d", v.Waiters())
	}
	v.Advance(5 * time.Second)
	select {
	case <-tk.C():
		t.Fatal("stopped ticker ticked")
	default:
	}
}
