// Package simclock abstracts the passage of time so time-dependent
// components — the collector's keepalive and session-timeout paths, the
// store WAL's interval-sync ticker — can run either on the real clock
// (production, the default everywhere) or on a deterministic virtual
// clock that only moves when a test advances it (internal/simtest).
//
// The interface is deliberately the minimal slice of package time those
// components consume: Now/Since for timestamps and durations, and
// tickers/timers for periodic and one-shot wakeups. A Virtual clock
// fires due timers synchronously inside Advance, in deadline order with
// creation order as the tiebreak, so a simulation that advances the
// clock sees exactly the same wakeup sequence on every run.
package simclock

import (
	"sync"
	"time"
)

// Clock tells time and schedules wakeups. Implementations must be safe
// for concurrent use.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// Since returns the time elapsed on this clock since t.
	Since(t time.Time) time.Duration
	// NewTicker returns a ticker that delivers ticks every d.
	NewTicker(d time.Duration) Ticker
	// NewTimer returns a timer that fires once after d.
	NewTimer(d time.Duration) Timer
}

// Ticker is the clock-agnostic slice of time.Ticker.
type Ticker interface {
	// C returns the channel ticks are delivered on.
	C() <-chan time.Time
	// Stop turns the ticker off. It does not close C.
	Stop()
}

// Timer is the clock-agnostic slice of time.Timer.
type Timer interface {
	// C returns the channel the expiry is delivered on.
	C() <-chan time.Time
	// Stop prevents the timer from firing; it reports whether the call
	// stopped the timer before it fired.
	Stop() bool
}

// System returns the real clock backed by package time. The same value
// is returned on every call; comparing a Clock against System() tells
// whether it is the real one.
func System() Clock { return systemClock{} }

type systemClock struct{}

func (systemClock) Now() time.Time                   { return time.Now() }
func (systemClock) Since(t time.Time) time.Duration  { return time.Since(t) }
func (systemClock) NewTicker(d time.Duration) Ticker { return systemTicker{time.NewTicker(d)} }
func (systemClock) NewTimer(d time.Duration) Timer   { return systemTimer{time.NewTimer(d)} }

type systemTicker struct{ t *time.Ticker }

func (s systemTicker) C() <-chan time.Time { return s.t.C }
func (s systemTicker) Stop()               { s.t.Stop() }

type systemTimer struct{ t *time.Timer }

func (s systemTimer) C() <-chan time.Time { return s.t.C }
func (s systemTimer) Stop() bool          { return s.t.Stop() }

// Or returns c, or the system clock when c is nil — the idiom
// components use to default an optional Clock configuration field.
func Or(c Clock) Clock {
	if c == nil {
		return System()
	}
	return c
}

// Virtual is a deterministic clock: Now returns a fixed instant until
// Advance moves it, and timers/tickers fire synchronously inside
// Advance, in deadline order. The zero value is not usable; construct
// with NewVirtual.
type Virtual struct {
	mu   sync.Mutex
	now  time.Time
	seq  uint64 // creation order, the deadline tiebreak
	wait []*virtualWaiter
}

// virtualWaiter is one pending wakeup: a timer (period 0, fires once)
// or a ticker (re-arms every period).
type virtualWaiter struct {
	clock    *Virtual
	deadline time.Time
	period   time.Duration
	seq      uint64
	ch       chan time.Time
	stopped  bool
}

// NewVirtual returns a virtual clock reading start. A zero start uses
// an arbitrary fixed epoch, so tests that never care about absolute
// time stay deterministic by default.
func NewVirtual(start time.Time) *Virtual {
	if start.IsZero() {
		start = time.Date(2016, time.March, 29, 0, 0, 0, 0, time.UTC)
	}
	return &Virtual{now: start}
}

// Now returns the virtual time.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Since returns the virtual time elapsed since t.
func (v *Virtual) Since(t time.Time) time.Duration { return v.Now().Sub(t) }

// NewTicker schedules a periodic wakeup every d of virtual time.
func (v *Virtual) NewTicker(d time.Duration) Ticker {
	if d <= 0 {
		panic("simclock: non-positive ticker period")
	}
	return virtualTicker{v.addWaiter(d, d)}
}

// virtualTicker adapts a waiter to the Ticker interface (whose Stop
// returns nothing).
type virtualTicker struct{ w *virtualWaiter }

func (t virtualTicker) C() <-chan time.Time { return t.w.ch }
func (t virtualTicker) Stop()               { t.w.Stop() }

// NewTimer schedules a one-shot wakeup after d of virtual time. A
// non-positive d fires on the next Advance (of any amount), matching
// the "already due" semantics of a real timer closely enough for the
// components this package serves.
func (v *Virtual) NewTimer(d time.Duration) Timer {
	return v.addWaiter(d, 0)
}

func (v *Virtual) addWaiter(d, period time.Duration) *virtualWaiter {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.seq++
	w := &virtualWaiter{
		clock:    v,
		deadline: v.now.Add(d),
		period:   period,
		seq:      v.seq,
		// Buffered like the real timer channel: a fire never blocks
		// Advance on a receiver that is not ready, it just coalesces.
		ch: make(chan time.Time, 1),
	}
	v.wait = append(v.wait, w)
	return w
}

func (w *virtualWaiter) C() <-chan time.Time { return w.ch }

func (w *virtualWaiter) Stop() bool {
	v := w.clock
	v.mu.Lock()
	defer v.mu.Unlock()
	was := !w.stopped
	w.stopped = true
	for i, o := range v.wait {
		if o == w {
			v.wait = append(v.wait[:i], v.wait[i+1:]...)
			break
		}
	}
	return was
}

// Advance moves the clock forward by d, firing every timer and ticker
// whose deadline falls inside the window, in deadline order (creation
// order breaks ties). Tick delivery is non-blocking — a receiver that
// has not drained its channel coalesces ticks, exactly like a real
// time.Ticker.
func (v *Virtual) Advance(d time.Duration) {
	if d < 0 {
		panic("simclock: negative advance")
	}
	v.mu.Lock()
	target := v.now.Add(d)
	for {
		w := v.nextDueLocked(target)
		if w == nil {
			break
		}
		if w.deadline.After(v.now) {
			v.now = w.deadline
		}
		at := v.now
		if w.period > 0 {
			w.deadline = w.deadline.Add(w.period)
		} else {
			w.stopped = true
			v.removeLocked(w)
		}
		select {
		case w.ch <- at:
		default:
		}
	}
	v.now = target
	v.mu.Unlock()
}

// nextDueLocked returns the unstopped waiter with the earliest deadline
// not after target, preferring lower sequence numbers on equal
// deadlines; nil when none is due.
func (v *Virtual) nextDueLocked(target time.Time) *virtualWaiter {
	var best *virtualWaiter
	for _, w := range v.wait {
		if w.stopped || w.deadline.After(target) {
			continue
		}
		if best == nil || w.deadline.Before(best.deadline) ||
			(w.deadline.Equal(best.deadline) && w.seq < best.seq) {
			best = w
		}
	}
	return best
}

func (v *Virtual) removeLocked(w *virtualWaiter) {
	for i, o := range v.wait {
		if o == w {
			v.wait = append(v.wait[:i], v.wait[i+1:]...)
			return
		}
	}
}

// Waiters returns the number of pending timers and tickers — a test
// hook for asserting components cleaned their wakeups up.
func (v *Virtual) Waiters() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.wait)
}
